#include <gtest/gtest.h>

#include "hw/dsp/mod_mult.hpp"
#include "util/rng.hpp"

namespace hemul::hw {
namespace {

using fp::Fp;

TEST(Dsp32x32, ExactProduct) {
  Dsp32x32 dsp;
  EXPECT_EQ(dsp.multiply(0xFFFFFFFFu, 0xFFFFFFFFu), 0xFFFFFFFE00000001ULL);
  EXPECT_EQ(dsp.multiply(0, 12345), 0u);
  EXPECT_EQ(dsp.operations(), 2u);
}

TEST(ModMult64, MatchesFieldMultiplication) {
  ModMult64 unit;
  util::Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const Fp a{rng.next()};
    const Fp b{rng.next()};
    EXPECT_EQ(unit.multiply(a, b), a * b);
  }
  EXPECT_EQ(unit.products_computed(), 500u);
}

TEST(ModMult64, EdgeOperands) {
  ModMult64 unit;
  const Fp pm1 = Fp::from_canonical(fp::kModulus - 1);
  EXPECT_EQ(unit.multiply(fp::kZero, pm1), fp::kZero);
  EXPECT_EQ(unit.multiply(fp::kOne, pm1), pm1);
  EXPECT_EQ(unit.multiply(pm1, pm1), fp::kOne);  // (-1)^2 = 1
  const Fp eps = Fp::from_canonical(fp::kEpsilon);
  EXPECT_EQ(unit.multiply(eps, eps), eps * eps);
}

TEST(ModMult64, DspBlockBudget) {
  // Paper Section IV.d: four 32x32 multipliers, two DSP blocks each.
  EXPECT_EQ(ModMult64::kMultipliers, 4u);
  EXPECT_EQ(ModMult64::kDspBlocks, 8u);
  // 32 multipliers (the dot-product pool) = 256 DSP blocks = Table I.
  EXPECT_EQ(32u * ModMult64::kDspBlocks, 256u);
}

TEST(ModMult64, PipelineContract) {
  EXPECT_EQ(ModMult64::kThroughputPerCycle, 1u);
  EXPECT_GE(ModMult64::kLatencyCycles, Dsp32x32::kLatencyCycles);
}

}  // namespace
}  // namespace hemul::hw
