#include <gtest/gtest.h>

#include "fp/roots.hpp"
#include "hw/pe/processing_element.hpp"
#include "ntt/reference.hpp"
#include "util/rng.hpp"

namespace hemul::hw {
namespace {

using fp::Fp;
using fp::FpVec;

FpVec random_vec(util::Rng& rng, std::size_t n) {
  FpVec v(n);
  for (auto& x : v) x = Fp{rng.next()};
  return v;
}

ProcessingElement make_pe(FftUnitKind kind = FftUnitKind::kOptimized) {
  return ProcessingElement(0, ProcessingElement::Config{
                                  .banking = BankingScheme::kTwoDimensional,
                                  .unit = kind,
                              });
}

TEST(ProcessingElement, Fft64ThroughMemoryMatchesReference) {
  auto pe = make_pe();
  util::Rng rng(1);
  const FpVec data = random_vec(rng, 64);

  pe.fill(0, data);
  pe.swap_buffers();
  const FpVec out = pe.run_fft(0, 64, {});
  EXPECT_EQ(out, ntt::dft_reference(data, fp::kOmega64));
  EXPECT_EQ(pe.compute_cycles(), 8u);
  EXPECT_EQ(pe.ffts_executed(), 1u);
}

TEST(ProcessingElement, Fft16ThroughMemoryMatchesReference) {
  auto pe = make_pe();
  util::Rng rng(2);
  const FpVec data = random_vec(rng, 16);
  pe.fill(0, data);
  pe.swap_buffers();
  const FpVec out = pe.run_fft(0, 16, {});
  EXPECT_EQ(out, ntt::dft_reference(data, fp::kTwo.pow(12)));
  EXPECT_EQ(pe.compute_cycles(), 2u);
}

TEST(ProcessingElement, BaselineUnitVariant) {
  auto opt = make_pe(FftUnitKind::kOptimized);
  auto base = make_pe(FftUnitKind::kBaseline);
  util::Rng rng(3);
  const FpVec data = random_vec(rng, 64);
  opt.fill(0, data);
  opt.swap_buffers();
  base.fill(0, data);
  base.swap_buffers();
  EXPECT_EQ(opt.run_fft(0, 64, {}), base.run_fft(0, 64, {}));
}

TEST(ProcessingElement, TwiddleStageUsesModularMultipliers) {
  auto pe = make_pe();
  util::Rng rng(4);
  const FpVec data = random_vec(rng, 64);
  const FpVec twiddles = random_vec(rng, 64);
  pe.fill(0, data);
  pe.swap_buffers();
  const FpVec out = pe.run_fft(0, 64, twiddles);

  const FpVec plain = ntt::dft_reference(data, fp::kOmega64);
  for (unsigned k = 0; k < 64; ++k) EXPECT_EQ(out[k], plain[k] * twiddles[k]);
  EXPECT_EQ(pe.twiddle_products(), 64u);
}

TEST(ProcessingElement, MultipleWindowsInOneBuffer) {
  auto pe = make_pe();
  util::Rng rng(5);
  const FpVec data = random_vec(rng, 4096);  // 64 windows
  pe.fill(0, data);
  pe.swap_buffers();
  for (unsigned w = 0; w < 64; ++w) {
    const FpVec expected = ntt::dft_reference(
        FpVec(data.begin() + w * 64, data.begin() + (w + 1) * 64), fp::kOmega64);
    EXPECT_EQ(pe.run_fft(w * 64, 64, {}), expected);
  }
  EXPECT_EQ(pe.compute_cycles(), 64u * 8);
  // Conflict-free: 2-D banking on FFT traffic.
  EXPECT_EQ(pe.memory().compute().conflict_cycles(), 0u);
}

TEST(ProcessingElement, WriteBackReadBackRoundTrip) {
  auto pe = make_pe();
  util::Rng rng(6);
  const FpVec values = random_vec(rng, 64);
  pe.write_back(128, values);
  for (unsigned i = 0; i < 64; ++i) {
    EXPECT_EQ(pe.memory().fill().peek(128 + i), values[i]);
  }
}

TEST(ProcessingElement, SmallRadixWriteBack) {
  auto pe = make_pe();
  util::Rng rng(7);
  const FpVec values = random_vec(rng, 16);
  pe.write_back(32, values);
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_EQ(pe.memory().fill().peek(32 + i), values[i]);
  }
}

TEST(ProcessingElement, EightTwiddleMultipliers) {
  EXPECT_EQ(ProcessingElement::kTwiddleMultipliers, 8u);
}

}  // namespace
}  // namespace hemul::hw
