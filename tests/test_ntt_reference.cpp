#include <gtest/gtest.h>

#include "fp/roots.hpp"
#include "ntt/reference.hpp"
#include "util/rng.hpp"

namespace hemul::ntt {
namespace {

using fp::Fp;
using fp::FpVec;

FpVec random_vec(util::Rng& rng, std::size_t n) {
  FpVec v(n);
  for (auto& x : v) x = Fp{rng.next()};
  return v;
}

TEST(DftReference, SizeTwoByHand) {
  // N=2: w = -1, F = [a+b, a-b].
  const Fp w = fp::primitive_root(2);
  EXPECT_EQ(w, Fp::from_canonical(fp::kModulus - 1));
  const FpVec f{Fp{3}, Fp{5}};
  const FpVec F = dft_reference(f, w);
  EXPECT_EQ(F[0], Fp{8});
  EXPECT_EQ(F[1], Fp{3} - Fp{5});
}

TEST(DftReference, ConstantInputConcentratesAtDc) {
  const Fp w = fp::primitive_root(8);
  const FpVec f(8, Fp{7});
  const FpVec F = dft_reference(f, w);
  EXPECT_EQ(F[0], Fp{56});
  for (std::size_t k = 1; k < 8; ++k) EXPECT_EQ(F[k], fp::kZero);
}

TEST(DftReference, DeltaInputIsFlat) {
  const Fp w = fp::primitive_root(16);
  FpVec f(16, fp::kZero);
  f[0] = Fp{9};
  const FpVec F = dft_reference(f, w);
  for (const auto& v : F) EXPECT_EQ(v, Fp{9});
}

TEST(DftReference, ShiftedDeltaGivesRootPowers) {
  const Fp w = fp::primitive_root(8);
  FpVec f(8, fp::kZero);
  f[1] = fp::kOne;
  const FpVec F = dft_reference(f, w);
  for (std::size_t k = 0; k < 8; ++k) EXPECT_EQ(F[k], w.pow(k));
}

class DftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DftRoundTrip, InverseRecoversInput) {
  const std::size_t n = GetParam();
  const Fp w = fp::primitive_root(n);
  util::Rng rng(n);
  const FpVec f = random_vec(rng, n);
  EXPECT_EQ(idft_reference(dft_reference(f, w), w), f);
}

TEST_P(DftRoundTrip, Linearity) {
  const std::size_t n = GetParam();
  const Fp w = fp::primitive_root(n);
  util::Rng rng(n + 1);
  const FpVec f = random_vec(rng, n);
  const FpVec g = random_vec(rng, n);
  const Fp c{rng.next()};
  FpVec combo(n);
  for (std::size_t i = 0; i < n; ++i) combo[i] = f[i] * c + g[i];
  const FpVec lhs = dft_reference(combo, w);
  const FpVec Ff = dft_reference(f, w);
  const FpVec Fg = dft_reference(g, w);
  for (std::size_t k = 0; k < n; ++k) EXPECT_EQ(lhs[k], Ff[k] * c + Fg[k]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DftRoundTrip, ::testing::Values(2, 3, 4, 5, 8, 15, 16, 17, 64));

TEST(DftReference, ConvolutionTheorem) {
  const std::size_t n = 16;
  const Fp w = fp::primitive_root(n);
  util::Rng rng(123);
  const FpVec a = random_vec(rng, n);
  const FpVec b = random_vec(rng, n);
  FpVec prod(n);
  const FpVec Fa = dft_reference(a, w);
  const FpVec Fb = dft_reference(b, w);
  for (std::size_t i = 0; i < n; ++i) prod[i] = Fa[i] * Fb[i];
  EXPECT_EQ(idft_reference(prod, w), cyclic_convolve_reference(a, b));
}

TEST(CyclicConvolveReference, HandComputed) {
  // [1,2] (*) [3,4] cyclically: c0 = 1*3 + 2*4 = 11, c1 = 1*4 + 2*3 = 10.
  const FpVec a{Fp{1}, Fp{2}};
  const FpVec b{Fp{3}, Fp{4}};
  const FpVec c = cyclic_convolve_reference(a, b);
  EXPECT_EQ(c[0], Fp{11});
  EXPECT_EQ(c[1], Fp{10});
}

}  // namespace
}  // namespace hemul::ntt
