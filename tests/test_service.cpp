#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "backend/registry.hpp"
#include "fhe/circuits.hpp"
#include "fhe/evaluator.hpp"
#include "fhe/serialize.hpp"
#include "service/service.hpp"

namespace hemul::core {
namespace {

using fhe::Ciphertext;
using fhe::DghvParams;

ServiceOptions ssa_options(unsigned workers, double window_ms = 0.0) {
  ServiceOptions options;
  options.config.backend_name = "ssa";
  options.config.num_workers = workers;
  options.admission_window_ms = window_ms;
  return options;
}

/// Encrypts `value` bit by bit on the tenant's scheme and serializes the
/// stream, as a remote client would.
fhe::Bytes encrypt_inputs(fhe::Dghv& scheme, u64 value, unsigned width) {
  const fhe::EncryptedInt bits = fhe::encrypt_int(scheme, value, width);
  return fhe::encode_ciphertexts(bits);
}

fhe::Bytes concat(const fhe::Bytes& a, const fhe::Bytes& b) {
  fhe::Bytes out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

u64 decrypt_response(const fhe::Dghv& scheme, const Response& response) {
  const std::vector<Ciphertext> outputs = fhe::decode_ciphertexts(response.outputs);
  return fhe::decrypt_int(scheme, fhe::EncryptedInt(outputs.begin(), outputs.end()));
}

// --- end-to-end builtin circuits -------------------------------------------

TEST(ServiceTest, BuiltinAdderRoundTrips) {
  Service service(ssa_options(2));
  const SessionId session = service.create_session(DghvParams::toy(), 101);
  fhe::Dghv& scheme = service.scheme(session);

  Request request;
  request.spec.kind = CircuitKind::kAdder;
  request.spec.width = 4;
  request.inputs = concat(encrypt_inputs(scheme, 11, 4), encrypt_inputs(scheme, 6, 4));

  const Response response = service.submit(session, std::move(request)).get();
  ASSERT_TRUE(response.ok()) << response.error;
  EXPECT_EQ(decrypt_response(scheme, response), 17u);  // 5 outputs: sum + carry
  EXPECT_EQ(response.and_gates, 8u);                   // 2 per bit
  EXPECT_EQ(response.levels, 4u);
  EXPECT_GE(response.shared_batches, 1u);
}

TEST(ServiceTest, CarrySaveLoweringRoundTripsAndRunsShallower) {
  // The same adder request under both wire-level strategy bytes: identical
  // decryption, but the carry-save form must traverse fewer wavefronts
  // than ripple's width+... chain (the strategy really steers the builtin).
  Service service(ssa_options(2));
  const SessionId session = service.create_session(DghvParams::toy(), 101);
  fhe::Dghv& scheme = service.scheme(session);

  unsigned levels[2] = {0, 0};
  int slot = 0;
  for (const fhe::LoweringStrategy strategy :
       {fhe::LoweringStrategy::kRippleCarry, fhe::LoweringStrategy::kCarrySave}) {
    Request request;
    request.spec.kind = CircuitKind::kAdder;
    request.spec.width = 4;
    request.spec.lowering.strategy = strategy;
    request.inputs = concat(encrypt_inputs(scheme, 11, 4), encrypt_inputs(scheme, 6, 4));

    // Through the framed wire encoding, as a remote tenant would send it.
    const Response response =
        service.submit(session, decode_request(encode_request(request))).get();
    ASSERT_TRUE(response.ok()) << response.error;
    EXPECT_EQ(decrypt_response(scheme, response), 17u)
        << fhe::lowering_strategy_name(strategy);
    levels[slot++] = response.levels;
  }
  EXPECT_LT(levels[1], levels[0]) << "carry-save must be shallower than ripple";
}

TEST(ServiceTest, EveryBuiltinCircuitDecryptsCorrectly) {
  Service service(ssa_options(2));
  const SessionId session = service.create_session(DghvParams::toy(), 77);
  fhe::Dghv& scheme = service.scheme(session);
  const unsigned w = 3;
  const u64 x = 5, y = 3;

  const struct {
    CircuitKind kind;
    fhe::Bytes inputs;
    u64 expected;
  } cases[] = {
      {CircuitKind::kAnd,
       concat(fhe::encode_ciphertexts(std::vector<Ciphertext>{scheme.encrypt(true)}),
              fhe::encode_ciphertexts(std::vector<Ciphertext>{scheme.encrypt(true)})),
       1},
      {CircuitKind::kEquals, concat(encrypt_inputs(scheme, x, w), encrypt_inputs(scheme, x, w)),
       1},
      {CircuitKind::kMux,
       concat(fhe::encode_ciphertexts(std::vector<Ciphertext>{scheme.encrypt(true)}),
              concat(encrypt_inputs(scheme, x, w), encrypt_inputs(scheme, y, w))),
       x},
      {CircuitKind::kLessThan,
       concat(encrypt_inputs(scheme, y, w), encrypt_inputs(scheme, x, w)), 1},
  };
  for (const auto& c : cases) {
    Request request;
    request.spec.kind = c.kind;
    request.spec.width = w;
    request.inputs = c.inputs;
    const Response response = service.submit(session, std::move(request)).get();
    ASSERT_TRUE(response.ok()) << circuit_kind_name(c.kind) << ": " << response.error;
    EXPECT_EQ(decrypt_response(scheme, response), c.expected)
        << "circuit " << circuit_kind_name(c.kind);
  }
}

// --- serialize -> evaluate -> deserialize parity ---------------------------

TEST(ServiceTest, GraphRequestBitExactAgainstInProcessForEveryBackend) {
  // The acceptance bar: for every registered backend, shipping a recorded
  // circuit through the service (serialize -> evaluate -> deserialize)
  // yields the very same ciphertext bits as evaluating the same graph
  // in-process.
  for (const std::string& name : backend::Registry::instance().names()) {
    // The registry is process-global: the lane-fault test registers an
    // always-throwing "faulty" engine, which must not poison this sweep
    // under test shuffling.
    if (name == "faulty") continue;
    ServiceOptions options;
    options.config.backend_name = name;
    options.config.num_workers = 1;
    Service service(options);
    const SessionId session = service.create_session(DghvParams::toy(), 4242);
    fhe::Dghv& scheme = service.scheme(session);

    // Client side: record a 2-bit adder with client-supplied constants.
    fhe::Graph graph(scheme);
    const fhe::EncryptedInt a = fhe::encrypt_int(scheme, 2, 2);
    const fhe::EncryptedInt b = fhe::encrypt_int(scheme, 3, 2);
    const Ciphertext zero = scheme.encrypt(false);
    const std::vector<fhe::Wire> wa = graph.inputs(a);
    const std::vector<fhe::Wire> wb = graph.inputs(b);
    fhe::Graph::AddResult r = graph.add(wa, wb, graph.input(zero));
    std::vector<fhe::Wire> outputs = std::move(r.sum);
    outputs.push_back(r.carry_out);

    std::vector<Ciphertext> inputs(a.begin(), a.end());
    inputs.insert(inputs.end(), b.begin(), b.end());
    inputs.push_back(zero);

    Request request;
    request.spec.kind = CircuitKind::kGraph;
    request.graph = fhe::encode_graph(fhe::GraphTopology::capture(graph, outputs));
    request.inputs = fhe::encode_ciphertexts(inputs);
    const Response response = service.submit(session, std::move(request)).get();
    ASSERT_TRUE(response.ok()) << name << ": " << response.error;

    // In-process reference on the same engine family the service lanes use.
    fhe::Evaluator evaluator(backend::make_backend(name));
    const std::vector<Ciphertext> direct = evaluator.evaluate(graph, outputs);
    const std::vector<Ciphertext> remote = fhe::decode_ciphertexts(response.outputs);
    ASSERT_EQ(remote.size(), direct.size()) << name;
    for (std::size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(remote[i].value, direct[i].value) << name << " output " << i;
    }
    EXPECT_EQ(decrypt_response(scheme, response), 5u) << name;
  }
}

// --- cross-request coalescing ----------------------------------------------

TEST(ServiceTest, ConcurrentSingleMultiplyTenantsShareBatches) {
  // 8 tenants, one AND (single multiply) each, submitted within the
  // admission window: the coordinator must fuse them into fewer scheduler
  // batches than there are requests -- the cross-request wavefront.
  Service service(ssa_options(2, /*window_ms=*/250.0));
  constexpr int kTenants = 8;

  std::vector<SessionId> sessions;
  std::vector<std::future<Response>> futures;
  for (int t = 0; t < kTenants; ++t) {
    sessions.push_back(service.create_session(DghvParams::toy(), 1000 + static_cast<u64>(t)));
  }
  for (int t = 0; t < kTenants; ++t) {
    fhe::Dghv& scheme = service.scheme(sessions[static_cast<std::size_t>(t)]);
    Request request;
    request.spec.kind = CircuitKind::kAnd;
    request.inputs =
        concat(fhe::encode_ciphertexts(std::vector<Ciphertext>{scheme.encrypt(true)}),
               fhe::encode_ciphertexts(std::vector<Ciphertext>{scheme.encrypt(t % 2 == 0)}));
    futures.push_back(service.submit(sessions[static_cast<std::size_t>(t)], std::move(request)));
  }
  for (int t = 0; t < kTenants; ++t) {
    const Response response = futures[static_cast<std::size_t>(t)].get();
    ASSERT_TRUE(response.ok()) << response.error;
    const fhe::Dghv& scheme = service.scheme(sessions[static_cast<std::size_t>(t)]);
    const std::vector<Ciphertext> outputs = fhe::decode_ciphertexts(response.outputs);
    ASSERT_EQ(outputs.size(), 1u);
    EXPECT_EQ(scheme.decrypt(outputs[0]), t % 2 == 0);
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, static_cast<u64>(kTenants));
  EXPECT_EQ(stats.and_gates, static_cast<u64>(kTenants));
  EXPECT_LT(stats.batches_submitted, static_cast<u64>(kTenants))
      << "independent single-multiply requests must share scheduler batches";
  EXPECT_GE(stats.batches_submitted, 1u);
  EXPECT_GE(stats.coalesced_requests, stats.batches_submitted);
}

TEST(ServiceTest, MixedDepthRequestsCoalesceAndStayCorrect) {
  Service service(ssa_options(2, /*window_ms=*/250.0));
  const SessionId s1 = service.create_session(DghvParams::toy(), 11);
  const SessionId s2 = service.create_session(DghvParams::toy(), 22);

  Request adder;  // depth 3
  adder.spec.kind = CircuitKind::kAdder;
  adder.spec.width = 3;
  adder.inputs = concat(encrypt_inputs(service.scheme(s1), 5, 3),
                        encrypt_inputs(service.scheme(s1), 6, 3));
  Request single;  // depth 1
  single.spec.kind = CircuitKind::kAnd;
  single.inputs = concat(
      fhe::encode_ciphertexts(std::vector<Ciphertext>{service.scheme(s2).encrypt(true)}),
      fhe::encode_ciphertexts(std::vector<Ciphertext>{service.scheme(s2).encrypt(true)}));

  auto f1 = service.submit(s1, std::move(adder));
  auto f2 = service.submit(s2, std::move(single));
  const Response r1 = f1.get();
  const Response r2 = f2.get();
  ASSERT_TRUE(r1.ok()) << r1.error;
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_EQ(decrypt_response(service.scheme(s1), r1), 11u);
  EXPECT_EQ(decrypt_response(service.scheme(s2), r2), 1u);

  // The adder needed 3 rounds; the AND rode the first of them when both
  // landed in one admission window, so total batches stays <= 4 either way.
  const ServiceStats stats = service.stats();
  EXPECT_LE(stats.batches_submitted, 4u);
  EXPECT_EQ(stats.wavefronts, 4u);  // 3 (adder) + 1 (and)
}

// --- noise veto / error paths ----------------------------------------------

TEST(ServiceTest, DeepCircuitOnToyParamsIsRejectedWithoutSpendingMultiplies) {
  Service service(ssa_options(1));
  const SessionId session = service.create_session(DghvParams::toy(), 5);
  fhe::Dghv& scheme = service.scheme(session);

  Request request;  // a 4x4 multiplier goes far past the toy noise budget
  request.spec.kind = CircuitKind::kMul;
  request.spec.width = 4;
  request.inputs = concat(encrypt_inputs(scheme, 9, 4), encrypt_inputs(scheme, 13, 4));
  const Response response = service.submit(session, std::move(request)).get();

  EXPECT_EQ(response.status, ResponseStatus::kRejectedByNoise);
  EXPECT_FALSE(response.error.empty());
  EXPECT_EQ(response.and_gates, 0u) << "the veto must fire before execution";

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected_by_noise, 1u);
  EXPECT_EQ(stats.and_gates, 0u);
  EXPECT_EQ(stats.batches_submitted, 0u);
  EXPECT_EQ(service.tenant_stats(session).rejected_by_noise, 1u);

  // The same circuit against the deep budget sails through.
  const SessionId deep = service.create_session(DghvParams::deep(), 5);
  Request retry;
  retry.spec.kind = CircuitKind::kMul;
  retry.spec.width = 4;
  retry.inputs = concat(encrypt_inputs(service.scheme(deep), 9, 4),
                        encrypt_inputs(service.scheme(deep), 13, 4));
  const Response ok = service.submit(deep, std::move(retry)).get();
  ASSERT_TRUE(ok.ok()) << ok.error;
  EXPECT_EQ(decrypt_response(service.scheme(deep), ok), 117u);
}

TEST(ServiceTest, MalformedPayloadsYieldBadRequestNotCrash) {
  Service service(ssa_options(1));
  const SessionId session = service.create_session(DghvParams::toy(), 3);
  fhe::Dghv& scheme = service.scheme(session);

  Request garbage;  // input bytes that are not ciphertext frames
  garbage.spec.kind = CircuitKind::kAnd;
  garbage.inputs = {0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_EQ(service.submit(session, std::move(garbage)).get().status,
            ResponseStatus::kBadRequest);

  Request count_mismatch;  // adder width 4 wants 8 ciphertexts, gets 2
  count_mismatch.spec.kind = CircuitKind::kAdder;
  count_mismatch.spec.width = 4;
  count_mismatch.inputs =
      concat(fhe::encode_ciphertexts(std::vector<Ciphertext>{scheme.encrypt(true)}),
             fhe::encode_ciphertexts(std::vector<Ciphertext>{scheme.encrypt(false)}));
  EXPECT_EQ(service.submit(session, std::move(count_mismatch)).get().status,
            ResponseStatus::kBadRequest);

  Request bad_width;
  bad_width.spec.kind = CircuitKind::kAdder;
  bad_width.spec.width = 99;
  EXPECT_EQ(service.submit(session, std::move(bad_width)).get().status,
            ResponseStatus::kBadRequest);

  Request bad_graph;
  bad_graph.spec.kind = CircuitKind::kGraph;
  bad_graph.graph = {1, 2, 3};
  EXPECT_EQ(service.submit(session, std::move(bad_graph)).get().status,
            ResponseStatus::kBadRequest);

  Request oversized;  // a "ciphertext" that is not reduced modulo x0 must
                      // be rejected at the trust boundary, not handed to
                      // a PE lane
  oversized.spec.kind = CircuitKind::kAnd;
  oversized.inputs = concat(
      fhe::encode_ciphertexts(
          std::vector<Ciphertext>{{scheme.public_key().x0 + bigint::BigUInt{1}, 1.0}}),
      fhe::encode_ciphertexts(std::vector<Ciphertext>{scheme.encrypt(true)}));
  EXPECT_EQ(service.submit(session, std::move(oversized)).get().status,
            ResponseStatus::kBadRequest);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.bad_requests, 5u);
  EXPECT_EQ(stats.completed, 0u);

  EXPECT_THROW((void)service.submit(999, Request{}), std::invalid_argument);
  EXPECT_THROW((void)service.tenant_stats(999), std::invalid_argument);
}

TEST(ServiceTest, LaneExceptionFailsOneRequestNotTheService) {
  // A backend that throws mid-execution must surface as kInternalError on
  // the offending request while the coordinator -- and other tenants --
  // keep serving.
  backend::Registry::instance().add("faulty", [] {
    return std::make_shared<backend::FunctionBackend>(
        [](const bigint::BigUInt&, const bigint::BigUInt&) -> bigint::BigUInt {
          throw std::runtime_error("injected lane fault");
        },
        "faulty");
  });

  ServiceOptions options;
  options.config.backend_name = "faulty";
  options.config.num_workers = 1;
  Service service(options);
  const SessionId session = service.create_session(DghvParams::toy(), 55);
  fhe::Dghv& scheme = service.scheme(session);

  Request doomed;
  doomed.spec.kind = CircuitKind::kAnd;
  doomed.inputs =
      concat(fhe::encode_ciphertexts(std::vector<Ciphertext>{scheme.encrypt(true)}),
             fhe::encode_ciphertexts(std::vector<Ciphertext>{scheme.encrypt(true)}));
  const Response response = service.submit(session, std::move(doomed)).get();
  EXPECT_EQ(response.status, ResponseStatus::kInternalError);
  EXPECT_NE(response.error.find("injected lane fault"), std::string::npos);
  EXPECT_EQ(service.stats().internal_errors, 1u);
  EXPECT_EQ(service.tenant_stats(session).internal_errors, 1u);

  // The service is still alive: a multiplication-free circuit completes.
  const Ciphertext ca = scheme.encrypt(true);
  const Ciphertext cb = scheme.encrypt(false);
  fhe::Graph probe(scheme);
  const std::vector<fhe::Wire> outs = {probe.gate_xor(probe.input(ca), probe.input(cb))};
  Request xor_only;
  xor_only.spec.kind = CircuitKind::kGraph;
  xor_only.graph = fhe::encode_graph(fhe::GraphTopology::capture(probe, outs));
  xor_only.inputs = fhe::encode_ciphertexts(std::vector<Ciphertext>{ca, cb});
  const Response alive = service.submit(session, std::move(xor_only)).get();
  ASSERT_TRUE(alive.ok()) << alive.error;
  const std::vector<Ciphertext> outputs = fhe::decode_ciphertexts(alive.outputs);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_TRUE(scheme.decrypt(outputs[0]));
}

// --- concurrency (the TSan cell runs this suite) ---------------------------

TEST(ServiceTest, ConcurrentTenantsFromManyThreads) {
  Service service(ssa_options(2, /*window_ms=*/5.0));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 3;

  std::vector<SessionId> sessions;
  for (int t = 0; t < kThreads; ++t) {
    sessions.push_back(service.create_session(DghvParams::toy(), 31 + static_cast<u64>(t)));
  }

  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &sessions, &failures, t] {
      const SessionId session = sessions[static_cast<std::size_t>(t)];
      fhe::Dghv& scheme = service.scheme(session);
      for (int i = 0; i < kPerThread; ++i) {
        const u64 x = static_cast<u64>(t + i) % 8;
        const u64 y = static_cast<u64>(t * 2 + i) % 8;
        Request request;
        request.spec.kind = CircuitKind::kAdder;
        request.spec.width = 3;
        request.inputs = concat(encrypt_inputs(scheme, x, 3), encrypt_inputs(scheme, y, 3));
        const Response response = service.submit(session, std::move(request)).get();
        if (!response.ok() || decrypt_response(scheme, response) != x + y) {
          ++failures[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[static_cast<std::size_t>(t)], 0) << t;

  service.wait_idle();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, static_cast<u64>(kThreads * kPerThread));
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.active_requests, 0u);
  EXPECT_EQ(stats.sessions, static_cast<std::size_t>(kThreads));
  // No tenant's resident spectra may survive its own requests.
  EXPECT_EQ(service.scheduler().spectrum_cache().resident_size(), 0u);

  u64 tenant_completed = 0;
  for (const SessionId session : sessions) {
    tenant_completed += service.tenant_stats(session).completed;
  }
  EXPECT_EQ(tenant_completed, stats.completed);
}

TEST(ServiceTest, ResidentSpectraAreEvictedOnceConsumed) {
  // Spectrum-resident rounds park wire spectra in the scheduler's shared
  // cache between wavefronts; single-use entries must be dropped right
  // after the wavefront that consumes them, so the cache drains back to
  // empty once the request retires.
  Service service(ssa_options(2));
  const SessionId session = service.create_session(DghvParams::toy(), 404);
  fhe::Dghv& scheme = service.scheme(session);

  Request request;
  request.spec.kind = CircuitKind::kAdder;
  request.spec.width = 4;
  request.inputs = concat(encrypt_inputs(scheme, 9, 4), encrypt_inputs(scheme, 5, 4));
  const Response response = service.submit(session, std::move(request)).get();
  ASSERT_TRUE(response.ok()) << response.error;
  EXPECT_EQ(decrypt_response(scheme, response), 14u);

  // The resident protocol ran and beat the per-gate eager tally
  // (3 transforms per AND gate).
  EXPECT_GT(response.transforms_executed, 0u);
  EXPECT_GT(response.transforms_avoided, 0);
  EXPECT_LT(response.transforms_executed, 3u * response.and_gates);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.transforms_executed, response.transforms_executed);
  EXPECT_EQ(stats.transforms_avoided, response.transforms_avoided);

  service.wait_idle();
  ssa::ConcurrentSpectrumCache& cache = service.scheduler().spectrum_cache();
  const ssa::ConcurrentSpectrumCache::Stats cache_stats = cache.stats();
  EXPECT_GT(cache_stats.resident_peak, 0u);
  EXPECT_GT(cache_stats.resident_evictions, 0u);
  EXPECT_EQ(cache.resident_size(), 0u) << "spent spectra must not outlive the request";
}

TEST(ServiceTest, DestructorDrainsOutstandingRequests) {
  std::future<Response> future;
  SessionId session = 0;
  fhe::Bytes secret;
  fhe::Bytes outputs;
  {
    Service service(ssa_options(1, /*window_ms=*/50.0));
    session = service.create_session(DghvParams::toy(), 9);
    fhe::Dghv& scheme = service.scheme(session);
    Request request;
    request.spec.kind = CircuitKind::kAdder;
    request.spec.width = 2;
    request.inputs = concat(encrypt_inputs(scheme, 1, 2), encrypt_inputs(scheme, 2, 2));
    secret = service.secret_key_bytes(session);
    future = service.submit(session, std::move(request));
    // Service destructs here with the request possibly still queued.
  }
  const Response response = future.get();
  ASSERT_TRUE(response.ok()) << response.error;
  // Decrypt with the serialized secret key: (c mod p) mod 2 per bit.
  const bigint::BigUInt p = fhe::decode_secret_key(secret);
  const std::vector<Ciphertext> bits = fhe::decode_ciphertexts(response.outputs);
  u64 value = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    value |= static_cast<u64>((bits[i].value % p).is_odd()) << i;
  }
  EXPECT_EQ(value, 3u);
}

// --- drain mode (the daemon's SIGTERM path) ---------------------------------

TEST(ServiceTest, StopAcceptingDrainsButRefusesNewWork) {
  Service service(ssa_options(1, /*window_ms=*/50.0));
  const SessionId session = service.create_session(DghvParams::toy(), 31);
  fhe::Dghv& scheme = service.scheme(session);

  Request request;
  request.spec.kind = CircuitKind::kAdder;
  request.spec.width = 2;
  request.inputs = concat(encrypt_inputs(scheme, 1, 2), encrypt_inputs(scheme, 2, 2));
  std::future<Response> admitted = service.submit(session, std::move(request));

  EXPECT_TRUE(service.accepting());
  service.stop_accepting();
  EXPECT_FALSE(service.accepting());
  service.stop_accepting();  // idempotent

  // New sessions are refused with the typed exception...
  EXPECT_THROW((void)service.create_session(DghvParams::toy(), 32), ShuttingDown);

  // ...and new submits complete immediately as kUnavailable...
  Request late;
  late.spec.kind = CircuitKind::kAnd;
  late.inputs = concat(
      fhe::encode_ciphertexts(std::vector<Ciphertext>{scheme.encrypt(true)}),
      fhe::encode_ciphertexts(std::vector<Ciphertext>{scheme.encrypt(false)}));
  const Response refused = service.submit(session, std::move(late)).get();
  EXPECT_EQ(refused.status, ResponseStatus::kUnavailable);
  EXPECT_FALSE(refused.error.empty());

  // ...while work admitted before the drain still runs to completion.
  const Response response = admitted.get();
  ASSERT_TRUE(response.ok()) << response.error;
  EXPECT_EQ(decrypt_response(scheme, response), 3u);
  service.wait_idle();
}

// --- bounded admission queue ------------------------------------------------

TEST(ServiceTest, BoundedQueueShedsWithRetryHintAndNeverExceedsDepth) {
  // One queue slot and a long admission window: the first submit occupies
  // the slot, every later one must shed synchronously -- the queue depth
  // can never exceed the bound because refusals never enter the queue.
  ServiceOptions options = ssa_options(1, /*window_ms=*/150.0);
  options.max_queue_depth = 1;
  Service service(options);
  const SessionId session = service.create_session(DghvParams::toy(), 41);
  fhe::Dghv& scheme = service.scheme(session);

  auto make_request = [&] {
    Request request;
    request.spec.kind = CircuitKind::kAnd;
    request.inputs = concat(
        fhe::encode_ciphertexts(std::vector<Ciphertext>{scheme.encrypt(true)}),
        fhe::encode_ciphertexts(std::vector<Ciphertext>{scheme.encrypt(true)}));
    return request;
  };

  std::future<Response> first = service.submit(session, make_request());
  constexpr int kExtra = 4;
  for (int i = 0; i < kExtra; ++i) {
    const Response shed = service.submit(session, make_request()).get();
    ASSERT_EQ(shed.status, ResponseStatus::kOverloaded) << shed.error;
    EXPECT_GT(shed.retry_after_ms, 0.0);
    EXPECT_LE(service.stats().queue_depth, 1u);
  }

  const Response response = first.get();
  ASSERT_TRUE(response.ok()) << response.error;
  EXPECT_EQ(decrypt_response(scheme, response), 1u);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed, static_cast<u64>(kExtra));
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(service.tenant_stats(session).shed, static_cast<u64>(kExtra));
  EXPECT_EQ(service.tenant_stats(session).submitted, 1u + kExtra);
}

// --- LRU session eviction ---------------------------------------------------

TEST(ServiceTest, SessionTableEvictsLeastRecentlyUsedWhenFull) {
  ServiceOptions options = ssa_options(1);
  options.max_sessions = 2;
  Service service(options);

  const SessionId a = service.create_session(DghvParams::toy(), 51);
  const SessionId b = service.create_session(DghvParams::toy(), 52);

  // Touch a so b becomes the least recently used...
  fhe::Dghv& scheme = service.scheme(a);
  Request request;
  request.spec.kind = CircuitKind::kAnd;
  request.inputs = concat(
      fhe::encode_ciphertexts(std::vector<Ciphertext>{scheme.encrypt(true)}),
      fhe::encode_ciphertexts(std::vector<Ciphertext>{scheme.encrypt(true)}));
  ASSERT_TRUE(service.submit(a, std::move(request)).get().ok());

  // ...then a third session must evict b, not a.
  const SessionId c = service.create_session(DghvParams::toy(), 53);
  EXPECT_NE(c, a);
  EXPECT_EQ(service.stats().sessions_evicted, 1u);
  EXPECT_EQ(service.stats().sessions, 2u);
  (void)service.scheme(a);  // the touched session survived
  EXPECT_THROW((void)service.tenant_stats(b), std::invalid_argument);

  Request late;
  late.spec.kind = CircuitKind::kAnd;
  EXPECT_THROW((void)service.submit(b, std::move(late)), std::invalid_argument);
}

TEST(ServiceTest, PublicKeyBytesMatchTheSessionKey) {
  Service service(ssa_options(1));
  const SessionId session = service.create_session(DghvParams::toy(), 13);
  const fhe::PublicKey key = fhe::decode_public_key(service.public_key_bytes(session));
  EXPECT_EQ(key.x0, service.scheme(session).public_key().x0);
  EXPECT_EQ(key.x.size(), service.scheme(session).public_key().x.size());
}

}  // namespace
}  // namespace hemul::core
