#include <gtest/gtest.h>

#include "hw/resources/report.hpp"

namespace hemul::hw {
namespace {

TEST(ResourceVec, Algebra) {
  const ResourceVec a{100, 200, 8, 2};
  const ResourceVec b{50, 100, 4, 1};
  const ResourceVec sum = a + b;
  EXPECT_EQ(sum.alms, 150u);
  EXPECT_EQ(sum.registers, 300u);
  EXPECT_EQ(sum.dsp_blocks, 12u);
  EXPECT_EQ(sum.m20k_blocks, 3u);
  const ResourceVec four = b * 4;
  EXPECT_EQ(four.alms, 200u);
  EXPECT_EQ(four.m20k_bits(), 4u * 20480);
}

TEST(Device, StratixVCapacities) {
  const Device d = Device::stratix_v_5sgsmd8();
  EXPECT_EQ(d.alms, 262400u);
  EXPECT_EQ(d.registers, 1049600u);  // 4 per ALM
  EXPECT_EQ(d.dsp_blocks, 1963u);
  EXPECT_EQ(d.m20k_blocks, 2048u);   // calibrated: 40 Mbit (see header)
}

TEST(Device, UtilizationAndFit) {
  const Device d = Device::stratix_v_5sgsmd8();
  const ResourceVec half{d.alms / 2, d.registers / 2, d.dsp_blocks / 2, d.m20k_blocks / 2};
  const auto u = d.utilization(half);
  EXPECT_NEAR(u.alms, 0.5, 1e-9);
  EXPECT_TRUE(d.fits(half));
  const ResourceVec too_big{d.alms + 1, 0, 0, 0};
  EXPECT_FALSE(d.fits(too_big));
}

// ---------------------------------------------------------------------------
// Table I regression: the model must land on the published numbers.
// ---------------------------------------------------------------------------

TEST(TableOne, ProposedColumnMatchesPaper) {
  const ResourceVec proposed = accelerator_cost(AccelParams::paper());
  EXPECT_EQ(proposed.alms, 104000u);
  EXPECT_EQ(proposed.registers, 116000u);
  EXPECT_EQ(proposed.dsp_blocks, 256u);
  // "8 Mbit": 408 blocks = 7.97 Mbit (within 1% of 8 Mbit).
  EXPECT_NEAR(static_cast<double>(proposed.m20k_bits()) / (1024.0 * 1024.0), 8.0, 0.1);
}

TEST(TableOne, BaselineColumnMatchesPaper) {
  const ResourceVec baseline = baseline28_cost();
  EXPECT_EQ(baseline.alms, 231000u);
  EXPECT_EQ(baseline.registers, 336377u);
  EXPECT_EQ(baseline.dsp_blocks, 720u);
}

TEST(TableOne, UtilizationPercentages) {
  const ResourceComparison c = ResourceComparison::paper();
  const auto up = c.device.utilization(c.proposed);
  const auto ub = c.device.utilization(c.baseline);
  // Paper Table I: 40% / 88% ALMs, 11% / 31% registers, 13% / 37% DSP,
  // 20% M20K. Registers for [28] model at 32.0% vs the published 31%
  // (the paper's own absolute and percentage figures are mutually
  // inconsistent at the ~1pp level; see EXPERIMENTS.md).
  EXPECT_NEAR(up.alms, 0.40, 0.01);
  EXPECT_NEAR(ub.alms, 0.88, 0.01);
  EXPECT_NEAR(up.registers, 0.11, 0.005);
  EXPECT_NEAR(ub.registers, 0.31, 0.015);
  EXPECT_NEAR(up.dsp_blocks, 0.13, 0.005);
  EXPECT_NEAR(ub.dsp_blocks, 0.37, 0.005);
  EXPECT_NEAR(up.m20k, 0.20, 0.005);
}

TEST(TableOne, SixtyPercentSavingClaim) {
  // "the combination of the optimizations presented above results in
  // around 60% saving in hardware costs."
  const ResourceComparison c = ResourceComparison::paper();
  EXPECT_NEAR(c.alm_saving(), 0.55, 0.06);  // 104k vs 231k = 55%
  EXPECT_LT(c.proposed.dsp_blocks, c.baseline.dsp_blocks);
  EXPECT_LT(c.proposed.registers, c.baseline.registers);
  // Register saving is the largest: 116k vs 336k = 65%.
  const double reg_saving =
      1.0 - static_cast<double>(c.proposed.registers) / c.baseline.registers;
  EXPECT_NEAR(reg_saving, 0.65, 0.05);
}

TEST(TableOne, RenderedTableContainsPaperNumbers) {
  const std::string table = ResourceComparison::paper().render_table();
  EXPECT_NE(table.find("104,000"), std::string::npos);
  EXPECT_NE(table.find("231,000"), std::string::npos);
  EXPECT_NE(table.find("336,377"), std::string::npos);
  EXPECT_NE(table.find("256"), std::string::npos);
  EXPECT_NE(table.find("720"), std::string::npos);
  EXPECT_NE(table.find("--"), std::string::npos);  // unreported baseline M20K
}

// ---------------------------------------------------------------------------
// Structural sensitivity: each optimization individually reduces area.
// ---------------------------------------------------------------------------

TEST(CostModel, EachOptimizationSavesArea) {
  const ResourceVec optimized = fft64_cost(Fft64UnitParams::optimized());

  Fft64UnitParams more_reductors = Fft64UnitParams::optimized();
  more_reductors.reductors = 64;
  EXPECT_GT(fft64_cost(more_reductors).alms, optimized.alms);

  Fft64UnitParams unmerged = Fft64UnitParams::optimized();
  unmerged.merged_carry_save = false;
  EXPECT_GT(fft64_cost(unmerged).registers, optimized.registers);

  Fft64UnitParams no_symmetry = Fft64UnitParams::optimized();
  no_symmetry.stage1_trees = 8;
  no_symmetry.dual_output_trees = false;
  EXPECT_GT(fft64_cost(no_symmetry).alms, optimized.alms);

  Fft64UnitParams full_shifters = Fft64UnitParams::optimized();
  full_shifters.full_barrel_shifters = true;
  EXPECT_GT(fft64_cost(full_shifters).alms, optimized.alms);
}

TEST(CostModel, BaselineUnitDominatesOptimized) {
  const ResourceVec opt = fft64_cost(Fft64UnitParams::optimized());
  const ResourceVec base = fft64_cost(Fft64UnitParams::baseline());
  EXPECT_GT(base.alms, 5 * opt.alms);  // 64 chains vs 4 trees
  EXPECT_GT(base.registers, 10 * opt.registers);
}

TEST(CostModel, MemoryPortWidthScalesAddressing) {
  // [28] needs 64-word ports; the optimized unit needs 8.
  EXPECT_GT(memory_cost(64).alms, memory_cost(8).alms * 7);
  EXPECT_EQ(memory_cost(8).m20k_blocks, 64u);  // double-buffered 32+32
}

TEST(CostModel, ProposedFitsDeviceBaselineBarely) {
  const Device d = Device::stratix_v_5sgsmd8();
  EXPECT_TRUE(d.fits(accelerator_cost(AccelParams::paper())));
  EXPECT_TRUE(d.fits(baseline28_cost()));  // 88% full but fits
}

TEST(CostModel, OnePeFitsCycloneVPrototypeBoard) {
  // The paper's first prototype: a multi-board Cyclone V rig, one PE per
  // low-end device, hypercube links off-chip.
  const Device board = Device::cyclone_v_5csema5();
  const ResourceVec one_pe = pe_cost(AccelParams::paper().pe);
  EXPECT_TRUE(board.fits(one_pe));
  // But the full 4-PE accelerator cannot fit a single Cyclone V.
  EXPECT_FALSE(board.fits(accelerator_cost(AccelParams::paper())));
  // It is a tight fit: the PE uses most of the board's logic.
  EXPECT_GT(board.utilization(one_pe).alms, 0.5);
}

TEST(CostModel, PeCountScalesLinearly) {
  AccelParams two = AccelParams::paper();
  two.num_pes = 2;
  AccelParams four = AccelParams::paper();
  const ResourceVec r2 = accelerator_cost(two);
  const ResourceVec r4 = accelerator_cost(four);
  EXPECT_EQ(r4.dsp_blocks, 2 * r2.dsp_blocks);
  EXPECT_GT(r4.alms, r2.alms);
  EXPECT_LT(r4.alms, 2 * r2.alms);  // shared overhead amortizes
}

}  // namespace
}  // namespace hemul::hw
