#include <gtest/gtest.h>

#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "fhe/circuits.hpp"
#include "fhe/evaluator.hpp"
#include "fhe/serialize.hpp"
#include "service/request.hpp"
#include "util/rng.hpp"

namespace hemul::fhe {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  SerializeTest() : scheme_(DghvParams::toy(), 41) {}

  Dghv scheme_;
};

// --- BigUInt round trips ---------------------------------------------------

TEST_F(SerializeTest, BigUIntEdgeSizesRoundTrip) {
  const u64 max = std::numeric_limits<u64>::max();
  std::vector<bigint::BigUInt> cases = {
      bigint::BigUInt{},               // zero: empty limb vector
      bigint::BigUInt{1},              // one
      bigint::BigUInt{max},            // max single limb
      bigint::BigUInt::pow2(64),       // exactly two limbs, low limb zero
      bigint::BigUInt::pow2(64) - bigint::BigUInt{1},
      bigint::BigUInt::pow2(8191),     // many limbs, power of two
  };
  util::Rng rng(0x5E1A);
  for (const std::size_t bits : {1u, 63u, 64u, 65u, 1000u, 99991u}) {
    cases.push_back(bigint::BigUInt::random_bits(rng, bits));
  }

  for (const bigint::BigUInt& x : cases) {
    const Bytes wire = encode_biguint(x);
    EXPECT_EQ(decode_biguint(wire), x) << "round trip of " << x.bit_length() << " bits";
  }
}

TEST_F(SerializeTest, NonCanonicalLimbVectorIsRejected) {
  // encode 1 as [1, 0]: a trailing zero limb the canonical form forbids.
  ByteWriter w;
  w.begin_frame(WireTag::kBigUInt);
  w.put_u64(2);
  w.put_u64(1);
  w.put_u64(0);
  w.finish_frame();
  EXPECT_THROW((void)decode_biguint(w.bytes()), SerializeError);
}

TEST_F(SerializeTest, HostileLimbCountDoesNotAllocate) {
  // A count field claiming 2^60 limbs with no bytes behind it must be
  // rejected before any allocation happens.
  ByteWriter w;
  w.begin_frame(WireTag::kBigUInt);
  w.put_u64(1ULL << 60);
  w.finish_frame();
  EXPECT_THROW((void)decode_biguint(w.bytes()), SerializeError);
}

// --- params / keys ---------------------------------------------------------

TEST_F(SerializeTest, ParamsRoundTrip) {
  for (const DghvParams& params :
       {DghvParams::toy(), DghvParams::medium(), DghvParams::deep(), DghvParams::small_paper()}) {
    const DghvParams back = decode_params(encode_params(params));
    EXPECT_EQ(back.lambda, params.lambda);
    EXPECT_EQ(back.rho, params.rho);
    EXPECT_EQ(back.eta, params.eta);
    EXPECT_EQ(back.gamma, params.gamma);
    EXPECT_EQ(back.tau, params.tau);
  }
}

TEST_F(SerializeTest, InconsistentParamsAreRejected) {
  DghvParams params = DghvParams::toy();
  params.eta = params.gamma + 1;  // violates eta < gamma
  ByteWriter w;
  w.begin_frame(WireTag::kParams);
  w.put_u32(params.lambda);
  w.put_u64(params.rho);
  w.put_u64(params.eta);
  w.put_u64(params.gamma);
  w.put_u32(params.tau);
  w.finish_frame();
  EXPECT_THROW((void)decode_params(w.bytes()), SerializeError);
}

TEST_F(SerializeTest, PublicKeyRoundTrip) {
  const PublicKey& key = scheme_.public_key();
  const PublicKey back = decode_public_key(encode_public_key(key));
  EXPECT_EQ(back.x0, key.x0);
  EXPECT_EQ(back.x, key.x);
  EXPECT_EQ(back.params.eta, key.params.eta);

  // A decrypt through a round-tripped secret key matches the original.
  const bigint::BigUInt p = decode_secret_key(encode_secret_key(scheme_.secret_key()));
  EXPECT_EQ(p, scheme_.secret_key());
}

TEST_F(SerializeTest, HostileTauDoesNotAllocate) {
  // A public-key frame whose params claim tau = 2^32 - 1 (internally
  // consistent, so it passes validate()) with a matching element count
  // must be rejected before reserving gigabytes for the element vector.
  DghvParams params = scheme_.params();
  params.tau = 0xFFFFFFFFu;
  ByteWriter w;
  w.begin_frame(WireTag::kPublicKey);
  w.put_u32(params.lambda);
  w.put_u64(params.rho);
  w.put_u64(params.eta);
  w.put_u64(params.gamma);
  w.put_u32(params.tau);
  w.put_biguint(scheme_.public_key().x0);
  w.put_u32(params.tau);  // element count matches tau, but no bytes behind it
  w.finish_frame();
  EXPECT_THROW((void)decode_public_key(w.bytes()), SerializeError);
}

TEST_F(SerializeTest, SecretKeyTagIsNotInterchangeable) {
  // Key material must not decode under an operand tag and vice versa.
  const Bytes secret = encode_secret_key(scheme_.secret_key());
  EXPECT_THROW((void)decode_biguint(secret), SerializeError);
  const Bytes operand = encode_biguint(scheme_.secret_key());
  EXPECT_THROW((void)decode_secret_key(operand), SerializeError);
}

// --- ciphertexts -----------------------------------------------------------

TEST_F(SerializeTest, CiphertextRoundTripPreservesValueAndNoise) {
  Ciphertext c = scheme_.encrypt(true);
  const Ciphertext back = decode_ciphertext(encode_ciphertext(c));
  EXPECT_EQ(back.value, c.value);
  EXPECT_EQ(back.noise_bits, c.noise_bits);
  EXPECT_TRUE(scheme_.decrypt(back));
}

TEST_F(SerializeTest, CiphertextStreamRoundTrip) {
  std::vector<Ciphertext> cs;
  for (int i = 0; i < 5; ++i) cs.push_back(scheme_.encrypt(i % 2 == 0));
  const std::vector<Ciphertext> back = decode_ciphertexts(encode_ciphertexts(cs));
  ASSERT_EQ(back.size(), cs.size());
  for (std::size_t i = 0; i < cs.size(); ++i) {
    EXPECT_EQ(back[i].value, cs[i].value);
    EXPECT_EQ(scheme_.decrypt(back[i]), i % 2 == 0);
  }
}

TEST_F(SerializeTest, EmptyCiphertextStreamDecodesEmpty) {
  EXPECT_TRUE(decode_ciphertexts({}).empty());
}

// --- graphs ----------------------------------------------------------------

TEST_F(SerializeTest, GraphTopologyRoundTripEvaluatesBitExact) {
  // Record an adder, ship topology + inputs over the wire, rebuild, and
  // check the rebuilt graph evaluates to the very same ciphertexts.
  Graph graph(scheme_);
  EncryptedInt a = encrypt_int(scheme_, 11, 4);
  EncryptedInt b = encrypt_int(scheme_, 6, 4);
  const std::vector<Wire> wa = graph.inputs(a);
  const std::vector<Wire> wb = graph.inputs(b);
  const Ciphertext zero_ct = scheme_.encrypt(false);
  const Wire zero = graph.input(zero_ct);
  Graph::AddResult r = graph.add(wa, wb, zero);
  std::vector<Wire> outputs = std::move(r.sum);
  outputs.push_back(r.carry_out);

  const GraphTopology topology = GraphTopology::capture(graph, outputs);
  const Bytes wire = encode_graph(topology);
  const GraphTopology back = decode_graph(wire);
  EXPECT_EQ(back.nodes.size(), topology.nodes.size());
  EXPECT_EQ(back.input_count(), 9u);  // 2 x 4 bits + zero

  // Ship the input ciphertexts separately, as a Request would.
  std::vector<Ciphertext> inputs;
  for (const Ciphertext& bit : a) inputs.push_back(bit);
  for (const Ciphertext& bit : b) inputs.push_back(bit);
  inputs.push_back(zero_ct);
  const std::vector<Ciphertext> shipped =
      decode_ciphertexts(encode_ciphertexts(inputs));

  Graph rebuilt(scheme_);
  const std::vector<Wire> rebuilt_outputs = back.build(rebuilt, shipped);

  Evaluator evaluator;
  const std::vector<Ciphertext> direct = evaluator.evaluate(graph, outputs);
  // The zero input re-encrypts identically only because we shipped the
  // same ciphertext; both graphs see identical input values.
  const std::vector<Ciphertext> remote = evaluator.evaluate(rebuilt, rebuilt_outputs);
  ASSERT_EQ(direct.size(), remote.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].value, remote[i].value) << "output " << i;
  }
  EXPECT_EQ(decrypt_int(scheme_, remote), 17u);
}

TEST_F(SerializeTest, GraphWithForwardReferenceIsRejected) {
  GraphTopology topology;
  topology.nodes.push_back({GateOp::kInput, Wire::kInvalid, Wire::kInvalid});
  topology.nodes.push_back({GateOp::kAnd, 0, 2});  // operand 2 not yet recorded
  topology.nodes.push_back({GateOp::kInput, Wire::kInvalid, Wire::kInvalid});
  topology.outputs = {1};
  EXPECT_THROW((void)encode_graph(topology), SerializeError);
}

TEST_F(SerializeTest, GraphWithBadOutputOrOpIsRejected) {
  ByteWriter w;
  w.begin_frame(WireTag::kGraph);
  w.put_u32(1);
  w.put_u8(0);     // one input node
  w.put_u32(1);
  w.put_u32(7);    // output references node 7 of 1
  w.finish_frame();
  EXPECT_THROW((void)decode_graph(w.bytes()), SerializeError);

  ByteWriter w2;
  w2.begin_frame(WireTag::kGraph);
  w2.put_u32(2);
  w2.put_u8(0);
  w2.put_u8(9);    // unknown gate op
  w2.put_u32(0);
  w2.put_u32(0);
  w2.put_u32(1);
  w2.put_u32(1);
  w2.finish_frame();
  EXPECT_THROW((void)decode_graph(w2.bytes()), SerializeError);
}

TEST_F(SerializeTest, DuplicateGatesCollapseButOutputsStayCorrect) {
  // A hand-built topology may repeat a gate; CSE collapses the duplicates
  // on rebuild and the output map must still resolve.
  GraphTopology topology;
  topology.nodes.push_back({GateOp::kInput, Wire::kInvalid, Wire::kInvalid});
  topology.nodes.push_back({GateOp::kInput, Wire::kInvalid, Wire::kInvalid});
  topology.nodes.push_back({GateOp::kAnd, 0, 1});
  topology.nodes.push_back({GateOp::kAnd, 0, 1});  // duplicate of node 2
  topology.outputs = {3};

  Graph graph(scheme_);
  const std::vector<Ciphertext> inputs = {scheme_.encrypt(true), scheme_.encrypt(true)};
  const std::vector<Wire> outputs = topology.build(graph, inputs);
  EXPECT_EQ(graph.and_gates(), 1u);  // collapsed

  Evaluator evaluator;
  const std::vector<Ciphertext> result = evaluator.evaluate(graph, outputs);
  EXPECT_TRUE(scheme_.decrypt(result[0]));
}

TEST_F(SerializeTest, InputCountMismatchIsRejected) {
  GraphTopology topology;
  topology.nodes.push_back({GateOp::kInput, Wire::kInvalid, Wire::kInvalid});
  topology.nodes.push_back({GateOp::kInput, Wire::kInvalid, Wire::kInvalid});
  topology.nodes.push_back({GateOp::kXor, 0, 1});
  topology.outputs = {2};

  Graph graph(scheme_);
  const std::vector<Ciphertext> too_few = {scheme_.encrypt(true)};
  EXPECT_THROW((void)topology.build(graph, too_few), SerializeError);
}

// --- malformed buffers -----------------------------------------------------

TEST_F(SerializeTest, TruncationAtEveryLengthIsRejectedNotUB) {
  // Chop every wire object at every prefix length: decoding must throw
  // SerializeError each time (never crash/UB -- the ASan cell watches).
  Graph graph(scheme_);
  const Wire a = graph.input(scheme_.encrypt(true));
  const Wire b = graph.input(scheme_.encrypt(false));
  const std::vector<Wire> outs = {graph.gate_and(a, b)};

  const std::vector<Bytes> frames = {
      encode_biguint(scheme_.public_key().x0),
      encode_params(scheme_.params()),
      encode_public_key(scheme_.public_key()),
      encode_secret_key(scheme_.secret_key()),
      encode_ciphertext(scheme_.encrypt(true)),
      encode_graph(GraphTopology::capture(graph, outs)),
  };
  const auto decoders = std::vector<std::function<void(std::span<const u8>)>>{
      [](std::span<const u8> s) { (void)decode_biguint(s); },
      [](std::span<const u8> s) { (void)decode_params(s); },
      [](std::span<const u8> s) { (void)decode_public_key(s); },
      [](std::span<const u8> s) { (void)decode_secret_key(s); },
      [](std::span<const u8> s) { (void)decode_ciphertext(s); },
      [](std::span<const u8> s) { (void)decode_graph(s); },
  };

  for (std::size_t f = 0; f < frames.size(); ++f) {
    const Bytes& whole = frames[f];
    for (std::size_t len = 0; len < whole.size(); ++len) {
      EXPECT_THROW(decoders[f](std::span<const u8>(whole.data(), len)), SerializeError)
          << "frame " << f << " truncated to " << len << " of " << whole.size();
    }
    decoders[f](whole);  // the untruncated buffer still decodes
  }
}

// --- request frames (core::Request over the wire) --------------------------

TEST_F(SerializeTest, RequestRoundTripCarriesSpecAndPayloads) {
  core::Request request;
  request.spec.kind = core::CircuitKind::kMul;
  request.spec.width = 8;
  request.spec.lowering.strategy = LoweringStrategy::kCarrySave;
  request.inputs = {0xAA, 0xBB, 0xCC};

  const Bytes wire = encode_request(request);
  const core::Request back = core::decode_request(wire);
  EXPECT_EQ(back.spec, request.spec);
  EXPECT_EQ(back.graph, request.graph);
  EXPECT_EQ(back.inputs, request.inputs);

  // A graph request carries its topology payload through the same frame.
  Graph graph(scheme_);
  const Wire a = graph.input(scheme_.encrypt(true));
  const Wire b = graph.input(scheme_.encrypt(false));
  core::Request graph_request;
  graph_request.spec.kind = core::CircuitKind::kGraph;
  const std::vector<Wire> graph_outs = {graph.gate_and(a, b)};
  graph_request.graph = encode_graph(GraphTopology::capture(graph, graph_outs));
  graph_request.inputs = encode_ciphertext(scheme_.encrypt(true));
  const core::Request graph_back = core::decode_request(encode_request(graph_request));
  EXPECT_EQ(graph_back.spec, graph_request.spec);
  EXPECT_EQ(graph_back.graph, graph_request.graph);
  EXPECT_EQ(graph_back.inputs, graph_request.inputs);
}

TEST_F(SerializeTest, RequestTruncationAtEveryLengthIsRejected) {
  core::Request request;
  request.spec.kind = core::CircuitKind::kAdder;
  request.spec.width = 4;
  request.inputs = {1, 2, 3, 4, 5};
  const Bytes whole = encode_request(request);
  for (std::size_t len = 0; len < whole.size(); ++len) {
    EXPECT_THROW((void)core::decode_request(std::span<const u8>(whole.data(), len)),
                 SerializeError)
        << "truncated to " << len << " of " << whole.size();
  }
  (void)core::decode_request(whole);  // the untruncated buffer still decodes
}

TEST_F(SerializeTest, RequestHostileFieldBytesAreRejected) {
  core::Request request;
  request.spec.kind = core::CircuitKind::kLessThan;
  request.spec.width = 4;
  const Bytes good = encode_request(request);
  // Frame header is magic(4) + version(1) + tag(1) + length(8); the spec
  // payload starts right after: kind u8, width u32 (LE), strategy u8.
  constexpr std::size_t kKindOffset = 14;
  constexpr std::size_t kWidthOffset = 15;
  constexpr std::size_t kStrategyOffset = 19;

  Bytes bad_kind = good;
  bad_kind[kKindOffset] = 0x63;
  EXPECT_THROW((void)core::decode_request(bad_kind), SerializeError);

  Bytes bad_strategy = good;
  bad_strategy[kStrategyOffset] = 0x7;
  EXPECT_THROW((void)core::decode_request(bad_strategy), SerializeError);

  Bytes zero_width = good;
  zero_width[kWidthOffset] = 0;
  EXPECT_THROW((void)core::decode_request(zero_width), SerializeError);

  Bytes huge_width = good;
  huge_width[kWidthOffset + 2] = 0xFF;  // width |= 0xFF0000: far past the cap
  EXPECT_THROW((void)core::decode_request(huge_width), SerializeError);

  Bytes trailing = good;
  trailing.push_back(0);
  EXPECT_THROW((void)core::decode_request(trailing), SerializeError);
}

// --- envelope frames (the fleet transport header) --------------------------

TEST_F(SerializeTest, EnvelopeRoundTripCarriesHeaderAndPayload) {
  Envelope envelope;
  envelope.type = MessageType::kSubmit;
  envelope.session = 0x1122334455667788ull;
  envelope.request_id = 42;
  envelope.payload = {0xDE, 0xAD, 0xBE, 0xEF};

  const Envelope back = decode_envelope(encode_envelope(envelope));
  EXPECT_EQ(back.type, envelope.type);
  EXPECT_EQ(back.session, envelope.session);
  EXPECT_EQ(back.request_id, envelope.request_id);
  EXPECT_EQ(back.payload, envelope.payload);

  // An empty payload is legal (kStats, kShutdown, kShutdownAck carry none).
  Envelope bare;
  bare.type = MessageType::kShutdownAck;
  const Envelope bare_back = decode_envelope(encode_envelope(bare));
  EXPECT_EQ(bare_back.type, MessageType::kShutdownAck);
  EXPECT_TRUE(bare_back.payload.empty());
}

TEST_F(SerializeTest, EnvelopeTruncationAtEveryLengthIsRejected) {
  Envelope envelope;
  envelope.type = MessageType::kCreateSession;
  envelope.session = 7;
  envelope.request_id = 9;
  envelope.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  const Bytes whole = encode_envelope(envelope);
  for (std::size_t len = 0; len < whole.size(); ++len) {
    EXPECT_THROW((void)decode_envelope(std::span<const u8>(whole.data(), len)),
                 SerializeError)
        << "truncated to " << len << " of " << whole.size();
  }
  (void)decode_envelope(whole);  // the untruncated buffer still decodes
}

TEST_F(SerializeTest, EnvelopeHostileBytesAreRejected) {
  Envelope envelope;
  envelope.type = MessageType::kStats;
  const Bytes good = encode_envelope(envelope);
  // Envelope payload starts after the 14-byte frame header: type u8,
  // session u64 (LE), request id u64 (LE), then the inner payload bytes.
  constexpr std::size_t kTypeOffset = 14;

  for (const u8 hostile_type : {u8{0}, u8{12}, u8{0x63}, u8{0xFF}}) {
    Bytes bad_type = good;
    bad_type[kTypeOffset] = hostile_type;
    EXPECT_THROW((void)decode_envelope(bad_type), SerializeError)
        << "message type byte " << static_cast<unsigned>(hostile_type);
  }

  Bytes bad_tag = good;
  bad_tag[5] = 0x02;  // a valid tag, but not kEnvelope
  EXPECT_THROW((void)decode_envelope(bad_tag), SerializeError);

  Bytes bad_length = good;
  bad_length[6] ^= 0x01;  // length prefix no longer matches the payload
  EXPECT_THROW((void)decode_envelope(bad_length), SerializeError);

  Bytes trailing = good;
  trailing.push_back(0);
  EXPECT_THROW((void)decode_envelope(trailing), SerializeError);
}

TEST_F(SerializeTest, EnvelopeDeadlineExtensionRoundTrips) {
  Envelope envelope;
  envelope.type = MessageType::kSubmit;
  envelope.session = 3;
  envelope.request_id = 5;
  envelope.payload = {0xAB, 0xCD};
  envelope.deadline_ms = 1234;

  const Bytes with_deadline = encode_envelope(envelope);
  const Envelope back = decode_envelope(with_deadline);
  EXPECT_EQ(back.deadline_ms, 1234u);
  EXPECT_EQ(back.type, envelope.type);
  EXPECT_EQ(back.payload, envelope.payload);

  // A deadline-free envelope encodes with NO extension tail: byte-identical
  // to the version-1 layout, so old peers keep parsing it.
  envelope.deadline_ms = 0;
  const Bytes without_deadline = encode_envelope(envelope);
  EXPECT_EQ(with_deadline.size(), without_deadline.size() + 9);  // u8 tag + u64 value
  EXPECT_EQ(decode_envelope(without_deadline).deadline_ms, 0u);

  // Truncating inside the extension tail is rejected, never UB. (Cutting
  // the tail off entirely is the legal deadline-free layout, so the loop
  // starts one byte past it: a tag with no value.)
  for (std::size_t len = without_deadline.size() + 1; len < with_deadline.size(); ++len) {
    Bytes cut(with_deadline.begin(),
              with_deadline.begin() + static_cast<std::ptrdiff_t>(len));
    // Patch the frame length so only the extension itself is short.
    const u64 payload_len = len - 14;
    for (int b = 0; b < 8; ++b) cut[6 + b] = static_cast<u8>(payload_len >> (8 * b));
    EXPECT_THROW((void)decode_envelope(cut), SerializeError)
        << "extension truncated to " << len << " of " << with_deadline.size();
  }
}

TEST_F(SerializeTest, EnvelopeHostileExtensionBytesAreRejected) {
  Envelope envelope;
  envelope.type = MessageType::kStats;
  envelope.deadline_ms = 7;
  const Bytes good = encode_envelope(envelope);
  const std::size_t ext_tag_at = good.size() - 9;  // u8 tag, then u64 value

  Bytes unknown_ext = good;
  unknown_ext[ext_tag_at] = 0x7F;
  EXPECT_THROW((void)decode_envelope(unknown_ext), SerializeError);

  Bytes zero_deadline = good;
  for (std::size_t b = 0; b < 8; ++b) zero_deadline[ext_tag_at + 1 + b] = 0;
  EXPECT_THROW((void)decode_envelope(zero_deadline), SerializeError);

  // Two deadline extensions: the second is a duplicate, not a larger value.
  Bytes duplicated = good;
  duplicated.insert(duplicated.end(), good.begin() + static_cast<std::ptrdiff_t>(ext_tag_at),
                    good.end());
  const u64 payload_len = duplicated.size() - 14;
  for (int b = 0; b < 8; ++b) duplicated[6 + b] = static_cast<u8>(payload_len >> (8 * b));
  EXPECT_THROW((void)decode_envelope(duplicated), SerializeError);
}

TEST_F(SerializeTest, PingPongEnvelopesRoundTrip) {
  Envelope ping;
  ping.type = MessageType::kPing;
  ping.request_id = 11;
  const Envelope ping_back = decode_envelope(encode_envelope(ping));
  EXPECT_EQ(ping_back.type, MessageType::kPing);
  EXPECT_EQ(ping_back.request_id, 11u);
  EXPECT_TRUE(ping_back.payload.empty());

  Envelope pong;
  pong.type = MessageType::kPong;
  pong.request_id = 11;
  EXPECT_EQ(decode_envelope(encode_envelope(pong)).type, MessageType::kPong);
}

TEST_F(SerializeTest, ErrorPayloadRoundTripsAndRejectsHostileCodes) {
  const Bytes payload =
      encode_error_payload(WireErrorCode::kShuttingDown, "draining, come back later");
  const auto [code, message] = decode_error_payload(payload);
  EXPECT_EQ(code, WireErrorCode::kShuttingDown);
  EXPECT_EQ(message, "draining, come back later");

  // The empty diagnostic is legal; the code byte alone carries meaning.
  const auto [bare_code, bare_message] =
      decode_error_payload(encode_error_payload(WireErrorCode::kInternal, ""));
  EXPECT_EQ(bare_code, WireErrorCode::kInternal);
  EXPECT_TRUE(bare_message.empty());

  for (const u8 hostile_code : {u8{0}, u8{6}, u8{0xFF}}) {
    Bytes bad = payload;
    bad[0] = hostile_code;
    EXPECT_THROW((void)decode_error_payload(bad), SerializeError)
        << "error code byte " << static_cast<unsigned>(hostile_code);
  }

  EXPECT_THROW((void)decode_error_payload(std::span<const u8>{}), SerializeError);
}

// --- response frames (core::Response over the wire) -------------------------

TEST_F(SerializeTest, ResponseRoundTripCarriesStatusAndCounters) {
  core::Response response;
  response.status = core::ResponseStatus::kOverloaded;
  response.error = "admission queue at its bound (3 queued)";
  response.outputs = {0x10, 0x20, 0x30};
  response.retry_after_ms = 2.5;
  response.and_gates = 12;
  response.levels = 3;
  response.shared_batches = 4;
  response.transforms_executed = 18;
  response.transforms_avoided = -6;
  response.queue_ms = 1.25;
  response.exec_ms = 9.75;

  const core::Response back = core::decode_response(core::encode_response(response));
  EXPECT_EQ(back.status, response.status);
  EXPECT_EQ(back.error, response.error);
  EXPECT_EQ(back.outputs, response.outputs);
  EXPECT_EQ(back.retry_after_ms, response.retry_after_ms);
  EXPECT_EQ(back.and_gates, response.and_gates);
  EXPECT_EQ(back.levels, response.levels);
  EXPECT_EQ(back.shared_batches, response.shared_batches);
  EXPECT_EQ(back.transforms_executed, response.transforms_executed);
  EXPECT_EQ(back.transforms_avoided, response.transforms_avoided);
  EXPECT_EQ(back.queue_ms, response.queue_ms);
  EXPECT_EQ(back.exec_ms, response.exec_ms);
}

TEST_F(SerializeTest, ResponseTruncationAndHostileBytesAreRejected) {
  core::Response response;
  response.status = core::ResponseStatus::kOk;
  response.outputs = {9, 8, 7};
  response.and_gates = 1;
  const Bytes whole = core::encode_response(response);
  for (std::size_t len = 0; len < whole.size(); ++len) {
    EXPECT_THROW((void)core::decode_response(std::span<const u8>(whole.data(), len)),
                 SerializeError)
        << "truncated to " << len << " of " << whole.size();
  }
  (void)core::decode_response(whole);

  // The status byte sits right after the 14-byte frame header.
  Bytes bad_status = whole;
  bad_status[14] = 0x2A;
  EXPECT_THROW((void)core::decode_response(bad_status), SerializeError);

  Bytes trailing = whole;
  trailing.push_back(0);
  EXPECT_THROW((void)core::decode_response(trailing), SerializeError);
}

// --- the documented wire example -------------------------------------------

TEST_F(SerializeTest, DocumentedSubmitEnvelopeHexExampleRoundTrips) {
  // The exact 75-byte kSubmit envelope worked through byte by byte in
  // docs/wire-protocol.md: session 7, request id 1, wrapping the kRequest
  // frame for spec {and, width 1, ripple-carry} with empty graph/input
  // payloads. Keep the doc and this array in sync.
  const Bytes documented = {
      0x48, 0x4D, 0x57, 0x31, 0x01, 0x09, 0x3D, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x03, 0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x24, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x48, 0x4D, 0x57, 0x31, 0x01, 0x07, 0x16, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
  };

  core::Request request;
  request.spec.kind = core::CircuitKind::kAnd;
  request.spec.width = 1;
  request.spec.lowering.strategy = LoweringStrategy::kRippleCarry;

  Envelope envelope;
  envelope.type = MessageType::kSubmit;
  envelope.session = 7;
  envelope.request_id = 1;
  envelope.payload = core::encode_request(request);
  EXPECT_EQ(encode_envelope(envelope), documented);

  const Envelope back = decode_envelope(documented);
  EXPECT_EQ(back.type, MessageType::kSubmit);
  EXPECT_EQ(back.session, 7u);
  EXPECT_EQ(back.request_id, 1u);
  const core::Request decoded = core::decode_request(back.payload);
  EXPECT_EQ(decoded.spec, request.spec);
  EXPECT_TRUE(decoded.graph.empty());
  EXPECT_TRUE(decoded.inputs.empty());
}

TEST_F(SerializeTest, DocumentedPingEnvelopeHexExampleRoundTrips) {
  // The exact 48-byte kPing envelope worked through byte by byte in
  // docs/wire-protocol.md: request id 3, empty payload, and a 250 ms
  // deadline riding the versioned extension tail. Keep the doc and this
  // array in sync.
  const Bytes documented = {
      0x48, 0x4D, 0x57, 0x31, 0x01, 0x09, 0x22, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x0A, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x03,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x01, 0xFA, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
  };

  Envelope ping;
  ping.type = MessageType::kPing;
  ping.request_id = 3;
  ping.deadline_ms = 250;
  EXPECT_EQ(encode_envelope(ping), documented);

  const Envelope back = decode_envelope(documented);
  EXPECT_EQ(back.type, MessageType::kPing);
  EXPECT_EQ(back.request_id, 3u);
  EXPECT_EQ(back.deadline_ms, 250u);
  EXPECT_TRUE(back.payload.empty());
}

TEST_F(SerializeTest, CorruptedHeaderBytesAreRejected) {
  const Bytes good = encode_ciphertext(scheme_.encrypt(true));

  Bytes bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW((void)decode_ciphertext(bad_magic), SerializeError);

  Bytes bad_version = good;
  bad_version[4] = 0x7F;
  EXPECT_THROW((void)decode_ciphertext(bad_version), SerializeError);

  Bytes bad_tag = good;
  bad_tag[5] = 0x66;
  EXPECT_THROW((void)decode_ciphertext(bad_tag), SerializeError);

  Bytes bad_length = good;
  bad_length[6] ^= 0x01;  // length prefix no longer matches the payload
  EXPECT_THROW((void)decode_ciphertext(bad_length), SerializeError);

  Bytes trailing = good;
  trailing.push_back(0);
  EXPECT_THROW((void)decode_ciphertext(trailing), SerializeError);
}

}  // namespace
}  // namespace hemul::fhe
