// Executable abstract: every headline quantitative claim of the paper in
// one place, checked against this reproduction. Each test quotes the
// claim it verifies.

#include <gtest/gtest.h>

#include "core/accelerator.hpp"
#include "fp/roots.hpp"
#include "hw/perf/literature.hpp"
#include "ntt/mixed_radix.hpp"
#include "ssa/params.hpp"

namespace hemul {
namespace {

TEST(PaperClaims, SolinasPrimeChoice) {
  // "we choose the Solinas prime number p = 2^64 - 2^32 + 1"
  EXPECT_EQ(fp::kModulus, (1ULL << 63) - (1ULL << 31) + ((1ULL << 63) - (1ULL << 31)) + 1);
  EXPECT_EQ(fp::kModulus, 0xFFFFFFFF00000001ULL);
}

TEST(PaperClaims, OperandDecomposition) {
  // "We assume to deal with operands of 786,432 bits ... decomposed into
  // 32K coefficients of 24 bits. We need to apply FFT on 64K points."
  const ssa::SsaParams p = ssa::SsaParams::paper();
  EXPECT_EQ(p.max_operand_bits(), 786432u);
  EXPECT_EQ(p.num_coeffs, 32u * 1024);
  EXPECT_EQ(p.coeff_bits, 24u);
  EXPECT_EQ(p.transform_size, 64u * 1024);
}

TEST(PaperClaims, RadixDecomposition) {
  // "it can be computed with three stages using radix-64 and radix-16
  // sub-transforms" with 1024 + 1024 FFT-64s and 4096 FFT-16s.
  const ntt::NttPlan plan = ntt::NttPlan::paper_64k();
  EXPECT_EQ(plan.stage_count(), 3u);
  EXPECT_EQ(plan.radices[0], 64u);
  EXPECT_EQ(plan.radices[1], 64u);
  EXPECT_EQ(plan.radices[2], 16u);
  EXPECT_EQ(plan.sub_ffts_in_stage(0) + plan.sub_ffts_in_stage(1), 2048u);
  EXPECT_EQ(plan.sub_ffts_in_stage(2), 4096u);
}

TEST(PaperClaims, ShiftOnlyTwiddles) {
  // "In the chosen finite field, the 64th root of unity is 8, so
  // multiplications in the FFT formula become simple shifts" and
  // "Since 8^64 (mod p) = 2^192 (mod p) = 1, no intermediate value can
  // exceed 192 bits."
  EXPECT_TRUE(fp::has_order(fp::kOmega64, 64));
  EXPECT_EQ(fp::kTwo.pow(192), fp::kOne);
  EXPECT_EQ(fp::kOmega64.pow(64), fp::kOne);
}

TEST(PaperClaims, Equation4Identity) {
  // "a*2^96 + b*2^64 + c*2^32 + d = 2^32(b+c) - a - b + d (mod p)"
  const fp::Fp a{0x9ABCDEF0}, b{0x12345678}, c{0xDEADBEEF}, d{0x0BADF00D};
  const fp::Fp lhs = a.mul_pow2(96) + b.mul_pow2(64) + c.mul_pow2(32) + d;
  const fp::Fp rhs = (b + c).mul_pow2(32) - a - b + d;
  EXPECT_EQ(lhs, rhs);
}

TEST(PaperClaims, TimingFormula) {
  // "T_FFT = 2*(T_C*8*1024)/P + (T_C*2)*4096/P ... = 20480ns + 10240ns"
  const hw::PerfBreakdown b = hw::evaluate_perf(hw::PerfParams::paper());
  EXPECT_EQ(b.stage_cycles[0] + b.stage_cycles[1], 4096u);  // 20480 ns @ 5ns
  EXPECT_EQ(b.stage_cycles[2], 2048u);                      // 10240 ns
  EXPECT_NEAR(b.fft_us(), 30.72, 1e-9);                     // "~ 30.7 us"
  // "T_DOTPROD = T_C*65536/32 ~ 10.2 us"; carry "approximately 20 us";
  // "the overall time for a complete SSA multiplication is ~ 122 us".
  EXPECT_NEAR(b.dotprod_us(), 10.24, 1e-9);
  EXPECT_NEAR(b.carry_us(), 20.48, 1e-9);
  EXPECT_NEAR(b.mult_us(), 122.88, 1e-9);
}

TEST(PaperClaims, TableOneTotals) {
  // Table I, both columns.
  const hw::ResourceComparison c = hw::ResourceComparison::paper();
  EXPECT_EQ(c.proposed.alms, 104000u);
  EXPECT_EQ(c.proposed.registers, 116000u);
  EXPECT_EQ(c.proposed.dsp_blocks, 256u);
  EXPECT_EQ(c.baseline.alms, 231000u);
  EXPECT_EQ(c.baseline.registers, 336377u);
  EXPECT_EQ(c.baseline.dsp_blocks, 720u);
}

TEST(PaperClaims, TableTwoRatios) {
  // "The execution time of [28] is 3.32X larger than the time taken by
  // our solution, while the other results are 1.69X larger, or more."
  const hw::PerfBreakdown b = hw::evaluate_perf(hw::PerfParams::paper());
  const auto& lit = hw::literature_table();
  for (const auto& entry : lit) {
    if (entry.mult_us.has_value()) {
      EXPECT_GE(*entry.mult_us / b.mult_us(), 1.65) << entry.label;
    }
  }
  EXPECT_NEAR(*lit[0].mult_us / b.mult_us(), 3.32, 0.05);
}

TEST(PaperClaims, MemoryOrganization) {
  // "A 4x4 array of basic memory blocks yields a size of 256Kb which can
  // hold a vector of 4096 points" -- each bank 256 x 64b, two M20K.
  EXPECT_EQ(hw::BankedBuffer::kBanks, 16u);
  EXPECT_EQ(hw::BankedBuffer::kCapacityWords, 4096u);
  EXPECT_EQ(hw::SramBank::kDepth * hw::SramBank::kWordBits * hw::BankedBuffer::kBanks,
            256u * 1024);
  EXPECT_EQ(hw::SramBank::kM20kBlocks, 2u);
  // "Access parallelism is eight words per clock cycle."
  EXPECT_EQ(hw::BankedBuffer::kWordsPerCycle, 8u);
}

TEST(PaperClaims, ReductorSharingAdvantage) {
  // "we use only eight modular reductors ... it reduces the area occupancy
  // of the FFT64 unit and the memory parallelism required (eight words
  // vs. 64)."
  EXPECT_EQ(hw::OptimizedFft64::kReductors, 8u);
  EXPECT_EQ(hw::BaselineFft64::kReductors, 64u);
  EXPECT_EQ(hw::OptimizedFft64::kOutputWordsPerCycle, 8u);
  EXPECT_EQ(hw::BaselineFft64::kOutputWordsPerCycle, 64u);
}

TEST(PaperClaims, DspBudgetPerMultiplier) {
  // "use a basic 32x32-bit DSP multiplier, which requires only two DSP
  // blocks. Using school-book multiplication, four 32x32-bit multipliers
  // are needed" -- and 32 of them serve the dot product.
  EXPECT_EQ(hw::Dsp32x32::kDspBlocks, 2u);
  EXPECT_EQ(hw::ModMult64::kMultipliers, 4u);
  EXPECT_EQ(hw::ModMult64::kDspBlocks, 8u);
  EXPECT_EQ(hw::AcceleratorConfig::paper().pointwise_multipliers, 32u);
}

TEST(PaperClaims, HypercubeInterleavingRule) {
  // "the number of communication stages for FFT computation is the
  // hypercube dimension d ... We must have l > d."
  EXPECT_EQ(hw::Hypercube(4).dimensions(), 2u);
  EXPECT_TRUE(hw::StageSchedule::legal(3, 2));
  EXPECT_FALSE(hw::StageSchedule::legal(3, 3));
}

TEST(PaperClaims, SsaAsymptoticAdvantage) {
  // "the Schonhage-Strassen algorithm ... is advantageous for operands of
  // at least 100,000 bits": at the paper's 786,432 bits our SSA beats the
  // classical algorithms (the crossover bench measures wall-clock; here we
  // check the operation-count proxy: one 64K transform costs ~N log N
  // field ops while schoolbook costs (bits/64)^2 word products).
  const double ssa_ops = 3.0 * 65536 * 17 + 65536;          // 3 NTTs + dot
  const double schoolbook_ops = (786432.0 / 64) * (786432.0 / 64);
  EXPECT_LT(ssa_ops * 10, schoolbook_ops);  // order-of-magnitude margin
}

}  // namespace
}  // namespace hemul
