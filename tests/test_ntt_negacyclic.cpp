#include <gtest/gtest.h>

#include "ntt/negacyclic.hpp"
#include "ntt/radix2.hpp"
#include "ntt/reference.hpp"
#include "util/rng.hpp"

namespace hemul::ntt {
namespace {

using fp::Fp;
using fp::FpVec;

FpVec random_vec(util::Rng& rng, std::size_t n) {
  FpVec v(n);
  for (auto& x : v) x = Fp{rng.next()};
  return v;
}

TEST(Negacyclic, HandComputedSizeTwo) {
  // (a0 + a1 x)(b0 + b1 x) mod (x^2 + 1):
  //   c0 = a0 b0 - a1 b1, c1 = a0 b1 + a1 b0.
  const FpVec a{Fp{2}, Fp{3}};
  const FpVec b{Fp{5}, Fp{7}};
  const FpVec c = negacyclic_convolve(a, b);
  EXPECT_EQ(c[0], Fp{10} - Fp{21});
  EXPECT_EQ(c[1], Fp{14 + 15});
}

TEST(Negacyclic, XTimesXIsMinusOne) {
  // x * x = x^2 = -1 mod (x^2 + 1).
  const FpVec x{fp::kZero, fp::kOne};
  const FpVec c = negacyclic_convolve(x, x);
  EXPECT_EQ(c[0], fp::kOne.neg());
  EXPECT_EQ(c[1], fp::kZero);
}

class NegacyclicSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NegacyclicSizes, MatchesReference) {
  const std::size_t n = GetParam();
  util::Rng rng(n);
  const FpVec a = random_vec(rng, n);
  const FpVec b = random_vec(rng, n);
  EXPECT_EQ(negacyclic_convolve(a, b), negacyclic_convolve_reference(a, b));
}

INSTANTIATE_TEST_SUITE_P(Sizes, NegacyclicSizes,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256, 1024));

TEST(Negacyclic, DiffersFromCyclic) {
  // The wraparound term changes sign; with nonzero high-degree overlap the
  // two convolutions must differ.
  util::Rng rng(7);
  const FpVec a = random_vec(rng, 16);
  const FpVec b = random_vec(rng, 16);
  EXPECT_NE(negacyclic_convolve(a, b), cyclic_convolve_reference(a, b));
}

TEST(Negacyclic, AgreesWithCyclicWhenNoWraparound) {
  // Products of low-degree polynomials never wrap: both convolutions match.
  util::Rng rng(8);
  FpVec a(32, fp::kZero);
  FpVec b(32, fp::kZero);
  for (int i = 0; i < 8; ++i) {
    a[i] = Fp{rng.next()};
    b[i] = Fp{rng.next()};
  }
  EXPECT_EQ(negacyclic_convolve(a, b), cyclic_convolve_reference(a, b));
}

TEST(Negacyclic, Linearity) {
  util::Rng rng(9);
  const FpVec a = random_vec(rng, 64);
  const FpVec b = random_vec(rng, 64);
  const FpVec c = random_vec(rng, 64);
  FpVec bc(64);
  for (int i = 0; i < 64; ++i) bc[i] = b[i] + c[i];
  const FpVec lhs = negacyclic_convolve(a, bc);
  const FpVec ab = negacyclic_convolve(a, b);
  const FpVec ac = negacyclic_convolve(a, c);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(lhs[i], ab[i] + ac[i]);
}

TEST(Negacyclic, RejectsBadSizes) {
  const FpVec a(3, fp::kZero);
  const FpVec b(3, fp::kZero);
  EXPECT_THROW(negacyclic_convolve(a, b), std::logic_error);
  const FpVec c(4, fp::kZero);
  EXPECT_THROW(negacyclic_convolve(a, c), std::logic_error);
}

TEST(Radix2Convolve, MatchesForwardPointwiseInverse) {
  // The DIF/DIT fast path must equal the plain three-pass route.
  util::Rng rng(10);
  for (const std::size_t n : {4u, 64u, 512u}) {
    const Radix2Ntt engine(n);
    const FpVec a = random_vec(rng, n);
    const FpVec b = random_vec(rng, n);
    FpVec fa = a;
    FpVec fb = b;
    engine.forward(fa);
    engine.forward(fb);
    for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
    engine.inverse(fa);
    EXPECT_EQ(engine.convolve(a, b), fa) << n;
  }
}

TEST(Radix2Convolve, SquareFastPath) {
  util::Rng rng(11);
  const FpVec a = random_vec(rng, 256);
  const Radix2Ntt engine(256);
  EXPECT_EQ(engine.convolve_square(a), engine.convolve(a, a));
}

TEST(SharedRadix2, CachesEngines) {
  const Radix2Ntt& a = shared_radix2(1024);
  const Radix2Ntt& b = shared_radix2(1024);
  EXPECT_EQ(&a, &b);  // same instance
  EXPECT_NE(&a, &shared_radix2(2048));
  EXPECT_EQ(a.size(), 1024u);
}

}  // namespace
}  // namespace hemul::ntt
