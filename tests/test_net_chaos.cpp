// Deterministic chaos suite: the fault injector's plan parser and decision
// function, then real fleet traffic through an injector-armed transport.
// The invariant under test is the robustness contract of src/net/: with
// faults injected at the socket layer, EVERY submit future still completes
// with a Response (some of them kUnavailable/kTimeout), no call hangs, and
// the process never crashes. Runs in its own binary so arming the global
// injector cannot bleed into other suites.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fhe/circuits.hpp"
#include "fhe/evaluator.hpp"
#include "fhe/serialize.hpp"
#include "net/client.hpp"
#include "net/fault.hpp"
#include "net/router.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "service/service.hpp"

namespace hemul::net {
namespace {

using fhe::Ciphertext;
using fhe::DghvParams;

/// Uninstalls the process-global injector even when a test fails midway.
struct InjectorGuard {
  explicit InjectorGuard(FaultPlan plan)
      : injector(std::make_shared<FaultInjector>(plan)) {
    install_fault_injector(injector);
  }
  ~InjectorGuard() { install_fault_injector(nullptr); }
  std::shared_ptr<FaultInjector> injector;
};

core::ServiceOptions ssa_options(unsigned workers) {
  core::ServiceOptions options;
  options.config.backend_name = "ssa";
  options.config.num_workers = workers;
  return options;
}

std::string loopback(int port) { return "127.0.0.1:" + std::to_string(port); }

fhe::Bytes concat(const fhe::Bytes& a, const fhe::Bytes& b) {
  fhe::Bytes out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

core::Request mul_request(fhe::Dghv& scheme, u64 x, u64 y) {
  core::Request request;
  request.spec.kind = core::CircuitKind::kMul;
  request.spec.width = 2;
  request.spec.lowering.strategy = fhe::LoweringStrategy::kCarrySave;
  request.inputs = concat(fhe::encode_ciphertexts(fhe::encrypt_int(scheme, x, 2)),
                          fhe::encode_ciphertexts(fhe::encrypt_int(scheme, y, 2)));
  return request;
}

u64 decrypt_response(const fhe::Dghv& scheme, const core::Response& response) {
  const std::vector<Ciphertext> outputs = fhe::decode_ciphertexts(response.outputs);
  return fhe::decrypt_int(scheme, fhe::EncryptedInt(outputs.begin(), outputs.end()));
}

// --- FaultPlan::parse --------------------------------------------------------

TEST(FaultPlanTest, ParsesTheDocumentedSyntax) {
  const FaultPlan plan = FaultPlan::parse("seed=42,drop=0.05,delay=0.1:2,corrupt=0.02");
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.drop, 0.05);
  EXPECT_DOUBLE_EQ(plan.delay, 0.1);
  EXPECT_DOUBLE_EQ(plan.delay_ms, 2.0);
  EXPECT_DOUBLE_EQ(plan.corrupt, 0.02);
  EXPECT_DOUBLE_EQ(plan.truncate, 0.0);
  EXPECT_DOUBLE_EQ(plan.refuse, 0.0);
  EXPECT_FALSE(plan.empty());

  const FaultPlan quiet = FaultPlan::parse("seed=7");
  EXPECT_TRUE(quiet.empty());

  const FaultPlan full = FaultPlan::parse(
      "seed=1,drop=0.3,delay=0.3:0.5,truncate=0.2,corrupt=0.2,refuse=1");
  EXPECT_DOUBLE_EQ(full.truncate, 0.2);
  EXPECT_DOUBLE_EQ(full.refuse, 1.0);
  EXPECT_DOUBLE_EQ(full.delay_ms, 0.5);
}

TEST(FaultPlanTest, RejectsHostileSpecs) {
  EXPECT_THROW((void)FaultPlan::parse("drop"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("bogus=1"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("drop=1.5"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("drop=-0.1"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("drop=abc"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("delay=0.1:-2"), std::invalid_argument);
  // The per-message probabilities share one roll of the dice, so their sum
  // is itself bounded.
  EXPECT_THROW((void)FaultPlan::parse("drop=0.6,corrupt=0.6"), std::invalid_argument);
}

// --- FaultInjector::decide ---------------------------------------------------

TEST(FaultInjectorTest, DecisionsAreDeterministicInSeedDirectionAndIndex) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.drop = 0.2;
  plan.delay = 0.2;
  plan.corrupt = 0.2;
  const FaultInjector a(plan);
  const FaultInjector b(plan);
  u64 injected = 0;
  for (u64 index = 0; index < 512; ++index) {
    for (const FaultDirection dir :
         {FaultDirection::kOutbound, FaultDirection::kInbound}) {
      const FaultAction action = a.decide(dir, index);
      EXPECT_EQ(action, b.decide(dir, index)) << "index " << index;
      if (action != FaultAction::kNone) ++injected;
    }
  }
  // ~60% fault mass over 1024 decisions: a run that injects nothing (or
  // everything) means the hash is broken, not that the dice were unlucky.
  EXPECT_GT(injected, 300u);
  EXPECT_LT(injected, 900u);

  // A different seed resolves the same indices differently somewhere.
  plan.seed = 99;
  const FaultInjector c(plan);
  bool diverged = false;
  for (u64 index = 0; index < 512 && !diverged; ++index) {
    diverged = c.decide(FaultDirection::kOutbound, index) !=
               a.decide(FaultDirection::kOutbound, index);
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjectorTest, ConnectDirectionOnlyRefuses) {
  FaultPlan plan;
  plan.seed = 5;
  plan.drop = 1.0;  // would fire on every message...
  const FaultInjector drops(plan);
  for (u64 index = 0; index < 64; ++index) {
    EXPECT_EQ(drops.decide(FaultDirection::kConnect, index), FaultAction::kNone);
  }
  plan.drop = 0.0;
  plan.refuse = 1.0;
  const FaultInjector refuses(plan);
  for (u64 index = 0; index < 64; ++index) {
    EXPECT_EQ(refuses.decide(FaultDirection::kConnect, index), FaultAction::kRefuse);
    EXPECT_EQ(refuses.decide(FaultDirection::kOutbound, index), FaultAction::kNone);
  }
}

TEST(FaultInjectorTest, CorruptOffsetIsDeterministicAndInBounds) {
  FaultPlan plan;
  plan.seed = 77;
  const FaultInjector a(plan);
  const FaultInjector b(plan);
  for (u64 index = 0; index < 256; ++index) {
    const std::size_t offset = a.corrupt_offset(index, 200);
    EXPECT_LT(offset, 200u);
    EXPECT_EQ(offset, b.corrupt_offset(index, 200));
  }
  EXPECT_EQ(a.corrupt_offset(1, 0), 0u);  // degenerate size never divides by 0
}

// --- Deadlines against a silent peer ----------------------------------------

// A listener that accepts and then never answers: the client's timer thread
// is the only thing standing between the caller and an eternal hang.
TEST(ChaosTest, SilentPeerTimesOutInsteadOfHanging) {
  Listener listener(0);
  const int port = listener.port();
  std::thread accepter([&listener] {
    try {
      Socket peer = listener.accept_connection();
      // Hold the socket open, answer nothing, until the client goes away
      // (its teardown closes the connection and recv_exact throws).
      for (;;) {
        u8 byte = 0;
        peer.recv_exact(std::span<u8>(&byte, 1));
      }
    } catch (const std::exception&) {
      // client gone or listener closed -- test over
    }
  });

  {
    ShardClient::Options options;
    options.deadline_ms = 50;
    ShardClient client(loopback(port), options);

    // Control call: throws TimeoutError, not NetError, not a hang.
    EXPECT_THROW(client.ping(), TimeoutError);

    // Submit: the future COMPLETES with kTimeout.
    auto future = client.submit_raw(1, fhe::Bytes{0xAA, 0xBB});
    ASSERT_EQ(future.wait_for(std::chrono::seconds(10)), std::future_status::ready);
    const core::Response response = future.get();
    EXPECT_EQ(response.status, core::ResponseStatus::kTimeout);

    // A per-call override beats the default.
    EXPECT_THROW(client.ping(25.0), TimeoutError);
  }
  listener.close();
  accepter.join();
}

// --- Full-stack chaos --------------------------------------------------------

// Router + two shards with a seeded drop/delay plan armed in-process (every
// envelope of every connection rolls the dice). Deterministic seed, modest
// probabilities; the assertion is liveness and honesty: every future
// completes, every failure is a typed status, and the answers that do come
// back decrypt bit-exactly. (Corruption is excluded here on purpose: a
// flipped ciphertext byte survives framing undetected and decrypts to a
// wrong value -- see the corruption test below, which asserts liveness
// only.)
TEST(ChaosTest, FleetTrafficUnderSeededFaultPlanNeverHangs) {
  core::Service service_a(ssa_options(2));
  core::Service service_b(ssa_options(2));
  ShardServer shard_a(service_a);
  ShardServer shard_b(service_b);

  Router::Options options;
  options.retry.max_retries = 2;
  Router router({loopback(shard_a.port()), loopback(shard_b.port())}, options);

  FaultPlan plan;
  plan.seed = 20260808;
  plan.drop = 0.02;
  plan.delay = 0.05;
  plan.delay_ms = 1.0;
  InjectorGuard chaos(plan);

  constexpr int kTenants = 4;
  constexpr int kRequestsPerTenant = 6;
  // Client-side deadline so dropped frames resolve as kTimeout instead of
  // waiting forever on a reply that the injector swallowed.
  ShardClient::Options client_options;
  client_options.deadline_ms = 5000;

  int completed = 0, ok = 0, degraded = 0;
  for (int tenant = 0; tenant < kTenants; ++tenant) {
    try {
      ShardClient client(loopback(router.port()), client_options);
      ShardClient::SessionKeys keys =
          client.create_session(DghvParams::toy(), 900 + tenant);
      fhe::Dghv scheme(std::move(keys.public_key), std::move(keys.secret_key),
                       1900 + tenant);
      std::vector<std::future<core::Response>> futures;
      futures.reserve(kRequestsPerTenant);
      // Operands must fit the 2-bit encrypt width.
      const u64 x = 1 + static_cast<u64>(tenant) % 3;
      for (int i = 0; i < kRequestsPerTenant; ++i) {
        futures.push_back(
            client.submit(keys.session, mul_request(scheme, x, 1 + i % 3)));
      }
      for (int i = 0; i < kRequestsPerTenant; ++i) {
        ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(30)),
                  std::future_status::ready)
            << "tenant " << tenant << " request " << i << " hung";
        const core::Response response = futures[i].get();
        ++completed;
        if (response.ok()) {
          EXPECT_EQ(decrypt_response(scheme, response), x * (1 + i % 3));
          ++ok;
        } else {
          // Injected damage must surface as a typed, retryable status.
          EXPECT_TRUE(response.status == core::ResponseStatus::kUnavailable ||
                      response.status == core::ResponseStatus::kTimeout ||
                      response.status == core::ResponseStatus::kExpired ||
                      response.status == core::ResponseStatus::kInternalError)
              << "status " << static_cast<int>(response.status) << ": "
              << response.error;
          ++degraded;
        }
      }
    } catch (const std::exception&) {
      // create_session ate a fault (dropped or corrupted create frame):
      // an honest typed failure, the tenant just never got going.
      degraded += kRequestsPerTenant;
      completed += kRequestsPerTenant;
    }
  }
  EXPECT_EQ(completed, kTenants * kRequestsPerTenant);
  EXPECT_GT(ok, 0) << "the plan is mild; some traffic must get through";
  // The seed is fixed, so the injector verifiably did SOMETHING.
  EXPECT_GT(chaos.injector->injected(), 0u) << chaos.injector->summary();
}

// The hostile arm: corruption and truncation. A flipped byte past the frame
// header is undetectable (the toy protocol carries no checksum), so wrong
// answers are possible BY DESIGN; a truncated frame kills the connection
// mid-write. The contract under test is narrower than above: nothing hangs,
// nothing crashes, every future completes with SOME response, and failed
// control calls surface as typed exceptions.
TEST(ChaosTest, CorruptionAndTruncationCompleteEveryFuture) {
  core::Service service(ssa_options(2));
  ShardServer shard(service);

  // Fault indices are per-socket, so short-lived connections only ever
  // consult small indices; this seed is chosen to fault indices 1..6 while
  // leaving index 0 clean (the create frame itself gets through).
  FaultPlan plan;
  plan.seed = 11;
  plan.corrupt = 0.2;
  plan.truncate = 0.1;
  InjectorGuard chaos(plan);

  ShardClient::Options client_options;
  client_options.deadline_ms = 5000;

  int completed = 0;
  constexpr int kTenants = 4;
  constexpr int kRequestsPerTenant = 4;
  for (int tenant = 0; tenant < kTenants; ++tenant) {
    try {
      ShardClient client(loopback(shard.port()), client_options);
      ShardClient::SessionKeys keys =
          client.create_session(DghvParams::toy(), 500 + tenant);
      fhe::Dghv scheme(std::move(keys.public_key), std::move(keys.secret_key),
                       1500 + tenant);
      std::vector<std::future<core::Response>> futures;
      for (int i = 0; i < kRequestsPerTenant; ++i) {
        futures.push_back(client.submit(keys.session, mul_request(scheme, 2, 1 + i)));
      }
      for (auto& future : futures) {
        ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready);
        (void)future.get();  // any status is fine; completing is the point
        ++completed;
      }
    } catch (const std::exception&) {
      // a corrupted/truncated create or key frame -- typed, not a hang
      completed += kRequestsPerTenant;
    }
  }
  EXPECT_EQ(completed, kTenants * kRequestsPerTenant);
  EXPECT_GT(chaos.injector->injected(), 0u) << chaos.injector->summary();
}

// Refused connects surface as NetError from the ShardClient constructor and
// are booked by the injector.
TEST(ChaosTest, RefusedConnectsFailCleanly) {
  core::Service service(ssa_options(1));
  ShardServer shard(service);

  FaultPlan plan;
  plan.seed = 3;
  plan.refuse = 1.0;
  InjectorGuard chaos(plan);

  EXPECT_THROW(ShardClient(loopback(shard.port())), NetError);
  EXPECT_GE(chaos.injector->injected(), 1u);
}

}  // namespace
}  // namespace hemul::net
