// Cycle-stepped streaming behavior: the paper's pipelining claims
// (Section IV.b / V) verified against an explicit clock model.

#include <gtest/gtest.h>

#include <map>

#include "bigint/mul.hpp"
#include "hw/accel/accelerator.hpp"
#include "hw/fft64/pipelined_fft64.hpp"
#include "hw/perf/perf_model.hpp"
#include "ntt/reference.hpp"
#include "util/rng.hpp"

namespace hemul::hw {
namespace {

using bigint::BigUInt;
using fp::Fp;
using fp::FpVec;

FpVec random_vec(util::Rng& rng, std::size_t n) {
  FpVec v(n);
  for (auto& x : v) x = Fp{rng.next()};
  return v;
}

/// Runs the pipeline until idle, appending all drained rows.
void run_to_completion(PipelinedFft64& pipe, std::vector<PipelinedFft64::DrainedRow>& rows,
                       u64 max_cycles = 100000) {
  while (!pipe.idle()) {
    pipe.tick();
    for (auto& r : pipe.take_drained()) rows.push_back(r);
    ASSERT_LT(pipe.current_cycle(), max_cycles) << "pipeline wedged";
  }
}

void run_to_completion(PipelinedFft64& pipe, u64 max_cycles = 100000) {
  std::vector<PipelinedFft64::DrainedRow> rows;
  run_to_completion(pipe, rows, max_cycles);
}

/// Reassembles a job's 64 outputs from its drained rows.
FpVec reassemble(const std::vector<PipelinedFft64::DrainedRow>& rows, u64 job) {
  FpVec out(64, fp::kZero);
  for (const auto& r : rows) {
    if (r.job_id != job) continue;
    for (unsigned k2 = 0; k2 < 8; ++k2) out[8 * k2 + r.drain_cycle] = r.words[k2];
  }
  return out;
}

TEST(PipelinedFft64, SingleJobFunctionalAndDrainShape) {
  PipelinedFft64 pipe;
  util::Rng rng(1);
  const FpVec in = random_vec(rng, 64);
  const u64 id = pipe.push_job(in);

  std::vector<PipelinedFft64::DrainedRow> rows;
  run_to_completion(pipe, rows, 1000);

  ASSERT_EQ(rows.size(), 8u);  // 8 rows of 8 components
  EXPECT_EQ(reassemble(rows, id), ntt::dft_reference(in, fp::kOmega64));
  // Rows drain in cycle order 0..7.
  for (unsigned t = 0; t < 8; ++t) EXPECT_EQ(rows[t].drain_cycle, t);
}

TEST(PipelinedFft64, SteadyStateThroughputIsEightCycles) {
  // Paper Section V: "The FFT-64 unit is able to output an FFT every eight
  // clock cycles."
  PipelinedFft64 pipe;
  util::Rng rng(2);
  constexpr unsigned kJobs = 32;
  for (unsigned j = 0; j < kJobs; ++j) pipe.push_job(random_vec(rng, 64));
  run_to_completion(pipe);

  EXPECT_EQ(pipe.jobs_completed(), kJobs);
  // Total = issue + fill + 8 cycles per job + drain tail: 8*N + 9.
  EXPECT_EQ(pipe.current_cycle(), 8u * kJobs + 9);
}

TEST(PipelinedFft64, DrainOverlapsNextAccumulation) {
  PipelinedFft64 pipe;
  util::Rng rng(3);
  for (int j = 0; j < 4; ++j) pipe.push_job(random_vec(rng, 64));
  run_to_completion(pipe);
  // Steady state keeps exactly two jobs in flight (one accumulating, one
  // draining) -- the overlap that shares 8 reductors across 64 outputs.
  EXPECT_EQ(pipe.max_in_flight(), 2u);
}

TEST(PipelinedFft64, BackToBackJobsDrainContiguously) {
  PipelinedFft64 pipe;
  util::Rng rng(4);
  const u64 a = pipe.push_job(random_vec(rng, 64));
  const u64 b = pipe.push_job(random_vec(rng, 64));
  run_to_completion(pipe);
  const auto ca = pipe.first_output_cycle(a);
  const auto cb = pipe.first_output_cycle(b);
  ASSERT_TRUE(ca.has_value());
  ASSERT_TRUE(cb.has_value());
  EXPECT_EQ(*cb - *ca, 8u);  // initiation interval
}

TEST(PipelinedFft64, ManyJobsAllBitExact) {
  PipelinedFft64 pipe;
  util::Rng rng(5);
  std::map<u64, FpVec> inputs;
  for (int j = 0; j < 10; ++j) {
    FpVec in = random_vec(rng, 64);
    inputs[pipe.push_job(in)] = std::move(in);
  }
  std::vector<PipelinedFft64::DrainedRow> rows;
  run_to_completion(pipe, rows);
  for (const auto& [id, in] : inputs) {
    EXPECT_EQ(reassemble(rows, id), ntt::dft_reference(in, fp::kOmega64)) << id;
  }
}

TEST(PipelinedFft64, LateArrivalsRestartPipeline) {
  PipelinedFft64 pipe;
  util::Rng rng(6);
  const FpVec in1 = random_vec(rng, 64);
  pipe.push_job(in1);
  run_to_completion(pipe);
  const u64 after_first = pipe.current_cycle();

  const FpVec in2 = random_vec(rng, 64);
  const u64 id2 = pipe.push_job(in2);
  std::vector<PipelinedFft64::DrainedRow> rows;
  run_to_completion(pipe, rows);
  EXPECT_EQ(reassemble(rows, id2), ntt::dft_reference(in2, fp::kOmega64));
  EXPECT_GT(pipe.current_cycle(), after_first);
}

TEST(PipelinedFft64, RejectsWrongJobSize) {
  PipelinedFft64 pipe;
  EXPECT_THROW((void)pipe.push_job(FpVec(32, fp::kZero)), std::logic_error);
}

// ---------------------------------------------------------------------------
// Batch multiplication streaming on the full accelerator.
// ---------------------------------------------------------------------------

TEST(MultiplyBatch, ProductsBitExactAndTimingPipelined) {
  HwAccelerator accel(AcceleratorConfig::paper());
  util::Rng rng(7);
  std::vector<std::pair<BigUInt, BigUInt>> ops;
  for (int i = 0; i < 4; ++i) {
    ops.emplace_back(BigUInt::random_bits(rng, 50000), BigUInt::random_bits(rng, 50000));
  }
  HwAccelerator::BatchReport report;
  const auto products = accel.multiply_batch(ops, &report);

  ASSERT_EQ(products.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(products[i], bigint::mul_karatsuba(ops[i].first, ops[i].second));
  }
  EXPECT_EQ(report.operations, 4u);
  EXPECT_EQ(report.first_latency_cycles, 24576u);
  EXPECT_EQ(report.interval_cycles, 3u * 6144 + 2048);  // FFT engine + dot product
  EXPECT_EQ(report.total_cycles, 24576u + 3u * 20480);
  // Streaming 4 products is cheaper than 4 single-shot latencies.
  EXPECT_LT(report.total_cycles, 4u * 24576);
  EXPECT_NEAR(report.throughput_per_second(), 9765.6, 0.1);
}

TEST(MultiplyBatch, EmptyAndSingle) {
  HwAccelerator accel(AcceleratorConfig::paper());
  HwAccelerator::BatchReport report;
  EXPECT_TRUE(accel.multiply_batch({}, &report).empty());
  EXPECT_EQ(report.total_cycles, 0u);

  util::Rng rng(8);
  std::vector<std::pair<BigUInt, BigUInt>> one;
  one.emplace_back(BigUInt::random_bits(rng, 1000), BigUInt::random_bits(rng, 1000));
  (void)accel.multiply_batch(one, &report);
  EXPECT_EQ(report.total_cycles, report.first_latency_cycles);
}

TEST(MultiplyBatch, MatchesPerfModelThroughput) {
  HwAccelerator accel(AcceleratorConfig::paper());
  PerfParams params = PerfParams::paper();
  const PerfBreakdown perf = evaluate_perf(params);

  util::Rng rng(9);
  std::vector<std::pair<BigUInt, BigUInt>> ops;
  ops.emplace_back(BigUInt::random_bits(rng, 1000), BigUInt::random_bits(rng, 1000));
  ops.emplace_back(BigUInt::random_bits(rng, 1000), BigUInt::random_bits(rng, 1000));
  HwAccelerator::BatchReport report;
  (void)accel.multiply_batch(ops, &report);
  EXPECT_EQ(report.interval_cycles, perf.pipelined_interval_cycles);
}

}  // namespace
}  // namespace hemul::hw
