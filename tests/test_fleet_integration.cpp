// Multi-process fleet integration: fork/exec the REAL hemul_shard and
// hemul_router binaries (from HEMUL_BINARY_DIR) on loopback, then drive
// them through ShardClient exactly as a remote tenant would. The
// in-process variants of these scenarios live in test_net.cpp; this file
// exists to prove the daemons themselves -- argument parsing, the
// port-on-stdout launcher contract, signal handling, the drain path --
// compose into a working fleet.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "fhe/circuits.hpp"
#include "fhe/evaluator.hpp"
#include "fhe/serialize.hpp"
#include "net/client.hpp"
#include "net/router.hpp"
#include "service/service.hpp"

namespace hemul::net {
namespace {

using fhe::Ciphertext;
using fhe::DghvParams;

#ifndef HEMUL_BINARY_DIR
#define HEMUL_BINARY_DIR "."
#endif

/// One forked daemon with its stdout on a pipe (the launcher contract:
/// the daemon prints "<name> listening on port <N>" before any traffic).
class Daemon {
 public:
  Daemon(const std::string& binary, std::vector<std::string> args) {
    int fds[2];
    if (pipe(fds) != 0) {
      ADD_FAILURE() << "pipe: " << std::strerror(errno);
      return;
    }
    pid_ = fork();
    if (pid_ == 0) {
      // Child: stdout -> pipe, then exec the daemon.
      ::close(fds[0]);
      dup2(fds[1], STDOUT_FILENO);
      ::close(fds[1]);
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(binary.c_str()));
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      execv(binary.c_str(), argv.data());
      std::perror("execv");
      _exit(127);
    }
    ::close(fds[1]);
    stdout_ = fdopen(fds[0], "r");
  }

  ~Daemon() {
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
    }
    if (stdout_ != nullptr) fclose(stdout_);
  }

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Blocks until the daemon announces its port on stdout; 0 on EOF (the
  /// daemon died before binding -- the test then fails with a message).
  int read_port() {
    char line[256];
    while (fgets(line, sizeof line, stdout_) != nullptr) {
      const char* marker = std::strstr(line, "listening on port ");
      if (marker != nullptr) return std::atoi(marker + std::strlen("listening on port "));
    }
    return 0;
  }

  void send_signal(int signum) { kill(pid_, signum); }

  /// Reaps the child and returns how it went: its exit code, or
  /// 128 + signal when killed by one.
  int wait_exit() {
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
    return -1;
  }

 private:
  pid_t pid_ = -1;
  FILE* stdout_ = nullptr;
};

std::string binary_path(const char* name) {
  return std::string(HEMUL_BINARY_DIR) + "/" + name;
}

bool binary_exists(const std::string& path) { return access(path.c_str(), X_OK) == 0; }

std::string loopback(int port) { return "127.0.0.1:" + std::to_string(port); }

fhe::Bytes concat(const fhe::Bytes& a, const fhe::Bytes& b) {
  fhe::Bytes out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

core::Request mul_request(fhe::Dghv& scheme, u64 x, u64 y) {
  core::Request request;
  request.spec.kind = core::CircuitKind::kMul;
  request.spec.width = 2;
  request.spec.lowering.strategy = fhe::LoweringStrategy::kCarrySave;
  request.inputs = concat(fhe::encode_ciphertexts(fhe::encrypt_int(scheme, x, 2)),
                          fhe::encode_ciphertexts(fhe::encrypt_int(scheme, y, 2)));
  return request;
}

u64 decrypt_response(const fhe::Dghv& scheme, const core::Response& response) {
  const std::vector<Ciphertext> outputs = fhe::decode_ciphertexts(response.outputs);
  return fhe::decrypt_int(scheme, fhe::EncryptedInt(outputs.begin(), outputs.end()));
}

TEST(FleetIntegrationTest, TwoShardsAndARouterServeTenantsAndSurviveAShardDeath) {
  const std::string shard_bin = binary_path("hemul_shard");
  const std::string router_bin = binary_path("hemul_router");
  if (!binary_exists(shard_bin) || !binary_exists(router_bin)) {
    GTEST_SKIP() << "daemon binaries not built under " << HEMUL_BINARY_DIR;
  }

  // --- launch: 2 shards, then the router pointed at both -----------------
  Daemon shard_a(shard_bin, {"--workers", "1", "--window", "5"});
  Daemon shard_b(shard_bin, {"--workers", "1", "--window", "5"});
  const int port_a = shard_a.read_port();
  const int port_b = shard_b.read_port();
  ASSERT_GT(port_a, 0) << "shard A never announced its port";
  ASSERT_GT(port_b, 0) << "shard B never announced its port";

  Daemon router_daemon(router_bin,
                       {"--shard", loopback(port_a), "--shard", loopback(port_b),
                        "--retries", "2", "--probe-interval-ms", "50",
                        "--deadline-ms", "2000"});
  const int router_port = router_daemon.read_port();
  ASSERT_GT(router_port, 0) << "router never announced its port";

  ShardClient client(loopback(router_port));

  // --- tenants: bit-exact against an in-process Service -------------------
  // Key generation is deterministic from (params, seed) and the encrypted
  // request bytes are shared, so the remote fleet and a local Service with
  // the same seeds must produce byte-identical response payloads.
  core::ServiceOptions local_options;
  local_options.config.backend_name = "ssa";
  local_options.config.num_workers = 1;
  core::Service local_service(local_options);

  struct Tenant {
    ShardClient::SessionKeys keys;
    core::SessionId local_session = 0;
    std::unique_ptr<fhe::Dghv> scheme;
  };
  constexpr int kTenants = 3;
  std::vector<Tenant> tenants;
  for (int t = 0; t < kTenants; ++t) {
    Tenant tenant;
    const u64 key_seed = 0x5E55 + static_cast<u64>(t);
    tenant.keys = client.create_session(DghvParams::toy(), key_seed);
    tenant.local_session = local_service.create_session(DghvParams::toy(), key_seed);
    // The router hands out global ids 1, 2, 3, ... -> placement must match
    // the published hash (restartable, client-predictable placement).
    EXPECT_EQ(tenant.keys.session, static_cast<u64>(t) + 1);
    tenant.scheme = std::make_unique<fhe::Dghv>(std::move(tenant.keys.public_key),
                                                std::move(tenant.keys.secret_key),
                                                0xC11E00 + static_cast<u64>(t));
    tenants.push_back(std::move(tenant));
  }

  for (int round = 0; round < 2; ++round) {
    for (int t = 0; t < kTenants; ++t) {
      Tenant& tenant = tenants[t];
      const u64 x = (static_cast<u64>(t) + round) % 4;
      const u64 y = (static_cast<u64>(t) * 3 + round * 5) % 4;
      const core::Request request = mul_request(*tenant.scheme, x, y);
      const fhe::Bytes wire = core::encode_request(request);

      const core::Response remote = client.submit(tenant.keys.session, request).get();
      const core::Response local =
          local_service.submit(tenant.local_session, core::decode_request(wire)).get();
      ASSERT_TRUE(remote.ok()) << "tenant " << t << ": " << remote.error;
      ASSERT_TRUE(local.ok()) << local.error;
      EXPECT_EQ(remote.outputs, local.outputs)
          << "tenant " << t << " round " << round << " is not bit-exact";
      EXPECT_EQ(decrypt_response(*tenant.scheme, remote), x * y);
    }
  }

  // Placement really followed shard_of: per-shard session counts add up.
  {
    const FleetStats fleet = client.stats();
    ASSERT_EQ(fleet.shards.size(), 2u);
    std::size_t expected_on[2] = {0, 0};
    for (const Tenant& tenant : tenants) {
      ++expected_on[Router::shard_of(tenant.keys.session, 2)];
    }
    EXPECT_EQ(fleet.shards[0].service.sessions, expected_on[0]);
    EXPECT_EQ(fleet.shards[1].service.sessions, expected_on[1]);
    EXPECT_EQ(fleet.sessions_created, static_cast<u64>(kTenants));
    EXPECT_EQ(fleet.failed, 0u);
    EXPECT_EQ(fleet.aggregate().completed, 2u * kTenants);
  }

  // --- shard death: SIGKILL one shard, the fleet keeps serving ------------
  int dead_shard = -1;
  for (const Tenant& tenant : tenants) {
    const std::size_t placed = Router::shard_of(tenant.keys.session, 2);
    if (dead_shard == -1) dead_shard = static_cast<int>(placed);
  }
  ASSERT_NE(dead_shard, -1);
  if (dead_shard == 0) {
    shard_a.send_signal(SIGKILL);
    EXPECT_EQ(shard_a.wait_exit(), 128 + SIGKILL);
  } else {
    shard_b.send_signal(SIGKILL);
    EXPECT_EQ(shard_b.wait_exit(), 128 + SIGKILL);
  }

  // Every tenant keeps working: the survivors never notice, and the killed
  // shard's tenants re-home -- the router replays their seeded creates on
  // the live shard, so the SAME keys answer and the results stay bit-exact
  // against the local reference service. The first post-kill request of a
  // victim may fail once with kUnavailable (an ambiguous mid-flight loss is
  // never replayed); the retry must then succeed.
  int rehomed = 0, still_ok = 0;
  for (Tenant& tenant : tenants) {
    const std::size_t placed = Router::shard_of(tenant.keys.session, 2);
    const core::Request request = mul_request(*tenant.scheme, 2, 3);
    const fhe::Bytes wire = core::encode_request(request);
    core::Response response = client.submit(tenant.keys.session, request).get();
    if (static_cast<int>(placed) == dead_shard &&
        response.status == core::ResponseStatus::kUnavailable) {
      response = client.submit(tenant.keys.session, core::decode_request(wire)).get();
    }
    ASSERT_TRUE(response.ok())
        << "tenant on shard " << placed << " (dead: " << dead_shard
        << ") failed after failover: " << response.error;
    const core::Response local =
        local_service.submit(tenant.local_session, core::decode_request(wire)).get();
    ASSERT_TRUE(local.ok()) << local.error;
    EXPECT_EQ(response.outputs, local.outputs)
        << "failover answer is not bit-exact for tenant on shard " << placed;
    EXPECT_EQ(decrypt_response(*tenant.scheme, response), 6u);
    if (static_cast<int>(placed) == dead_shard) {
      ++rehomed;
    } else {
      ++still_ok;
    }
  }
  EXPECT_GE(rehomed, 1) << "at least one tenant lived on the killed shard";
  // (splitmix64 over ids 1..3 puts tenants on both shards; if a future id
  // scheme changed that, still_ok == 0 would flag it here.)
  EXPECT_GE(still_ok, 1) << "the surviving shard must keep serving";

  {
    const FleetStats fleet = client.stats();
    ASSERT_EQ(fleet.shards.size(), 2u);
    EXPECT_FALSE(fleet.shards[static_cast<std::size_t>(dead_shard)].alive);
    EXPECT_TRUE(fleet.shards[static_cast<std::size_t>(1 - dead_shard)].alive);
    EXPECT_GE(fleet.sessions_rehomed, static_cast<u64>(rehomed))
        << "the router must report the failovers it performed";
    EXPECT_GE(fleet.probes_sent, 1u) << "--probe-interval-ms was set";
  }

  // --- drain: SIGTERM exits 0 through the stop_accepting/wait_idle path ---
  client.close();
  router_daemon.send_signal(SIGTERM);
  EXPECT_EQ(router_daemon.wait_exit(), 0);
  if (dead_shard == 0) {
    shard_b.send_signal(SIGTERM);
    EXPECT_EQ(shard_b.wait_exit(), 0);
  } else {
    shard_a.send_signal(SIGTERM);
    EXPECT_EQ(shard_a.wait_exit(), 0);
  }
}

}  // namespace
}  // namespace hemul::net
