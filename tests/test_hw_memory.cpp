#include <gtest/gtest.h>

#include <set>

#include "hw/memory/banked_buffer.hpp"
#include "hw/memory/double_buffer.hpp"
#include "hw/pe/data_route.hpp"
#include "util/rng.hpp"

namespace hemul::hw {
namespace {

using fp::Fp;

TEST(SramBank, ReadWriteRoundTrip) {
  SramBank bank;
  bank.write(17, 0xDEADBEEF);
  EXPECT_EQ(bank.read(17), 0xDEADBEEFu);
  EXPECT_EQ(bank.ports_used(), 2u);
  bank.tick();
  EXPECT_EQ(bank.ports_used(), 0u);
}

TEST(SramBank, OvercommitDetected) {
  SramBank bank;
  (void)bank.read(0);
  (void)bank.read(1);
  EXPECT_FALSE(bank.overcommitted());
  (void)bank.read(2);
  EXPECT_TRUE(bank.overcommitted());
}

TEST(SramBank, BoundsChecked) {
  SramBank bank;
  EXPECT_THROW((void)bank.read(256), std::logic_error);
  EXPECT_THROW(bank.write(1000, 1), std::logic_error);
}

TEST(BankedBuffer, MappingIsBijective) {
  for (const auto scheme : {BankingScheme::kLinear, BankingScheme::kTwoDimensional}) {
    BankedBuffer buf(scheme);
    std::set<std::tuple<unsigned, unsigned, unsigned>> seen;
    for (unsigned addr = 0; addr < BankedBuffer::kCapacityWords; ++addr) {
      const BankAddress loc = buf.map(addr);
      EXPECT_LT(loc.row, BankedBuffer::kRows);
      EXPECT_LT(loc.col, BankedBuffer::kCols);
      EXPECT_LT(loc.offset, SramBank::kDepth);
      EXPECT_TRUE(seen.insert({loc.row, loc.col, loc.offset}).second)
          << "collision at address " << addr;
    }
    EXPECT_EQ(seen.size(), 4096u);
  }
}

TEST(BankedBuffer, PeekPokeRoundTrip) {
  BankedBuffer buf;
  util::Rng rng(1);
  std::vector<Fp> values(4096);
  for (unsigned i = 0; i < 4096; ++i) {
    values[i] = Fp{rng.next()};
    buf.poke(i, values[i]);
  }
  for (unsigned i = 0; i < 4096; ++i) EXPECT_EQ(buf.peek(i), values[i]);
}

TEST(BankedBuffer, TwoDimensionalSchemeIsConflictFreeOnFftTraffic) {
  // The paper's Fig. 5 claim: 8 words per cycle for both the stride-8
  // column reads/writes of the FFT unit and the consecutive fill rows.
  BankedBuffer buf(BankingScheme::kTwoDimensional);
  for (unsigned base = 0; base < 4096; base += 64) {
    for (unsigned cycle = 0; cycle < 8; ++cycle) {
      (void)buf.read8(DataRoute::fft64_read_addresses(base, cycle));
    }
  }
  for (unsigned cycle = 0; cycle < 4096 / 8; ++cycle) {
    std::array<Fp, 8> row{};
    buf.write8(DataRoute::fill_addresses(cycle), row);
  }
  EXPECT_EQ(buf.conflict_cycles(), 0u);
  EXPECT_EQ(buf.access_cycles(), 4096u / 8 * 2);
}

TEST(BankedBuffer, TwoDimensionalHandlesSmallRadixTraffic) {
  BankedBuffer buf(BankingScheme::kTwoDimensional);
  for (unsigned base = 0; base < 4096; base += 16) {
    for (unsigned cycle = 0; cycle < 2; ++cycle) {
      (void)buf.read8(DataRoute::small_radix_addresses(base, 16, cycle));
    }
  }
  EXPECT_EQ(buf.conflict_cycles(), 0u);
}

TEST(BankedBuffer, LinearSchemeCollidesOnStridedReads) {
  // The motivating failure: linear interleave serializes the stride-8
  // column access ("write accesses collide on the same bank" -- here the
  // strided FFT pattern).
  BankedBuffer linear(BankingScheme::kLinear);
  for (unsigned cycle = 0; cycle < 8; ++cycle) {
    (void)linear.read8(DataRoute::fft64_read_addresses(0, cycle));
  }
  EXPECT_GT(linear.conflict_cycles(), 0u);
}

TEST(BankedBuffer, LinearSchemeFineOnConsecutive) {
  BankedBuffer linear(BankingScheme::kLinear);
  std::array<Fp, 8> row{};
  for (unsigned cycle = 0; cycle < 16; ++cycle) {
    linear.write8(DataRoute::fill_addresses(cycle), row);
  }
  EXPECT_EQ(linear.conflict_cycles(), 0u);
}

TEST(BankedBuffer, ReadsReturnWrittenValues) {
  BankedBuffer buf;
  util::Rng rng(2);
  // Write through the cycle interface, read back through it.
  std::vector<Fp> values(64);
  for (auto& v : values) v = Fp{rng.next()};
  for (unsigned t = 0; t < 8; ++t) {
    const auto addrs = DataRoute::fft64_write_addresses(0, t);
    std::array<Fp, 8> row{};
    for (unsigned k2 = 0; k2 < 8; ++k2) row[k2] = values[8 * k2 + t];
    buf.write8(addrs, row);
  }
  for (unsigned j = 0; j < 8; ++j) {
    const auto addrs = DataRoute::fft64_read_addresses(0, j);
    const auto words = buf.read8(addrs);
    for (unsigned i = 0; i < 8; ++i) EXPECT_EQ(words[i], values[8 * i + j]);
  }
}

TEST(BankedBuffer, CapacityAndM20kAccounting) {
  BankedBuffer buf;
  EXPECT_EQ(BankedBuffer::kCapacityWords, 4096u);
  // 16 banks x 2 M20K = 32 blocks = 256 Kbit (paper Fig. 5).
  EXPECT_EQ(buf.m20k_blocks(), 32u);
  EXPECT_EQ(buf.m20k_blocks() * 20480 / 1024, 640u);  // 640 Kbit raw M20K
}

TEST(BankedBuffer, LoadDumpRoundTrip) {
  BankedBuffer buf;
  util::Rng rng(3);
  std::vector<Fp> data(1000);
  for (auto& v : data) v = Fp{rng.next()};
  buf.load(data);
  EXPECT_EQ(buf.dump(1000), data);
}

TEST(DoubleBuffer, SwapExchangesRoles) {
  DoubleBuffer db;
  db.compute().poke(0, Fp{111});
  db.fill().poke(0, Fp{222});
  EXPECT_EQ(db.compute().peek(0), Fp{111});
  db.swap();
  EXPECT_EQ(db.compute().peek(0), Fp{222});
  EXPECT_EQ(db.fill().peek(0), Fp{111});
  EXPECT_EQ(db.swaps(), 1u);
}

TEST(DoubleBuffer, M20kTotal) {
  DoubleBuffer db;
  EXPECT_EQ(db.m20k_blocks(), 64u);  // two 32-block buffers
}

TEST(DataRoute, TracesArePermutationsOfWindow) {
  for (const unsigned radix : {16u, 64u}) {
    const auto trace = DataRoute::read_trace(128, radix);
    std::set<unsigned> seen;
    for (const auto& cycle : trace) {
      for (const unsigned addr : cycle) seen.insert(addr);
    }
    EXPECT_EQ(seen.size(), radix);
    EXPECT_EQ(*seen.begin(), 128u);
    EXPECT_EQ(*seen.rbegin(), 128u + radix - 1);
  }
}

TEST(DataRoute, AlignmentEnforced) {
  EXPECT_THROW(DataRoute::fft64_read_addresses(13, 0), std::logic_error);
  EXPECT_THROW(DataRoute::small_radix_addresses(8, 16, 0), std::logic_error);
  EXPECT_THROW(DataRoute::fft64_read_addresses(0, 8), std::logic_error);
}

}  // namespace
}  // namespace hemul::hw
