#include <gtest/gtest.h>

#include <set>

#include "util/check.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace hemul::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (u64 bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  std::set<u64> seen;
  for (int i = 0; i < 500; ++i) {
    const u64 v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values should appear in 500 draws
}

TEST(Rng, BitsSetsTopBit) {
  Rng rng(13);
  for (unsigned bits = 1; bits <= 64; ++bits) {
    const u64 v = rng.bits(bits);
    EXPECT_GE(v, bits == 64 ? (1ULL << 63) : (1ULL << (bits - 1)));
    if (bits < 64) {
      EXPECT_LT(v, 1ULL << bits);
    }
  }
}

TEST(Rng, VecHasRequestedLength) {
  Rng rng(17);
  EXPECT_EQ(rng.vec(10).size(), 10u);
  EXPECT_TRUE(rng.vec(0).empty());
}

TEST(Check, ThrowsLogicErrorWithContext) {
  EXPECT_THROW(HEMUL_CHECK(1 == 2), std::logic_error);
  try {
    HEMUL_CHECK_MSG(false, "extra context");
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("extra context"), std::string::npos);
  }
}

TEST(Format, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(104000), "104,000");
  EXPECT_EQ(with_commas(336377), "336,377");
  EXPECT_EQ(with_commas(1234567890), "1,234,567,890");
}

TEST(Format, FixedDecimals) {
  EXPECT_EQ(format_fixed(30.72, 1), "30.7");
  EXPECT_EQ(format_fixed(122.88, 2), "122.88");
  EXPECT_EQ(format_fixed(3.0, 0), "3");
}

TEST(Format, TimeUnits) {
  EXPECT_EQ(format_time_ns(5), "5.0 ns");
  EXPECT_EQ(format_time_ns(30720), "30.7 us");
  EXPECT_EQ(format_time_ns(122880), "122.9 us");
  EXPECT_EQ(format_time_ns(4.05e8), "405.0 ms");
  EXPECT_EQ(format_time_ns(2e9), "2.00 s");
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.396), "39.6%");
  EXPECT_EQ(format_percent(0.88), "88.0%");
}

TEST(Format, Bits) {
  EXPECT_EQ(format_bits(8ULL * 1024 * 1024), "8 Mbit");
  EXPECT_EQ(format_bits(256ULL * 1024), "256.0 Kbit");
  EXPECT_EQ(format_bits(512), "512 bit");
}

TEST(Format, Hex64) {
  EXPECT_EQ(hex64(0xFFFFFFFF00000001ULL), "ffffffff00000001");
  EXPECT_EQ(hex64(0), "0000000000000000");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"Resource", "Proposed", "Baseline"});
  t.add_row({"ALMs", "104,000", "231,000"});
  t.add_row({"DSP", "256", "720"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| Resource"), std::string::npos);
  EXPECT_NE(out.find("104,000"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::logic_error);
}

TEST(Table, SeparatorRows) {
  Table t({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // Header rule + separator + bottom = at least 4 '+--' rules.
  int rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+--", pos)) != std::string::npos; ++pos) ++rules;
  EXPECT_GE(rules, 4);
}

}  // namespace
}  // namespace hemul::util
