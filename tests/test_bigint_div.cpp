#include <gtest/gtest.h>

#include "bigint/biguint.hpp"
#include "bigint/div.hpp"
#include "bigint/mul.hpp"
#include "util/rng.hpp"

namespace hemul::bigint {
namespace {

TEST(DivSmall, KnownValues) {
  auto [q, r] = divmod_small(BigUInt{100}, 7);
  EXPECT_EQ(q, BigUInt{14});
  EXPECT_EQ(r, 2u);
  EXPECT_THROW(divmod_small(BigUInt{1}, 0), std::domain_error);
}

TEST(DivKnuth, TrivialCases) {
  const BigUInt a{100};
  const BigUInt b{7};
  EXPECT_EQ(a / b, BigUInt{14});
  EXPECT_EQ(a % b, BigUInt{2});
  EXPECT_EQ(b / a, BigUInt{});   // divisor larger than dividend
  EXPECT_EQ(b % a, b);
  EXPECT_EQ(a / a, BigUInt{1});  // equal operands
  EXPECT_EQ(a % a, BigUInt{});
  EXPECT_THROW(a / BigUInt{}, std::domain_error);
}

TEST(DivKnuth, PowerOfTwoDivisorsMatchShifts) {
  util::Rng rng(11);
  const BigUInt x = BigUInt::random_bits(rng, 2000);
  for (const std::size_t s : {1u, 63u, 64u, 65u, 700u}) {
    EXPECT_EQ(x / BigUInt::pow2(s), x >> s) << s;
  }
}

// The fundamental invariant a = q*b + r with 0 <= r < b, over a wide
// dividend/divisor size grid.
struct DivCase {
  std::size_t dividend_bits;
  std::size_t divisor_bits;
};

class DivInvariant : public ::testing::TestWithParam<DivCase> {};

TEST_P(DivInvariant, QuotientRemainderReconstruct) {
  const auto [na, nb] = GetParam();
  util::Rng rng(na * 1000 + nb);
  for (int i = 0; i < 10; ++i) {
    const BigUInt a = BigUInt::random_bits(rng, na);
    const BigUInt b = BigUInt::random_bits(rng, nb);
    const auto [q, r] = divmod_knuth(a, b);
    EXPECT_LT(r, b);
    EXPECT_EQ(mul_auto(q, b) + r, a);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizeGrid, DivInvariant,
    ::testing::Values(DivCase{64, 64}, DivCase{128, 64}, DivCase{128, 65},
                      DivCase{256, 128}, DivCase{1000, 100}, DivCase{1000, 999},
                      DivCase{1000, 1000}, DivCase{1001, 1000}, DivCase{4096, 128},
                      DivCase{4096, 4000}, DivCase{10000, 5000}, DivCase{20000, 19999}));

TEST(DivKnuth, AddBackCornerCase) {
  // Classic Algorithm D stress: dividend/divisor patterns engineered so the
  // qhat estimate overshoots and step D6 (add back) must fire. The pattern
  // u = [0, all-ones, high-half] over v = [all-ones, high-half] is the
  // standard trigger (cf. Hacker's Delight 9-2 test vectors).
  const u64 ones = ~0ULL;
  const u64 high = 1ULL << 63;
  const BigUInt u = BigUInt::from_limbs({0, ones, high - 1});
  const BigUInt v = BigUInt::from_limbs({ones, high});
  const auto [q, r] = divmod_knuth(u, v);
  EXPECT_EQ(mul_auto(q, v) + r, u);
  EXPECT_LT(r, v);
}

TEST(DivKnuth, QhatSaturationCase) {
  // Top dividend digit equal to the top divisor digit drives qhat to the
  // 2^64-1 saturation path.
  const u64 top = 0x8000000000000000ULL;
  const BigUInt u = BigUInt::from_limbs({123, 456, top});
  const BigUInt v = BigUInt::from_limbs({789, top});
  const auto [q, r] = divmod_knuth(u, v);
  EXPECT_EQ(mul_auto(q, v) + r, u);
  EXPECT_LT(r, v);
}

TEST(DivKnuth, ExactDivision) {
  util::Rng rng(13);
  const BigUInt b = BigUInt::random_bits(rng, 777);
  const BigUInt q0 = BigUInt::random_bits(rng, 500);
  const BigUInt a = mul_auto(b, q0);
  const auto [q, r] = divmod_knuth(a, b);
  EXPECT_EQ(q, q0);
  EXPECT_TRUE(r.is_zero());
}

TEST(ModCentered, SmallValues) {
  const BigUInt m{10};
  // 3 mod 10 -> +3 ; 7 mod 10 -> -3 ; 5 mod 10 -> +5 (boundary inclusive).
  auto r3 = mod_centered(BigUInt{3}, m);
  EXPECT_EQ(r3.magnitude, BigUInt{3});
  EXPECT_FALSE(r3.negative);
  auto r7 = mod_centered(BigUInt{7}, m);
  EXPECT_EQ(r7.magnitude, BigUInt{3});
  EXPECT_TRUE(r7.negative);
  auto r5 = mod_centered(BigUInt{5}, m);
  EXPECT_EQ(r5.magnitude, BigUInt{5});
  EXPECT_FALSE(r5.negative);
}

TEST(ModCentered, ReconstructsResidue) {
  util::Rng rng(15);
  const BigUInt m = BigUInt::random_bits(rng, 300);
  for (int i = 0; i < 20; ++i) {
    const BigUInt a = BigUInt::random_bits(rng, 900);
    const auto c = mod_centered(a, m);
    const BigUInt plain = a % m;
    if (c.negative) {
      EXPECT_EQ(m - c.magnitude, plain);
    } else {
      EXPECT_EQ(c.magnitude, plain);
    }
    // Centered magnitude never exceeds m/2 (2*mag <= m).
    BigUInt twice = c.magnitude;
    twice <<= 1;
    EXPECT_LE(twice, m);
  }
}

TEST(DivDecimal, LargeRoundTrip) {
  // End-to-end decimal conversion uses division internally.
  util::Rng rng(19);
  const BigUInt x = BigUInt::random_bits(rng, 4000);
  EXPECT_EQ(BigUInt::from_dec(x.to_dec()), x);
}

}  // namespace
}  // namespace hemul::bigint
