#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "backend/hw_backend.hpp"
#include "backend/registry.hpp"
#include "core/accelerator.hpp"
#include "core/scheduler.hpp"
#include "fhe/circuits.hpp"
#include "fhe/evaluator.hpp"
#include "fhe/graph.hpp"
#include "ntt/plan.hpp"

namespace hemul::fhe {
namespace {

/// An engine that counts (and can forbid) multiplications -- used to prove
/// dead-node elimination and the pre-execution noise veto really skip work.
std::shared_ptr<backend::FunctionBackend> counting_engine(std::atomic<u64>& count) {
  return std::make_shared<backend::FunctionBackend>(
      [&count](const bigint::BigUInt& a, const bigint::BigUInt& b) {
        count.fetch_add(1, std::memory_order_relaxed);
        return a * b;
      },
      "counting");
}

class GraphTest : public ::testing::Test {
 protected:
  GraphTest() : scheme_(DghvParams::toy(), 77) {}

  Dghv scheme_;
};

// --- graph structure -------------------------------------------------------

TEST_F(GraphTest, RecordingIsLazy) {
  std::atomic<u64> mults{0};
  Dghv scheme(DghvParams::toy(), 7, counting_engine(mults));
  Graph graph(scheme);
  const Wire a = graph.input(scheme.encrypt(true));
  const Wire b = graph.input(scheme.encrypt(false));
  (void)graph.gate_and(graph.gate_or(a, b), graph.gate_xor(a, b));
  EXPECT_EQ(mults.load(), 0u) << "recording a graph must not multiply";
  EXPECT_EQ(graph.and_gates(), 2u);  // or + outer and
}

TEST_F(GraphTest, CommonSubexpressionsAreShared) {
  Graph graph(scheme_);
  const Wire a = graph.input(scheme_.encrypt(true));
  const Wire b = graph.input(scheme_.encrypt(true));
  const Wire c = graph.input(scheme_.encrypt(false));

  const Wire first = graph.gate_maj(a, b, c);
  const std::size_t nodes_after_first = graph.size();
  const u64 ands_after_first = graph.and_gates();
  EXPECT_EQ(ands_after_first, 3u);

  // The same majority again: every subterm hash-conses to existing nodes.
  const Wire second = graph.gate_maj(a, b, c);
  EXPECT_EQ(second, first);
  EXPECT_EQ(graph.size(), nodes_after_first);
  EXPECT_EQ(graph.and_gates(), ands_after_first);

  // Commutativity: and(b, a) is and(a, b).
  const Wire ab = graph.gate_and(a, b);
  const Wire ba = graph.gate_and(b, a);
  EXPECT_EQ(ab, ba);
}

TEST_F(GraphTest, LevelsFollowMultiplicativeDepth) {
  Graph graph(scheme_);
  const Wire a = graph.input(scheme_.encrypt(true));
  const Wire b = graph.input(scheme_.encrypt(false));
  EXPECT_EQ(graph.level(a), 0u);
  const Wire x = graph.gate_xor(a, b);
  EXPECT_EQ(graph.level(x), 0u);  // XOR does not deepen
  const Wire p = graph.gate_and(a, b);
  EXPECT_EQ(graph.level(p), 1u);
  const Wire q = graph.gate_and(p, x);
  EXPECT_EQ(graph.level(q), 2u);
  EXPECT_EQ(graph.level(graph.gate_xor(q, p)), 2u);
}

TEST_F(GraphTest, NoisePredictionMatchesModel) {
  Graph graph(scheme_);
  const Ciphertext ca = scheme_.encrypt(true);
  const Ciphertext cb = scheme_.encrypt(true);
  const Wire a = graph.input(ca);
  const Wire b = graph.input(cb);
  EXPECT_DOUBLE_EQ(graph.predicted_noise_bits(a), ca.noise_bits);
  const Wire p = graph.gate_and(a, b);
  EXPECT_DOUBLE_EQ(graph.predicted_noise_bits(p),
                   NoiseModel::after_mult(ca.noise_bits, cb.noise_bits));
  const Wire x = graph.gate_xor(a, b);
  EXPECT_DOUBLE_EQ(graph.predicted_noise_bits(x),
                   NoiseModel::after_add(ca.noise_bits, cb.noise_bits));
  EXPECT_TRUE(graph.predicted_decryptable(p));
}

// --- evaluator mechanics ---------------------------------------------------

TEST_F(GraphTest, DeadNodesAreNotExecuted) {
  std::atomic<u64> mults{0};
  Dghv scheme(DghvParams::toy(), 9, counting_engine(mults));
  Graph graph(scheme);
  const Wire a = graph.input(scheme.encrypt(true));
  const Wire b = graph.input(scheme.encrypt(false));
  const Wire live = graph.gate_and(a, b);
  (void)graph.gate_and(live, a);       // dead: never requested
  (void)graph.gate_or(b, live);        // dead
  const Wire outputs[] = {live};

  Evaluator evaluator;
  EvalReport report;
  const std::vector<Ciphertext> results = evaluator.evaluate(graph, outputs, &report);
  EXPECT_EQ(mults.load(), 1u) << "only the live AND gate may execute";
  EXPECT_EQ(report.and_gates, 1u);
  EXPECT_EQ(report.dead_nodes, 4u);  // dead and, dead or's and + two xors
  EXPECT_TRUE(scheme.decrypt(results[0]) == false);
}

TEST_F(GraphTest, WavefrontsBatchIndependentGates) {
  Dghv scheme(DghvParams::toy(), 11);
  Graph graph(scheme);
  EncryptedInt ca = encrypt_int(scheme, 11, 4);
  EncryptedInt cb = encrypt_int(scheme, 7, 4);
  const std::vector<Wire> a = graph.inputs(ca);
  const std::vector<Wire> b = graph.inputs(cb);
  Graph::AddResult sum = graph.add(a, b, graph.input(scheme.encrypt(false)));
  std::vector<Wire> outputs = sum.sum;
  outputs.push_back(sum.carry_out);

  Evaluator evaluator;
  EvalReport report;
  const std::vector<Ciphertext> results = evaluator.evaluate(graph, outputs, &report);

  // 4-bit ripple carry: 8 AND gates in 4 wavefronts -- all four and(a_i, b_i)
  // products plus the first carry step land at depth 1.
  EXPECT_EQ(report.and_gates, 8u);
  EXPECT_EQ(report.wavefront_count(), 4u);
  EXPECT_LT(report.wavefront_count(), report.and_gates);
  EXPECT_EQ(report.wavefronts[0].and_gates, 5u);
  EXPECT_EQ(report.wavefronts[1].and_gates, 1u);
  EXPECT_EQ(report.levels, 4u);
  for (std::size_t i = 1; i < report.wavefronts.size(); ++i) {
    EXPECT_GT(report.wavefronts[i].level, report.wavefronts[i - 1].level);
  }

  EncryptedInt enc_sum(results.begin(), results.begin() + 4);
  const u64 value =
      decrypt_int(scheme, enc_sum) | (scheme.decrypt(results[4]) ? 16u : 0u);
  EXPECT_EQ(value, 18u);
}

TEST_F(GraphTest, MuxSelectsAndLessThanCompares) {
  Dghv scheme(DghvParams::toy(), 13, backend::make_backend("classical"));
  const Ciphertext enc_zero = scheme.encrypt(false);
  const Ciphertext enc_one = scheme.encrypt(true);
  Evaluator evaluator;

  for (const auto& [x, y] : {std::pair{3u, 9u}, {9u, 3u}, {7u, 7u}, {0u, 15u}, {15u, 0u}}) {
    EncryptedInt cx = encrypt_int(scheme, x, 4);
    EncryptedInt cy = encrypt_int(scheme, y, 4);
    for (const bool sel : {false, true}) {
      Graph graph(scheme);
      const std::vector<Wire> a = graph.inputs(cx);
      const std::vector<Wire> b = graph.inputs(cy);
      const Wire select = graph.input(scheme.encrypt(sel));
      const std::vector<Wire> out = graph.mux(select, a, b);
      const std::vector<Ciphertext> bits = evaluator.evaluate(graph, out);
      EXPECT_EQ(decrypt_int(scheme, EncryptedInt(bits.begin(), bits.end())),
                sel ? x : y)
          << x << "," << y << "," << sel;
    }

    Graph graph(scheme);
    const std::vector<Wire> a = graph.inputs(cx);
    const std::vector<Wire> b = graph.inputs(cy);
    const Wire lt = graph.less_than(a, b, graph.input(enc_zero), graph.input(enc_one));
    const Wire outputs[] = {lt};
    const std::vector<Ciphertext> bit = evaluator.evaluate(graph, outputs);
    EXPECT_EQ(scheme.decrypt(bit[0]), x < y) << x << " < " << y;
  }
}

// --- parity: eager facade vs wavefront evaluator ---------------------------

struct ParityOutputs {
  std::vector<Ciphertext> values;
};

/// The eager reference: adder + equality + majority (and, for fast engines,
/// the 2x2 word multiplier) through the Circuits facade.
ParityOutputs eager_reference(Circuits& circuits, const EncryptedInt& cx,
                              const EncryptedInt& cy, const Ciphertext& zero,
                              const Ciphertext& one, bool include_multiply) {
  ParityOutputs out;
  const Circuits::AdderResult sum = circuits.add(cx, cy, zero);
  out.values = sum.sum;
  out.values.push_back(sum.carry_out);
  out.values.push_back(circuits.equals(cx, cy, one));
  out.values.push_back(circuits.gate_maj(cx[0], cy[0], cx[1]));
  if (include_multiply) {
    const EncryptedInt mx(cx.begin(), cx.begin() + 2);
    const EncryptedInt my(cy.begin(), cy.begin() + 2);
    const EncryptedInt prod = circuits.multiply(mx, my, zero);
    out.values.insert(out.values.end(), prod.begin(), prod.end());
  }
  return out;
}

/// The same computation recorded as one graph.
std::pair<Graph, std::vector<Wire>> graph_reference(const Dghv& scheme,
                                                    const EncryptedInt& cx,
                                                    const EncryptedInt& cy,
                                                    const Ciphertext& zero,
                                                    const Ciphertext& one,
                                                    bool include_multiply) {
  Graph graph(scheme);
  const std::vector<Wire> a = graph.inputs(cx);
  const std::vector<Wire> b = graph.inputs(cy);
  const Wire wzero = graph.input(zero);
  const Wire wone = graph.input(one);

  Graph::AddResult sum = graph.add(a, b, wzero);
  std::vector<Wire> outputs = std::move(sum.sum);
  outputs.push_back(sum.carry_out);
  outputs.push_back(graph.equals(a, b, wone));
  outputs.push_back(graph.gate_maj(a[0], b[0], a[1]));
  if (include_multiply) {
    const std::vector<Wire> ma(a.begin(), a.begin() + 2);
    const std::vector<Wire> mb(b.begin(), b.begin() + 2);
    const std::vector<Wire> prod = graph.multiply(ma, mb, wzero);
    outputs.insert(outputs.end(), prod.begin(), prod.end());
  }
  return {std::move(graph), std::move(outputs)};
}

void expect_bit_exact(const std::vector<Ciphertext>& got,
                      const std::vector<Ciphertext>& want, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].value, want[i].value) << what << " output " << i;
    EXPECT_DOUBLE_EQ(got[i].noise_bits, want[i].noise_bits) << what << " output " << i;
  }
}

/// A downsized simulated accelerator (512-point pipeline, plan 8*8*8)
/// that multiplies the toy scheme's 4096-bit ciphertexts exactly: the "hw"
/// parity arms run the full circuit set in milliseconds instead of
/// simulating the 64K-point paper machine per gate (which blows the CI
/// per-test timeout under sanitizers).
hw::AcceleratorConfig small_hw_config() {
  hw::AcceleratorConfig config = hw::AcceleratorConfig::paper();
  config.ssa = ssa::SsaParams::for_bits(4096);
  config.ssa.plan = ntt::NttPlan::from_radices({8, 8, 8});  // N = 512
  config.ntt.plan = config.ssa.plan;
  return config;
}

TEST(GraphParity, EagerMatchesWavefrontAcrossBackendsAndWorkers) {
  Dghv scheme(DghvParams::toy(), 4242);
  const Ciphertext zero = scheme.encrypt(false);
  const Ciphertext one = scheme.encrypt(true);
  const EncryptedInt cx = encrypt_int(scheme, 11, 4);
  const EncryptedInt cy = encrypt_int(scheme, 6, 4);

  // The 2x2 multiplier exceeds the toy noise budget (eager semantics keep
  // computing; results are still deterministic and comparable bit for bit).
  const EvalOptions no_veto{.check_noise = false};

  const auto make_engine = [](const std::string& name) {
    return name == "hw"
               ? std::make_shared<backend::HwBackend>(small_hw_config())
               : backend::make_backend(name);
  };

  for (const std::string& name : backend::Registry::instance().names()) {
    // Eager arm.
    Circuits circuits(scheme, make_engine(name));
    const ParityOutputs eager =
        eager_reference(circuits, cx, cy, zero, one, /*include_multiply=*/true);

    auto [graph, outputs] =
        graph_reference(scheme, cx, cy, zero, one, /*include_multiply=*/true);

    // Wavefront arm, engine path.
    {
      Evaluator evaluator(make_engine(name));
      EvalReport report;
      const std::vector<Ciphertext> wave =
          evaluator.evaluate(graph, outputs, &report, no_veto);
      expect_bit_exact(wave, eager.values, name + " engine path");
      EXPECT_LT(report.wavefront_count(), report.and_gates) << name;
    }

    // Wavefront arm, scheduler path across PE-lane counts.
    for (const unsigned workers : {1u, 4u}) {
      core::Config config;
      config.backend_name = name;
      config.num_workers = workers;
      if (name == "hw") config.hardware = small_hw_config();
      core::Scheduler scheduler(config);
      Evaluator evaluator(scheduler);
      EvalReport report;
      const std::vector<Ciphertext> wave =
          evaluator.evaluate(graph, outputs, &report, no_veto);
      expect_bit_exact(wave, eager.values,
                       name + " scheduler x" + std::to_string(workers));
      // Spectrum residency engages exactly on "ssa" lanes and must never
      // change results (checked above) -- only the transform economy.
      EXPECT_EQ(report.spectrum_resident, name == "ssa")
          << name << " x" << workers;
    }
  }
}

// --- spectrum residency ----------------------------------------------------

TEST(GraphResidency, ResidentEvaluationSavesTransformsDeterministically) {
  Dghv scheme(DghvParams::toy(), 4242);
  const Ciphertext zero = scheme.encrypt(false);
  const Ciphertext one = scheme.encrypt(true);
  const EncryptedInt cx = encrypt_int(scheme, 11, 4);
  const EncryptedInt cy = encrypt_int(scheme, 6, 4);
  const EvalOptions no_veto{.check_noise = false};

  auto [graph, outputs] =
      graph_reference(scheme, cx, cy, zero, one, /*include_multiply=*/true);

  // Engine-path reference tally: the counters are coordinator-side facts of
  // the circuit, so every path and every lane count must reproduce them.
  EvalReport engine_report;
  {
    Evaluator evaluator(backend::make_backend("ssa"));
    (void)evaluator.evaluate(graph, outputs, &engine_report, no_veto);
  }
  ASSERT_TRUE(engine_report.spectrum_resident);
  const ResidencyStats& rs = engine_report.residency;
  EXPECT_GT(rs.forward_transforms, 0u);
  EXPECT_GT(rs.inverse_transforms, 0u);
  EXPECT_GT(rs.domain_additions, 0u) << "XOR folds must run in the domain";
  // Strictly cheaper than the per-gate eager protocol (2 forwards + 1
  // inverse per AND).
  EXPECT_LT(rs.transforms_executed(), 3 * engine_report.and_gates);
  // Every AND still costs exactly one pointwise product.
  EXPECT_EQ(rs.pointwise_products, engine_report.and_gates);
  // All resident entries are evicted by the end of the evaluation.
  EXPECT_GT(rs.spectra_evicted, 0u);
  EXPECT_EQ(rs.spectra_evicted, rs.forward_transforms + rs.pointwise_products +
                                    rs.domain_additions)
      << "one eviction per spectrum entered, produced, or folded";

  for (const unsigned workers : {1u, 4u}) {
    core::Config config;
    config.backend_name = "ssa";
    config.num_workers = workers;
    core::Scheduler scheduler(config);
    Evaluator evaluator(scheduler);
    EvalReport report;
    (void)evaluator.evaluate(graph, outputs, &report, no_veto);
    ASSERT_TRUE(report.spectrum_resident) << workers;
    EXPECT_EQ(report.residency.forward_transforms, rs.forward_transforms) << workers;
    EXPECT_EQ(report.residency.inverse_transforms, rs.inverse_transforms) << workers;
    EXPECT_EQ(report.residency.pointwise_products, rs.pointwise_products) << workers;
    EXPECT_EQ(report.residency.domain_additions, rs.domain_additions) << workers;
    u64 executed = 0;
    i64 avoided = 0;
    for (const WavefrontStats& wf : report.wavefronts) {
      executed += wf.spectra_cached + wf.inverses_paid;
      avoided += wf.transforms_avoided;
    }
    EXPECT_EQ(executed, rs.transforms_executed()) << workers;
    EXPECT_EQ(avoided, static_cast<i64>(3 * report.and_gates) -
                           static_cast<i64>(rs.transforms_executed()))
        << workers;
  }
}

// --- noise model tightness -------------------------------------------------

TEST(GraphNoise, MaxMultDepthIsTightAndVetoedBeforeExecution) {
  const DghvParams params = DghvParams::toy();
  Dghv scheme(params, 20260727);
  const unsigned depth = NoiseModel::max_mult_depth(params);
  ASSERT_GE(depth, 1u);

  // 1) At the model's predicted depth, a chain of squarings still decrypts.
  Ciphertext c = scheme.encrypt(true);
  for (unsigned d = 1; d <= depth; ++d) {
    c = scheme.multiply(c, c);
    EXPECT_TRUE(NoiseModel::decryptable(params, c.noise_bits)) << "depth " << d;
    EXPECT_TRUE(scheme.decrypt(c)) << "1^2 must stay 1 at depth " << d;
  }

  // 2) The model flags depth+1 as non-decryptable...
  const double next = NoiseModel::after_mult(c.noise_bits, c.noise_bits);
  EXPECT_FALSE(NoiseModel::decryptable(params, next));

  // ...and the evaluator vetoes the over-deep circuit BEFORE spending any
  // multiplication on it.
  std::atomic<u64> mults{0};
  Dghv counted(params, 20260727, counting_engine(mults));
  Graph graph(counted);
  Wire w = graph.input(counted.encrypt(true));
  for (unsigned d = 0; d <= depth; ++d) w = graph.gate_and(w, w);
  EXPECT_FALSE(graph.predicted_decryptable(w));
  const Wire outputs[] = {w};
  Evaluator evaluator;
  EXPECT_THROW(
      {
        try {
          (void)evaluator.evaluate(graph, outputs);
        } catch (const NoiseBudgetError& e) {
          EXPECT_EQ(e.level, depth + 1);
          EXPECT_GT(e.noise_bits, e.budget_bits);
          throw;
        }
      },
      NoiseBudgetError);
  EXPECT_EQ(mults.load(), 0u) << "the veto must fire before execution";

  // 3) Cross-check against reality: keep squaring past the budget and the
  // decryption does fail, at a depth the model predicted as unsafe (the
  // model is conservative: it never flags a depth that was still safe).
  unsigned failure_depth = depth;
  Ciphertext probe = c;
  for (unsigned d = depth + 1; d <= depth + 16; ++d) {
    probe = scheme.multiply(probe, probe);
    if (!scheme.decrypt(probe)) {
      failure_depth = d;
      break;
    }
  }
  EXPECT_GT(failure_depth, depth) << "an actual failure must not precede the model's bound";
  EXPECT_LE(failure_depth, depth + 16) << "squarings past the budget must eventually fail";
}

// --- integration with the facade and the core layer ------------------------

TEST(GraphFacade, AcceleratorEvaluateRunsWavefronts) {
  Dghv scheme(DghvParams::toy(), 5150);
  Graph graph(scheme);
  EncryptedInt ca = encrypt_int(scheme, 9, 4);
  EncryptedInt cb = encrypt_int(scheme, 5, 4);
  Graph::AddResult sum =
      graph.add(graph.inputs(ca), graph.inputs(cb), graph.input(scheme.encrypt(false)));
  std::vector<Wire> outputs = std::move(sum.sum);
  outputs.push_back(sum.carry_out);

  core::Config config;
  config.backend_name = "ssa";
  config.num_workers = 2;
  core::Accelerator accel(config);
  EvalReport report;
  const std::vector<Ciphertext> results = accel.evaluate(graph, outputs, &report);

  EXPECT_EQ(report.and_gates, 8u);
  EXPECT_EQ(report.wavefront_count(), 4u);
  EXPECT_TRUE(report.decryptable);
  EncryptedInt enc_sum(results.begin(), results.begin() + 4);
  EXPECT_EQ(decrypt_int(scheme, enc_sum) | (scheme.decrypt(results[4]) ? 16u : 0u), 14u);
}

TEST(GraphFacade, AndGateCounterIsThreadSafe) {
  Dghv scheme(DghvParams::toy(), 31);
  Circuits circuits(scheme, backend::make_backend("classical"));
  const Ciphertext ca = scheme.encrypt(true);
  const Ciphertext cb = scheme.encrypt(false);

  constexpr unsigned kPerThread = 16;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (unsigned i = 0; i < kPerThread; ++i) (void)circuits.gate_and(ca, cb);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(circuits.and_gates_used(), 2 * kPerThread);
}

}  // namespace
}  // namespace hemul::fhe
