#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "backend/classical.hpp"
#include "backend/hw_backend.hpp"
#include "backend/registry.hpp"
#include "backend/ssa_backend.hpp"
#include "bigint/mul.hpp"
#include "fhe/circuits.hpp"
#include "fhe/dghv.hpp"
#include "util/rng.hpp"

namespace hemul::backend {
namespace {

using bigint::BigUInt;

std::vector<MulJob> shared_operand_jobs(util::Rng& rng, std::size_t n, std::size_t bits) {
  const BigUInt a = BigUInt::random_bits(rng, bits);
  std::vector<MulJob> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs.emplace_back(a, BigUInt::random_bits(rng, bits));
  }
  return jobs;
}

TEST(Registry, ListsBuiltinBackends) {
  const std::vector<std::string> names = Registry::instance().names();
  for (const char* expected :
       {"schoolbook", "karatsuba", "toom3", "classical", "ssa", "hw", "auto"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing builtin backend " << expected;
  }
  EXPECT_GE(names.size(), 3u);
}

TEST(Registry, UnknownNameThrowsWithListing) {
  try {
    (void)make_backend("no-such-engine");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("no-such-engine"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("ssa"), std::string::npos);
  }
}

TEST(Registry, CustomRegistrationRoundTrip) {
  Registry::instance().add("test-counting", [] {
    return std::make_shared<FunctionBackend>(
        [](const BigUInt& a, const BigUInt& b) { return bigint::mul_schoolbook(a, b); },
        "test-counting");
  });
  const auto backend = make_backend("test-counting");
  EXPECT_EQ(backend->name(), "test-counting");
  EXPECT_EQ(backend->multiply(BigUInt{6}, BigUInt{7}), BigUInt{42});
}

TEST(Backends, ParityOnRandomizedOperands) {
  util::Rng rng(0xBAC0);
  // Software backends at a spread of sizes; the reference is schoolbook.
  for (const char* name : {"schoolbook", "karatsuba", "toom3", "classical", "ssa", "auto"}) {
    const auto backend = make_backend(name);
    for (const std::size_t bits : {1u, 63u, 64u, 1537u, 5000u, 20011u}) {
      const BigUInt a = BigUInt::random_bits(rng, bits);
      const BigUInt b = BigUInt::random_bits(rng, bits);
      EXPECT_EQ(backend->multiply(a, b), bigint::mul_schoolbook(a, b))
          << name << " at " << bits << " bits";
    }
  }
}

TEST(Backends, ZeroAndOneEdgeCases) {
  util::Rng rng(0xED6E);
  const BigUInt a = BigUInt::random_bits(rng, 3000);
  for (const std::string& name : Registry::instance().names()) {
    const auto backend = make_backend(name);
    EXPECT_EQ(backend->multiply(a, BigUInt{}), BigUInt{}) << name;
    EXPECT_EQ(backend->multiply(BigUInt{}, a), BigUInt{}) << name;
    EXPECT_EQ(backend->multiply(BigUInt{}, BigUInt{}), BigUInt{}) << name;
    EXPECT_EQ(backend->multiply(a, BigUInt{1}), a) << name;
    EXPECT_EQ(backend->multiply(BigUInt{1}, a), a) << name;
    EXPECT_EQ(backend->square(a), bigint::mul_schoolbook(a, a)) << name;
  }
}

TEST(Backends, SsaMaxOperandBoundary) {
  const ssa::SsaParams params = ssa::SsaParams::for_bits(4096);
  SsaBackend fixed(params);
  const std::size_t max_bits = fixed.limits().max_operand_bits;
  ASSERT_GT(max_bits, 0u);

  util::Rng rng(0xB0DE);
  const BigUInt a = BigUInt::random_bits(rng, max_bits);
  const BigUInt b = BigUInt::random_bits(rng, max_bits);
  EXPECT_EQ(fixed.multiply(a, b), bigint::mul_schoolbook(a, b));

  const BigUInt too_big = BigUInt::random_bits(rng, max_bits + 1);
  EXPECT_THROW((void)fixed.multiply(too_big, b), std::logic_error);
}

TEST(Backends, HwLimitsMatchPaperConfiguration) {
  HwBackend hw;
  EXPECT_EQ(hw.limits().max_operand_bits, 786432u);
  EXPECT_TRUE(hw.limits().caches_spectra);
  EXPECT_TRUE(hw.limits().reports_hw_cycles);

  util::Rng rng(0x4A11);
  const BigUInt a = BigUInt::random_bits(rng, 30000);
  const BigUInt b = BigUInt::random_bits(rng, 30000);
  EXPECT_EQ(hw.multiply(a, b), bigint::mul_schoolbook(a, b));
  ASSERT_TRUE(hw.last_report().has_value());
  EXPECT_NEAR(hw.last_report()->total_time_us(), 122.88, 0.01);
}

TEST(Backends, BatchEqualsPerCallMultiply) {
  util::Rng rng(0xBA7C);
  for (const char* name : {"classical", "ssa", "auto"}) {
    const auto backend = make_backend(name);
    std::vector<MulJob> jobs = shared_operand_jobs(rng, 5, 4000);
    jobs.emplace_back(BigUInt{}, BigUInt::random_bits(rng, 4000));  // zero
    jobs.emplace_back(BigUInt{1}, BigUInt::random_bits(rng, 4000)); // one

    BatchStats stats;
    const std::vector<BigUInt> batched = backend->multiply_batch(jobs, &stats);
    ASSERT_EQ(batched.size(), jobs.size()) << name;
    EXPECT_EQ(stats.jobs, jobs.size()) << name;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_EQ(batched[i], backend->multiply(jobs[i].first, jobs[i].second))
          << name << " job " << i;
    }
  }
}

TEST(Backends, SsaBatchCachesRepeatedSpectra) {
  util::Rng rng(0x5CA1);
  constexpr std::size_t kJobs = 6;
  const std::vector<MulJob> jobs = shared_operand_jobs(rng, kJobs, 8000);

  SsaBackend ssa_backend;
  BatchStats stats;
  const std::vector<BigUInt> products = ssa_backend.multiply_batch(jobs, &stats);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(products[i], bigint::mul_schoolbook(jobs[i].first, jobs[i].second));
  }
  // The shared operand is transformed once: N+1 forwards instead of 2N.
  EXPECT_EQ(stats.forward_transforms, kJobs + 1);
  EXPECT_EQ(stats.spectrum_cache_hits, kJobs - 1);
  EXPECT_EQ(stats.inverse_transforms, kJobs);
}

TEST(Backends, SsaBatchSquareJobTransformsOnce) {
  util::Rng rng(0x50AE);
  const BigUInt a = BigUInt::random_bits(rng, 6000);
  const std::vector<MulJob> jobs = {{a, a}};

  SsaBackend ssa_backend;
  BatchStats stats;
  const std::vector<BigUInt> products = ssa_backend.multiply_batch(jobs, &stats);
  EXPECT_EQ(products[0], bigint::mul_schoolbook(a, a));
  EXPECT_EQ(stats.forward_transforms, 1u);
  EXPECT_EQ(stats.spectrum_cache_hits, 1u);
}

TEST(Backends, SsaBatchDistinctOperandsSkipTheCache) {
  util::Rng rng(0xD157);
  std::vector<MulJob> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.emplace_back(BigUInt::random_bits(rng, 6000), BigUInt::random_bits(rng, 6000));
  }

  SsaBackend ssa_backend;
  BatchStats stats;
  const std::vector<BigUInt> products = ssa_backend.multiply_batch(jobs, &stats);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(products[i], bigint::mul_schoolbook(jobs[i].first, jobs[i].second));
  }
  // All operands are single-use: every spectrum is computed, none cached.
  EXPECT_EQ(stats.forward_transforms, 2 * jobs.size());
  EXPECT_EQ(stats.spectrum_cache_hits, 0u);
}

TEST(Backends, HwBatchCachingBeatsIndependentMultiplies) {
  util::Rng rng(0x33AA);
  constexpr std::size_t kJobs = 4;
  const std::vector<MulJob> jobs = shared_operand_jobs(rng, kJobs, 50000);

  HwBackend hw;
  BatchStats stats;
  const std::vector<BigUInt> products = hw.multiply_batch(jobs, &stats);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(products[i], bigint::mul_karatsuba(jobs[i].first, jobs[i].second));
  }
  EXPECT_EQ(stats.forward_transforms, kJobs + 1);
  EXPECT_EQ(stats.spectrum_cache_hits, kJobs - 1);
  EXPECT_GT(stats.total_cycles, 0u);

  // N independent multiplies run 3N transforms; the cached batch runs
  // (N+1) + N. The modeled cycle count must reflect the saving.
  hw::MultiplyReport single;
  (void)hw.accelerator().multiply(jobs[0].first, jobs[0].second, &single);
  EXPECT_LT(stats.total_cycles, kJobs * single.total_cycles);
}

TEST(Dispatch, OperatorStarRoutesThroughInstalledHook) {
  // Linking the backend layer installs the registry's auto policy.
  ASSERT_NE(bigint::mul_dispatch(), nullptr);

  static std::atomic<int> calls{0};
  const bigint::MulDispatchFn previous = bigint::mul_dispatch();
  bigint::set_mul_dispatch([](const BigUInt& a, const BigUInt& b) {
    ++calls;
    return bigint::mul_auto_classical(a, b);
  });

  util::Rng rng(0xD15);
  const BigUInt a = BigUInt::random_bits(rng, 700);
  const BigUInt b = BigUInt::random_bits(rng, 700);
  const BigUInt product = a * b;
  EXPECT_GE(calls.load(), 1);
  EXPECT_EQ(product, bigint::mul_schoolbook(a, b));

  bigint::set_mul_dispatch(previous);
}

TEST(Fhe, DghvRunsOnExplicitBackends) {
  for (const char* name : {"classical", "ssa"}) {
    fhe::Dghv scheme(fhe::DghvParams::toy(), 7, make_backend(name));
    const auto one = scheme.encrypt(true);
    const auto zero = scheme.encrypt(false);
    EXPECT_TRUE(scheme.decrypt(scheme.multiply(one, one))) << name;
    EXPECT_FALSE(scheme.decrypt(scheme.multiply(one, zero))) << name;

    const std::vector<std::pair<fhe::Ciphertext, fhe::Ciphertext>> jobs = {
        {one, one}, {one, zero}, {zero, zero}};
    const std::vector<fhe::Ciphertext> products = scheme.multiply_batch(jobs);
    ASSERT_EQ(products.size(), 3u) << name;
    EXPECT_TRUE(scheme.decrypt(products[0])) << name;
    EXPECT_FALSE(scheme.decrypt(products[1])) << name;
    EXPECT_FALSE(scheme.decrypt(products[2])) << name;
  }
}

TEST(Fhe, SetMultiplierWrapsFunctionBackend) {
  fhe::Dghv scheme(fhe::DghvParams::toy(), 9);
  static std::atomic<int> calls{0};
  calls = 0;
  // The deprecated shim must keep behaving like the documented path
  // (set_backend + FunctionBackend) until it is removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  scheme.set_multiplier([](const BigUInt& a, const BigUInt& b) {
    ++calls;
    return bigint::mul_schoolbook(a, b);
  });
#pragma GCC diagnostic pop
  const auto c = scheme.multiply(scheme.encrypt(true), scheme.encrypt(true));
  EXPECT_TRUE(scheme.decrypt(c));
  EXPECT_GE(calls.load(), 1);
  EXPECT_EQ(scheme.engine()->name(), "custom");
}

TEST(SsaBackendStats, CumulativeTransformCountIsCacheAware) {
  // The shared-cache path must not charge 3 transforms per product: the
  // second multiply of the same pair only runs the inverse.
  util::Rng rng(0x57A7);
  const BigUInt a = BigUInt::random_bits(rng, 6000);
  const BigUInt b = BigUInt::random_bits(rng, 6000);

  SsaBackend backend;
  backend.set_shared_cache(std::make_shared<ssa::ConcurrentSpectrumCache>());
  backend.set_workspace(std::make_shared<ssa::Workspace>());

  const BigUInt first = backend.multiply(a, b);
  EXPECT_EQ(backend.stats().transform_count, 3u);
  const BigUInt second = backend.multiply(a, b);
  EXPECT_EQ(backend.stats().transform_count, 4u);  // +1, not +3
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, bigint::mul_schoolbook(a, b));

  // Uncached instances keep the plain 3-per-multiply accounting.
  SsaBackend plain;
  (void)plain.multiply(a, b);
  (void)plain.square(a);
  EXPECT_EQ(plain.stats().transform_count, 5u);  // 3 + 2
}

TEST(Fhe, CircuitsWordMultiplyOnExplicitBackend) {
  fhe::Dghv scheme(fhe::DghvParams::deep(), 11);
  fhe::Circuits circuits(scheme, make_backend("classical"));
  const auto zero = scheme.encrypt(false);

  const fhe::EncryptedInt a = fhe::encrypt_int(scheme, 5, 3);
  const fhe::EncryptedInt b = fhe::encrypt_int(scheme, 6, 3);
  const fhe::EncryptedInt product = circuits.multiply(a, b, zero);
  EXPECT_EQ(fhe::decrypt_int(scheme, product), 30u);
  EXPECT_GT(circuits.and_gates_used(), 0u);
}

}  // namespace
}  // namespace hemul::backend
