#include <gtest/gtest.h>

#include "fp/roots.hpp"
#include "ntt/radix2.hpp"
#include "ntt/reference.hpp"
#include "util/rng.hpp"

namespace hemul::ntt {
namespace {

using fp::Fp;
using fp::FpVec;

FpVec random_vec(util::Rng& rng, std::size_t n) {
  FpVec v(n);
  for (auto& x : v) x = Fp{rng.next()};
  return v;
}

class Radix2VsReference : public ::testing::TestWithParam<u64> {};

TEST_P(Radix2VsReference, ForwardMatchesDirectDft) {
  const u64 n = GetParam();
  const Radix2Ntt engine(n);
  util::Rng rng(n);
  FpVec data = random_vec(rng, n);
  const FpVec expected = dft_reference(data, engine.root());
  engine.forward(data);
  EXPECT_EQ(data, expected);
}

TEST_P(Radix2VsReference, RoundTrip) {
  const u64 n = GetParam();
  const Radix2Ntt engine(n);
  util::Rng rng(n + 7);
  const FpVec orig = random_vec(rng, n);
  FpVec data = orig;
  engine.forward(data);
  EXPECT_NE(data, orig);  // astronomically unlikely to be a fixed point
  engine.inverse(data);
  EXPECT_EQ(data, orig);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Radix2VsReference,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256, 512, 1024));

TEST(Radix2, LargeRoundTrip64K) {
  const Radix2Ntt engine(65536);
  util::Rng rng(99);
  const FpVec orig = random_vec(rng, 65536);
  FpVec data = orig;
  engine.forward(data);
  engine.inverse(data);
  EXPECT_EQ(data, orig);
}

TEST(Radix2, UsesAlignedRootFor64Plus) {
  // The radix-2 engine and the mixed-radix engine must share the same root
  // hierarchy so their outputs are directly comparable.
  const Radix2Ntt engine(65536);
  EXPECT_EQ(engine.root().pow(65536 / 64), fp::kOmega64);
}

TEST(Radix2, RejectsBadSizes) {
  EXPECT_THROW(Radix2Ntt(0), std::logic_error);
  EXPECT_THROW(Radix2Ntt(1), std::logic_error);
  EXPECT_THROW(Radix2Ntt(48), std::logic_error);
}

TEST(Radix2, SizeMismatchChecked) {
  const Radix2Ntt engine(16);
  FpVec wrong(8, fp::kZero);
  EXPECT_THROW(engine.forward(wrong), std::logic_error);
}

TEST(Radix2, LinearityHolds) {
  const u64 n = 256;
  const Radix2Ntt engine(n);
  util::Rng rng(42);
  const FpVec f = random_vec(rng, n);
  const FpVec g = random_vec(rng, n);
  FpVec fg(n);
  for (u64 i = 0; i < n; ++i) fg[i] = f[i] + g[i];
  FpVec a = f;
  FpVec b = g;
  FpVec c = fg;
  engine.forward(a);
  engine.forward(b);
  engine.forward(c);
  for (u64 i = 0; i < n; ++i) EXPECT_EQ(c[i], a[i] + b[i]);
}

TEST(Radix2, ParsevalLikeDcComponent) {
  // F[0] equals the plain sum of inputs.
  const u64 n = 128;
  const Radix2Ntt engine(n);
  util::Rng rng(43);
  FpVec f = random_vec(rng, n);
  Fp sum = fp::kZero;
  for (const auto& v : f) sum += v;
  engine.forward(f);
  EXPECT_EQ(f[0], sum);
}

}  // namespace
}  // namespace hemul::ntt
