#include <gtest/gtest.h>

#include "fp/roots.hpp"
#include "hw/arith/adder_tree.hpp"
#include "hw/arith/carry_save.hpp"
#include "hw/arith/reduction.hpp"
#include "hw/arith/rot192.hpp"
#include "hw/arith/shifter_bank.hpp"
#include "util/rng.hpp"

namespace hemul::hw {
namespace {

using fp::Fp;

/// Reference value of a Rot192 modulo p, computed independently.
Fp ref_fp(const Rot192& x) {
  const auto& w = x.words();
  return Fp{w[0]} + Fp{w[1]} * fp::kTwo.pow(64) + Fp{w[2]} * fp::kTwo.pow(128);
}

Rot192 random_rot(util::Rng& rng) {
  return Rot192({rng.next(), rng.next(), rng.next()});
}

TEST(Rot192, ZeroAndFromFp) {
  EXPECT_EQ(Rot192{}.to_fp(), fp::kZero);
  EXPECT_EQ(Rot192{}.significant_bits(), 0u);
  const Fp x{123456789};
  EXPECT_EQ(Rot192::from_fp(x).to_fp(), x);
}

TEST(Rot192, AllOnesIsZero) {
  // The ring's redundant encoding: 2^192 - 1 = 0.
  const Rot192 ones({~0ULL, ~0ULL, ~0ULL});
  EXPECT_EQ(ones.to_fp(), fp::kZero);
}

TEST(Rot192, NegateIsBitwiseNot) {
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Rot192 x = random_rot(rng);
    EXPECT_EQ(x.add(x.negate()).to_fp(), fp::kZero);
    EXPECT_EQ(x.negate().to_fp(), x.to_fp().neg());
  }
}

class Rot192Props : public ::testing::TestWithParam<u64> {};

TEST_P(Rot192Props, AdditionProjectsToField) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Rot192 a = random_rot(rng);
    const Rot192 b = random_rot(rng);
    EXPECT_EQ(a.add(b).to_fp(), a.to_fp() + b.to_fp());
    EXPECT_EQ(a.add(b).to_fp(), b.add(a).to_fp());
  }
}

TEST_P(Rot192Props, RotationIsMultiplicationByPowerOfTwo) {
  util::Rng rng(GetParam() ^ 0xF00);
  for (int i = 0; i < 100; ++i) {
    const Rot192 x = random_rot(rng);
    const u64 k = rng.below(400);
    EXPECT_EQ(x.rotl(k).to_fp(), x.to_fp().mul_pow2(k)) << "k=" << k;
  }
}

TEST_P(Rot192Props, ToFpMatchesIndependentReference) {
  util::Rng rng(GetParam() ^ 0xBEEF);
  for (int i = 0; i < 200; ++i) {
    const Rot192 x = random_rot(rng);
    EXPECT_EQ(x.to_fp(), ref_fp(x));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Rot192Props, ::testing::Values(11, 22, 33));

TEST(Rot192, RotationExhaustiveShifts) {
  util::Rng rng(5);
  const Rot192 x = random_rot(rng);
  for (u64 k = 0; k <= 192; ++k) {
    EXPECT_EQ(x.rotl(k).to_fp(), x.to_fp().mul_pow2(k)) << k;
  }
  // Full rotation is the identity (2^192 = 1).
  EXPECT_EQ(x.rotl(192), x);
  EXPECT_EQ(x.rotl(64).rotl(128), x);
}

TEST(Rot192, WordBoundaryRotations) {
  const Rot192 one({1, 0, 0});
  EXPECT_EQ(one.rotl(64).words()[1], 1u);
  EXPECT_EQ(one.rotl(128).words()[2], 1u);
  EXPECT_EQ(one.rotl(191).words()[2], 1ULL << 63);
  EXPECT_EQ(one.rotl(191).rotl(1), one);
}

TEST(Rot192, SignificantBits) {
  EXPECT_EQ(Rot192({1, 0, 0}).significant_bits(), 1u);
  EXPECT_EQ(Rot192({0, 1, 0}).significant_bits(), 65u);
  EXPECT_EQ(Rot192({0, 0, 1ULL << 63}).significant_bits(), 192u);
}

// ---------------------------------------------------------------------------
// Carry-save arithmetic.
// ---------------------------------------------------------------------------

TEST(CarrySave, CompressPreservesSum) {
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Rot192 a = random_rot(rng);
    const Rot192 b = random_rot(rng);
    const Rot192 c = random_rot(rng);
    const CsaValue v = csa_compress(a, b, c);
    EXPECT_EQ(v.to_fp(), a.to_fp() + b.to_fp() + c.to_fp());
  }
}

TEST(CarrySave, AccumulateChain) {
  util::Rng rng(8);
  CsaValue acc{};
  Fp expected = fp::kZero;
  for (int i = 0; i < 64; ++i) {
    const Rot192 term = random_rot(rng);
    acc = csa_accumulate(acc, term);
    expected += term.to_fp();
    EXPECT_EQ(acc.to_fp(), expected);
  }
}

class CsaTreeSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CsaTreeSizes, TreePreservesSum) {
  const std::size_t n = GetParam();
  util::Rng rng(n);
  std::vector<Rot192> terms(n);
  Fp expected = fp::kZero;
  for (auto& t : terms) {
    t = random_rot(rng);
    expected += t.to_fp();
  }
  CsaTreeStats stats;
  const CsaValue v = csa_tree(terms, &stats);
  EXPECT_EQ(v.to_fp(), expected);
  if (n > 2) {
    EXPECT_GT(stats.compressors, 0u);
    EXPECT_GT(stats.depth, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CsaTreeSizes, ::testing::Values(0, 1, 2, 3, 4, 7, 8, 9, 16, 64));

TEST(CarrySave, TreeDepthIsLogarithmic) {
  std::vector<Rot192> terms(8);
  CsaTreeStats stats;
  (void)csa_tree(terms, &stats);
  // 8 -> 6 -> 4 -> 3 -> 2: depth 4 with 3:2 compressors.
  EXPECT_LE(stats.depth, 4u);
}

// ---------------------------------------------------------------------------
// Adder tree (dual output) and shifter bank.
// ---------------------------------------------------------------------------

TEST(AdderTree, SumMatchesDirectAddition) {
  util::Rng rng(9);
  AdderTree merged(AdderTree::Config{.inputs = 8, .merge_carry_save = true});
  AdderTree unmerged(AdderTree::Config{.inputs = 8, .merge_carry_save = false});
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<Rot192> terms(8);
    Fp expected = fp::kZero;
    for (auto& t : terms) {
      t = random_rot(rng);
      expected += t.to_fp();
    }
    EXPECT_EQ(merged.reduce(terms).to_fp(), expected);
    EXPECT_EQ(unmerged.reduce(terms).to_fp(), expected);
    // The merged variant resolves to a single vector (carry == 0).
    EXPECT_EQ(merged.reduce(terms).carry.to_fp(), fp::kZero);
  }
}

TEST(AdderTree, SumAndDiffOutputs) {
  util::Rng rng(10);
  AdderTree tree(AdderTree::Config{.inputs = 8, .merge_carry_save = true});
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<Rot192> terms(8);
    Fp sum = fp::kZero;
    Fp diff = fp::kZero;
    for (std::size_t i = 0; i < terms.size(); ++i) {
      terms[i] = random_rot(rng);
      sum += terms[i].to_fp();
      if (i % 2 == 0) {
        diff += terms[i].to_fp();
      } else {
        diff -= terms[i].to_fp();
      }
    }
    const SumAndDiff sd = tree.reduce_sum_diff(terms);
    EXPECT_EQ(sd.sum.to_fp(), sum);
    EXPECT_EQ(sd.diff.to_fp(), diff);
  }
}

TEST(AdderTree, RejectsWrongArity) {
  AdderTree tree(AdderTree::Config{.inputs = 8, .merge_carry_save = true});
  std::vector<Rot192> terms(7);
  EXPECT_THROW(tree.reduce(terms), std::logic_error);
}

TEST(ShifterBank, AppliesPerLaneRotations) {
  util::Rng rng(11);
  ShifterBank bank(8);
  std::vector<Rot192> inputs(8);
  std::vector<u64> shifts(8);
  for (unsigned i = 0; i < 8; ++i) {
    inputs[i] = random_rot(rng);
    shifts[i] = rng.below(192);
  }
  const auto out = bank.apply(inputs, shifts);
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(out[i].to_fp(), inputs[i].to_fp().mul_pow2(shifts[i]));
  }
  EXPECT_EQ(bank.rotations_performed(), 8u);
}

TEST(ShifterBank, RejectsLaneMismatch) {
  ShifterBank bank(8);
  std::vector<Rot192> inputs(4);
  std::vector<u64> shifts(4);
  EXPECT_THROW(bank.apply(inputs, shifts), std::logic_error);
}

// ---------------------------------------------------------------------------
// Reduction blocks.
// ---------------------------------------------------------------------------

TEST(Reduction, ReductorMatchesFieldValue) {
  util::Rng rng(12);
  ModularReductor reductor;
  for (int i = 0; i < 200; ++i) {
    const Rot192 x = random_rot(rng);
    EXPECT_EQ(reductor.reduce(x), ref_fp(x));
  }
  EXPECT_EQ(reductor.reductions_performed(), 200u);
}

TEST(Reduction, ReductorHandlesCarrySaveInput) {
  util::Rng rng(13);
  ModularReductor reductor;
  for (int i = 0; i < 50; ++i) {
    const Rot192 a = random_rot(rng);
    const Rot192 b = random_rot(rng);
    const CsaValue v = csa_compress(a, b, Rot192{});
    EXPECT_EQ(reductor.reduce(v), a.to_fp() + b.to_fp());
  }
}

TEST(Reduction, PreNormalizeMatchesFieldReduction) {
  util::Rng rng(14);
  for (int i = 0; i < 200; ++i) {
    const u64 raw = rng.next();
    EXPECT_EQ(pre_normalize(raw), Fp{raw});
  }
  EXPECT_EQ(pre_normalize(fp::kModulus), fp::kZero);
  EXPECT_EQ(pre_normalize(~0ULL), Fp{~0ULL});
}

// The paper's headline invariant: every datapath value fits in 192 bits by
// construction, and rotations never change that.
TEST(WidthInvariant, RotationsAndSumsStayWithin192Bits) {
  util::Rng rng(15);
  CsaValue acc{};
  for (int i = 0; i < 1000; ++i) {
    const Rot192 term = random_rot(rng).rotl(rng.below(192));
    acc = csa_accumulate(acc, term);
    EXPECT_LE(acc.sum.significant_bits(), 192u);
    EXPECT_LE(acc.carry.significant_bits(), 192u);
  }
}

}  // namespace
}  // namespace hemul::hw
