// Allocation audit of the SSA hot path: after warm-up, multiply_into /
// square_into must perform ZERO heap allocations -- the software
// equivalent of the paper's claim that the accelerator runs from
// pre-resident twiddle ROMs and statically managed buffers with no
// per-operation setup.
//
// The audit counts every route into the heap by overriding the global
// operator new/delete for this test binary (std::vector, BigUInt limbs and
// all library transients funnel through them).

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "bigint/mul.hpp"
#include "ssa/batch.hpp"
#include "ssa/multiply.hpp"
#include "ssa/pack.hpp"
#include "util/rng.hpp"

namespace {

thread_local hemul::u64 g_allocations = 0;

}  // namespace

// Counting allocator: every form of operator new funnels through malloc and
// bumps the thread-local counter. (Sized/aligned deletes forward to free.)
void* operator new(std::size_t size) {
  ++g_allocations;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace hemul::ssa {
namespace {

using bigint::BigUInt;

class SsaAllocationAudit : public ::testing::Test {
 protected:
  /// Allocations performed by `fn` on this thread.
  template <typename Fn>
  static u64 allocations_in(Fn&& fn) {
    const u64 before = g_allocations;
    fn();
    return g_allocations - before;
  }
};

TEST_F(SsaAllocationAudit, SteadyStateMultiplyIntoIsAllocationFree) {
  util::Rng rng(1);
  const std::size_t bits = 20000;
  const BigUInt a = BigUInt::random_bits(rng, bits);
  const BigUInt b = BigUInt::random_bits(rng, bits);
  const SsaParams params = SsaParams::for_bits(bits);

  Workspace workspace;
  BigUInt product;
  // Warm-up: builds the shared engine, sizes the workspace and the
  // product's limb storage.
  multiply_into(product, a, b, params, workspace);
  multiply_into(product, a, b, params, workspace);
  const BigUInt expected = product;

  for (int round = 0; round < 5; ++round) {
    const u64 allocs = allocations_in([&] {
      multiply_into(product, a, b, params, workspace);
    });
    EXPECT_EQ(allocs, 0u) << "round " << round;
  }
  EXPECT_EQ(product, expected);
  EXPECT_EQ(product, bigint::mul_karatsuba(a, b));
}

TEST_F(SsaAllocationAudit, SteadyStateSquareIntoIsAllocationFree) {
  util::Rng rng(2);
  const BigUInt a = BigUInt::random_bits(rng, 15000);
  const SsaParams params = SsaParams::for_bits(15000);

  Workspace workspace;
  BigUInt product;
  square_into(product, a, params, workspace);
  square_into(product, a, params, workspace);

  for (int round = 0; round < 5; ++round) {
    const u64 allocs = allocations_in([&] { square_into(product, a, params, workspace); });
    EXPECT_EQ(allocs, 0u) << "round " << round;
  }
  EXPECT_EQ(product, bigint::mul_karatsuba(a, a));
}

TEST_F(SsaAllocationAudit, FourStepPathIsAllocationFree) {
  // The cache-blocked four-step transform keeps all scratch (including the
  // corner-turn buffer) inside the Workspace: the serial tiled path must be
  // just as allocation-free as the monolithic sweep it replaces.
  util::Rng rng(5);
  const std::size_t bits = 20000;
  const BigUInt a = BigUInt::random_bits(rng, bits);
  const BigUInt b = BigUInt::random_bits(rng, bits);
  SsaParams params = SsaParams::for_bits(bits);
  params.four_step = FourStepMode::kAlways;
  ASSERT_TRUE(params.use_four_step());

  Workspace workspace;
  BigUInt product;
  multiply_into(product, a, b, params, workspace);
  multiply_into(product, a, b, params, workspace);

  for (int round = 0; round < 5; ++round) {
    const u64 allocs = allocations_in([&] {
      multiply_into(product, a, b, params, workspace);
    });
    EXPECT_EQ(allocs, 0u) << "round " << round;
  }
  EXPECT_EQ(product, bigint::mul_karatsuba(a, b));

  // Squaring shares the same scratch discipline.
  square_into(product, a, params, workspace);
  for (int round = 0; round < 5; ++round) {
    const u64 allocs = allocations_in([&] { square_into(product, a, params, workspace); });
    EXPECT_EQ(allocs, 0u) << "square round " << round;
  }
  EXPECT_EQ(product, bigint::mul_karatsuba(a, a));
}

TEST_F(SsaAllocationAudit, MixedRadixEngineIsAlsoAllocationFree) {
  util::Rng rng(3);
  const std::size_t bits = 20000;
  const BigUInt a = BigUInt::random_bits(rng, bits);
  const BigUInt b = BigUInt::random_bits(rng, bits);
  SsaParams params = SsaParams::for_bits(bits);
  params.engine = Engine::kMixedRadix;

  Workspace workspace;
  BigUInt product;
  multiply_into(product, a, b, params, workspace);
  multiply_into(product, a, b, params, workspace);

  for (int round = 0; round < 3; ++round) {
    const u64 allocs = allocations_in([&] {
      multiply_into(product, a, b, params, workspace);
    });
    EXPECT_EQ(allocs, 0u) << "round " << round;
  }
  EXPECT_EQ(product, bigint::mul_karatsuba(a, b));
}

TEST_F(SsaAllocationAudit, ResidentSpectrumSteadyStateIsAllocationFree) {
  // The spectrum-resident protocol's primitives (enter / multiply /
  // accumulate / leave) into warmed ResidentSpectrum buffers must be
  // allocation-free, or keeping wires in the domain across wavefronts
  // would trade transforms for heap churn.
  util::Rng rng(6);
  const std::size_t bits = 20000;
  const BigUInt a = BigUInt::random_bits(rng, bits);
  const BigUInt b = BigUInt::random_bits(rng, bits);
  const SsaParams params = SsaParams::for_bits(bits, kResidentHeadroomBits);

  Workspace workspace;
  const SpectrumDomain domain(params, workspace);
  ResidentSpectrum sa, sb, product, acc;
  BigUInt out;
  const auto run = [&] {
    acc.reset();
    domain.enter(sa, a);
    domain.enter(sb, b);
    domain.multiply(product, sa, sb);
    domain.accumulate(acc, product);
    domain.accumulate(acc, product);
    domain.leave(out, acc);
  };
  run();
  run();
  const BigUInt expected = out;

  for (int round = 0; round < 3; ++round) {
    const u64 allocs = allocations_in(run);
    EXPECT_EQ(allocs, 0u) << "round " << round;
  }
  EXPECT_EQ(out, expected);
  const BigUInt ab = bigint::mul_karatsuba(a, b);
  EXPECT_EQ(out, ab + ab) << "acc held ab + ab";
}

TEST_F(SsaAllocationAudit, AllocatingWrapperOnlyPaysForTheProduct) {
  // ssa::multiply returns a fresh BigUInt; everything else must come from
  // the thread workspace. One limb-vector allocation is the expected cost.
  util::Rng rng(4);
  const std::size_t bits = 20000;
  const BigUInt a = BigUInt::random_bits(rng, bits);
  const BigUInt b = BigUInt::random_bits(rng, bits);
  const SsaParams params = SsaParams::for_bits(bits);

  (void)multiply(a, b, params);
  (void)multiply(a, b, params);
  const u64 allocs = allocations_in([&] { (void)multiply(a, b, params); });
  EXPECT_EQ(allocs, 1u);
}

TEST_F(SsaAllocationAudit, CacheHitMultiplyCachedIsAllocationFreeModuloProduct) {
  // Once both spectra are cached, a lane's multiply_cached only allocates
  // the product it returns.
  util::Rng rng(5);
  const std::size_t bits = 20000;
  const BigUInt a = BigUInt::random_bits(rng, bits);
  const BigUInt b = BigUInt::random_bits(rng, bits);
  const SsaParams params = SsaParams::for_bits(bits);

  ConcurrentSpectrumCache cache;
  Workspace workspace;
  const BigUInt expected = multiply_cached(a, b, params, cache, workspace, nullptr);
  (void)multiply_cached(a, b, params, cache, workspace, nullptr);

  BigUInt product;
  const u64 allocs = allocations_in([&] {
    product = multiply_cached(a, b, params, cache, workspace, nullptr);
  });
  EXPECT_EQ(product, expected);
  // Product limbs + the move of the returned value; everything transform-
  // related must be reused. Allow the one product allocation only.
  EXPECT_LE(allocs, 1u);
}

}  // namespace
}  // namespace hemul::ssa
