// The carry-save lowering API: the shared gate-builder templates, the
// ripple/carry-save strategy dispatch, the depth predictor's agreement
// with the recorded graph, and cross-strategy parity all the way down to
// decrypted plaintexts on every registered backend.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "backend/registry.hpp"
#include "core/scheduler.hpp"
#include "fhe/circuits.hpp"
#include "fhe/evaluator.hpp"
#include "fhe/graph.hpp"
#include "fhe/lowering.hpp"
#include "fhe/noise.hpp"

namespace hemul::fhe {
namespace {

constexpr LoweringOptions kRipple{LoweringStrategy::kRippleCarry};
constexpr LoweringOptions kCarrySave{LoweringStrategy::kCarrySave};

/// Plaintext instantiation of the gate-builder concept. Wires are 0/1
/// bytes (vector<bool>'s packed specialization cannot back a std::span);
/// running the very same lowering templates over them gives the ground
/// truth every ciphertext evaluation must reproduce.
using PlainWire = unsigned char;

struct PlainBuilder {
  using WireType = PlainWire;
  PlainWire gate_xor(PlainWire a, PlainWire b) {
    return static_cast<PlainWire>(a ^ b);
  }
  PlainWire gate_and(PlainWire a, PlainWire b) {
    return static_cast<PlainWire>(a & b);
  }
};

std::vector<PlainWire> to_bits(u64 value, unsigned width) {
  std::vector<PlainWire> bits(width);
  for (unsigned i = 0; i < width; ++i) {
    bits[i] = static_cast<PlainWire>((value >> i) & 1);
  }
  return bits;
}

u64 from_bits(const std::vector<PlainWire>& bits) {
  u64 value = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) value |= u64{1} << i;
  }
  return value;
}

u64 mask_of(unsigned width) { return width >= 64 ? ~u64{0} : (u64{1} << width) - 1; }

// --- primitive builders: exhaustive truth tables ---------------------------

TEST(LoweringPrimitives, Compressor32TruthTable) {
  PlainBuilder g;
  for (int bits = 0; bits < 8; ++bits) {
    const PlainWire a = bits & 1, b = (bits >> 1) & 1, c = (bits >> 2) & 1;
    const int total = a + b + c;
    const lowering::Compressed<PlainBuilder> r = lowering::compress_3_2(g, a, b, c);
    EXPECT_EQ(r.sum, total & 1) << "abc=" << bits;
    EXPECT_EQ(r.carry, total >= 2 ? 1 : 0) << "abc=" << bits;
  }
}

TEST(LoweringPrimitives, Compressor22TruthTable) {
  PlainBuilder g;
  for (int bits = 0; bits < 4; ++bits) {
    const PlainWire a = bits & 1, b = (bits >> 1) & 1;
    const lowering::Compressed<PlainBuilder> r = lowering::compress_2_2(g, a, b);
    EXPECT_EQ(r.sum, a ^ b) << "ab=" << bits;
    EXPECT_EQ(r.carry, a & b) << "ab=" << bits;
  }
}

TEST(LoweringPrimitives, MajorityTruthTable) {
  PlainBuilder g;
  for (int bits = 0; bits < 8; ++bits) {
    const PlainWire a = bits & 1, b = (bits >> 1) & 1, c = (bits >> 2) & 1;
    EXPECT_EQ(lowering::majority(g, a, b, c), a + b + c >= 2 ? 1 : 0)
        << "abc=" << bits;
  }
}

// --- cross-strategy functional equivalence over plaintext wires ------------

class PlainLoweringTest : public ::testing::TestWithParam<unsigned> {
 protected:
  /// Operand pairs for the parameterized width: exhaustive when the space
  /// is small, otherwise edge values plus a deterministic LCG sample.
  static std::vector<std::pair<u64, u64>> operand_pairs(unsigned width) {
    const u64 mask = mask_of(width);
    std::vector<std::pair<u64, u64>> pairs;
    if (width <= 4) {
      for (u64 x = 0; x <= mask; ++x) {
        for (u64 y = 0; y <= mask; ++y) pairs.emplace_back(x, y);
      }
      return pairs;
    }
    for (const u64 x : {u64{0}, u64{1}, mask, mask - 1, mask >> 1}) {
      for (const u64 y : {u64{0}, u64{1}, mask, mask - 1, mask >> 1}) {
        pairs.emplace_back(x, y);
      }
    }
    u64 state = 0x9E3779B97F4A7C15ull + width;
    for (int i = 0; i < 40; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      const u64 x = (state >> 17) & mask;
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      const u64 y = (state >> 17) & mask;
      pairs.emplace_back(x, y);
    }
    return pairs;
  }
};

TEST_P(PlainLoweringTest, BothStrategiesComputeWordOpsExactly) {
  const unsigned width = GetParam();
  PlainBuilder g;
  constexpr PlainWire kZero = 0, kOne = 1;
  for (const auto& [x, y] : operand_pairs(width)) {
    const std::vector<PlainWire> a = to_bits(x, width);
    const std::vector<PlainWire> b = to_bits(y, width);
    const std::span<const PlainWire> sa(a), sb(b);
    for (const LoweringOptions options : {kRipple, kCarrySave}) {
      const lowering::AddOut<PlainBuilder> sum =
          lowering::lower_add(g, sa, sb, kZero, options);
      EXPECT_EQ(from_bits(sum.sum) | (u64{sum.carry_out} << width),
                (x + y) & mask_of(width + 1))
          << x << "+" << y << " w=" << width << " "
          << lowering_strategy_name(options.strategy);

      const std::vector<PlainWire> product =
          lowering::lower_multiply(g, sa, sb, kZero, options);
      EXPECT_EQ(from_bits(product), (x * y) & mask_of(2 * width))
          << x << "*" << y << " w=" << width << " "
          << lowering_strategy_name(options.strategy);

      EXPECT_EQ(lowering::lower_equals(g, sa, sb, kOne, options), x == y ? 1 : 0)
          << x << "==" << y << " w=" << width << " "
          << lowering_strategy_name(options.strategy);

      EXPECT_EQ(lowering::lower_less_than(g, sa, sb, kZero, kOne, options),
                x < y ? 1 : 0)
          << x << "<" << y << " w=" << width << " "
          << lowering_strategy_name(options.strategy);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, PlainLoweringTest,
                         ::testing::Values(1u, 2u, 7u, 8u, 16u));

// --- the depth predictor vs the recorded graph -----------------------------

TEST(LoweringDepth, PredictorMatchesRecordedGraphLevels) {
  Dghv scheme(DghvParams::toy(), 99);
  for (const unsigned width : {1u, 2u, 7u, 8u, 16u}) {
    for (const LoweringOptions options : {kRipple, kCarrySave}) {
      for (const WordOp op :
           {WordOp::kAdd, WordOp::kEquals, WordOp::kMultiply, WordOp::kMux,
            WordOp::kLessThan}) {
        Graph graph(scheme, options);
        std::vector<Wire> a, b;
        for (unsigned i = 0; i < width; ++i) {
          a.push_back(graph.input(scheme.encrypt(true)));
          b.push_back(graph.input(scheme.encrypt(false)));
        }
        const Wire zero = graph.input(scheme.encrypt(false));
        const Wire one = graph.input(scheme.encrypt(true));

        std::vector<Wire> outputs;
        switch (op) {
          case WordOp::kAdd: {
            Graph::AddResult r = graph.add(a, b, zero);
            outputs = std::move(r.sum);
            outputs.push_back(r.carry_out);
            break;
          }
          case WordOp::kEquals:
            outputs.push_back(graph.equals(a, b, one));
            break;
          case WordOp::kMultiply:
            outputs = graph.multiply(a, b, zero);
            break;
          case WordOp::kMux:
            outputs = graph.mux(one, a, b);
            break;
          case WordOp::kLessThan:
            outputs.push_back(graph.less_than(a, b, zero, one));
            break;
          case WordOp::kAnd:
            break;
        }

        unsigned recorded = 0;
        for (const Wire w : outputs) recorded = std::max(recorded, graph.level(w));
        EXPECT_EQ(NoiseModel::predicted_depth(op, width, options), recorded)
            << "op=" << static_cast<int>(op) << " w=" << width << " "
            << lowering_strategy_name(options.strategy);
      }
    }
  }
}

TEST(LoweringDepth, CarrySaveIsLogarithmicRippleIsLinear) {
  // The acceptance fact: at 16 bits the carry-save multiplier's AND-depth
  // is at most half the ripple multiplier's.
  const unsigned ripple = NoiseModel::predicted_depth(WordOp::kMultiply, 16, kRipple);
  const unsigned cs = NoiseModel::predicted_depth(WordOp::kMultiply, 16, kCarrySave);
  EXPECT_LE(2 * cs, ripple) << "carry-save " << cs << " vs ripple " << ripple;

  // Scaling shape: doubling the width adds a constant number of levels to
  // carry-save (one Wallace layer + one prefix round) but a linear number
  // to ripple.
  const unsigned cs8 = NoiseModel::predicted_depth(WordOp::kMultiply, 8, kCarrySave);
  const unsigned ripple8 = NoiseModel::predicted_depth(WordOp::kMultiply, 8, kRipple);
  EXPECT_LE(cs, cs8 + 4);
  EXPECT_GE(ripple, ripple8 + 8);
}

TEST(LoweringDepth, PredictedNoiseIsFiniteAndOrdered) {
  const DghvParams params = DghvParams::toy();
  for (const unsigned width : {4u, 8u}) {
    const double ripple =
        NoiseModel::predicted_noise_bits(WordOp::kMultiply, width, params, kRipple);
    const double cs =
        NoiseModel::predicted_noise_bits(WordOp::kMultiply, width, params, kCarrySave);
    EXPECT_GT(ripple, 0.0);
    EXPECT_GT(cs, 0.0);
    // Shallower circuits accumulate less noise.
    EXPECT_LT(cs, ripple) << "w=" << width;
  }
}

// --- ciphertext parity: eager vs wavefront, ripple vs carry-save -----------

/// Mid-size parameters (as in the wavefront bench): roomy enough that a
/// 4-bit adder/comparator stays decryptable under either lowering, small
/// enough that every AND is fast.
DghvParams parity_params() {
  DghvParams p;
  p.lambda = 8;
  p.rho = 8;
  p.eta = 512;
  p.gamma = 8192;
  p.tau = 16;
  return p;
}

TEST(LoweringParity, EagerAndWavefrontAreBitExactUnderBothStrategies) {
  const DghvParams params = parity_params();
  Dghv scheme(params, 0x10E1);
  const Ciphertext enc_zero = scheme.encrypt(false);
  const Ciphertext enc_one = scheme.encrypt(true);

  core::Config config;
  config.backend_name = "ssa";
  config.num_workers = 2;
  core::Scheduler scheduler(config);

  const unsigned width = 4;
  const u64 x = 0xB, y = 0x6;
  for (const LoweringOptions options : {kRipple, kCarrySave}) {
    const EncryptedInt cx = encrypt_int(scheme, x, width);
    const EncryptedInt cy = encrypt_int(scheme, y, width);

    // Eager facade on the scheme's own engine.
    Circuits eager(scheme, options);
    Circuits::AdderResult eager_sum = eager.add(cx, cy, enc_zero);
    std::vector<Ciphertext> eager_out = std::move(eager_sum.sum);
    eager_out.push_back(eager_sum.carry_out);
    eager_out.push_back(eager.less_than(cx, cy, enc_zero, enc_one));

    // Graph + wavefront evaluator over the scheduler.
    Graph graph(scheme, options);
    const std::vector<Wire> wx = graph.inputs(cx);
    const std::vector<Wire> wy = graph.inputs(cy);
    const Wire zero = graph.input(enc_zero);
    const Wire one = graph.input(enc_one);
    Graph::AddResult g_sum = graph.add(wx, wy, zero);
    std::vector<Wire> outputs = std::move(g_sum.sum);
    outputs.push_back(g_sum.carry_out);
    outputs.push_back(graph.less_than(wx, wy, zero, one));

    Evaluator evaluator(scheduler);
    const std::vector<Ciphertext> wave = evaluator.evaluate(graph, outputs);

    ASSERT_EQ(wave.size(), eager_out.size());
    for (std::size_t i = 0; i < wave.size(); ++i) {
      EXPECT_EQ(wave[i].value, eager_out[i].value)
          << "output " << i << " " << lowering_strategy_name(options.strategy);
    }
  }
}

TEST(LoweringParity, StrategiesDecryptIdenticallyOnEveryBackend) {
  const DghvParams params = parity_params();
  const unsigned width = 4;
  const u64 x = 0xD, y = 0x5;

  for (const std::string& name : backend::Registry::instance().names()) {
    const auto probe = backend::make_backend(name);
    const backend::BackendLimits limits = probe->limits();
    if (limits.max_operand_bits != 0 && limits.max_operand_bits < params.gamma) {
      continue;  // engine cannot hold a gamma-bit ciphertext
    }
    Dghv scheme(params, 0xBAC0);
    const Ciphertext enc_zero = scheme.encrypt(false);
    const Ciphertext enc_one = scheme.encrypt(true);
    const EncryptedInt cx = encrypt_int(scheme, x, width);
    const EncryptedInt cy = encrypt_int(scheme, y, width);

    u64 sums[2] = {0, 0};
    bool lts[2] = {false, false};
    int slot = 0;
    for (const LoweringOptions options : {kRipple, kCarrySave}) {
      Circuits circuits(scheme, backend::make_backend(name), options);
      Circuits::AdderResult r = circuits.add(cx, cy, enc_zero);
      sums[slot] = decrypt_int(scheme, r.sum) |
                   (scheme.decrypt(r.carry_out) ? u64{1} << width : 0);
      lts[slot] = scheme.decrypt(circuits.less_than(cx, cy, enc_zero, enc_one));
      ++slot;
    }
    EXPECT_EQ(sums[0], sums[1]) << "backend " << name;
    EXPECT_EQ(sums[0], x + y) << "backend " << name;
    EXPECT_EQ(lts[0], lts[1]) << "backend " << name;
    EXPECT_EQ(lts[0], x < y) << "backend " << name;
  }
}

TEST(LoweringParity, StrategiesDecryptIdenticallyAcrossWorkerCounts) {
  const unsigned width = 4;
  const u64 x = 0x9, y = 0xE;

  // Size the noise budget off the predictor itself: the deeper ripple
  // multiplier dictates eta, with margin, so BOTH strategies decrypt.
  DghvParams params = parity_params();
  const double worst = std::max(
      NoiseModel::predicted_noise_bits(WordOp::kMultiply, width, params, kRipple),
      NoiseModel::predicted_noise_bits(WordOp::kMultiply, width, params, kCarrySave));
  params.eta = static_cast<std::size_t>(worst) + 32;
  params.gamma = std::max<std::size_t>(params.gamma, 4 * params.eta);

  for (const unsigned workers : {1u, 4u}) {
    core::Config config;
    config.backend_name = "ssa";
    config.num_workers = workers;
    core::Scheduler scheduler(config);

    Dghv scheme(params, 0x60D0 + workers);
    const Ciphertext enc_zero = scheme.encrypt(false);
    u64 products[2] = {0, 0};
    int slot = 0;
    for (const LoweringOptions options : {kRipple, kCarrySave}) {
      Graph graph(scheme, options);
      const std::vector<Wire> wx = graph.inputs(encrypt_int(scheme, x, width));
      const std::vector<Wire> wy = graph.inputs(encrypt_int(scheme, y, width));
      const std::vector<Wire> outputs = graph.multiply(wx, wy, graph.input(enc_zero));

      Evaluator evaluator(scheduler);
      const std::vector<Ciphertext> wave = evaluator.evaluate(graph, outputs);
      products[slot++] = decrypt_int(scheme, EncryptedInt(wave.begin(), wave.end()));
    }
    EXPECT_EQ(products[0], products[1]) << workers << " workers";
    EXPECT_EQ(products[0], x * y) << workers << " workers";
  }
}

// --- per-call overrides and graph defaults ---------------------------------

TEST(LoweringOptionsApi, PerCallOverrideBeatsGraphDefault) {
  Dghv scheme(DghvParams::toy(), 55);
  Graph graph(scheme, kRipple);
  EXPECT_EQ(graph.lowering(), kRipple);

  std::vector<Wire> a, b;
  for (unsigned i = 0; i < 4; ++i) {
    a.push_back(graph.input(scheme.encrypt(true)));
    b.push_back(graph.input(scheme.encrypt(false)));
  }
  const Wire zero = graph.input(scheme.encrypt(false));

  // Default lowering: ripple depth for a 4-bit add is 4 levels.
  Graph::AddResult ripple_sum = graph.add(a, b, zero);
  unsigned ripple_depth = 0;
  for (const Wire w : ripple_sum.sum) ripple_depth = std::max(ripple_depth, graph.level(w));
  ripple_depth = std::max(ripple_depth, graph.level(ripple_sum.carry_out));
  EXPECT_EQ(ripple_depth, NoiseModel::predicted_depth(WordOp::kAdd, 4, kRipple));

  // Same graph, per-call carry-save: shallower, without touching the default.
  Graph::AddResult cs_sum = graph.add(a, b, zero, kCarrySave);
  unsigned cs_depth = 0;
  for (const Wire w : cs_sum.sum) cs_depth = std::max(cs_depth, graph.level(w));
  cs_depth = std::max(cs_depth, graph.level(cs_sum.carry_out));
  EXPECT_EQ(cs_depth, NoiseModel::predicted_depth(WordOp::kAdd, 4, kCarrySave));
  EXPECT_LT(cs_depth, ripple_depth);
  EXPECT_EQ(graph.lowering(), kRipple) << "per-call override must not stick";

  graph.set_lowering(kCarrySave);
  EXPECT_EQ(graph.lowering(), kCarrySave);
}

TEST(LoweringOptionsApi, StrategyNamesRoundTrip) {
  EXPECT_EQ(lowering_strategy_name(LoweringStrategy::kRippleCarry), "ripple");
  EXPECT_EQ(lowering_strategy_name(LoweringStrategy::kCarrySave), "carry-save");
  EXPECT_EQ(lowering_strategy_from_name("ripple"), LoweringStrategy::kRippleCarry);
  EXPECT_EQ(lowering_strategy_from_name("carry-save"), LoweringStrategy::kCarrySave);
  EXPECT_THROW((void)lowering_strategy_from_name("dadda"), std::invalid_argument);
}

}  // namespace
}  // namespace hemul::fhe
