#include <gtest/gtest.h>

#include "fp/roots.hpp"
#include "ntt/convolution.hpp"
#include "ntt/mixed_radix.hpp"
#include "ntt/radix2.hpp"
#include "ntt/reference.hpp"
#include "util/rng.hpp"

namespace hemul::ntt {
namespace {

using fp::Fp;
using fp::FpVec;

FpVec random_vec(util::Rng& rng, std::size_t n) {
  FpVec v(n);
  for (auto& x : v) x = Fp{rng.next()};
  return v;
}

TEST(NttPlan, FactoryValidation) {
  EXPECT_EQ(NttPlan::paper_64k().size, 65536u);
  EXPECT_EQ(NttPlan::paper_64k().describe(), "64*64*16");
  EXPECT_EQ(NttPlan::pure_radix2(8).stage_count(), 3u);
  EXPECT_EQ(NttPlan::uniform(16, 4096).stage_count(), 3u);
  EXPECT_THROW(NttPlan::from_radices({}), std::invalid_argument);
  EXPECT_THROW(NttPlan::from_radices({3}), std::invalid_argument);
  EXPECT_THROW(NttPlan::from_radices({1}), std::invalid_argument);
  EXPECT_THROW(NttPlan::uniform(16, 100), std::invalid_argument);
}

TEST(NttPlan, SubFftCounts) {
  const NttPlan plan = NttPlan::paper_64k();
  // Paper Section V: 1024 radix-64 FFTs in each of the first two stages,
  // 4096 radix-16 FFTs in the third.
  EXPECT_EQ(plan.sub_ffts_in_stage(0), 1024u);
  EXPECT_EQ(plan.sub_ffts_in_stage(1), 1024u);
  EXPECT_EQ(plan.sub_ffts_in_stage(2), 4096u);
}

struct PlanCase {
  std::vector<u32> radices;
  u64 seed;
};

class MixedRadixVsReference : public ::testing::TestWithParam<PlanCase> {};

TEST_P(MixedRadixVsReference, MatchesDirectDft) {
  const auto& param = GetParam();
  const MixedRadixNtt engine(NttPlan::from_radices(param.radices));
  const u64 n = engine.plan().size;
  util::Rng rng(param.seed);
  const FpVec data = random_vec(rng, n);
  EXPECT_EQ(engine.forward(data), dft_reference(data, engine.root()));
}

TEST_P(MixedRadixVsReference, RoundTrip) {
  const auto& param = GetParam();
  const MixedRadixNtt engine(NttPlan::from_radices(param.radices));
  util::Rng rng(param.seed + 1);
  const FpVec data = random_vec(rng, engine.plan().size);
  EXPECT_EQ(engine.inverse(engine.forward(data)), data);
}

INSTANTIATE_TEST_SUITE_P(
    Plans, MixedRadixVsReference,
    ::testing::Values(PlanCase{{4}, 1}, PlanCase{{2, 2}, 2}, PlanCase{{4, 4}, 3},
                      PlanCase{{8, 8}, 4}, PlanCase{{16, 16}, 5}, PlanCase{{64}, 6},
                      PlanCase{{64, 4}, 7}, PlanCase{{4, 64}, 8}, PlanCase{{8, 16, 2}, 9},
                      PlanCase{{64, 16}, 10}, PlanCase{{16, 8, 8}, 11}));

TEST(MixedRadix, Paper64kPlanMatchesRadix2) {
  // The full 64K-point paper plan against the independent radix-2 engine;
  // identical roots guarantee identical spectra.
  const MixedRadixNtt mixed(NttPlan::paper_64k());
  const Radix2Ntt radix2(65536);
  util::Rng rng(2024);
  const FpVec data = random_vec(rng, 65536);
  FpVec viaRadix2 = data;
  radix2.forward(viaRadix2);
  EXPECT_EQ(mixed.forward(data), viaRadix2);
}

TEST(MixedRadix, Paper64kRoundTrip) {
  const MixedRadixNtt engine(NttPlan::paper_64k());
  util::Rng rng(2025);
  const FpVec data = random_vec(rng, 65536);
  EXPECT_EQ(engine.inverse(engine.forward(data)), data);
}

TEST(MixedRadix, EquivalentPlansGiveIdenticalSpectra) {
  util::Rng rng(77);
  const FpVec data = random_vec(rng, 4096);
  const FpVec a = MixedRadixNtt(NttPlan::pure_radix2(4096)).forward(data);
  const FpVec b = MixedRadixNtt(NttPlan::uniform(16, 4096)).forward(data);
  const FpVec c = MixedRadixNtt(NttPlan::from_radices({64, 64})).forward(data);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(MixedRadix, ShiftOnlyButterfliesInPaperPlan) {
  // Architectural core of the paper: with the aligned root hierarchy, every
  // radix-64/16 butterfly multiplication is a shift; only inter-stage
  // twiddles need generic (DSP) multipliers.
  const MixedRadixNtt engine(NttPlan::paper_64k());
  util::Rng rng(31);
  const FpVec data = random_vec(rng, 65536);
  NttOpCounts counts;
  (void)engine.forward(data, &counts);
  // Butterfly muls: N/64*64^2 twice + N/16*16^2 once = 2*64N + 16N.
  EXPECT_EQ(counts.shift_muls, 2u * 64 * 65536 + 16u * 65536);
  // Generic muls: (r-1)*M per decomposition level:
  // top level (r=16, M=4096) + 16 x (r=64, M=64).
  EXPECT_EQ(counts.generic_muls, 15u * 4096 + 16u * 63 * 64);
}

TEST(MixedRadix, Log2OfDetectsPowersOfTwo) {
  EXPECT_EQ(MixedRadixNtt::log2_of(fp::kOne), 0);
  EXPECT_EQ(MixedRadixNtt::log2_of(fp::kTwo), 1);
  EXPECT_EQ(MixedRadixNtt::log2_of(fp::kOmega64), 3);
  EXPECT_EQ(MixedRadixNtt::log2_of(fp::kTwo.pow(191)), 191);
  EXPECT_EQ(MixedRadixNtt::log2_of(Fp{12345}), -1);
}

TEST(MixedRadix, InverseRootIsStillPowerOfTwo) {
  // 8^{-1} = 2^189, so inverse-transform butterflies stay shift-only.
  EXPECT_EQ(MixedRadixNtt::log2_of(fp::kOmega64.inv()), 189);
}

TEST(Convolution, FastMatchesReference) {
  util::Rng rng(55);
  for (const std::size_t n : {2u, 8u, 64u, 256u}) {
    const FpVec a = random_vec(rng, n);
    const FpVec b = random_vec(rng, n);
    EXPECT_EQ(cyclic_convolve(a, b), cyclic_convolve_reference(a, b)) << n;
  }
}

TEST(Convolution, PlanEngineMatchesFastPath) {
  util::Rng rng(56);
  const FpVec a = random_vec(rng, 1024);
  const FpVec b = random_vec(rng, 1024);
  EXPECT_EQ(cyclic_convolve_plan(a, b, NttPlan::from_radices({64, 16})),
            cyclic_convolve(a, b));
}

TEST(Convolution, SizeMismatchChecked) {
  const FpVec a(4, fp::kZero);
  const FpVec b(8, fp::kZero);
  EXPECT_THROW(cyclic_convolve(a, b), std::logic_error);
}

}  // namespace
}  // namespace hemul::ntt
