// In-process loopback tests of the fleet transport (src/net/): a real
// ShardServer/Router listening on 127.0.0.1, driven through ShardClient.
// The multi-process variant (fork/exec of the actual daemons) lives in
// test_fleet_integration.cpp; everything here runs in one process so the
// sanitizer cells can see both sides.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "fhe/circuits.hpp"
#include "fhe/evaluator.hpp"
#include "fhe/serialize.hpp"
#include "net/client.hpp"
#include "net/router.hpp"
#include "net/server.hpp"
#include "service/service.hpp"

namespace hemul::net {
namespace {

using fhe::Ciphertext;
using fhe::DghvParams;

core::ServiceOptions ssa_options(unsigned workers, double window_ms = 0.0) {
  core::ServiceOptions options;
  options.config.backend_name = "ssa";
  options.config.num_workers = workers;
  options.admission_window_ms = window_ms;
  return options;
}

std::string loopback(int port) { return "127.0.0.1:" + std::to_string(port); }

fhe::Bytes concat(const fhe::Bytes& a, const fhe::Bytes& b) {
  fhe::Bytes out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

/// A width-2 carry-save multiply request (the fleet's canonical traffic:
/// ripple at width 2 exceeds the toy noise budget, carry-save fits).
core::Request mul_request(fhe::Dghv& scheme, u64 x, u64 y) {
  core::Request request;
  request.spec.kind = core::CircuitKind::kMul;
  request.spec.width = 2;
  request.spec.lowering.strategy = fhe::LoweringStrategy::kCarrySave;
  request.inputs = concat(fhe::encode_ciphertexts(fhe::encrypt_int(scheme, x, 2)),
                          fhe::encode_ciphertexts(fhe::encrypt_int(scheme, y, 2)));
  return request;
}

u64 decrypt_response(const fhe::Dghv& scheme, const core::Response& response) {
  const std::vector<Ciphertext> outputs = fhe::decode_ciphertexts(response.outputs);
  return fhe::decrypt_int(scheme, fhe::EncryptedInt(outputs.begin(), outputs.end()));
}

// --- placement hash ---------------------------------------------------------

TEST(NetTest, ShardPlacementHashIsDeterministicAndSpreads) {
  // Same id, same count -> same shard, always (the router restart story).
  for (u64 id = 0; id < 64; ++id) {
    for (std::size_t count : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
      const std::size_t first = Router::shard_of(id, count);
      EXPECT_EQ(first, Router::shard_of(id, count));
      EXPECT_LT(first, count);
    }
  }
  // splitmix64 mixes well enough that a handful of consecutive ids already
  // touches every shard of a small fleet.
  std::set<std::size_t> hit;
  for (u64 id = 1; id <= 16; ++id) hit.insert(Router::shard_of(id, 2));
  EXPECT_EQ(hit.size(), 2u);
}

// --- one shard over loopback ------------------------------------------------

TEST(NetTest, LoopbackShardMatchesInProcessServiceBitExactly) {
  // The same seeds and the same encrypted request bytes through both paths:
  // a ShardServer over TCP and a plain in-process Service. Keygen is
  // deterministic from (params, seed), so the two services hold identical
  // key material and must produce byte-identical response payloads.
  core::Service remote_service(ssa_options(2));
  ShardServer server(remote_service);
  ShardClient client(loopback(server.port()));

  core::Service local_service(ssa_options(2));

  const u64 key_seed = 12345;
  ShardClient::SessionKeys keys = client.create_session(DghvParams::toy(), key_seed);
  const core::SessionId local_session =
      local_service.create_session(DghvParams::toy(), key_seed);

  // The tenant rebuilds its scheme from the returned key material; it must
  // agree with the service-side context bit for bit.
  fhe::Dghv tenant(std::move(keys.public_key), std::move(keys.secret_key), 777);
  EXPECT_EQ(fhe::encode_public_key(tenant.public_key()),
            local_service.public_key_bytes(local_session));

  for (const auto& [x, y] : std::vector<std::pair<u64, u64>>{{3, 2}, {1, 3}, {2, 2}}) {
    const core::Request request = mul_request(tenant, x, y);
    const fhe::Bytes wire = core::encode_request(request);

    const core::Response remote = client.submit(keys.session, request).get();
    const core::Response local =
        local_service.submit(local_session, core::decode_request(wire)).get();

    ASSERT_TRUE(remote.ok()) << remote.error;
    ASSERT_TRUE(local.ok()) << local.error;
    EXPECT_EQ(remote.outputs, local.outputs) << "x=" << x << " y=" << y;
    EXPECT_EQ(decrypt_response(tenant, remote), x * y);
    EXPECT_EQ(remote.and_gates, local.and_gates);
    EXPECT_EQ(remote.levels, local.levels);
  }

  const FleetStats stats = client.stats();
  ASSERT_EQ(stats.shards.size(), 1u);
  EXPECT_EQ(stats.shards[0].service.completed, 3u);
}

TEST(NetTest, DrainingShardRefusesNewSessionsCleanly) {
  core::Service service(ssa_options(1));
  ShardServer server(service);
  ShardClient client(loopback(server.port()));

  const ShardClient::SessionKeys keys = client.create_session(DghvParams::toy(), 5);
  service.stop_accepting();

  // New tenants are turned away with the typed error...
  EXPECT_THROW((void)client.create_session(DghvParams::toy(), 6), core::ShuttingDown);

  // ...and submits on existing sessions complete immediately as
  // kUnavailable rather than hanging or tearing the connection down.
  fhe::Dghv tenant(DghvParams::toy(), 5);
  const core::Response response = client.submit(keys.session, mul_request(tenant, 2, 3)).get();
  EXPECT_EQ(response.status, core::ResponseStatus::kUnavailable);

  // The connection itself is still healthy: stats still answers.
  EXPECT_EQ(client.stats().shards.size(), 1u);
}

TEST(NetTest, OverloadSheddingIsBoundedAndObservableOverTheWire) {
  // One worker, a bounded queue of 1 and a long admission window: the
  // first pipelined submit occupies the queue slot, every later one must
  // be shed with kOverloaded + a retry hint before the window closes.
  core::ServiceOptions options = ssa_options(1, /*window_ms=*/200.0);
  options.max_queue_depth = 1;
  core::Service service(options);
  ShardServer server(service);
  ShardClient client(loopback(server.port()));

  ShardClient::SessionKeys keys = client.create_session(DghvParams::toy(), 9);
  fhe::Dghv tenant(std::move(keys.public_key), std::move(keys.secret_key), 99);

  constexpr int kPipelined = 6;
  std::vector<std::future<core::Response>> futures;
  futures.reserve(kPipelined);
  for (int i = 0; i < kPipelined; ++i) {
    futures.push_back(client.submit(keys.session, mul_request(tenant, 3, 2)));
  }

  int ok = 0, shed = 0;
  for (auto& future : futures) {
    const core::Response response = future.get();  // every future completes
    if (response.ok()) {
      ++ok;
      EXPECT_EQ(decrypt_response(tenant, response), 6u);
    } else {
      ASSERT_EQ(response.status, core::ResponseStatus::kOverloaded) << response.error;
      EXPECT_GT(response.retry_after_ms, 0.0);
      ++shed;
    }
  }
  EXPECT_EQ(ok, 1) << "exactly the queued request executes";
  EXPECT_EQ(shed, kPipelined - 1);

  const core::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed, static_cast<u64>(shed));
  EXPECT_LE(stats.queue_depth, 1u);  // the bound held
  EXPECT_EQ(client.stats().shards[0].service.shed, static_cast<u64>(shed));
}

TEST(NetTest, LruEvictionDropsIdleSessionsOverTheWire) {
  core::ServiceOptions options = ssa_options(1);
  options.max_sessions = 2;
  core::Service service(options);
  ShardServer server(service);
  ShardClient client(loopback(server.port()));

  const ShardClient::SessionKeys first = client.create_session(DghvParams::toy(), 1);
  (void)client.create_session(DghvParams::toy(), 2);
  (void)client.create_session(DghvParams::toy(), 3);  // evicts the idle first

  EXPECT_EQ(service.stats().sessions_evicted, 1u);
  EXPECT_EQ(service.stats().sessions, 2u);

  // The evicted tenant's submits now fail as an unknown session -- a clean
  // kBadRequest status, not a hang or a dropped connection.
  fhe::Dghv tenant(DghvParams::toy(), 1);
  const core::Response response =
      client.submit(first.session, mul_request(tenant, 1, 2)).get();
  EXPECT_EQ(response.status, core::ResponseStatus::kBadRequest);
}

TEST(NetTest, ConnectionLossFailsOnlyThatConnectionsRequests) {
  core::Service service(ssa_options(1, /*window_ms=*/100.0));
  ShardServer server(service);

  auto doomed = std::make_unique<ShardClient>(loopback(server.port()));
  ShardClient survivor(loopback(server.port()));

  ShardClient::SessionKeys doomed_keys = doomed->create_session(DghvParams::toy(), 21);
  ShardClient::SessionKeys keys = survivor.create_session(DghvParams::toy(), 22);
  fhe::Dghv doomed_tenant(std::move(doomed_keys.public_key),
                          std::move(doomed_keys.secret_key), 5);
  fhe::Dghv tenant(std::move(keys.public_key), std::move(keys.secret_key), 6);

  // Leave one request in flight on the doomed connection, then cut it.
  std::future<core::Response> orphan =
      doomed->submit(doomed_keys.session, mul_request(doomed_tenant, 2, 3));
  doomed->close();
  const core::Response lost = orphan.get();  // fails cleanly, never hangs
  EXPECT_EQ(lost.status, core::ResponseStatus::kUnavailable);
  EXPECT_FALSE(doomed->alive());

  // The other connection (and the service behind it) is untouched.
  const core::Response response =
      survivor.submit(keys.session, mul_request(tenant, 3, 3)).get();
  ASSERT_TRUE(response.ok()) << response.error;
  EXPECT_EQ(decrypt_response(tenant, response), 9u);
}

TEST(NetTest, UnknownSessionsAndUnsupportedTypesYieldTypedErrors) {
  core::Service service(ssa_options(1));
  ShardServer server(service);
  ShardClient client(loopback(server.port()));

  fhe::Dghv tenant(DghvParams::toy(), 4);
  const core::Response response =
      client.submit(/*session=*/424242, mul_request(tenant, 1, 1)).get();
  EXPECT_EQ(response.status, core::ResponseStatus::kBadRequest);

  // A message type no shard serves comes back as kError/kUnsupported
  // instead of closing the connection.
  const fhe::Envelope reply = client.call(fhe::MessageType::kSessionCreated, 0, {});
  ASSERT_EQ(reply.type, fhe::MessageType::kError);
  const auto [code, message] = fhe::decode_error_payload(reply.payload);
  EXPECT_EQ(code, fhe::WireErrorCode::kUnsupported);
  EXPECT_FALSE(message.empty());
}

// --- router in front of two shards ------------------------------------------

TEST(NetTest, RouterPlacesSessionsForwardsAndAggregatesStats) {
  core::Service service_a(ssa_options(1));
  core::Service service_b(ssa_options(1));
  ShardServer shard_a(service_a);
  ShardServer shard_b(service_b);

  Router router({loopback(shard_a.port()), loopback(shard_b.port())});
  ShardClient client(loopback(router.port()));

  // Enough tenants that splitmix64 places some on each shard; the router
  // assigns global ids 1, 2, 3, ... so the expected placement is computable.
  constexpr int kTenants = 4;
  std::size_t expected_on[2] = {0, 0};
  int verified = 0;
  for (int t = 0; t < kTenants; ++t) {
    ShardClient::SessionKeys keys =
        client.create_session(DghvParams::toy(), 1000 + static_cast<u64>(t));
    ++expected_on[Router::shard_of(keys.session, 2)];
    fhe::Dghv tenant(std::move(keys.public_key), std::move(keys.secret_key),
                     2000 + static_cast<u64>(t));
    const u64 x = static_cast<u64>(t) % 4, y = (static_cast<u64>(t) * 3 + 1) % 4;
    const core::Response response = client.submit(keys.session, mul_request(tenant, x, y)).get();
    ASSERT_TRUE(response.ok()) << response.error;
    EXPECT_EQ(decrypt_response(tenant, response), x * y);
    ++verified;
  }
  EXPECT_EQ(verified, kTenants);

  const FleetStats fleet = client.stats();
  ASSERT_EQ(fleet.shards.size(), 2u);
  EXPECT_TRUE(fleet.shards[0].alive);
  EXPECT_TRUE(fleet.shards[1].alive);
  EXPECT_EQ(fleet.sessions_created, static_cast<u64>(kTenants));
  EXPECT_EQ(fleet.forwarded, static_cast<u64>(kTenants));
  EXPECT_EQ(fleet.failed, 0u);
  // The sessions really landed where shard_of says they do.
  EXPECT_EQ(fleet.shards[0].service.sessions, expected_on[0]);
  EXPECT_EQ(fleet.shards[1].service.sessions, expected_on[1]);
  EXPECT_EQ(fleet.aggregate().completed, static_cast<u64>(kTenants));
}

TEST(NetTest, DeadShardSessionsRehomeOntoLiveShards) {
  core::Service service_a(ssa_options(1));
  auto service_b = std::make_unique<core::Service>(ssa_options(1));
  ShardServer shard_a(service_a);
  auto shard_b = std::make_unique<ShardServer>(*service_b);
  const int port_b = shard_b->port();

  Router router({loopback(shard_a.port()), loopback(port_b)});
  ShardClient client(loopback(router.port()));

  // Create sessions until both shards hold at least one tenant.
  std::vector<ShardClient::SessionKeys> on_a, on_b;
  std::vector<fhe::Dghv> tenants_a, tenants_b;
  u64 seed = 0;
  while (on_a.empty() || on_b.empty()) {
    ShardClient::SessionKeys keys = client.create_session(DghvParams::toy(), 3000 + seed);
    fhe::Dghv tenant(std::move(keys.public_key), std::move(keys.secret_key), 4000 + seed);
    ++seed;
    if (Router::shard_of(keys.session, 2) == 0) {
      on_a.push_back(std::move(keys));
      tenants_a.push_back(std::move(tenant));
    } else {
      on_b.push_back(std::move(keys));
      tenants_b.push_back(std::move(tenant));
    }
    ASSERT_LT(seed, 64u) << "splitmix64 should spread a few ids over 2 shards";
  }

  // Kill shard B outright (server first, then its service).
  shard_b->stop();
  shard_b.reset();
  service_b.reset();

  // Shard B's sessions re-home: the router replays the recorded seeded
  // create on shard A, so the tenant's keys still decrypt the answers
  // bit-exactly. The very first request after the kill may race the
  // connection-loss detection and fail once with kUnavailable (ambiguous
  // mid-flight loss is never replayed) -- the next one must succeed.
  core::Response rehomed =
      client.submit(on_b[0].session, mul_request(tenants_b[0], 1, 2)).get();
  if (rehomed.status == core::ResponseStatus::kUnavailable) {
    rehomed = client.submit(on_b[0].session, mul_request(tenants_b[0], 1, 2)).get();
  }
  ASSERT_TRUE(rehomed.ok()) << rehomed.error;
  EXPECT_EQ(decrypt_response(tenants_b[0], rehomed), 2u);

  // Shard A's own sessions were never disturbed.
  const core::Response alive =
      client.submit(on_a[0].session, mul_request(tenants_a[0], 2, 3)).get();
  ASSERT_TRUE(alive.ok()) << alive.error;
  EXPECT_EQ(decrypt_response(tenants_a[0], alive), 6u);

  // Drive the health state machine once by hand (this router has no probe
  // thread): the dead connection demotes shard B straight to kDead.
  router.probe_once();

  // The stats reply calls the dead shard out and counts the re-homing.
  const FleetStats fleet = client.stats();
  ASSERT_EQ(fleet.shards.size(), 2u);
  EXPECT_TRUE(fleet.shards[0].alive);
  EXPECT_EQ(fleet.shards[0].state, ShardState::kAlive);
  EXPECT_FALSE(fleet.shards[1].alive);
  EXPECT_EQ(fleet.shards[1].state, ShardState::kDead);
  EXPECT_GE(fleet.sessions_rehomed, 1u);

  // New sessions always land on a live shard now: the placement walk skips
  // dead shards instead of refusing the tenant.
  for (int attempt = 0; attempt < 8; ++attempt) {
    ShardClient::SessionKeys keys = client.create_session(DghvParams::toy(), 5000 + attempt);
    fhe::Dghv tenant(std::move(keys.public_key), std::move(keys.secret_key), 6000 + attempt);
    const core::Response fresh =
        client.submit(keys.session, mul_request(tenant, 3, 3)).get();
    ASSERT_TRUE(fresh.ok()) << fresh.error;
    EXPECT_EQ(decrypt_response(tenant, fresh), 9u);
  }
}

// The probe loop's full arc: alive -> dead on connection loss, then
// kReconnecting -> kAlive with an incarnation bump once the shard is back,
// and the bump forces sessions pinned to the old incarnation to re-home.
TEST(NetTest, ProbeLoopRedialsRestartedShardAndRehomesItsSessions) {
  core::Service service_a(ssa_options(1));
  auto service_b = std::make_unique<core::Service>(ssa_options(1));
  ShardServer shard_a(service_a);
  auto shard_b = std::make_unique<ShardServer>(*service_b);
  const int port_b = shard_b->port();

  Router router({loopback(shard_a.port()), loopback(port_b)});
  ShardClient client(loopback(router.port()));

  // Find a session that lands on shard B.
  u64 seed = 0;
  std::optional<ShardClient::SessionKeys> victim;
  std::optional<fhe::Dghv> tenant;
  while (!victim) {
    ShardClient::SessionKeys keys = client.create_session(DghvParams::toy(), 7000 + seed);
    if (Router::shard_of(keys.session, 2) == 1) {
      tenant.emplace(std::move(keys.public_key), std::move(keys.secret_key), 8000 + seed);
      victim = std::move(keys);
    }
    ++seed;
    ASSERT_LT(seed, 64u);
  }

  // Restart shard B on the same port with a FRESH service: the old session
  // table is gone, exactly like a crashed-and-respawned daemon.
  shard_b->stop();
  shard_b.reset();
  service_b.reset();
  router.probe_once();  // sees the dead connection -> kDead
  {
    const FleetStats fleet = client.stats();
    EXPECT_EQ(fleet.shards[1].state, ShardState::kDead);
  }

  service_b = std::make_unique<core::Service>(ssa_options(1));
  {
    ShardServer::Options reopen;
    reopen.port = port_b;
    shard_b = std::make_unique<ShardServer>(*service_b, std::move(reopen));
  }
  router.probe_once();  // kDead -> redial -> kAlive, incarnation bumped
  {
    const FleetStats fleet = client.stats();
    EXPECT_TRUE(fleet.shards[1].alive);
    EXPECT_EQ(fleet.shards[1].state, ShardState::kAlive);
    EXPECT_GE(fleet.probes_sent, 1u);
  }

  // The victim's placement points at the old incarnation, so its next
  // request replays the seeded create (possibly onto the restarted shard
  // itself) and still answers bit-exactly.
  const core::Response response =
      client.submit(victim->session, mul_request(*tenant, 2, 2)).get();
  ASSERT_TRUE(response.ok()) << response.error;
  EXPECT_EQ(decrypt_response(*tenant, response), 4u);
  const FleetStats fleet = client.stats();
  EXPECT_GE(fleet.sessions_rehomed, 1u);
}

// --- FleetStats codec --------------------------------------------------------

TEST(NetTest, FleetStatsRoundTripAndTruncationFuzz) {
  FleetStats fleet;
  fleet.sessions_created = 5;
  fleet.forwarded = 17;
  fleet.failed = 2;
  fleet.sessions_rehomed = 3;
  fleet.retries = 11;
  fleet.probes_sent = 29;
  ShardStats shard;
  shard.address = "127.0.0.1:4242";
  shard.alive = false;
  shard.state = ShardState::kDead;
  shard.service.submitted = 9;
  shard.service.completed = 7;
  shard.service.shed = 1;
  shard.service.sessions_evicted = 1;
  shard.service.coalesced_requests = 6;
  shard.service.batches_submitted = 2;
  shard.service.transforms_avoided = -3;
  fleet.shards.push_back(shard);
  shard.alive = true;
  shard.state = ShardState::kSuspect;
  fleet.shards.push_back(shard);

  const fhe::Bytes wire = encode_fleet_stats(fleet);
  const FleetStats back = decode_fleet_stats(wire);
  ASSERT_EQ(back.shards.size(), 2u);
  EXPECT_EQ(back.sessions_created, fleet.sessions_created);
  EXPECT_EQ(back.forwarded, fleet.forwarded);
  EXPECT_EQ(back.failed, fleet.failed);
  EXPECT_EQ(back.sessions_rehomed, 3u);
  EXPECT_EQ(back.retries, 11u);
  EXPECT_EQ(back.probes_sent, 29u);
  EXPECT_EQ(back.shards[0].address, "127.0.0.1:4242");
  EXPECT_FALSE(back.shards[0].alive);
  EXPECT_EQ(back.shards[0].state, ShardState::kDead);
  EXPECT_TRUE(back.shards[1].alive);
  EXPECT_EQ(back.shards[1].state, ShardState::kSuspect);
  EXPECT_EQ(back.shards[0].service.completed, 7u);
  EXPECT_EQ(back.shards[0].service.transforms_avoided, -3);
  EXPECT_EQ(back.aggregate().submitted, 18u);
  EXPECT_EQ(back.aggregate().coalesced_requests, 12u);

  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_THROW((void)decode_fleet_stats(std::span<const u8>(wire.data(), len)),
                 fhe::SerializeError)
        << "truncated to " << len << " of " << wire.size();
  }
  fhe::Bytes trailing = wire;
  trailing.push_back(0);
  EXPECT_THROW((void)decode_fleet_stats(trailing), fhe::SerializeError);
}

}  // namespace
}  // namespace hemul::net
