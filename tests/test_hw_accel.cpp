#include <gtest/gtest.h>

#include "bigint/mul.hpp"
#include "hw/accel/accelerator.hpp"
#include "ntt/mixed_radix.hpp"
#include "ssa/multiply.hpp"
#include "ssa/pack.hpp"
#include "util/rng.hpp"

namespace hemul::hw {
namespace {

using bigint::BigUInt;
using fp::Fp;
using fp::FpVec;

FpVec random_vec(util::Rng& rng, std::size_t n) {
  FpVec v(n);
  for (auto& x : v) x = Fp{rng.next()};
  return v;
}

// ---------------------------------------------------------------------------
// Distributed NTT: functional equivalence.
// ---------------------------------------------------------------------------

struct DistCase {
  std::vector<u32> radices;
  unsigned pes;
};

class DistributedVsSoftware : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributedVsSoftware, ForwardMatchesMixedRadix) {
  const auto& param = GetParam();
  DistributedNttConfig config;
  config.plan = ntt::NttPlan::from_radices(param.radices);
  config.num_pes = param.pes;
  DistributedNtt engine(config);
  const ntt::MixedRadixNtt software(config.plan);

  util::Rng rng(param.pes * 100 + param.radices[0]);
  const FpVec data = random_vec(rng, config.plan.size);
  NttRunReport report;
  EXPECT_EQ(engine.forward(data, &report), software.forward(data));
  EXPECT_TRUE(report.exchanges_single_partner);
  EXPECT_EQ(report.memory_conflict_cycles, 0u);
}

TEST_P(DistributedVsSoftware, InverseRoundTrips) {
  const auto& param = GetParam();
  DistributedNttConfig config;
  config.plan = ntt::NttPlan::from_radices(param.radices);
  config.num_pes = param.pes;
  DistributedNtt engine(config);

  util::Rng rng(param.pes * 100 + 7);
  const FpVec data = random_vec(rng, config.plan.size);
  EXPECT_EQ(engine.inverse(engine.forward(data)), data);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DistributedVsSoftware,
    ::testing::Values(DistCase{{16, 16}, 1}, DistCase{{16, 16}, 2},
                      DistCase{{64, 16}, 2}, DistCase{{64, 64}, 2},
                      DistCase{{16, 16, 16}, 4}, DistCase{{64, 64, 16}, 1},
                      DistCase{{64, 64, 16}, 2}, DistCase{{64, 64, 16}, 4},
                      DistCase{{16, 16, 16, 16}, 8}));

TEST(DistributedNtt, Paper64kConfigBitExact) {
  DistributedNtt engine(DistributedNttConfig{});  // 4 PEs, 64*64*16
  const ntt::MixedRadixNtt software(ntt::NttPlan::paper_64k());
  util::Rng rng(42);
  const FpVec data = random_vec(rng, 65536);
  EXPECT_EQ(engine.forward(data), software.forward(data));
}

TEST(DistributedNtt, PaperCycleModel) {
  // Section V: T_FFT = 2*(8*1024)/4 + 2*4096/4 = 6144 cycles = 30.72 us.
  DistributedNtt engine(DistributedNttConfig{});
  util::Rng rng(43);
  NttRunReport report;
  (void)engine.forward(random_vec(rng, 65536), &report);

  ASSERT_EQ(report.stages.size(), 3u);
  EXPECT_EQ(report.stages[0].compute_cycles, 2048u);  // 256 FFT-64 x 8
  EXPECT_EQ(report.stages[1].compute_cycles, 2048u);
  EXPECT_EQ(report.stages[2].compute_cycles, 2048u);  // 1024 FFT-16 x 2
  EXPECT_EQ(report.total_cycles, 6144u);
  EXPECT_EQ(report.schedule, "C0 X0 C1 X1 C2");

  // Each exchange moves half of each PE's 16K words: 4 x 8K = 32K total,
  // hidden behind the next compute stage (1024 < 2048 cycles).
  EXPECT_EQ(report.stages[0].exchange_words, 32768u);
  EXPECT_EQ(report.stages[0].exchange_cycles, 1024u);
  EXPECT_EQ(report.total_cycles_no_overlap, 6144u + 2048u);
}

TEST(DistributedNtt, ExchangeDimensionsDistinct) {
  DistributedNtt engine(DistributedNttConfig{});
  util::Rng rng(44);
  NttRunReport report;
  (void)engine.forward(random_vec(rng, 65536), &report);
  EXPECT_NE(report.stages[0].exchange_dim, report.stages[1].exchange_dim);
  EXPECT_TRUE(report.exchanges_single_partner);
}

TEST(DistributedNtt, SingleNodeHasNoExchanges) {
  DistributedNttConfig config;
  config.num_pes = 1;
  DistributedNtt engine(config);
  util::Rng rng(45);
  NttRunReport report;
  (void)engine.forward(random_vec(rng, 65536), &report);
  EXPECT_EQ(report.exchange_total_words, 0u);
  // All compute serializes on one PE: 4x the paper's per-stage cycles.
  EXPECT_EQ(report.total_cycles, 4u * 6144);
}

TEST(DistributedNtt, ScheduleLegalityEnforced) {
  DistributedNttConfig config;
  config.num_pes = 8;  // d=3 but l=3: illegal per the paper's l > d rule
  EXPECT_THROW(DistributedNtt{config}, std::invalid_argument);
}

TEST(DistributedNtt, RejectsUnsupportedRadices) {
  DistributedNttConfig config;
  config.plan = ntt::NttPlan::pure_radix2(65536);
  EXPECT_THROW(DistributedNtt{config}, std::invalid_argument);
}

TEST(DistributedNtt, FuzzRandomPlansAndPeCounts) {
  // Random hardware-implementable plans (radices in {8,16,32,64}, size up
  // to 32K) with random legal PE counts: the distributed engine must stay
  // bit-exact against the software mixed-radix engine and keep all its
  // structural invariants.
  util::Rng rng(0xF0221E);
  const u32 radix_choices[] = {8, 16, 32, 64};
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<u32> radices;
    u64 size = 1;
    const unsigned stages = 2 + static_cast<unsigned>(rng.below(2));  // 2..3
    for (unsigned s = 0; s < stages; ++s) {
      const u32 r = radix_choices[rng.below(4)];
      radices.push_back(r);
      size *= r;
    }
    if (size > 32768) continue;

    DistributedNttConfig config;
    config.plan = ntt::NttPlan::from_radices(radices);
    const unsigned max_p = 1u << (stages - 1);
    unsigned pes = 1u << rng.below(3);
    while (pes > max_p || config.plan.size / config.plan.radices[0] % pes != 0) pes /= 2;
    config.num_pes = std::max(1u, pes);

    DistributedNtt engine(config);
    const ntt::MixedRadixNtt software(config.plan);
    FpVec data = random_vec(rng, config.plan.size);
    NttRunReport report;
    EXPECT_EQ(engine.forward(data, &report), software.forward(data))
        << "plan " << config.plan.describe() << " P=" << config.num_pes;
    EXPECT_TRUE(report.exchanges_single_partner);
    EXPECT_EQ(report.memory_conflict_cycles, 0u);
    EXPECT_EQ(engine.inverse(engine.forward(data)), data);
  }
}

TEST(DistributedNtt, LinearityThroughTheFullMachine) {
  DistributedNtt engine(DistributedNttConfig{});
  util::Rng rng(0x11AE);
  const FpVec a = random_vec(rng, 65536);
  const FpVec b = random_vec(rng, 65536);
  FpVec ab(65536);
  for (std::size_t i = 0; i < ab.size(); ++i) ab[i] = a[i] + b[i];
  const FpVec fa = engine.forward(a);
  const FpVec fb = engine.forward(b);
  const FpVec fab = engine.forward(ab);
  for (std::size_t i = 0; i < ab.size(); ++i) EXPECT_EQ(fab[i], fa[i] + fb[i]);
}

TEST(DistributedNtt, BaselineUnitProducesSameSpectra) {
  DistributedNttConfig opt_config;
  DistributedNttConfig base_config;
  base_config.unit = FftUnitKind::kBaseline;
  DistributedNtt opt(opt_config);
  DistributedNtt base(base_config);
  util::Rng rng(46);
  const FpVec data = random_vec(rng, 65536);
  EXPECT_EQ(opt.forward(data), base.forward(data));
}

TEST(DistributedNtt, Figure2DataDistribution) {
  // The paper's Fig. 2 for the 64*64*16 plan on 4 PEs: stage 1 over n3
  // (keyed on untransformed n2/n1 bits), exchange to k3, stage 2 over n2,
  // exchange to k2, stage 3 over n1.
  DistributedNtt engine(DistributedNttConfig{});
  const std::string fig2 = engine.describe_distribution();
  EXPECT_NE(fig2.find("C0: radix-64 FFTs over n3"), std::string::npos) << fig2;
  EXPECT_NE(fig2.find("C1: radix-64 FFTs over n2"), std::string::npos);
  EXPECT_NE(fig2.find("C2: radix-16 FFTs over n1"), std::string::npos);
  EXPECT_NE(fig2.find("n2[5] -> k3[5]"), std::string::npos);
  EXPECT_NE(fig2.find("n1[3] -> k2[5]"), std::string::npos);
  // Two exchanges, along distinct dimensions.
  EXPECT_NE(fig2.find("X0"), std::string::npos);
  EXPECT_NE(fig2.find("X1"), std::string::npos);
}

TEST(DistributedNtt, KeyScheduleNeverTouchesActiveDigit) {
  // The structural invariant behind stage locality, for several configs.
  for (const unsigned pes : {1u, 2u, 4u}) {
    DistributedNttConfig config;
    config.num_pes = pes;
    DistributedNtt engine(config);
    const auto schedule = engine.key_schedule();
    for (unsigned s = 0; s < schedule.size(); ++s) {
      for (const auto& bit : schedule[s]) {
        EXPECT_NE(bit.stage_var, s) << "P=" << pes << " stage " << s;
      }
    }
  }
}

TEST(DistributedNtt, TwiddleProductsAccounted) {
  DistributedNtt engine(DistributedNttConfig{});
  util::Rng rng(47);
  NttRunReport report;
  (void)engine.forward(random_vec(rng, 65536), &report);
  // Twiddles applied to every output of stages 0 and 1: 2 x 65536.
  EXPECT_EQ(report.twiddle_products, 2u * 65536);
}

// ---------------------------------------------------------------------------
// Pointwise + carry recovery units.
// ---------------------------------------------------------------------------

TEST(PointwiseUnit, ProductAndCycleModel) {
  PointwiseUnit unit(32);
  util::Rng rng(48);
  const FpVec a = random_vec(rng, 65536);
  const FpVec b = random_vec(rng, 65536);
  PointwiseUnit::Report report;
  const FpVec c = unit.multiply(a, b, &report);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(c[i], a[i] * b[i]);
  // Section V: T_DOTPROD = 65536/32 = 2048 cycles = 10.24 us.
  EXPECT_EQ(report.cycles, 2048u);
  EXPECT_EQ(report.products, 65536u);
  EXPECT_EQ(unit.dsp_blocks(), 256u);
}

TEST(PointwiseUnit, Validation) {
  EXPECT_THROW(PointwiseUnit(0), std::invalid_argument);
  PointwiseUnit unit(4);
  const FpVec a(8, fp::kOne);
  const FpVec b(4, fp::kOne);
  EXPECT_THROW(unit.multiply(a, b), std::logic_error);
}

TEST(CarryRecoveryUnit, MatchesSoftwareAndCycleModel) {
  CarryRecoveryUnit unit(16);
  util::Rng rng(49);
  FpVec coeffs(65536);
  for (auto& c : coeffs) c = Fp::from_canonical(rng.below(1ULL << 48));
  CarryRecoveryUnit::Report report;
  const BigUInt result = unit.recover(coeffs, 24, &report);
  EXPECT_EQ(result, ssa::carry_recover(coeffs, 24));
  // Section V: ~20 us at 200 MHz = 4096 cycles.
  EXPECT_EQ(report.cycles, 4096u);
}

// ---------------------------------------------------------------------------
// Full accelerator.
// ---------------------------------------------------------------------------

TEST(HwAccelerator, PaperMultiplicationBitExact) {
  HwAccelerator accel(AcceleratorConfig::paper());
  util::Rng rng(50);
  const BigUInt a = BigUInt::random_bits(rng, 786432);
  const BigUInt b = BigUInt::random_bits(rng, 786432);
  MultiplyReport report;
  const BigUInt product = accel.multiply(a, b, &report);
  EXPECT_EQ(product, ssa::multiply(a, b, ssa::SsaParams::paper()));

  // Section V timing: 3 FFTs + dot product + carry = 122.88 us.
  EXPECT_EQ(report.forward_a.total_cycles, 6144u);
  EXPECT_EQ(report.fft_cycles, 3u * 6144);
  EXPECT_EQ(report.pointwise.cycles, 2048u);
  EXPECT_EQ(report.carry.cycles, 4096u);
  EXPECT_EQ(report.total_cycles, 24576u);
  EXPECT_NEAR(report.total_time_us(), 122.88, 0.01);
  EXPECT_NEAR(report.fft_time_us(), 30.72, 0.01);
}

TEST(HwAccelerator, SquaringFastPath) {
  // Squaring reuses the single forward spectrum: 2 transforms instead of 3,
  // 92.16 us instead of 122.88 us at the paper's operating point.
  HwAccelerator accel(AcceleratorConfig::paper());
  util::Rng rng(53);
  const BigUInt a = BigUInt::random_bits(rng, 400000);
  MultiplyReport report;
  const BigUInt sq = accel.square(a, &report);
  EXPECT_EQ(sq, bigint::mul_karatsuba(a, a));
  EXPECT_EQ(report.fft_cycles, 2u * 6144);
  EXPECT_EQ(report.total_cycles, 2u * 6144 + 2048 + 4096);
  EXPECT_NEAR(report.total_time_us(), 92.16, 0.01);
}

TEST(HwAccelerator, SquareMatchesMultiplyBySelf) {
  HwAccelerator accel(AcceleratorConfig::paper());
  util::Rng rng(54);
  const BigUInt a = BigUInt::random_bits(rng, 10000);
  EXPECT_EQ(accel.square(a), accel.multiply(a, a));
}

TEST(HwAccelerator, SmallOperandsAndEdgeCases) {
  HwAccelerator accel(AcceleratorConfig::paper());
  util::Rng rng(51);
  const BigUInt a = BigUInt::random_bits(rng, 1000);
  const BigUInt b = BigUInt::random_bits(rng, 500);
  EXPECT_EQ(accel.multiply(a, b), bigint::mul_schoolbook(a, b));
  EXPECT_EQ(accel.multiply(BigUInt{}, a), BigUInt{});
  EXPECT_EQ(accel.multiply(BigUInt{1}, a), a);
}

TEST(HwAccelerator, NttAccessRoundTrip) {
  HwAccelerator accel(AcceleratorConfig::paper());
  util::Rng rng(52);
  const FpVec data = random_vec(rng, 65536);
  EXPECT_EQ(accel.ntt_inverse(accel.ntt_forward(data)), data);
}

TEST(HwAccelerator, ConfigMismatchRejected) {
  AcceleratorConfig config = AcceleratorConfig::paper();
  config.ssa = ssa::SsaParams::for_bits(1000);  // transform size != plan size
  EXPECT_THROW(HwAccelerator{config}, std::logic_error);
}

}  // namespace
}  // namespace hemul::hw
