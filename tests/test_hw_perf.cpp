#include <gtest/gtest.h>

#include "hw/perf/literature.hpp"
#include "hw/perf/perf_model.hpp"

namespace hemul::hw {
namespace {

TEST(PerfModel, PaperFftFormula) {
  // T_FFT = 2*(T_C*8*1024)/P + (T_C*2)*4096/P = 20480 + 10240 ns = 30.72 us.
  const PerfBreakdown b = evaluate_perf(PerfParams::paper());
  ASSERT_EQ(b.stage_cycles.size(), 3u);
  EXPECT_EQ(b.stage_cycles[0], 2048u);
  EXPECT_EQ(b.stage_cycles[1], 2048u);
  EXPECT_EQ(b.stage_cycles[2], 2048u);
  EXPECT_EQ(b.fft_cycles, 6144u);
  EXPECT_NEAR(b.fft_us(), 30.72, 1e-9);
}

TEST(PerfModel, PaperDotProdAndCarry) {
  const PerfBreakdown b = evaluate_perf(PerfParams::paper());
  EXPECT_NEAR(b.dotprod_us(), 10.24, 1e-9);  // T_C * 65536/32
  EXPECT_NEAR(b.carry_us(), 20.48, 1e-9);    // "approximately 20 us"
}

TEST(PerfModel, PaperFullMultiplication) {
  // 3 FFTs + dot product + carry recovery ~ 122 us.
  const PerfBreakdown b = evaluate_perf(PerfParams::paper());
  EXPECT_EQ(b.mult_cycles, 3u * 6144 + 2048 + 4096);
  EXPECT_NEAR(b.mult_us(), 122.88, 1e-9);
}

TEST(PerfModel, MatchesPaperReportedValues) {
  const PerfBreakdown b = evaluate_perf(PerfParams::paper());
  const PaperResults paper = paper_results();
  // The paper rounds 30.72 -> 30.7 and 122.88 -> 122.
  EXPECT_NEAR(b.fft_us(), paper.fft_us, 0.1);
  EXPECT_NEAR(b.mult_us(), paper.mult_us, 1.0);
  EXPECT_NEAR(b.dotprod_us(), paper.dotprod_us, 0.1);
  EXPECT_NEAR(b.carry_us(), paper.carry_us, 0.5);
}

TEST(PerfModel, FftScalesInverselyWithPes) {
  for (const unsigned p : {1u, 2u, 4u}) {
    PerfParams params = PerfParams::paper();
    params.num_pes = p;
    const PerfBreakdown b = evaluate_perf(params);
    EXPECT_EQ(b.fft_cycles, 24576u / p) << p;
  }
}

TEST(PerfModel, ClockScaling) {
  PerfParams slow = PerfParams::paper();
  slow.clock_ns = 10.0;  // 100 MHz
  EXPECT_NEAR(evaluate_perf(slow).fft_us(), 61.44, 1e-9);
}

TEST(PerfModel, DotProdScalesWithMultipliers) {
  PerfParams params = PerfParams::paper();
  params.pointwise_multipliers = 64;
  EXPECT_NEAR(evaluate_perf(params).dotprod_us(), 5.12, 1e-9);
  params.pointwise_multipliers = 8;
  EXPECT_NEAR(evaluate_perf(params).dotprod_us(), 40.96, 1e-9);
}

TEST(PerfModel, AlternativePlans) {
  // A 4-stage uniform radix-16 plan legalizes P=8: cycles per stage =
  // (65536/16)/8 * 2 = 1024, fft = 4096 cycles -- but needs 4 stages.
  PerfParams params;
  params.plan = ntt::NttPlan::uniform(16, 65536);
  params.num_pes = 8;
  const PerfBreakdown b = evaluate_perf(params);
  EXPECT_EQ(b.stage_cycles.size(), 4u);
  EXPECT_EQ(b.fft_cycles, 4u * 1024);
}

TEST(PerfModel, LegalPeBound) {
  EXPECT_EQ(max_legal_pes(ntt::NttPlan::paper_64k()), 4u);
  EXPECT_EQ(max_legal_pes(ntt::NttPlan::uniform(16, 65536)), 8u);
  EXPECT_EQ(max_legal_pes(ntt::NttPlan::pure_radix2(65536)), 32768u);
}

TEST(PerfModel, StreamingThroughputExtension) {
  // Extension beyond the paper's single-shot latency: streamed products
  // pipeline across the FFT engine (3 transforms + the dot product, which
  // shares the PE multipliers) and the carry-recovery adder.
  const PerfBreakdown b = evaluate_perf(PerfParams::paper());
  EXPECT_EQ(b.pipelined_interval_cycles, 3u * 6144 + 2048);
  // 200 MHz / 20480 cycles ~ 9766 multiplications per second sustained.
  EXPECT_NEAR(b.mults_per_second(), 9765.6, 0.1);
  // Streaming beats back-to-back single-shot latency.
  EXPECT_LT(b.pipelined_interval_cycles, b.mult_cycles);
}

TEST(Literature, TableTwoConstants) {
  const auto& table = literature_table();
  ASSERT_EQ(table.size(), 4u);
  EXPECT_EQ(table[0].label, "[28]");
  EXPECT_DOUBLE_EQ(*table[0].fft_us, 125.0);
  EXPECT_DOUBLE_EQ(*table[0].mult_us, 405.0);
  EXPECT_FALSE(table[1].fft_us.has_value());
  EXPECT_DOUBLE_EQ(*table[1].mult_us, 206.0);
  EXPECT_DOUBLE_EQ(*table[2].mult_us, 765.0);
  EXPECT_DOUBLE_EQ(*table[3].mult_us, 583.0);
}

TEST(Literature, PaperSpeedupClaims) {
  // "The execution time of [28] is 3.32X larger than the time taken by our
  // solution, while the other results are 1.69X larger, or more."
  const PerfBreakdown ours = evaluate_perf(PerfParams::paper());
  const auto& table = literature_table();
  EXPECT_NEAR(*table[0].mult_us / ours.mult_us(), 3.32, 0.05);
  double min_ratio = 1e9;
  for (const auto& entry : table) {
    if (entry.mult_us.has_value()) {
      min_ratio = std::min(min_ratio, *entry.mult_us / ours.mult_us());
    }
  }
  EXPECT_NEAR(min_ratio, 1.69, 0.03);  // the [30] ASIC at 206 us
  // FFT comparison: 125 / 30.72 = 4.07x.
  EXPECT_NEAR(*table[0].fft_us / ours.fft_us(), 4.07, 0.05);
}

}  // namespace
}  // namespace hemul::hw
