// The iterative NttContext engine and the redundant-representation
// butterfly kernels: parity against the O(n^2) reference DFT and the
// independent radix-2 engine across plans and sizes, adversarial values
// that stress the deferred-reduction paths, plan-cache identity, and the
// engine-order convolution path.

#include <gtest/gtest.h>

#include "fp/kernels.hpp"
#include "fp/roots.hpp"
#include "ntt/context.hpp"
#include "ntt/convolution.hpp"
#include "ntt/mixed_radix.hpp"
#include "ntt/radix2.hpp"
#include "ntt/reference.hpp"
#include "util/rng.hpp"

namespace hemul::ntt {
namespace {

using fp::Fp;
using fp::FpVec;

FpVec random_vec(util::Rng& rng, std::size_t n) {
  FpVec v(n);
  for (auto& x : v) x = Fp{rng.next()};
  return v;
}

TEST(FpKernels, LazyScalarPrimitivesAreExactAtTheEdges) {
  // The redundant-representation helpers must be exact for EVERY u64
  // input, including the double-wrap corners within epsilon of 2^64.
  const u64 edges[] = {0,
                       1,
                       2,
                       fp::kEpsilon - 1,
                       fp::kEpsilon,
                       fp::kEpsilon + 1,
                       fp::kModulus - 2,
                       fp::kModulus - 1,
                       fp::kModulus,
                       fp::kModulus + 1,
                       0x8000'0000'0000'0000ULL,
                       0xFFFF'FFFF'0000'0000ULL,
                       ~u64{0} - 1,
                       ~u64{0}};
  for (const u64 a : edges) {
    for (const u64 b : edges) {
      const Fp fa = Fp::from_u128(a);
      const Fp fb = Fp::from_u128(b);
      EXPECT_EQ(fp::canonical_u64(fp::add_lazy(a, b)), (fa + fb).value()) << a << "+" << b;
      EXPECT_EQ(fp::canonical_u64(fp::sub_lazy(a, b)), (fa - fb).value()) << a << "-" << b;
      EXPECT_EQ(fp::canonical_u64(fp::mul_lazy(a, b)), (fa * fb).value()) << a << "*" << b;
    }
  }
}

TEST(NttContextCache, SamePlanYieldsSameContext) {
  const NttContext& a = shared_context(NttPlan::from_radices({4, 4}));
  const NttContext& b = shared_context(NttPlan::from_radices({4, 4}));
  EXPECT_EQ(&a, &b);
  // Same size, different staging: distinct contexts.
  const NttContext& c = shared_context(NttPlan::from_radices({2, 2, 4}));
  EXPECT_NE(&a, &c);
  EXPECT_EQ(c.plan().describe(), "2*2*4");
}

TEST(NttContextCache, FacadeConstructionReusesTheContext) {
  // MixedRadixNtt is now a facade: constructing it twice must not rebuild
  // tables (same underlying root/plan objects).
  const MixedRadixNtt first(NttPlan::paper_64k());
  const MixedRadixNtt second(NttPlan::paper_64k());
  EXPECT_EQ(&first.plan(), &second.plan());
}

struct FuzzCase {
  std::vector<u32> radices;
  u64 seed;
};

class IterativeVsReference : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(IterativeVsReference, ForwardMatchesDirectDftOnRandomSweep) {
  const auto& param = GetParam();
  const NttContext& engine = shared_context(NttPlan::from_radices(param.radices));
  const u64 n = engine.plan().size;
  util::Rng rng(param.seed);
  NttScratch scratch;
  FpVec out;
  for (int round = 0; round < 4; ++round) {
    const FpVec data = random_vec(rng, n);
    engine.forward(data, out, scratch);
    EXPECT_EQ(out, dft_reference(data, engine.root())) << "round " << round;
  }
}

TEST_P(IterativeVsReference, RoundTripsAndMatchesRadix2) {
  const auto& param = GetParam();
  const NttContext& engine = shared_context(NttPlan::from_radices(param.radices));
  const u64 n = engine.plan().size;
  util::Rng rng(param.seed + 1000);
  const FpVec data = random_vec(rng, n);
  NttScratch scratch;
  FpVec spectrum;
  FpVec back;
  engine.forward(data, spectrum, scratch);
  engine.inverse(spectrum, back, scratch);
  EXPECT_EQ(back, data);
  if (n >= 2) {
    FpVec via_radix2 = data;
    shared_radix2(n).forward(via_radix2);
    EXPECT_EQ(spectrum, via_radix2);
  }
}

// The satellite sweep: the paper plan (scaled so the O(n^2) reference stays
// tractable: {64,64,16} is checked against radix-2 separately below), pure
// radix-2 and uniform radix-4 across sizes, plus ragged mixed plans.
INSTANTIATE_TEST_SUITE_P(
    Plans, IterativeVsReference,
    ::testing::Values(FuzzCase{{2}, 11}, FuzzCase{{4}, 12}, FuzzCase{{2, 2, 2}, 13},
                      FuzzCase{{2, 2, 2, 2, 2, 2}, 14},          // pure radix-2, n=64
                      FuzzCase{{2, 2, 2, 2, 2, 2, 2, 2, 2}, 15}, // pure radix-2, n=512
                      FuzzCase{{4, 4}, 16}, FuzzCase{{4, 4, 4}, 17},
                      FuzzCase{{4, 4, 4, 4}, 18},                // uniform radix-4, n=256
                      FuzzCase{{4, 4, 4, 4, 4}, 19},             // uniform radix-4, n=1024
                      FuzzCase{{64, 16}, 20},                    // paper radices, n=1024
                      FuzzCase{{16, 64}, 21}, FuzzCase{{8, 2, 32}, 22},
                      FuzzCase{{128, 4}, 23}));                  // generic (non-shift) DFT root

TEST(IterativeEngine, Paper64kPlanMatchesRadix2AndRoundTrips) {
  const NttContext& engine = shared_context(NttPlan::paper_64k());
  util::Rng rng(64);
  const FpVec data = random_vec(rng, 65536);
  NttScratch scratch;
  FpVec spectrum;
  engine.forward(data, spectrum, scratch);

  FpVec via_radix2 = data;
  shared_radix2(65536).forward(via_radix2);
  EXPECT_EQ(spectrum, via_radix2);

  FpVec back;
  engine.inverse(spectrum, back, scratch);
  EXPECT_EQ(back, data);
}

TEST(IterativeEngine, OpCountsMatchTheRecursiveSemantics) {
  // The counts contract of the old recursive engine, now produced by the
  // iterative stage loop (guards the hardware-model comparisons).
  const NttContext& engine = shared_context(NttPlan::paper_64k());
  util::Rng rng(31);
  const FpVec data = random_vec(rng, 65536);
  NttScratch scratch;
  FpVec out;
  NttOpCounts counts;
  engine.forward(data, out, scratch, &counts);
  EXPECT_EQ(counts.shift_muls, 2u * 64 * 65536 + 16u * 65536);
  EXPECT_EQ(counts.generic_muls, 15u * 4096 + 16u * 63 * 64);
}

TEST(IterativeEngine, AdversarialValuesStressDeferredReduction) {
  // All coefficients at p-1 (and alternating 0 / p-1) maximize every
  // butterfly sum and subtraction, hammering the redundant representation's
  // double-wrap fixes in both engines.
  for (const u64 n : {16ULL, 256ULL, 4096ULL}) {
    FpVec all_max(n, Fp::from_canonical(fp::kModulus - 1));
    FpVec alternating(n, fp::kZero);
    for (u64 i = 0; i < n; i += 2) alternating[i] = Fp::from_canonical(fp::kModulus - 1);

    const NttContext& mixed = shared_context(NttPlan::pure_radix2(n));
    const Radix2Ntt& radix2 = shared_radix2(n);
    NttScratch scratch;
    for (const FpVec& data : {all_max, alternating}) {
      const FpVec expected = dft_reference(data, radix2.root());
      FpVec via_mixed;
      mixed.forward(data, via_mixed, scratch);
      EXPECT_EQ(via_mixed, expected) << n;
      FpVec via_radix2 = data;
      radix2.forward(via_radix2);
      EXPECT_EQ(via_radix2, expected) << n;
      FpVec back;
      mixed.inverse(via_mixed, back, scratch);
      EXPECT_EQ(back, data) << n;
    }
  }
}

TEST(FpKernels, PointwiseAddAccumulatesAdversarialRedundantSpectra) {
  // The spectrum-domain accumulation primitive takes redundant inputs
  // anywhere in [0, 2^64) and produces redundant outputs. Hammer it with
  // all-(p-1), p, and near-2^64 lanes across sizes covering both the SIMD
  // body and the scalar tail, checking every lane against an independently
  // tracked canonical sum after 64 stacked accumulations.
  util::Rng rng(0xADD5);
  const u64 adversarial[] = {fp::kModulus - 1, fp::kModulus, ~u64{0},
                             0x8000'0000'0000'0000ULL};
  for (const u64 n : {4ULL, 8ULL, 64ULL, 257ULL}) {
    FpVec acc(n, fp::kZero);
    std::vector<u64> expected(n, 0);
    for (unsigned round = 0; round < 64; ++round) {
      FpVec b(n);
      for (u64 i = 0; i < n; ++i) {
        b[i] = Fp{round % 2 == 0 ? adversarial[(round + i) % 4] : rng.next()};
      }
      fp::pointwise_add(acc.data(), b.data(), n);
      for (u64 i = 0; i < n; ++i) {
        expected[i] =
            fp::canonical_u64(fp::add_lazy(expected[i], fp::canonical_u64(b[i].value())));
      }
    }
    for (u64 i = 0; i < n; ++i) {
      EXPECT_EQ(fp::canonical_u64(acc[i].value()), expected[i]) << n << ":" << i;
    }
  }
}

TEST(SpectralConvolve, MatchesReferenceConvolutionAcrossSizes) {
  // The engine-order (bit-reversal-free) convolution path the multiplier
  // uses, including the odd-log2 sizes the radix-2 sweep must handle.
  util::Rng rng(77);
  for (const u64 n : {2ULL, 4ULL, 8ULL, 32ULL, 128ULL, 1024ULL, 2048ULL}) {
    const FpVec a = random_vec(rng, n);
    const FpVec b = random_vec(rng, n);
    const FpVec expected = cyclic_convolve_reference(a, b);
    const Radix2Ntt& engine = shared_radix2(n);

    FpVec fa = a;
    FpVec fb = b;
    engine.convolve_into(fa, fb);
    EXPECT_EQ(fa, expected) << n;

    // Spectrum API: forward both, combine via convolve_from_spectra.
    FpVec sa = a;
    FpVec sb = b;
    engine.forward_spectrum(sa);
    engine.forward_spectrum(sb);
    FpVec out;
    engine.convolve_from_spectra(out, sa, sb);
    EXPECT_EQ(out, expected) << n;

    // Spectral round trip.
    engine.inverse_from_spectrum(sa);
    EXPECT_EQ(sa, a) << n;
  }
}

TEST(SpectralConvolve, SquareMatchesConvolve) {
  util::Rng rng(78);
  const FpVec a = random_vec(rng, 512);
  const Radix2Ntt& engine = shared_radix2(512);
  FpVec fa = a;
  FpVec fb = a;
  engine.convolve_into(fa, fb);
  FpVec sq = a;
  engine.convolve_square_into(sq);
  EXPECT_EQ(sq, fa);
}

TEST(SharedCaches, LockFreeLookupsReturnStableReferences) {
  const Radix2Ntt& r1 = shared_radix2(256);
  const NttContext& c1 = shared_context(NttPlan::uniform(4, 256));
  // Populating other sizes must not move previously returned engines.
  for (u64 n = 2; n <= 8192; n <<= 1) (void)shared_radix2(n);
  (void)shared_context(NttPlan::pure_radix2(512));
  EXPECT_EQ(&r1, &shared_radix2(256));
  EXPECT_EQ(&c1, &shared_context(NttPlan::uniform(4, 256)));
}

}  // namespace
}  // namespace hemul::ntt
