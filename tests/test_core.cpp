#include <gtest/gtest.h>

#include "bigint/mul.hpp"
#include "core/accelerator.hpp"
#include "util/rng.hpp"

namespace hemul::core {
namespace {

using bigint::BigUInt;

TEST(Config, PaperDefaults) {
  const Config config = Config::paper();
  EXPECT_EQ(config.backend, Backend::kSimulatedHardware);
  EXPECT_EQ(config.hardware.ntt.num_pes, 4u);
  EXPECT_DOUBLE_EQ(config.hardware.clock_ns, 5.0);
  EXPECT_EQ(config.hardware.ntt.plan.describe(), "64*64*16");
  EXPECT_NO_THROW(config.validate());
}

TEST(Config, MismatchDetected) {
  Config config = Config::paper();
  config.hardware.ssa = ssa::SsaParams::for_bits(1000);
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(Accelerator, HardwareAndSoftwareBackendsAgree) {
  Config hw_config = Config::paper();
  Config sw_config = Config::paper();
  sw_config.backend = Backend::kSoftware;
  Accelerator hw(hw_config);
  Accelerator sw(sw_config);

  util::Rng rng(1);
  const BigUInt a = BigUInt::random_bits(rng, 50000);
  const BigUInt b = BigUInt::random_bits(rng, 50000);
  const MultiplyResult rh = hw.multiply(a, b);
  const MultiplyResult rs = sw.multiply(a, b);
  EXPECT_EQ(rh.product, rs.product);
  EXPECT_EQ(rh.product, bigint::mul_karatsuba(a, b));
  EXPECT_TRUE(rh.hw_report.has_value());
  EXPECT_FALSE(rs.hw_report.has_value());
}

TEST(Accelerator, ReportsPaperTiming) {
  Accelerator accel;
  util::Rng rng(2);
  const BigUInt a = BigUInt::random_bits(rng, 786432);
  const BigUInt b = BigUInt::random_bits(rng, 786432);
  const MultiplyResult r = accel.multiply(a, b);
  ASSERT_TRUE(r.hw_report.has_value());
  EXPECT_NEAR(r.hw_report->total_time_us(), 122.88, 0.01);
  // The closed-form model and the cycle-accurate simulation must agree.
  EXPECT_NEAR(r.modeled_time_us, r.hw_report->total_time_us(), 0.01);
}

TEST(Accelerator, NttRoundTripThroughFacade) {
  Accelerator accel;
  util::Rng rng(3);
  fp::FpVec data(65536);
  for (auto& x : data) x = fp::Fp{rng.next()};
  hw::NttRunReport report;
  const fp::FpVec spectrum = accel.ntt_forward(data, &report);
  EXPECT_EQ(report.total_cycles, 6144u);
  EXPECT_EQ(accel.ntt_inverse(spectrum), data);
}

TEST(Accelerator, SoftwareBackendRejectsNttAccess) {
  Config config = Config::paper();
  config.backend = Backend::kSoftware;
  Accelerator accel(config);
  fp::FpVec data(65536, fp::kZero);
  EXPECT_THROW((void)accel.ntt_forward(data), std::logic_error);
}

TEST(Accelerator, ResourceReportMatchesTableOne) {
  Accelerator accel;
  const hw::ResourceComparison resources = accel.resources();
  EXPECT_EQ(resources.proposed.alms, 104000u);
  EXPECT_EQ(resources.baseline.alms, 231000u);
}

TEST(Accelerator, PerformanceReportMatchesSectionV) {
  Accelerator accel;
  const hw::PerfBreakdown perf = accel.performance();
  EXPECT_NEAR(perf.fft_us(), 30.72, 1e-9);
  EXPECT_NEAR(perf.mult_us(), 122.88, 1e-9);
}

TEST(Accelerator, TwoPeConfiguration) {
  Config config = Config::paper();
  config.hardware.ntt.num_pes = 2;
  Accelerator accel(config);
  const hw::PerfBreakdown perf = accel.performance();
  EXPECT_NEAR(perf.fft_us(), 61.44, 1e-9);  // half the PEs, twice the time

  util::Rng rng(4);
  const BigUInt a = BigUInt::random_bits(rng, 10000);
  const BigUInt b = BigUInt::random_bits(rng, 10000);
  EXPECT_EQ(accel.multiply(a, b).product, bigint::mul_schoolbook(a, b));
}

}  // namespace
}  // namespace hemul::core
