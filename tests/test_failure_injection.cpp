// Systematic misuse tests: every public API that declares a precondition
// must reject its violation loudly (std::logic_error from HEMUL_CHECK,
// std::invalid_argument / std::domain_error from constructors), never
// corrupt state or return garbage.

#include <gtest/gtest.h>

#include "bigint/barrett.hpp"
#include "bigint/mul.hpp"
#include "core/accelerator.hpp"
#include "fhe/dghv.hpp"
#include "hw/accel/accelerator.hpp"
#include "hw/memory/banked_buffer.hpp"
#include "hw/pe/processing_element.hpp"
#include "ssa/pack.hpp"
#include "util/rng.hpp"

namespace hemul {
namespace {

TEST(FailureInjection, BankedBufferBounds) {
  hw::BankedBuffer buf;
  EXPECT_THROW((void)buf.map(4096), std::logic_error);
  EXPECT_THROW((void)buf.peek(99999), std::logic_error);
  EXPECT_THROW(buf.poke(4096, fp::kOne), std::logic_error);
  const fp::FpVec too_big(4097, fp::kZero);
  EXPECT_THROW(buf.load(too_big), std::logic_error);
  EXPECT_THROW((void)buf.dump(4097), std::logic_error);
}

TEST(FailureInjection, BankedBufferBatchArity) {
  hw::BankedBuffer buf;
  const std::vector<unsigned> seven(7, 0);
  EXPECT_THROW((void)buf.read8(seven), std::logic_error);
  const std::vector<unsigned> eight(8, 0);
  const std::vector<fp::Fp> four(4, fp::kZero);
  EXPECT_THROW(buf.write8(eight, four), std::logic_error);
}

TEST(FailureInjection, ProcessingElementAlignment) {
  hw::ProcessingElement pe(0, hw::ProcessingElement::Config{});
  const fp::FpVec data(64, fp::kZero);
  EXPECT_THROW(pe.fill(3, data), std::logic_error);           // unaligned offset
  EXPECT_THROW((void)pe.run_fft(13, 64, {}), std::logic_error);  // unaligned window
  const fp::FpVec twiddles(5, fp::kOne);
  EXPECT_THROW((void)pe.run_fft(0, 64, twiddles), std::logic_error);  // arity
}

TEST(FailureInjection, SsaPackOversizeAndParamAbuse) {
  const ssa::SsaParams params = ssa::SsaParams::for_bits(128);
  util::Rng rng(1);
  EXPECT_THROW((void)ssa::pack(bigint::BigUInt::random_bits(rng, 10000), params),
               std::logic_error);

  ssa::SsaParams broken = params;
  broken.transform_size = 3;  // not a power of two
  EXPECT_THROW(broken.validate(), std::logic_error);
  broken = params;
  broken.coeff_bits = 0;
  EXPECT_THROW(broken.validate(), std::logic_error);
}

TEST(FailureInjection, DistributedNttConfigRejection) {
  // PE count not a power of two.
  hw::DistributedNttConfig config;
  config.num_pes = 3;
  EXPECT_THROW(hw::DistributedNtt{config}, std::invalid_argument);
  // Input size mismatch at run time.
  hw::DistributedNtt engine{hw::DistributedNttConfig{}};
  const fp::FpVec wrong(100, fp::kZero);
  EXPECT_THROW((void)engine.forward(wrong), std::logic_error);
}

TEST(FailureInjection, AcceleratorOperandTooLarge) {
  hw::HwAccelerator accel(hw::AcceleratorConfig::paper());
  util::Rng rng(2);
  const auto oversized = bigint::BigUInt::random_bits(rng, 786433);
  const auto ok = bigint::BigUInt::random_bits(rng, 1000);
  EXPECT_THROW((void)accel.multiply(oversized, ok), std::logic_error);
  EXPECT_THROW((void)accel.square(oversized), std::logic_error);
}

TEST(FailureInjection, BigIntArithmeticGuards) {
  EXPECT_THROW(bigint::BigUInt{3} - bigint::BigUInt{5}, std::underflow_error);
  EXPECT_THROW(bigint::BigUInt{3} / bigint::BigUInt{}, std::domain_error);
  EXPECT_THROW(bigint::BigUInt{3} % bigint::BigUInt{}, std::domain_error);
  EXPECT_THROW(bigint::BarrettReducer{bigint::BigUInt{1}}, std::invalid_argument);
}

TEST(FailureInjection, DghvParameterAbuse) {
  fhe::DghvParams p = fhe::DghvParams::toy();
  p.gamma = p.eta;  // no room for q0
  EXPECT_THROW(fhe::Dghv(p, 1), std::invalid_argument);
}

TEST(FailureInjection, CoreConfigValidation) {
  core::Config config = core::Config::paper();
  config.hardware.ntt.num_pes = 8;  // illegal for the 3-stage plan
  EXPECT_THROW(core::Accelerator{config}, std::invalid_argument);
}

TEST(FailureInjection, StateSurvivesRejectedCalls) {
  // A rejected call must not corrupt the accelerator: the next valid call
  // still produces bit-exact results.
  hw::HwAccelerator accel(hw::AcceleratorConfig::paper());
  util::Rng rng(3);
  const auto oversized = bigint::BigUInt::random_bits(rng, 900000);
  const auto a = bigint::BigUInt::random_bits(rng, 5000);
  const auto b = bigint::BigUInt::random_bits(rng, 5000);
  EXPECT_THROW((void)accel.multiply(oversized, b), std::logic_error);
  EXPECT_EQ(accel.multiply(a, b), bigint::mul_schoolbook(a, b));
}

}  // namespace
}  // namespace hemul
