#include <gtest/gtest.h>

#include "bigint/biguint.hpp"
#include "bigint/mul.hpp"
#include "util/rng.hpp"

namespace hemul::bigint {
namespace {

TEST(MulSchoolbook, KnownValues) {
  EXPECT_EQ(mul_schoolbook(BigUInt{6}, BigUInt{7}), BigUInt{42});
  EXPECT_EQ(mul_schoolbook(BigUInt{}, BigUInt{7}), BigUInt{});
  EXPECT_EQ(mul_schoolbook(BigUInt{7}, BigUInt{}), BigUInt{});
  EXPECT_EQ(mul_schoolbook(BigUInt{1}, BigUInt{7}), BigUInt{7});
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1
  const BigUInt max64 = BigUInt::from_hex("ffffffffffffffff");
  EXPECT_EQ(mul_schoolbook(max64, max64),
            BigUInt::pow2(128) - BigUInt::pow2(65) + BigUInt{1});
}

TEST(MulSchoolbook, PowersOfTwo) {
  for (std::size_t i : {0u, 1u, 63u, 64u, 100u}) {
    for (std::size_t j : {0u, 1u, 63u, 64u, 100u}) {
      EXPECT_EQ(mul_schoolbook(BigUInt::pow2(i), BigUInt::pow2(j)), BigUInt::pow2(i + j));
    }
  }
}

TEST(MulSchoolbook, DecimalCrossCheck) {
  const BigUInt a = BigUInt::from_dec("123456789012345678901234567890");
  const BigUInt b = BigUInt::from_dec("987654321098765432109876543210");
  EXPECT_EQ(mul_schoolbook(a, b).to_dec(),
            "121932631137021795226185032733622923332237463801111263526900");
}

// Karatsuba and Toom-3 must agree with schoolbook across a size sweep that
// straddles their recursion thresholds.
class MulAlgorithms : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MulAlgorithms, KaratsubaMatchesSchoolbook) {
  const std::size_t bits = GetParam();
  util::Rng rng(bits * 31 + 1);
  for (int i = 0; i < 3; ++i) {
    const BigUInt a = BigUInt::random_bits(rng, bits);
    const BigUInt b = BigUInt::random_bits(rng, bits);
    EXPECT_EQ(mul_karatsuba(a, b), mul_schoolbook(a, b));
  }
}

TEST_P(MulAlgorithms, Toom3MatchesSchoolbook) {
  const std::size_t bits = GetParam();
  util::Rng rng(bits * 37 + 2);
  for (int i = 0; i < 3; ++i) {
    const BigUInt a = BigUInt::random_bits(rng, bits);
    const BigUInt b = BigUInt::random_bits(rng, bits);
    EXPECT_EQ(mul_toom3(a, b), mul_schoolbook(a, b));
  }
}

TEST_P(MulAlgorithms, UnbalancedOperands) {
  const std::size_t bits = GetParam();
  util::Rng rng(bits * 41 + 3);
  const BigUInt a = BigUInt::random_bits(rng, bits);
  const BigUInt b = BigUInt::random_bits(rng, bits / 3 + 1);
  const BigUInt expected = mul_schoolbook(a, b);
  EXPECT_EQ(mul_karatsuba(a, b), expected);
  EXPECT_EQ(mul_toom3(a, b), expected);
  EXPECT_EQ(mul_auto(a, b), expected);
}

INSTANTIATE_TEST_SUITE_P(BitSizes, MulAlgorithms,
                         ::testing::Values(64, 128, 1000, 1536, 2048, 4096, 8192, 16384,
                                           20000, 40000));

TEST(MulAlgorithms, ThresholdBoundaries) {
  // Exercise operand sizes right at the dispatcher thresholds.
  util::Rng rng(17);
  for (const std::size_t limbs :
       {kKaratsubaThresholdLimbs - 1, kKaratsubaThresholdLimbs, kKaratsubaThresholdLimbs + 1,
        kToom3ThresholdLimbs - 1, kToom3ThresholdLimbs, kToom3ThresholdLimbs + 1}) {
    const BigUInt a = BigUInt::random_bits(rng, limbs * 64);
    const BigUInt b = BigUInt::random_bits(rng, limbs * 64);
    EXPECT_EQ(mul_auto(a, b), mul_schoolbook(a, b)) << limbs << " limbs";
  }
}

TEST(MulProperties, SquareOfSumIdentity) {
  // (a+b)^2 = a^2 + 2ab + b^2 exercises add/mul interplay.
  util::Rng rng(23);
  const BigUInt a = BigUInt::random_bits(rng, 5000);
  const BigUInt b = BigUInt::random_bits(rng, 5000);
  const BigUInt lhs = mul_auto(a + b, a + b);
  const BigUInt ab = mul_auto(a, b);
  EXPECT_EQ(lhs, mul_auto(a, a) + (ab << 1) + mul_auto(b, b));
}

TEST(MulProperties, Distributivity) {
  util::Rng rng(29);
  const BigUInt a = BigUInt::random_bits(rng, 3000);
  const BigUInt b = BigUInt::random_bits(rng, 2500);
  const BigUInt c = BigUInt::random_bits(rng, 2000);
  EXPECT_EQ(mul_auto(a, b + c), mul_auto(a, b) + mul_auto(a, c));
}

TEST(MulProperties, Associativity) {
  util::Rng rng(31);
  const BigUInt a = BigUInt::random_bits(rng, 1200);
  const BigUInt b = BigUInt::random_bits(rng, 1100);
  const BigUInt c = BigUInt::random_bits(rng, 1000);
  EXPECT_EQ(mul_auto(mul_auto(a, b), c), mul_auto(a, mul_auto(b, c)));
}

TEST(MulEdgeCases, AllOnesPatterns) {
  // Operands of all-ones maximize internal carries in every algorithm.
  for (const std::size_t bits : {64u, 127u, 1536u, 4096u, 12000u}) {
    const BigUInt ones = BigUInt::pow2(bits) - BigUInt{1};
    const BigUInt expected = mul_schoolbook(ones, ones);
    EXPECT_EQ(mul_karatsuba(ones, ones), expected);
    EXPECT_EQ(mul_toom3(ones, ones), expected);
    // (2^n - 1)^2 = 2^(2n) - 2^(n+1) + 1
    EXPECT_EQ(expected, BigUInt::pow2(2 * bits) - BigUInt::pow2(bits + 1) + BigUInt{1});
  }
}

TEST(MulEdgeCases, SparseOperands) {
  // Mostly-zero limbs stress the Toom-3 signed interpolation.
  BigUInt a = BigUInt::pow2(40000) + BigUInt{1};
  BigUInt b = BigUInt::pow2(35000) + BigUInt::pow2(17);
  const BigUInt expected =
      BigUInt::pow2(75000) + BigUInt::pow2(40017) + BigUInt::pow2(35000) + BigUInt::pow2(17);
  EXPECT_EQ(mul_toom3(a, b), expected);
  EXPECT_EQ(mul_karatsuba(a, b), expected);
}

}  // namespace
}  // namespace hemul::bigint
