#include <gtest/gtest.h>

#include "bigint/barrett.hpp"
#include "bigint/mul.hpp"
#include "ssa/multiply.hpp"
#include "util/rng.hpp"

namespace hemul::bigint {
namespace {

TEST(Barrett, RejectsTinyModulus) {
  EXPECT_THROW(BarrettReducer(BigUInt{0}), std::invalid_argument);
  EXPECT_THROW(BarrettReducer(BigUInt{1}), std::invalid_argument);
  EXPECT_NO_THROW(BarrettReducer(BigUInt{2}));
}

TEST(Barrett, SmallKnownValues) {
  const BarrettReducer red(BigUInt{97});
  EXPECT_EQ(red.reduce(BigUInt{0}), BigUInt{0});
  EXPECT_EQ(red.reduce(BigUInt{96}), BigUInt{96});
  EXPECT_EQ(red.reduce(BigUInt{97}), BigUInt{0});
  EXPECT_EQ(red.reduce(BigUInt{98}), BigUInt{1});
  EXPECT_EQ(red.reduce(BigUInt{96 * 96}), BigUInt{(96 * 96) % 97});
}

TEST(Barrett, InputBoundChecked) {
  const BarrettReducer red(BigUInt{97});
  EXPECT_THROW((void)red.reduce(BigUInt{97 * 97}), std::logic_error);
}

class BarrettSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BarrettSweep, ReduceMatchesDivision) {
  const std::size_t bits = GetParam();
  util::Rng rng(bits);
  for (int rep = 0; rep < 5; ++rep) {
    const BigUInt m = BigUInt::random_bits(rng, bits);
    if (m < BigUInt{2}) continue;
    const BarrettReducer red(m);
    // x uniform below m^2.
    const BigUInt x = BigUInt::random_below(rng, mul_auto(m, m));
    EXPECT_EQ(red.reduce(x), x % m);
  }
}

TEST_P(BarrettSweep, ModMulMatchesDivision) {
  const std::size_t bits = GetParam();
  util::Rng rng(bits ^ 0xB);
  const BigUInt m = BigUInt::random_bits(rng, bits);
  const BarrettReducer red(m);
  for (int rep = 0; rep < 5; ++rep) {
    const BigUInt a = BigUInt::random_below(rng, m);
    const BigUInt b = BigUInt::random_below(rng, m);
    EXPECT_EQ(red.mod_mul(a, b), mul_auto(a, b) % m);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, BarrettSweep,
                         ::testing::Values(2, 63, 64, 65, 128, 1000, 4096, 10000));

TEST(Barrett, EdgeResiduesNearCorrection) {
  // Values just below m^2 exercise the final correction loop.
  util::Rng rng(42);
  const BigUInt m = BigUInt::random_bits(rng, 256);
  const BarrettReducer red(m);
  const BigUInt m2 = mul_auto(m, m);
  for (u64 delta = 1; delta <= 5; ++delta) {
    const BigUInt x = m2 - BigUInt{delta};
    EXPECT_EQ(red.reduce(x), x % m);
  }
}

TEST(Barrett, ModPow) {
  const BarrettReducer red(BigUInt{1000000007});
  // 2^10 = 1024; 3^0 = 1; 5^1 = 5.
  EXPECT_EQ(red.mod_pow(BigUInt{2}, BigUInt{10}), BigUInt{1024});
  EXPECT_EQ(red.mod_pow(BigUInt{3}, BigUInt{0}), BigUInt{1});
  EXPECT_EQ(red.mod_pow(BigUInt{5}, BigUInt{1}), BigUInt{5});
  // Fermat: a^(p-1) = 1 mod prime p.
  EXPECT_EQ(red.mod_pow(BigUInt{123456}, BigUInt{1000000006}), BigUInt{1});
}

TEST(Barrett, ModPowLarge) {
  util::Rng rng(7);
  const BigUInt m = BigUInt::random_bits(rng, 512);
  const BarrettReducer red(m);
  const BigUInt a = BigUInt::random_below(rng, m);
  // a^16 via mod_pow vs iterated squaring through plain division.
  BigUInt expected = a;
  for (int i = 0; i < 4; ++i) expected = mul_auto(expected, expected) % m;
  EXPECT_EQ(red.mod_pow(a, BigUInt{16}), expected);
}

TEST(Barrett, PluggableMultiplierBackend) {
  util::Rng rng(9);
  const BigUInt m = BigUInt::random_bits(rng, 2000);
  BarrettReducer red(m);
  red.set_multiplier([](const BigUInt& a, const BigUInt& b) { return ssa::mul_ssa(a, b); });
  const BigUInt a = BigUInt::random_below(rng, m);
  const BigUInt b = BigUInt::random_below(rng, m);
  EXPECT_EQ(red.mod_mul(a, b), mul_auto(a, b) % m);
  // mod_mul = 1 product + 2 reduction multiplications.
  EXPECT_EQ(red.multiplications_used(), 3u);
}

TEST(Barrett, MuIsPrecomputedDivision) {
  const BigUInt m = BigUInt::from_dec("123456789123456789");
  const BarrettReducer red(m);
  EXPECT_EQ(red.mu(), BigUInt::pow2(128) / m);
}

}  // namespace
}  // namespace hemul::bigint
