#include <gtest/gtest.h>

#include <bit>

#include "hw/noc/exchange.hpp"
#include "hw/noc/hypercube.hpp"
#include "hw/noc/schedule.hpp"

namespace hemul::hw {
namespace {

TEST(Hypercube, DimensionsFromNodeCount) {
  EXPECT_EQ(Hypercube(1).dimensions(), 0u);
  EXPECT_EQ(Hypercube(2).dimensions(), 1u);
  EXPECT_EQ(Hypercube(4).dimensions(), 2u);
  EXPECT_EQ(Hypercube(16).dimensions(), 4u);
  EXPECT_THROW(Hypercube(0), std::invalid_argument);
  EXPECT_THROW(Hypercube(6), std::invalid_argument);
}

TEST(Hypercube, NeighborsDifferInOneBit) {
  const Hypercube cube(8);
  for (unsigned node = 0; node < 8; ++node) {
    const auto neighbors = cube.neighbors(node);
    EXPECT_EQ(neighbors.size(), 3u);
    for (const unsigned nb : neighbors) {
      EXPECT_EQ(std::popcount(node ^ nb), 1);
      EXPECT_TRUE(cube.connected(node, nb));
    }
  }
}

TEST(Hypercube, NeighborIsInvolution) {
  const Hypercube cube(16);
  for (unsigned node = 0; node < 16; ++node) {
    for (unsigned dim = 0; dim < 4; ++dim) {
      EXPECT_EQ(cube.neighbor(cube.neighbor(node, dim), dim), node);
    }
  }
}

TEST(Hypercube, LinkCount) {
  EXPECT_EQ(Hypercube(4).links(), 4u);   // the 4-cycle
  EXPECT_EQ(Hypercube(8).links(), 12u);  // cube edges
}

TEST(Hypercube, BoundsChecked) {
  const Hypercube cube(4);
  EXPECT_THROW((void)cube.neighbor(4, 0), std::logic_error);
  EXPECT_THROW((void)cube.neighbor(0, 2), std::logic_error);
}

TEST(ExchangeLedger, RecordsValidTransfers) {
  const Hypercube cube(4);
  ExchangeLedger ledger(cube);
  ledger.record(0, 1, 0, 2, 100);
  ledger.record(0, 1, 2, 0, 100);
  ledger.record(1, 0, 0, 1, 50);
  EXPECT_EQ(ledger.total_words(), 250u);
  EXPECT_EQ(ledger.words_sent_by(0), 150u);
  EXPECT_EQ(ledger.stage_count(), 2u);
  EXPECT_TRUE(ledger.single_partner_per_stage());
}

TEST(ExchangeLedger, RejectsNonNeighborTransfers) {
  const Hypercube cube(4);
  ExchangeLedger ledger(cube);
  EXPECT_THROW(ledger.record(0, 0, 0, 3, 1), std::logic_error);  // distance 2
  EXPECT_THROW(ledger.record(0, 0, 0, 2, 1), std::logic_error);  // wrong dim
}

TEST(ExchangeLedger, DetectsMultiplePartners) {
  const Hypercube cube(4);
  ExchangeLedger ledger(cube);
  ledger.record(0, 0, 0, 1, 10);
  ledger.record(0, 1, 0, 2, 10);  // same stage, second partner + second dim
  EXPECT_FALSE(ledger.single_partner_per_stage());
}

TEST(ExchangeCycles, BandwidthModel) {
  EXPECT_EQ(exchange_cycles(8192, 8), 1024u);
  EXPECT_EQ(exchange_cycles(8191, 8), 1024u);
  EXPECT_EQ(exchange_cycles(0, 8), 0u);
  EXPECT_THROW(exchange_cycles(1, 0), std::logic_error);
}

TEST(StageSchedule, LegalityRule) {
  // Paper: "We must have l > d in order to correctly interleave
  // computation and communication."
  EXPECT_TRUE(StageSchedule::legal(3, 2));
  EXPECT_FALSE(StageSchedule::legal(3, 3));
  EXPECT_FALSE(StageSchedule::legal(2, 3));
  EXPECT_THROW(StageSchedule(3, 3), std::invalid_argument);
  EXPECT_NO_THROW(StageSchedule(3, 2));
  EXPECT_NO_THROW(StageSchedule(1, 0));
}

TEST(StageSchedule, PaperInterleaving) {
  // l=3, d=2: C0 X0 C1 X1 C2.
  const StageSchedule schedule(3, 2);
  EXPECT_EQ(schedule.describe(), "C0 X0 C1 X1 C2");
  EXPECT_EQ(schedule.events().size(), 5u);
}

TEST(StageSchedule, CommOnlyAfterFirstDStages) {
  // l > d + 1: "communication takes place only after the first d
  // computation stages while the subsequent stages are computation only."
  const StageSchedule schedule(5, 2);
  EXPECT_EQ(schedule.describe(), "C0 X0 C1 X1 C2 C3 C4");
}

TEST(StageSchedule, OverlapHidesCommunication) {
  const StageSchedule schedule(3, 2);
  const std::vector<u64> compute{2048, 2048, 2048};
  const std::vector<u64> comm{1024, 1024};
  // Fully hidden: 3 x 2048.
  EXPECT_EQ(schedule.total_cycles(compute, comm, true), 6144u);
  // Unhidden: + 2 x 1024.
  EXPECT_EQ(schedule.total_cycles(compute, comm, false), 8192u);
}

TEST(StageSchedule, PartialOverlapChargesExcess) {
  const StageSchedule schedule(2, 1);
  const std::vector<u64> compute{100, 100};
  const std::vector<u64> comm{150};
  // Exchange longer than the next stage: 100 + (150-100) + 100.
  EXPECT_EQ(schedule.total_cycles(compute, comm, true), 250u);
}

}  // namespace
}  // namespace hemul::hw
