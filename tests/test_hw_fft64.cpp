#include <gtest/gtest.h>

#include "fp/roots.hpp"
#include "hw/fft64/baseline_fft64.hpp"
#include "hw/fft64/optimized_fft64.hpp"
#include "hw/fft64/radix_unit.hpp"
#include "ntt/reference.hpp"
#include "util/rng.hpp"

namespace hemul::hw {
namespace {

using fp::Fp;
using fp::FpVec;

FpVec random_vec(util::Rng& rng, std::size_t n) {
  FpVec v(n);
  for (auto& x : v) x = Fp{rng.next()};
  return v;
}

TEST(BaselineFft64, MatchesReferenceDft) {
  BaselineFft64 unit;
  util::Rng rng(1);
  for (int rep = 0; rep < 10; ++rep) {
    const FpVec in = random_vec(rng, 64);
    EXPECT_EQ(unit.transform(in), ntt::dft_reference(in, fp::kOmega64));
  }
  EXPECT_EQ(unit.stats().transforms, 10u);
}

TEST(BaselineFft64, StructuralConstants) {
  // The [28] design points the paper improves on.
  EXPECT_EQ(BaselineFft64::kChains, 64u);
  EXPECT_EQ(BaselineFft64::kReductors, 64u);
  EXPECT_EQ(BaselineFft64::kOutputWordsPerCycle, 64u);
  EXPECT_EQ(BaselineFft64::cycles_per_transform(), 8u);
}

TEST(OptimizedFft64, MatchesReferenceDft) {
  OptimizedFft64 unit;
  util::Rng rng(2);
  for (int rep = 0; rep < 10; ++rep) {
    const FpVec in = random_vec(rng, 64);
    EXPECT_EQ(unit.transform(in), ntt::dft_reference(in, fp::kOmega64));
  }
}

TEST(OptimizedFft64, MatchesBaselineUnit) {
  OptimizedFft64 optimized;
  BaselineFft64 baseline;
  util::Rng rng(3);
  for (int rep = 0; rep < 20; ++rep) {
    const FpVec in = random_vec(rng, 64);
    EXPECT_EQ(optimized.transform(in), baseline.transform(in));
  }
}

TEST(OptimizedFft64, StructuralConstants) {
  // Section IV.b: 4 physical first-stage components, 8 reductors, 8-word
  // ports, twiddle mux of four shifts {0,24,48,72}.
  EXPECT_EQ(OptimizedFft64::kStage1Components, 4u);
  EXPECT_EQ(OptimizedFft64::kReductors, 8u);
  EXPECT_EQ(OptimizedFft64::kOutputWordsPerCycle, 8u);
  EXPECT_EQ(OptimizedFft64::kTwiddleShifts, (std::array<unsigned, 4>{0, 24, 48, 72}));
  EXPECT_EQ(OptimizedFft64::cycles_per_transform(), 8u);
}

TEST(OptimizedFft64, ReductorSharing) {
  // 8 reductors service all 64 outputs: exactly 64 reductions per FFT.
  OptimizedFft64 unit;
  util::Rng rng(4);
  (void)unit.transform(random_vec(rng, 64));
  EXPECT_EQ(unit.stats().reductions, 64u);
  (void)unit.transform(random_vec(rng, 64));
  EXPECT_EQ(unit.stats().reductions, 128u);
}

TEST(OptimizedFft64, SubtractSignalActive) {
  // Half of the twiddle exponents use the negative range (the paper's
  // subtract signal): for each j, the set {j*k2 mod 8} is half >= 4 except
  // when j = 0 or j = 4-multiples degenerate. Just check activity exists.
  OptimizedFft64 unit;
  util::Rng rng(5);
  (void)unit.transform(random_vec(rng, 64));
  EXPECT_GT(unit.stats().subtract_activations, 0u);
}

TEST(OptimizedFft64, KnownSpectra) {
  OptimizedFft64 unit;
  // Delta at 0 -> flat spectrum.
  FpVec delta(64, fp::kZero);
  delta[0] = Fp{7};
  const FpVec flat = unit.transform(delta);
  for (const auto& v : flat) EXPECT_EQ(v, Fp{7});
  // Constant input -> concentration at DC.
  const FpVec constant(64, Fp{3});
  const FpVec spike = unit.transform(constant);
  EXPECT_EQ(spike[0], Fp{3 * 64});
  for (std::size_t k = 1; k < 64; ++k) EXPECT_EQ(spike[k], fp::kZero);
  // Delta at 1 -> powers of the root 8.
  FpVec shifted(64, fp::kZero);
  shifted[1] = fp::kOne;
  const FpVec powers = unit.transform(shifted);
  for (std::size_t k = 0; k < 64; ++k) EXPECT_EQ(powers[k], fp::kOmega64.pow(k));
}

TEST(OptimizedFft64, RejectsWrongSize) {
  OptimizedFft64 unit;
  const FpVec wrong(32, fp::kZero);
  EXPECT_THROW(unit.transform(wrong), std::logic_error);
}

class RadixUnitSizes : public ::testing::TestWithParam<unsigned> {};

TEST_P(RadixUnitSizes, MatchesReferenceDft) {
  const unsigned radix = GetParam();
  RadixUnit unit(radix);
  // Root 2^(192/r) has order r and matches the aligned hierarchy.
  const Fp root = fp::kTwo.pow(192 / radix);
  util::Rng rng(radix);
  for (int rep = 0; rep < 5; ++rep) {
    const FpVec in = random_vec(rng, radix);
    EXPECT_EQ(unit.transform(in), ntt::dft_reference(in, root));
  }
}

TEST_P(RadixUnitSizes, CycleContract) {
  const unsigned radix = GetParam();
  RadixUnit unit(radix);
  EXPECT_EQ(unit.cycles_per_transform(), radix <= 8 ? 1u : radix / 8);
}

INSTANTIATE_TEST_SUITE_P(Radices, RadixUnitSizes, ::testing::Values(8, 16, 32, 64));

TEST(RadixUnit, SixteenPointTakesTwoCycles) {
  // Paper Section V: "an FFT-16 will take two clock cycles".
  EXPECT_EQ(RadixUnit(16).cycles_per_transform(), 2u);
}

TEST(RadixUnit, RejectsUnsupportedRadix) {
  EXPECT_THROW(RadixUnit(4), std::invalid_argument);
  EXPECT_THROW(RadixUnit(128), std::invalid_argument);
}

TEST(RadixUnit, AgreesWithOptimized64) {
  RadixUnit generic(64);
  OptimizedFft64 optimized;
  util::Rng rng(6);
  const FpVec in = random_vec(rng, 64);
  EXPECT_EQ(generic.transform(in), optimized.transform(in));
}

// Linearity survives the whole hardware datapath.
TEST(FftUnits, Linearity) {
  OptimizedFft64 unit;
  util::Rng rng(7);
  const FpVec a = random_vec(rng, 64);
  const FpVec b = random_vec(rng, 64);
  FpVec ab(64);
  for (int i = 0; i < 64; ++i) ab[i] = a[i] + b[i];
  const FpVec fa = unit.transform(a);
  const FpVec fb = unit.transform(b);
  const FpVec fab = unit.transform(ab);
  for (int k = 0; k < 64; ++k) EXPECT_EQ(fab[k], fa[k] + fb[k]);
}

// Worst-case operand patterns (all maximal values) stay exact.
TEST(FftUnits, MaximalInputs) {
  OptimizedFft64 optimized;
  BaselineFft64 baseline;
  const FpVec maxed(64, Fp::from_canonical(fp::kModulus - 1));
  EXPECT_EQ(optimized.transform(maxed), baseline.transform(maxed));
  EXPECT_EQ(optimized.transform(maxed), ntt::dft_reference(maxed, fp::kOmega64));
}

}  // namespace
}  // namespace hemul::hw
