#include <gtest/gtest.h>

#include <functional>
#include <utility>
#include <vector>

#include "bigint/mul.hpp"
#include "ntt/four_step.hpp"
#include "ntt/radix2.hpp"
#include "ntt/reference.hpp"
#include "ssa/multiply.hpp"
#include "ssa/params.hpp"
#include "ssa/resident.hpp"
#include "ssa/spectrum_cache.hpp"
#include "ssa/workspace.hpp"
#include "util/rng.hpp"

namespace hemul::ntt {
namespace {

using bigint::BigUInt;
using fp::Fp;
using fp::FpVec;

FpVec random_vec(util::Rng& rng, std::size_t n) {
  FpVec v(n);
  for (auto& x : v) x = Fp{rng.next()};
  return v;
}

/// Worst case for the redundant representation: every input pinned at the
/// largest canonical value p - 1.
FpVec adversarial_vec(std::size_t n) { return FpVec(n, Fp::from_canonical(fp::kModulus - 1)); }

/// Test executor: runs every tile of a pass serially but in REVERSE order,
/// proving the tiles of one pass are independent (any interleaving a real
/// scheduler produces is bit-exact). Counts groups/tiles for the stats
/// parity checks.
class ReversedExecutor final : public TileExecutor {
 public:
  explicit ReversedExecutor(unsigned concurrency) : concurrency_(concurrency) {}
  [[nodiscard]] unsigned concurrency() const noexcept override { return concurrency_; }
  void run(u64 count, const std::function<void(u64)>& tile) override {
    ++groups;
    tiles += count;
    for (u64 i = count; i-- > 0;) tile(i);
  }

  u64 groups = 0;
  u64 tiles = 0;

 private:
  unsigned concurrency_;
};

// ---- natural-order golden parity -----------------------------------------

class FourStepVsReference : public ::testing::TestWithParam<u64> {};

TEST_P(FourStepVsReference, ForwardMatchesDirectDft) {
  const u64 n = GetParam();
  const FourStepNtt engine(n);
  ASSERT_EQ(engine.n1() * engine.n2(), n);
  util::Rng rng(n);
  FpVec data = random_vec(rng, n);
  const FpVec expected = dft_reference(data, engine.root());
  FpVec scratch;
  engine.forward(data, scratch);
  EXPECT_EQ(data, expected);
}

TEST_P(FourStepVsReference, ForwardMatchesRadix2BitExactly) {
  // Same root hierarchy => directly comparable natural-order spectra.
  const u64 n = GetParam();
  const FourStepNtt four(n);
  const Radix2Ntt radix2(n);
  ASSERT_EQ(four.root(), radix2.root());
  util::Rng rng(n + 1);
  FpVec a = random_vec(rng, n);
  FpVec b = a;
  FpVec scratch;
  four.forward(a, scratch);
  radix2.forward(b);
  EXPECT_EQ(a, b);
}

TEST_P(FourStepVsReference, RoundTrip) {
  const u64 n = GetParam();
  const FourStepNtt engine(n);
  util::Rng rng(n + 7);
  const FpVec orig = random_vec(rng, n);
  FpVec data = orig;
  FpVec scratch;
  engine.forward(data, scratch);
  EXPECT_NE(data, orig);
  engine.inverse(data, scratch);
  EXPECT_EQ(data, orig);
}

TEST_P(FourStepVsReference, SpectrumRoundTrip) {
  const u64 n = GetParam();
  const FourStepNtt engine(n);
  util::Rng rng(n + 13);
  const FpVec orig = random_vec(rng, n);
  FpVec data = orig;
  FpVec scratch;
  engine.forward_spectrum(data, scratch);
  engine.inverse_from_spectrum(data, scratch);
  EXPECT_EQ(data, orig);
}

TEST_P(FourStepVsReference, AdversarialMaxValueRoundTrip) {
  // All-(p-1) inputs stress the lazy-reduction bounds of every pass.
  const u64 n = GetParam();
  const FourStepNtt engine(n);
  const FpVec orig = adversarial_vec(n);
  FpVec data = orig;
  FpVec scratch;
  engine.forward_spectrum(data, scratch);
  engine.inverse_from_spectrum(data, scratch);
  EXPECT_EQ(data, orig);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FourStepVsReference,
                         ::testing::Values(4, 8, 16, 64, 256, 1024, 4096));

// ---- non-square splits ---------------------------------------------------

class FourStepSplits : public ::testing::TestWithParam<std::pair<u64, u64>> {};

TEST_P(FourStepSplits, ForwardMatchesReferenceAndRoundTrips) {
  const auto [n1, n2] = GetParam();
  const u64 n = n1 * n2;
  const FourStepNtt engine(n1, n2);
  EXPECT_EQ(engine.n1(), n1);
  EXPECT_EQ(engine.n2(), n2);
  util::Rng rng(n1 * 31 + n2);
  const FpVec orig = random_vec(rng, n);

  FpVec data = orig;
  FpVec scratch;
  engine.forward(data, scratch);
  EXPECT_EQ(data, dft_reference(orig, engine.root()));
  engine.inverse(data, scratch);
  EXPECT_EQ(data, orig);

  data = orig;
  engine.forward_spectrum(data, scratch);
  engine.inverse_from_spectrum(data, scratch);
  EXPECT_EQ(data, orig);
}

TEST_P(FourStepSplits, ConvolveMatchesRadix2) {
  const auto [n1, n2] = GetParam();
  const u64 n = n1 * n2;
  const FourStepNtt engine(n1, n2);
  const Radix2Ntt radix2(n);
  util::Rng rng(n1 * 37 + n2);
  const FpVec a = random_vec(rng, n);
  const FpVec b = random_vec(rng, n);
  const FpVec expected = radix2.convolve(a, b);

  FpVec fa = a, fb = b, scratch;
  engine.convolve_into(fa, fb, scratch);
  EXPECT_EQ(fa, expected);
}

INSTANTIATE_TEST_SUITE_P(Shapes, FourStepSplits,
                         ::testing::Values(std::pair<u64, u64>{2, 8},
                                           std::pair<u64, u64>{8, 2},
                                           std::pair<u64, u64>{4, 16},
                                           std::pair<u64, u64>{16, 4},
                                           std::pair<u64, u64>{128, 16},
                                           std::pair<u64, u64>{16, 128},
                                           std::pair<u64, u64>{2, 2048}));

// ---- convolution parity --------------------------------------------------

TEST(FourStepConvolve, MatchesRadix2AcrossSizes) {
  for (const u64 n : {16u, 256u, 1024u, 4096u}) {
    const FourStepNtt engine(n);
    const Radix2Ntt radix2(n);
    util::Rng rng(n + 3);
    const FpVec a = random_vec(rng, n);
    const FpVec b = random_vec(rng, n);
    FpVec fa = a, fb = b, scratch;
    engine.convolve_into(fa, fb, scratch);
    EXPECT_EQ(fa, radix2.convolve(a, b)) << "n = " << n;
  }
}

TEST(FourStepConvolve, AdversarialMaxValueOperands) {
  for (const u64 n : {1024u, 2048u}) {
    const FourStepNtt engine(n);
    const Radix2Ntt radix2(n);
    const FpVec a = adversarial_vec(n);
    FpVec fa = a, fb = a, scratch;
    engine.convolve_into(fa, fb, scratch);
    EXPECT_EQ(fa, radix2.convolve(a, a)) << "n = " << n;

    fa = a;
    engine.convolve_square_into(fa, scratch);
    EXPECT_EQ(fa, radix2.convolve(a, a)) << "square n = " << n;
  }
}

TEST(FourStepConvolve, FromSpectraMatchesDirect) {
  const u64 n = 1024;
  const FourStepNtt engine(n);
  util::Rng rng(5);
  const FpVec a = random_vec(rng, n);
  const FpVec b = random_vec(rng, n);

  FpVec fa = a, fb = b, scratch;
  engine.forward_spectrum(fa, scratch);
  engine.forward_spectrum(fb, scratch);
  FpVec out;
  engine.convolve_from_spectra(out, fa, fb, scratch);

  FpVec direct_a = a, direct_b = b;
  engine.convolve_into(direct_a, direct_b, scratch);
  EXPECT_EQ(out, direct_a);
}

// ---- tiled execution -----------------------------------------------------

TEST(FourStepTiling, TiledPassesAreOrderIndependentAndCounted) {
  const u64 n = 4096;  // 64 x 64: every pass runs over 64 rows
  const FourStepNtt engine(n);
  util::Rng rng(9);
  const FpVec a = random_vec(rng, n);
  const FpVec b = random_vec(rng, n);

  FpVec serial_a = a, serial_b = b, scratch;
  engine.convolve_into(serial_a, serial_b, scratch);

  ReversedExecutor exec(4);
  FourStepStats stats;
  FpVec tiled_a = a, tiled_b = b;
  engine.convolve_into(tiled_a, tiled_b, scratch, &exec, &stats);

  EXPECT_EQ(tiled_a, serial_a);
  EXPECT_GT(stats.tile_groups, 0u);
  EXPECT_EQ(stats.tile_groups, exec.groups);
  EXPECT_EQ(stats.tiles, exec.tiles);
  // Square split: every pass covers 64 rows, so the total is exactly
  // groups * tiles_per_pass.
  EXPECT_EQ(stats.tiles, stats.tile_groups * FourStepNtt::tiles_per_pass(64, 4));
}

TEST(FourStepTiling, TilesPerPassIsDeterministic) {
  // 2x oversubscription, capped by 8-row tile granularity.
  EXPECT_EQ(FourStepNtt::tiles_per_pass(256, 0), 2u);  // serial-ish floor
  EXPECT_EQ(FourStepNtt::tiles_per_pass(256, 1), 2u);
  EXPECT_EQ(FourStepNtt::tiles_per_pass(256, 2), 4u);
  EXPECT_EQ(FourStepNtt::tiles_per_pass(256, 4), 8u);
  EXPECT_EQ(FourStepNtt::tiles_per_pass(8, 8), 1u);     // one 8-row tile
  EXPECT_EQ(FourStepNtt::tiles_per_pass(1024, 64), 128u);
}

// ---- ssa routing ---------------------------------------------------------

TEST(SsaFourStep, MultiplyMatchesMonolithicPath) {
  for (const std::size_t bits : {1000u, 4096u, 20000u}) {
    util::Rng rng(bits);
    const BigUInt a = BigUInt::random_bits(rng, bits);
    const BigUInt b = BigUInt::random_bits(rng, bits);

    ssa::SsaParams four = ssa::SsaParams::for_bits(bits);
    four.four_step = ssa::FourStepMode::kAlways;
    ssa::SsaParams mono = four;
    mono.four_step = ssa::FourStepMode::kNever;
    ASSERT_TRUE(four.use_four_step());
    ASSERT_FALSE(mono.use_four_step());

    const BigUInt product = ssa::multiply(a, b, four);
    EXPECT_EQ(product, ssa::multiply(a, b, mono)) << bits;
    EXPECT_EQ(product, bigint::mul_schoolbook(a, b)) << bits;
    EXPECT_EQ(ssa::square(a, four), ssa::square(a, mono)) << bits;
  }
}

TEST(SsaFourStep, AdversarialAllOnesOperands) {
  const std::size_t bits = 4096;
  const BigUInt ones = BigUInt::pow2(bits) - BigUInt(1);
  ssa::SsaParams params = ssa::SsaParams::for_bits(bits);
  params.four_step = ssa::FourStepMode::kAlways;
  EXPECT_EQ(ssa::multiply(ones, ones, params), bigint::mul_schoolbook(ones, ones));
}

TEST(SsaFourStep, StatsReportTileCountsThroughWorkspace) {
  const std::size_t bits = 4096;
  util::Rng rng(17);
  const BigUInt a = BigUInt::random_bits(rng, bits);
  const BigUInt b = BigUInt::random_bits(rng, bits);

  ssa::SsaParams params = ssa::SsaParams::for_bits(bits);
  params.four_step = ssa::FourStepMode::kAlways;
  ReversedExecutor exec(2);
  ssa::Workspace workspace;
  workspace.tile_executor = &exec;
  ssa::SsaStats stats;
  BigUInt out;
  ssa::multiply_into(out, a, b, params, workspace, &stats);
  EXPECT_EQ(out, bigint::mul_schoolbook(a, b));
  EXPECT_GT(stats.tile_groups, 0u);
  EXPECT_EQ(stats.tile_groups, exec.groups);
  EXPECT_EQ(stats.tiles, exec.tiles);
}

TEST(SsaFourStep, SpectrumDomainRoundTripsWithFourStepEngine) {
  ssa::SsaParams params = ssa::SsaParams::for_bits(1024, ssa::kResidentHeadroomBits);
  params.four_step = ssa::FourStepMode::kAlways;
  ASSERT_TRUE(params.use_four_step());
  ssa::Workspace workspace;
  const ssa::SpectrumDomain domain(params, workspace);

  util::Rng rng(23);
  const BigUInt a = BigUInt::random_bits(rng, 1024);
  const BigUInt b = BigUInt::random_bits(rng, 1024);
  ssa::ResidentSpectrum sa, sb;
  domain.enter(sa, a);
  domain.enter(sb, b);
  ASSERT_TRUE(domain.can_multiply(sa, sb));
  ssa::ResidentSpectrum product;
  domain.multiply(product, sa, sb);

  // Lazy accumulate twice, then leave: 2ab, exactly.
  ssa::ResidentSpectrum acc;
  ASSERT_TRUE(domain.can_accumulate(acc, product));
  domain.accumulate(acc, product);
  ASSERT_TRUE(domain.can_accumulate(acc, product));
  domain.accumulate(acc, product);
  BigUInt materialized;
  domain.leave(materialized, acc);
  const BigUInt ab = bigint::mul_schoolbook(a, b);
  EXPECT_EQ(materialized, ab + ab);
}

TEST(SsaFourStep, SpectrumCacheSeparatesLayouts) {
  // The four-step and monolithic radix-2 spectra share Engine::kRadix2Fast
  // but are layout-incompatible: the cache must never serve one for the
  // other.
  ssa::SsaParams four = ssa::SsaParams::for_bits(1024);
  four.four_step = ssa::FourStepMode::kAlways;
  ssa::SsaParams mono = four;
  mono.four_step = ssa::FourStepMode::kNever;
  ASSERT_NE(four.spectral_layout(), mono.spectral_layout());

  util::Rng rng(29);
  const BigUInt a = BigUInt::random_bits(rng, 1024);
  ssa::ConcurrentSpectrumCache cache;
  u64 transforms = 0;
  const auto forward = [&](const BigUInt&) {
    ++transforms;
    return FpVec(four.transform_size, fp::kOne);
  };
  (void)cache.get_or_compute(a, four, forward);
  (void)cache.get_or_compute(a, mono, forward);
  EXPECT_EQ(transforms, 2u);  // layout mismatch => no cross-serving
  EXPECT_EQ(cache.size(), 2u);
  (void)cache.get_or_compute(a, four, forward);
  EXPECT_EQ(transforms, 2u);  // same layout still hits
}

}  // namespace
}  // namespace hemul::ntt
