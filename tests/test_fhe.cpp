#include <gtest/gtest.h>

#include "bigint/mul.hpp"
#include "fhe/dghv.hpp"
#include "util/rng.hpp"

namespace hemul::fhe {
namespace {

TEST(DghvParams, PresetsValidate) {
  EXPECT_NO_THROW(DghvParams::toy().validate());
  EXPECT_NO_THROW(DghvParams::medium().validate());
  EXPECT_NO_THROW(DghvParams::small_paper().validate());
}

TEST(DghvParams, PaperSettingUsesAcceleratorOperandSize) {
  // The whole point of the workload: ciphertexts are 786,432-bit integers.
  EXPECT_EQ(DghvParams::small_paper().gamma, 786432u);
}

TEST(DghvParams, ValidationCatchesBadConfigs) {
  DghvParams p = DghvParams::toy();
  p.tau = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = DghvParams::toy();
  p.eta = p.gamma;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = DghvParams::toy();
  p.rho = p.eta;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Dghv, KeyGenerationStructure) {
  const Dghv scheme(DghvParams::toy(), 1);
  const auto& pk = scheme.public_key();
  EXPECT_EQ(pk.x.size(), DghvParams::toy().tau);
  EXPECT_TRUE(pk.x0.is_odd());
  EXPECT_EQ(pk.x0.bit_length(), DghvParams::toy().gamma);
  EXPECT_TRUE(scheme.secret_key().is_odd());
  EXPECT_EQ(scheme.secret_key().bit_length(), DghvParams::toy().eta);
  // x0 is an exact multiple of p (CMNT variant).
  EXPECT_TRUE((pk.x0 % scheme.secret_key()).is_zero());
}

class DghvRoundTrip : public ::testing::TestWithParam<u64> {};

TEST_P(DghvRoundTrip, EncryptDecrypt) {
  Dghv scheme(DghvParams::toy(), GetParam());
  for (int i = 0; i < 20; ++i) {
    const bool m = (i % 2) == 0;
    const Ciphertext c = scheme.encrypt(m);
    EXPECT_EQ(scheme.decrypt(c), m);
    EXPECT_LT(c.value, scheme.public_key().x0);
  }
}

TEST_P(DghvRoundTrip, CiphertextsAreRandomized) {
  Dghv scheme(DghvParams::toy(), GetParam() ^ 0xAA);
  const Ciphertext c1 = scheme.encrypt(true);
  const Ciphertext c2 = scheme.encrypt(true);
  EXPECT_NE(c1.value, c2.value);  // fresh randomness per encryption
}

INSTANTIATE_TEST_SUITE_P(Seeds, DghvRoundTrip, ::testing::Values(1, 2, 3, 99));

TEST(Dghv, HomomorphicXor) {
  Dghv scheme(DghvParams::toy(), 7);
  for (const bool a : {false, true}) {
    for (const bool b : {false, true}) {
      const Ciphertext ca = scheme.encrypt(a);
      const Ciphertext cb = scheme.encrypt(b);
      EXPECT_EQ(scheme.decrypt(scheme.add(ca, cb)), a != b) << a << " " << b;
    }
  }
}

TEST(Dghv, HomomorphicAnd) {
  Dghv scheme(DghvParams::toy(), 8);
  for (const bool a : {false, true}) {
    for (const bool b : {false, true}) {
      const Ciphertext ca = scheme.encrypt(a);
      const Ciphertext cb = scheme.encrypt(b);
      EXPECT_EQ(scheme.decrypt(scheme.multiply(ca, cb)), a && b) << a << " " << b;
    }
  }
}

TEST(Dghv, CompositeCircuit) {
  // Majority-of-three: maj(a,b,c) = ab ^ bc ^ ca.
  Dghv scheme(DghvParams::toy(), 9);
  for (int bits = 0; bits < 8; ++bits) {
    const bool a = bits & 1;
    const bool b = bits & 2;
    const bool c = bits & 4;
    const Ciphertext ca = scheme.encrypt(a);
    const Ciphertext cb = scheme.encrypt(b);
    const Ciphertext cc = scheme.encrypt(c);
    const Ciphertext result = scheme.add(
        scheme.add(scheme.multiply(ca, cb), scheme.multiply(cb, cc)),
        scheme.multiply(cc, ca));
    const bool expected = (a && b) != ((b && c) != (c && a));
    EXPECT_EQ(scheme.decrypt(result), expected) << bits;
  }
}

TEST(Dghv, NoiseGrowthTrackedAndBounded) {
  Dghv scheme(DghvParams::toy(), 10);
  Ciphertext c = scheme.encrypt(true);
  const double fresh = c.noise_bits;
  EXPECT_GE(static_cast<double>(scheme.measured_noise_bits(c)), 1.0);
  EXPECT_LE(static_cast<double>(scheme.measured_noise_bits(c)), fresh + 1);

  // Multiply until the model says stop; decryption must stay correct.
  const unsigned depth = NoiseModel::max_mult_depth(scheme.params());
  EXPECT_GE(depth, 2u);
  for (unsigned level = 0; level < depth; ++level) {
    c = scheme.multiply(c, c);  // squaring: plaintext stays 1
    EXPECT_TRUE(NoiseModel::decryptable(scheme.params(), c.noise_bits));
    EXPECT_TRUE(scheme.decrypt(c)) << "level " << level;
    EXPECT_LE(static_cast<double>(scheme.measured_noise_bits(c)), c.noise_bits + 1);
  }
}

TEST(Dghv, NoiseModelAlgebra) {
  EXPECT_DOUBLE_EQ(NoiseModel::after_add(10, 12), 13.0);
  EXPECT_DOUBLE_EQ(NoiseModel::after_mult(10, 12), 23.0);
  EXPECT_TRUE(NoiseModel::decryptable(DghvParams::toy(), 100.0));
  EXPECT_FALSE(NoiseModel::decryptable(DghvParams::toy(), 126.5));
}

TEST(Dghv, CustomMultiplierBackend) {
  Dghv scheme(DghvParams::toy(), 11);
  unsigned calls = 0;
  scheme.set_backend(std::make_shared<backend::FunctionBackend>(
      [&calls](const bigint::BigUInt& a, const bigint::BigUInt& b) {
        ++calls;
        return bigint::mul_schoolbook(a, b);
      }));
  const Ciphertext ca = scheme.encrypt(true);
  const Ciphertext cb = scheme.encrypt(true);
  EXPECT_TRUE(scheme.decrypt(scheme.multiply(ca, cb)));
  EXPECT_EQ(calls, 1u);
}

TEST(Dghv, MediumParametersWork) {
  Dghv scheme(DghvParams::medium(), 12);
  const Ciphertext ca = scheme.encrypt(true);
  const Ciphertext cb = scheme.encrypt(false);
  EXPECT_TRUE(scheme.decrypt(ca));
  EXPECT_FALSE(scheme.decrypt(cb));
  EXPECT_FALSE(scheme.decrypt(scheme.multiply(ca, cb)));
  EXPECT_TRUE(scheme.decrypt(scheme.add(ca, cb)));
}

TEST(Dghv, DeterministicForSeed) {
  Dghv s1(DghvParams::toy(), 42);
  Dghv s2(DghvParams::toy(), 42);
  EXPECT_EQ(s1.public_key().x0, s2.public_key().x0);
  EXPECT_EQ(s1.encrypt(true).value, s2.encrypt(true).value);
}

}  // namespace
}  // namespace hemul::fhe
