#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "backend/registry.hpp"
#include "bigint/mul.hpp"
#include "core/accelerator.hpp"
#include "core/scheduler.hpp"
#include "fhe/circuits.hpp"
#include "fhe/dghv.hpp"
#include "util/rng.hpp"

namespace hemul::core {
namespace {

using bigint::BigUInt;

Config config_for(std::string backend_name, unsigned workers) {
  Config config;
  config.backend_name = std::move(backend_name);
  config.num_workers = workers;
  return config;
}

std::vector<backend::MulJob> shared_operand_jobs(util::Rng& rng, std::size_t n,
                                                 std::size_t bits) {
  const BigUInt a = BigUInt::random_bits(rng, bits);
  std::vector<backend::MulJob> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs.emplace_back(a, BigUInt::random_bits(rng, bits));
  }
  return jobs;
}

TEST(Scheduler, MatchesSerialExecutionAcrossRegisteredBackends) {
  util::Rng rng(0x5EDC);
  for (const std::string& name : backend::Registry::instance().names()) {
    // The simulated accelerator runs the full 64K-point pipeline per
    // product, so it gets a smaller batch.
    const std::size_t jobs_n = name == "hw" ? 2 : 6;
    const std::size_t bits = name == "hw" ? 30000 : 2500;

    std::vector<backend::MulJob> jobs;
    for (std::size_t i = 0; i < jobs_n; ++i) {
      jobs.emplace_back(BigUInt::random_bits(rng, bits), BigUInt::random_bits(rng, bits));
    }

    Scheduler scheduler(config_for(name, 3));
    EXPECT_EQ(scheduler.num_workers(), 3u) << name;
    std::vector<std::future<BigUInt>> futures = scheduler.submit_batch(jobs);

    const auto serial = backend::make_backend(name);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_EQ(futures[i].get(), serial->multiply(jobs[i].first, jobs[i].second))
          << name << " job " << i;
    }
  }
}

TEST(Scheduler, DeterministicAcrossWorkerCounts) {
  util::Rng rng(0xDE7E);
  const std::vector<backend::MulJob> jobs = shared_operand_jobs(rng, 8, 4000);
  std::vector<BigUInt> expected;
  for (const auto& [a, b] : jobs) expected.push_back(bigint::mul_schoolbook(a, b));

  const unsigned hc = std::max(1u, std::thread::hardware_concurrency());
  for (const unsigned workers : {1u, 4u, hc}) {
    Scheduler scheduler(config_for("ssa", workers));
    std::vector<std::future<BigUInt>> futures = scheduler.submit_batch(jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_EQ(futures[i].get(), expected[i]) << workers << " workers, job " << i;
    }
  }
}

TEST(Scheduler, SquareAndGenericJobsRunOnLaneBackends) {
  util::Rng rng(0x50AE);
  const BigUInt a = BigUInt::random_bits(rng, 3000);
  const BigUInt b = BigUInt::random_bits(rng, 3000);

  Scheduler scheduler(config_for("ssa", 2));
  std::future<BigUInt> square = scheduler.submit_square(a);
  // A "circuit" job: two dependent products evaluated inside one job.
  std::future<BigUInt> chained = scheduler.submit([a, b](backend::MultiplierBackend& lane) {
    return lane.multiply(lane.multiply(a, b), b);
  });

  EXPECT_EQ(square.get(), bigint::mul_schoolbook(a, a));
  EXPECT_EQ(chained.get(),
            bigint::mul_schoolbook(bigint::mul_schoolbook(a, b), b));
}

TEST(Scheduler, SharedSpectrumCacheExactAccountingSingleLane) {
  util::Rng rng(0xCAC4);
  constexpr std::size_t kJobs = 6;
  const std::vector<backend::MulJob> jobs = shared_operand_jobs(rng, kJobs, 8000);

  Scheduler scheduler(config_for("ssa", 1));
  std::vector<std::future<BigUInt>> futures = scheduler.submit_batch(jobs);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(futures[i].get(), bigint::mul_schoolbook(jobs[i].first, jobs[i].second));
  }
  scheduler.wait_idle();

  // One lane executes sequentially: the shared operand is transformed once
  // (kJobs - 1 hits), every other operand once (kJobs + 1 misses total).
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.cache.misses, kJobs + 1);
  EXPECT_EQ(stats.cache.hits, kJobs - 1);
  EXPECT_EQ(scheduler.spectrum_cache().size(), kJobs + 1);
}

TEST(Scheduler, SharedSpectrumCacheBoundsUnderConcurrency) {
  util::Rng rng(0xCAC8);
  constexpr std::size_t kJobs = 12;
  const std::vector<backend::MulJob> jobs = shared_operand_jobs(rng, kJobs, 6000);

  Scheduler scheduler(config_for("ssa", 4));
  std::vector<std::future<BigUInt>> futures = scheduler.submit_batch(jobs);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(futures[i].get(), bigint::mul_schoolbook(jobs[i].first, jobs[i].second));
  }
  scheduler.wait_idle();

  // Every job looks up two spectra. Racing lanes may duplicate a cold
  // transform (extra misses) but never invent lookups, and at least the
  // kJobs + 1 distinct operands must each miss once.
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, 2 * kJobs);
  EXPECT_GE(stats.cache.misses, kJobs + 1);
  EXPECT_EQ(scheduler.spectrum_cache().size(), kJobs + 1);
}

TEST(Scheduler, StressManySmallJobsAcrossAllLanes) {
  util::Rng rng(0x57E5);
  constexpr std::size_t kJobs = 64;
  std::vector<backend::MulJob> jobs;
  for (std::size_t i = 0; i < kJobs; ++i) {
    jobs.emplace_back(BigUInt::random_bits(rng, 1500), BigUInt::random_bits(rng, 1500));
  }

  Scheduler scheduler(config_for("ssa", 0));  // one lane per hardware thread
  EXPECT_GE(scheduler.num_workers(), 1u);
  std::vector<std::future<BigUInt>> futures = scheduler.submit_batch(jobs);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(futures[i].get(), bigint::mul_schoolbook(jobs[i].first, jobs[i].second))
        << "job " << i;
  }
  scheduler.wait_idle();

  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, kJobs);
  EXPECT_EQ(stats.completed, kJobs);
  u64 lane_jobs = 0;
  for (const LaneStats& lane : stats.lanes) lane_jobs += lane.jobs;
  EXPECT_EQ(lane_jobs, kJobs);
  EXPECT_EQ(stats.lanes.size(), scheduler.num_workers());
}

TEST(Scheduler, JobExceptionPropagatesThroughFutureAndLanesSurvive) {
  Scheduler scheduler(config_for("classical", 2));
  std::future<BigUInt> failing = scheduler.submit(
      [](backend::MultiplierBackend&) -> BigUInt { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)failing.get(), std::runtime_error);

  // The lane that ran the throwing job keeps serving.
  std::future<BigUInt> ok = scheduler.submit_multiply(BigUInt{6}, BigUInt{7});
  EXPECT_EQ(ok.get(), BigUInt{42});
}

TEST(Scheduler, HwLanesAccumulateModeledCycles) {
  util::Rng rng(0x4A1C);
  const BigUInt a = BigUInt::random_bits(rng, 20000);
  const BigUInt b = BigUInt::random_bits(rng, 20000);

  Scheduler scheduler(config_for("hw", 2));
  EXPECT_EQ(scheduler.submit_multiply(a, b).get(), bigint::mul_karatsuba(a, b));
  scheduler.wait_idle();

  u64 cycles = 0;
  for (const LaneStats& lane : scheduler.stats().lanes) cycles += lane.hw_cycles;
  EXPECT_GT(cycles, 0u);

  // A job that never touches the backend must not re-book the previous
  // report's cycles.
  (void)scheduler.submit([](backend::MultiplierBackend&) { return BigUInt{1}; }).get();
  scheduler.wait_idle();
  u64 cycles_after = 0;
  for (const LaneStats& lane : scheduler.stats().lanes) cycles_after += lane.hw_cycles;
  EXPECT_EQ(cycles_after, cycles);
}

// ---- intra-op tiling (run_tiles) -----------------------------------------

TEST(SchedulerTiles, NestedSubmissionCannotDeadlockAtOneLane) {
  // The caller of run_tiles claims and executes tiles itself, so a job
  // running on the only lane of a 1-lane scheduler -- and tiles that
  // themselves run nested groups -- must complete without any other lane
  // being free. A regression here hangs; the CTest timeout converts that
  // into a failure, and the TSan matrix cell checks the synchronization.
  Scheduler scheduler(config_for("classical", 1));
  std::atomic<u64> inner_runs{0};
  auto done = scheduler.submit([&](backend::MultiplierBackend&) {
    scheduler.run_tiles(8, [&](u64) {
      scheduler.run_tiles(4, [&](u64) { inner_runs.fetch_add(1); });
    });
    return BigUInt(1);
  });
  EXPECT_EQ(done.get(), BigUInt(1));
  EXPECT_EQ(inner_runs.load(), 32u);

  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.tile_groups, 1u + 8u);
  EXPECT_EQ(stats.tiles_executed, 8u + 32u);
}

TEST(SchedulerTiles, EveryTileRunsExactlyOnceAcrossLanes) {
  Scheduler scheduler(config_for("classical", 4));
  constexpr u64 kTiles = 64;
  std::vector<std::atomic<u64>> runs(kTiles);
  // External (non-lane) caller: the calling thread participates alongside
  // the helper tasks the group fans out to the lanes.
  scheduler.run_tiles(kTiles, [&](u64 i) { runs[i].fetch_add(1); });
  for (u64 i = 0; i < kTiles; ++i) EXPECT_EQ(runs[i].load(), 1u) << "tile " << i;

  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.tile_groups, 1u);
  EXPECT_EQ(stats.tiles_executed, kTiles);
}

TEST(SchedulerTiles, HelpersDoNotPerturbJobCounters) {
  // Tile-helper tasks ride the job queue but submitted/completed/jobs
  // describe the caller-visible workload only.
  Scheduler scheduler(config_for("classical", 3));
  constexpr u64 kJobs = 6;
  std::vector<std::future<BigUInt>> futures;
  std::atomic<u64> tiles_run{0};
  for (u64 j = 0; j < kJobs; ++j) {
    futures.push_back(scheduler.submit([&](backend::MultiplierBackend&) {
      scheduler.run_tiles(16, [&](u64) { tiles_run.fetch_add(1); });
      return BigUInt(0);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(tiles_run.load(), kJobs * 16);

  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, kJobs);
  EXPECT_EQ(stats.completed, kJobs);
  u64 lane_jobs = 0, lane_tiles = 0;
  for (const LaneStats& lane : stats.lanes) {
    lane_jobs += lane.jobs;
    lane_tiles += lane.tiles;
  }
  EXPECT_EQ(lane_jobs, kJobs);
  // Every tile ran on a lane thread (callers are lanes, helpers are
  // lanes), so the per-lane attribution covers the group totals exactly.
  EXPECT_EQ(stats.tiles_executed, kJobs * 16);
  EXPECT_EQ(lane_tiles, stats.tiles_executed);
}

TEST(SchedulerTiles, TileExceptionRethrownOnCaller) {
  Scheduler scheduler(config_for("classical", 2));
  EXPECT_THROW(scheduler.run_tiles(8,
                                   [&](u64 i) {
                                     if (i == 3) throw std::runtime_error("tile failed");
                                   }),
               std::runtime_error);
  // The group drained despite the exception; the scheduler stays usable.
  std::atomic<u64> runs{0};
  scheduler.run_tiles(4, [&](u64) { runs.fetch_add(1); });
  EXPECT_EQ(runs.load(), 4u);
}

TEST(SchedulerTiles, ZeroTilesIsANoOp) {
  Scheduler scheduler(config_for("classical", 1));
  scheduler.run_tiles(0, [&](u64) { FAIL() << "tile ran for an empty group"; });
  EXPECT_EQ(scheduler.stats().tile_groups, 0u);
}

TEST(Config, NumWorkersResolution) {
  Config config;
  EXPECT_GE(config.resolved_num_workers(), 1u);
  config.num_workers = 5;
  EXPECT_EQ(config.resolved_num_workers(), 5u);
}

TEST(Accelerator, SubmitApiMatchesSynchronousMultiply) {
  util::Rng rng(0xACCE);
  Config config = config_for("ssa", 2);
  Accelerator accel(config);

  const BigUInt a = BigUInt::random_bits(rng, 4000);
  const BigUInt b = BigUInt::random_bits(rng, 4000);
  std::future<BigUInt> async_product = accel.submit_multiply(a, b);
  EXPECT_EQ(async_product.get(), accel.multiply(a, b).product);
  EXPECT_EQ(accel.scheduler().num_workers(), 2u);

  std::vector<backend::MulJob> jobs = {{a, b}, {b, a}, {a, a}};
  std::vector<std::future<BigUInt>> futures = accel.submit_batch(jobs);
  const BigUInt expected = bigint::mul_schoolbook(a, b);
  EXPECT_EQ(futures[0].get(), expected);
  EXPECT_EQ(futures[1].get(), expected);
  EXPECT_EQ(futures[2].get(), bigint::mul_schoolbook(a, a));
}

TEST(Circuits, WordMultiplyFansOutThroughScheduler) {
  fhe::Dghv scheme(fhe::DghvParams::deep(), 11);
  const auto zero = scheme.encrypt(false);
  const fhe::EncryptedInt a = fhe::encrypt_int(scheme, 5, 3);
  const fhe::EncryptedInt b = fhe::encrypt_int(scheme, 6, 3);

  // Serial reference on the same explicit engine.
  fhe::Circuits serial(scheme, backend::make_backend("classical"));
  const fhe::EncryptedInt expected = serial.multiply(a, b, zero);

  Scheduler scheduler(config_for("classical", 3));
  fhe::Circuits concurrent(scheme, scheduler);
  const fhe::EncryptedInt product = concurrent.multiply(a, b, zero);

  EXPECT_EQ(fhe::decrypt_int(scheme, product), 30u);
  EXPECT_EQ(concurrent.and_gates_used(), serial.and_gates_used());
  ASSERT_EQ(product.size(), expected.size());
  for (std::size_t i = 0; i < product.size(); ++i) {
    EXPECT_EQ(product[i].value, expected[i].value) << "bit " << i;
  }

  // gate_and_batch also routes through the scheduler.
  const std::vector<std::pair<fhe::Ciphertext, fhe::Ciphertext>> pairs = {
      {a[0], b[0]}, {a[1], b[1]}};
  const std::vector<fhe::Ciphertext> anded = concurrent.gate_and_batch(pairs);
  ASSERT_EQ(anded.size(), 2u);
  EXPECT_EQ(scheme.decrypt(anded[0]), scheme.decrypt(a[0]) && scheme.decrypt(b[0]));
  EXPECT_EQ(scheme.decrypt(anded[1]), scheme.decrypt(a[1]) && scheme.decrypt(b[1]));
}

}  // namespace
}  // namespace hemul::core
