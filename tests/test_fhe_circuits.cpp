#include <gtest/gtest.h>

#include "fhe/circuits.hpp"

namespace hemul::fhe {
namespace {

class CircuitsTest : public ::testing::Test {
 protected:
  CircuitsTest() : scheme_(DghvParams::toy(), 77), circuits_(scheme_) {}

  Dghv scheme_;
  Circuits circuits_;
};

TEST_F(CircuitsTest, AllTwoInputGates) {
  const Ciphertext one = scheme_.encrypt(true);
  for (const bool a : {false, true}) {
    for (const bool b : {false, true}) {
      const Ciphertext ca = scheme_.encrypt(a);
      const Ciphertext cb = scheme_.encrypt(b);
      EXPECT_EQ(scheme_.decrypt(circuits_.gate_xor(ca, cb)), a != b);
      EXPECT_EQ(scheme_.decrypt(circuits_.gate_and(ca, cb)), a && b);
      EXPECT_EQ(scheme_.decrypt(circuits_.gate_or(ca, cb)), a || b);
      EXPECT_EQ(scheme_.decrypt(circuits_.gate_not(ca, one)), !a);
    }
  }
}

TEST_F(CircuitsTest, MajorityGate) {
  for (int bits = 0; bits < 8; ++bits) {
    const bool a = bits & 1;
    const bool b = bits & 2;
    const bool c = bits & 4;
    const Ciphertext r = circuits_.gate_maj(scheme_.encrypt(a), scheme_.encrypt(b),
                                            scheme_.encrypt(c));
    EXPECT_EQ(scheme_.decrypt(r), (a + b + c) >= 2) << bits;
  }
}

TEST_F(CircuitsTest, EncryptDecryptIntRoundTrip) {
  for (const u64 v : {0ULL, 1ULL, 5ULL, 10ULL, 15ULL}) {
    EXPECT_EQ(decrypt_int(scheme_, encrypt_int(scheme_, v, 4)), v);
  }
  // Width truncates.
  EXPECT_EQ(decrypt_int(scheme_, encrypt_int(scheme_, 0xFF, 4)), 0xFu);
}

TEST_F(CircuitsTest, RippleCarryAdder) {
  const Ciphertext zero = scheme_.encrypt(false);
  for (auto [x, y] : {std::pair{3u, 2u}, {7u, 9u}, {15u, 15u}, {0u, 0u}, {8u, 8u}}) {
    const EncryptedInt cx = encrypt_int(scheme_, x, 4);
    const EncryptedInt cy = encrypt_int(scheme_, y, 4);
    const auto r = circuits_.add(cx, cy, zero);
    const u64 sum = decrypt_int(scheme_, r.sum) | (scheme_.decrypt(r.carry_out) ? 16u : 0u);
    EXPECT_EQ(sum, x + y) << x << "+" << y;
  }
}

TEST_F(CircuitsTest, AdderUsesTwoMultsPerBit) {
  const Ciphertext zero = scheme_.encrypt(false);
  const EncryptedInt a = encrypt_int(scheme_, 5, 4);
  const EncryptedInt b = encrypt_int(scheme_, 6, 4);
  const u64 before = circuits_.and_gates_used();
  (void)circuits_.add(a, b, zero);
  EXPECT_EQ(circuits_.and_gates_used() - before, 8u);  // 2 per bit x 4 bits
}

TEST_F(CircuitsTest, EqualityComparator) {
  const Ciphertext one = scheme_.encrypt(true);
  const EncryptedInt a = encrypt_int(scheme_, 11, 4);
  const EncryptedInt same = encrypt_int(scheme_, 11, 4);
  const EncryptedInt differs = encrypt_int(scheme_, 10, 4);
  EXPECT_TRUE(scheme_.decrypt(circuits_.equals(a, same, one)));
  EXPECT_FALSE(scheme_.decrypt(circuits_.equals(a, differs, one)));
}

TEST(CircuitsDeep, EncryptedMultiplier) {
  // The word-level multiplier stacks ripple-carry adders, so its
  // multiplicative depth (~9 levels for 2x2 bits) exceeds the toy noise
  // budget; the deep() preset provides eta = 8192 bits of headroom.
  Dghv scheme(DghvParams::deep(), 88);
  Circuits circuits(scheme);
  const Ciphertext zero = scheme.encrypt(false);
  for (auto [x, y] : {std::pair{3u, 2u}, {3u, 3u}, {0u, 2u}, {1u, 3u}}) {
    const EncryptedInt cx = encrypt_int(scheme, x, 2);
    const EncryptedInt cy = encrypt_int(scheme, y, 2);
    const EncryptedInt product = circuits.multiply(cx, cy, zero);
    EXPECT_EQ(decrypt_int(scheme, product), x * y) << x << "*" << y;
  }
}

TEST_F(CircuitsTest, WidthMismatchRejected) {
  const Ciphertext zero = scheme_.encrypt(false);
  const Ciphertext one = scheme_.encrypt(true);
  const EncryptedInt a = encrypt_int(scheme_, 1, 4);
  const EncryptedInt b = encrypt_int(scheme_, 1, 3);
  EXPECT_THROW((void)circuits_.add(a, b, zero), std::logic_error);
  EXPECT_THROW((void)circuits_.equals(a, b, one), std::logic_error);
}

}  // namespace
}  // namespace hemul::fhe
