// End-to-end integration tests: the golden chain (schoolbook -> Karatsuba ->
// SSA -> simulated accelerator) and the full HE-on-accelerator scenario the
// paper motivates.

#include <gtest/gtest.h>

#include "bigint/mul.hpp"
#include "core/accelerator.hpp"
#include "fhe/dghv.hpp"
#include "ssa/multiply.hpp"
#include "util/rng.hpp"

namespace hemul {
namespace {

using bigint::BigUInt;

TEST(GoldenChain, AllMultipliersAgreeAtPaperScale) {
  util::Rng rng(1);
  const BigUInt a = BigUInt::random_bits(rng, 786432);
  const BigUInt b = BigUInt::random_bits(rng, 786432);

  const BigUInt karatsuba = bigint::mul_karatsuba(a, b);
  const BigUInt toom = bigint::mul_toom3(a, b);
  const BigUInt ssa_result = ssa::multiply(a, b, ssa::SsaParams::paper());

  core::Accelerator accel;
  const BigUInt hw_result = accel.multiply(a, b).product;

  EXPECT_EQ(karatsuba, toom);
  EXPECT_EQ(karatsuba, ssa_result);
  EXPECT_EQ(karatsuba, hw_result);
}

TEST(GoldenChain, RandomSizeSweep) {
  util::Rng rng(2);
  for (const std::size_t bits : {1000u, 12345u, 99991u}) {
    const BigUInt a = BigUInt::random_bits(rng, bits);
    const BigUInt b = BigUInt::random_bits(rng, bits / 2 + 1);
    const BigUInt expected = bigint::mul_karatsuba(a, b);
    EXPECT_EQ(ssa::mul_ssa(a, b), expected) << bits;
  }
}

TEST(HeOnAccelerator, CiphertextMultiplicationThroughSimulatedHardware) {
  // The paper's end-to-end story: DGHV homomorphic AND, with the gamma-bit
  // ciphertext product executed by the simulated accelerator.
  fhe::Dghv scheme(fhe::DghvParams::medium(), 3);

  auto accel = std::make_shared<core::Accelerator>();
  unsigned accelerated_products = 0;
  scheme.set_backend(std::make_shared<backend::FunctionBackend>(
      [accel, &accelerated_products](const BigUInt& a, const BigUInt& b) {
        ++accelerated_products;
        return accel->multiply(a, b).product;
      },
      "accelerator"));

  for (const bool x : {false, true}) {
    for (const bool y : {false, true}) {
      const auto cx = scheme.encrypt(x);
      const auto cy = scheme.encrypt(y);
      EXPECT_EQ(scheme.decrypt(scheme.multiply(cx, cy)), x && y);
    }
  }
  EXPECT_EQ(accelerated_products, 4u);
}

TEST(HeOnAccelerator, TimingReportForCiphertextProduct) {
  // One homomorphic multiplication = one accelerator run = ~122.88 us of
  // modeled hardware time, regardless of how long the simulation takes.
  fhe::Dghv scheme(fhe::DghvParams::medium(), 4);
  core::Accelerator accel;

  const auto c1 = scheme.encrypt(true);
  const auto c2 = scheme.encrypt(true);
  const auto result = accel.multiply(c1.value, c2.value);
  ASSERT_TRUE(result.hw_report.has_value());
  EXPECT_NEAR(result.hw_report->total_time_us(), 122.88, 0.01);

  // And the product is usable as a ciphertext after reduction mod x0.
  fhe::Ciphertext product{result.product % scheme.public_key().x0,
                          fhe::NoiseModel::after_mult(c1.noise_bits, c2.noise_bits)};
  EXPECT_TRUE(scheme.decrypt(product));
}

TEST(Consistency, SimulatedCyclesMatchAnalyticModelAcrossConfigs) {
  // The cycle-accurate simulation and the closed-form Section V model must
  // agree for every legal PE count of the paper plan.
  for (const unsigned pes : {1u, 2u, 4u}) {
    core::Config config = core::Config::paper();
    config.hardware.ntt.num_pes = pes;
    core::Accelerator accel(config);

    util::Rng rng(pes);
    fp::FpVec data(65536);
    for (auto& x : data) x = fp::Fp{rng.next()};
    hw::NttRunReport report;
    (void)accel.ntt_forward(data, &report);
    EXPECT_EQ(report.total_cycles, accel.performance().fft_cycles) << pes;
  }
}

}  // namespace
}  // namespace hemul
