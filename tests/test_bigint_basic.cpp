#include <gtest/gtest.h>

#include "bigint/biguint.hpp"
#include "bigint/mul.hpp"
#include "util/rng.hpp"

namespace hemul::bigint {
namespace {

TEST(BigUIntBasics, ZeroRepresentation) {
  const BigUInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.limb_count(), 0u);
  EXPECT_EQ(z.to_hex(), "0");
  EXPECT_EQ(z.to_dec(), "0");
  EXPECT_EQ(BigUInt{0}, z);
}

TEST(BigUIntBasics, FromLimbsTrimsTrailingZeros) {
  const BigUInt x = BigUInt::from_limbs({5, 0, 0});
  EXPECT_EQ(x.limb_count(), 1u);
  EXPECT_EQ(x, BigUInt{5});
}

TEST(BigUIntBasics, BitLength) {
  EXPECT_EQ(BigUInt{1}.bit_length(), 1u);
  EXPECT_EQ(BigUInt{255}.bit_length(), 8u);
  EXPECT_EQ(BigUInt{256}.bit_length(), 9u);
  EXPECT_EQ(BigUInt::pow2(64).bit_length(), 65u);
  EXPECT_EQ(BigUInt::pow2(786431).bit_length(), 786432u);
}

TEST(BigUIntBasics, BitAccess) {
  const BigUInt x = BigUInt::from_hex("8000000000000001");
  EXPECT_TRUE(x.bit(0));
  EXPECT_FALSE(x.bit(1));
  EXPECT_TRUE(x.bit(63));
  EXPECT_FALSE(x.bit(64));
  EXPECT_FALSE(x.bit(100000));
}

TEST(BigUIntBasics, Comparisons) {
  const BigUInt a{10};
  const BigUInt b{20};
  const BigUInt c = BigUInt::pow2(64);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_GT(c, a);
  EXPECT_EQ(a, BigUInt{10});
  EXPECT_NE(a, b);
}

TEST(BigUIntBasics, ToU64) {
  EXPECT_EQ(BigUInt{12345}.to_u64(), 12345u);
  EXPECT_EQ(BigUInt{}.to_u64(), 0u);
  EXPECT_THROW((void)BigUInt::pow2(64).to_u64(), std::overflow_error);
}

TEST(BigUIntAdd, CarriesAcrossLimbs) {
  const BigUInt max64 = BigUInt::from_hex("ffffffffffffffff");
  EXPECT_EQ(max64 + BigUInt{1}, BigUInt::pow2(64));
  const BigUInt max128 = BigUInt::from_hex("ffffffffffffffffffffffffffffffff");
  EXPECT_EQ(max128 + BigUInt{1}, BigUInt::pow2(128));
}

TEST(BigUIntSub, BorrowsAcrossLimbs) {
  EXPECT_EQ(BigUInt::pow2(128) - BigUInt{1},
            BigUInt::from_hex("ffffffffffffffffffffffffffffffff"));
  EXPECT_EQ(BigUInt{5} - BigUInt{5}, BigUInt{});
}

TEST(BigUIntSub, ThrowsOnUnderflow) {
  EXPECT_THROW(BigUInt{1} - BigUInt{2}, std::underflow_error);
}

TEST(BigUIntShift, LeftThenRightRoundTrips) {
  util::Rng rng(3);
  const BigUInt x = BigUInt::random_bits(rng, 300);
  for (const std::size_t s : {0u, 1u, 63u, 64u, 65u, 128u, 191u}) {
    EXPECT_EQ((x << s) >> s, x) << "shift " << s;
  }
}

TEST(BigUIntShift, ShiftEqualsPow2Multiply) {
  util::Rng rng(4);
  const BigUInt x = BigUInt::random_bits(rng, 200);
  EXPECT_EQ(x << 5, mul_schoolbook(x, BigUInt{32}));
  EXPECT_EQ(x << 64, mul_schoolbook(x, BigUInt::pow2(64)));
}

TEST(BigUIntShift, RightShiftBelowZeroBits) {
  EXPECT_EQ(BigUInt{5} >> 3, BigUInt{});
  EXPECT_EQ(BigUInt{5} >> 100, BigUInt{});
}

TEST(BigUIntHex, RoundTrip) {
  const char* cases[] = {"0", "1", "f", "deadbeef", "123456789abcdef0123456789abcdef"};
  for (const char* c : cases) {
    EXPECT_EQ(BigUInt::from_hex(c).to_hex(), c);
  }
}

TEST(BigUIntHex, RejectsInvalid) {
  EXPECT_THROW(BigUInt::from_hex(""), std::invalid_argument);
  EXPECT_THROW(BigUInt::from_hex("xyz"), std::invalid_argument);
}

TEST(BigUIntDec, KnownValues) {
  EXPECT_EQ(BigUInt{12345}.to_dec(), "12345");
  EXPECT_EQ(BigUInt::from_dec("340282366920938463463374607431768211456"),
            BigUInt::pow2(128));
  EXPECT_EQ(BigUInt::pow2(128).to_dec(), "340282366920938463463374607431768211456");
}

TEST(BigUIntDec, RoundTripRandom) {
  util::Rng rng(5);
  for (const std::size_t bits : {1u, 64u, 65u, 300u, 1000u}) {
    const BigUInt x = BigUInt::random_bits(rng, bits);
    EXPECT_EQ(BigUInt::from_dec(x.to_dec()), x);
  }
}

TEST(BigUIntDec, RejectsInvalid) {
  EXPECT_THROW(BigUInt::from_dec(""), std::invalid_argument);
  EXPECT_THROW(BigUInt::from_dec("12a"), std::invalid_argument);
}

TEST(BigUIntRandom, ExactBitLength) {
  util::Rng rng(6);
  for (const std::size_t bits : {1u, 2u, 63u, 64u, 65u, 1000u, 786432u}) {
    EXPECT_EQ(BigUInt::random_bits(rng, bits).bit_length(), bits);
  }
}

TEST(BigUIntRandom, BelowStaysBelow) {
  util::Rng rng(7);
  const BigUInt bound = BigUInt::from_hex("100000000000000000001");
  for (int i = 0; i < 50; ++i) {
    EXPECT_LT(BigUInt::random_below(rng, bound), bound);
  }
}

class AddSubProperties : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AddSubProperties, AlgebraHolds) {
  util::Rng rng(GetParam());
  const std::size_t bits = GetParam() * 97 + 5;
  for (int i = 0; i < 30; ++i) {
    const BigUInt a = BigUInt::random_bits(rng, bits);
    const BigUInt b = BigUInt::random_bits(rng, bits / 2 + 1);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a + b) - a, b);
    EXPECT_EQ(a - a, BigUInt{});
    EXPECT_GE(a + b, a);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AddSubProperties, ::testing::Values(1, 2, 5, 13, 29));

}  // namespace
}  // namespace hemul::bigint
