#include <gtest/gtest.h>

#include "fp/fp64.hpp"
#include "fp/normalize.hpp"
#include "fp/roots.hpp"
#include "util/rng.hpp"

namespace hemul::fp {
namespace {

/// Slow-but-obviously-correct reference: reduce via u128 modulo.
u64 ref_mod(u128 x) { return static_cast<u64>(x % kModulus); }

TEST(FpBasics, CanonicalConstruction) {
  EXPECT_EQ(Fp{0}.value(), 0u);
  EXPECT_EQ(Fp{kModulus}.value(), 0u);
  EXPECT_EQ(Fp{kModulus + 1}.value(), 1u);
  EXPECT_EQ(Fp{~0ULL}.value(), ~0ULL - kModulus);
}

TEST(FpBasics, Reduce128EdgeCases) {
  EXPECT_EQ(reduce128(0), 0u);
  EXPECT_EQ(reduce128(kModulus), 0u);
  EXPECT_EQ(reduce128(u128{kModulus} * kModulus), 0u);
  // 2^64 = 2^32 - 1 (mod p)
  EXPECT_EQ(reduce128(u128{1} << 64), kEpsilon);
  // 2^96 = -1 (mod p)
  EXPECT_EQ(reduce128(u128{1} << 96), kModulus - 1);
  // Largest 128-bit value.
  const u128 all_ones = ~u128{0};
  EXPECT_EQ(reduce128(all_ones), ref_mod(all_ones));
}

TEST(FpBasics, SolinasIdentities) {
  // The two identities the whole datapath is built on.
  EXPECT_EQ(kTwo.pow(96), Fp::from_canonical(kModulus - 1));  // 2^96 = -1
  EXPECT_EQ(kTwo.pow(192), kOne);                             // 2^192 = 1
  // 8 is a 64th root of unity: 8^64 = 2^192 = 1.
  EXPECT_EQ(kOmega64.pow(64), kOne);
  EXPECT_TRUE(has_order(kOmega64, 64));
}

TEST(FpBasics, AddSubEdges) {
  const Fp pm1 = Fp::from_canonical(kModulus - 1);
  EXPECT_EQ((pm1 + kOne).value(), 0u);
  EXPECT_EQ((pm1 + pm1).value(), kModulus - 2);
  EXPECT_EQ((kZero - kOne), pm1);
  EXPECT_EQ(pm1.neg(), kOne);
  EXPECT_EQ(kZero.neg(), kZero);
}

TEST(FpBasics, PowAndInverse) {
  const Fp a = Fp::from_canonical(123456789);
  EXPECT_EQ(a.pow(0), kOne);
  EXPECT_EQ(a.pow(1), a);
  EXPECT_EQ(a.pow(2), a * a);
  EXPECT_EQ(a * a.inv(), kOne);
  EXPECT_EQ(kOne.inv(), kOne);
}

// ---------------------------------------------------------------------------
// Property sweeps over random field values.
// ---------------------------------------------------------------------------

class FpAxioms : public ::testing::TestWithParam<u64> {};

TEST_P(FpAxioms, RingLaws) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Fp a{rng.next()};
    const Fp b{rng.next()};
    const Fp c{rng.next()};
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + kZero, a);
    EXPECT_EQ(a * kOne, a);
    EXPECT_EQ(a - a, kZero);
    EXPECT_EQ(a + a.neg(), kZero);
  }
}

TEST_P(FpAxioms, MulMatchesReference) {
  util::Rng rng(GetParam() ^ 0xABCD);
  for (int i = 0; i < 500; ++i) {
    const u64 a = rng.next() % kModulus;
    const u64 b = rng.next() % kModulus;
    EXPECT_EQ((Fp::from_canonical(a) * Fp::from_canonical(b)).value(),
              ref_mod(mul_wide(a, b)));
  }
}

TEST_P(FpAxioms, InverseLaw) {
  util::Rng rng(GetParam() ^ 0x1111);
  for (int i = 0; i < 50; ++i) {
    const Fp a{rng.next() | 1};  // nonzero
    if (a.is_zero()) continue;
    EXPECT_EQ(a * a.inv(), kOne);
  }
}

TEST_P(FpAxioms, MulPow2MatchesExplicitPower) {
  util::Rng rng(GetParam() ^ 0x2222);
  for (int i = 0; i < 100; ++i) {
    const Fp a{rng.next()};
    const u64 k = rng.below(600);  // deliberately beyond one period (192)
    EXPECT_EQ(a.mul_pow2(k), a * kTwo.pow(k)) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FpAxioms, ::testing::Values(1, 2, 3, 42, 1234567));

// Every shift amount in [0, 192] against the explicit power.
class FpShift : public ::testing::TestWithParam<u64> {};

TEST_P(FpShift, AllShiftAmounts) {
  const u64 k = GetParam();
  util::Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    const Fp a{rng.next()};
    EXPECT_EQ(a.mul_pow2(k), a * kTwo.pow(k));
  }
}

INSTANTIATE_TEST_SUITE_P(Exhaustive, FpShift, ::testing::Range<u64>(0, 193));

// ---------------------------------------------------------------------------
// Eq. 4 normalize + AddMod.
// ---------------------------------------------------------------------------

TEST(Normalize, MatchesReduce128OnEdges) {
  const u128 cases[] = {
      0,
      1,
      u128{kModulus},
      u128{kModulus} - 1,
      (u128{1} << 64),
      (u128{1} << 96),
      (u128{1} << 127),
      ~u128{0},
      u128{kModulus} * kModulus,
  };
  for (const u128 x : cases) {
    EXPECT_EQ(normalize_full(x).value(), reduce128(x));
  }
}

class NormalizeSweep : public ::testing::TestWithParam<u64> {};

TEST_P(NormalizeSweep, RandomAgreesWithReference) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    const u128 x = (u128{rng.next()} << 64) | rng.next();
    EXPECT_EQ(normalize_full(x).value(), ref_mod(x));
  }
}

TEST_P(NormalizeSweep, SingleCorrectionRange) {
  // The paper: "The result will require at most one extra addition or
  // subtraction with the modulus p."
  util::Rng rng(GetParam() ^ 0x77);
  const auto p = static_cast<i128>(kModulus);
  for (int i = 0; i < 1000; ++i) {
    const u128 x = (u128{rng.next()} << 64) | rng.next();
    const i128 v = normalize_eq4(x);
    EXPECT_GT(v, -p);
    EXPECT_LT(v, 2 * p);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizeSweep, ::testing::Values(5, 6, 7));

TEST(Normalize, AddModRejectsOutOfRange) {
  const auto p = static_cast<i128>(kModulus);
  EXPECT_THROW(addmod(2 * p), std::logic_error);
  EXPECT_THROW(addmod(-p), std::logic_error);
  EXPECT_EQ(addmod(2 * p - 1).value(), kModulus - 1);
  EXPECT_EQ(addmod(-p + 1).value(), 1u);
}

// ---------------------------------------------------------------------------
// Roots of unity.
// ---------------------------------------------------------------------------

TEST(Roots, GeneratorHasFullOrder) {
  EXPECT_TRUE(has_order(group_generator(), kModulus - 1));
}

TEST(Roots, PrimitiveRootOrders) {
  for (const u64 n : {2ULL, 4ULL, 8ULL, 64ULL, 1024ULL, 65536ULL, 1ULL << 20, 3ULL, 5ULL, 15ULL}) {
    EXPECT_TRUE(has_order(primitive_root(n), n)) << n;
  }
}

TEST(Roots, PrimitiveRootRejectsNonDivisors) {
  EXPECT_THROW(primitive_root(7), std::invalid_argument);
  EXPECT_THROW(primitive_root(0), std::invalid_argument);
}

class AlignedRoots : public ::testing::TestWithParam<u64> {};

TEST_P(AlignedRoots, AlignsWithOmega64) {
  const u64 n = GetParam();
  const Fp w = aligned_root(n);
  EXPECT_TRUE(has_order(w, n));
  // The defining property: the induced 64-point sub-root is exactly 8, so
  // every radix-64 twiddle is a shift (paper Eq. 3).
  EXPECT_EQ(w.pow(n / 64), kOmega64);
  // Induced 16- and 8-point roots are then powers of two as well.
  EXPECT_EQ(w.pow(n / 16), kTwo.pow(12));
  EXPECT_EQ(w.pow(n / 8), kTwo.pow(24));
}

INSTANTIATE_TEST_SUITE_P(Sizes, AlignedRoots,
                         ::testing::Values(64, 128, 256, 1024, 4096, 65536, 1ULL << 20,
                                           1ULL << 26));

TEST(Roots, AlignedRootRejectsBadSizes) {
  EXPECT_THROW(aligned_root(32), std::invalid_argument);
  EXPECT_THROW(aligned_root(96), std::invalid_argument);
}

TEST(Roots, PowerTable) {
  const Fp w = primitive_root(16);
  const auto table = power_table(w, 16);
  ASSERT_EQ(table.size(), 16u);
  EXPECT_EQ(table[0], kOne);
  for (std::size_t i = 1; i < table.size(); ++i) EXPECT_EQ(table[i], table[i - 1] * w);
}

TEST(Roots, InvOfU64) {
  EXPECT_EQ(Fp{65536} * inv_of_u64(65536), kOne);
  EXPECT_THROW(inv_of_u64(kModulus), std::logic_error);
}

}  // namespace
}  // namespace hemul::fp
