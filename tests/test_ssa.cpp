#include <gtest/gtest.h>

#include "bigint/mul.hpp"
#include "ssa/batch.hpp"
#include "ssa/multiply.hpp"
#include "ssa/pack.hpp"
#include "ssa/params.hpp"
#include "ssa/resident.hpp"
#include "ssa/spectrum_cache.hpp"
#include "ssa/workspace.hpp"
#include "util/rng.hpp"

namespace hemul::ssa {
namespace {

using bigint::BigUInt;
using fp::Fp;
using fp::FpVec;

TEST(SsaParams, PaperConfiguration) {
  const SsaParams p = SsaParams::paper();
  EXPECT_EQ(p.coeff_bits, 24u);
  EXPECT_EQ(p.num_coeffs, 32768u);
  EXPECT_EQ(p.transform_size, 65536u);
  EXPECT_EQ(p.plan.describe(), "64*64*16");
  EXPECT_EQ(p.max_operand_bits(), 786432u);
}

TEST(SsaParams, ForBitsPicksExactConfigurations) {
  for (const std::size_t bits : {1u, 64u, 1000u, 10000u, 100000u, 786432u, 1000000u}) {
    const SsaParams p = SsaParams::for_bits(bits);
    EXPECT_GE(p.max_operand_bits(), bits);
    EXPECT_NO_THROW(p.validate());
  }
  EXPECT_THROW(SsaParams::for_bits(0), std::invalid_argument);
}

TEST(SsaParams, ForBitsHeadroomShrinksTheConvolutionBudget) {
  // Headroom h demands n * (2^m - 1)^2 < p / 2^h: the picked geometry must
  // stay exact with the stricter budget, and enough headroom must force a
  // smaller coefficient width (or larger transform) than the h = 0 pick.
  for (const unsigned headroom : {0u, kResidentHeadroomBits, 12u}) {
    const SsaParams p = SsaParams::for_bits(4096, headroom);
    EXPECT_GE(p.max_operand_bits(), 4096u) << headroom;
    EXPECT_NO_THROW(p.validate()) << headroom;
    const u128 max_coeff = (u128{1} << p.coeff_bits) - 1;
    EXPECT_LT(u128{p.num_coeffs} * max_coeff * max_coeff,
              u128{fp::kModulus} >> headroom)
        << headroom;
  }
}

TEST(SsaParams, ValidateCatchesInexactness) {
  SsaParams p = SsaParams::paper();
  p.coeff_bits = 31;  // 2^15 * (2^31-1)^2 >> p: convolution would overflow
  EXPECT_THROW(p.validate(), std::logic_error);
}

TEST(SsaParams, ValidateCatchesMissingHeadroom) {
  SsaParams p = SsaParams::paper();
  p.num_coeffs = 65536;  // no 2x padding: cyclic wraparound would corrupt
  EXPECT_THROW(p.validate(), std::logic_error);
}

TEST(Pack, DecomposesKnownPattern) {
  // 24-bit groups of 0x[c2][c1][c0] with c_i = i+1.
  const SsaParams p = SsaParams::paper();
  const BigUInt x = BigUInt::from_hex("000003" "000002" "000001");
  const FpVec v = pack(x, p);
  EXPECT_EQ(v[0], Fp{1});
  EXPECT_EQ(v[1], Fp{2});
  EXPECT_EQ(v[2], Fp{3});
  for (std::size_t i = 3; i < 64; ++i) EXPECT_EQ(v[i], fp::kZero);
  EXPECT_EQ(v.size(), 65536u);
}

TEST(Pack, RejectsOversizedOperand) {
  const SsaParams p = SsaParams::for_bits(100);
  util::Rng rng(1);
  EXPECT_THROW(pack(BigUInt::random_bits(rng, p.max_operand_bits() + 1), p),
               std::logic_error);
}

TEST(Pack, CarryRecoverInvertsPackForInRangeCoeffs) {
  const SsaParams p = SsaParams::for_bits(3000);
  util::Rng rng(2);
  const BigUInt x = BigUInt::random_bits(rng, 3000);
  EXPECT_EQ(carry_recover(pack(x, p), p.coeff_bits), x);
}

TEST(CarryRecover, PropagatesLongCarryChains) {
  // Coefficients of 2^m - 1 everywhere force carries through every group.
  const std::size_t m = 24;
  const std::size_t n = 100;
  FpVec coeffs(n, Fp::from_canonical((1ULL << m) - 1));
  // sum_i (2^m - 1) 2^(m i) = 2^(m n) - 1.
  EXPECT_EQ(carry_recover(coeffs, m), BigUInt::pow2(m * n) - BigUInt{1});
}

TEST(CarryRecover, HandlesLargeOverlappingCoefficients) {
  // Convolution coefficients can be up to ~2^63; neighbours overlap by 40
  // bits for m = 24.
  FpVec coeffs(3, Fp::from_canonical(0x7FFF'FFFF'FFFF'FFFFULL));
  const BigUInt expected = (BigUInt::from_hex("7fffffffffffffff")) +
                           (BigUInt::from_hex("7fffffffffffffff") << 24) +
                           (BigUInt::from_hex("7fffffffffffffff") << 48);
  EXPECT_EQ(carry_recover(coeffs, 24), expected);
}

// Multiplication correctness across sizes and engines.
struct SsaCase {
  std::size_t bits;
  Engine engine;
};

class SsaMultiply : public ::testing::TestWithParam<SsaCase> {};

TEST_P(SsaMultiply, MatchesSchoolbook) {
  const auto [bits, engine] = GetParam();
  util::Rng rng(bits);
  SsaParams params = SsaParams::for_bits(bits);
  params.engine = engine;
  for (int i = 0; i < 3; ++i) {
    const BigUInt a = BigUInt::random_bits(rng, bits);
    const BigUInt b = BigUInt::random_bits(rng, bits);
    EXPECT_EQ(multiply(a, b, params), bigint::mul_schoolbook(a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SsaMultiply,
    ::testing::Values(SsaCase{100, Engine::kRadix2Fast}, SsaCase{100, Engine::kMixedRadix},
                      SsaCase{1000, Engine::kRadix2Fast}, SsaCase{1000, Engine::kMixedRadix},
                      SsaCase{4096, Engine::kRadix2Fast}, SsaCase{4096, Engine::kMixedRadix},
                      SsaCase{10000, Engine::kRadix2Fast},
                      SsaCase{30000, Engine::kRadix2Fast}));

TEST(SsaMultiply, EdgeValues) {
  const SsaParams p = SsaParams::for_bits(1000);
  const BigUInt one{1};
  const BigUInt big = BigUInt::pow2(1000) - BigUInt{1};
  EXPECT_EQ(multiply(BigUInt{}, big, p), BigUInt{});
  EXPECT_EQ(multiply(big, BigUInt{}, p), BigUInt{});
  EXPECT_EQ(multiply(one, big, p), big);
  EXPECT_EQ(multiply(big, big, p),
            BigUInt::pow2(2000) - BigUInt::pow2(1001) + BigUInt{1});
}

TEST(SsaMultiply, PaperSizeFullMultiplication) {
  // The headline workload: two 786,432-bit operands through the paper's
  // exact parameterization (m=24, 64K-point transform, plan 64*64*16 on the
  // fast engine), validated against Karatsuba.
  SsaParams params = SsaParams::paper();
  params.engine = Engine::kRadix2Fast;
  util::Rng rng(786432);
  const BigUInt a = BigUInt::random_bits(rng, 786432);
  const BigUInt b = BigUInt::random_bits(rng, 786432);
  SsaStats stats;
  const BigUInt product = multiply(a, b, params, &stats);
  EXPECT_EQ(product, bigint::mul_karatsuba(a, b));
  // A product of two n-bit numbers has 2n-1 or 2n bits.
  EXPECT_GE(product.bit_length(), 2u * 786432 - 1);
  EXPECT_LE(product.bit_length(), 2u * 786432);
  EXPECT_EQ(stats.pointwise_muls, 65536u);  // paper: 65536-component dot product
  EXPECT_EQ(stats.transform_count, 3u);     // two forward + one inverse
}

TEST(SsaMultiply, MixedRadixEngineAgreesWithFastEngine) {
  util::Rng rng(60);
  const BigUInt a = BigUInt::random_bits(rng, 5000);
  const BigUInt b = BigUInt::random_bits(rng, 5000);
  SsaParams fast = SsaParams::for_bits(5000);
  SsaParams mixed = fast;
  mixed.engine = Engine::kMixedRadix;
  EXPECT_EQ(multiply(a, b, fast), multiply(a, b, mixed));
}

TEST(SsaMultiply, AutoWrapperPicksWorkingParams) {
  util::Rng rng(61);
  const BigUInt a = BigUInt::random_bits(rng, 2500);
  const BigUInt b = BigUInt::random_bits(rng, 700);
  EXPECT_EQ(mul_ssa(a, b), bigint::mul_schoolbook(a, b));
  EXPECT_EQ(mul_ssa(BigUInt{}, a), BigUInt{});
}

TEST(SsaSquare, MatchesMultiplyBothEngines) {
  util::Rng rng(70);
  for (const std::size_t bits : {500u, 3000u, 20000u}) {
    const BigUInt a = BigUInt::random_bits(rng, bits);
    SsaParams fast = SsaParams::for_bits(bits);
    SsaParams mixed = fast;
    mixed.engine = Engine::kMixedRadix;
    const BigUInt expected = bigint::mul_schoolbook(a, a);
    EXPECT_EQ(square(a, fast), expected) << bits;
    EXPECT_EQ(square(a, mixed), expected) << bits;
  }
}

TEST(SsaSquare, TransformCountIsTwo) {
  util::Rng rng(71);
  const BigUInt a = BigUInt::random_bits(rng, 5000);
  const SsaParams params = SsaParams::for_bits(5000);
  SsaStats mul_stats;
  SsaStats sq_stats;
  (void)multiply(a, a, params, &mul_stats);
  (void)square(a, params, &sq_stats);
  EXPECT_EQ(mul_stats.transform_count, 3u);
  EXPECT_EQ(sq_stats.transform_count, 2u);  // the saved forward transform
}

TEST(SsaSquare, ZeroAndEdges) {
  const SsaParams params = SsaParams::for_bits(1000);
  EXPECT_EQ(square(BigUInt{}, params), BigUInt{});
  EXPECT_EQ(square(BigUInt{1}, params), BigUInt{1});
  const BigUInt ones = BigUInt::pow2(1000) - BigUInt{1};
  EXPECT_EQ(square(ones, params), BigUInt::pow2(2000) - BigUInt::pow2(1001) + BigUInt{1});
}

TEST(SsaStatsAccounting, CachedPathCountsOnlyExecutedTransforms) {
  // The overcounting fix: a spectrum-cache hit skips the operand's forward
  // transform, and transform_count must say so instead of charging 3.
  util::Rng rng(80);
  const BigUInt a = BigUInt::random_bits(rng, 8000);
  const BigUInt b = BigUInt::random_bits(rng, 8000);
  const SsaParams params = SsaParams::for_bits(8000);
  ConcurrentSpectrumCache cache;
  Workspace workspace;

  SsaStats cold;
  const BigUInt first = multiply_cached(a, b, params, cache, workspace, &cold);
  EXPECT_EQ(cold.transform_count, 3u);  // two forwards + one inverse

  SsaStats warm;
  const BigUInt second = multiply_cached(a, b, params, cache, workspace, &warm);
  EXPECT_EQ(warm.transform_count, 1u);  // both spectra cached: inverse only
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, bigint::mul_schoolbook(a, b));

  const BigUInt fresh = BigUInt::random_bits(rng, 8000);
  SsaStats sq;
  (void)multiply_cached(fresh, fresh, params, cache, workspace, &sq);
  EXPECT_EQ(sq.transform_count, 2u);  // one fresh forward + inverse

  SsaStats hot_square;
  (void)multiply_cached(fresh, fresh, params, cache, workspace, &hot_square);
  EXPECT_EQ(hot_square.transform_count, 1u);  // cached spectrum: inverse only
}

TEST(SsaStatsAccounting, BatchTransformCountReflectsCacheHits) {
  // A batch of one operand against N others runs N+1 forwards + N
  // inverses -- not the naive 3N.
  util::Rng rng(81);
  const BigUInt shared = BigUInt::random_bits(rng, 6000);
  std::vector<std::pair<BigUInt, BigUInt>> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.emplace_back(shared, BigUInt::random_bits(rng, 6000));
  }
  const SsaParams params = SsaParams::for_bits(6000);
  BatchStats stats;
  const auto products = multiply_batch(jobs, params, &stats);
  EXPECT_EQ(stats.forward_transforms, 6u);
  EXPECT_EQ(stats.inverse_transforms, 5u);
  EXPECT_EQ(stats.transform_count(), 11u);  // 2N+1, not 3N = 15
  EXPECT_EQ(stats.spectrum_cache_hits, 4u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(products[i], bigint::mul_schoolbook(jobs[i].first, jobs[i].second));
  }
}

TEST(SpectrumCacheKeying, EnginesNeverShareSpectra) {
  // The two engines store layout-incompatible spectra (engine order vs
  // natural order) at identical packing geometry: a shared cache must key
  // on the engine, or a cross-engine hit silently corrupts the product.
  util::Rng rng(83);
  const BigUInt a = BigUInt::random_bits(rng, 5000);
  const BigUInt b = BigUInt::random_bits(rng, 5000);
  SsaParams fast = SsaParams::for_bits(5000);
  SsaParams mixed = fast;
  mixed.engine = Engine::kMixedRadix;
  const BigUInt expected = bigint::mul_schoolbook(a, b);

  ConcurrentSpectrumCache cache;
  Workspace workspace;
  EXPECT_EQ(multiply_cached(a, b, fast, cache, workspace, nullptr), expected);
  EXPECT_EQ(multiply_cached(a, b, mixed, cache, workspace, nullptr), expected);
  EXPECT_EQ(cache.size(), 4u);  // two operands x two engines, no sharing
}

TEST(SpectrumDomain, LazyBoundTrackingSurvivesAdversarialAccumulation) {
  // All-ones operands pin every packed coefficient at 2^m - 1, the worst
  // case for the lazy coefficient bound. With kResidentHeadroomBits of
  // headroom the domain must accept a deep stack of pointwise-accumulated
  // products, refuse exactly when the tracked bound would reach p, and
  // materialize the exact integer sum from the redundant spectrum.
  for (const Engine engine : {Engine::kRadix2Fast, Engine::kMixedRadix}) {
    SsaParams params = SsaParams::for_bits(1024, kResidentHeadroomBits);
    params.engine = engine;
    Workspace workspace;
    const SpectrumDomain domain(params, workspace);

    const BigUInt ones = BigUInt::pow2(1024) - BigUInt(1);
    ResidentSpectrum sa, sb;
    domain.enter(sa, ones);
    domain.enter(sb, ones);
    EXPECT_EQ(sa.coeff_bound, domain.operand_bound());
    ASSERT_TRUE(domain.can_multiply(sa, sb));

    ResidentSpectrum product;
    domain.multiply(product, sa, sb);
    const u128 product_bound =
        sa.coeff_bound * sb.coeff_bound * u128{std::min(sa.degree, sb.degree)};
    EXPECT_EQ(product.coeff_bound, product_bound);
    EXPECT_LT(product_bound, u128{fp::kModulus} >> kResidentHeadroomBits);

    // Stack products until the tracked bound refuses; the refusal must
    // come from the bound alone (headroom guarantees >= 2^h - 1 addends).
    ResidentSpectrum acc;
    u64 accumulated = 0;
    while (domain.can_accumulate(acc, product)) {
      domain.accumulate(acc, product);
      ++accumulated;
      ASSERT_EQ(acc.coeff_bound, u128{accumulated} * product_bound);
      ASSERT_LT(accumulated, u64{1} << 20) << "bound tracking never refused";
    }
    EXPECT_GE(accumulated, (u64{1} << kResidentHeadroomBits) - 1);
    EXPECT_GE(acc.coeff_bound + product.coeff_bound, u128{fp::kModulus});

    const BigUInt one_product = bigint::mul_schoolbook(ones, ones);
    BigUInt expected;
    for (u64 k = 0; k < accumulated; ++k) expected += one_product;
    BigUInt materialized;
    domain.leave(materialized, acc);
    EXPECT_EQ(materialized, expected) << "engine " << static_cast<int>(engine);
  }
}

TEST(SpectrumCacheResidency, WireKeyedEntriesInsertFindEvict) {
  SpectrumCache cache;
  auto handle = std::make_shared<ResidentSpectrum>();
  handle->degree = 3;
  cache.insert_resident(42, handle);
  ASSERT_NE(cache.find_resident(42), nullptr);
  EXPECT_EQ(cache.find_resident(42)->get(), handle.get());
  EXPECT_EQ(cache.find_resident(7), nullptr);
  EXPECT_EQ(cache.resident_entries(), 1u);
  EXPECT_TRUE(cache.evict_resident(42));
  EXPECT_FALSE(cache.evict_resident(42));
  EXPECT_EQ(cache.resident_entries(), 0u);

  // Value-keyed entries and wire-keyed entries are independent planes.
  cache.insert_resident(1, handle);
  EXPECT_EQ(cache.size(), 0u);
  cache.clear();
  EXPECT_EQ(cache.resident_entries(), 0u);

  ConcurrentSpectrumCache shared;
  shared.put_resident(1, handle);
  shared.put_resident(2, handle);
  EXPECT_EQ(shared.resident_size(), 2u);
  EXPECT_NE(shared.get_resident(1), nullptr);
  EXPECT_EQ(shared.get_resident(99), nullptr);
  EXPECT_TRUE(shared.evict_resident(1));
  EXPECT_FALSE(shared.evict_resident(1));
  EXPECT_EQ(shared.resident_size(), 1u);
  const ConcurrentSpectrumCache::Stats stats = shared.stats();
  EXPECT_EQ(stats.resident_peak, 2u);
  EXPECT_EQ(stats.resident_evictions, 1u);
}

TEST(SsaMultiply, IntoVariantReusesOutputAndAliasesSafely) {
  util::Rng rng(82);
  const BigUInt a = BigUInt::random_bits(rng, 5000);
  const BigUInt b = BigUInt::random_bits(rng, 5000);
  const SsaParams params = SsaParams::for_bits(5000);
  Workspace workspace;

  BigUInt out;
  multiply_into(out, a, b, params, workspace);
  EXPECT_EQ(out, bigint::mul_schoolbook(a, b));

  // Aliasing: accumulate into one of the operands (a ladder step).
  BigUInt acc = a;
  multiply_into(acc, acc, b, params, workspace);
  EXPECT_EQ(acc, out);

  // Zero short-circuit clears a reused output.
  multiply_into(out, BigUInt{}, b, params, workspace);
  EXPECT_EQ(out, BigUInt{});
}

TEST(SsaMultiply, CommutesAndSquares) {
  util::Rng rng(62);
  const BigUInt a = BigUInt::random_bits(rng, 8000);
  const BigUInt b = BigUInt::random_bits(rng, 8000);
  EXPECT_EQ(mul_ssa(a, b), mul_ssa(b, a));
  EXPECT_EQ(mul_ssa(a, a), bigint::mul_karatsuba(a, a));
}

}  // namespace
}  // namespace hemul::ssa
