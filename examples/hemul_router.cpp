// hemul_router: the fleet front door. Hashes sessions onto shards,
// forwards requests, aggregates stats (see docs/operations.md).
//
//   hemul_router [--port N] --shard HOST:PORT [--shard HOST:PORT ...]
//
// --port 0 (the default) binds an ephemeral port; the daemon prints
//   hemul_router listening on port <N>
// to stdout (flushed). Exits on SIGTERM/SIGINT or a kShutdown request.
// Every shard must be reachable at startup; a shard dying later is
// tolerated (its sessions fail cleanly, the rest keep serving).

#include <csignal>
#include <cstdio>
#include <cstring>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "net/router.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: hemul_router [--port N] --shard HOST:PORT [--shard HOST:PORT ...]\n");
  return 2;
}

std::mutex g_mutex;
std::condition_variable g_cv;
bool g_shutdown = false;

void request_shutdown() {
  {
    std::lock_guard lock(g_mutex);
    g_shutdown = true;
  }
  g_cv.notify_all();
}

extern "C" void handle_signal(int) { request_shutdown(); }

}  // namespace

int main(int argc, char** argv) {
  using namespace hemul;

  int port = 0;
  std::vector<std::string> shards;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--shard" && i + 1 < argc) {
      shards.emplace_back(argv[++i]);
    } else {
      return usage();
    }
  }
  if (shards.empty()) return usage();

  try {
    net::Router::Options options;
    options.port = port;
    options.on_shutdown = request_shutdown;
    net::Router router(shards, options);

    std::printf("hemul_router listening on port %d\n", router.port());
    std::fflush(stdout);

    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);

    {
      std::unique_lock lock(g_mutex);
      g_cv.wait(lock, [] { return g_shutdown; });
    }
    router.stop();
    std::fprintf(stderr, "hemul_router: exiting\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hemul_router: fatal: %s\n", e.what());
    return 1;
  }
}
