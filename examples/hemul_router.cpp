// hemul_router: the fleet front door. Hashes sessions onto shards,
// forwards requests, aggregates stats (see docs/operations.md).
//
//   hemul_router [--port N] --shard HOST:PORT [--shard HOST:PORT ...]
//                [--retries N] [--probe-interval-ms MS] [--deadline-ms MS]
//                [--fault-plan SPEC]
//
// --port 0 (the default) binds an ephemeral port; the daemon prints
//   hemul_router listening on port <N>
// to stdout (flushed). Exits on SIGTERM/SIGINT or a kShutdown request.
// Every shard must be reachable at startup; a shard dying later is
// tolerated: a probe loop (--probe-interval-ms) detects it, its sessions
// re-home onto live shards via seeded create replay (bit-exact answers),
// and the probe loop redials it for when it returns. --retries bounds the
// safe replays (placement, overload backoff); --deadline-ms bounds the
// router's own control RPCs to shards (ping, stats).

#include <csignal>
#include <cstdio>
#include <cstring>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "net/fault.hpp"
#include "net/router.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: hemul_router [--port N] --shard HOST:PORT [--shard HOST:PORT ...]\n"
               "                    [--retries N] [--probe-interval-ms MS]\n"
               "                    [--deadline-ms MS] [--fault-plan SPEC]\n"
               "  --retries N            max safe replays per request (default 2)\n"
               "  --probe-interval-ms MS kPing health-probe period; drives failover\n"
               "                         and redial of dead shards (0 = off)\n"
               "  --deadline-ms MS       budget for router->shard control RPCs\n"
               "  --fault-plan SPEC      deterministic fault injection, e.g.\n"
               "                         seed=7,drop=0.02,refuse=0.1\n");
  return 2;
}

std::mutex g_mutex;
std::condition_variable g_cv;
bool g_shutdown = false;

void request_shutdown() {
  {
    std::lock_guard lock(g_mutex);
    g_shutdown = true;
  }
  g_cv.notify_all();
}

extern "C" void handle_signal(int) { request_shutdown(); }

}  // namespace

int main(int argc, char** argv) {
  using namespace hemul;

  int port = 0;
  std::vector<std::string> shards;
  unsigned retries = 2;
  double probe_interval_ms = 0.0;
  double deadline_ms = 0.0;
  std::string fault_plan;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--shard" && i + 1 < argc) {
      shards.emplace_back(argv[++i]);
    } else if (arg == "--retries" && i + 1 < argc) {
      retries = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--probe-interval-ms" && i + 1 < argc) {
      probe_interval_ms = std::strtod(argv[++i], nullptr);
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      deadline_ms = std::strtod(argv[++i], nullptr);
    } else if (arg == "--fault-plan" && i + 1 < argc) {
      fault_plan = argv[++i];
    } else {
      return usage();
    }
  }
  if (shards.empty()) return usage();

  try {
    if (!fault_plan.empty()) {
      const net::FaultPlan plan = net::FaultPlan::parse(fault_plan);
      net::install_fault_injector(std::make_shared<net::FaultInjector>(plan));
      std::fprintf(stderr, "hemul_router: fault injection armed (%s)\n",
                   fault_plan.c_str());
    }
    net::Router::Options options;
    options.port = port;
    options.retry.max_retries = retries;
    options.probe_interval_ms = probe_interval_ms;
    options.shard_deadline_ms = deadline_ms;
    options.on_shutdown = request_shutdown;
    net::Router router(shards, options);

    std::printf("hemul_router listening on port %d\n", router.port());
    std::fflush(stdout);

    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);

    {
      std::unique_lock lock(g_mutex);
      g_cv.wait(lock, [] { return g_shutdown; });
    }
    router.stop();
    if (const auto injector = net::fault_injector()) {
      std::fprintf(stderr, "hemul_router: %s\n", injector->summary().c_str());
    }
    std::fprintf(stderr, "hemul_router: exiting\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hemul_router: fatal: %s\n", e.what());
    return 1;
  }
}
