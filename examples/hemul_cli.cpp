// hemul_cli: command-line front end to the accelerator model.
//
//   hemul_cli mul <hexA> <hexB>     multiply two hex integers (simulated HW)
//   hemul_cli random <bits>         multiply two random <bits>-bit operands
//   hemul_cli batch <n> <bits>      stream n random products, report throughput
//   hemul_cli table1                print the Table I resource comparison
//   hemul_cli perf [P]              print the Section V performance model
//
// Exit code 0 on success; 2 on usage errors.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bigint/mul.hpp"
#include "core/accelerator.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace {

using namespace hemul;

int usage() {
  std::fprintf(stderr,
               "usage: hemul_cli mul <hexA> <hexB> | random <bits> | batch <n> <bits> |\n"
               "                 table1 | perf [P]\n");
  return 2;
}

void print_report(const core::MultiplyResult& result) {
  std::printf("product bits : %zu\n", result.product.bit_length());
  if (result.hw_report.has_value()) {
    std::printf("cycles       : %llu\n",
                static_cast<unsigned long long>(result.hw_report->total_cycles));
    std::printf("modeled time : %s\n",
                util::format_time_ns(result.hw_report->total_time_us() * 1000.0).c_str());
  }
}

int cmd_mul(const std::string& a_hex, const std::string& b_hex) {
  const auto a = bigint::BigUInt::from_hex(a_hex);
  const auto b = bigint::BigUInt::from_hex(b_hex);
  core::Accelerator accel;
  const auto result = accel.multiply(a, b);
  std::printf("%s\n", result.product.to_hex().c_str());
  print_report(result);
  const bool ok = result.product == bigint::mul_auto(a, b);
  std::printf("verified     : %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}

int cmd_random(std::size_t bits) {
  util::Rng rng(0xC11);
  const auto a = bigint::BigUInt::random_bits(rng, bits);
  const auto b = bigint::BigUInt::random_bits(rng, bits);
  core::Accelerator accel;
  const auto result = accel.multiply(a, b);
  print_report(result);
  const bool ok = result.product == bigint::mul_auto(a, b);
  std::printf("verified     : %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}

int cmd_batch(std::size_t n, std::size_t bits) {
  util::Rng rng(0xBA7C);
  std::vector<std::pair<bigint::BigUInt, bigint::BigUInt>> ops;
  ops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ops.emplace_back(bigint::BigUInt::random_bits(rng, bits),
                     bigint::BigUInt::random_bits(rng, bits));
  }
  hw::HwAccelerator accel(hw::AcceleratorConfig::paper());
  hw::HwAccelerator::BatchReport report;
  const auto products = accel.multiply_batch(ops, &report);
  std::printf("products     : %zu\n", products.size());
  std::printf("total cycles : %llu (%s)\n",
              static_cast<unsigned long long>(report.total_cycles),
              util::format_time_ns(report.total_time_us() * 1000.0).c_str());
  std::printf("throughput   : %.1f products/s (modeled, streamed)\n",
              report.throughput_per_second());
  return 0;
}

int cmd_table1() {
  std::printf("%s", hw::ResourceComparison::paper().render_table().c_str());
  return 0;
}

int cmd_perf(unsigned pes) {
  hw::PerfParams params = hw::PerfParams::paper();
  params.num_pes = pes;
  const hw::PerfBreakdown b = hw::evaluate_perf(params);
  std::printf("P = %u, plan %s, T_C = %.1f ns\n", pes, params.plan.describe().c_str(),
              params.clock_ns);
  std::printf("T_FFT     = %.2f us\n", b.fft_us());
  std::printf("T_DOTPROD = %.2f us\n", b.dotprod_us());
  std::printf("T_CARRY   = %.2f us\n", b.carry_us());
  std::printf("T_MULT    = %.2f us\n", b.mult_us());
  std::printf("streamed  = %.1f products/s\n", b.mults_per_second());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "mul" && argc == 4) return cmd_mul(argv[2], argv[3]);
    if (cmd == "random" && argc == 3) return cmd_random(std::strtoull(argv[2], nullptr, 10));
    if (cmd == "batch" && argc == 4) {
      return cmd_batch(std::strtoull(argv[2], nullptr, 10),
                       std::strtoull(argv[3], nullptr, 10));
    }
    if (cmd == "table1" && argc == 2) return cmd_table1();
    if (cmd == "perf") return cmd_perf(argc >= 3 ? static_cast<unsigned>(std::atoi(argv[2])) : 4);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
