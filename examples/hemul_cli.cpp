// hemul_cli: command-line front end to the accelerator model.
//
//   hemul_cli [--backend <name>] mul <hexA> <hexB>   multiply two hex integers
//   hemul_cli [--backend <name>] random <bits>       multiply two random operands
//   hemul_cli [--backend <name>] batch <n> <bits>    stream n products of one
//                                                    shared operand, report the
//                                                    spectrum-cache amortization
//   hemul_cli [--workers N] throughput <n> <bits>    drive n products through the
//                                                    multi-PE scheduler, report
//                                                    jobs/sec and per-lane stats
//   hemul_cli [--workers N] circuit <kind> [width]   record a homomorphic circuit
//                                                    as an fhe::Graph and wavefront-
//                                                    evaluate it: levels, gate
//                                                    counts, predicted depth for
//                                                    BOTH lowering strategies,
//                                                    predicted noise, lane
//                                                    utilization (kind: adder,
//                                                    equals, mul, mux, lt)
//   hemul_cli [--workers N] service <tenants> <reqs> drive the multi-tenant
//                                                    core::Service: per-tenant
//                                                    sessions, serialized
//                                                    single-multiply requests,
//                                                    cross-request coalescing
//                                                    stats
//   hemul_cli backends                               list registered backends
//   hemul_cli table1                                 print the Table I comparison
//   hemul_cli perf [P]                               Section V performance model
//
// --backend selects any engine registered in backend::Registry ("hw", "ssa",
// "classical", "karatsuba", ...; default "hw" — except for `throughput` and
// `circuit`, which default to the software "ssa" engine). --workers sets the
// scheduler's PE-lane count (default: one lane per hardware thread).
// --lowering <ripple|carry-save> picks the word-op lowering strategy for
// `circuit` and `service` (default: ripple).
// Exit code 0 on success; 2 on usage errors; 3 when `circuit` finds the
// recorded circuit undecryptable at every built-in parameter set (the
// result cannot be verified).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "backend/registry.hpp"
#include "bigint/mul.hpp"
#include "core/accelerator.hpp"
#include "core/scheduler.hpp"
#include "fhe/circuits.hpp"
#include "fhe/evaluator.hpp"
#include "fhe/graph.hpp"
#include "fhe/lowering.hpp"
#include "fhe/noise.hpp"
#include "fhe/serialize.hpp"
#include "net/client.hpp"
#include "service/service.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace {

using namespace hemul;

int usage() {
  std::fprintf(stderr,
               "usage: hemul_cli [--backend <name>] [--workers N] [--no-intra-op]\n"
               "                 [--lowering <ripple|carry-save>]\n"
               "                 [--deadline-ms MS] [--retries N]\n"
               "                 mul <hexA> <hexB> |\n"
               "                 random <bits> | batch <n> <bits> | throughput <n> <bits> |\n"
               "                 circuit <adder|equals|mul|mux|lt> [width] |\n"
               "                 service <tenants> <requests-per-tenant> |\n"
               "                 fleet <host:port> <tenants> <requests-per-tenant> |\n"
               "                 backends | table1 | perf [P]\n"
               "  --deadline-ms MS  fleet: per-request budget; overdue futures\n"
               "                    complete with kTimeout/kExpired (0 = off)\n"
               "  --retries N       fleet: resubmits of kOverloaded sheds, paced\n"
               "                    by the server's retry-after hint (default 2)\n");
  return 2;
}

core::Accelerator make_accelerator(const std::string& backend_name) {
  core::Config config;
  config.backend_name = backend_name;
  return core::Accelerator(config);
}

void print_report(const core::MultiplyResult& result) {
  std::printf("product bits : %zu\n", result.product.bit_length());
  if (result.hw_report.has_value()) {
    std::printf("cycles       : %llu\n",
                static_cast<unsigned long long>(result.hw_report->total_cycles));
    std::printf("modeled time : %s\n",
                util::format_time_ns(result.hw_report->total_time_us() * 1000.0).c_str());
  }
}

int cmd_backends() {
  std::printf("%-12s %-14s %s\n", "name", "max operand", "capabilities");
  for (const std::string& name : backend::Registry::instance().names()) {
    const auto b = backend::make_backend(name);
    const backend::BackendLimits limits = b->limits();
    std::string caps;
    if (limits.caches_spectra) caps += "spectrum-cache ";
    if (limits.reports_hw_cycles) caps += "cycle-reports";
    std::printf("%-12s %-14s %s\n", name.c_str(),
                limits.max_operand_bits == 0
                    ? "unlimited"
                    : (std::to_string(limits.max_operand_bits) + " bits").c_str(),
                caps.c_str());
  }
  return 0;
}

int cmd_mul(const std::string& backend_name, const std::string& a_hex,
            const std::string& b_hex) {
  const auto a = bigint::BigUInt::from_hex(a_hex);
  const auto b = bigint::BigUInt::from_hex(b_hex);
  core::Accelerator accel = make_accelerator(backend_name);
  const auto result = accel.multiply(a, b);
  std::printf("backend      : %s\n", accel.backend().name().c_str());
  std::printf("%s\n", result.product.to_hex().c_str());
  print_report(result);
  const bool ok = result.product == bigint::mul_schoolbook(a, b);
  std::printf("verified     : %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}

int cmd_random(const std::string& backend_name, std::size_t bits) {
  util::Rng rng(0xC11);
  const auto a = bigint::BigUInt::random_bits(rng, bits);
  const auto b = bigint::BigUInt::random_bits(rng, bits);
  core::Accelerator accel = make_accelerator(backend_name);
  const auto result = accel.multiply(a, b);
  std::printf("backend      : %s\n", accel.backend().name().c_str());
  print_report(result);
  const bool ok = result.product == bigint::mul_auto_classical(a, b);
  std::printf("verified     : %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}

int cmd_batch(const std::string& backend_name, std::size_t n, std::size_t bits) {
  // One shared operand against n others: the repeated-operand pattern whose
  // forward spectrum the caching backends compute once instead of n times.
  util::Rng rng(0xBA7C);
  const auto a = bigint::BigUInt::random_bits(rng, bits);
  std::vector<backend::MulJob> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs.emplace_back(a, bigint::BigUInt::random_bits(rng, bits));
  }

  core::Accelerator accel = make_accelerator(backend_name);
  const core::BatchResult result = accel.multiply_batch(jobs);
  std::printf("backend      : %s\n", accel.backend().name().c_str());
  std::printf("products     : %zu\n", result.products.size());
  std::printf("fwd NTTs     : %llu (%llu cache hits)\n",
              static_cast<unsigned long long>(result.stats.forward_transforms),
              static_cast<unsigned long long>(result.stats.spectrum_cache_hits));
  if (result.stats.total_cycles > 0) {
    std::printf("total cycles : %llu (%s)\n",
                static_cast<unsigned long long>(result.stats.total_cycles),
                util::format_time_ns(result.stats.total_time_us() * 1000.0).c_str());
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (result.products[i] != bigint::mul_auto_classical(jobs[i].first, jobs[i].second)) {
      std::printf("verified     : NO (job %zu)\n", i);
      return 1;
    }
  }
  std::printf("verified     : yes\n");
  return 0;
}

int cmd_throughput(const std::string& backend_name, unsigned workers, bool intra_op,
                   std::size_t n, std::size_t bits) {
  using Clock = std::chrono::steady_clock;

  core::Config config;
  // Wall-clock throughput is the point here, so default to the software
  // SSA engine rather than the simulated accelerator.
  config.backend_name = backend_name.empty() ? "ssa" : backend_name;
  config.num_workers = workers;
  config.intra_op_tiling = intra_op;
  core::Scheduler scheduler(config);

  util::Rng rng(0x7412);
  std::vector<backend::MulJob> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs.emplace_back(bigint::BigUInt::random_bits(rng, bits),
                      bigint::BigUInt::random_bits(rng, bits));
  }

  const auto t0 = Clock::now();
  std::vector<std::future<bigint::BigUInt>> futures = scheduler.submit_batch(jobs);
  std::vector<bigint::BigUInt> products;
  products.reserve(n);
  for (auto& future : futures) products.push_back(future.get());
  const double wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  // Lane stats are booked after each future is satisfied; drain them
  // before reading, or the last job per lane can be missing.
  scheduler.wait_idle();
  const core::SchedulerStats stats = scheduler.stats();
  std::printf("backend      : %s\n", config.resolved_backend_name().c_str());
  std::printf("workers      : %u\n", scheduler.num_workers());
  std::printf("jobs         : %zu x %zu bits\n", n, bits);
  std::printf("wall time    : %.1f ms\n", wall_ms);
  std::printf("throughput   : %.1f jobs/s\n",
              wall_ms > 0.0 ? 1000.0 * static_cast<double>(n) / wall_ms : 0.0);
  double busy_ms = 0.0;
  for (const core::LaneStats& lane : stats.lanes) {
    busy_ms += lane.busy_ms;
    std::printf("  lane %-2u    : %llu jobs, %.1f ms busy (%.0f%% of wall)", lane.lane,
                static_cast<unsigned long long>(lane.jobs), lane.busy_ms,
                wall_ms > 0.0 ? 100.0 * lane.busy_ms / wall_ms : 0.0);
    if (lane.tiles > 0) {
      std::printf(", %llu intra-op tiles", static_cast<unsigned long long>(lane.tiles));
    }
    if (lane.hw_cycles > 0) {
      std::printf(", %llu modeled cycles", static_cast<unsigned long long>(lane.hw_cycles));
    }
    std::printf("\n");
  }
  if (wall_ms > 0.0) std::printf("parallelism  : %.2fx (lane-busy/wall)\n", busy_ms / wall_ms);
  if (stats.tile_groups > 0) {
    unsigned lanes_with_tiles = 0;
    for (const core::LaneStats& lane : stats.lanes) {
      if (lane.tiles > 0) ++lanes_with_tiles;
    }
    std::printf("intra-op     : %llu tile group(s), %llu tiles across %u lane(s)\n",
                static_cast<unsigned long long>(stats.tile_groups),
                static_cast<unsigned long long>(stats.tiles_executed), lanes_with_tiles);
  } else if (!intra_op) {
    std::printf("intra-op     : disabled (--no-intra-op)\n");
  }
  std::printf("cache        : %llu hits, %llu misses\n",
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses));

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (products[i] != bigint::mul_auto_classical(jobs[i].first, jobs[i].second)) {
      std::printf("verified     : NO (job %zu)\n", i);
      return 1;
    }
  }
  std::printf("verified     : yes\n");
  return 0;
}

int cmd_circuit(const std::string& backend_name, unsigned workers, bool intra_op,
                const std::string& kind, unsigned width, fhe::LoweringOptions lowering) {
  if (width == 0 || width > 16) {
    std::fprintf(stderr, "error: circuit width must be in [1, 16]\n");
    return 2;
  }
  fhe::WordOp word_op = fhe::WordOp::kAdd;
  if (kind == "adder") {
    word_op = fhe::WordOp::kAdd;
  } else if (kind == "equals") {
    word_op = fhe::WordOp::kEquals;
  } else if (kind == "mul") {
    word_op = fhe::WordOp::kMultiply;
  } else if (kind == "mux") {
    word_op = fhe::WordOp::kMux;
  } else if (kind == "lt") {
    word_op = fhe::WordOp::kLessThan;
  } else {
    return usage();
  }

  // Deterministic operands derived from the width.
  const u64 mask = width >= 64 ? ~0ULL : (1ULL << width) - 1;
  const u64 x = 0xB5A3C96Du & mask;
  const u64 y = 0x6D2E84B7u & mask;

  u64 expected = 0;
  if (kind == "adder") {
    expected = (x + y) & ((mask << 1) | 1);
  } else if (kind == "equals") {
    expected = x == y ? 1 : 0;
  } else if (kind == "mul") {
    expected = (x * y) & ((width * 2 >= 64) ? ~0ULL : (1ULL << (width * 2)) - 1);
  } else if (kind == "mux") {
    expected = x;
  } else if (kind == "lt") {
    expected = x < y ? 1 : 0;
  } else {
    return usage();
  }

  // Record the circuit lazily against a scheme: nothing is multiplied yet.
  const auto record = [&](fhe::Dghv& scheme, fhe::Graph& graph) {
    fhe::EncryptedInt cx = fhe::encrypt_int(scheme, x, width);
    fhe::EncryptedInt cy = fhe::encrypt_int(scheme, y, width);
    const std::vector<fhe::Wire> wa = graph.inputs(cx);
    const std::vector<fhe::Wire> wb = graph.inputs(cy);
    const fhe::Wire zero = graph.input(scheme.encrypt(false));
    const fhe::Wire one = graph.input(scheme.encrypt(true));

    std::vector<fhe::Wire> outputs;
    if (kind == "adder") {
      fhe::Graph::AddResult r = graph.add(wa, wb, zero);
      outputs = std::move(r.sum);
      outputs.push_back(r.carry_out);
    } else if (kind == "equals") {
      outputs.push_back(graph.equals(wa, wb, one));
    } else if (kind == "mul") {
      outputs = graph.multiply(wa, wb, zero);
    } else if (kind == "mux") {
      outputs = graph.mux(one, wa, wb);  // select = Enc(1) -> x
    } else {
      outputs.push_back(graph.less_than(wa, wb, zero, one));
    }
    return outputs;
  };

  // The pre-execution noise audit picks the parameter set: record against
  // the fast toy scheme first, and if the analytic model says the result
  // would not decrypt, escalate to the deep noise budget *before* any
  // multiplication is spent (the word multiplier goes deep immediately --
  // its stacked adders never fit the toy budget).
  fhe::DghvParams params = kind == "mul" ? fhe::DghvParams::deep() : fhe::DghvParams::toy();
  auto scheme = std::make_unique<fhe::Dghv>(params, 0xC14C);
  auto graph = std::make_unique<fhe::Graph>(*scheme, lowering);
  std::vector<fhe::Wire> outputs = record(*scheme, *graph);
  const auto fits = [&] {
    for (const fhe::Wire w : outputs) {
      if (!graph->predicted_decryptable(w)) return false;
    }
    return true;
  };
  if (!fits() && kind != "mul") {
    std::printf("note         : predicted noise exceeds the toy budget; "
                "escalating to deep parameters\n");
    params = fhe::DghvParams::deep();
    scheme = std::make_unique<fhe::Dghv>(params, 0xC14C);
    graph = std::make_unique<fhe::Graph>(*scheme, lowering);
    outputs = record(*scheme, *graph);
  }

  // Execute wavefront by wavefront across the scheduler's PE lanes.
  core::Config config;
  config.backend_name = backend_name.empty() ? "ssa" : backend_name;
  config.num_workers = workers;
  config.intra_op_tiling = intra_op;
  core::Scheduler scheduler(config);
  fhe::Evaluator evaluator(scheduler);
  fhe::EvalReport report;
  fhe::EvalOptions options;
  options.check_noise = false;  // report the verdict instead of refusing
  const std::vector<fhe::Ciphertext> results =
      evaluator.evaluate(*graph, outputs, &report, options);

  const double budget = fhe::NoiseModel::budget_bits(params);
  std::printf("circuit      : %s, %u bit(s), params %s (eta=%zu, gamma=%zu)\n",
              kind.c_str(), width, params.eta == fhe::DghvParams::deep().eta ? "deep" : "toy",
              params.eta, params.gamma);
  // Predicted AND-depth under BOTH lowerings, against what the parameter
  // set supports: the caller sees the headroom each strategy would leave
  // before picking one.
  const unsigned depth_ripple = fhe::NoiseModel::predicted_depth(
      word_op, width, {fhe::LoweringStrategy::kRippleCarry});
  const unsigned depth_cs = fhe::NoiseModel::predicted_depth(
      word_op, width, {fhe::LoweringStrategy::kCarrySave});
  const unsigned max_depth = fhe::NoiseModel::max_mult_depth(params);
  std::printf("lowering     : %s\n", fhe::lowering_strategy_name(lowering.strategy).data());
  std::printf("pred. depth  : ripple %u, carry-save %u (params support max_mult_depth %u)\n",
              depth_ripple, depth_cs, max_depth);
  std::printf("backend      : %s, %u PE lane(s)\n", config.resolved_backend_name().c_str(),
              scheduler.num_workers());
  std::printf("nodes        : %zu recorded, %zu live, %zu dead (eliminated)\n",
              report.nodes, report.live_nodes, report.dead_nodes);
  std::printf("gates        : %llu AND (multiplications), %llu XOR (additions)\n",
              static_cast<unsigned long long>(report.and_gates),
              static_cast<unsigned long long>(report.xor_gates));
  std::printf("levels       : %u wavefront(s) for %llu AND gates\n", report.levels,
              static_cast<unsigned long long>(report.and_gates));
  std::printf("pred. noise  : %.1f bits (budget %.1f) -> %s\n", report.max_noise_bits,
              budget, report.decryptable ? "decryptable" : "NOT decryptable");
  for (const fhe::WavefrontStats& wf : report.wavefronts) {
    std::printf("  wave %-4u  : %3llu gates, cache %llu hit / %llu miss, %u lane(s), %.1f ms\n",
                wf.level, static_cast<unsigned long long>(wf.and_gates),
                static_cast<unsigned long long>(wf.cache_hits),
                static_cast<unsigned long long>(wf.cache_misses), wf.lanes_used, wf.wall_ms);
    if (report.spectrum_resident) {
      std::printf("               %llu spectra cached, %llu inverses paid, %llu folds, "
                  "%lld transforms avoided\n",
                  static_cast<unsigned long long>(wf.spectra_cached),
                  static_cast<unsigned long long>(wf.inverses_paid),
                  static_cast<unsigned long long>(wf.folds),
                  static_cast<long long>(wf.transforms_avoided));
    }
  }
  if (report.spectrum_resident) {
    const fhe::ResidencyStats& rs = report.residency;
    std::printf("residency    : %llu transforms executed (%llu fwd + %llu inv) vs %llu "
                "eager, %llu folds, %llu spectra evicted\n",
                static_cast<unsigned long long>(rs.transforms_executed()),
                static_cast<unsigned long long>(rs.forward_transforms),
                static_cast<unsigned long long>(rs.inverse_transforms),
                static_cast<unsigned long long>(3 * report.and_gates),
                static_cast<unsigned long long>(rs.domain_additions),
                static_cast<unsigned long long>(rs.spectra_evicted));
  }

  scheduler.wait_idle();
  const core::SchedulerStats stats = scheduler.stats();
  double busy_ms = 0.0;
  for (const core::LaneStats& lane : stats.lanes) busy_ms += lane.busy_ms;
  for (const core::LaneStats& lane : stats.lanes) {
    std::printf("  lane %-2u    : %llu jobs, %.1f ms busy (%.0f%% of lane-busy total)",
                lane.lane, static_cast<unsigned long long>(lane.jobs), lane.busy_ms,
                busy_ms > 0.0 ? 100.0 * lane.busy_ms / busy_ms : 0.0);
    if (lane.tiles > 0) {
      std::printf(", %llu intra-op tiles", static_cast<unsigned long long>(lane.tiles));
    }
    std::printf("\n");
  }
  if (stats.tile_groups > 0) {
    unsigned lanes_with_tiles = 0;
    for (const core::LaneStats& lane : stats.lanes) {
      if (lane.tiles > 0) ++lanes_with_tiles;
    }
    std::printf("intra-op     : %llu tile group(s), %llu tiles across %u lane(s)\n",
                static_cast<unsigned long long>(stats.tile_groups),
                static_cast<unsigned long long>(stats.tiles_executed), lanes_with_tiles);
  } else if (!intra_op) {
    std::printf("intra-op     : disabled (--no-intra-op)\n");
  }
  std::printf("cache        : %llu hits, %llu misses (shared across lanes)\n",
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses));

  fhe::EncryptedInt out_int(results.begin(), results.end());
  const u64 decrypted = fhe::decrypt_int(*scheme, out_int);
  if (!report.decryptable) {
    // Nothing was verified, so don't report success: exit 3 keeps CI smoke
    // steps honest if a circuit builder or the noise model regresses.
    std::printf("result       : skipped (predicted noise exceeds even the deep budget;\n"
                "               the pre-execution check would veto this circuit) -> exit 3\n");
    return 3;
  }
  std::printf("result       : %llu (expect %llu) -> %s\n",
              static_cast<unsigned long long>(decrypted),
              static_cast<unsigned long long>(expected),
              decrypted == expected ? "OK" : "WRONG");
  return decrypted == expected ? 0 : 1;
}

int cmd_service(const std::string& backend_name, unsigned workers, unsigned tenants,
                unsigned requests_per_tenant, fhe::LoweringOptions lowering) {
  using Clock = std::chrono::steady_clock;
  if (tenants == 0 || requests_per_tenant == 0) {
    std::fprintf(stderr, "error: tenants and requests-per-tenant must be >= 1\n");
    return 2;
  }

  core::ServiceOptions options;
  options.config.backend_name = backend_name.empty() ? "ssa" : backend_name;
  options.config.num_workers = workers;
  // Linger briefly at admission so this loop's requests coalesce the way
  // concurrent remote tenants would.
  options.admission_window_ms = 2.0;
  core::Service service(options);

  // One key context per tenant, then a synthetic single-multiply workload:
  // every request is one AND gate, the accelerator's unit of work.
  std::vector<core::SessionId> sessions;
  sessions.reserve(tenants);
  for (unsigned t = 0; t < tenants; ++t) {
    sessions.push_back(service.create_session(fhe::DghvParams::toy(), 0x5E55 + t));
  }

  struct Issued {
    unsigned tenant;
    bool expected;
    std::future<core::Response> future;
  };
  std::vector<Issued> issued;
  issued.reserve(static_cast<std::size_t>(tenants) * requests_per_tenant);

  const auto t0 = Clock::now();
  for (unsigned r = 0; r < requests_per_tenant; ++r) {
    for (unsigned t = 0; t < tenants; ++t) {
      fhe::Dghv& scheme = service.scheme(sessions[t]);
      const bool x = (t + r) % 2 == 0;
      const bool y = (t * 3 + r) % 3 != 0;
      core::Request request;
      request.spec = core::CircuitSpec{core::CircuitKind::kAnd, 1, lowering};
      request.inputs = fhe::encode_ciphertexts(
          std::vector<fhe::Ciphertext>{scheme.encrypt(x), scheme.encrypt(y)});
      issued.push_back({t, x && y, service.submit(sessions[t], std::move(request))});
    }
  }

  bool verified = true;
  for (Issued& item : issued) {
    const core::Response response = item.future.get();
    if (!response.ok()) {
      std::fprintf(stderr, "request failed: %s\n", response.error.c_str());
      verified = false;
      continue;
    }
    const std::vector<fhe::Ciphertext> outputs = fhe::decode_ciphertexts(response.outputs);
    verified = verified && outputs.size() == 1 &&
               service.scheme(sessions[item.tenant]).decrypt(outputs[0]) == item.expected;
  }
  const double wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  service.wait_idle();

  const core::ServiceStats stats = service.stats();
  const u64 requests = stats.submitted;
  std::printf("backend      : %s, %u PE lane(s)\n", options.config.resolved_backend_name().c_str(),
              service.scheduler().num_workers());
  std::printf("tenants      : %u x %u single-multiply request(s)\n", tenants,
              requests_per_tenant);
  std::printf("wall time    : %.1f ms (%.1f requests/s)\n", wall_ms,
              wall_ms > 0.0 ? 1000.0 * static_cast<double>(requests) / wall_ms : 0.0);
  std::printf("batches      : %llu scheduler batch(es) for %llu requests -> %s\n",
              static_cast<unsigned long long>(stats.batches_submitted),
              static_cast<unsigned long long>(requests),
              stats.batches_submitted < requests ? "coalesced across tenants"
                                                 : "no cross-request sharing");
  std::printf("coalescing   : %.2f requests/batch mean\n", stats.coalescing());
  std::printf("cache        : %llu hits, %llu misses (shared across lanes)\n",
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses));
  for (const core::LaneStats& lane : stats.lanes) {
    std::printf("  lane %-2u    : %llu jobs, %.1f ms busy\n", lane.lane,
                static_cast<unsigned long long>(lane.jobs), lane.busy_ms);
  }
  for (const core::SessionId session : sessions) {
    const core::TenantStats tenant = service.tenant_stats(session);
    std::printf("  tenant %-4llu: %llu completed, %llu gates, %llu B in / %llu B out\n",
                static_cast<unsigned long long>(tenant.session),
                static_cast<unsigned long long>(tenant.completed),
                static_cast<unsigned long long>(tenant.and_gates),
                static_cast<unsigned long long>(tenant.bytes_in),
                static_cast<unsigned long long>(tenant.bytes_out));
  }
  std::printf("verified     : %s\n", verified ? "yes" : "NO");
  return verified ? 0 : 1;
}

// Drives a remote fleet (a hemul_router or a single hemul_shard -- both
// speak the same envelope protocol) with multiply traffic, verifying every
// decrypted product against the plaintext result. The tenant-side key
// contexts are rebuilt from the key material the service ships back, so
// this exercises the full remote path: create-session RPC, serialized
// requests, and responses decrypted with nothing but wire bytes.
int cmd_fleet(const std::string& address, unsigned tenants, unsigned requests_per_tenant,
              fhe::LoweringOptions lowering, bool require_coalescing, double deadline_ms,
              unsigned retries) {
  using Clock = std::chrono::steady_clock;
  if (tenants == 0 || requests_per_tenant == 0) {
    std::fprintf(stderr, "error: tenants and requests-per-tenant must be >= 1\n");
    return 2;
  }
  constexpr unsigned kWidth = 2;  // 2x2 multiply: fits the toy noise budget

  net::ShardClient::Options client_options;
  client_options.deadline_ms = deadline_ms;
  net::ShardClient client(address, client_options);

  struct Tenant {
    core::SessionId session = 0;
    std::optional<fhe::Dghv> scheme;
  };
  std::vector<Tenant> fleet_tenants(tenants);
  for (unsigned t = 0; t < tenants; ++t) {
    net::ShardClient::SessionKeys keys =
        client.create_session(fhe::DghvParams::toy(), 0x5E55 + t);
    fleet_tenants[t].session = keys.session;
    fleet_tenants[t].scheme.emplace(std::move(keys.public_key), std::move(keys.secret_key),
                                    /*seed=*/0xC11E00 + t);
  }

  struct Issued {
    unsigned tenant = 0;
    u64 expected = 0;
    fhe::Bytes encoded;  ///< the request frame, kept for overload resubmits
    std::future<core::Response> future;
  };
  std::vector<Issued> issued;
  issued.reserve(static_cast<std::size_t>(tenants) * requests_per_tenant);

  const auto t0 = Clock::now();
  for (unsigned r = 0; r < requests_per_tenant; ++r) {
    for (unsigned t = 0; t < tenants; ++t) {
      fhe::Dghv& scheme = *fleet_tenants[t].scheme;
      const u64 x = (t + r) % (1u << kWidth);
      const u64 y = (t * 3 + r * 5) % (1u << kWidth);
      core::Request request;
      request.spec = core::CircuitSpec{core::CircuitKind::kMul, kWidth, lowering};
      std::vector<fhe::Ciphertext> inputs = fhe::encrypt_int(scheme, x, kWidth);
      const std::vector<fhe::Ciphertext> ys = fhe::encrypt_int(scheme, y, kWidth);
      inputs.insert(inputs.end(), ys.begin(), ys.end());
      request.inputs = fhe::encode_ciphertexts(inputs);
      fhe::Bytes encoded = core::encode_request(request);
      Issued item;
      item.tenant = t;
      item.expected = x * y;
      item.future = client.submit_raw(fleet_tenants[t].session, encoded);
      item.encoded = std::move(encoded);
      issued.push_back(std::move(item));
    }
  }

  bool verified = true;
  u64 resubmitted = 0;
  u64 timed_out = 0;
  for (Issued& item : issued) {
    core::Response response = item.future.get();
    // Overload sheds are explicitly safe to resubmit (the request never
    // entered the queue) -- and so is everything else in THIS command's
    // traffic: the multiplies are pure and the client holds the keys, so a
    // duplicate execution after a timeout or failover blip changes nothing
    // a tenant can observe. Pace the replays by the server's own hint.
    const auto retryable = [](core::ResponseStatus status) {
      return status == core::ResponseStatus::kOverloaded ||
             status == core::ResponseStatus::kUnavailable ||
             status == core::ResponseStatus::kTimeout ||
             status == core::ResponseStatus::kExpired;
    };
    for (unsigned attempt = 0; attempt < retries && retryable(response.status);
         ++attempt) {
      if (response.status == core::ResponseStatus::kTimeout ||
          response.status == core::ResponseStatus::kExpired) {
        ++timed_out;
      }
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          std::max(response.retry_after_ms, 1.0)));
      ++resubmitted;
      response = client.submit_raw(fleet_tenants[item.tenant].session, item.encoded).get();
    }
    if (response.status == core::ResponseStatus::kTimeout ||
        response.status == core::ResponseStatus::kExpired) {
      ++timed_out;
    }
    if (!response.ok()) {
      std::fprintf(stderr, "request failed (%u): %s\n",
                   static_cast<unsigned>(response.status), response.error.c_str());
      verified = false;
      continue;
    }
    const fhe::Dghv& scheme = *fleet_tenants[item.tenant].scheme;
    const std::vector<fhe::Ciphertext> outputs = fhe::decode_ciphertexts(response.outputs);
    if (outputs.size() != 2 * kWidth ||
        fhe::decrypt_int(scheme, outputs) != item.expected) {
      verified = false;
    }
  }
  const double wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  const net::FleetStats fleet = client.stats();
  const core::ServiceStats total = fleet.aggregate();
  std::printf("fleet        : %s, %zu shard(s)\n", address.c_str(), fleet.shards.size());
  std::printf("tenants      : %u x %u %u-bit multiply request(s), %s lowering\n", tenants,
              requests_per_tenant, kWidth,
              std::string(fhe::lowering_strategy_name(lowering.strategy)).c_str());
  std::printf("wall time    : %.1f ms (%.1f requests/s)\n", wall_ms,
              wall_ms > 0.0 ? 1000.0 * static_cast<double>(issued.size()) / wall_ms : 0.0);
  std::printf("coalescing   : %.2f requests/batch mean (%llu batches)\n", total.coalescing(),
              static_cast<unsigned long long>(total.batches_submitted));
  std::printf("shed         : %llu request(s), %llu resubmitted, %llu overdue\n",
              static_cast<unsigned long long>(total.shed),
              static_cast<unsigned long long>(resubmitted),
              static_cast<unsigned long long>(timed_out));
  std::printf("failover     : %llu session(s) re-homed, %llu router retries, %llu probes\n",
              static_cast<unsigned long long>(fleet.sessions_rehomed),
              static_cast<unsigned long long>(fleet.retries),
              static_cast<unsigned long long>(fleet.probes_sent));
  for (const net::ShardStats& shard : fleet.shards) {
    std::printf("  shard %-21s: %s, %llu completed, %llu gates, %zu session(s)\n",
                shard.address.c_str(),
                std::string(net::shard_state_name(shard.state)).c_str(),
                static_cast<unsigned long long>(shard.service.completed),
                static_cast<unsigned long long>(shard.service.and_gates),
                shard.service.sessions);
  }
  std::printf("verified     : %s\n", verified ? "yes" : "NO");
  if (require_coalescing && !(total.coalescing() > 1.0)) {
    std::fprintf(stderr, "error: --require-coalescing set but coalescing %.2f <= 1.0\n",
                 total.coalescing());
    return 1;
  }
  return verified ? 0 : 1;
}

int cmd_table1() {
  std::printf("%s", hw::ResourceComparison::paper().render_table().c_str());
  return 0;
}

int cmd_perf(unsigned pes) {
  hw::PerfParams params = hw::PerfParams::paper();
  params.num_pes = pes;
  const hw::PerfBreakdown b = hw::evaluate_perf(params);
  std::printf("P = %u, plan %s, T_C = %.1f ns\n", pes, params.plan.describe().c_str(),
              params.clock_ns);
  std::printf("T_FFT     = %.2f us\n", b.fft_us());
  std::printf("T_DOTPROD = %.2f us\n", b.dotprod_us());
  std::printf("T_CARRY   = %.2f us\n", b.carry_us());
  std::printf("T_MULT    = %.2f us\n", b.mult_us());
  std::printf("streamed  = %.1f products/s\n", b.mults_per_second());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);

  std::string backend_name;  // empty = config default ("hw")
  unsigned workers = 0;      // 0 = one scheduler lane per hardware thread
  bool intra_op = true;      // intra-op tiling escape hatch: --no-intra-op
  bool require_coalescing = false;  // fleet: fail unless batches were shared
  bool lowering_given = false;
  double deadline_ms = 0.0;  // fleet: per-request budget (0 = none)
  unsigned retries = 2;      // fleet: resubmits of kOverloaded sheds
  hemul::fhe::LoweringOptions lowering;  // default: ripple-carry
  for (std::size_t i = 0; i < args.size();) {
    if (args[i] == "--no-intra-op") {
      intra_op = false;
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (args[i] == "--require-coalescing") {
      require_coalescing = true;
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (args[i] == "--backend" && i + 1 < args.size()) {
      backend_name = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else if (args[i] == "--workers" && i + 1 < args.size()) {
      workers = static_cast<unsigned>(std::strtoul(args[i + 1].c_str(), nullptr, 10));
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else if (args[i] == "--deadline-ms" && i + 1 < args.size()) {
      deadline_ms = std::strtod(args[i + 1].c_str(), nullptr);
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else if (args[i] == "--retries" && i + 1 < args.size()) {
      retries = static_cast<unsigned>(std::strtoul(args[i + 1].c_str(), nullptr, 10));
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else if (args[i] == "--lowering" && i + 1 < args.size()) {
      try {
        lowering.strategy = hemul::fhe::lowering_strategy_from_name(args[i + 1]);
        lowering_given = true;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else {
      ++i;
    }
  }
  if (args.empty()) return usage();

  const std::string cmd = args[0];
  try {
    if (cmd == "backends" && args.size() == 1) return cmd_backends();
    if (cmd == "mul" && args.size() == 3) return cmd_mul(backend_name, args[1], args[2]);
    if (cmd == "random" && args.size() == 2) {
      return cmd_random(backend_name, std::strtoull(args[1].c_str(), nullptr, 10));
    }
    if (cmd == "batch" && args.size() == 3) {
      return cmd_batch(backend_name, std::strtoull(args[1].c_str(), nullptr, 10),
                       std::strtoull(args[2].c_str(), nullptr, 10));
    }
    if (cmd == "throughput" && args.size() == 3) {
      return cmd_throughput(backend_name, workers, intra_op,
                            std::strtoull(args[1].c_str(), nullptr, 10),
                            std::strtoull(args[2].c_str(), nullptr, 10));
    }
    if (cmd == "circuit" && (args.size() == 2 || args.size() == 3)) {
      const unsigned width = args.size() == 3
                                 ? static_cast<unsigned>(std::strtoul(args[2].c_str(), nullptr, 10))
                                 : 4;
      return cmd_circuit(backend_name, workers, intra_op, args[1], width, lowering);
    }
    if (cmd == "service" && args.size() == 3) {
      return cmd_service(backend_name, workers,
                         static_cast<unsigned>(std::strtoul(args[1].c_str(), nullptr, 10)),
                         static_cast<unsigned>(std::strtoul(args[2].c_str(), nullptr, 10)),
                         lowering);
    }
    if (cmd == "fleet" && args.size() == 4) {
      // fleet defaults to carry-save: a ripple-lowered 2-bit multiply is
      // deeper than the toy noise budget allows, carry-save fits.
      if (!lowering_given) {
        lowering.strategy = hemul::fhe::LoweringStrategy::kCarrySave;
      }
      return cmd_fleet(args[1], static_cast<unsigned>(std::strtoul(args[2].c_str(), nullptr, 10)),
                       static_cast<unsigned>(std::strtoul(args[3].c_str(), nullptr, 10)),
                       lowering, require_coalescing, deadline_ms, retries);
    }
    if (cmd == "table1" && args.size() == 1) return cmd_table1();
    if (cmd == "perf") {
      return cmd_perf(args.size() >= 2 ? static_cast<unsigned>(std::atoi(args[1].c_str())) : 4);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
