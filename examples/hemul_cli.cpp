// hemul_cli: command-line front end to the accelerator model.
//
//   hemul_cli [--backend <name>] mul <hexA> <hexB>   multiply two hex integers
//   hemul_cli [--backend <name>] random <bits>       multiply two random operands
//   hemul_cli [--backend <name>] batch <n> <bits>    stream n products of one
//                                                    shared operand, report the
//                                                    spectrum-cache amortization
//   hemul_cli [--workers N] throughput <n> <bits>    drive n products through the
//                                                    multi-PE scheduler, report
//                                                    jobs/sec and per-lane stats
//   hemul_cli backends                               list registered backends
//   hemul_cli table1                                 print the Table I comparison
//   hemul_cli perf [P]                               Section V performance model
//
// --backend selects any engine registered in backend::Registry ("hw", "ssa",
// "classical", "karatsuba", ...; default "hw" — except for `throughput`,
// which defaults to the software "ssa" engine). --workers sets the
// scheduler's PE-lane count (default: one lane per hardware thread).
// Exit code 0 on success; 2 on usage errors.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <vector>

#include "backend/registry.hpp"
#include "bigint/mul.hpp"
#include "core/accelerator.hpp"
#include "core/scheduler.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace {

using namespace hemul;

int usage() {
  std::fprintf(stderr,
               "usage: hemul_cli [--backend <name>] [--workers N] mul <hexA> <hexB> |\n"
               "                 random <bits> | batch <n> <bits> | throughput <n> <bits> |\n"
               "                 backends | table1 | perf [P]\n");
  return 2;
}

core::Accelerator make_accelerator(const std::string& backend_name) {
  core::Config config;
  config.backend_name = backend_name;
  return core::Accelerator(config);
}

void print_report(const core::MultiplyResult& result) {
  std::printf("product bits : %zu\n", result.product.bit_length());
  if (result.hw_report.has_value()) {
    std::printf("cycles       : %llu\n",
                static_cast<unsigned long long>(result.hw_report->total_cycles));
    std::printf("modeled time : %s\n",
                util::format_time_ns(result.hw_report->total_time_us() * 1000.0).c_str());
  }
}

int cmd_backends() {
  std::printf("%-12s %-14s %s\n", "name", "max operand", "capabilities");
  for (const std::string& name : backend::Registry::instance().names()) {
    const auto b = backend::make_backend(name);
    const backend::BackendLimits limits = b->limits();
    std::string caps;
    if (limits.caches_spectra) caps += "spectrum-cache ";
    if (limits.reports_hw_cycles) caps += "cycle-reports";
    std::printf("%-12s %-14s %s\n", name.c_str(),
                limits.max_operand_bits == 0
                    ? "unlimited"
                    : (std::to_string(limits.max_operand_bits) + " bits").c_str(),
                caps.c_str());
  }
  return 0;
}

int cmd_mul(const std::string& backend_name, const std::string& a_hex,
            const std::string& b_hex) {
  const auto a = bigint::BigUInt::from_hex(a_hex);
  const auto b = bigint::BigUInt::from_hex(b_hex);
  core::Accelerator accel = make_accelerator(backend_name);
  const auto result = accel.multiply(a, b);
  std::printf("backend      : %s\n", accel.backend().name().c_str());
  std::printf("%s\n", result.product.to_hex().c_str());
  print_report(result);
  const bool ok = result.product == bigint::mul_schoolbook(a, b);
  std::printf("verified     : %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}

int cmd_random(const std::string& backend_name, std::size_t bits) {
  util::Rng rng(0xC11);
  const auto a = bigint::BigUInt::random_bits(rng, bits);
  const auto b = bigint::BigUInt::random_bits(rng, bits);
  core::Accelerator accel = make_accelerator(backend_name);
  const auto result = accel.multiply(a, b);
  std::printf("backend      : %s\n", accel.backend().name().c_str());
  print_report(result);
  const bool ok = result.product == bigint::mul_auto_classical(a, b);
  std::printf("verified     : %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}

int cmd_batch(const std::string& backend_name, std::size_t n, std::size_t bits) {
  // One shared operand against n others: the repeated-operand pattern whose
  // forward spectrum the caching backends compute once instead of n times.
  util::Rng rng(0xBA7C);
  const auto a = bigint::BigUInt::random_bits(rng, bits);
  std::vector<backend::MulJob> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs.emplace_back(a, bigint::BigUInt::random_bits(rng, bits));
  }

  core::Accelerator accel = make_accelerator(backend_name);
  const core::BatchResult result = accel.multiply_batch(jobs);
  std::printf("backend      : %s\n", accel.backend().name().c_str());
  std::printf("products     : %zu\n", result.products.size());
  std::printf("fwd NTTs     : %llu (%llu cache hits)\n",
              static_cast<unsigned long long>(result.stats.forward_transforms),
              static_cast<unsigned long long>(result.stats.spectrum_cache_hits));
  if (result.stats.total_cycles > 0) {
    std::printf("total cycles : %llu (%s)\n",
                static_cast<unsigned long long>(result.stats.total_cycles),
                util::format_time_ns(result.stats.total_time_us() * 1000.0).c_str());
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (result.products[i] != bigint::mul_auto_classical(jobs[i].first, jobs[i].second)) {
      std::printf("verified     : NO (job %zu)\n", i);
      return 1;
    }
  }
  std::printf("verified     : yes\n");
  return 0;
}

int cmd_throughput(const std::string& backend_name, unsigned workers, std::size_t n,
                   std::size_t bits) {
  using Clock = std::chrono::steady_clock;

  core::Config config;
  // Wall-clock throughput is the point here, so default to the software
  // SSA engine rather than the simulated accelerator.
  config.backend_name = backend_name.empty() ? "ssa" : backend_name;
  config.num_workers = workers;
  core::Scheduler scheduler(config);

  util::Rng rng(0x7412);
  std::vector<backend::MulJob> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs.emplace_back(bigint::BigUInt::random_bits(rng, bits),
                      bigint::BigUInt::random_bits(rng, bits));
  }

  const auto t0 = Clock::now();
  std::vector<std::future<bigint::BigUInt>> futures = scheduler.submit_batch(jobs);
  std::vector<bigint::BigUInt> products;
  products.reserve(n);
  for (auto& future : futures) products.push_back(future.get());
  const double wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  // Lane stats are booked after each future is satisfied; drain them
  // before reading, or the last job per lane can be missing.
  scheduler.wait_idle();
  const core::SchedulerStats stats = scheduler.stats();
  std::printf("backend      : %s\n", config.resolved_backend_name().c_str());
  std::printf("workers      : %u\n", scheduler.num_workers());
  std::printf("jobs         : %zu x %zu bits\n", n, bits);
  std::printf("wall time    : %.1f ms\n", wall_ms);
  std::printf("throughput   : %.1f jobs/s\n", wall_ms > 0.0 ? 1000.0 * static_cast<double>(n) / wall_ms : 0.0);
  double busy_ms = 0.0;
  for (const core::LaneStats& lane : stats.lanes) {
    busy_ms += lane.busy_ms;
    std::printf("  lane %-2u    : %llu jobs, %.1f ms busy", lane.lane,
                static_cast<unsigned long long>(lane.jobs), lane.busy_ms);
    if (lane.hw_cycles > 0) {
      std::printf(", %llu modeled cycles", static_cast<unsigned long long>(lane.hw_cycles));
    }
    std::printf("\n");
  }
  if (wall_ms > 0.0) std::printf("parallelism  : %.2fx (lane-busy/wall)\n", busy_ms / wall_ms);
  std::printf("cache        : %llu hits, %llu misses\n",
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses));

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (products[i] != bigint::mul_auto_classical(jobs[i].first, jobs[i].second)) {
      std::printf("verified     : NO (job %zu)\n", i);
      return 1;
    }
  }
  std::printf("verified     : yes\n");
  return 0;
}

int cmd_table1() {
  std::printf("%s", hw::ResourceComparison::paper().render_table().c_str());
  return 0;
}

int cmd_perf(unsigned pes) {
  hw::PerfParams params = hw::PerfParams::paper();
  params.num_pes = pes;
  const hw::PerfBreakdown b = hw::evaluate_perf(params);
  std::printf("P = %u, plan %s, T_C = %.1f ns\n", pes, params.plan.describe().c_str(),
              params.clock_ns);
  std::printf("T_FFT     = %.2f us\n", b.fft_us());
  std::printf("T_DOTPROD = %.2f us\n", b.dotprod_us());
  std::printf("T_CARRY   = %.2f us\n", b.carry_us());
  std::printf("T_MULT    = %.2f us\n", b.mult_us());
  std::printf("streamed  = %.1f products/s\n", b.mults_per_second());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);

  std::string backend_name;  // empty = config default ("hw")
  unsigned workers = 0;      // 0 = one scheduler lane per hardware thread
  for (std::size_t i = 0; i + 1 < args.size();) {
    if (args[i] == "--backend") {
      backend_name = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else if (args[i] == "--workers") {
      workers = static_cast<unsigned>(std::strtoul(args[i + 1].c_str(), nullptr, 10));
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else {
      ++i;
    }
  }
  if (args.empty()) return usage();

  const std::string cmd = args[0];
  try {
    if (cmd == "backends" && args.size() == 1) return cmd_backends();
    if (cmd == "mul" && args.size() == 3) return cmd_mul(backend_name, args[1], args[2]);
    if (cmd == "random" && args.size() == 2) {
      return cmd_random(backend_name, std::strtoull(args[1].c_str(), nullptr, 10));
    }
    if (cmd == "batch" && args.size() == 3) {
      return cmd_batch(backend_name, std::strtoull(args[1].c_str(), nullptr, 10),
                       std::strtoull(args[2].c_str(), nullptr, 10));
    }
    if (cmd == "throughput" && args.size() == 3) {
      return cmd_throughput(backend_name, workers,
                            std::strtoull(args[1].c_str(), nullptr, 10),
                            std::strtoull(args[2].c_str(), nullptr, 10));
    }
    if (cmd == "table1" && args.size() == 1) return cmd_table1();
    if (cmd == "perf") {
      return cmd_perf(args.size() >= 2 ? static_cast<unsigned>(std::atoi(args[1].c_str())) : 4);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
