// multi_fpga_scaling: explores the accelerator's distributed design space
// -- PE counts, factorization plans and link bandwidths -- the way a
// deployment on one or several FPGAs would be sized (paper Section IV:
// "a flexible and composable design solution applicable either to on- or
// off-chip scenarios, possibly in multi-FPGA settings").

#include <cstdio>

#include "core/accelerator.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace hemul;

void run_config(unsigned pes, u64 link_bw, util::Table& table) {
  core::Config config = core::Config::paper();
  config.hardware.ntt.num_pes = pes;
  config.hardware.ntt.link_words_per_cycle = link_bw;
  core::Accelerator accel(config);

  util::Rng rng(pes * 31 + link_bw);
  fp::FpVec data(65536);
  for (auto& x : data) x = fp::Fp{rng.next()};

  hw::NttRunReport report;
  (void)accel.ntt_forward(data, &report);

  const double t_fft_us = static_cast<double>(report.total_cycles) * 5.0 / 1000.0;
  const u64 hidden = report.total_cycles_no_overlap - report.total_cycles;
  table.add_row(
      {std::to_string(pes), std::to_string(link_bw) + " w/cyc", report.schedule,
       util::with_commas(report.total_cycles), util::format_fixed(t_fft_us, 2) + " us",
       util::with_commas(report.exchange_total_words),
       util::with_commas(hidden) + " cyc"});
}

}  // namespace

int main() {
  std::printf("== multi-FPGA / multi-PE scaling explorer ==\n\n");
  std::printf("64K-point NTT, plan 64*64*16, cycle-accurate simulation at 200 MHz.\n");
  std::printf("Exchanges run over hypercube links and overlap the next compute\n");
  std::printf("stage through the double-buffered PE memories.\n\n");

  // The paper's Fig. 2: data distribution / exchange pattern at P = 4.
  {
    hw::DistributedNtt engine{hw::DistributedNttConfig{}};
    std::printf("data distribution (paper Fig. 2, P = 4):\n%s\n",
                engine.describe_distribution().c_str());
  }

  util::Table t({"PEs", "link bw", "schedule", "cycles", "T_FFT", "exchanged words",
                 "comm hidden"});
  for (const unsigned pes : {1u, 2u, 4u}) run_config(pes, 8, t);
  t.add_separator();
  // Narrow links: communication no longer fully hides behind compute.
  for (const u64 bw : {4u, 2u, 1u}) run_config(4, bw, t);
  std::printf("%s\n", t.render().c_str());

  std::printf("Reading the table:\n");
  std::printf("  * P=4 with 8-word links reproduces the paper: 6,144 cycles = 30.72 us,\n");
  std::printf("    with all 2 x 8,192 words/PE of exchange traffic hidden.\n");
  std::printf("  * Off-chip (multi-FPGA) deployments have narrower links: below\n");
  std::printf("    4 words/cycle the exchange outlives the next stage and starts\n");
  std::printf("    stalling the pipeline -- the scalability limit of Section IV.\n");
  return 0;
}
