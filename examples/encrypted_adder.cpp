// encrypted_adder: word-level homomorphic computation with the circuits
// layer -- a ripple-carry adder and an equality check over encrypted 4-bit
// integers, counting how many accelerator multiplications the server
// spends (the paper's cost unit: one AND = one 786,432-bit product).

#include <cstdio>

#include "core/accelerator.hpp"
#include "fhe/circuits.hpp"

int main() {
  using namespace hemul;

  std::printf("== encrypted 4-bit adder ==\n\n");

  fhe::Dghv scheme(fhe::DghvParams::toy(), 31337);
  fhe::Circuits circuits(scheme);

  const unsigned x = 11;
  const unsigned y = 7;
  std::printf("client encrypts x = %u, y = %u (4 bits each)\n", x, y);
  fhe::EncryptedInt cx = fhe::encrypt_int(scheme, x, 4);
  fhe::EncryptedInt cy = fhe::encrypt_int(scheme, y, 4);
  const fhe::Ciphertext zero = scheme.encrypt(false);
  const fhe::Ciphertext one = scheme.encrypt(true);

  // Server: ripple-carry addition, blind.
  const auto sum = circuits.add(cx, cy, zero);
  const u64 decrypted =
      fhe::decrypt_int(scheme, sum.sum) | (scheme.decrypt(sum.carry_out) ? 16u : 0u);
  std::printf("server computes x + y homomorphically -> client decrypts %llu (expect %u)\n",
              static_cast<unsigned long long>(decrypted), x + y);

  // Server: equality test against a reference value, blind.
  const fhe::EncryptedInt eleven = fhe::encrypt_int(scheme, 11, 4);
  const bool is_eleven = scheme.decrypt(circuits.equals(cx, eleven, one));
  std::printf("server tests x == 11 homomorphically -> %s\n", is_eleven ? "true" : "false");

  std::printf("\nAND gates used: %llu\n",
              static_cast<unsigned long long>(circuits.and_gates_used()));

  // What that costs on the accelerator at the paper's operating point.
  core::Accelerator accel;
  const double per_mult_us = accel.performance().mult_us();
  std::printf("at gamma = 786,432 bits each AND is one accelerator multiplication\n");
  std::printf("(~%.2f us): total modeled hardware time %.2f us\n", per_mult_us,
              per_mult_us * static_cast<double>(circuits.and_gates_used()));

  return decrypted == x + y && is_eleven ? 0 : 1;
}
