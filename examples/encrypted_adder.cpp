// encrypted_adder: word-level homomorphic computation with the lazy
// circuit-graph IR -- a ripple-carry adder and an equality check over
// encrypted 4-bit integers are *recorded* as one fhe::Graph, audited for
// noise before anything runs, then wavefront-evaluated through
// core::Accelerator::evaluate, counting how many accelerator
// multiplications the server spends (the paper's cost unit: one AND = one
// 786,432-bit product).

#include <cstdio>

#include "core/accelerator.hpp"
#include "fhe/circuits.hpp"
#include "fhe/graph.hpp"

int main() {
  using namespace hemul;

  std::printf("== encrypted 4-bit adder (circuit-graph IR) ==\n\n");

  fhe::Dghv scheme(fhe::DghvParams::toy(), 31337);

  const unsigned x = 11;
  const unsigned y = 7;
  std::printf("client encrypts x = %u, y = %u (4 bits each)\n", x, y);
  fhe::EncryptedInt cx = fhe::encrypt_int(scheme, x, 4);
  fhe::EncryptedInt cy = fhe::encrypt_int(scheme, y, 4);
  const fhe::EncryptedInt eleven = fhe::encrypt_int(scheme, 11, 4);

  // Server: record the whole computation first -- nothing executes yet.
  fhe::Graph graph(scheme);
  const std::vector<fhe::Wire> wx = graph.inputs(cx);
  const std::vector<fhe::Wire> wy = graph.inputs(cy);
  const fhe::Wire zero = graph.input(scheme.encrypt(false));
  const fhe::Wire one = graph.input(scheme.encrypt(true));

  fhe::Graph::AddResult sum = graph.add(wx, wy, zero);
  const fhe::Wire is_eleven = graph.equals(wx, graph.inputs(eleven), one);

  std::vector<fhe::Wire> outputs = sum.sum;
  outputs.push_back(sum.carry_out);
  outputs.push_back(is_eleven);

  std::printf("server records the circuit: %zu nodes, %llu AND gates, depth %u,\n",
              graph.size(), static_cast<unsigned long long>(graph.and_gates()),
              graph.level(sum.carry_out));
  std::printf("predicted noise at the deepest wire: %.1f bits (decryptable: %s)\n\n",
              graph.predicted_noise_bits(sum.carry_out),
              graph.predicted_decryptable(sum.carry_out) ? "yes" : "no");

  // Server: wavefront evaluation -- every level of independent AND gates
  // goes out as one batch across the accelerator's PE lanes.
  core::Config config;
  config.backend_name = "ssa";
  config.num_workers = 2;
  core::Accelerator accel(config);
  fhe::EvalReport report;
  const std::vector<fhe::Ciphertext> results = accel.evaluate(graph, outputs, &report);

  const fhe::EncryptedInt enc_sum(results.begin(), results.begin() + 4);
  const u64 decrypted =
      fhe::decrypt_int(scheme, enc_sum) | (scheme.decrypt(results[4]) ? 16u : 0u);
  std::printf("server computes x + y homomorphically -> client decrypts %llu (expect %u)\n",
              static_cast<unsigned long long>(decrypted), x + y);
  std::printf("server tests x == 11 homomorphically -> %s\n",
              scheme.decrypt(results[5]) ? "true" : "false");

  std::printf("\nAND gates executed: %llu in %zu wavefronts (%llu recorded)\n",
              static_cast<unsigned long long>(report.and_gates), report.wavefront_count(),
              static_cast<unsigned long long>(graph.and_gates()));
  for (const fhe::WavefrontStats& wf : report.wavefronts) {
    std::printf("  wave %-2u : %llu gates, %u lane(s), cache %llu hit / %llu miss\n",
                wf.level, static_cast<unsigned long long>(wf.and_gates), wf.lanes_used,
                static_cast<unsigned long long>(wf.cache_hits),
                static_cast<unsigned long long>(wf.cache_misses));
  }

  // What that costs on the accelerator at the paper's operating point.
  const double per_mult_us = core::Accelerator().performance().mult_us();
  std::printf("\nat gamma = 786,432 bits each AND is one accelerator multiplication\n");
  std::printf("(~%.2f us): total modeled hardware time %.2f us\n", per_mult_us,
              per_mult_us * static_cast<double>(report.and_gates));

  return decrypted == x + y && scheme.decrypt(results[5]) ? 0 : 1;
}
