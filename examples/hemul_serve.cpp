// hemul_serve: multi-tenant evaluation service driven by a request stream.
//
//   hemul_serve [--workers N] [--backend NAME] [--window MS]
//               [--lowering ripple|carry-save] [--stats-json FILE]
//               [INPUT-FILE]
//
// Reads a line-oriented request stream from INPUT-FILE (or stdin), plays
// it against one core::Service -- the serving front-end that owns the PE
// lanes -- and reports per-request results plus the service's JSON stats.
// Requests are submitted asynchronously in stream order, so independent
// tenants' wavefronts coalesce into shared scheduler batches exactly as
// they would behind a socket transport.
//
// Stream grammar (one command per line, '#' starts a comment; every
// request line may end with an optional lowering name overriding the
// --lowering default for that request):
//   session <name> <toy|medium|deep> <seed>
//   request <name> and <x> <y>                 x, y in {0, 1}
//   request <name> adder <width> <x> <y> [ripple|carry-save]
//   request <name> equals <width> <x> <y> [...]
//   request <name> mul <width> <x> <y> [...]
//   request <name> mux <width> <sel> <x> <y> [...]
//   request <name> lt <width> <x> <y> [...]
//
// Every request is encrypted under its session's keys, serialized through
// the framed wire format (core::encode_request, so the lowering-strategy
// byte really crosses the wire), evaluated by the service, deserialized,
// decrypted, and checked against the plaintext result. Exit 0 iff every
// completed request verifies (noise-rejected requests report but do not
// fail).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "fhe/circuits.hpp"
#include "fhe/serialize.hpp"
#include "service/service.hpp"

namespace {

using namespace hemul;

struct PendingRequest {
  std::string session;
  core::CircuitSpec spec;
  u64 expected = 0;
  std::size_t line = 0;
  std::future<core::Response> future;
};

int usage() {
  std::fprintf(stderr,
               "usage: hemul_serve [--workers N] [--backend NAME] [--window MS]\n"
               "                   [--lowering ripple|carry-save] [--stats-json FILE]\n"
               "                   [INPUT-FILE]\n");
  return 2;
}

fhe::DghvParams params_by_name(const std::string& name) {
  if (name == "toy") return fhe::DghvParams::toy();
  if (name == "medium") return fhe::DghvParams::medium();
  if (name == "deep") return fhe::DghvParams::deep();
  throw std::invalid_argument("unknown parameter set: " + name +
                              " (expected toy|medium|deep)");
}

fhe::Bytes encode_bits(fhe::Dghv& scheme, u64 value, unsigned width) {
  return fhe::encode_ciphertexts(fhe::encrypt_int(scheme, value, width));
}

u64 mask_of(unsigned width) { return width >= 64 ? ~0ULL : (1ULL << width) - 1; }

void print_stats_json(std::FILE* out, const core::Service& service) {
  const core::ServiceStats stats = service.stats();
  std::fprintf(out,
               "{\n"
               "  \"sessions\": %zu,\n"
               "  \"submitted\": %llu,\n"
               "  \"completed\": %llu,\n"
               "  \"rejected_by_noise\": %llu,\n"
               "  \"bad_requests\": %llu,\n"
               "  \"and_gates\": %llu,\n"
               "  \"wavefronts\": %llu,\n"
               "  \"batches_submitted\": %llu,\n"
               "  \"coalescing\": %.3f,\n"
               "  \"cache_hits\": %llu,\n"
               "  \"cache_misses\": %llu,\n"
               "  \"lanes\": [\n",
               stats.sessions, static_cast<unsigned long long>(stats.submitted),
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.rejected_by_noise),
               static_cast<unsigned long long>(stats.bad_requests),
               static_cast<unsigned long long>(stats.and_gates),
               static_cast<unsigned long long>(stats.wavefronts),
               static_cast<unsigned long long>(stats.batches_submitted), stats.coalescing(),
               static_cast<unsigned long long>(stats.cache_hits),
               static_cast<unsigned long long>(stats.cache_misses));
  for (std::size_t i = 0; i < stats.lanes.size(); ++i) {
    const core::LaneStats& lane = stats.lanes[i];
    std::fprintf(out, "    {\"lane\": %u, \"jobs\": %llu, \"busy_ms\": %.3f}%s\n", lane.lane,
                 static_cast<unsigned long long>(lane.jobs), lane.busy_ms,
                 i + 1 < stats.lanes.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  unsigned workers = 0;
  std::string backend_name = "ssa";
  double window_ms = 2.0;
  std::string lowering_name = "ripple";
  std::string stats_json;
  std::string input_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--workers" && i + 1 < argc) {
      workers = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--backend" && i + 1 < argc) {
      backend_name = argv[++i];
    } else if (arg == "--window" && i + 1 < argc) {
      window_ms = std::strtod(argv[++i], nullptr);
    } else if (arg == "--lowering" && i + 1 < argc) {
      lowering_name = argv[++i];
    } else if (arg == "--stats-json" && i + 1 < argc) {
      stats_json = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (input_path.empty()) {
      input_path = arg;
    } else {
      return usage();
    }
  }

  std::ifstream file;
  if (!input_path.empty()) {
    file.open(input_path);
    if (!file) {
      std::fprintf(stderr, "error: cannot open %s\n", input_path.c_str());
      return 1;
    }
  }
  std::istream& in = input_path.empty() ? std::cin : file;

  core::ServiceOptions options;
  options.config.backend_name = backend_name;
  options.config.num_workers = workers;
  options.admission_window_ms = window_ms;
  core::Service service(options);

  std::map<std::string, core::SessionId> sessions;
  std::vector<PendingRequest> pending;
  std::string line;
  std::size_t line_no = 0;
  try {
    while (std::getline(in, line)) {
      ++line_no;
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::istringstream words(line);
      std::string command;
      if (!(words >> command)) continue;  // blank line

      if (command == "session") {
        std::string name, params;
        u64 seed = 0;
        if (!(words >> name >> params >> seed)) {
          std::fprintf(stderr, "error: line %zu: session <name> <params> <seed>\n", line_no);
          return 2;
        }
        sessions[name] = service.create_session(params_by_name(params), seed);
        std::printf("session %-10s : %s params, id %llu\n", name.c_str(), params.c_str(),
                    static_cast<unsigned long long>(sessions[name]));
        continue;
      }
      if (command != "request") {
        std::fprintf(stderr, "error: line %zu: unknown command '%s'\n", line_no,
                     command.c_str());
        return 2;
      }

      std::string name, circuit;
      if (!(words >> name >> circuit)) {
        std::fprintf(stderr, "error: line %zu: request <session> <circuit> ...\n", line_no);
        return 2;
      }
      const auto session_it = sessions.find(name);
      if (session_it == sessions.end()) {
        std::fprintf(stderr, "error: line %zu: unknown session '%s'\n", line_no, name.c_str());
        return 2;
      }
      fhe::Dghv& scheme = service.scheme(session_it->second);

      PendingRequest record;
      record.session = name;
      const core::CircuitKind kind = core::circuit_kind_from_name(circuit);
      if (kind == core::CircuitKind::kGraph) {
        std::fprintf(stderr,
                     "error: line %zu: 'graph' requests carry a recorded topology and are "
                     "not expressible in stream mode (use the core::Service API)\n",
                     line_no);
        return 2;
      }
      record.line = line_no;
      core::Request request;

      u64 x = 0, y = 0, sel = 0;
      unsigned width = 1;
      if (kind == core::CircuitKind::kAnd) {
        if (!(words >> x >> y) || x > 1 || y > 1) {
          std::fprintf(stderr, "error: line %zu: request <s> and <0|1> <0|1>\n", line_no);
          return 2;
        }
        record.expected = x & y;
        request.inputs = encode_bits(scheme, x, 1);
        const fhe::Bytes rhs = encode_bits(scheme, y, 1);
        request.inputs.insert(request.inputs.end(), rhs.begin(), rhs.end());
      } else {
        if (!(words >> width) || width == 0 || width > core::kMaxCircuitWidth) {
          std::fprintf(stderr, "error: line %zu: width must be in [1, %u]\n", line_no,
                       core::kMaxCircuitWidth);
          return 2;
        }
        if (kind == core::CircuitKind::kMux) {
          if (!(words >> sel >> x >> y) || sel > 1) {
            std::fprintf(stderr, "error: line %zu: request <s> mux <w> <sel> <x> <y>\n",
                         line_no);
            return 2;
          }
        } else if (!(words >> x >> y)) {
          std::fprintf(stderr, "error: line %zu: request <s> %s <w> <x> <y>\n", line_no,
                       circuit.c_str());
          return 2;
        }
        x &= mask_of(width);
        y &= mask_of(width);
        switch (kind) {
          case core::CircuitKind::kAdder:
            record.expected = (x + y) & mask_of(width + 1);
            break;
          case core::CircuitKind::kEquals:
            record.expected = x == y ? 1 : 0;
            break;
          case core::CircuitKind::kMul:
            record.expected = (x * y) & mask_of(2 * width);
            break;
          case core::CircuitKind::kMux:
            record.expected = sel != 0 ? x : y;
            break;
          case core::CircuitKind::kLessThan:
            record.expected = x < y ? 1 : 0;
            break;
          default:
            return usage();
        }
        if (kind == core::CircuitKind::kMux) {
          request.inputs = encode_bits(scheme, sel, 1);
        }
        fhe::Bytes bits = encode_bits(scheme, x, width);
        request.inputs.insert(request.inputs.end(), bits.begin(), bits.end());
        bits = encode_bits(scheme, y, width);
        request.inputs.insert(request.inputs.end(), bits.begin(), bits.end());
      }

      // One parse/validate path for kind + width + lowering: the spec. An
      // optional trailing token on the request line overrides --lowering.
      std::string per_request = lowering_name;
      if (std::string token; words >> token) per_request = token;
      record.spec = core::CircuitSpec::parse(circuit, width, per_request);
      request.spec = record.spec;

      // Round-trip the request through the framed wire encoding, so stream
      // mode exercises exactly what a socket transport would put on the
      // wire -- including the lowering-strategy byte.
      record.future = service.submit(session_it->second,
                                     core::decode_request(core::encode_request(request)));
      pending.push_back(std::move(record));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: line %zu: %s\n", line_no, e.what());
    return 1;
  }

  // Collect every response, decrypt, verify against the plaintext result.
  bool all_verified = true;
  for (PendingRequest& record : pending) {
    const core::Response response = record.future.get();
    const std::string kind = record.spec.describe();
    if (response.status == core::ResponseStatus::kRejectedByNoise) {
      std::printf("line %-4zu %-10s %-20s: rejected by noise (%s)\n", record.line,
                  record.session.c_str(), kind.c_str(), response.error.c_str());
      continue;
    }
    if (!response.ok()) {
      std::printf("line %-4zu %-10s %-20s: BAD REQUEST (%s)\n", record.line,
                  record.session.c_str(), kind.c_str(), response.error.c_str());
      all_verified = false;
      continue;
    }
    const fhe::Dghv& scheme = service.scheme(sessions.at(record.session));
    const std::vector<fhe::Ciphertext> outputs = fhe::decode_ciphertexts(response.outputs);
    const u64 value =
        fhe::decrypt_int(scheme, fhe::EncryptedInt(outputs.begin(), outputs.end()));
    const bool ok = value == record.expected;
    all_verified = all_verified && ok;
    std::printf(
        "line %-4zu %-10s %-20s: %llu (expect %llu) %s  [%llu gates, %u levels, %llu shared "
        "batches, %.1f ms]\n",
        record.line, record.session.c_str(), kind.c_str(), static_cast<unsigned long long>(value),
        static_cast<unsigned long long>(record.expected), ok ? "OK" : "WRONG",
        static_cast<unsigned long long>(response.and_gates), response.levels,
        static_cast<unsigned long long>(response.shared_batches),
        response.queue_ms + response.exec_ms);
  }

  service.wait_idle();
  std::printf("\n-- service stats --\n");
  print_stats_json(stdout, service);
  if (!stats_json.empty()) {
    std::FILE* out = std::fopen(stats_json.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", stats_json.c_str());
      return 1;
    }
    print_stats_json(out, service);
    std::fclose(out);
  }
  return all_verified ? 0 : 1;
}
