// dghv_cloud: the scenario from the paper's introduction -- a client keeps
// data encrypted while a cloud server computes on it, with the server's
// ciphertext multiplications running on the accelerator.
//
// The demo evaluates a 2-bit x 2-bit multiplier homomorphically: the
// client encrypts two 2-bit numbers bit by bit; the "server" computes the
// product circuit (AND = hom-mult, XOR = hom-add) without ever seeing the
// plaintexts; the client decrypts the 4-bit result.

#include <array>
#include <cstdio>

#include "core/accelerator.hpp"
#include "fhe/dghv.hpp"

namespace {

using namespace hemul;
using fhe::Ciphertext;

struct Server {
  const fhe::Dghv& scheme;
  unsigned multiplications = 0;

  Ciphertext and_gate(const Ciphertext& a, const Ciphertext& b) {
    ++multiplications;
    return scheme.multiply(a, b);
  }
  Ciphertext xor_gate(const Ciphertext& a, const Ciphertext& b) {
    return scheme.add(a, b);
  }
};

}  // namespace

int main() {
  std::printf("== encrypted 2x2-bit multiplication in the \"cloud\" ==\n\n");

  // Client side: key generation (medium parameters keep the demo fast;
  // switch to DghvParams::small_paper() for the full 786,432-bit setting).
  fhe::Dghv scheme(fhe::DghvParams::medium(), 2024);
  std::printf("client: DGHV keys ready (gamma = %zu bits, eta = %zu, tau = %u)\n",
              scheme.params().gamma, scheme.params().eta, scheme.params().tau);

  // Route the server's big multiplications through the accelerator model.
  core::Accelerator accel;
  unsigned accel_calls = 0;
  const double modeled_us = accel.performance().mult_us();
  scheme.set_backend(std::make_shared<backend::FunctionBackend>(
      [&accel, &accel_calls](const bigint::BigUInt& x, const bigint::BigUInt& y) {
        ++accel_calls;
        return accel.multiply(x, y).product;
      },
      "accelerator"));

  const unsigned x = 3;  // client's secrets
  const unsigned y = 2;
  std::printf("client: encrypting x = %u and y = %u bit by bit\n\n", x, y);
  std::array<Ciphertext, 2> cx{scheme.encrypt(x & 1), scheme.encrypt((x >> 1) & 1)};
  std::array<Ciphertext, 2> cy{scheme.encrypt(y & 1), scheme.encrypt((y >> 1) & 1)};

  // Server side: schoolbook 2x2-bit product circuit on ciphertexts.
  //   p0 = x0y0
  //   p1 = x1y0 ^ x0y1            (carry c1 = x1y0 & x0y1)
  //   p2 = x1y1 ^ c1              (carry c2 = x1y1 & c1)
  //   p3 = c2
  Server server{scheme};
  const Ciphertext x0y0 = server.and_gate(cx[0], cy[0]);
  const Ciphertext x1y0 = server.and_gate(cx[1], cy[0]);
  const Ciphertext x0y1 = server.and_gate(cx[0], cy[1]);
  const Ciphertext x1y1 = server.and_gate(cx[1], cy[1]);
  const Ciphertext p0 = x0y0;
  const Ciphertext p1 = server.xor_gate(x1y0, x0y1);
  const Ciphertext c1 = server.and_gate(x1y0, x0y1);
  const Ciphertext p2 = server.xor_gate(x1y1, c1);
  const Ciphertext c2 = server.and_gate(x1y1, c1);
  const Ciphertext p3 = c2;
  std::printf("server: evaluated the product circuit blind (%u AND gates)\n",
              server.multiplications);
  std::printf("server: every AND ran a %zu-bit product on the accelerator\n",
              scheme.params().gamma);
  std::printf("        (modeled hardware time per product: %.2f us, %u products)\n\n",
              modeled_us, accel_calls);

  // Client side: decrypt the result.
  const unsigned product = (scheme.decrypt(p0) ? 1u : 0u) |
                           (scheme.decrypt(p1) ? 2u : 0u) |
                           (scheme.decrypt(p2) ? 4u : 0u) |
                           (scheme.decrypt(p3) ? 8u : 0u);
  std::printf("client: decrypted product = %u (expected %u) -> %s\n", product, x * y,
              product == x * y ? "OK" : "WRONG");
  return product == x * y ? 0 : 1;
}
