// Quickstart: multiply two 786,432-bit integers on the simulated
// accelerator and inspect the cycle report.
//
//   $ ./quickstart
//
// This is the 30-second tour of the public API: build a core::Accelerator
// (paper configuration by default), call multiply(), read the report.

#include <cstdio>

#include "bigint/mul.hpp"
#include "core/accelerator.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

int main() {
  using namespace hemul;

  std::printf("== hemul quickstart ==\n\n");

  // 1. Two random operands of the paper's size (the DGHV "small" setting).
  util::Rng rng(1);
  const auto a = bigint::BigUInt::random_bits(rng, 786432);
  const auto b = bigint::BigUInt::random_bits(rng, 786432);
  std::printf("operands: %zu and %zu bits\n", a.bit_length(), b.bit_length());

  // 2. The accelerator in its paper configuration: 4 processing elements on
  //    a 2-cube, 200 MHz, 64K-point NTT decomposed 64*64*16.
  core::Accelerator accel;

  // 3. Multiply. The product is bit-exact; the report carries the modeled
  //    hardware timing.
  const core::MultiplyResult result = accel.multiply(a, b);
  std::printf("product : %zu bits\n\n", result.product.bit_length());

  const hw::MultiplyReport& report = *result.hw_report;
  std::printf("simulated accelerator timing (T_C = %.0f ns):\n",
              accel.config().hardware.clock_ns);
  std::printf("  FFT (each of 3) : %6llu cycles = %s\n",
              static_cast<unsigned long long>(report.forward_a.total_cycles),
              util::format_time_ns(report.fft_time_us() * 1000).c_str());
  std::printf("  dot product     : %6llu cycles = %s\n",
              static_cast<unsigned long long>(report.pointwise.cycles),
              util::format_time_ns(report.pointwise_time_us() * 1000).c_str());
  std::printf("  carry recovery  : %6llu cycles = %s\n",
              static_cast<unsigned long long>(report.carry.cycles),
              util::format_time_ns(report.carry_time_us() * 1000).c_str());
  std::printf("  full multiply   : %6llu cycles = %s   (paper: ~122 us)\n\n",
              static_cast<unsigned long long>(report.total_cycles),
              util::format_time_ns(report.total_time_us() * 1000).c_str());

  // 4. Verify against an independent software multiplier.
  const bool ok = result.product == bigint::mul_karatsuba(a, b);
  std::printf("verification vs Karatsuba: %s\n", ok ? "MATCH" : "MISMATCH");
  return ok ? 0 : 1;
}
