// hemul_shard: one core::Service behind the envelope TCP protocol -- the
// fleet's unit of scale-out. Typically several shards run behind one
// hemul_router (see docs/operations.md for the runbook).
//
//   hemul_shard [--port N] [--workers N] [--backend NAME] [--window MS]
//               [--max-sessions N] [--max-queue N] [--deadline-ms MS]
//               [--fault-plan SPEC]
//
// --deadline-ms sets the default per-request budget: requests whose budget
// elapses in the admission queue complete with kExpired instead of
// executing (a request-borne deadline overrides it).
// --fault-plan installs a deterministic network fault injector, e.g.
// "seed=7,drop=0.02,delay=0.05:3,corrupt=0.01" -- fault drills only.
//
// --port 0 (the default) binds an ephemeral port; the daemon prints
//   hemul_shard listening on port <N>
// to stdout (flushed) so a launcher can parse where to connect.
//
// Shutdown: SIGTERM/SIGINT (or a kShutdown request over the wire) puts the
// service in drain mode -- new sessions are refused with a clean
// kShuttingDown error, queued work still completes -- then the daemon waits
// for idle and exits 0.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <condition_variable>
#include <mutex>
#include <string>

#include "net/fault.hpp"
#include "net/server.hpp"
#include "service/service.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: hemul_shard [--port N] [--workers N] [--backend NAME]\n"
               "                   [--window MS] [--max-sessions N] [--max-queue N]\n"
               "                   [--deadline-ms MS] [--fault-plan SPEC]\n"
               "  --deadline-ms MS   default per-request budget; overdue queued\n"
               "                     requests expire instead of executing (0 = off)\n"
               "  --fault-plan SPEC  deterministic fault injection, e.g.\n"
               "                     seed=7,drop=0.02,delay=0.05:3,corrupt=0.01\n");
  return 2;
}

std::mutex g_mutex;
std::condition_variable g_cv;
bool g_shutdown = false;

void request_shutdown() {
  {
    std::lock_guard lock(g_mutex);
    g_shutdown = true;
  }
  g_cv.notify_all();
}

extern "C" void handle_signal(int) { request_shutdown(); }

}  // namespace

int main(int argc, char** argv) {
  using namespace hemul;

  int port = 0;
  unsigned workers = 0;
  std::string backend_name = "ssa";
  double window_ms = 2.0;
  std::size_t max_sessions = 0;
  std::size_t max_queue = 0;
  double deadline_ms = 0.0;
  std::string fault_plan;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--backend" && i + 1 < argc) {
      backend_name = argv[++i];
    } else if (arg == "--window" && i + 1 < argc) {
      window_ms = std::strtod(argv[++i], nullptr);
    } else if (arg == "--max-sessions" && i + 1 < argc) {
      max_sessions = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--max-queue" && i + 1 < argc) {
      max_queue = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      deadline_ms = std::strtod(argv[++i], nullptr);
    } else if (arg == "--fault-plan" && i + 1 < argc) {
      fault_plan = argv[++i];
    } else {
      return usage();
    }
  }

  core::ServiceOptions options;
  options.config.backend_name = backend_name;
  options.config.num_workers = workers;
  options.admission_window_ms = window_ms;
  options.max_sessions = max_sessions;
  options.max_queue_depth = max_queue;
  options.default_deadline_ms = deadline_ms;

  try {
    if (!fault_plan.empty()) {
      const net::FaultPlan plan = net::FaultPlan::parse(fault_plan);
      net::install_fault_injector(std::make_shared<net::FaultInjector>(plan));
      std::fprintf(stderr, "hemul_shard: fault injection armed (%s)\n",
                   fault_plan.c_str());
    }
    core::Service service(options);
    net::ShardServer::Options server_options;
    server_options.port = port;
    server_options.on_shutdown = request_shutdown;
    net::ShardServer server(service, server_options);

    // The launcher contract: port on stdout, flushed, before any traffic.
    std::printf("hemul_shard listening on port %d\n", server.port());
    std::fflush(stdout);

    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);

    {
      std::unique_lock lock(g_mutex);
      g_cv.wait(lock, [] { return g_shutdown; });
    }

    // Drain: refuse new work, finish what was admitted, then tear down.
    service.stop_accepting();
    service.wait_idle();
    server.stop();
    if (const auto injector = net::fault_injector()) {
      std::fprintf(stderr, "hemul_shard: %s\n", injector->summary().c_str());
    }
    std::fprintf(stderr, "hemul_shard: drained, exiting\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hemul_shard: fatal: %s\n", e.what());
    return 1;
  }
}
