// ntt_explorer: a tour of the number theory that makes the accelerator
// work -- the Solinas prime, the shift-only twiddles (Eq. 3), the aligned
// root hierarchy, and the Eq. 4 normalizer. Useful as a worked companion
// to Section III of the paper.

#include <cstdio>

#include "fp/normalize.hpp"
#include "fp/roots.hpp"
#include "ntt/mixed_radix.hpp"
#include "util/format.hpp"

int main() {
  using namespace hemul;
  using fp::Fp;

  std::printf("== the arithmetic behind the accelerator ==\n\n");

  std::printf("prime p = 2^64 - 2^32 + 1 = 0x%s\n", util::hex64(fp::kModulus).c_str());
  std::printf("  2^32  mod p = 0x%s\n", util::hex64(fp::kTwo.pow(32).value()).c_str());
  std::printf("  2^64  mod p = 0x%s   (= 2^32 - 1: the Eq. 4 fold)\n",
              util::hex64(fp::kTwo.pow(64).value()).c_str());
  std::printf("  2^96  mod p = 0x%s   (= -1)\n",
              util::hex64(fp::kTwo.pow(96).value()).c_str());
  std::printf("  2^192 mod p = 0x%s   (= 1: values live in 192 bits)\n\n",
              util::hex64(fp::kTwo.pow(192).value()).c_str());

  std::printf("the 64th root of unity is 8 (Eq. 3), so radix-64 butterflies are\n");
  std::printf("shifts: 8^(i*k) = 2^(3*i*k). first few powers of 8:\n  ");
  Fp w = fp::kOne;
  for (int i = 0; i < 5; ++i) {
    std::printf("8^%d=2^%-3d ", i, 3 * i);
    w *= fp::kOmega64;
  }
  std::printf("... 8^32 = 2^96 = -1, 8^64 = 1\n\n");

  std::printf("aligned root hierarchy for the 64K-point transform:\n");
  const Fp root = fp::aligned_root(65536);
  std::printf("  w = primitive 65536th root with w^1024 = 8 exactly\n");
  std::printf("  w           = 0x%s\n", util::hex64(root.value()).c_str());
  std::printf("  w^1024      = 0x%s (= 8)\n", util::hex64(root.pow(1024).value()).c_str());
  std::printf("  w^4096      = 0x%s (= 2^12, the radix-16 root)\n",
              util::hex64(root.pow(4096).value()).c_str());
  std::printf("  w^(65536/2) = 0x%s (= -1)\n\n",
              util::hex64(root.pow(32768).value()).c_str());

  std::printf("Eq. 4 normalizer on x = a*2^96 + b*2^64 + c*2^32 + d:\n");
  const u128 sample = (u128{0x0123456789abcdefULL} << 64) | 0xfedcba9876543210ULL;
  const i128 eq4 = fp::normalize_eq4(sample);
  std::printf("  x            = 0x%s%s\n", util::hex64(0x0123456789abcdefULL).c_str(),
              util::hex64(0xfedcba9876543210ULL).c_str());
  std::printf("  2^32(b+c)-a-b+d needs one conditional +/-p -> 0x%s\n",
              util::hex64(fp::addmod(eq4).value()).c_str());
  std::printf("  check vs 128-bit reduction: 0x%s\n\n",
              util::hex64(fp::reduce128(sample)).c_str());

  std::printf("operation mix of one 64K-point transform (plan 64*64*16):\n");
  const ntt::MixedRadixNtt engine(ntt::NttPlan::paper_64k());
  fp::FpVec data(65536, fp::kOne);
  ntt::NttOpCounts counts;
  (void)engine.forward(data, &counts);
  std::printf("  butterfly multiplications (all shifts): %s\n",
              util::with_commas(counts.shift_muls).c_str());
  std::printf("  inter-stage twiddles (DSP multipliers): %s\n",
              util::with_commas(counts.generic_muls).c_str());
  std::printf("  -> %.1f%% of multiplications cost zero DSP blocks\n",
              100.0 * static_cast<double>(counts.shift_muls) /
                  static_cast<double>(counts.shift_muls + counts.generic_muls));
  return 0;
}
