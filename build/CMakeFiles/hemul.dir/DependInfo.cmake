
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backend/backend.cpp" "CMakeFiles/hemul.dir/src/backend/backend.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/backend/backend.cpp.o.d"
  "/root/repo/src/backend/classical.cpp" "CMakeFiles/hemul.dir/src/backend/classical.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/backend/classical.cpp.o.d"
  "/root/repo/src/backend/hw_backend.cpp" "CMakeFiles/hemul.dir/src/backend/hw_backend.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/backend/hw_backend.cpp.o.d"
  "/root/repo/src/backend/registry.cpp" "CMakeFiles/hemul.dir/src/backend/registry.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/backend/registry.cpp.o.d"
  "/root/repo/src/backend/ssa_backend.cpp" "CMakeFiles/hemul.dir/src/backend/ssa_backend.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/backend/ssa_backend.cpp.o.d"
  "/root/repo/src/bigint/barrett.cpp" "CMakeFiles/hemul.dir/src/bigint/barrett.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/bigint/barrett.cpp.o.d"
  "/root/repo/src/bigint/biguint.cpp" "CMakeFiles/hemul.dir/src/bigint/biguint.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/bigint/biguint.cpp.o.d"
  "/root/repo/src/bigint/div.cpp" "CMakeFiles/hemul.dir/src/bigint/div.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/bigint/div.cpp.o.d"
  "/root/repo/src/bigint/io.cpp" "CMakeFiles/hemul.dir/src/bigint/io.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/bigint/io.cpp.o.d"
  "/root/repo/src/bigint/mul.cpp" "CMakeFiles/hemul.dir/src/bigint/mul.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/bigint/mul.cpp.o.d"
  "/root/repo/src/core/accelerator.cpp" "CMakeFiles/hemul.dir/src/core/accelerator.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/core/accelerator.cpp.o.d"
  "/root/repo/src/core/config.cpp" "CMakeFiles/hemul.dir/src/core/config.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/core/config.cpp.o.d"
  "/root/repo/src/fhe/circuits.cpp" "CMakeFiles/hemul.dir/src/fhe/circuits.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/fhe/circuits.cpp.o.d"
  "/root/repo/src/fhe/dghv.cpp" "CMakeFiles/hemul.dir/src/fhe/dghv.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/fhe/dghv.cpp.o.d"
  "/root/repo/src/fhe/noise.cpp" "CMakeFiles/hemul.dir/src/fhe/noise.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/fhe/noise.cpp.o.d"
  "/root/repo/src/fhe/params.cpp" "CMakeFiles/hemul.dir/src/fhe/params.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/fhe/params.cpp.o.d"
  "/root/repo/src/fp/fp64.cpp" "CMakeFiles/hemul.dir/src/fp/fp64.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/fp/fp64.cpp.o.d"
  "/root/repo/src/fp/normalize.cpp" "CMakeFiles/hemul.dir/src/fp/normalize.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/fp/normalize.cpp.o.d"
  "/root/repo/src/fp/roots.cpp" "CMakeFiles/hemul.dir/src/fp/roots.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/fp/roots.cpp.o.d"
  "/root/repo/src/hw/accel/accelerator.cpp" "CMakeFiles/hemul.dir/src/hw/accel/accelerator.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/accel/accelerator.cpp.o.d"
  "/root/repo/src/hw/accel/carry_recovery.cpp" "CMakeFiles/hemul.dir/src/hw/accel/carry_recovery.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/accel/carry_recovery.cpp.o.d"
  "/root/repo/src/hw/accel/distributed_ntt.cpp" "CMakeFiles/hemul.dir/src/hw/accel/distributed_ntt.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/accel/distributed_ntt.cpp.o.d"
  "/root/repo/src/hw/accel/pointwise.cpp" "CMakeFiles/hemul.dir/src/hw/accel/pointwise.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/accel/pointwise.cpp.o.d"
  "/root/repo/src/hw/arith/adder_tree.cpp" "CMakeFiles/hemul.dir/src/hw/arith/adder_tree.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/arith/adder_tree.cpp.o.d"
  "/root/repo/src/hw/arith/carry_save.cpp" "CMakeFiles/hemul.dir/src/hw/arith/carry_save.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/arith/carry_save.cpp.o.d"
  "/root/repo/src/hw/arith/reduction.cpp" "CMakeFiles/hemul.dir/src/hw/arith/reduction.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/arith/reduction.cpp.o.d"
  "/root/repo/src/hw/arith/rot192.cpp" "CMakeFiles/hemul.dir/src/hw/arith/rot192.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/arith/rot192.cpp.o.d"
  "/root/repo/src/hw/arith/shifter_bank.cpp" "CMakeFiles/hemul.dir/src/hw/arith/shifter_bank.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/arith/shifter_bank.cpp.o.d"
  "/root/repo/src/hw/dsp/dsp_block.cpp" "CMakeFiles/hemul.dir/src/hw/dsp/dsp_block.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/dsp/dsp_block.cpp.o.d"
  "/root/repo/src/hw/dsp/mod_mult.cpp" "CMakeFiles/hemul.dir/src/hw/dsp/mod_mult.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/dsp/mod_mult.cpp.o.d"
  "/root/repo/src/hw/fft64/baseline_fft64.cpp" "CMakeFiles/hemul.dir/src/hw/fft64/baseline_fft64.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/fft64/baseline_fft64.cpp.o.d"
  "/root/repo/src/hw/fft64/optimized_fft64.cpp" "CMakeFiles/hemul.dir/src/hw/fft64/optimized_fft64.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/fft64/optimized_fft64.cpp.o.d"
  "/root/repo/src/hw/fft64/pipelined_fft64.cpp" "CMakeFiles/hemul.dir/src/hw/fft64/pipelined_fft64.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/fft64/pipelined_fft64.cpp.o.d"
  "/root/repo/src/hw/fft64/radix_unit.cpp" "CMakeFiles/hemul.dir/src/hw/fft64/radix_unit.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/fft64/radix_unit.cpp.o.d"
  "/root/repo/src/hw/memory/banked_buffer.cpp" "CMakeFiles/hemul.dir/src/hw/memory/banked_buffer.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/memory/banked_buffer.cpp.o.d"
  "/root/repo/src/hw/memory/double_buffer.cpp" "CMakeFiles/hemul.dir/src/hw/memory/double_buffer.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/memory/double_buffer.cpp.o.d"
  "/root/repo/src/hw/memory/sram_bank.cpp" "CMakeFiles/hemul.dir/src/hw/memory/sram_bank.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/memory/sram_bank.cpp.o.d"
  "/root/repo/src/hw/noc/exchange.cpp" "CMakeFiles/hemul.dir/src/hw/noc/exchange.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/noc/exchange.cpp.o.d"
  "/root/repo/src/hw/noc/hypercube.cpp" "CMakeFiles/hemul.dir/src/hw/noc/hypercube.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/noc/hypercube.cpp.o.d"
  "/root/repo/src/hw/noc/schedule.cpp" "CMakeFiles/hemul.dir/src/hw/noc/schedule.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/noc/schedule.cpp.o.d"
  "/root/repo/src/hw/pe/data_route.cpp" "CMakeFiles/hemul.dir/src/hw/pe/data_route.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/pe/data_route.cpp.o.d"
  "/root/repo/src/hw/pe/processing_element.cpp" "CMakeFiles/hemul.dir/src/hw/pe/processing_element.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/pe/processing_element.cpp.o.d"
  "/root/repo/src/hw/perf/literature.cpp" "CMakeFiles/hemul.dir/src/hw/perf/literature.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/perf/literature.cpp.o.d"
  "/root/repo/src/hw/perf/perf_model.cpp" "CMakeFiles/hemul.dir/src/hw/perf/perf_model.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/perf/perf_model.cpp.o.d"
  "/root/repo/src/hw/resources/cost_model.cpp" "CMakeFiles/hemul.dir/src/hw/resources/cost_model.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/resources/cost_model.cpp.o.d"
  "/root/repo/src/hw/resources/device.cpp" "CMakeFiles/hemul.dir/src/hw/resources/device.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/resources/device.cpp.o.d"
  "/root/repo/src/hw/resources/report.cpp" "CMakeFiles/hemul.dir/src/hw/resources/report.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/resources/report.cpp.o.d"
  "/root/repo/src/hw/resources/resource_vec.cpp" "CMakeFiles/hemul.dir/src/hw/resources/resource_vec.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/hw/resources/resource_vec.cpp.o.d"
  "/root/repo/src/ntt/convolution.cpp" "CMakeFiles/hemul.dir/src/ntt/convolution.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/ntt/convolution.cpp.o.d"
  "/root/repo/src/ntt/mixed_radix.cpp" "CMakeFiles/hemul.dir/src/ntt/mixed_radix.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/ntt/mixed_radix.cpp.o.d"
  "/root/repo/src/ntt/negacyclic.cpp" "CMakeFiles/hemul.dir/src/ntt/negacyclic.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/ntt/negacyclic.cpp.o.d"
  "/root/repo/src/ntt/plan.cpp" "CMakeFiles/hemul.dir/src/ntt/plan.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/ntt/plan.cpp.o.d"
  "/root/repo/src/ntt/radix2.cpp" "CMakeFiles/hemul.dir/src/ntt/radix2.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/ntt/radix2.cpp.o.d"
  "/root/repo/src/ntt/reference.cpp" "CMakeFiles/hemul.dir/src/ntt/reference.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/ntt/reference.cpp.o.d"
  "/root/repo/src/ssa/batch.cpp" "CMakeFiles/hemul.dir/src/ssa/batch.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/ssa/batch.cpp.o.d"
  "/root/repo/src/ssa/multiply.cpp" "CMakeFiles/hemul.dir/src/ssa/multiply.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/ssa/multiply.cpp.o.d"
  "/root/repo/src/ssa/pack.cpp" "CMakeFiles/hemul.dir/src/ssa/pack.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/ssa/pack.cpp.o.d"
  "/root/repo/src/ssa/params.cpp" "CMakeFiles/hemul.dir/src/ssa/params.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/ssa/params.cpp.o.d"
  "/root/repo/src/ssa/spectrum_cache.cpp" "CMakeFiles/hemul.dir/src/ssa/spectrum_cache.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/ssa/spectrum_cache.cpp.o.d"
  "/root/repo/src/util/format.cpp" "CMakeFiles/hemul.dir/src/util/format.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/util/format.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/hemul.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/hemul.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/hemul.dir/src/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
