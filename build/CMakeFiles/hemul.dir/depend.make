# Empty dependencies file for hemul.
# This may be replaced when dependencies are built.
