file(REMOVE_RECURSE
  "libhemul.a"
)
