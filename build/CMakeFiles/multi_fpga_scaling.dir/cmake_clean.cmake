file(REMOVE_RECURSE
  "CMakeFiles/multi_fpga_scaling.dir/examples/multi_fpga_scaling.cpp.o"
  "CMakeFiles/multi_fpga_scaling.dir/examples/multi_fpga_scaling.cpp.o.d"
  "multi_fpga_scaling"
  "multi_fpga_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_fpga_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
