# Empty dependencies file for multi_fpga_scaling.
# This may be replaced when dependencies are built.
