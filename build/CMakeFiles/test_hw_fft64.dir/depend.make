# Empty dependencies file for test_hw_fft64.
# This may be replaced when dependencies are built.
