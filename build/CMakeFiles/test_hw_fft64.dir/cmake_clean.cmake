file(REMOVE_RECURSE
  "CMakeFiles/test_hw_fft64.dir/tests/test_hw_fft64.cpp.o"
  "CMakeFiles/test_hw_fft64.dir/tests/test_hw_fft64.cpp.o.d"
  "test_hw_fft64"
  "test_hw_fft64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_fft64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
