file(REMOVE_RECURSE
  "CMakeFiles/bench_fft64_ablation.dir/bench/bench_fft64_ablation.cpp.o"
  "CMakeFiles/bench_fft64_ablation.dir/bench/bench_fft64_ablation.cpp.o.d"
  "bench_fft64_ablation"
  "bench_fft64_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fft64_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
