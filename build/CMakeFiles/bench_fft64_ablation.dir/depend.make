# Empty dependencies file for bench_fft64_ablation.
# This may be replaced when dependencies are built.
