# Empty dependencies file for test_hw_dsp.
# This may be replaced when dependencies are built.
