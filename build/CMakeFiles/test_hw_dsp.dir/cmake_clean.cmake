file(REMOVE_RECURSE
  "CMakeFiles/test_hw_dsp.dir/tests/test_hw_dsp.cpp.o"
  "CMakeFiles/test_hw_dsp.dir/tests/test_hw_dsp.cpp.o.d"
  "test_hw_dsp"
  "test_hw_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
