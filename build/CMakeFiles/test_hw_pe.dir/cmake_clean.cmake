file(REMOVE_RECURSE
  "CMakeFiles/test_hw_pe.dir/tests/test_hw_pe.cpp.o"
  "CMakeFiles/test_hw_pe.dir/tests/test_hw_pe.cpp.o.d"
  "test_hw_pe"
  "test_hw_pe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_pe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
