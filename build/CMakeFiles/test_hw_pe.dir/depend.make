# Empty dependencies file for test_hw_pe.
# This may be replaced when dependencies are built.
