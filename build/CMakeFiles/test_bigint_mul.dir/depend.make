# Empty dependencies file for test_bigint_mul.
# This may be replaced when dependencies are built.
