file(REMOVE_RECURSE
  "CMakeFiles/test_bigint_mul.dir/tests/test_bigint_mul.cpp.o"
  "CMakeFiles/test_bigint_mul.dir/tests/test_bigint_mul.cpp.o.d"
  "test_bigint_mul"
  "test_bigint_mul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bigint_mul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
