# Empty dependencies file for bench_table2_times.
# This may be replaced when dependencies are built.
