# Empty dependencies file for test_fhe_circuits.
# This may be replaced when dependencies are built.
