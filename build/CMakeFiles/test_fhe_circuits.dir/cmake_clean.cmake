file(REMOVE_RECURSE
  "CMakeFiles/test_fhe_circuits.dir/tests/test_fhe_circuits.cpp.o"
  "CMakeFiles/test_fhe_circuits.dir/tests/test_fhe_circuits.cpp.o.d"
  "test_fhe_circuits"
  "test_fhe_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fhe_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
