file(REMOVE_RECURSE
  "CMakeFiles/bench_fhe_dghv.dir/bench/bench_fhe_dghv.cpp.o"
  "CMakeFiles/bench_fhe_dghv.dir/bench/bench_fhe_dghv.cpp.o.d"
  "bench_fhe_dghv"
  "bench_fhe_dghv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fhe_dghv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
