# Empty dependencies file for bench_fhe_dghv.
# This may be replaced when dependencies are built.
