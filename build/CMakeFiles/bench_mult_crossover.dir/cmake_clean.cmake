file(REMOVE_RECURSE
  "CMakeFiles/bench_mult_crossover.dir/bench/bench_mult_crossover.cpp.o"
  "CMakeFiles/bench_mult_crossover.dir/bench/bench_mult_crossover.cpp.o.d"
  "bench_mult_crossover"
  "bench_mult_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mult_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
