# Empty dependencies file for bench_mult_crossover.
# This may be replaced when dependencies are built.
