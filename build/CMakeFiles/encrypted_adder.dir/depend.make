# Empty dependencies file for encrypted_adder.
# This may be replaced when dependencies are built.
