file(REMOVE_RECURSE
  "CMakeFiles/encrypted_adder.dir/examples/encrypted_adder.cpp.o"
  "CMakeFiles/encrypted_adder.dir/examples/encrypted_adder.cpp.o.d"
  "encrypted_adder"
  "encrypted_adder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encrypted_adder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
