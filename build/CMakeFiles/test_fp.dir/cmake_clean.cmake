file(REMOVE_RECURSE
  "CMakeFiles/test_fp.dir/tests/test_fp.cpp.o"
  "CMakeFiles/test_fp.dir/tests/test_fp.cpp.o.d"
  "test_fp"
  "test_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
