file(REMOVE_RECURSE
  "CMakeFiles/test_ntt_mixed_radix.dir/tests/test_ntt_mixed_radix.cpp.o"
  "CMakeFiles/test_ntt_mixed_radix.dir/tests/test_ntt_mixed_radix.cpp.o.d"
  "test_ntt_mixed_radix"
  "test_ntt_mixed_radix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ntt_mixed_radix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
