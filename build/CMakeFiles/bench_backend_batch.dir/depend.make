# Empty dependencies file for bench_backend_batch.
# This may be replaced when dependencies are built.
