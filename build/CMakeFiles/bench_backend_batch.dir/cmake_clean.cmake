file(REMOVE_RECURSE
  "CMakeFiles/bench_backend_batch.dir/bench/bench_backend_batch.cpp.o"
  "CMakeFiles/bench_backend_batch.dir/bench/bench_backend_batch.cpp.o.d"
  "bench_backend_batch"
  "bench_backend_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backend_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
