file(REMOVE_RECURSE
  "CMakeFiles/test_hw_arith.dir/tests/test_hw_arith.cpp.o"
  "CMakeFiles/test_hw_arith.dir/tests/test_hw_arith.cpp.o.d"
  "test_hw_arith"
  "test_hw_arith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
