# Empty dependencies file for test_hw_arith.
# This may be replaced when dependencies are built.
