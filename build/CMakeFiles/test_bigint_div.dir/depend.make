# Empty dependencies file for test_bigint_div.
# This may be replaced when dependencies are built.
