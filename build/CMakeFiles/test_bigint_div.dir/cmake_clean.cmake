file(REMOVE_RECURSE
  "CMakeFiles/test_bigint_div.dir/tests/test_bigint_div.cpp.o"
  "CMakeFiles/test_bigint_div.dir/tests/test_bigint_div.cpp.o.d"
  "test_bigint_div"
  "test_bigint_div.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bigint_div.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
