file(REMOVE_RECURSE
  "CMakeFiles/test_ntt_radix2.dir/tests/test_ntt_radix2.cpp.o"
  "CMakeFiles/test_ntt_radix2.dir/tests/test_ntt_radix2.cpp.o.d"
  "test_ntt_radix2"
  "test_ntt_radix2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ntt_radix2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
