# Empty dependencies file for test_ntt_radix2.
# This may be replaced when dependencies are built.
