file(REMOVE_RECURSE
  "CMakeFiles/test_ssa.dir/tests/test_ssa.cpp.o"
  "CMakeFiles/test_ssa.dir/tests/test_ssa.cpp.o.d"
  "test_ssa"
  "test_ssa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ssa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
