# Empty dependencies file for test_ssa.
# This may be replaced when dependencies are built.
