file(REMOVE_RECURSE
  "CMakeFiles/test_ntt_negacyclic.dir/tests/test_ntt_negacyclic.cpp.o"
  "CMakeFiles/test_ntt_negacyclic.dir/tests/test_ntt_negacyclic.cpp.o.d"
  "test_ntt_negacyclic"
  "test_ntt_negacyclic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ntt_negacyclic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
