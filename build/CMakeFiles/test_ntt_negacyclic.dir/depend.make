# Empty dependencies file for test_ntt_negacyclic.
# This may be replaced when dependencies are built.
