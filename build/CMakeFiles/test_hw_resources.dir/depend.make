# Empty dependencies file for test_hw_resources.
# This may be replaced when dependencies are built.
