file(REMOVE_RECURSE
  "CMakeFiles/test_hw_resources.dir/tests/test_hw_resources.cpp.o"
  "CMakeFiles/test_hw_resources.dir/tests/test_hw_resources.cpp.o.d"
  "test_hw_resources"
  "test_hw_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
