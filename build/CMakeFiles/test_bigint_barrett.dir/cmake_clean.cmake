file(REMOVE_RECURSE
  "CMakeFiles/test_bigint_barrett.dir/tests/test_bigint_barrett.cpp.o"
  "CMakeFiles/test_bigint_barrett.dir/tests/test_bigint_barrett.cpp.o.d"
  "test_bigint_barrett"
  "test_bigint_barrett.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bigint_barrett.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
