# Empty dependencies file for test_bigint_barrett.
# This may be replaced when dependencies are built.
