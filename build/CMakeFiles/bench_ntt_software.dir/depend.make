# Empty dependencies file for bench_ntt_software.
# This may be replaced when dependencies are built.
