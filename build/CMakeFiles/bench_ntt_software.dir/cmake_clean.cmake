file(REMOVE_RECURSE
  "CMakeFiles/bench_ntt_software.dir/bench/bench_ntt_software.cpp.o"
  "CMakeFiles/bench_ntt_software.dir/bench/bench_ntt_software.cpp.o.d"
  "bench_ntt_software"
  "bench_ntt_software.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ntt_software.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
