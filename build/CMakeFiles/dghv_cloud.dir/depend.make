# Empty dependencies file for dghv_cloud.
# This may be replaced when dependencies are built.
