file(REMOVE_RECURSE
  "CMakeFiles/dghv_cloud.dir/examples/dghv_cloud.cpp.o"
  "CMakeFiles/dghv_cloud.dir/examples/dghv_cloud.cpp.o.d"
  "dghv_cloud"
  "dghv_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dghv_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
