file(REMOVE_RECURSE
  "CMakeFiles/bench_radix_plans.dir/bench/bench_radix_plans.cpp.o"
  "CMakeFiles/bench_radix_plans.dir/bench/bench_radix_plans.cpp.o.d"
  "bench_radix_plans"
  "bench_radix_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_radix_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
