# Empty dependencies file for bench_radix_plans.
# This may be replaced when dependencies are built.
