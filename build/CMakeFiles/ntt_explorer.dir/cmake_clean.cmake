file(REMOVE_RECURSE
  "CMakeFiles/ntt_explorer.dir/examples/ntt_explorer.cpp.o"
  "CMakeFiles/ntt_explorer.dir/examples/ntt_explorer.cpp.o.d"
  "ntt_explorer"
  "ntt_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntt_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
