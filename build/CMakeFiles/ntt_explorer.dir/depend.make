# Empty dependencies file for ntt_explorer.
# This may be replaced when dependencies are built.
