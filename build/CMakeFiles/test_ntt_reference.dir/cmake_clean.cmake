file(REMOVE_RECURSE
  "CMakeFiles/test_ntt_reference.dir/tests/test_ntt_reference.cpp.o"
  "CMakeFiles/test_ntt_reference.dir/tests/test_ntt_reference.cpp.o.d"
  "test_ntt_reference"
  "test_ntt_reference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ntt_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
