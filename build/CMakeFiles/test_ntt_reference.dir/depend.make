# Empty dependencies file for test_ntt_reference.
# This may be replaced when dependencies are built.
