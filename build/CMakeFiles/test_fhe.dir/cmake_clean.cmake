file(REMOVE_RECURSE
  "CMakeFiles/test_fhe.dir/tests/test_fhe.cpp.o"
  "CMakeFiles/test_fhe.dir/tests/test_fhe.cpp.o.d"
  "test_fhe"
  "test_fhe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fhe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
