# Empty dependencies file for test_fhe.
# This may be replaced when dependencies are built.
