file(REMOVE_RECURSE
  "CMakeFiles/test_hw_perf.dir/tests/test_hw_perf.cpp.o"
  "CMakeFiles/test_hw_perf.dir/tests/test_hw_perf.cpp.o.d"
  "test_hw_perf"
  "test_hw_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
