# Empty dependencies file for test_hw_perf.
# This may be replaced when dependencies are built.
