file(REMOVE_RECURSE
  "CMakeFiles/test_hw_noc.dir/tests/test_hw_noc.cpp.o"
  "CMakeFiles/test_hw_noc.dir/tests/test_hw_noc.cpp.o.d"
  "test_hw_noc"
  "test_hw_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
