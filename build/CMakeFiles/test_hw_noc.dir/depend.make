# Empty dependencies file for test_hw_noc.
# This may be replaced when dependencies are built.
