file(REMOVE_RECURSE
  "CMakeFiles/bench_dotprod_carry.dir/bench/bench_dotprod_carry.cpp.o"
  "CMakeFiles/bench_dotprod_carry.dir/bench/bench_dotprod_carry.cpp.o.d"
  "bench_dotprod_carry"
  "bench_dotprod_carry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dotprod_carry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
