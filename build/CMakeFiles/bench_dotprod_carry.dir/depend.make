# Empty dependencies file for bench_dotprod_carry.
# This may be replaced when dependencies are built.
