# Empty dependencies file for test_bigint_basic.
# This may be replaced when dependencies are built.
