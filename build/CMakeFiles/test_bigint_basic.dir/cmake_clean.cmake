file(REMOVE_RECURSE
  "CMakeFiles/test_bigint_basic.dir/tests/test_bigint_basic.cpp.o"
  "CMakeFiles/test_bigint_basic.dir/tests/test_bigint_basic.cpp.o.d"
  "test_bigint_basic"
  "test_bigint_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bigint_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
