# Empty dependencies file for test_hw_memory.
# This may be replaced when dependencies are built.
