file(REMOVE_RECURSE
  "CMakeFiles/test_hw_memory.dir/tests/test_hw_memory.cpp.o"
  "CMakeFiles/test_hw_memory.dir/tests/test_hw_memory.cpp.o.d"
  "test_hw_memory"
  "test_hw_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
