# Empty dependencies file for hemul_cli.
# This may be replaced when dependencies are built.
