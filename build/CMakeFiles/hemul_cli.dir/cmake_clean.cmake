file(REMOVE_RECURSE
  "CMakeFiles/hemul_cli.dir/examples/hemul_cli.cpp.o"
  "CMakeFiles/hemul_cli.dir/examples/hemul_cli.cpp.o.d"
  "hemul_cli"
  "hemul_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemul_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
