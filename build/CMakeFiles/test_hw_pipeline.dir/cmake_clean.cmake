file(REMOVE_RECURSE
  "CMakeFiles/test_hw_pipeline.dir/tests/test_hw_pipeline.cpp.o"
  "CMakeFiles/test_hw_pipeline.dir/tests/test_hw_pipeline.cpp.o.d"
  "test_hw_pipeline"
  "test_hw_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
