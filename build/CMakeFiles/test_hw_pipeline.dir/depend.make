# Empty dependencies file for test_hw_pipeline.
# This may be replaced when dependencies are built.
