file(REMOVE_RECURSE
  "CMakeFiles/bench_pe_scaling.dir/bench/bench_pe_scaling.cpp.o"
  "CMakeFiles/bench_pe_scaling.dir/bench/bench_pe_scaling.cpp.o.d"
  "bench_pe_scaling"
  "bench_pe_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pe_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
