# Empty dependencies file for bench_pe_scaling.
# This may be replaced when dependencies are built.
