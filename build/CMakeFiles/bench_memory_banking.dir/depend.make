# Empty dependencies file for bench_memory_banking.
# This may be replaced when dependencies are built.
