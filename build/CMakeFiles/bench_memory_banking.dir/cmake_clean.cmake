file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_banking.dir/bench/bench_memory_banking.cpp.o"
  "CMakeFiles/bench_memory_banking.dir/bench/bench_memory_banking.cpp.o.d"
  "bench_memory_banking"
  "bench_memory_banking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_banking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
