# Empty dependencies file for test_hw_accel.
# This may be replaced when dependencies are built.
