file(REMOVE_RECURSE
  "CMakeFiles/test_hw_accel.dir/tests/test_hw_accel.cpp.o"
  "CMakeFiles/test_hw_accel.dir/tests/test_hw_accel.cpp.o.d"
  "test_hw_accel"
  "test_hw_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
