#pragma once

#include <string>

#include "hw/accel/accelerator.hpp"
#include "ssa/params.hpp"

namespace hemul::core {

/// Which engine executes multiplications submitted to the facade.
enum class Backend {
  kSimulatedHardware,  ///< cycle-accurate accelerator model (default)
  kSoftware,           ///< pure software SSA (no hardware modeling)
};

/// Top-level configuration of the public accelerator API.
struct Config {
  Backend backend = Backend::kSimulatedHardware;
  /// Registry key of the multiplier engine ("hw", "ssa", "classical",
  /// "auto", ...). Empty selects from `backend` for compatibility:
  /// kSimulatedHardware -> "hw", kSoftware -> "ssa". The "hw" and "ssa"
  /// engines are instantiated with this config's `hardware` parameters;
  /// other names come from the backend::Registry as-is.
  std::string backend_name;
  hw::AcceleratorConfig hardware = hw::AcceleratorConfig::paper();
  /// PE lanes of the core::Scheduler: worker threads, one backend instance
  /// each, mirroring the paper's array of processing elements. 0 selects
  /// one lane per hardware thread.
  unsigned num_workers = 0;
  /// Intra-op tiling: when true (default), "ssa" lane workspaces carry the
  /// scheduler's tile executor, so one large multiply's four-step passes
  /// fan across idle lanes instead of pinning a single lane. Disable for
  /// A/B measurement (hemul_cli --no-intra-op).
  bool intra_op_tiling = true;

  /// The paper's prototype: 4 PEs, 200 MHz, 64*64*16 plan, 786,432-bit
  /// operands.
  static Config paper();

  /// backend_name, or the name derived from `backend` when empty.
  [[nodiscard]] std::string resolved_backend_name() const;

  /// num_workers, or the hardware thread count when 0 (at least 1).
  [[nodiscard]] unsigned resolved_num_workers() const noexcept;

  /// Checks internal consistency (delegates to the hardware/SSA layers).
  void validate() const;
};

}  // namespace hemul::core
