#pragma once

#include "hw/accel/accelerator.hpp"
#include "ssa/params.hpp"

namespace hemul::core {

/// Which engine executes multiplications submitted to the facade.
enum class Backend {
  kSimulatedHardware,  ///< cycle-accurate accelerator model (default)
  kSoftware,           ///< pure software SSA (no hardware modeling)
};

/// Top-level configuration of the public accelerator API.
struct Config {
  Backend backend = Backend::kSimulatedHardware;
  hw::AcceleratorConfig hardware = hw::AcceleratorConfig::paper();

  /// The paper's prototype: 4 PEs, 200 MHz, 64*64*16 plan, 786,432-bit
  /// operands.
  static Config paper();

  /// Checks internal consistency (delegates to the hardware/SSA layers).
  void validate() const;
};

}  // namespace hemul::core
