#pragma once

#include <string>

#include "hw/accel/accelerator.hpp"
#include "ssa/params.hpp"

namespace hemul::core {

/// Which engine executes multiplications submitted to the facade.
enum class Backend {
  kSimulatedHardware,  ///< cycle-accurate accelerator model (default)
  kSoftware,           ///< pure software SSA (no hardware modeling)
};

/// Top-level configuration of the public accelerator API.
struct Config {
  Backend backend = Backend::kSimulatedHardware;
  /// Registry key of the multiplier engine ("hw", "ssa", "classical",
  /// "auto", ...). Empty selects from `backend` for compatibility:
  /// kSimulatedHardware -> "hw", kSoftware -> "ssa". The "hw" and "ssa"
  /// engines are instantiated with this config's `hardware` parameters;
  /// other names come from the backend::Registry as-is.
  std::string backend_name;
  hw::AcceleratorConfig hardware = hw::AcceleratorConfig::paper();

  /// The paper's prototype: 4 PEs, 200 MHz, 64*64*16 plan, 786,432-bit
  /// operands.
  static Config paper();

  /// backend_name, or the name derived from `backend` when empty.
  [[nodiscard]] std::string resolved_backend_name() const;

  /// Checks internal consistency (delegates to the hardware/SSA layers).
  void validate() const;
};

}  // namespace hemul::core
