#include "core/scheduler.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "backend/hw_backend.hpp"
#include "backend/registry.hpp"
#include "backend/ssa_backend.hpp"
#include "util/check.hpp"

namespace hemul::core {

using bigint::BigUInt;

namespace {

/// Identity of the lane thread currently executing, so run_tiles can
/// attribute tiles the calling/helping thread executed to its LaneStats.
/// (A thread belongs to at most one scheduler for its lifetime.)
struct LaneMark {
  const void* owner = nullptr;
  unsigned lane = 0;
};
thread_local LaneMark t_lane;

}  // namespace

/// One run_tiles invocation: a claim counter (`next`) the caller and the
/// helper tasks drain cooperatively, and a completion counter
/// (`remaining`) the caller waits on. The group is shared_ptr-owned by the
/// helpers; `tile` points at the caller's callable, which outlives every
/// live tile because run_tiles returns only after remaining == 0 (helpers
/// that wake later claim nothing and never dereference it).
struct Scheduler::TileGroup {
  const std::function<void(u64)>* tile = nullptr;
  u64 count = 0;
  std::atomic<u64> next{0};
  std::atomic<u64> remaining{0};
  std::mutex mutex;
  std::condition_variable done_cv;
  std::exception_ptr error;  ///< first tile exception (guarded by mutex)
};

Scheduler::Scheduler(Config config) : config_(std::move(config)) {
  config_.validate();
  cache_ = std::make_shared<ssa::ConcurrentSpectrumCache>();

  const unsigned workers = config_.resolved_num_workers();
  lane_backends_.reserve(workers);
  for (unsigned lane = 0; lane < workers; ++lane) {
    lane_backends_.push_back(make_lane_backend());
  }
  lane_stats_.resize(workers);
  for (unsigned lane = 0; lane < workers; ++lane) lane_stats_[lane].lane = lane;

  threads_.reserve(workers);
  for (unsigned lane = 0; lane < workers; ++lane) {
    threads_.emplace_back(&Scheduler::worker_loop, this, lane);
  }
}

Scheduler::~Scheduler() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

std::shared_ptr<backend::MultiplierBackend> Scheduler::make_lane_backend() {
  const std::string name = config_.resolved_backend_name();
  if (name == "hw") {
    // One simulated accelerator per lane, built with this scheduler's
    // hardware configuration (the paper's PE-array sharding).
    return std::make_shared<backend::HwBackend>(config_.hardware);
  }
  if (name == "ssa") {
    // Adaptive software SSA per lane (the registry engine's semantics);
    // all lanes share one spectrum cache, keyed by operand *and* packing
    // geometry, so mixed operand sizes stay exact. Each lane owns a
    // private buffer arena (the software mirror of a PE's banked SRAM):
    // steady-state jobs reuse it instead of allocating, and lanes never
    // contend on buffers.
    auto ssa = std::make_shared<backend::SsaBackend>();
    ssa->set_shared_cache(cache_);
    auto workspace = std::make_shared<ssa::Workspace>();
    // Intra-op tiling: the lane's four-step transforms hand their passes
    // to run_tiles, so a lone large multiply fans across idle lanes.
    if (config_.intra_op_tiling) workspace->tile_executor = &tile_exec_;
    ssa->set_workspace(std::move(workspace));
    return ssa;
  }
  return backend::make_backend(name);
}

void Scheduler::worker_loop(unsigned lane) {
  using Clock = std::chrono::steady_clock;
  backend::MultiplierBackend& backend = *lane_backends_[lane];
  auto* hw = dynamic_cast<backend::HwBackend*>(&backend);
  t_lane = LaneMark{this, lane};

  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and the queue is drained

    Task task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();

    const u64 cycles_before = hw != nullptr ? hw->accumulated_cycles() : 0;
    const auto start = Clock::now();
    task.run(backend);  // runners catch internally and report via promise
    const double busy_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start).count();

    lock.lock();
    LaneStats& stats = lane_stats_[lane];
    // Tile-helper tasks count toward busy time (they are real lane work)
    // but not toward job counters: submitted/completed/jobs describe the
    // caller-visible workload, and tiles are tallied separately.
    if (!task.internal) {
      ++stats.jobs;
      ++completed_;
    }
    stats.busy_ms += busy_ms;
    if (hw != nullptr) stats.hw_cycles += hw->accumulated_cycles() - cycles_before;
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

void Scheduler::enqueue(std::function<void(backend::MultiplierBackend&)> run, bool internal) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Internal helpers may be spawned by a job still draining during
    // shutdown; they are claim-only and safe to discard unexecuted.
    HEMUL_CHECK_MSG(internal || !stop_, "Scheduler::submit: scheduler is shutting down");
    queue_.push_back(Task{std::move(run), internal});
    if (!internal) ++submitted_;
  }
  work_cv_.notify_one();
}

u64 Scheduler::drain_tiles(TileGroup& group) {
  u64 ran = 0;
  for (;;) {
    const u64 index = group.next.fetch_add(1, std::memory_order_relaxed);
    if (index >= group.count) return ran;
    try {
      (*group.tile)(index);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(group.mutex);
      if (group.error == nullptr) group.error = std::current_exception();
    }
    ++ran;
    // acq_rel keeps every fetch_sub in one release sequence, so the
    // caller's acquire load of 0 synchronizes with ALL tile executions,
    // not just the last one.
    if (group.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const std::lock_guard<std::mutex> lock(group.mutex);
      group.done_cv.notify_all();
    }
  }
}

void Scheduler::run_tiles(u64 count, const std::function<void(u64)>& tile) {
  if (count == 0) return;

  auto group = std::make_shared<TileGroup>();
  group->tile = &tile;
  group->count = count;
  group->remaining.store(count, std::memory_order_relaxed);

  // Helper tasks let idle lanes steal tiles. The caller participates
  // below, never blocking while work is claimable, so the helpers are an
  // optimization, not a dependency: a 1-lane scheduler (or a pool whose
  // every lane is busy) completes the group on the calling thread alone.
  const u64 helpers = std::min<u64>(count - 1, num_workers());
  for (u64 h = 0; h < helpers; ++h) {
    enqueue(
        [this, group](backend::MultiplierBackend&) {
          const u64 ran = drain_tiles(*group);
          if (ran > 0) {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (t_lane.owner == this) lane_stats_[t_lane.lane].tiles += ran;
          }
        },
        /*internal=*/true);
  }

  const u64 ran = drain_tiles(*group);
  if (group->remaining.load(std::memory_order_acquire) != 0) {
    std::unique_lock<std::mutex> lock(group->mutex);
    group->done_cv.wait(lock, [&group] {
      return group->remaining.load(std::memory_order_acquire) == 0;
    });
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++tile_groups_;
    tiles_executed_ += count;
    // Tiles the caller ran count toward its lane when the caller is a lane
    // of this scheduler (external callers' tiles appear only in the
    // group totals).
    if (ran > 0 && t_lane.owner == this) lane_stats_[t_lane.lane].tiles += ran;
  }
  if (group->error != nullptr) std::rethrow_exception(group->error);
}

std::future<BigUInt> Scheduler::submit(Job job) {
  HEMUL_CHECK_MSG(job != nullptr, "Scheduler::submit: empty job");
  auto promise = std::make_shared<std::promise<BigUInt>>();
  std::future<BigUInt> future = promise->get_future();
  enqueue([job = std::move(job), promise](backend::MultiplierBackend& backend) {
    try {
      promise->set_value(job(backend));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  return future;
}

bool Scheduler::lanes_support_spectra() const {
  return config_.resolved_backend_name() == "ssa";
}

namespace {

/// Lane backend as an SsaBackend, or null for lanes that cannot speak
/// spectrum handles.
backend::SsaBackend* as_ssa(backend::MultiplierBackend& backend) {
  return dynamic_cast<backend::SsaBackend*>(&backend);
}

}  // namespace

std::future<ssa::SpectrumHandle> Scheduler::submit_spectrum_forward(BigUInt value,
                                                                    ssa::SsaParams params) {
  auto promise = std::make_shared<std::promise<ssa::SpectrumHandle>>();
  std::future<ssa::SpectrumHandle> future = promise->get_future();
  enqueue([value = std::move(value), params = std::move(params),
           promise](backend::MultiplierBackend& backend) {
    try {
      backend::SsaBackend* ssa_backend = as_ssa(backend);
      if (ssa_backend == nullptr) {
        throw std::logic_error("spectrum job submitted to a non-ssa lane");
      }
      promise->set_value(ssa_backend->forward_spectrum(value, params));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  return future;
}

std::future<ssa::SpectrumHandle> Scheduler::submit_spectrum_multiply(ssa::SpectrumHandle a,
                                                                     ssa::SpectrumHandle b,
                                                                     ssa::SsaParams params) {
  auto promise = std::make_shared<std::promise<ssa::SpectrumHandle>>();
  std::future<ssa::SpectrumHandle> future = promise->get_future();
  enqueue([a = std::move(a), b = std::move(b), params = std::move(params),
           promise](backend::MultiplierBackend& backend) {
    try {
      backend::SsaBackend* ssa_backend = as_ssa(backend);
      if (ssa_backend == nullptr) {
        throw std::logic_error("spectrum job submitted to a non-ssa lane");
      }
      promise->set_value(ssa_backend->multiply_spectra(a, b, params));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  return future;
}

std::future<BigUInt> Scheduler::submit_spectrum_materialize(ssa::SpectrumHandle spectrum,
                                                            ssa::SsaParams params) {
  auto promise = std::make_shared<std::promise<BigUInt>>();
  std::future<BigUInt> future = promise->get_future();
  enqueue([spectrum = std::move(spectrum), params = std::move(params),
           promise](backend::MultiplierBackend& backend) {
    try {
      backend::SsaBackend* ssa_backend = as_ssa(backend);
      if (ssa_backend == nullptr) {
        throw std::logic_error("spectrum job submitted to a non-ssa lane");
      }
      promise->set_value(ssa_backend->materialize_spectrum(*spectrum, params));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  return future;
}

std::future<BigUInt> Scheduler::submit_multiply(BigUInt a, BigUInt b) {
  return submit([a = std::move(a), b = std::move(b)](backend::MultiplierBackend& backend) {
    return backend.multiply(a, b);
  });
}

std::future<BigUInt> Scheduler::submit_square(BigUInt a) {
  return submit([a = std::move(a)](backend::MultiplierBackend& backend) {
    return backend.square(a);
  });
}

std::vector<std::future<BigUInt>> Scheduler::submit_batch(
    std::span<const backend::MulJob> jobs) {
  std::vector<std::future<BigUInt>> futures;
  futures.reserve(jobs.size());
  for (const backend::MulJob& job : jobs) {
    futures.push_back(submit_multiply(job.first, job.second));
  }
  return futures;
}

void Scheduler::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats snapshot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snapshot.lanes = lane_stats_;
    snapshot.submitted = submitted_;
    snapshot.completed = completed_;
    snapshot.tile_groups = tile_groups_;
    snapshot.tiles_executed = tiles_executed_;
  }
  snapshot.cache = cache_->stats();
  return snapshot;
}

}  // namespace hemul::core
