#include "core/accelerator.hpp"

#include "backend/hw_backend.hpp"
#include "backend/registry.hpp"
#include "backend/ssa_backend.hpp"
#include "core/scheduler.hpp"
#include "util/check.hpp"

namespace hemul::core {

Accelerator::Accelerator(Config config) : config_(std::move(config)) {
  config_.validate();
  const std::string name = config_.resolved_backend_name();
  if (name == "hw") {
    // Instantiated directly (not via the registry) so it runs with this
    // facade's hardware configuration rather than the paper default.
    auto hw = std::make_shared<backend::HwBackend>(config_.hardware);
    hw_backend_ = hw.get();
    backend_ = std::move(hw);
  } else if (name == "ssa") {
    backend_ = std::make_shared<backend::SsaBackend>(config_.hardware.ssa);
  } else {
    backend_ = backend::make_backend(name);
  }
}

Accelerator::Accelerator(Accelerator&&) noexcept = default;
Accelerator& Accelerator::operator=(Accelerator&&) noexcept = default;
Accelerator::~Accelerator() = default;

Scheduler& Accelerator::scheduler() {
  if (scheduler_ == nullptr) scheduler_ = std::make_unique<Scheduler>(config_);
  return *scheduler_;
}

std::future<bigint::BigUInt> Accelerator::submit_multiply(bigint::BigUInt a,
                                                          bigint::BigUInt b) {
  return scheduler().submit_multiply(std::move(a), std::move(b));
}

std::vector<std::future<bigint::BigUInt>> Accelerator::submit_batch(
    std::span<const backend::MulJob> jobs) {
  return scheduler().submit_batch(jobs);
}

std::vector<fhe::Ciphertext> Accelerator::evaluate(const fhe::Graph& graph,
                                                   std::span<const fhe::Wire> outputs,
                                                   fhe::EvalReport* report,
                                                   const fhe::EvalOptions& options) {
  fhe::Evaluator evaluator(scheduler());
  return evaluator.evaluate(graph, outputs, report, options);
}

MultiplyResult Accelerator::multiply(const bigint::BigUInt& a, const bigint::BigUInt& b) {
  MultiplyResult result;

  const hw::PerfBreakdown perf = performance();
  result.modeled_time_us = perf.mult_us();

  result.product = backend_->multiply(a, b);
  if (hw_backend_ != nullptr) result.hw_report = hw_backend_->last_report();
  return result;
}

BatchResult Accelerator::multiply_batch(std::span<const backend::MulJob> jobs) {
  BatchResult result;
  result.products = backend_->multiply_batch(jobs, &result.stats);
  return result;
}

fp::FpVec Accelerator::ntt_forward(const fp::FpVec& data, hw::NttRunReport* report) {
  HEMUL_CHECK_MSG(hw_backend_ != nullptr, "NTT access requires the simulated-hardware backend");
  return hw_backend_->accelerator().ntt_forward(data, report);
}

fp::FpVec Accelerator::ntt_inverse(const fp::FpVec& data, hw::NttRunReport* report) {
  HEMUL_CHECK_MSG(hw_backend_ != nullptr, "NTT access requires the simulated-hardware backend");
  return hw_backend_->accelerator().ntt_inverse(data, report);
}

hw::ResourceComparison Accelerator::resources() const {
  hw::ResourceComparison comparison = hw::ResourceComparison::paper();
  hw::AccelParams params = hw::AccelParams::paper();
  params.num_pes = config_.hardware.ntt.num_pes;
  if (config_.hardware.ntt.unit == hw::FftUnitKind::kBaseline) {
    params.pe.fft = hw::Fft64UnitParams::baseline();
  }
  comparison.proposed = hw::accelerator_cost(params);
  return comparison;
}

hw::PerfBreakdown Accelerator::performance() const {
  hw::PerfParams params;
  params.clock_ns = config_.hardware.clock_ns;
  params.num_pes = config_.hardware.ntt.num_pes;
  params.plan = config_.hardware.ntt.plan;
  params.pointwise_multipliers = config_.hardware.pointwise_multipliers;
  params.carry_lanes = config_.hardware.carry_lanes;
  return evaluate_perf(params);
}

}  // namespace hemul::core
