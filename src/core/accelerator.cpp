#include "core/accelerator.hpp"

#include "ssa/multiply.hpp"
#include "util/check.hpp"

namespace hemul::core {

Accelerator::Accelerator(Config config) : config_(std::move(config)) {
  config_.validate();
  if (config_.backend == Backend::kSimulatedHardware) {
    hw_.emplace(config_.hardware);
  }
}

MultiplyResult Accelerator::multiply(const bigint::BigUInt& a, const bigint::BigUInt& b) {
  MultiplyResult result;

  const hw::PerfBreakdown perf = performance();
  result.modeled_time_us = perf.mult_us();

  if (hw_.has_value()) {
    hw::MultiplyReport report;
    result.product = hw_->multiply(a, b, &report);
    result.hw_report = std::move(report);
  } else {
    result.product = ssa::multiply(a, b, config_.hardware.ssa);
  }
  return result;
}

fp::FpVec Accelerator::ntt_forward(const fp::FpVec& data, hw::NttRunReport* report) {
  HEMUL_CHECK_MSG(hw_.has_value(), "NTT access requires the simulated-hardware backend");
  return hw_->ntt_forward(data, report);
}

fp::FpVec Accelerator::ntt_inverse(const fp::FpVec& data, hw::NttRunReport* report) {
  HEMUL_CHECK_MSG(hw_.has_value(), "NTT access requires the simulated-hardware backend");
  return hw_->ntt_inverse(data, report);
}

hw::ResourceComparison Accelerator::resources() const {
  hw::ResourceComparison comparison = hw::ResourceComparison::paper();
  hw::AccelParams params = hw::AccelParams::paper();
  params.num_pes = config_.hardware.ntt.num_pes;
  if (config_.hardware.ntt.unit == hw::FftUnitKind::kBaseline) {
    params.pe.fft = hw::Fft64UnitParams::baseline();
  }
  comparison.proposed = hw::accelerator_cost(params);
  return comparison;
}

hw::PerfBreakdown Accelerator::performance() const {
  hw::PerfParams params;
  params.clock_ns = config_.hardware.clock_ns;
  params.num_pes = config_.hardware.ntt.num_pes;
  params.plan = config_.hardware.ntt.plan;
  params.pointwise_multipliers = config_.hardware.pointwise_multipliers;
  params.carry_lanes = config_.hardware.carry_lanes;
  return evaluate_perf(params);
}

}  // namespace hemul::core
