#include "core/config.hpp"

#include <thread>

namespace hemul::core {

Config Config::paper() { return Config{}; }

std::string Config::resolved_backend_name() const {
  if (!backend_name.empty()) return backend_name;
  return backend == Backend::kSimulatedHardware ? "hw" : "ssa";
}

unsigned Config::resolved_num_workers() const noexcept {
  if (num_workers > 0) return num_workers;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

void Config::validate() const {
  hardware.ssa.validate();
  if (hardware.ssa.transform_size != hardware.ntt.plan.size) {
    throw std::invalid_argument("Config: SSA transform size must match the NTT plan");
  }
}

}  // namespace hemul::core
