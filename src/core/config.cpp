#include "core/config.hpp"

namespace hemul::core {

Config Config::paper() { return Config{}; }

std::string Config::resolved_backend_name() const {
  if (!backend_name.empty()) return backend_name;
  return backend == Backend::kSimulatedHardware ? "hw" : "ssa";
}

void Config::validate() const {
  hardware.ssa.validate();
  if (hardware.ssa.transform_size != hardware.ntt.plan.size) {
    throw std::invalid_argument("Config: SSA transform size must match the NTT plan");
  }
}

}  // namespace hemul::core
