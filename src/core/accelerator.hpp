#pragma once

#include <optional>

#include "core/config.hpp"
#include "hw/perf/perf_model.hpp"
#include "hw/resources/report.hpp"

namespace hemul::core {

/// Result of one multiplication through the facade.
struct MultiplyResult {
  bigint::BigUInt product;
  /// Cycle-accurate report (present for the simulated-hardware backend).
  std::optional<hw::MultiplyReport> hw_report;
  /// Closed-form Section V latency estimate for this configuration (us).
  double modeled_time_us = 0.0;
};

/// The library's public entry point: an ultralong-integer multiplier with
/// the paper's accelerator behind it.
///
/// Typical use:
///   core::Accelerator accel;                       // paper configuration
///   auto r = accel.multiply(a, b);                 // 786,432-bit operands
///   r.product, r.hw_report->total_time_us()
class Accelerator {
 public:
  explicit Accelerator(Config config = Config::paper());

  /// Multiplies two operands of up to config().hardware.ssa operand bits.
  MultiplyResult multiply(const bigint::BigUInt& a, const bigint::BigUInt& b);

  /// Forward / inverse 64K-point NTT on the simulated hardware.
  fp::FpVec ntt_forward(const fp::FpVec& data, hw::NttRunReport* report = nullptr);
  fp::FpVec ntt_inverse(const fp::FpVec& data, hw::NttRunReport* report = nullptr);

  /// Modeled resource usage (Table I) for the current configuration.
  [[nodiscard]] hw::ResourceComparison resources() const;

  /// Closed-form performance model (Section V) for the configuration.
  [[nodiscard]] hw::PerfBreakdown performance() const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  std::optional<hw::HwAccelerator> hw_;
};

}  // namespace hemul::core
