#pragma once

#include <future>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "backend/backend.hpp"
#include "core/config.hpp"
#include "fhe/evaluator.hpp"
#include "hw/perf/perf_model.hpp"
#include "hw/resources/report.hpp"

namespace hemul::backend {
class HwBackend;
}

namespace hemul::core {
class Scheduler;
}

namespace hemul::core {

/// Result of one multiplication through the facade.
struct MultiplyResult {
  bigint::BigUInt product;
  /// Cycle-accurate report (present for the simulated-hardware backend).
  std::optional<hw::MultiplyReport> hw_report;
  /// Closed-form Section V latency estimate for this configuration (us).
  double modeled_time_us = 0.0;
};

/// Result of one batched multiplication through the facade.
struct BatchResult {
  std::vector<bigint::BigUInt> products;
  /// Transform/cache accounting (cycle fields filled by "hw").
  backend::BatchStats stats;
};

/// The library's public entry point: a thin facade over a pluggable
/// multiplier backend (see backend::Registry), with the paper's simulated
/// accelerator as the default engine.
///
/// Typical use:
///   core::Accelerator accel;                       // paper configuration
///   auto r = accel.multiply(a, b);                 // 786,432-bit operands
///   r.product, r.hw_report->total_time_us()
///
/// Any registered engine can be selected by name:
///   core::Config config;
///   config.backend_name = "ssa";                   // or "classical", ...
///   core::Accelerator sw(config);
class Accelerator {
 public:
  explicit Accelerator(Config config = Config::paper());
  Accelerator(Accelerator&&) noexcept;
  Accelerator& operator=(Accelerator&&) noexcept;
  ~Accelerator();

  /// Multiplies two operands of up to config().hardware.ssa operand bits.
  MultiplyResult multiply(const bigint::BigUInt& a, const bigint::BigUInt& b);

  /// Multiplies a batch of jobs with double-buffered streaming; engines
  /// that cache forward spectra (hw, ssa) charge a repeated operand's
  /// transform once per batch, so N products against one ciphertext cost
  /// N+1 transforms instead of 3N.
  BatchResult multiply_batch(std::span<const backend::MulJob> jobs);

  /// Enqueues one product on the concurrent scheduler (config().num_workers
  /// PE lanes, created on first use); the future yields the exact product.
  std::future<bigint::BigUInt> submit_multiply(bigint::BigUInt a, bigint::BigUInt b);

  /// Enqueues a whole batch on the scheduler; futures are in job order.
  std::vector<std::future<bigint::BigUInt>> submit_batch(
      std::span<const backend::MulJob> jobs);

  /// The lazily-created multi-PE scheduler behind submit_multiply /
  /// submit_batch (lane creation is not thread-safe; first call from one
  /// thread, then submit from anywhere).
  Scheduler& scheduler();

  /// Wavefront-evaluates a recorded homomorphic circuit: independent AND
  /// gates at each multiplicative depth are issued as one batch across the
  /// scheduler's PE lanes (config().num_workers, created on first use).
  /// Dead nodes are eliminated and the NoiseModel decryptability check
  /// runs before execution (see fhe::EvalOptions). Returns one ciphertext
  /// per requested output wire, in order.
  std::vector<fhe::Ciphertext> evaluate(const fhe::Graph& graph,
                                        std::span<const fhe::Wire> outputs,
                                        fhe::EvalReport* report = nullptr,
                                        const fhe::EvalOptions& options = {});

  /// Forward / inverse 64K-point NTT on the simulated hardware.
  fp::FpVec ntt_forward(const fp::FpVec& data, hw::NttRunReport* report = nullptr);
  fp::FpVec ntt_inverse(const fp::FpVec& data, hw::NttRunReport* report = nullptr);

  /// Modeled resource usage (Table I) for the current configuration.
  [[nodiscard]] hw::ResourceComparison resources() const;

  /// Closed-form performance model (Section V) for the configuration.
  [[nodiscard]] hw::PerfBreakdown performance() const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// The engine multiplications dispatch through.
  [[nodiscard]] backend::MultiplierBackend& backend() noexcept { return *backend_; }

 private:
  Config config_;
  std::shared_ptr<backend::MultiplierBackend> backend_;
  /// Set when backend_ is the simulated hardware (cycle reports, NTT access).
  backend::HwBackend* hw_backend_ = nullptr;
  /// Created by the first submit_multiply/submit_batch/scheduler() call.
  std::unique_ptr<Scheduler> scheduler_;
};

}  // namespace hemul::core
