#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "backend/backend.hpp"
#include "core/config.hpp"
#include "ntt/tiling.hpp"
#include "ssa/spectrum_cache.hpp"

namespace hemul::core {

/// Execution statistics of one PE lane (a worker thread owning one backend
/// instance).
struct LaneStats {
  unsigned lane = 0;
  u64 jobs = 0;        ///< jobs this lane executed
  u64 tiles = 0;       ///< intra-op (four-step) tiles this lane executed
  u64 hw_cycles = 0;   ///< modeled cycles this lane's jobs cost
                       ///< (simulated-hw lanes only)
  double busy_ms = 0.0;  ///< wall-clock spent executing jobs
};

/// Snapshot of the scheduler's execution state.
struct SchedulerStats {
  std::vector<LaneStats> lanes;
  u64 submitted = 0;  ///< jobs accepted by submit()
  u64 completed = 0;  ///< jobs whose future is (or is about to be) ready
  /// Intra-op tiling: tile groups run through run_tiles() and the total
  /// tiles they split into. Deterministic in the job stream + lane count
  /// (unlike the per-lane tile distribution, which depends on timing).
  u64 tile_groups = 0;
  u64 tiles_executed = 0;
  /// Shared spectrum cache accounting ("ssa" lanes): hits + misses equals
  /// the forward-spectrum lookups across all lanes.
  ssa::ConcurrentSpectrumCache::Stats cache;
};

/// Concurrent multi-PE execution layer: N worker threads, each owning one
/// backend::MultiplierBackend instance ("PE lane", mirroring the paper's
/// array of processing elements), fed from one work queue via an async
/// submit()/future API.
///
/// Lane engines follow Config::resolved_backend_name():
///   - "hw"  -> one simulated accelerator per lane, built from
///              config.hardware (per-lane cycle accounting in LaneStats);
///   - "ssa" -> the adaptive software SSA engine per lane, all lanes
///              sharing one thread-safe spectrum cache, so a repeated
///              operand is forward-transformed once process-wide;
///   - any other registry name -> one fresh instance per lane.
///
/// Results are bit-exact and deterministic regardless of num_workers: jobs
/// are pure functions of their operands, so only completion *order* varies,
/// never the products.
///
/// Typical use:
///   core::Config config;
///   config.backend_name = "ssa";
///   config.num_workers = 8;
///   core::Scheduler scheduler(config);
///   auto f = scheduler.submit_multiply(a, b);
///   f.get();  // the exact product a*b
class Scheduler {
 public:
  /// A unit of work: runs on a worker thread against that lane's backend.
  using Job = std::function<bigint::BigUInt(backend::MultiplierBackend&)>;

  explicit Scheduler(Config config = Config::paper());

  /// Drains the queue (every accepted job completes), then joins the lanes.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues an arbitrary job (e.g. a circuit step needing several backend
  /// calls). An exception thrown by the job propagates through the future.
  /// Jobs must not block on futures of other jobs in the same scheduler
  /// (lanes are a fixed pool; waiting inside a lane can deadlock it).
  std::future<bigint::BigUInt> submit(Job job);

  /// Enqueues one product a*b.
  std::future<bigint::BigUInt> submit_multiply(bigint::BigUInt a, bigint::BigUInt b);

  /// Enqueues one squaring (NTT lanes take the 2-transform fast path).
  std::future<bigint::BigUInt> submit_square(bigint::BigUInt a);

  /// Enqueues every job of the batch; futures are in job order.
  std::vector<std::future<bigint::BigUInt>> submit_batch(std::span<const backend::MulJob> jobs);

  // ---- spectrum-resident job forms -----------------------------------
  // Only meaningful when lanes_support_spectra(): the lanes' SsaBackends
  // split the 3-transform multiply into its phases so the evaluator can
  // keep wires in the NTT domain across wavefronts. Submitting these to
  // non-"ssa" lanes fails the future with std::logic_error.

  /// True iff every lane runs the software SSA engine (the only backend
  /// that speaks spectrum handles).
  [[nodiscard]] bool lanes_support_spectra() const;

  /// Enqueues one forward transform: value -> operand spectrum.
  std::future<ssa::SpectrumHandle> submit_spectrum_forward(bigint::BigUInt value,
                                                           ssa::SsaParams params);

  /// Enqueues one pointwise product of two operand spectra.
  std::future<ssa::SpectrumHandle> submit_spectrum_multiply(ssa::SpectrumHandle a,
                                                            ssa::SpectrumHandle b,
                                                            ssa::SsaParams params);

  /// Enqueues one inverse transform + carry recovery: spectrum -> integer.
  std::future<bigint::BigUInt> submit_spectrum_materialize(ssa::SpectrumHandle spectrum,
                                                           ssa::SsaParams params);

  // ---- nested tile execution -----------------------------------------
  // The intra-op parallelism seam: a job already running on a lane splits
  // one large NTT pass into tiles and calls run_tiles, which fans the
  // tiles across idle lanes WITHOUT blocking the spawning lane -- the
  // caller claims and executes tiles itself until the group drains, so
  // progress never depends on another lane being free (a 1-lane scheduler
  // degenerates to serial execution instead of deadlocking, and nested
  // groups compose). See CONTRIBUTING.md "Nested scheduler work items".

  /// Runs tile(0) .. tile(count - 1) across the calling thread + idle
  /// lanes; returns when all tiles completed. Callable from lane threads
  /// (nested submission) and from outside the scheduler alike. Tiles must
  /// not block on scheduler futures. The first exception thrown by a tile
  /// is rethrown on the calling thread after the group drains.
  void run_tiles(u64 count, const std::function<void(u64)>& tile);

  /// TileExecutor facade over run_tiles (installed on "ssa" lane
  /// workspaces when config.intra_op_tiling).
  [[nodiscard]] ntt::TileExecutor& tile_executor() noexcept { return tile_exec_; }

  /// Blocks until the queue is empty and every lane is idle.
  void wait_idle();

  [[nodiscard]] unsigned num_workers() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  [[nodiscard]] SchedulerStats stats() const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// The spectrum cache shared by the "ssa" lanes.
  [[nodiscard]] ssa::ConcurrentSpectrumCache& spectrum_cache() noexcept { return *cache_; }

 private:
  /// Type-erased unit of work. The runner owns its promise (shared_ptr,
  /// since std::function requires copyable closures) and reports results /
  /// exceptions through it, so one queue carries integer jobs and spectrum
  /// jobs alike. `internal` marks tile-helper tasks spawned by run_tiles:
  /// they ride the same queue but do not count as submitted/completed jobs
  /// (SchedulerStats job counters describe the caller-visible workload).
  struct Task {
    std::function<void(backend::MultiplierBackend&)> run;
    bool internal = false;
  };

  /// One run_tiles invocation: a shared claim counter the caller and the
  /// helper tasks drain cooperatively.
  struct TileGroup;

  class IntraOpExecutor final : public ntt::TileExecutor {
   public:
    explicit IntraOpExecutor(Scheduler* scheduler) noexcept : scheduler_(scheduler) {}
    [[nodiscard]] unsigned concurrency() const noexcept override {
      return scheduler_->num_workers();
    }
    void run(u64 count, const std::function<void(u64)>& tile) override {
      scheduler_->run_tiles(count, tile);
    }

   private:
    Scheduler* scheduler_;
  };

  void enqueue(std::function<void(backend::MultiplierBackend&)> run, bool internal = false);

  [[nodiscard]] std::shared_ptr<backend::MultiplierBackend> make_lane_backend();
  void worker_loop(unsigned lane);
  /// Claims and executes tiles of the group until none remain; returns how
  /// many this thread ran.
  static u64 drain_tiles(TileGroup& group);

  Config config_;
  std::shared_ptr<ssa::ConcurrentSpectrumCache> cache_;
  std::vector<std::shared_ptr<backend::MultiplierBackend>> lane_backends_;
  IntraOpExecutor tile_exec_{this};

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<Task> queue_;
  bool stop_ = false;
  unsigned active_ = 0;
  u64 submitted_ = 0;
  u64 completed_ = 0;
  u64 tile_groups_ = 0;
  u64 tiles_executed_ = 0;
  std::vector<LaneStats> lane_stats_;

  std::vector<std::thread> threads_;  ///< last member: joins before teardown
};

}  // namespace hemul::core
