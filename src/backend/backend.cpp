#include "backend/backend.hpp"

namespace hemul::backend {

std::vector<bigint::BigUInt> MultiplierBackend::multiply_batch(std::span<const MulJob> jobs,
                                                               BatchStats* stats) {
  std::vector<bigint::BigUInt> products;
  products.reserve(jobs.size());
  for (const MulJob& job : jobs) {
    products.push_back(multiply(job.first, job.second));
  }
  if (stats != nullptr) {
    *stats = BatchStats{};
    stats->jobs = jobs.size();
  }
  return products;
}

}  // namespace hemul::backend
