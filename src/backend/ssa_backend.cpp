#include "backend/ssa_backend.hpp"

#include <algorithm>

#include "ssa/batch.hpp"

namespace hemul::backend {

using bigint::BigUInt;

BackendLimits SsaBackend::limits() const {
  BackendLimits limits;
  limits.max_operand_bits = fixed_params_.has_value() ? fixed_params_->max_operand_bits() : 0;
  limits.caches_spectra = true;
  limits.spectrum_resident = true;
  return limits;
}

ssa::SsaParams SsaBackend::params_for(std::size_t bits) const {
  if (fixed_params_.has_value()) return *fixed_params_;
  return ssa::SsaParams::for_bits(std::max<std::size_t>(bits, 1));
}

void SsaBackend::accumulate(const ssa::SsaStats& call_stats) {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_ += call_stats;
}

ssa::SsaStats SsaBackend::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

BigUInt SsaBackend::multiply(const BigUInt& a, const BigUInt& b) {
  if (a.is_zero() || b.is_zero()) return BigUInt{};
  const ssa::SsaParams params = params_for(std::max(a.bit_length(), b.bit_length()));
  ssa::SsaStats call_stats;
  BigUInt out;
  if (shared_cache_ != nullptr) {
    out = ssa::multiply_cached(a, b, params, *shared_cache_, workspace(), &call_stats);
  } else {
    ssa::multiply_into(out, a, b, params, workspace(), &call_stats);
  }
  accumulate(call_stats);
  return out;
}

BigUInt SsaBackend::square(const BigUInt& a) {
  if (a.is_zero()) return BigUInt{};
  const ssa::SsaParams params = params_for(a.bit_length());
  ssa::SsaStats call_stats;
  BigUInt out;
  if (shared_cache_ != nullptr) {
    out = ssa::multiply_cached(a, a, params, *shared_cache_, workspace(), &call_stats);
  } else {
    ssa::square_into(out, a, params, workspace(), &call_stats);
  }
  accumulate(call_stats);
  return out;
}

ssa::SpectrumHandle SsaBackend::forward_spectrum(const BigUInt& value,
                                                 const ssa::SsaParams& params) {
  const ssa::SpectrumDomain domain(params, workspace());
  auto spectrum = std::make_shared<ssa::ResidentSpectrum>();
  domain.enter(*spectrum, value);
  ssa::SsaStats call_stats;
  call_stats.transform_count = 1;
  accumulate(call_stats);
  return spectrum;
}

ssa::SpectrumHandle SsaBackend::multiply_spectra(const ssa::SpectrumHandle& a,
                                                 const ssa::SpectrumHandle& b,
                                                 const ssa::SsaParams& params) {
  const ssa::SpectrumDomain domain(params, workspace());
  auto product = std::make_shared<ssa::ResidentSpectrum>();
  domain.multiply(*product, *a, *b);
  ssa::SsaStats call_stats;
  call_stats.pointwise_muls = params.transform_size;
  accumulate(call_stats);
  return product;
}

BigUInt SsaBackend::materialize_spectrum(const ssa::ResidentSpectrum& spectrum,
                                         const ssa::SsaParams& params) {
  const ssa::SpectrumDomain domain(params, workspace());
  BigUInt out;
  domain.leave(out, spectrum);
  ssa::SsaStats call_stats;
  call_stats.transform_count = 1;
  accumulate(call_stats);
  return out;
}

std::vector<BigUInt> SsaBackend::multiply_batch(std::span<const MulJob> jobs,
                                                BatchStats* stats) {
  // One parameter set for the whole batch (sized to the largest operand) so
  // spectra are interchangeable across jobs.
  std::size_t max_bits = 0;
  for (const MulJob& job : jobs) {
    max_bits = std::max({max_bits, job.first.bit_length(), job.second.bit_length()});
  }
  const ssa::SsaParams params = params_for(max_bits);
  ssa::BatchStats ssa_stats;
  std::vector<BigUInt> products = ssa::multiply_batch(jobs, params, workspace(), &ssa_stats);
  ssa::SsaStats call_stats;
  call_stats.transform_count = ssa_stats.transform_count();
  call_stats.pointwise_muls = ssa_stats.inverse_transforms * params.transform_size;
  accumulate(call_stats);
  if (stats != nullptr) {
    *stats = BatchStats{};
    stats->jobs = ssa_stats.jobs;
    stats->forward_transforms = ssa_stats.forward_transforms;
    stats->inverse_transforms = ssa_stats.inverse_transforms;
    stats->spectrum_cache_hits = ssa_stats.spectrum_cache_hits;
  }
  return products;
}

}  // namespace hemul::backend
