#include "backend/ssa_backend.hpp"

#include <algorithm>

#include "ssa/batch.hpp"
#include "ssa/multiply.hpp"

namespace hemul::backend {

using bigint::BigUInt;

BackendLimits SsaBackend::limits() const {
  BackendLimits limits;
  limits.max_operand_bits = fixed_params_.has_value() ? fixed_params_->max_operand_bits() : 0;
  limits.caches_spectra = true;
  return limits;
}

ssa::SsaParams SsaBackend::params_for(std::size_t bits) const {
  if (fixed_params_.has_value()) return *fixed_params_;
  return ssa::SsaParams::for_bits(std::max<std::size_t>(bits, 1));
}

BigUInt SsaBackend::multiply(const BigUInt& a, const BigUInt& b) {
  if (a.is_zero() || b.is_zero()) return BigUInt{};
  const ssa::SsaParams params = params_for(std::max(a.bit_length(), b.bit_length()));
  if (shared_cache_ != nullptr) return ssa::multiply_cached(a, b, params, *shared_cache_);
  return ssa::multiply(a, b, params);
}

BigUInt SsaBackend::square(const BigUInt& a) {
  if (a.is_zero()) return BigUInt{};
  const ssa::SsaParams params = params_for(a.bit_length());
  if (shared_cache_ != nullptr) return ssa::multiply_cached(a, a, params, *shared_cache_);
  return ssa::square(a, params);
}

std::vector<BigUInt> SsaBackend::multiply_batch(std::span<const MulJob> jobs,
                                                BatchStats* stats) {
  // One parameter set for the whole batch (sized to the largest operand) so
  // spectra are interchangeable across jobs.
  std::size_t max_bits = 0;
  for (const MulJob& job : jobs) {
    max_bits = std::max({max_bits, job.first.bit_length(), job.second.bit_length()});
  }
  ssa::BatchStats ssa_stats;
  std::vector<BigUInt> products = ssa::multiply_batch(jobs, params_for(max_bits), &ssa_stats);
  if (stats != nullptr) {
    *stats = BatchStats{};
    stats->jobs = ssa_stats.jobs;
    stats->forward_transforms = ssa_stats.forward_transforms;
    stats->inverse_transforms = ssa_stats.inverse_transforms;
    stats->spectrum_cache_hits = ssa_stats.spectrum_cache_hits;
  }
  return products;
}

}  // namespace hemul::backend
