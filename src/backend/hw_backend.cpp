#include "backend/hw_backend.hpp"

namespace hemul::backend {

using bigint::BigUInt;

BackendLimits HwBackend::limits() const {
  BackendLimits limits;
  limits.max_operand_bits = hw_.config().ssa.max_operand_bits();
  limits.caches_spectra = true;
  limits.reports_hw_cycles = true;
  return limits;
}

BigUInt HwBackend::multiply(const BigUInt& a, const BigUInt& b) {
  hw::MultiplyReport report;
  BigUInt product = hw_.multiply(a, b, &report);
  accumulated_cycles_ += report.total_cycles;
  last_report_ = std::move(report);
  return product;
}

BigUInt HwBackend::square(const BigUInt& a) {
  hw::MultiplyReport report;
  BigUInt product = hw_.square(a, &report);
  accumulated_cycles_ += report.total_cycles;
  last_report_ = std::move(report);
  return product;
}

std::vector<BigUInt> HwBackend::multiply_batch(std::span<const MulJob> jobs,
                                               BatchStats* stats) {
  hw::HwAccelerator::BatchReport report;
  std::vector<BigUInt> products = hw_.multiply_batch_cached(jobs, &report);
  accumulated_cycles_ += report.total_cycles;
  last_batch_report_ = report;
  if (stats != nullptr) {
    *stats = BatchStats{};
    stats->jobs = report.operations;
    stats->forward_transforms = report.forward_transforms;
    stats->inverse_transforms = report.operations;
    stats->spectrum_cache_hits = report.spectrum_cache_hits;
    stats->total_cycles = report.total_cycles;
    stats->clock_ns = report.clock_ns;
  }
  return products;
}

}  // namespace hemul::backend
