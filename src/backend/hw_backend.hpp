#pragma once

#include <optional>

#include "backend/backend.hpp"
#include "hw/accel/accelerator.hpp"

namespace hemul::backend {

/// The simulated FPGA accelerator (paper Sections IV-V) behind the backend
/// interface, registered as "hw". Every call carries a cycle-accurate
/// report; multiply_batch streams jobs through the phase engines with
/// double buffering and forward-spectrum caching.
class HwBackend final : public MultiplierBackend {
 public:
  explicit HwBackend(hw::AcceleratorConfig config = hw::AcceleratorConfig::paper())
      : hw_(std::move(config)) {}

  [[nodiscard]] std::string name() const override { return "hw"; }
  [[nodiscard]] BackendLimits limits() const override;
  [[nodiscard]] bigint::BigUInt multiply(const bigint::BigUInt& a,
                                         const bigint::BigUInt& b) override;
  [[nodiscard]] bigint::BigUInt square(const bigint::BigUInt& a) override;
  std::vector<bigint::BigUInt> multiply_batch(std::span<const MulJob> jobs,
                                              BatchStats* stats = nullptr) override;

  /// Cycle report of the most recent multiply()/square() call.
  [[nodiscard]] const std::optional<hw::MultiplyReport>& last_report() const noexcept {
    return last_report_;
  }

  /// Modeled cycles accumulated across every multiply/square/batch call on
  /// this instance (the scheduler reads deltas of this for per-lane
  /// accounting, so jobs that never touch the backend contribute zero).
  [[nodiscard]] u64 accumulated_cycles() const noexcept { return accumulated_cycles_; }

  /// Batch report of the most recent multiply_batch() call.
  [[nodiscard]] const std::optional<hw::HwAccelerator::BatchReport>& last_batch_report()
      const noexcept {
    return last_batch_report_;
  }

  [[nodiscard]] hw::HwAccelerator& accelerator() noexcept { return hw_; }

 private:
  hw::HwAccelerator hw_;
  std::optional<hw::MultiplyReport> last_report_;
  std::optional<hw::HwAccelerator::BatchReport> last_batch_report_;
  u64 accumulated_cycles_ = 0;
};

}  // namespace hemul::backend
