#include "backend/registry.hpp"

#include <algorithm>
#include <sstream>

#include "backend/classical.hpp"
#include "backend/hw_backend.hpp"
#include "backend/ssa_backend.hpp"
#include "bigint/mul.hpp"
#include "ssa/multiply.hpp"

namespace hemul::backend {

using bigint::BigUInt;

namespace {

/// The "auto" policy: classical dispatch below the SSA advantage point,
/// NTT above it. Batches route through whichever engine fits the largest
/// operand, so FHE-scale batches get spectrum caching.
class AutoBackend final : public MultiplierBackend {
 public:
  [[nodiscard]] std::string name() const override { return "auto"; }

  [[nodiscard]] BackendLimits limits() const override {
    BackendLimits limits;
    limits.caches_spectra = true;
    return limits;
  }

  [[nodiscard]] BigUInt multiply(const BigUInt& a, const BigUInt& b) override {
    return std::max(a.bit_length(), b.bit_length()) >= kSsaDispatchBits
               ? ssa_.multiply(a, b)
               : classical_.multiply(a, b);
  }

  [[nodiscard]] BigUInt square(const BigUInt& a) override {
    return a.bit_length() >= kSsaDispatchBits ? ssa_.square(a) : classical_.multiply(a, a);
  }

  std::vector<BigUInt> multiply_batch(std::span<const MulJob> jobs,
                                      BatchStats* stats) override {
    std::size_t max_bits = 0;
    for (const MulJob& job : jobs) {
      max_bits = std::max({max_bits, job.first.bit_length(), job.second.bit_length()});
    }
    if (max_bits >= kSsaDispatchBits) return ssa_.multiply_batch(jobs, stats);
    return classical_.multiply_batch(jobs, stats);
  }

 private:
  ClassicalBackend classical_;
  SsaBackend ssa_;
};

/// bigint dispatch hook: the function-pointer seam cannot capture state, so
/// it re-implements the auto policy with the registry's building blocks.
BigUInt auto_dispatch(const BigUInt& a, const BigUInt& b) {
  if (std::max(a.bit_length(), b.bit_length()) >= kSsaDispatchBits) {
    return ssa::mul_ssa(a, b);
  }
  return bigint::mul_auto_classical(a, b);
}

/// Forces registry construction (and thus hook installation) during static
/// initialization of any binary that links the backend layer.
const struct DispatchHookInit {
  DispatchHookInit() { (void)Registry::instance(); }
} kDispatchHookInit;

}  // namespace

Registry::Registry() {
  factories_["schoolbook"] = [] {
    return std::make_shared<ClassicalBackend>(ClassicalBackend::Algorithm::kSchoolbook);
  };
  factories_["karatsuba"] = [] {
    return std::make_shared<ClassicalBackend>(ClassicalBackend::Algorithm::kKaratsuba);
  };
  factories_["toom3"] = [] {
    return std::make_shared<ClassicalBackend>(ClassicalBackend::Algorithm::kToom3);
  };
  factories_["classical"] = [] {
    return std::make_shared<ClassicalBackend>(ClassicalBackend::Algorithm::kAuto);
  };
  factories_["ssa"] = [] { return std::make_shared<SsaBackend>(); };
  factories_["hw"] = [] { return std::make_shared<HwBackend>(); };
  factories_["auto"] = [] { return std::make_shared<AutoBackend>(); };

  bigint::set_mul_dispatch(&auto_dispatch);
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(std::string name, Factory factory) {
  const std::lock_guard lock(mutex_);
  shared_.erase(name);
  factories_[std::move(name)] = std::move(factory);
}

bool Registry::contains(std::string_view name) const {
  const std::lock_guard lock(mutex_);
  return factories_.find(name) != factories_.end();
}

std::shared_ptr<MultiplierBackend> Registry::create(std::string_view name) const {
  Factory factory;
  {
    const std::lock_guard lock(mutex_);
    const auto it = factories_.find(name);
    if (it != factories_.end()) factory = it->second;
  }
  if (!factory) {
    std::ostringstream msg;
    msg << "unknown multiplier backend '" << name << "'; registered:";
    for (const std::string& known : names()) msg << ' ' << known;
    throw std::invalid_argument(msg.str());
  }
  return factory();
}

std::shared_ptr<MultiplierBackend> Registry::shared(std::string_view name) {
  {
    const std::lock_guard lock(mutex_);
    const auto it = shared_.find(name);
    if (it != shared_.end()) return it->second;
  }
  std::shared_ptr<MultiplierBackend> instance = create(name);
  const std::lock_guard lock(mutex_);
  return shared_.emplace(std::string(name), std::move(instance)).first->second;
}

std::vector<std::string> Registry::names() const {
  const std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

std::shared_ptr<MultiplierBackend> make_backend(std::string_view name) {
  return Registry::instance().create(name);
}

std::shared_ptr<MultiplierBackend> auto_backend() {
  return Registry::instance().shared("auto");
}

}  // namespace hemul::backend
