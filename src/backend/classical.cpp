#include "backend/classical.hpp"

namespace hemul::backend {

std::string ClassicalBackend::name() const {
  switch (algorithm_) {
    case Algorithm::kSchoolbook: return "schoolbook";
    case Algorithm::kKaratsuba: return "karatsuba";
    case Algorithm::kToom3: return "toom3";
    case Algorithm::kAuto: return "classical";
  }
  return "classical";
}

bigint::BigUInt ClassicalBackend::multiply(const bigint::BigUInt& a, const bigint::BigUInt& b) {
  switch (algorithm_) {
    case Algorithm::kSchoolbook: return bigint::mul_schoolbook(a, b);
    case Algorithm::kKaratsuba: return bigint::mul_karatsuba(a, b);
    case Algorithm::kToom3: return bigint::mul_toom3(a, b);
    case Algorithm::kAuto: break;
  }
  // mul_auto_classical, not mul_auto: the latter re-enters the installed
  // dispatch hook, which routes back into this backend.
  return bigint::mul_auto_classical(a, b);
}

}  // namespace hemul::backend
