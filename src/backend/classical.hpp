#pragma once

#include "backend/backend.hpp"
#include "bigint/mul.hpp"

namespace hemul::backend {

/// Adapter over the classical bigint multipliers (src/bigint/mul.hpp): the
/// O(n^2)..O(n^1.465) baselines the paper's Section III argues against for
/// million-bit operands. Registered as "schoolbook", "karatsuba", "toom3"
/// and (for the size-adaptive dispatcher) "classical".
class ClassicalBackend final : public MultiplierBackend {
 public:
  enum class Algorithm { kSchoolbook, kKaratsuba, kToom3, kAuto };

  explicit ClassicalBackend(Algorithm algorithm = Algorithm::kAuto)
      : algorithm_(algorithm) {}

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] BackendLimits limits() const override { return {}; }
  [[nodiscard]] bigint::BigUInt multiply(const bigint::BigUInt& a,
                                         const bigint::BigUInt& b) override;

 private:
  Algorithm algorithm_;
};

}  // namespace hemul::backend
