#pragma once

#include <memory>
#include <optional>

#include "backend/backend.hpp"
#include "ssa/params.hpp"
#include "ssa/spectrum_cache.hpp"

namespace hemul::backend {

/// Software Schonhage-Strassen/NTT backend (src/ssa), registered as "ssa".
///
/// Default-constructed it adapts its parameters to each call (any operand
/// size); constructed with fixed SsaParams it becomes one accelerator
/// instance with a hard operand limit, matching the hardware's behavior.
/// multiply_batch runs the spectrum-caching batch executor (ssa/batch.hpp).
class SsaBackend final : public MultiplierBackend {
 public:
  SsaBackend() = default;
  explicit SsaBackend(ssa::SsaParams params) : fixed_params_(params) {}

  [[nodiscard]] std::string name() const override { return "ssa"; }
  [[nodiscard]] BackendLimits limits() const override;
  [[nodiscard]] bigint::BigUInt multiply(const bigint::BigUInt& a,
                                         const bigint::BigUInt& b) override;
  [[nodiscard]] bigint::BigUInt square(const bigint::BigUInt& a) override;
  std::vector<bigint::BigUInt> multiply_batch(std::span<const MulJob> jobs,
                                              BatchStats* stats = nullptr) override;

  /// Routes the forward transforms of multiply()/square() through a shared
  /// thread-safe spectrum cache, so instances on different scheduler lanes
  /// transform a repeated operand once process-wide. multiply_batch keeps
  /// its batch-scoped provider (its stats stay per-batch exact).
  void set_shared_cache(std::shared_ptr<ssa::ConcurrentSpectrumCache> cache) {
    shared_cache_ = std::move(cache);
  }

 private:
  /// Fixed parameters, or parameters sized for `bits`-bit operands.
  [[nodiscard]] ssa::SsaParams params_for(std::size_t bits) const;

  std::optional<ssa::SsaParams> fixed_params_;
  std::shared_ptr<ssa::ConcurrentSpectrumCache> shared_cache_;
};

}  // namespace hemul::backend
