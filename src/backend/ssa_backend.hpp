#pragma once

#include <memory>
#include <mutex>
#include <optional>

#include "backend/backend.hpp"
#include "ssa/multiply.hpp"
#include "ssa/params.hpp"
#include "ssa/resident.hpp"
#include "ssa/spectrum_cache.hpp"
#include "ssa/workspace.hpp"

namespace hemul::backend {

/// Software Schonhage-Strassen/NTT backend (src/ssa), registered as "ssa".
///
/// Default-constructed it adapts its parameters to each call (any operand
/// size); constructed with fixed SsaParams it becomes one accelerator
/// instance with a hard operand limit, matching the hardware's behavior.
/// multiply_batch runs the spectrum-caching batch executor (ssa/batch.hpp).
///
/// Every call runs in a reusable ssa::Workspace: the scheduler injects one
/// per PE lane via set_workspace(); otherwise the calling thread's arena is
/// used. Either way, steady-state calls are allocation-free apart from the
/// returned products. A backend instance must not be called concurrently
/// from multiple threads (see CONTRIBUTING.md on workspace ownership).
class SsaBackend final : public MultiplierBackend {
 public:
  SsaBackend() = default;
  explicit SsaBackend(ssa::SsaParams params) : fixed_params_(params) {}

  [[nodiscard]] std::string name() const override { return "ssa"; }
  [[nodiscard]] BackendLimits limits() const override;
  [[nodiscard]] bigint::BigUInt multiply(const bigint::BigUInt& a,
                                         const bigint::BigUInt& b) override;
  [[nodiscard]] bigint::BigUInt square(const bigint::BigUInt& a) override;
  std::vector<bigint::BigUInt> multiply_batch(std::span<const MulJob> jobs,
                                              BatchStats* stats = nullptr) override;

  /// Routes the forward transforms of multiply()/square() through a shared
  /// thread-safe spectrum cache, so instances on different scheduler lanes
  /// transform a repeated operand once process-wide. multiply_batch keeps
  /// its batch-scoped provider (its stats stay per-batch exact).
  void set_shared_cache(std::shared_ptr<ssa::ConcurrentSpectrumCache> cache) {
    shared_cache_ = std::move(cache);
  }

  /// Dedicated buffer arena for this instance (the scheduler gives each PE
  /// lane its own, so lanes never contend); without one, the calling
  /// thread's arena is used.
  void set_workspace(std::shared_ptr<ssa::Workspace> workspace) {
    workspace_ = std::move(workspace);
  }

  // ---- spectrum-resident entry points --------------------------------
  // The evaluator's wavefront loop splits the 3-transform multiply into
  // its phases so intermediate spectra can stay resident across gates:
  // forward once per distinct operand wire, pointwise per AND gate, one
  // inverse per wire that actually leaves the domain. All three run in
  // this instance's workspace and book into stats().

  /// Forward spectrum of `value` under `params` (an operand spectrum).
  [[nodiscard]] ssa::SpectrumHandle forward_spectrum(const bigint::BigUInt& value,
                                                     const ssa::SsaParams& params);

  /// Pointwise product of two operand spectra (a product spectrum).
  [[nodiscard]] ssa::SpectrumHandle multiply_spectra(const ssa::SpectrumHandle& a,
                                                     const ssa::SpectrumHandle& b,
                                                     const ssa::SsaParams& params);

  /// The exact integer a resident spectrum stands for (inverse + carry
  /// recovery; the spectrum is not consumed).
  [[nodiscard]] bigint::BigUInt materialize_spectrum(const ssa::ResidentSpectrum& spectrum,
                                                     const ssa::SsaParams& params);

  /// Cumulative transform statistics across this instance's calls.
  /// transform_count reflects transforms actually executed: cache-hit
  /// multiplies report fewer than 3 (the satellite fix for the old
  /// unconditional +3 accounting). Thread-safe (the registry's shared
  /// "auto" instance is reachable from concurrent sessions).
  [[nodiscard]] ssa::SsaStats stats() const;

 private:
  /// Fixed parameters, or parameters sized for `bits`-bit operands.
  [[nodiscard]] ssa::SsaParams params_for(std::size_t bits) const;

  [[nodiscard]] ssa::Workspace& workspace() {
    return workspace_ != nullptr ? *workspace_ : ssa::thread_workspace();
  }

  void accumulate(const ssa::SsaStats& call_stats);

  std::optional<ssa::SsaParams> fixed_params_;
  std::shared_ptr<ssa::ConcurrentSpectrumCache> shared_cache_;
  std::shared_ptr<ssa::Workspace> workspace_;
  /// Guards stats_ only: calls themselves need per-instance (or per-lane)
  /// serialization because of the workspace, but the shared "auto"
  /// engine's inner SsaBackend can see concurrent callers, each on its own
  /// thread workspace.
  mutable std::mutex stats_mutex_;
  ssa::SsaStats stats_;
};

}  // namespace hemul::backend
