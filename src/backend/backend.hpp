#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bigint/biguint.hpp"

namespace hemul::backend {

/// Capability/limit description of a multiplier backend, queried by the
/// layers above it (core facade, FHE scheme, CLI) before submitting work.
struct BackendLimits {
  /// Largest exact operand in bits; 0 means unlimited (the backend adapts
  /// its parameters to the operand size).
  std::size_t max_operand_bits = 0;
  /// multiply_batch caches forward NTT spectra of repeated operands, so a
  /// batch sharing one operand costs N+1 transforms instead of 3N.
  bool caches_spectra = false;
  /// The backend models hardware and fills cycle counts in BatchStats /
  /// exposes per-multiply cycle reports.
  bool reports_hw_cycles = false;
  /// The backend can accept and return resident spectrum handles
  /// (forward / pointwise multiply / materialize as separate operations),
  /// letting the evaluator keep wires in the NTT domain across circuit
  /// levels instead of round-tripping every gate.
  bool spectrum_resident = false;
};

/// Execution statistics of one multiply_batch call.
struct BatchStats {
  u64 jobs = 0;
  u64 forward_transforms = 0;   ///< forward NTTs actually executed
  u64 inverse_transforms = 0;   ///< one per product on NTT backends
  u64 spectrum_cache_hits = 0;  ///< forward transforms avoided by the cache
  u64 total_cycles = 0;         ///< modeled cycles (hardware backends only)
  double clock_ns = 0.0;

  [[nodiscard]] double total_time_us() const noexcept {
    return static_cast<double>(total_cycles) * clock_ns / 1000.0;
  }
};

/// One batched multiplication job: a pair of operands.
using MulJob = std::pair<bigint::BigUInt, bigint::BigUInt>;

/// Abstract ultralong-integer multiplier.
///
/// This is the seam the whole stack dispatches through: classical bigint
/// algorithms, the software SSA/NTT path and the simulated FPGA accelerator
/// all implement it, and fhe::Dghv / core::Accelerator / the examples pick
/// an engine by name from the Registry rather than hardwiring a call path
/// (the FAB/Medha layering: scheduling above, arithmetic units below).
class MultiplierBackend {
 public:
  virtual ~MultiplierBackend() = default;

  /// Registry key / display name, e.g. "ssa" or "hw".
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual BackendLimits limits() const = 0;

  /// The exact product a*b. Operands must respect limits().
  [[nodiscard]] virtual bigint::BigUInt multiply(const bigint::BigUInt& a,
                                                 const bigint::BigUInt& b) = 0;

  /// Squaring; NTT backends override with the one-forward-transform fast
  /// path (paper: 2 instead of 3 transforms).
  [[nodiscard]] virtual bigint::BigUInt square(const bigint::BigUInt& a) {
    return multiply(a, a);
  }

  /// Multiplies a batch of jobs, bit-exact against per-call multiply().
  /// The base implementation loops; spectrum-caching backends override it
  /// to amortize forward transforms of repeated operands.
  virtual std::vector<bigint::BigUInt> multiply_batch(std::span<const MulJob> jobs,
                                                      BatchStats* stats = nullptr);
};

/// Adapts an arbitrary multiplication function to the backend interface
/// (used by fhe::Dghv::set_multiplier for backward compatibility and by
/// tests that inject counting/faulting multipliers).
class FunctionBackend final : public MultiplierBackend {
 public:
  using MulFn = std::function<bigint::BigUInt(const bigint::BigUInt&, const bigint::BigUInt&)>;

  explicit FunctionBackend(MulFn fn, std::string name = "custom")
      : fn_(std::move(fn)), name_(std::move(name)) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] BackendLimits limits() const override { return {}; }
  [[nodiscard]] bigint::BigUInt multiply(const bigint::BigUInt& a,
                                         const bigint::BigUInt& b) override {
    return fn_(a, b);
  }

 private:
  MulFn fn_;
  std::string name_;
};

}  // namespace hemul::backend
