#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "backend/backend.hpp"

namespace hemul::backend {

/// Operand size (bits) at which the auto policy switches from the classical
/// dispatcher to the SSA/NTT path (the crossover bench E4 locates it around
/// 10^5 bits).
inline constexpr std::size_t kSsaDispatchBits = 100'000;

/// String-keyed factory registry of multiplier backends.
///
/// Built-ins registered at construction: "schoolbook", "karatsuba",
/// "toom3", "classical" (size-adaptive classical), "ssa" (software
/// SSA/NTT, adaptive parameters), "hw" (simulated accelerator, paper
/// configuration) and "auto" (classical below kSsaDispatchBits, SSA
/// above). Constructing the registry also installs the auto policy as
/// bigint's multiplication dispatch hook, so BigUInt::operator* routes
/// through the backend layer from then on. Thread-safe.
class Registry {
 public:
  using Factory = std::function<std::shared_ptr<MultiplierBackend>()>;

  static Registry& instance();

  /// Registers (or replaces) a factory under `name`.
  void add(std::string name, Factory factory);

  [[nodiscard]] bool contains(std::string_view name) const;

  /// A fresh instance; throws std::invalid_argument for unknown names
  /// (the message lists the registered ones).
  [[nodiscard]] std::shared_ptr<MultiplierBackend> create(std::string_view name) const;

  /// A process-wide shared instance (created on first request).
  [[nodiscard]] std::shared_ptr<MultiplierBackend> shared(std::string_view name);

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  Registry();

  mutable std::mutex mutex_;
  std::map<std::string, Factory, std::less<>> factories_;
  std::map<std::string, std::shared_ptr<MultiplierBackend>, std::less<>> shared_;
};

/// Convenience: Registry::instance().create(name).
[[nodiscard]] std::shared_ptr<MultiplierBackend> make_backend(std::string_view name);

/// The shared size-adaptive policy backend ("auto"): classical algorithms
/// below kSsaDispatchBits, SSA/NTT above, spectrum-caching batches.
[[nodiscard]] std::shared_ptr<MultiplierBackend> auto_backend();

}  // namespace hemul::backend
