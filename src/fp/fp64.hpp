#pragma once

#include <compare>
#include <vector>

#include "util/uint128.hpp"

namespace hemul::fp {

/// The Solinas prime used throughout the accelerator:
///   p = 2^64 - 2^32 + 1
/// chosen by the paper because
///   * 2^96 = -1 (mod p) and 2^192 = 1 (mod p), so multiplication by any
///     power of two is a 192-bit cyclic rotation (pure wiring + shifts in
///     hardware), and
///   * 8 is a primitive 64th root of unity, making all radix-64 butterfly
///     twiddles shift-only (paper Eq. 3).
inline constexpr u64 kModulus = 0xFFFF'FFFF'0000'0001ULL;

/// 2^64 mod p = 2^32 - 1. Used by the folding reduction.
inline constexpr u64 kEpsilon = 0xFFFF'FFFFULL;

/// Reduces a 128-bit value modulo p to the canonical range [0, p).
///
/// Uses the Solinas folding identities 2^64 = 2^32 - 1 and 2^96 = -1:
/// with x = hi_hi*2^96 + hi_lo*2^64 + lo,
///   x = lo + hi_lo*(2^32 - 1) - hi_hi  (mod p).
/// Branch-light (conditional moves) and header-inline: this is the single
/// hottest operation of the software NTT path.
inline u64 reduce128(u128 x) noexcept {
  const auto lo = static_cast<u64>(x);
  const auto hi = static_cast<u64>(x >> 64);
  const u64 hi_hi = hi >> 32;
  const u64 hi_lo = hi & kEpsilon;

  // t0 = lo - hi_hi (mod p): a borrow means the wrapped value is too large
  // by 2^64 = eps (mod p), so subtract eps once more.
  u64 t0 = lo - hi_hi;
  t0 -= (lo < hi_hi ? kEpsilon : 0);

  // t1 = hi_lo * (2^32 - 1) < 2^64, add with the symmetric carry fix.
  const u64 t1 = hi_lo * kEpsilon;
  u64 t2 = t0 + t1;
  t2 += (t2 < t1 ? kEpsilon : 0);

  t2 -= (t2 >= kModulus ? kModulus : 0);
  return t2;
}

/// An element of GF(p), always stored canonically in [0, p).
///
/// Fp is a regular value type: two elements are equal iff their canonical
/// representatives are equal.
class Fp {
 public:
  constexpr Fp() noexcept = default;

  /// Reduces an arbitrary 64-bit value into the field.
  constexpr explicit Fp(u64 value) noexcept : v_(value >= kModulus ? value - kModulus : value) {}

  /// Builds an element from a value already known to be canonical.
  static constexpr Fp from_canonical(u64 value) noexcept {
    Fp x;
    x.v_ = value;
    return x;
  }

  /// Reduces a 128-bit value into the field.
  static Fp from_u128(u128 value) noexcept { return from_canonical(reduce128(value)); }

  [[nodiscard]] constexpr u64 value() const noexcept { return v_; }
  [[nodiscard]] constexpr bool is_zero() const noexcept { return v_ == 0; }

  friend constexpr bool operator==(Fp, Fp) noexcept = default;
  friend constexpr auto operator<=>(Fp, Fp) noexcept = default;

  Fp& operator+=(Fp rhs) noexcept {
    u64 s = v_ + rhs.v_;
    s += (s < v_ ? kEpsilon : 0);  // wrapped sums land below p after the fix
    s -= (s >= kModulus ? kModulus : 0);
    v_ = s;
    return *this;
  }

  Fp& operator-=(Fp rhs) noexcept {
    const u64 d = v_ - rhs.v_;
    v_ = d + (v_ < rhs.v_ ? kModulus : 0);
    return *this;
  }

  Fp& operator*=(Fp rhs) noexcept {
    v_ = reduce128(mul_wide(v_, rhs.v_));
    return *this;
  }

  friend Fp operator+(Fp a, Fp b) noexcept { return a += b; }
  friend Fp operator-(Fp a, Fp b) noexcept { return a -= b; }
  friend Fp operator*(Fp a, Fp b) noexcept { return a *= b; }

  /// Additive inverse.
  [[nodiscard]] Fp neg() const noexcept {
    return from_canonical(v_ == 0 ? 0 : kModulus - v_);
  }

  /// a^e by square-and-multiply.
  [[nodiscard]] Fp pow(u64 e) const noexcept;

  /// Multiplicative inverse by Fermat (a^(p-2)); requires a != 0.
  [[nodiscard]] Fp inv() const;

  /// Multiplication by 2^k (any k >= 0), implemented with at most three
  /// 128-bit folds -- the software mirror of the hardware's shift network.
  /// Exploits 2^192 = 1 (mod p) to reduce k modulo 192 and 2^96 = -1 to
  /// fold the exponent below 96.
  [[nodiscard]] Fp mul_pow2(u64 k) const noexcept;

 private:
  u64 v_ = 0;
};

inline constexpr Fp kZero = Fp::from_canonical(0);
inline constexpr Fp kOne = Fp::from_canonical(1);

/// The element 2 as an Fp; powers of it drive the shift-based twiddles.
inline constexpr Fp kTwo = Fp::from_canonical(2);

/// The paper's 64th root of unity: 8 (Eq. 3).
inline constexpr Fp kOmega64 = Fp::from_canonical(8);

/// Convenience vector alias used by the NTT layers.
using FpVec = std::vector<Fp>;

}  // namespace hemul::fp
