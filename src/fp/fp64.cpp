#include "fp/fp64.hpp"

namespace hemul::fp {

Fp Fp::pow(u64 e) const noexcept {
  Fp base = *this;
  Fp acc = kOne;
  while (e != 0) {
    if (e & 1u) acc *= base;
    base *= base;
    e >>= 1;
  }
  return acc;
}

Fp Fp::inv() const { return pow(kModulus - 2); }

Fp Fp::mul_pow2(u64 k) const noexcept {
  k %= 192;  // 2^192 = 1 (mod p)
  Fp x = *this;
  if (k >= 96) {  // 2^96 = -1 (mod p)
    x = x.neg();
    k -= 96;
  }
  // Now k < 96; two shifts of at most 48 keep every intermediate in 128 bits.
  if (k > 48) {
    x = from_u128(static_cast<u128>(x.v_) << 48);
    k -= 48;
  }
  if (k != 0) x = from_u128(static_cast<u128>(x.v_) << k);
  return x;
}

}  // namespace hemul::fp
