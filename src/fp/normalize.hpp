#pragma once

#include "fp/fp64.hpp"

namespace hemul::fp {

/// The paper's Eq. 4 coarse reduction for 128-bit values.
///
/// Writing x = a*2^96 + b*2^64 + c*2^32 + d with 32-bit digits a..d, the
/// Solinas identities 2^96 = -1 and 2^64 = 2^32 - 1 (mod p) give
///
///     x = 2^32*(b + c) - a - b + d   (mod p).
///
/// The returned signed value lies in (-p, 2p) -- the paper's "at most one
/// extra addition or subtraction with the modulus" -- and is canonicalized
/// by addmod() below (the hardware AddMod block).
i128 normalize_eq4(u128 x) noexcept;

/// Final conditional +/- p ("AddMod" block). Requires v in (-p, 2p).
Fp addmod(i128 v);

/// Eq. 4 followed by AddMod: full 128-bit -> canonical reduction.
/// Functionally identical to reduce128 (asserted in the tests); kept
/// separate because the hardware model calls the two halves at different
/// pipeline stages.
Fp normalize_full(u128 x);

}  // namespace hemul::fp
