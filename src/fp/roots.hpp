#pragma once

#include <vector>

#include "fp/fp64.hpp"

namespace hemul::fp {

/// Root-of-unity machinery for GF(p), p = 2^64 - 2^32 + 1.
///
/// The multiplicative group has order p - 1 = 2^32 * 3 * 5 * 17 * 257 * 65537,
/// so power-of-two transform lengths up to 2^32 are supported. The paper's
/// accelerator additionally needs the root *hierarchy* aligned with the
/// element 8 so that all inner radix-64 twiddles become shifts:
/// aligned_root(n) returns an n-th root w with w^(n/64) = 8 exactly.

/// A generator of the full multiplicative group (7 is the conventional
/// generator for this prime; verified in the test suite).
Fp group_generator();

/// Returns true iff x has exact multiplicative order n.
bool has_order(Fp x, u64 n);

/// Primitive n-th root of unity. Requires n | p-1.
/// Throws std::invalid_argument otherwise.
Fp primitive_root(u64 n);

/// Primitive n-th root w (n a power of two, 64 <= n <= 2^32) additionally
/// satisfying w^(n/64) = 8, so the induced 64-point sub-transform twiddles
/// are exactly the paper's shift-only powers of 8.
Fp aligned_root(u64 n);

/// Precomputed powers w^0 .. w^(count-1).
std::vector<Fp> power_table(Fp w, std::size_t count);

/// n^{-1} in the field (for inverse-NTT scaling); requires n != 0 mod p.
Fp inv_of_u64(u64 n);

/// Prime factors of p-1 (each listed once).
const std::vector<u64>& group_order_prime_factors();

}  // namespace hemul::fp
