#include "fp/normalize.hpp"

#include "util/check.hpp"

namespace hemul::fp {

i128 normalize_eq4(u128 x) noexcept {
  const u64 d = static_cast<u64>(x) & 0xFFFF'FFFFULL;
  const u64 c = static_cast<u64>(x >> 32) & 0xFFFF'FFFFULL;
  const u64 b = static_cast<u64>(x >> 64) & 0xFFFF'FFFFULL;
  const u64 a = static_cast<u64>(x >> 96) & 0xFFFF'FFFFULL;

  const i128 shifted = static_cast<i128>((static_cast<u128>(b) + c) << 32);
  return shifted - static_cast<i128>(a) - static_cast<i128>(b) + static_cast<i128>(d);
}

Fp addmod(i128 v) {
  const auto p = static_cast<i128>(kModulus);
  HEMUL_CHECK_MSG(v > -p && v < 2 * p, "AddMod input out of single-correction range");
  if (v < 0) v += p;
  if (v >= p) v -= p;
  return Fp::from_canonical(static_cast<u64>(v));
}

Fp normalize_full(u128 x) { return addmod(normalize_eq4(x)); }

}  // namespace hemul::fp
