#pragma once

#include <cstddef>

#include "fp/fp64.hpp"

// Bulk GF(p) kernels for the software NTT hot path: butterfly levels,
// pointwise spectrum products and canonicalization sweeps.
//
// Inside a kernel, elements are carried in a *redundant* representation:
// any u64 in [0, 2^64) standing for its residue mod p, not necessarily the
// canonical representative in [0, p). This removes the final conditional
// subtraction from every addition/subtraction (the dominant cost of a
// butterfly on wide cores), mirroring how the accelerator's carry-save
// adder trees defer normalization to the end of the pipeline. Every kernel
// that hands data back to code using plain Fp arithmetic canonicalizes
// first; the redundant values never escape this header's functions.
//
// Correctness of the redundant ops does not depend on probabilistic
// arguments: add/sub apply the 2^64 = eps (mod p) wrap fix twice, which is
// exact for arbitrary u64 inputs (a single fix can itself wrap when an
// operand lies within eps of 2^64).
//
// When the build targets AVX-512 (F + DQ, e.g. via -march=native on a
// capable host -- see the HEMUL_NATIVE CMake option), the sweeps run eight
// lanes wide with the 64x64 product assembled from 32-bit partial products;
// otherwise the same algorithms run scalar. Both paths produce identical
// canonical results.

#if defined(__AVX512F__) && defined(__AVX512DQ__)
#define HEMUL_FP_AVX512 1
#include <immintrin.h>
#else
#define HEMUL_FP_AVX512 0
#endif

namespace hemul::fp {

// ---- scalar redundant-representation primitives ---------------------------

/// a + b (mod p) for arbitrary u64 a, b; result in [0, 2^64).
inline u64 add_lazy(u64 a, u64 b) noexcept {
  u64 s = a + b;
  if (s < a) {  // wrapped: compensate 2^64 = eps, which may wrap once more
    const u64 s2 = s + kEpsilon;
    s = s2 < s ? s2 + kEpsilon : s2;
  }
  return s;
}

/// a - b (mod p) for arbitrary u64 a, b; result in [0, 2^64).
inline u64 sub_lazy(u64 a, u64 b) noexcept {
  u64 d = a - b;
  if (a < b) {  // borrowed: compensate -2^64 = -eps, which may borrow again
    const u64 d2 = d - kEpsilon;
    d = d2 > d ? d2 - kEpsilon : d2;
  }
  return d;
}

/// a * b (mod p) for arbitrary u64 a, b; reduce128 yields the canonical
/// representative, which is also a valid redundant one.
inline u64 mul_lazy(u64 a, u64 b) noexcept { return reduce128(mul_wide(a, b)); }

/// Canonical representative of a redundant value (single conditional
/// subtraction suffices: x < 2^64 < 2p).
inline u64 canonical_u64(u64 x) noexcept { return x >= kModulus ? x - kModulus : x; }

#if HEMUL_FP_AVX512

// gcc flags the intentionally-uninitialized _mm512_undefined_epi32() that
// the shift/multiply intrinsics pass as their masked-off lanes; that is by
// design in the intrinsic headers, not a real read of uninitialized data.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace detail {

inline __m512i v_bcast(u64 x) noexcept { return _mm512_set1_epi64(static_cast<long long>(x)); }

/// Eight-lane add_lazy.
inline __m512i v_add_lazy(__m512i a, __m512i b) noexcept {
  const __m512i eps = v_bcast(kEpsilon);
  const __m512i s = _mm512_add_epi64(a, b);
  const __mmask8 m1 = _mm512_cmplt_epu64_mask(s, a);
  const __m512i s2 = _mm512_mask_add_epi64(s, m1, s, eps);
  const __mmask8 m2 = _mm512_mask_cmplt_epu64_mask(m1, s2, s);
  return _mm512_mask_add_epi64(s2, m2, s2, eps);
}

/// Eight-lane sub_lazy.
inline __m512i v_sub_lazy(__m512i a, __m512i b) noexcept {
  const __m512i eps = v_bcast(kEpsilon);
  const __m512i d = _mm512_sub_epi64(a, b);
  const __mmask8 m1 = _mm512_cmplt_epu64_mask(a, b);
  const __m512i d2 = _mm512_mask_sub_epi64(d, m1, d, eps);
  const __mmask8 m2 = _mm512_mask_cmplt_epu64_mask(m1, d, d2);
  return _mm512_mask_sub_epi64(d2, m2, d2, eps);
}

/// Full 64x64 -> 128 product per lane from 32-bit partial products.
inline void v_mul_wide(__m512i a, __m512i b, __m512i& hi, __m512i& lo) noexcept {
  const __m512i lo32 = v_bcast(0xFFFF'FFFFULL);
  const __m512i a_hi = _mm512_srli_epi64(a, 32);
  const __m512i b_hi = _mm512_srli_epi64(b, 32);
  const __m512i ll = _mm512_mul_epu32(a, b);
  const __m512i lh = _mm512_mul_epu32(a, b_hi);
  const __m512i hl = _mm512_mul_epu32(a_hi, b);
  const __m512i hh = _mm512_mul_epu32(a_hi, b_hi);
  // t = lh + (ll >> 32) cannot wrap (both terms < 2^64 - 2^33).
  const __m512i t = _mm512_add_epi64(lh, _mm512_srli_epi64(ll, 32));
  const __m512i t2 = _mm512_add_epi64(t, hl);
  const __mmask8 carry = _mm512_cmplt_epu64_mask(t2, t);
  lo = _mm512_or_si512(_mm512_slli_epi64(t2, 32), _mm512_and_si512(ll, lo32));
  hi = _mm512_add_epi64(hh, _mm512_srli_epi64(t2, 32));
  hi = _mm512_mask_add_epi64(hi, carry, hi, v_bcast(1ULL << 32));
}

/// Eight-lane reduce128 (Solinas folding, see fp64.hpp); output is the
/// canonical representative apart from the final conditional subtraction,
/// i.e. a redundant value in [0, 2^64).
inline __m512i v_reduce128_lazy(__m512i hi, __m512i lo) noexcept {
  const __m512i eps = v_bcast(kEpsilon);
  const __m512i hi_hi = _mm512_srli_epi64(hi, 32);
  const __m512i hi_lo = _mm512_and_si512(hi, v_bcast(0xFFFF'FFFFULL));
  // t0 = lo - hi_hi; a borrow's fix cannot borrow again (hi_hi < 2^32).
  __m512i t0 = _mm512_sub_epi64(lo, hi_hi);
  const __mmask8 b1 = _mm512_cmplt_epu64_mask(lo, hi_hi);
  t0 = _mm512_mask_sub_epi64(t0, b1, t0, eps);
  // t1 = hi_lo * eps = (hi_lo << 32) - hi_lo, exact (hi_lo < 2^32).
  const __m512i t1 = _mm512_sub_epi64(_mm512_slli_epi64(hi_lo, 32), hi_lo);
  __m512i t2 = _mm512_add_epi64(t0, t1);
  // A wrapped sum is < 2^64 - 2^33 + eps, so one fix suffices.
  const __mmask8 c1 = _mm512_cmplt_epu64_mask(t2, t1);
  return _mm512_mask_add_epi64(t2, c1, t2, eps);
}

inline __m512i v_mul_lazy(__m512i a, __m512i b) noexcept {
  __m512i hi;
  __m512i lo;
  v_mul_wide(a, b, hi, lo);
  return v_reduce128_lazy(hi, lo);
}

inline __m512i v_canonical(__m512i x) noexcept {
  const __m512i p = v_bcast(kModulus);
  const __mmask8 m = _mm512_cmpge_epu64_mask(x, p);
  return _mm512_mask_sub_epi64(x, m, x, p);
}

inline __m512i v_load(const Fp* ptr) noexcept {
  return _mm512_loadu_si512(static_cast<const void*>(ptr));
}

inline void v_store(Fp* ptr, __m512i x) noexcept {
  _mm512_storeu_si512(static_cast<void*>(ptr), x);
}

}  // namespace detail

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // HEMUL_FP_AVX512

// ---- array kernels --------------------------------------------------------
// All take redundant inputs and produce redundant outputs unless stated.

/// One decimation-in-frequency butterfly row over a lo/hi pair of length
/// `half`: lo' = lo + hi, hi' = (lo - hi) * tw.
inline void dif_butterflies(Fp* lo, Fp* hi, const Fp* tw, std::size_t half) noexcept {
  std::size_t k = 0;
#if HEMUL_FP_AVX512
  for (; k + 8 <= half; k += 8) {
    const __m512i u = detail::v_load(lo + k);
    const __m512i v = detail::v_load(hi + k);
    const __m512i w = detail::v_load(tw + k);
    detail::v_store(lo + k, detail::v_add_lazy(u, v));
    detail::v_store(hi + k, detail::v_mul_lazy(detail::v_sub_lazy(u, v), w));
  }
#endif
  for (; k < half; ++k) {
    const u64 u = lo[k].value();
    const u64 v = hi[k].value();
    lo[k] = Fp::from_canonical(add_lazy(u, v));
    hi[k] = Fp::from_canonical(mul_lazy(sub_lazy(u, v), tw[k].value()));
  }
}

/// One decimation-in-time butterfly row: t = hi * tw, lo' = lo + t,
/// hi' = lo - t.
inline void dit_butterflies(Fp* lo, Fp* hi, const Fp* tw, std::size_t half) noexcept {
  std::size_t k = 0;
#if HEMUL_FP_AVX512
  for (; k + 8 <= half; k += 8) {
    const __m512i u = detail::v_load(lo + k);
    const __m512i t = detail::v_mul_lazy(detail::v_load(hi + k), detail::v_load(tw + k));
    detail::v_store(lo + k, detail::v_add_lazy(u, t));
    detail::v_store(hi + k, detail::v_sub_lazy(u, t));
  }
#endif
  for (; k < half; ++k) {
    const u64 t = mul_lazy(hi[k].value(), tw[k].value());
    const u64 u = lo[k].value();
    lo[k] = Fp::from_canonical(add_lazy(u, t));
    hi[k] = Fp::from_canonical(sub_lazy(u, t));
  }
}

/// Broadcast-twiddle DIF butterfly: lo' = lo + hi, hi' = (lo - hi) * w over
/// `count` lanes, ONE twiddle for the whole pair. This is the vector-
/// parallel four-step form: the sub-transforms run over the ROW index of a
/// matrix, so each butterfly spans two contiguous rows and every level --
/// including the ones a monolithic sweep executes as scalar small-half
/// blocks -- is a full-width vector pass.
inline void dif_butterflies_bcast(Fp* lo, Fp* hi, Fp w, std::size_t count) noexcept {
  std::size_t k = 0;
#if HEMUL_FP_AVX512
  const __m512i wv = detail::v_bcast(w.value());
  for (; k + 8 <= count; k += 8) {
    const __m512i u = detail::v_load(lo + k);
    const __m512i v = detail::v_load(hi + k);
    detail::v_store(lo + k, detail::v_add_lazy(u, v));
    detail::v_store(hi + k, detail::v_mul_lazy(detail::v_sub_lazy(u, v), wv));
  }
#endif
  for (; k < count; ++k) {
    const u64 u = lo[k].value();
    const u64 v = hi[k].value();
    lo[k] = Fp::from_canonical(add_lazy(u, v));
    hi[k] = Fp::from_canonical(mul_lazy(sub_lazy(u, v), w.value()));
  }
}

/// Broadcast-twiddle DIT butterfly: t = hi * w, lo' = lo + t, hi' = lo - t.
inline void dit_butterflies_bcast(Fp* lo, Fp* hi, Fp w, std::size_t count) noexcept {
  std::size_t k = 0;
#if HEMUL_FP_AVX512
  const __m512i wv = detail::v_bcast(w.value());
  for (; k + 8 <= count; k += 8) {
    const __m512i u = detail::v_load(lo + k);
    const __m512i t = detail::v_mul_lazy(detail::v_load(hi + k), wv);
    detail::v_store(lo + k, detail::v_add_lazy(u, t));
    detail::v_store(hi + k, detail::v_sub_lazy(u, t));
  }
#endif
  for (; k < count; ++k) {
    const u64 t = mul_lazy(hi[k].value(), w.value());
    const u64 u = lo[k].value();
    lo[k] = Fp::from_canonical(add_lazy(u, t));
    hi[k] = Fp::from_canonical(sub_lazy(u, t));
  }
}

/// dst[i] = a[i] * b[i] * scale -- the fused pointwise product of a cyclic
/// convolution with the 1/N factor folded in. dst may alias a or b.
inline void pointwise_product_scaled(Fp* dst, const Fp* a, const Fp* b, Fp scale,
                                     std::size_t n) noexcept {
  std::size_t i = 0;
#if HEMUL_FP_AVX512
  const __m512i s = detail::v_bcast(scale.value());
  for (; i + 8 <= n; i += 8) {
    const __m512i x = detail::v_load(a + i);
    const __m512i y = detail::v_load(b + i);
    detail::v_store(dst + i, detail::v_mul_lazy(detail::v_mul_lazy(x, y), s));
  }
#endif
  for (; i < n; ++i) {
    dst[i] = Fp::from_canonical(
        mul_lazy(mul_lazy(a[i].value(), b[i].value()), scale.value()));
  }
}

/// dst[i] = a[i] * b[i], canonical output. dst may alias a or b.
inline void pointwise_product(Fp* dst, const Fp* a, const Fp* b, std::size_t n) noexcept {
  std::size_t i = 0;
#if HEMUL_FP_AVX512
  for (; i + 8 <= n; i += 8) {
    detail::v_store(dst + i, detail::v_canonical(detail::v_mul_lazy(
                                 detail::v_load(a + i), detail::v_load(b + i))));
  }
#endif
  for (; i < n; ++i) dst[i] = Fp::from_canonical(mul_lazy(a[i].value(), b[i].value()));
}

/// a[i] *= b[i], canonical output (safe to hand to plain Fp arithmetic).
inline void pointwise_product_canonical(Fp* a, const Fp* b, std::size_t n) noexcept {
  std::size_t i = 0;
#if HEMUL_FP_AVX512
  for (; i + 8 <= n; i += 8) {
    detail::v_store(a + i, detail::v_canonical(detail::v_mul_lazy(
                               detail::v_load(a + i), detail::v_load(b + i))));
  }
#endif
  for (; i < n; ++i) a[i] *= b[i];
}

/// data[i] *= scale, canonical output (the inverse transform's 1/N pass).
inline void scale_canonical(Fp* data, Fp scale, std::size_t n) noexcept {
  std::size_t i = 0;
#if HEMUL_FP_AVX512
  const __m512i s = detail::v_bcast(scale.value());
  for (; i + 8 <= n; i += 8) {
    detail::v_store(data + i,
                    detail::v_canonical(detail::v_mul_lazy(detail::v_load(data + i), s)));
  }
#endif
  for (; i < n; ++i) {
    data[i] = Fp::from_canonical(canonical_u64(mul_lazy(data[i].value(), scale.value())));
  }
}

/// a[i] = a[i] + b[i] (mod p); redundant inputs AND outputs -- the spectrum-
/// domain accumulation primitive. Callers must canonicalize (or bound-track)
/// before handing the result to code expecting canonical coefficients.
inline void pointwise_add(Fp* a, const Fp* b, std::size_t n) noexcept {
  std::size_t i = 0;
#if HEMUL_FP_AVX512
  for (; i + 8 <= n; i += 8) {
    detail::v_store(a + i, detail::v_add_lazy(detail::v_load(a + i), detail::v_load(b + i)));
  }
#endif
  for (; i < n; ++i) a[i] = Fp::from_canonical(add_lazy(a[i].value(), b[i].value()));
}

/// a[i] = a[i] * b[i] (mod p); redundant inputs and outputs -- the interior
/// pointwise passes of the four-step transform (twiddle multiply, spectrum
/// product) compose with the lazy butterfly sweeps without paying a
/// canonicalization in between. a may alias b.
inline void pointwise_product_lazy(Fp* a, const Fp* b, std::size_t n) noexcept {
  std::size_t i = 0;
#if HEMUL_FP_AVX512
  for (; i + 8 <= n; i += 8) {
    detail::v_store(a + i, detail::v_mul_lazy(detail::v_load(a + i), detail::v_load(b + i)));
  }
#endif
  for (; i < n; ++i) a[i] = Fp::from_canonical(mul_lazy(a[i].value(), b[i].value()));
}

// ---- blocked transpose kernels --------------------------------------------
// The four-step NTT's corner-turns: dst (cols x rows) = transpose of src
// (rows x cols). Walking 8x8 blocks keeps both the gathered source columns
// and the scattered destination rows inside L1 regardless of the matrix
// size; the AVX-512 micro-kernel turns one block in 24 shuffles. The
// scalar path visits elements in the same block order, so both produce
// bit-identical results (values are moved, never rearithmetized).

namespace detail {

#if HEMUL_FP_AVX512
/// Transposes one 8x8 block of u64: dst[j * dst_stride + i] =
/// src[i * src_stride + j]. Stage 1 interleaves row pairs 64-bit-wise;
/// stages 2-3 shuffle 128-bit quadrants across registers.
inline void transpose_8x8(Fp* dst, std::size_t dst_stride, const Fp* src,
                          std::size_t src_stride) noexcept {
  __m512i r0 = v_load(src + 0 * src_stride);
  __m512i r1 = v_load(src + 1 * src_stride);
  __m512i r2 = v_load(src + 2 * src_stride);
  __m512i r3 = v_load(src + 3 * src_stride);
  __m512i r4 = v_load(src + 4 * src_stride);
  __m512i r5 = v_load(src + 5 * src_stride);
  __m512i r6 = v_load(src + 6 * src_stride);
  __m512i r7 = v_load(src + 7 * src_stride);

  const __m512i u0 = _mm512_unpacklo_epi64(r0, r1);
  const __m512i u1 = _mm512_unpackhi_epi64(r0, r1);
  const __m512i u2 = _mm512_unpacklo_epi64(r2, r3);
  const __m512i u3 = _mm512_unpackhi_epi64(r2, r3);
  const __m512i u4 = _mm512_unpacklo_epi64(r4, r5);
  const __m512i u5 = _mm512_unpackhi_epi64(r4, r5);
  const __m512i u6 = _mm512_unpacklo_epi64(r6, r7);
  const __m512i u7 = _mm512_unpackhi_epi64(r6, r7);

  const __m512i s0 = _mm512_shuffle_i64x2(u0, u2, 0x88);
  const __m512i s1 = _mm512_shuffle_i64x2(u1, u3, 0x88);
  const __m512i s2 = _mm512_shuffle_i64x2(u0, u2, 0xDD);
  const __m512i s3 = _mm512_shuffle_i64x2(u1, u3, 0xDD);
  const __m512i s4 = _mm512_shuffle_i64x2(u4, u6, 0x88);
  const __m512i s5 = _mm512_shuffle_i64x2(u5, u7, 0x88);
  const __m512i s6 = _mm512_shuffle_i64x2(u4, u6, 0xDD);
  const __m512i s7 = _mm512_shuffle_i64x2(u5, u7, 0xDD);

  v_store(dst + 0 * dst_stride, _mm512_shuffle_i64x2(s0, s4, 0x88));
  v_store(dst + 1 * dst_stride, _mm512_shuffle_i64x2(s1, s5, 0x88));
  v_store(dst + 2 * dst_stride, _mm512_shuffle_i64x2(s2, s6, 0x88));
  v_store(dst + 3 * dst_stride, _mm512_shuffle_i64x2(s3, s7, 0x88));
  v_store(dst + 4 * dst_stride, _mm512_shuffle_i64x2(s0, s4, 0xDD));
  v_store(dst + 5 * dst_stride, _mm512_shuffle_i64x2(s1, s5, 0xDD));
  v_store(dst + 6 * dst_stride, _mm512_shuffle_i64x2(s2, s6, 0xDD));
  v_store(dst + 7 * dst_stride, _mm512_shuffle_i64x2(s3, s7, 0xDD));
}
#endif  // HEMUL_FP_AVX512

}  // namespace detail

/// Blocked transpose of the dst-row range [row_begin, row_end):
/// dst[j * rows + i] = src[i * cols + j] for j in the range, i in [0, rows).
/// src is rows x cols, dst is cols x rows; they must not overlap. The range
/// form is the four-step engine's tile: disjoint ranges touch disjoint dst
/// rows, so tiles run concurrently.
inline void transpose_range(Fp* dst, const Fp* src, std::size_t rows, std::size_t cols,
                            std::size_t row_begin, std::size_t row_end) noexcept {
  std::size_t j = row_begin;
#if HEMUL_FP_AVX512
  for (; j + 8 <= row_end; j += 8) {
    std::size_t i = 0;
    for (; i + 8 <= rows; i += 8) {
      detail::transpose_8x8(dst + j * rows + i, rows, src + i * cols + j, cols);
    }
    for (; i < rows; ++i) {
      for (std::size_t jj = j; jj < j + 8; ++jj) dst[jj * rows + i] = src[i * cols + jj];
    }
  }
#endif
  for (; j < row_end; ++j) {
    for (std::size_t i = 0; i < rows; ++i) dst[j * rows + i] = src[i * cols + j];
  }
}

/// Full blocked transpose: dst (cols x rows) = src (rows x cols) transposed.
inline void transpose(Fp* dst, const Fp* src, std::size_t rows, std::size_t cols) noexcept {
  transpose_range(dst, src, rows, cols, 0, cols);
}

/// Transpose-range fused with the inverse transform's epilogue:
/// dst[j * rows + i] = canonical(src[i * cols + j] * scale). Folding the
/// 1/N pass into the final corner-turn saves one full sweep over the data.
inline void transpose_scale_canonical_range(Fp* dst, const Fp* src, std::size_t rows,
                                            std::size_t cols, Fp scale, std::size_t row_begin,
                                            std::size_t row_end) noexcept {
  std::size_t j = row_begin;
#if HEMUL_FP_AVX512
  const __m512i s = detail::v_bcast(scale.value());
  Fp block[64];
  for (; j + 8 <= row_end; j += 8) {
    std::size_t i = 0;
    for (; i + 8 <= rows; i += 8) {
      detail::transpose_8x8(block, 8, src + i * cols + j, cols);
      for (std::size_t r = 0; r < 8; ++r) {
        detail::v_store(dst + (j + r) * rows + i,
                        detail::v_canonical(detail::v_mul_lazy(detail::v_load(block + 8 * r), s)));
      }
    }
    for (; i < rows; ++i) {
      for (std::size_t jj = j; jj < j + 8; ++jj) {
        dst[jj * rows + i] = Fp::from_canonical(
            canonical_u64(mul_lazy(src[i * cols + jj].value(), scale.value())));
      }
    }
  }
#endif
  for (; j < row_end; ++j) {
    for (std::size_t i = 0; i < rows; ++i) {
      dst[j * rows + i] = Fp::from_canonical(
          canonical_u64(mul_lazy(src[i * cols + j].value(), scale.value())));
    }
  }
}

/// Canonicalizes a redundant array in place.
inline void canonicalize(Fp* data, std::size_t n) noexcept {
  std::size_t i = 0;
#if HEMUL_FP_AVX512
  for (; i + 8 <= n; i += 8) {
    detail::v_store(data + i, detail::v_canonical(detail::v_load(data + i)));
  }
#endif
  for (; i < n; ++i) data[i] = Fp::from_canonical(canonical_u64(data[i].value()));
}

}  // namespace hemul::fp
