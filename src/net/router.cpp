#include "net/router.hpp"

#include <stdexcept>
#include <utility>

#include "util/check.hpp"

namespace hemul::net {

namespace {

std::vector<std::unique_ptr<ShardClient>> connect_all(
    const std::vector<std::string>& addresses) {
  HEMUL_CHECK_MSG(!addresses.empty(), "Router: no shards configured");
  std::vector<std::unique_ptr<ShardClient>> shards;
  shards.reserve(addresses.size());
  for (const std::string& address : addresses) {
    shards.push_back(std::make_unique<ShardClient>(address));
  }
  return shards;
}

}  // namespace

Router::Router(std::vector<std::string> shard_addresses)
    : Router(std::move(shard_addresses), Options{}) {}

Router::Router(std::vector<std::string> shard_addresses, Options options)
    : addresses_(std::move(shard_addresses)), shards_(connect_all(addresses_)),
      on_shutdown_(std::move(options.on_shutdown)),
      server_(options.port, [this](const fhe::Envelope& request, ServerConnection& conn) {
        handle(request, conn);
      }) {}

std::size_t Router::shard_of(u64 global_session, std::size_t shard_count) noexcept {
  // splitmix64: deterministic, well-mixed, and stable across platforms --
  // the same session id always lands on the same shard.
  u64 z = global_session + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return static_cast<std::size_t>(z % shard_count);
}

FleetStats Router::fleet_stats() {
  FleetStats fleet;
  {
    std::lock_guard lock(mutex_);
    fleet.sessions_created = sessions_created_;
    fleet.forwarded = forwarded_;
    fleet.failed = failed_;
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardStats shard;
    shard.address = addresses_[i];
    shard.alive = shards_[i]->alive();
    if (shard.alive) {
      try {
        FleetStats remote = shards_[i]->stats();
        if (remote.shards.size() == 1) shard.service = std::move(remote.shards[0].service);
      } catch (const std::exception&) {
        shard.alive = false;  // died between the check and the RPC
      }
    }
    fleet.shards.push_back(std::move(shard));
  }
  return fleet;
}

void Router::handle(const fhe::Envelope& request, ServerConnection& connection) {
  switch (request.type) {
    case fhe::MessageType::kCreateSession: {
      u64 global = 0;
      {
        std::lock_guard lock(mutex_);
        global = next_session_++;
      }
      const std::size_t shard = shard_of(global, shards_.size());
      if (!shards_[shard]->alive()) {
        throw std::runtime_error("shard " + addresses_[shard] +
                                 " for the new session is down");
      }
      // Forward the raw payload; the shard decodes and answers with the
      // key material, which travels back verbatim under the global id.
      const fhe::Envelope remote =
          shards_[shard]->call(fhe::MessageType::kCreateSession, 0, request.payload);
      if (remote.type == fhe::MessageType::kError) {
        // Re-raise toward OUR client with the shard's error payload.
        fhe::Envelope reply;
        reply.type = fhe::MessageType::kError;
        reply.session = request.session;
        reply.request_id = request.request_id;
        reply.payload = remote.payload;
        connection.send_now(std::move(reply));
        return;
      }
      if (remote.type != fhe::MessageType::kSessionCreated) {
        throw std::runtime_error("shard answered create_session with message type " +
                                 std::to_string(static_cast<unsigned>(remote.type)));
      }
      {
        std::lock_guard lock(mutex_);
        placements_[global] = Placement{shard, remote.session};
        ++sessions_created_;
      }
      fhe::Envelope reply;
      reply.type = fhe::MessageType::kSessionCreated;
      reply.session = global;
      reply.request_id = request.request_id;
      reply.payload = remote.payload;
      connection.send_now(std::move(reply));
      return;
    }
    case fhe::MessageType::kSubmit: {
      Placement placement;
      {
        std::lock_guard lock(mutex_);
        const auto it = placements_.find(request.session);
        if (it == placements_.end()) {
          throw std::invalid_argument("unknown session " + std::to_string(request.session));
        }
        placement = it->second;
      }
      ShardClient& shard = *shards_[placement.shard];
      // A dead shard's submit_raw answers locally with kUnavailable; the
      // failed_ counter distinguishes those from forwarded work.
      {
        std::lock_guard lock(mutex_);
        if (shard.alive()) {
          ++forwarded_;
        } else {
          ++failed_;
        }
      }
      connection.send_when_ready(request.session, request.request_id,
                                 shard.submit_raw(placement.remote, request.payload));
      return;
    }
    case fhe::MessageType::kStats: {
      fhe::Envelope reply;
      reply.type = fhe::MessageType::kStatsReply;
      reply.request_id = request.request_id;
      reply.payload = encode_fleet_stats(fleet_stats());
      connection.send_now(std::move(reply));
      return;
    }
    case fhe::MessageType::kShutdown: {
      fhe::Envelope reply;
      reply.type = fhe::MessageType::kShutdownAck;
      reply.request_id = request.request_id;
      connection.send_now(std::move(reply));
      if (on_shutdown_) on_shutdown_();
      return;
    }
    default: {
      fhe::Envelope reply;
      reply.type = fhe::MessageType::kError;
      reply.session = request.session;
      reply.request_id = request.request_id;
      reply.payload = fhe::encode_error_payload(
          fhe::WireErrorCode::kUnsupported,
          "message type " + std::to_string(static_cast<unsigned>(request.type)) +
              " is not served by the router");
      connection.send_now(std::move(reply));
      return;
    }
  }
}

}  // namespace hemul::net
