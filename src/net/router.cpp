#include "net/router.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/check.hpp"

namespace hemul::net {

namespace {

/// splitmix64 (same mixer as shard_of and the fault injector).
u64 mix64(u64 z) noexcept {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void sleep_ms(double ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

[[nodiscard]] bool serving(ShardState state) noexcept {
  return state == ShardState::kAlive || state == ShardState::kSuspect;
}

}  // namespace

Router::Router(std::vector<std::string> shard_addresses)
    : Router(std::move(shard_addresses), Options{}) {}

Router::Router(std::vector<std::string> shard_addresses, Options options)
    : options_(std::move(options)), on_shutdown_(options_.on_shutdown),
      shards_([&shard_addresses] {
        HEMUL_CHECK_MSG(!shard_addresses.empty(), "Router: no shards configured");
        std::vector<Shard> shards;
        shards.reserve(shard_addresses.size());
        for (std::string& address : shard_addresses) {
          Shard shard;
          shard.address = std::move(address);
          shard.client = std::make_shared<ShardClient>(shard.address);
          shards.push_back(std::move(shard));
        }
        return shards;
      }()),
      server_(options_.port, [this](const fhe::Envelope& request, ServerConnection& conn) {
        handle(request, conn);
      }) {
  if (options_.probe_interval_ms > 0) {
    prober_ = std::thread([this] { probe_loop(); });
  }
}

Router::~Router() { stop(); }

void Router::stop() {
  {
    std::lock_guard lock(probe_mutex_);
    stopping_ = true;
  }
  probe_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
  server_.stop();
}

std::size_t Router::shard_of(u64 global_session, std::size_t shard_count) noexcept {
  // splitmix64: deterministic, well-mixed, and stable across platforms --
  // the same session id always lands on the same shard.
  return static_cast<std::size_t>(mix64(global_session) % shard_count);
}

std::vector<std::size_t> Router::walk_order(u64 global) const {
  const std::size_t n = shards_.size();
  std::vector<std::size_t> order(n);
  const std::size_t first = shard_of(global, n);
  for (std::size_t k = 0; k < n; ++k) order[k] = (first + k) % n;
  return order;
}

double Router::backoff_ms(u64 key, unsigned attempt) const noexcept {
  const RetryPolicy& policy = options_.retry;
  const unsigned doublings = std::min(attempt > 0 ? attempt - 1 : 0u, 20u);
  const double capped =
      std::min(policy.base_backoff_ms * static_cast<double>(u64{1} << doublings),
               policy.max_backoff_ms);
  // Deterministic jitter in [0.5, 1.0): reproducible runs, but concurrent
  // retriers of different sessions never sleep in lockstep.
  const u64 h = mix64(policy.jitter_seed ^ key ^ attempt);
  return capped * (0.5 + 0.5 * static_cast<double>(h >> 11) * 0x1.0p-53);
}

void Router::mark_dead(std::size_t shard, const std::shared_ptr<ShardClient>& expected) {
  std::lock_guard lock(mutex_);
  if (shards_[shard].client == expected) shards_[shard].state = ShardState::kDead;
}

void Router::probe_loop() {
  std::unique_lock lock(probe_mutex_);
  while (!stopping_) {
    probe_cv_.wait_for(
        lock, std::chrono::duration<double, std::milli>(options_.probe_interval_ms),
        [&] { return stopping_; });
    if (stopping_) return;
    lock.unlock();
    probe_once();
    lock.lock();
  }
}

void Router::probe_once() {
  // A probe must complete even against a wedged-but-connected peer, so it
  // always carries a deadline: the configured control deadline, else one
  // probe period, else a second.
  const double probe_deadline =
      options_.shard_deadline_ms > 0
          ? options_.shard_deadline_ms
          : (options_.probe_interval_ms > 0 ? options_.probe_interval_ms : 1000.0);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::shared_ptr<ShardClient> client;
    ShardState state;
    std::string address;
    {
      std::lock_guard lock(mutex_);
      client = shards_[i].client;
      state = shards_[i].state;
      address = shards_[i].address;
    }
    switch (state) {
      case ShardState::kAlive:
      case ShardState::kSuspect: {
        if (!client->alive()) {
          mark_dead(i, client);
          break;
        }
        {
          std::lock_guard lock(mutex_);
          ++probes_sent_;
        }
        try {
          client->ping(probe_deadline);
          std::lock_guard lock(mutex_);
          if (shards_[i].client == client) shards_[i].state = ShardState::kAlive;
        } catch (const std::exception&) {
          // One failed probe demotes alive -> suspect (still serving); a
          // second -- or an outright dead connection -- kills it.
          std::lock_guard lock(mutex_);
          if (shards_[i].client != client) break;
          shards_[i].state = (state == ShardState::kAlive && client->alive())
                                 ? ShardState::kSuspect
                                 : ShardState::kDead;
        }
        break;
      }
      case ShardState::kDead: {
        {
          std::lock_guard lock(mutex_);
          if (shards_[i].state != ShardState::kDead) break;
          shards_[i].state = ShardState::kReconnecting;
        }
        try {
          auto fresh = std::make_shared<ShardClient>(address);
          std::lock_guard lock(mutex_);
          shards_[i].client = std::move(fresh);
          // A restarted shard lost its sessions: the incarnation bump makes
          // every placement pinned to the old connection re-home on next use.
          ++shards_[i].incarnation;
          shards_[i].state = ShardState::kAlive;
        } catch (const std::exception&) {
          std::lock_guard lock(mutex_);
          shards_[i].state = ShardState::kDead;  // redial next pass
        }
        break;
      }
      case ShardState::kReconnecting:
        break;  // a concurrent pass owns the redial
    }
  }
}

Router::Resolved Router::resolve_session(u64 global) {
  const auto try_resolve = [&]() -> std::optional<Resolved> {
    std::lock_guard lock(mutex_);
    const auto it = placements_.find(global);
    if (it == placements_.end()) {
      throw std::invalid_argument("unknown session " + std::to_string(global));
    }
    const Placement& placement = it->second;
    const Shard& shard = shards_[placement.shard];
    if (shard.incarnation == placement.incarnation && serving(shard.state) &&
        shard.client->alive()) {
      return Resolved{placement.shard, placement.remote, shard.client};
    }
    return std::nullopt;
  };
  if (std::optional<Resolved> resolved = try_resolve()) return *resolved;

  // The recorded owner is dead or was restarted without its sessions:
  // replay the session's creation on the next live shard in walk order.
  // DGHV keygen is seeded, so the replayed session carries the exact keys
  // of the original and answers bit-exactly. One re-homer at a time per
  // router -- concurrent requests of a dead shard's sessions must yield ONE
  // replay per session, not a herd of duplicate keygens.
  std::lock_guard rehome(rehome_mutex_);
  if (std::optional<Resolved> resolved = try_resolve()) return *resolved;

  fhe::Bytes payload;
  {
    std::lock_guard lock(mutex_);
    payload = placements_.at(global).create_payload;
  }
  for (const std::size_t i : walk_order(global)) {
    std::shared_ptr<ShardClient> client;
    u64 incarnation = 0;
    {
      std::lock_guard lock(mutex_);
      const Shard& shard = shards_[i];
      if (!serving(shard.state) || !shard.client->alive()) continue;
      client = shard.client;
      incarnation = shard.incarnation;
    }
    try {
      const fhe::Envelope remote = client->create_session_raw(payload);
      if (remote.type != fhe::MessageType::kSessionCreated) {
        continue;  // refused (draining, table full): try the next shard
      }
      std::lock_guard lock(mutex_);
      Placement& placement = placements_.at(global);
      placement.shard = i;
      placement.remote = remote.session;
      placement.incarnation = incarnation;
      ++sessions_rehomed_;
      return Resolved{i, placement.remote, client};
    } catch (const std::exception&) {
      mark_dead(i, client);
    }
  }
  throw NetError("no live shard to re-home session " + std::to_string(global) + " onto");
}

core::Response Router::forward_submit(u64 global, fhe::Bytes payload, u64 deadline_ms) {
  const auto started = std::chrono::steady_clock::now();
  const auto remaining = [&]() -> double {
    const double elapsed =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  started)
            .count();
    return static_cast<double>(deadline_ms) - elapsed;
  };
  for (unsigned attempt = 0;; ++attempt) {
    double budget = 0.0;  // 0 = no deadline on the forward
    if (deadline_ms != 0) {
      budget = remaining();
      if (budget <= 0) {
        core::Response response;
        response.status = core::ResponseStatus::kExpired;
        response.error = "deadline expired in the router";
        return response;
      }
    }

    Resolved place;
    try {
      place = resolve_session(global);
    } catch (const std::invalid_argument& e) {
      core::Response response;
      response.status = core::ResponseStatus::kBadRequest;
      response.error = e.what();
      return response;
    } catch (const std::exception& e) {
      core::Response response;
      response.status = core::ResponseStatus::kUnavailable;
      response.error = e.what();
      std::lock_guard lock(mutex_);
      ++failed_;
      return response;
    }

    if (!place.client->alive()) {
      // The connection died before anything was written: replaying is
      // unambiguously safe, and re-resolving will re-home the session.
      mark_dead(place.shard, place.client);
      if (attempt < options_.retry.max_retries) {
        std::lock_guard lock(mutex_);
        ++retries_;
        continue;
      }
      core::Response response;
      response.status = core::ResponseStatus::kUnavailable;
      response.error = "shard for session " + std::to_string(global) + " is down";
      std::lock_guard lock(mutex_);
      ++failed_;
      return response;
    }

    {
      std::lock_guard lock(mutex_);
      ++forwarded_;
    }
    core::Response response =
        place.client->submit_raw(place.remote, payload, budget).get();

    if (response.status == core::ResponseStatus::kUnavailable &&
        !place.client->alive()) {
      // Ambiguous loss: the frame may have reached the shard before the
      // connection died, so a replay could double-execute. Fail THIS
      // request once; marking the shard dead makes the tenant's next
      // request re-home cleanly.
      mark_dead(place.shard, place.client);
      std::lock_guard lock(mutex_);
      ++failed_;
      return response;
    }
    if (response.status == core::ResponseStatus::kOverloaded &&
        attempt < options_.retry.max_retries) {
      // Honor the shard's retry-after hint, floor it with our own backoff
      // curve, and never sleep past the caller's deadline.
      double pause = std::max(response.retry_after_ms, backoff_ms(global, attempt + 1));
      if (deadline_ms != 0) pause = std::min(pause, remaining());
      sleep_ms(pause);
      std::lock_guard lock(mutex_);
      ++retries_;
      continue;
    }
    return response;
  }
}

FleetStats Router::fleet_stats() {
  FleetStats fleet;
  struct Snapshot {
    std::string address;
    std::shared_ptr<ShardClient> client;
    ShardState state;
  };
  std::vector<Snapshot> snapshot;
  {
    std::lock_guard lock(mutex_);
    fleet.sessions_created = sessions_created_;
    fleet.forwarded = forwarded_;
    fleet.failed = failed_;
    fleet.sessions_rehomed = sessions_rehomed_;
    fleet.retries = retries_;
    fleet.probes_sent = probes_sent_;
    snapshot.reserve(shards_.size());
    for (const Shard& shard : shards_) {
      snapshot.push_back({shard.address, shard.client, shard.state});
    }
  }
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    ShardStats shard;
    shard.address = snapshot[i].address;
    shard.state = snapshot[i].state;
    shard.alive = serving(shard.state) && snapshot[i].client->alive();
    if (shard.alive) {
      try {
        FleetStats remote = snapshot[i].client->stats(options_.shard_deadline_ms);
        if (remote.shards.size() == 1) shard.service = std::move(remote.shards[0].service);
      } catch (const std::exception&) {
        shard.alive = false;  // died (or hung) between the check and the RPC
        if (!snapshot[i].client->alive()) {
          mark_dead(i, snapshot[i].client);
          shard.state = ShardState::kDead;
        }
      }
    }
    fleet.shards.push_back(std::move(shard));
  }
  return fleet;
}

void Router::handle_create(const fhe::Envelope& request, ServerConnection& connection) {
  u64 global = 0;
  {
    std::lock_guard lock(mutex_);
    global = next_session_++;
  }
  // Creates forward the caller's deadline, never the control-RPC bound:
  // keygen is legitimately seconds-scale at paper parameters.
  const double deadline = static_cast<double>(request.deadline_ms);
  std::string last_error = "no live shard to place the session on";
  for (unsigned attempt = 0; attempt <= options_.retry.max_retries; ++attempt) {
    if (attempt > 0) {
      sleep_ms(backoff_ms(global, attempt));
      std::lock_guard lock(mutex_);
      ++retries_;
    }
    std::shared_ptr<ShardClient> client;
    std::size_t index = 0;
    u64 incarnation = 0;
    for (const std::size_t i : walk_order(global)) {
      std::lock_guard lock(mutex_);
      const Shard& shard = shards_[i];
      if (serving(shard.state) && shard.client->alive()) {
        client = shard.client;
        index = i;
        incarnation = shard.incarnation;
        break;
      }
    }
    if (!client) continue;  // a probe pass may revive one before the retry

    fhe::Envelope remote;
    try {
      remote = client->create_session_raw(request.payload, deadline);
    } catch (const std::exception& e) {
      // Seeded keygen makes the replay idempotent even if the shard did the
      // work before the connection died: the orphan session just idles.
      mark_dead(index, client);
      last_error = e.what();
      continue;
    }
    if (remote.type == fhe::MessageType::kError) {
      // Re-raise toward OUR client with the shard's error payload (a
      // deliberate refusal -- draining, table full -- is not retried).
      fhe::Envelope reply;
      reply.type = fhe::MessageType::kError;
      reply.session = request.session;
      reply.request_id = request.request_id;
      reply.payload = remote.payload;
      connection.send_now(std::move(reply));
      return;
    }
    if (remote.type != fhe::MessageType::kSessionCreated) {
      // Protocol breach: answer our client cleanly and stop trusting the
      // shard, instead of throwing the whole client connection away.
      {
        std::lock_guard lock(mutex_);
        if (shards_[index].client == client &&
            shards_[index].state == ShardState::kAlive) {
          shards_[index].state = ShardState::kSuspect;
        }
      }
      fhe::Envelope reply;
      reply.type = fhe::MessageType::kError;
      reply.session = request.session;
      reply.request_id = request.request_id;
      reply.payload = fhe::encode_error_payload(
          fhe::WireErrorCode::kInternal,
          "shard answered create_session with message type " +
              std::to_string(static_cast<unsigned>(remote.type)));
      connection.send_now(std::move(reply));
      return;
    }
    {
      std::lock_guard lock(mutex_);
      Placement placement;
      placement.shard = index;
      placement.remote = remote.session;
      placement.incarnation = incarnation;
      placement.create_payload = request.payload;  // the failover replay seed
      placements_[global] = std::move(placement);
      ++sessions_created_;
    }
    fhe::Envelope reply;
    reply.type = fhe::MessageType::kSessionCreated;
    reply.session = global;
    reply.request_id = request.request_id;
    reply.payload = remote.payload;
    connection.send_now(std::move(reply));
    return;
  }
  fhe::Envelope reply;
  reply.type = fhe::MessageType::kError;
  reply.session = request.session;
  reply.request_id = request.request_id;
  reply.payload = fhe::encode_error_payload(
      fhe::WireErrorCode::kInternal, "create_session failed after retries: " + last_error);
  connection.send_now(std::move(reply));
}

void Router::handle(const fhe::Envelope& request, ServerConnection& connection) {
  switch (request.type) {
    case fhe::MessageType::kCreateSession:
      handle_create(request, connection);
      return;
    case fhe::MessageType::kSubmit: {
      {
        // Unknown sessions fail synchronously (kUnknownSession envelope via
        // the server's exception mapping); placements are never erased, so
        // the async forward cannot race this check into a false positive.
        std::lock_guard lock(mutex_);
        if (placements_.find(request.session) == placements_.end()) {
          throw std::invalid_argument("unknown session " +
                                      std::to_string(request.session));
        }
      }
      // The forward runs on its own thread: it may block on retry backoff
      // or a failover replay, and the reader must stay free to accept more
      // requests meanwhile. The writer joins it through the future.
      connection.send_when_ready(
          request.session, request.request_id,
          std::async(std::launch::async,
                     [this, session = request.session, payload = request.payload,
                      deadline = request.deadline_ms]() mutable {
                       return forward_submit(session, std::move(payload), deadline);
                     }));
      return;
    }
    case fhe::MessageType::kPing: {
      fhe::Envelope reply;
      reply.type = fhe::MessageType::kPong;
      reply.request_id = request.request_id;
      connection.send_now(std::move(reply));
      return;
    }
    case fhe::MessageType::kStats: {
      fhe::Envelope reply;
      reply.type = fhe::MessageType::kStatsReply;
      reply.request_id = request.request_id;
      reply.payload = encode_fleet_stats(fleet_stats());
      connection.send_now(std::move(reply));
      return;
    }
    case fhe::MessageType::kShutdown: {
      fhe::Envelope reply;
      reply.type = fhe::MessageType::kShutdownAck;
      reply.request_id = request.request_id;
      connection.send_now(std::move(reply));
      if (on_shutdown_) on_shutdown_();
      return;
    }
    default: {
      fhe::Envelope reply;
      reply.type = fhe::MessageType::kError;
      reply.session = request.session;
      reply.request_id = request.request_id;
      reply.payload = fhe::encode_error_payload(
          fhe::WireErrorCode::kUnsupported,
          "message type " + std::to_string(static_cast<unsigned>(request.type)) +
              " is not served by the router");
      connection.send_now(std::move(reply));
      return;
    }
  }
}

}  // namespace hemul::net
