#include "net/server.hpp"

#include <stdexcept>
#include <utility>

namespace hemul::net {

// --- ServerConnection ------------------------------------------------------

ServerConnection::ServerConnection(Socket socket) : socket_(std::move(socket)) {
  writer_ = std::thread([this] { writer_loop(); });
}

ServerConnection::~ServerConnection() { finish(); }

void ServerConnection::send_now(fhe::Envelope envelope) {
  {
    std::lock_guard lock(mutex_);
    Outgoing out;
    out.ready = std::move(envelope);
    queue_.push_back(std::move(out));
  }
  cv_.notify_one();
}

void ServerConnection::send_when_ready(u64 session, u64 request_id,
                                       std::future<core::Response> response) {
  {
    std::lock_guard lock(mutex_);
    Outgoing out;
    out.has_future = true;
    out.session = session;
    out.request_id = request_id;
    out.response = std::move(response);
    queue_.push_back(std::move(out));
  }
  cv_.notify_one();
}

void ServerConnection::writer_loop() {
  for (;;) {
    Outgoing out;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return done_ || !queue_.empty(); });
      if (queue_.empty()) return;  // done_ and drained
      out = std::move(queue_.front());
      queue_.pop_front();
    }
    fhe::Envelope envelope;
    if (out.has_future) {
      // Blocking on the future here keeps the reader free; the service
      // always completes its futures (the destructor drains), so this
      // cannot wedge shutdown.
      const core::Response response = out.response.get();
      envelope.type = fhe::MessageType::kResponse;
      envelope.session = out.session;
      envelope.request_id = out.request_id;
      envelope.payload = core::encode_response(response);
    } else {
      envelope = std::move(out.ready);
    }
    bool skip = false;
    {
      std::lock_guard lock(mutex_);
      skip = write_failed_;
    }
    if (skip) continue;  // peer is gone; keep draining futures quietly
    try {
      write_envelope(socket_, envelope);
    } catch (const NetError&) {
      // The peer vanished. Keep consuming the queue so pending service
      // futures are still waited on; nothing more reaches the wire.
      std::lock_guard lock(mutex_);
      write_failed_ = true;
    }
  }
}

void ServerConnection::finish() {
  {
    std::lock_guard lock(mutex_);
    if (done_) {
      if (!writer_.joinable()) return;
    }
    done_ = true;
  }
  cv_.notify_all();
  if (writer_.joinable()) writer_.join();
}

// --- EnvelopeServer --------------------------------------------------------

EnvelopeServer::EnvelopeServer(int port, Handler handler)
    : listener_(port), handler_(std::move(handler)) {
  acceptor_ = std::thread([this] { accept_loop(); });
}

EnvelopeServer::~EnvelopeServer() { stop(); }

void EnvelopeServer::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  listener_.close();  // wakes the acceptor
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::unique_ptr<ServerConnection>> connections;
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(mutex_);
    connections.swap(connections_);
    threads.swap(threads_);
  }
  for (auto& connection : connections) connection->socket_.shutdown_both();
  for (std::thread& thread : threads) thread.join();
  // Connections destruct here, joining their writers after the drain.
}

void EnvelopeServer::accept_loop() {
  for (;;) {
    Socket socket;
    try {
      socket = listener_.accept_connection();
    } catch (const NetError&) {
      return;  // listener closed (stop()) or unrecoverable accept error
    }
    auto connection = std::make_unique<ServerConnection>(std::move(socket));
    ServerConnection* raw = connection.get();
    std::lock_guard lock(mutex_);
    if (stopping_) return;  // raced stop(); drop the connection
    connections_.push_back(std::move(connection));
    threads_.emplace_back([this, raw] { serve(*raw); });
  }
}

void EnvelopeServer::serve(ServerConnection& connection) {
  for (;;) {
    fhe::Envelope request;
    try {
      request = read_envelope(connection.socket_);
    } catch (const NetError&) {
      break;  // peer closed or stop() shut the socket down
    } catch (const fhe::SerializeError& e) {
      // Bytes that are not a valid envelope: answer once, then drop the
      // connection -- framing is lost, nothing later can be trusted.
      fhe::Envelope reply;
      reply.type = fhe::MessageType::kError;
      reply.payload =
          fhe::encode_error_payload(fhe::WireErrorCode::kBadRequestBytes, e.what());
      connection.send_now(std::move(reply));
      break;
    }
    try {
      handler_(request, connection);
    } catch (const std::exception& e) {
      fhe::WireErrorCode code = fhe::WireErrorCode::kInternal;
      if (dynamic_cast<const core::ShuttingDown*>(&e) != nullptr) {
        code = fhe::WireErrorCode::kShuttingDown;
      } else if (dynamic_cast<const fhe::SerializeError*>(&e) != nullptr) {
        code = fhe::WireErrorCode::kBadRequestBytes;
      } else if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr) {
        code = fhe::WireErrorCode::kUnknownSession;
      }
      fhe::Envelope reply;
      reply.type = fhe::MessageType::kError;
      reply.session = request.session;
      reply.request_id = request.request_id;
      reply.payload = fhe::encode_error_payload(code, e.what());
      connection.send_now(std::move(reply));
    }
  }
  connection.finish();
}

// --- ShardServer -----------------------------------------------------------

ShardServer::ShardServer(core::Service& service) : ShardServer(service, Options{}) {}

ShardServer::ShardServer(core::Service& service, Options options)
    : service_(service), on_shutdown_(std::move(options.on_shutdown)),
      server_(options.port, [this](const fhe::Envelope& request, ServerConnection& conn) {
        handle(request, conn);
      }) {}

void ShardServer::handle(const fhe::Envelope& request, ServerConnection& connection) {
  switch (request.type) {
    case fhe::MessageType::kCreateSession: {
      fhe::ByteReader reader(request.payload);
      const fhe::DghvParams params = fhe::decode_params(reader);
      const u64 seed = reader.get_u64();
      if (!reader.at_end()) {
        throw fhe::SerializeError("trailing bytes after create-session payload");
      }
      const core::SessionId id = service_.create_session(params, seed);
      fhe::Envelope reply;
      reply.type = fhe::MessageType::kSessionCreated;
      reply.session = id;
      reply.request_id = request.request_id;
      reply.payload = service_.public_key_bytes(id);
      const fhe::Bytes secret = service_.secret_key_bytes(id);
      reply.payload.insert(reply.payload.end(), secret.begin(), secret.end());
      connection.send_now(std::move(reply));
      return;
    }
    case fhe::MessageType::kSubmit: {
      core::Request decoded = core::decode_request(request.payload);
      // The envelope's deadline is this request's remaining budget: the
      // service drops it at admission once the budget has elapsed.
      std::future<core::Response> future =
          service_.submit(request.session, std::move(decoded),
                          static_cast<double>(request.deadline_ms));
      connection.send_when_ready(request.session, request.request_id, std::move(future));
      return;
    }
    case fhe::MessageType::kStats: {
      FleetStats fleet;
      ShardStats self;
      self.alive = true;
      self.service = service_.stats();
      fleet.shards.push_back(std::move(self));
      fhe::Envelope reply;
      reply.type = fhe::MessageType::kStatsReply;
      reply.request_id = request.request_id;
      reply.payload = encode_fleet_stats(fleet);
      connection.send_now(std::move(reply));
      return;
    }
    case fhe::MessageType::kPing: {
      // Liveness only: answered from the reader thread, no service touch,
      // so a wedged scheduler still pongs -- probes measure the transport
      // and the process, not queue depth.
      fhe::Envelope reply;
      reply.type = fhe::MessageType::kPong;
      reply.request_id = request.request_id;
      connection.send_now(std::move(reply));
      return;
    }
    case fhe::MessageType::kShutdown: {
      service_.stop_accepting();
      fhe::Envelope reply;
      reply.type = fhe::MessageType::kShutdownAck;
      reply.request_id = request.request_id;
      connection.send_now(std::move(reply));
      if (on_shutdown_) on_shutdown_();
      return;
    }
    default: {
      fhe::Envelope reply;
      reply.type = fhe::MessageType::kError;
      reply.session = request.session;
      reply.request_id = request.request_id;
      reply.payload = fhe::encode_error_payload(
          fhe::WireErrorCode::kUnsupported,
          "message type " + std::to_string(static_cast<unsigned>(request.type)) +
              " is not served by a shard");
      connection.send_now(std::move(reply));
      return;
    }
  }
}

}  // namespace hemul::net
