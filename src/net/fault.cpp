#include "net/fault.hpp"

#include <mutex>
#include <stdexcept>
#include <utility>

namespace hemul::net {

namespace {

/// splitmix64 -- the same mixer the router's placement hash uses:
/// deterministic, well-distributed and stable across platforms.
u64 mix64(u64 z) noexcept {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) from the top 53 bits of a hash.
double unit(u64 h) noexcept { return static_cast<double>(h >> 11) * 0x1.0p-53; }

[[noreturn]] void bad_plan(const std::string& why) {
  throw std::invalid_argument("fault plan: " + why);
}

}  // namespace

std::string_view fault_action_name(FaultAction action) noexcept {
  switch (action) {
    case FaultAction::kNone: return "none";
    case FaultAction::kDrop: return "drop";
    case FaultAction::kDelay: return "delay";
    case FaultAction::kTruncate: return "truncate";
    case FaultAction::kCorrupt: return "corrupt";
    case FaultAction::kRefuse: return "refuse";
  }
  return "?";
}

bool FaultPlan::empty() const noexcept {
  return drop == 0.0 && delay == 0.0 && truncate == 0.0 && corrupt == 0.0 &&
         refuse == 0.0;
}

void FaultPlan::validate() const {
  for (const double p : {drop, delay, truncate, corrupt, refuse}) {
    if (!(p >= 0.0 && p <= 1.0)) bad_plan("probabilities must lie in [0, 1]");
  }
  if (!(delay_ms >= 0.0)) bad_plan("delay milliseconds must be non-negative");
  if (drop + delay + truncate + corrupt > 1.0) {
    bad_plan("drop+delay+truncate+corrupt must not exceed 1");
  }
}

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t at = 0;
  while (at < spec.size()) {
    std::size_t comma = spec.find(',', at);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view item = spec.substr(at, comma - at);
    at = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      bad_plan("expected key=value, got \"" + std::string(item) + "\"");
    }
    const std::string_view key = item.substr(0, eq);
    std::string value(item.substr(eq + 1));
    try {
      if (key == "seed") {
        plan.seed = std::stoull(value);
      } else if (key == "drop") {
        plan.drop = std::stod(value);
      } else if (key == "delay") {
        // "delay=P:MS" sets both the probability and the stall length.
        const std::size_t colon = value.find(':');
        if (colon != std::string::npos) {
          plan.delay_ms = std::stod(value.substr(colon + 1));
          value.resize(colon);
        }
        plan.delay = std::stod(value);
      } else if (key == "truncate") {
        plan.truncate = std::stod(value);
      } else if (key == "corrupt") {
        plan.corrupt = std::stod(value);
      } else if (key == "refuse") {
        plan.refuse = std::stod(value);
      } else {
        bad_plan("unknown key \"" + std::string(key) + "\"");
      }
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception&) {
      bad_plan("malformed value in \"" + std::string(item) + "\"");
    }
  }
  plan.validate();
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(plan) { plan_.validate(); }

FaultAction FaultInjector::decide(FaultDirection direction, u64 index) const noexcept {
  const u64 h = mix64(plan_.seed ^ mix64((static_cast<u64>(direction) << 56) | index));
  const double u = unit(h);
  if (direction == FaultDirection::kConnect) {
    return u < plan_.refuse ? FaultAction::kRefuse : FaultAction::kNone;
  }
  double edge = plan_.drop;
  if (u < edge) return FaultAction::kDrop;
  edge += plan_.delay;
  if (u < edge) return FaultAction::kDelay;
  if (direction == FaultDirection::kOutbound) {
    // Truncation needs control of the sending side; the inbound hook can
    // only see frames that arrived whole.
    edge += plan_.truncate;
    if (u < edge) return FaultAction::kTruncate;
  }
  edge += plan_.corrupt;
  if (u < edge) return FaultAction::kCorrupt;
  return FaultAction::kNone;
}

std::size_t FaultInjector::corrupt_offset(u64 index, std::size_t size) const noexcept {
  if (size == 0) return 0;
  return static_cast<std::size_t>(mix64(plan_.seed ^ ~index) % size);
}

void FaultInjector::record(FaultAction action) noexcept {
  counts_[static_cast<std::size_t>(action)].fetch_add(1, std::memory_order_relaxed);
}

u64 FaultInjector::injected() const noexcept {
  u64 total = 0;
  for (std::size_t i = 1; i < counts_.size(); ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  return total;
}

std::string FaultInjector::summary() const {
  std::string out = "injected";
  for (std::size_t i = 1; i < counts_.size(); ++i) {
    out += " " + std::string(fault_action_name(static_cast<FaultAction>(i))) + "=" +
           std::to_string(counts_[i].load(std::memory_order_relaxed));
  }
  return out;
}

namespace {

std::mutex g_injector_mutex;
std::shared_ptr<FaultInjector> g_injector;
std::atomic<bool> g_injector_installed{false};

}  // namespace

void install_fault_injector(std::shared_ptr<FaultInjector> injector) {
  std::lock_guard lock(g_injector_mutex);
  g_injector = std::move(injector);
  g_injector_installed.store(g_injector != nullptr, std::memory_order_release);
}

std::shared_ptr<FaultInjector> fault_injector() {
  // Fast path: production processes never install one, so the hot send/recv
  // paths pay one atomic load and no lock.
  if (!g_injector_installed.load(std::memory_order_acquire)) return nullptr;
  std::lock_guard lock(g_injector_mutex);
  return g_injector;
}

}  // namespace hemul::net
