#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <string>
#include <string_view>

#include "util/uint128.hpp"

namespace hemul::net {

/// What a fault plan does to one message (or one connect attempt).
enum class FaultAction : u8 {
  kNone = 0,
  kDrop,      ///< outbound: swallow the frame; inbound: read it and discard
  kDelay,     ///< sleep plan.delay_ms before the frame moves
  kTruncate,  ///< outbound only: send a prefix, then kill the socket
  kCorrupt,   ///< flip one payload byte (framing survives; decode must cope)
  kRefuse,    ///< connect only: fail the attempt with NetError
};

/// Which hook point is consulting the plan. Outbound/inbound index envelope
/// writes/reads per socket; kConnect indexes connect_to() attempts.
enum class FaultDirection : u8 { kOutbound = 0, kInbound = 1, kConnect = 2 };

[[nodiscard]] std::string_view fault_action_name(FaultAction action) noexcept;

/// A seeded chaos plan: per-action probabilities resolved by hashing
/// (seed, direction, message index), so the same seed against the same
/// message sequence reproduces the same faults on every run -- drills and
/// chaos tests are replayable, never flaky-by-randomness.
struct FaultPlan {
  u64 seed = 0;
  double drop = 0.0;
  double delay = 0.0;
  double truncate = 0.0;
  double corrupt = 0.0;
  double refuse = 0.0;
  double delay_ms = 5.0;  ///< how long one kDelay stalls the frame

  [[nodiscard]] bool empty() const noexcept;
  /// Throws std::invalid_argument on probabilities outside [0, 1] or a
  /// negative delay.
  void validate() const;

  /// Parses the --fault-plan syntax: comma-separated key=value pairs, e.g.
  /// "seed=42,drop=0.05,delay=0.1:2,corrupt=0.02" (delay takes an optional
  /// ":milliseconds" suffix). Throws std::invalid_argument on bad specs.
  static FaultPlan parse(std::string_view spec);
};

/// Decides and books injected faults. decide() is a pure function of the
/// plan and (direction, index) -- all the mutable state is the counters.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  [[nodiscard]] FaultAction decide(FaultDirection direction, u64 index) const noexcept;

  /// Deterministic byte offset (< size) at which kCorrupt flips a byte.
  [[nodiscard]] std::size_t corrupt_offset(u64 index, std::size_t size) const noexcept;

  [[nodiscard]] u64 next_connect_index() noexcept { return connect_index_++; }

  void record(FaultAction action) noexcept;
  [[nodiscard]] u64 injected() const noexcept;  ///< total non-kNone actions
  [[nodiscard]] std::string summary() const;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  FaultPlan plan_;
  std::atomic<u64> connect_index_{0};
  std::array<std::atomic<u64>, 6> counts_{};
};

/// Process-global injector the socket/frame layer consults (none installed
/// by default, so production paths pay one relaxed load). Installing an
/// empty pointer disables injection again.
void install_fault_injector(std::shared_ptr<FaultInjector> injector);
[[nodiscard]] std::shared_ptr<FaultInjector> fault_injector();

}  // namespace hemul::net
