#pragma once

#include <string>
#include <vector>

#include "fhe/serialize.hpp"
#include "net/socket.hpp"
#include "service/request.hpp"

namespace hemul::net {

/// Hard upper bound on one envelope frame (header + payload). A hostile or
/// corrupted length prefix is rejected before any allocation; legitimate
/// frames (key material at paper parameters included) stay far below it.
inline constexpr u64 kMaxEnvelopeBytes = u64{1} << 28;  // 256 MiB

/// Blocking-reads one whole kEnvelope frame off the socket: header first
/// (validated magic/version/tag, length bounded by kMaxEnvelopeBytes), then
/// the payload, then a full fhe::decode_envelope pass. Throws NetError on
/// connection loss and fhe::SerializeError on malformed bytes.
[[nodiscard]] fhe::Envelope read_envelope(Socket& socket);

/// Writes one envelope as a single send (the frame is self-delimiting, so
/// writers never need length negotiation).
void write_envelope(Socket& socket, const fhe::Envelope& envelope);

/// One shard's slice of a fleet stats reply.
struct ShardStats {
  std::string address;  ///< host:port the router dialed
  bool alive = true;    ///< false once the router saw the connection die
  core::ServiceStats service;
};

/// Aggregated fleet statistics: the payload of a kStatsReply envelope.
/// Shard-level ServiceStats are carried verbatim so operators can see skew,
/// plus router-side forwarding counters no shard can know.
struct FleetStats {
  u64 sessions_created = 0;  ///< sessions the router has placed on shards
  u64 forwarded = 0;         ///< requests relayed to a shard
  u64 failed = 0;            ///< requests failed by connection loss
  std::vector<ShardStats> shards;

  /// Sums the per-shard ServiceStats (lane detail dropped; scalar counters
  /// and queue gauges added field by field).
  [[nodiscard]] core::ServiceStats aggregate() const;
};

/// FleetStats wire codec (the bytes inside a kStatsReply envelope payload).
[[nodiscard]] fhe::Bytes encode_fleet_stats(const FleetStats& stats);
[[nodiscard]] FleetStats decode_fleet_stats(std::span<const u8> payload);

}  // namespace hemul::net
