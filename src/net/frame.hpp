#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "fhe/serialize.hpp"
#include "net/socket.hpp"
#include "service/request.hpp"

namespace hemul::net {

/// Hard upper bound on one envelope frame (header + payload). A hostile or
/// corrupted length prefix is rejected before any allocation; legitimate
/// frames (key material at paper parameters included) stay far below it.
inline constexpr u64 kMaxEnvelopeBytes = u64{1} << 28;  // 256 MiB

/// Blocking-reads one whole kEnvelope frame off the socket: header first
/// (validated magic/version/tag, length bounded by kMaxEnvelopeBytes), then
/// the payload, then a full fhe::decode_envelope pass. Throws NetError on
/// connection loss and fhe::SerializeError on malformed bytes. An installed
/// net::FaultInjector may discard, delay or corrupt frames here.
[[nodiscard]] fhe::Envelope read_envelope(Socket& socket);

/// Writes one envelope as a single send (the frame is self-delimiting, so
/// writers never need length negotiation). An installed net::FaultInjector
/// may swallow, delay, truncate or corrupt the frame here.
void write_envelope(Socket& socket, const fhe::Envelope& envelope);

/// The router's health view of one shard, driven by the probe loop:
/// kAlive -> kSuspect after one failed probe, -> kDead after a second (or
/// instantly on connection loss), -> kReconnecting while a redial is in
/// flight, -> kAlive once it lands. Suspect shards still serve; dead and
/// reconnecting shards get their sessions re-homed.
enum class ShardState : u8 { kAlive = 0, kSuspect = 1, kDead = 2, kReconnecting = 3 };

[[nodiscard]] std::string_view shard_state_name(ShardState state) noexcept;

/// One shard's slice of a fleet stats reply.
struct ShardStats {
  std::string address;  ///< host:port the router dialed
  bool alive = true;    ///< still serving (state is kAlive or kSuspect)
  ShardState state = ShardState::kAlive;
  core::ServiceStats service;
};

/// Aggregated fleet statistics: the payload of a kStatsReply envelope.
/// Shard-level ServiceStats are carried verbatim so operators can see skew,
/// plus router-side forwarding counters no shard can know.
struct FleetStats {
  u64 sessions_created = 0;   ///< sessions the router has placed on shards
  u64 forwarded = 0;          ///< requests relayed to a shard
  u64 failed = 0;             ///< requests failed by connection loss
  u64 sessions_rehomed = 0;   ///< failover replays of (params, seed) onto a
                              ///< live shard after the owner died
  u64 retries = 0;            ///< safe-to-retry attempts the router replayed
  u64 probes_sent = 0;        ///< kPing health probes issued
  std::vector<ShardStats> shards;

  /// Sums the per-shard ServiceStats (lane detail dropped; scalar counters
  /// and queue gauges added field by field).
  [[nodiscard]] core::ServiceStats aggregate() const;
};

/// FleetStats wire codec (the bytes inside a kStatsReply envelope payload).
[[nodiscard]] fhe::Bytes encode_fleet_stats(const FleetStats& stats);
[[nodiscard]] FleetStats decode_fleet_stats(std::span<const u8> payload);

}  // namespace hemul::net
