#pragma once

#include <atomic>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/uint128.hpp"

namespace hemul::net {

/// Thrown on transport-level failures: connect/bind errors, peers closing
/// mid-frame, short reads. Distinct from fhe::SerializeError (malformed
/// bytes that arrived intact) so callers can tell a dead connection from a
/// hostile one.
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// RAII wrapper of one connected TCP socket. Blocking I/O only -- the fleet
/// layer uses one reader thread per connection instead of readiness
/// polling, which keeps the protocol code linear. Writes use MSG_NOSIGNAL,
/// so a vanished peer is a NetError, never a SIGPIPE.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept
      : fd_(std::exchange(other.fd_, -1)),
        fault_out_(other.fault_out_),
        fault_in_(other.fault_in_) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to an IPv4 host:port (numeric or "localhost"). Throws
  /// NetError on failure.
  static Socket connect_to(const std::string& host, int port);

  /// Writes the whole buffer or throws NetError.
  void send_all(std::span<const u8> data);

  /// Reads exactly `data.size()` bytes or throws NetError (a clean remote
  /// close before the first byte throws with "closed" in the message).
  void recv_exact(std::span<u8> data);

  /// Half-closes the write side (signals end-of-requests to the peer) and
  /// unblocks any reader blocked on this socket.
  void shutdown_both() noexcept;

  void close() noexcept;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Per-connection message index for net::FaultInjector: frames written
  /// to / read from this socket are numbered independently per direction,
  /// so a seeded fault plan selects the same messages on every run.
  [[nodiscard]] u64 next_fault_index(bool outbound) noexcept {
    return outbound ? fault_out_++ : fault_in_++;
  }

 private:
  int fd_ = -1;
  u64 fault_out_ = 0;  ///< frames written so far (fault-plan index space)
  u64 fault_in_ = 0;   ///< frames read so far
};

/// RAII listening socket bound to 127.0.0.1. Port 0 asks the kernel for an
/// ephemeral port; port() reports the one actually bound (daemons print it
/// so a parent process can discover where to connect).
class Listener {
 public:
  explicit Listener(int port);
  ~Listener() { close(); }

  Listener(Listener&& other) noexcept
      : fd_(other.fd_.exchange(-1)), port_(other.port_) {}
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  Listener& operator=(Listener&&) = delete;

  /// Blocks for the next connection. Throws NetError once close() has been
  /// called from another thread (the accept loop's shutdown path).
  [[nodiscard]] Socket accept_connection();

  void close() noexcept;

  [[nodiscard]] int port() const noexcept { return port_; }
  [[nodiscard]] bool valid() const noexcept { return fd_.load(std::memory_order_relaxed) >= 0; }

 private:
  // Atomic because close() is the cross-thread shutdown path: it races by
  // design with an accept_connection() blocked on another thread.
  std::atomic<int> fd_{-1};
  int port_ = 0;
};

/// Splits "host:port" (throws NetError on a malformed address).
[[nodiscard]] std::pair<std::string, int> parse_host_port(const std::string& address);

}  // namespace hemul::net
