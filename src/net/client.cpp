#include "net/client.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

namespace hemul::net {

namespace {

/// A kError envelope answering a submit becomes a Response status, so the
/// caller-facing contract ("the future always yields a Response") holds.
core::Response error_to_response(const fhe::Envelope& envelope) {
  const auto [code, message] = fhe::decode_error_payload(envelope.payload);
  core::Response response;
  response.error = message;
  switch (code) {
    case fhe::WireErrorCode::kBadRequestBytes:
    case fhe::WireErrorCode::kUnknownSession:
      response.status = core::ResponseStatus::kBadRequest;
      break;
    case fhe::WireErrorCode::kShuttingDown:
      response.status = core::ResponseStatus::kUnavailable;
      break;
    case fhe::WireErrorCode::kUnsupported:
    case fhe::WireErrorCode::kInternal:
      response.status = core::ResponseStatus::kInternalError;
      break;
  }
  return response;
}

core::Response unavailable_response(const std::string& why) {
  core::Response response;
  response.status = core::ResponseStatus::kUnavailable;
  response.error = why;
  return response;
}

core::Response timeout_response(const std::string& why) {
  core::Response response;
  response.status = core::ResponseStatus::kTimeout;
  response.error = why;
  return response;
}

/// The wire carries the budget as whole milliseconds; anything positive
/// must stay nonzero after rounding (0 means "no deadline" on the wire).
u64 wire_deadline(double deadline_ms) noexcept {
  if (deadline_ms <= 0) return 0;
  return std::max<u64>(1, static_cast<u64>(std::llround(deadline_ms)));
}

}  // namespace

ShardClient::ShardClient(std::string address)
    : ShardClient(std::move(address), Options{}) {}

ShardClient::ShardClient(std::string address, Options options)
    : address_(std::move(address)), options_(options) {
  const auto [host, port] = parse_host_port(address_);
  socket_ = Socket::connect_to(host, port);
  timer_ = std::thread([this] { timer_loop(); });
  reader_ = std::thread([this] { reader_loop(); });
}

ShardClient::~ShardClient() {
  close();
  {
    std::lock_guard lock(mutex_);
    closing_ = true;
  }
  timer_cv_.notify_all();
  if (reader_.joinable()) reader_.join();
  if (timer_.joinable()) timer_.join();
}

void ShardClient::close() {
  socket_.shutdown_both();  // unblocks the reader, which fails the pending
}

bool ShardClient::alive() const {
  std::lock_guard lock(mutex_);
  return alive_;
}

void ShardClient::reader_loop() {
  for (;;) {
    fhe::Envelope envelope;
    try {
      envelope = read_envelope(socket_);
    } catch (const std::exception& e) {
      fail_all_pending(std::string("connection to ") + address_ + " lost: " + e.what());
      return;
    }
    PendingCall pending;
    bool found = false;
    {
      std::lock_guard lock(mutex_);
      const auto it = pending_.find(envelope.request_id);
      if (it != pending_.end()) {
        pending = std::move(it->second);
        pending_.erase(it);
        found = true;
      }
    }
    if (!found) continue;  // stale reply (e.g. after a local timeout path)
    if (pending.is_submit) {
      core::Response response;
      try {
        if (envelope.type == fhe::MessageType::kError) {
          response = error_to_response(envelope);
        } else if (envelope.type == fhe::MessageType::kResponse) {
          response = core::decode_response(envelope.payload);
        } else {
          response.status = core::ResponseStatus::kInternalError;
          response.error = "peer answered a submit with message type " +
                           std::to_string(static_cast<unsigned>(envelope.type));
        }
      } catch (const std::exception& e) {
        response = core::Response{};
        response.status = core::ResponseStatus::kInternalError;
        response.error = std::string("malformed response frame: ") + e.what();
      }
      pending.response.set_value(std::move(response));
    } else {
      pending.control.set_value(std::move(envelope));
    }
  }
}

void ShardClient::timer_loop() {
  using clock = std::chrono::steady_clock;
  std::unique_lock lock(mutex_);
  for (;;) {
    if (closing_) return;
    auto next = clock::time_point::max();
    for (const auto& [id, pending] : pending_) {
      if (pending.has_deadline && pending.deadline < next) next = pending.deadline;
    }
    if (next == clock::time_point::max()) {
      timer_cv_.wait(lock);
    } else {
      timer_cv_.wait_until(lock, next);
    }
    if (closing_) return;

    const auto now = clock::now();
    std::vector<PendingCall> expired;
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.has_deadline && it->second.deadline <= now) {
        expired.push_back(std::move(it->second));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    if (expired.empty()) continue;
    lock.unlock();
    // Later replies to these ids hit the reader's stale-reply path.
    const std::string why = "deadline expired waiting on " + address_;
    for (PendingCall& pending : expired) {
      if (pending.is_submit) {
        pending.response.set_value(timeout_response(why));
      } else {
        pending.control.set_exception(std::make_exception_ptr(TimeoutError(why)));
      }
    }
    lock.lock();
  }
}

void ShardClient::fail_all_pending(const std::string& why) {
  std::unordered_map<u64, PendingCall> orphaned;
  {
    std::lock_guard lock(mutex_);
    alive_ = false;
    orphaned.swap(pending_);
  }
  for (auto& [id, pending] : orphaned) {
    if (pending.is_submit) {
      pending.response.set_value(unavailable_response(why));
    } else {
      pending.control.set_exception(std::make_exception_ptr(NetError(why)));
    }
  }
}

fhe::Envelope ShardClient::call(fhe::MessageType type, u64 session, fhe::Bytes payload,
                                double deadline_ms) {
  const double budget = effective_deadline(deadline_ms);
  fhe::Envelope request;
  request.type = type;
  request.session = session;
  request.payload = std::move(payload);
  request.deadline_ms = wire_deadline(budget);

  std::future<fhe::Envelope> future;
  {
    std::lock_guard lock(mutex_);
    if (!alive_) throw NetError("connection to " + address_ + " is down");
    request.request_id = next_request_++;
    PendingCall& pending = pending_[request.request_id];
    if (budget > 0) {
      pending.has_deadline = true;
      pending.deadline = std::chrono::steady_clock::now() +
                         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                             std::chrono::duration<double, std::milli>(budget));
    }
    future = pending.control.get_future();
  }
  if (budget > 0) timer_cv_.notify_all();
  try {
    std::lock_guard lock(write_mutex_);
    write_envelope(socket_, request);
  } catch (const std::exception&) {
    // The reader will notice the dead socket too; make sure THIS call's
    // promise fails even if the reader already swept the table.
    std::lock_guard lock(mutex_);
    pending_.erase(request.request_id);
    throw;
  }
  return future.get();
}

fhe::Envelope ShardClient::create_session_raw(fhe::Bytes payload, double deadline_ms) {
  return call(fhe::MessageType::kCreateSession, 0, std::move(payload), deadline_ms);
}

ShardClient::SessionKeys ShardClient::create_session(const fhe::DghvParams& params,
                                                     u64 seed, double deadline_ms) {
  fhe::Bytes payload = fhe::encode_params(params);
  {
    fhe::ByteWriter w;
    w.put_u64(seed);
    const fhe::Bytes seed_bytes = w.take();
    payload.insert(payload.end(), seed_bytes.begin(), seed_bytes.end());
  }
  const fhe::Envelope reply = create_session_raw(std::move(payload), deadline_ms);
  if (reply.type == fhe::MessageType::kError) {
    const auto [code, message] = fhe::decode_error_payload(reply.payload);
    if (code == fhe::WireErrorCode::kShuttingDown) throw core::ShuttingDown();
    throw std::runtime_error("create_session failed: " + message);
  }
  if (reply.type != fhe::MessageType::kSessionCreated) {
    throw NetError("unexpected reply to create_session");
  }
  SessionKeys keys;
  keys.session = reply.session;
  fhe::ByteReader reader(reply.payload);
  keys.public_key = fhe::decode_public_key(reader);
  keys.secret_key = fhe::decode_secret_key(reader);
  if (!reader.at_end()) {
    throw fhe::SerializeError("trailing bytes after session key material");
  }
  return keys;
}

std::future<core::Response> ShardClient::submit(core::SessionId session,
                                                const core::Request& request,
                                                double deadline_ms) {
  return submit_raw(session, core::encode_request(request), deadline_ms);
}

std::future<core::Response> ShardClient::submit_raw(core::SessionId session,
                                                    fhe::Bytes request_frame,
                                                    double deadline_ms) {
  const double budget = effective_deadline(deadline_ms);
  fhe::Envelope envelope;
  envelope.type = fhe::MessageType::kSubmit;
  envelope.session = session;
  envelope.payload = std::move(request_frame);
  envelope.deadline_ms = wire_deadline(budget);

  std::future<core::Response> future;
  {
    std::lock_guard lock(mutex_);
    if (!alive_) {
      std::promise<core::Response> dead;
      dead.set_value(unavailable_response("connection to " + address_ + " is down"));
      return dead.get_future();
    }
    envelope.request_id = next_request_++;
    PendingCall& pending = pending_[envelope.request_id];
    pending.is_submit = true;
    if (budget > 0) {
      pending.has_deadline = true;
      pending.deadline = std::chrono::steady_clock::now() +
                         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                             std::chrono::duration<double, std::milli>(budget));
    }
    future = pending.response.get_future();
  }
  if (budget > 0) timer_cv_.notify_all();
  try {
    std::lock_guard lock(write_mutex_);
    write_envelope(socket_, envelope);
  } catch (const std::exception& e) {
    std::promise<core::Response> orphan;
    {
      std::lock_guard lock(mutex_);
      const auto it = pending_.find(envelope.request_id);
      if (it == pending_.end()) return future;  // reader or timer already completed it
      orphan = std::move(it->second.response);
      pending_.erase(it);
    }
    orphan.set_value(unavailable_response(std::string("send failed: ") + e.what()));
  }
  return future;
}

FleetStats ShardClient::stats(double deadline_ms) {
  const fhe::Envelope reply = call(fhe::MessageType::kStats, 0, {}, deadline_ms);
  if (reply.type != fhe::MessageType::kStatsReply) {
    throw NetError("unexpected reply to stats");
  }
  return decode_fleet_stats(reply.payload);
}

void ShardClient::ping(double deadline_ms) {
  const fhe::Envelope reply = call(fhe::MessageType::kPing, 0, {}, deadline_ms);
  if (reply.type != fhe::MessageType::kPong) {
    throw NetError("unexpected reply to ping");
  }
}

void ShardClient::request_shutdown(double deadline_ms) {
  const fhe::Envelope reply = call(fhe::MessageType::kShutdown, 0, {}, deadline_ms);
  if (reply.type != fhe::MessageType::kShutdownAck) {
    throw NetError("unexpected reply to shutdown");
  }
}

}  // namespace hemul::net
