#include "net/client.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

namespace hemul::net {

namespace {

/// A kError envelope answering a submit becomes a Response status, so the
/// caller-facing contract ("the future always yields a Response") holds.
core::Response error_to_response(const fhe::Envelope& envelope) {
  const auto [code, message] = fhe::decode_error_payload(envelope.payload);
  core::Response response;
  response.error = message;
  switch (code) {
    case fhe::WireErrorCode::kBadRequestBytes:
    case fhe::WireErrorCode::kUnknownSession:
      response.status = core::ResponseStatus::kBadRequest;
      break;
    case fhe::WireErrorCode::kShuttingDown:
      response.status = core::ResponseStatus::kUnavailable;
      break;
    case fhe::WireErrorCode::kUnsupported:
    case fhe::WireErrorCode::kInternal:
      response.status = core::ResponseStatus::kInternalError;
      break;
  }
  return response;
}

core::Response unavailable_response(const std::string& why) {
  core::Response response;
  response.status = core::ResponseStatus::kUnavailable;
  response.error = why;
  return response;
}

}  // namespace

ShardClient::ShardClient(std::string address) : address_(std::move(address)) {
  const auto [host, port] = parse_host_port(address_);
  socket_ = Socket::connect_to(host, port);
  reader_ = std::thread([this] { reader_loop(); });
}

ShardClient::~ShardClient() {
  close();
  if (reader_.joinable()) reader_.join();
}

void ShardClient::close() {
  socket_.shutdown_both();  // unblocks the reader, which fails the pending
}

bool ShardClient::alive() const {
  std::lock_guard lock(mutex_);
  return alive_;
}

void ShardClient::reader_loop() {
  for (;;) {
    fhe::Envelope envelope;
    try {
      envelope = read_envelope(socket_);
    } catch (const std::exception& e) {
      fail_all_pending(std::string("connection to ") + address_ + " lost: " + e.what());
      return;
    }
    PendingCall pending;
    bool found = false;
    {
      std::lock_guard lock(mutex_);
      const auto it = pending_.find(envelope.request_id);
      if (it != pending_.end()) {
        pending = std::move(it->second);
        pending_.erase(it);
        found = true;
      }
    }
    if (!found) continue;  // stale reply (e.g. after a local timeout path)
    if (pending.is_submit) {
      core::Response response;
      try {
        if (envelope.type == fhe::MessageType::kError) {
          response = error_to_response(envelope);
        } else if (envelope.type == fhe::MessageType::kResponse) {
          response = core::decode_response(envelope.payload);
        } else {
          response.status = core::ResponseStatus::kInternalError;
          response.error = "peer answered a submit with message type " +
                           std::to_string(static_cast<unsigned>(envelope.type));
        }
      } catch (const std::exception& e) {
        response = core::Response{};
        response.status = core::ResponseStatus::kInternalError;
        response.error = std::string("malformed response frame: ") + e.what();
      }
      pending.response.set_value(std::move(response));
    } else {
      pending.control.set_value(std::move(envelope));
    }
  }
}

void ShardClient::fail_all_pending(const std::string& why) {
  std::unordered_map<u64, PendingCall> orphaned;
  {
    std::lock_guard lock(mutex_);
    alive_ = false;
    orphaned.swap(pending_);
  }
  for (auto& [id, pending] : orphaned) {
    if (pending.is_submit) {
      pending.response.set_value(unavailable_response(why));
    } else {
      pending.control.set_exception(std::make_exception_ptr(NetError(why)));
    }
  }
}

fhe::Envelope ShardClient::call(fhe::MessageType type, u64 session, fhe::Bytes payload) {
  fhe::Envelope request;
  request.type = type;
  request.session = session;
  request.payload = std::move(payload);

  std::future<fhe::Envelope> future;
  {
    std::lock_guard lock(mutex_);
    if (!alive_) throw NetError("connection to " + address_ + " is down");
    request.request_id = next_request_++;
    future = pending_[request.request_id].control.get_future();
  }
  try {
    std::lock_guard lock(write_mutex_);
    write_envelope(socket_, request);
  } catch (const std::exception&) {
    // The reader will notice the dead socket too; make sure THIS call's
    // promise fails even if the reader already swept the table.
    std::lock_guard lock(mutex_);
    pending_.erase(request.request_id);
    throw;
  }
  return future.get();
}

ShardClient::SessionKeys ShardClient::create_session(const fhe::DghvParams& params,
                                                     u64 seed) {
  fhe::Bytes payload = fhe::encode_params(params);
  {
    fhe::ByteWriter w;
    w.put_u64(seed);
    const fhe::Bytes seed_bytes = w.take();
    payload.insert(payload.end(), seed_bytes.begin(), seed_bytes.end());
  }
  const fhe::Envelope reply =
      call(fhe::MessageType::kCreateSession, 0, std::move(payload));
  if (reply.type == fhe::MessageType::kError) {
    const auto [code, message] = fhe::decode_error_payload(reply.payload);
    if (code == fhe::WireErrorCode::kShuttingDown) throw core::ShuttingDown();
    throw std::runtime_error("create_session failed: " + message);
  }
  if (reply.type != fhe::MessageType::kSessionCreated) {
    throw NetError("unexpected reply to create_session");
  }
  SessionKeys keys;
  keys.session = reply.session;
  fhe::ByteReader reader(reply.payload);
  keys.public_key = fhe::decode_public_key(reader);
  keys.secret_key = fhe::decode_secret_key(reader);
  if (!reader.at_end()) {
    throw fhe::SerializeError("trailing bytes after session key material");
  }
  return keys;
}

std::future<core::Response> ShardClient::submit(core::SessionId session,
                                                const core::Request& request) {
  return submit_raw(session, core::encode_request(request));
}

std::future<core::Response> ShardClient::submit_raw(core::SessionId session,
                                                    fhe::Bytes request_frame) {
  fhe::Envelope envelope;
  envelope.type = fhe::MessageType::kSubmit;
  envelope.session = session;
  envelope.payload = std::move(request_frame);

  std::future<core::Response> future;
  {
    std::lock_guard lock(mutex_);
    if (!alive_) {
      std::promise<core::Response> dead;
      dead.set_value(unavailable_response("connection to " + address_ + " is down"));
      return dead.get_future();
    }
    envelope.request_id = next_request_++;
    PendingCall& pending = pending_[envelope.request_id];
    pending.is_submit = true;
    future = pending.response.get_future();
  }
  try {
    std::lock_guard lock(write_mutex_);
    write_envelope(socket_, envelope);
  } catch (const std::exception& e) {
    std::promise<core::Response> orphan;
    {
      std::lock_guard lock(mutex_);
      const auto it = pending_.find(envelope.request_id);
      if (it == pending_.end()) return future;  // reader already failed it
      orphan = std::move(it->second.response);
      pending_.erase(it);
    }
    orphan.set_value(unavailable_response(std::string("send failed: ") + e.what()));
  }
  return future;
}

FleetStats ShardClient::stats() {
  const fhe::Envelope reply = call(fhe::MessageType::kStats, 0, {});
  if (reply.type != fhe::MessageType::kStatsReply) {
    throw NetError("unexpected reply to stats");
  }
  return decode_fleet_stats(reply.payload);
}

void ShardClient::request_shutdown() {
  const fhe::Envelope reply = call(fhe::MessageType::kShutdown, 0, {});
  if (reply.type != fhe::MessageType::kShutdownAck) {
    throw NetError("unexpected reply to shutdown");
  }
}

}  // namespace hemul::net
