#pragma once

#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "service/service.hpp"

namespace hemul::net {

/// Blocking client of one shard (or of the router -- both speak the same
/// envelope protocol). One reader thread demultiplexes replies to callers
/// by request id, so any number of submits can be outstanding at once.
///
/// Connection loss fails exactly the in-flight calls of THIS connection:
/// pending submits complete with ResponseStatus::kUnavailable, pending
/// control calls throw NetError, and the client reports alive() == false;
/// later submits are refused locally the same way.
class ShardClient {
 public:
  /// Connects to "host:port". Throws NetError on failure.
  explicit ShardClient(std::string address);
  ~ShardClient();

  ShardClient(const ShardClient&) = delete;
  ShardClient& operator=(const ShardClient&) = delete;

  /// A created session: the server-assigned id plus the key material the
  /// shard generated for this tenant (the client encrypts/decrypts locally
  /// by rebuilding an fhe::Dghv from these).
  struct SessionKeys {
    core::SessionId session = 0;
    fhe::PublicKey public_key;
    bigint::BigUInt secret_key;
  };

  /// Synchronous create-session RPC. Throws core::ShuttingDown when the
  /// peer is draining, NetError on connection loss, std::runtime_error on
  /// other remote errors.
  SessionKeys create_session(const fhe::DghvParams& params, u64 seed);

  /// Asynchronous evaluate RPC. The future always yields a Response
  /// (remote errors and connection loss become statuses, never broken
  /// promises).
  std::future<core::Response> submit(core::SessionId session, const core::Request& request);

  /// Like submit(), but forwards an already-encoded kRequest frame
  /// verbatim -- the router's path, which never re-encodes payloads.
  std::future<core::Response> submit_raw(core::SessionId session, fhe::Bytes request_frame);

  /// Synchronous stats RPC (a shard replies with one-entry FleetStats; the
  /// router replies with the whole fleet).
  FleetStats stats();

  /// Sends kShutdown and waits for the acknowledgement: the peer stops
  /// accepting (in-flight work still completes).
  void request_shutdown();

  /// Generic synchronous call: sends one envelope, returns the matching
  /// reply (including kError envelopes -- callers that need typed errors
  /// use the wrappers above, which map them to exceptions).
  fhe::Envelope call(fhe::MessageType type, u64 session, fhe::Bytes payload);

  [[nodiscard]] bool alive() const;
  [[nodiscard]] const std::string& address() const noexcept { return address_; }

  /// Closes the connection (pending calls fail as on connection loss).
  void close();

 private:
  struct PendingCall {
    bool is_submit = false;
    std::promise<core::Response> response;  ///< is_submit
    std::promise<fhe::Envelope> control;    ///< !is_submit
  };

  void reader_loop();
  void fail_all_pending(const std::string& why);

  std::string address_;
  Socket socket_;
  std::mutex write_mutex_;          ///< serializes socket writes
  mutable std::mutex mutex_;        ///< pending_ / alive_ / next_request_
  std::unordered_map<u64, PendingCall> pending_;
  u64 next_request_ = 1;
  bool alive_ = true;
  std::thread reader_;  ///< last member: joins before teardown
};

}  // namespace hemul::net
