#pragma once

#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "service/service.hpp"

namespace hemul::net {

/// Thrown by synchronous control calls (create_session, stats, ping,
/// request_shutdown) whose deadline expired before the reply arrived. A
/// subclass of NetError so existing "connection trouble" handlers keep
/// working, but distinguishable where the retry policy cares.
class TimeoutError : public NetError {
 public:
  using NetError::NetError;
};

/// Blocking client of one shard (or of the router -- both speak the same
/// envelope protocol). One reader thread demultiplexes replies to callers
/// by request id, so any number of submits can be outstanding at once.
///
/// Connection loss fails exactly the in-flight calls of THIS connection:
/// pending submits complete with ResponseStatus::kUnavailable, pending
/// control calls throw NetError, and the client reports alive() == false;
/// later submits are refused locally the same way.
///
/// Deadlines: every call takes an optional budget in milliseconds. A timer
/// thread completes overdue submits with ResponseStatus::kTimeout and fails
/// overdue control calls with TimeoutError -- every future completes even
/// when the peer never answers. The budget also rides the wire (see
/// fhe::Envelope::deadline_ms) so the server can drop requests that expired
/// in its queue instead of burning multiplies on them.
class ShardClient {
 public:
  struct Options {
    /// Default per-call budget in milliseconds; 0 disables deadlines.
    /// Individual calls override it with their deadline_ms parameter.
    double deadline_ms = 0;
  };

  /// Connects to "host:port". Throws NetError on failure.
  explicit ShardClient(std::string address);
  ShardClient(std::string address, Options options);
  ~ShardClient();

  ShardClient(const ShardClient&) = delete;
  ShardClient& operator=(const ShardClient&) = delete;

  /// A created session: the server-assigned id plus the key material the
  /// shard generated for this tenant (the client encrypts/decrypts locally
  /// by rebuilding an fhe::Dghv from these).
  struct SessionKeys {
    core::SessionId session = 0;
    fhe::PublicKey public_key;
    bigint::BigUInt secret_key;
  };

  /// Synchronous create-session RPC. Throws core::ShuttingDown when the
  /// peer is draining, TimeoutError past the deadline, NetError on
  /// connection loss, std::runtime_error on other remote errors.
  SessionKeys create_session(const fhe::DghvParams& params, u64 seed,
                             double deadline_ms = kUseDefault);

  /// Sends an already-encoded create-session payload (params || seed) and
  /// returns the reply envelope verbatim (kSessionCreated or kError) -- the
  /// router's path, for both first placement and failover replay.
  fhe::Envelope create_session_raw(fhe::Bytes payload, double deadline_ms = kUseDefault);

  /// Asynchronous evaluate RPC. The future always yields a Response
  /// (remote errors, connection loss and expired deadlines become
  /// statuses, never broken promises).
  std::future<core::Response> submit(core::SessionId session, const core::Request& request,
                                     double deadline_ms = kUseDefault);

  /// Like submit(), but forwards an already-encoded kRequest frame
  /// verbatim -- the router's path, which never re-encodes payloads.
  std::future<core::Response> submit_raw(core::SessionId session, fhe::Bytes request_frame,
                                         double deadline_ms = kUseDefault);

  /// Synchronous stats RPC (a shard replies with one-entry FleetStats; the
  /// router replies with the whole fleet).
  FleetStats stats(double deadline_ms = kUseDefault);

  /// Liveness probe: kPing, expects kPong. Throws TimeoutError / NetError
  /// when the peer is unresponsive -- the router's probe loop signal.
  void ping(double deadline_ms = kUseDefault);

  /// Sends kShutdown and waits for the acknowledgement: the peer stops
  /// accepting (in-flight work still completes).
  void request_shutdown(double deadline_ms = kUseDefault);

  /// Generic synchronous call: sends one envelope, returns the matching
  /// reply (including kError envelopes -- callers that need typed errors
  /// use the wrappers above, which map them to exceptions).
  fhe::Envelope call(fhe::MessageType type, u64 session, fhe::Bytes payload,
                     double deadline_ms = kUseDefault);

  [[nodiscard]] bool alive() const;
  [[nodiscard]] const std::string& address() const noexcept { return address_; }

  /// Closes the connection (pending calls fail as on connection loss).
  void close();

  /// Sentinel deadline meaning "use Options::deadline_ms".
  static constexpr double kUseDefault = -1.0;

 private:
  struct PendingCall {
    bool is_submit = false;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    std::promise<core::Response> response;  ///< is_submit
    std::promise<fhe::Envelope> control;    ///< !is_submit
  };

  void reader_loop();
  void timer_loop();
  void fail_all_pending(const std::string& why);
  [[nodiscard]] double effective_deadline(double deadline_ms) const noexcept {
    return deadline_ms < 0 ? options_.deadline_ms : deadline_ms;
  }

  std::string address_;
  Options options_;
  Socket socket_;
  std::mutex write_mutex_;          ///< serializes socket writes
  mutable std::mutex mutex_;        ///< pending_ / alive_ / next_request_
  std::condition_variable timer_cv_;
  std::unordered_map<u64, PendingCall> pending_;
  u64 next_request_ = 1;
  bool alive_ = true;
  bool closing_ = false;  ///< tells the timer thread to exit
  std::thread timer_;
  std::thread reader_;  ///< last member: joins before teardown
};

}  // namespace hemul::net
