#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "service/service.hpp"

namespace hemul::net {

/// One accepted connection of an EnvelopeServer. Replies leave through a
/// per-connection FIFO writer thread, so a handler can either answer
/// immediately (send_now) or hand over a Service future (send_when_ready)
/// without blocking the reader -- pipelined submits stay outstanding
/// together, which is what lets the admission window coalesce them.
class ServerConnection {
 public:
  explicit ServerConnection(Socket socket);
  ~ServerConnection();

  ServerConnection(const ServerConnection&) = delete;
  ServerConnection& operator=(const ServerConnection&) = delete;

  /// Queues a ready envelope for writing (FIFO with everything else).
  void send_now(fhe::Envelope envelope);

  /// Queues a response future; the writer thread blocks on it in queue
  /// order and writes the kResponse envelope when the service completes it.
  void send_when_ready(u64 session, u64 request_id, std::future<core::Response> response);

 private:
  friend class EnvelopeServer;

  struct Outgoing {
    fhe::Envelope ready;
    bool has_future = false;
    u64 session = 0;
    u64 request_id = 0;
    std::future<core::Response> response;
  };

  void writer_loop();
  /// Stops the writer after it drains the queue, and joins it.
  void finish();

  Socket socket_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Outgoing> queue_;
  bool done_ = false;
  bool write_failed_ = false;  ///< socket died mid-write; drop the rest
  std::thread writer_;
};

/// Minimal blocking envelope server: an accept loop, one reader thread per
/// connection, and the ServerConnection writer. All protocol logic lives in
/// the handler; the server maps handler exceptions to kError envelopes
/// (ShuttingDown -> kShuttingDown, SerializeError -> kBadRequestBytes,
/// invalid_argument -> kUnknownSession, anything else -> kInternal) so one
/// hostile or unlucky request never tears the connection down.
class EnvelopeServer {
 public:
  using Handler = std::function<void(const fhe::Envelope&, ServerConnection&)>;

  /// Binds 127.0.0.1:port (0 = ephemeral; see port()) and starts accepting.
  EnvelopeServer(int port, Handler handler);
  ~EnvelopeServer();

  EnvelopeServer(const EnvelopeServer&) = delete;
  EnvelopeServer& operator=(const EnvelopeServer&) = delete;

  [[nodiscard]] int port() const noexcept { return listener_.port(); }

  /// Stops accepting, unblocks every connection and joins all threads.
  /// Idempotent; also run by the destructor.
  void stop();

 private:
  void accept_loop();
  void serve(ServerConnection& connection);

  Listener listener_;
  Handler handler_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<ServerConnection>> connections_;
  std::vector<std::thread> threads_;
  bool stopping_ = false;
  std::thread acceptor_;
};

/// The shard daemon's protocol: one core::Service behind an EnvelopeServer.
/// Dispatches kCreateSession / kSubmit / kStats / kShutdown (the full
/// message set a shard speaks; see docs/wire-protocol.md).
class ShardServer {
 public:
  struct Options {
    int port = 0;  ///< 0 = ephemeral
    /// Invoked (once) after a kShutdown request has been acknowledged --
    /// the daemon uses it to leave its wait loop and drain.
    std::function<void()> on_shutdown;
  };

  /// The service must outlive the server.
  ShardServer(core::Service& service, Options options);
  explicit ShardServer(core::Service& service);

  [[nodiscard]] int port() const noexcept { return server_.port(); }
  void stop() { server_.stop(); }

 private:
  void handle(const fhe::Envelope& request, ServerConnection& connection);

  core::Service& service_;
  std::function<void()> on_shutdown_;
  EnvelopeServer server_;  ///< last member: stops before the rest tears down
};

}  // namespace hemul::net
