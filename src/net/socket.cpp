#include "net/socket.hpp"

#include "net/fault.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hemul::net {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    fault_out_ = other.fault_out_;
    fault_in_ = other.fault_in_;
  }
  return *this;
}

Socket Socket::connect_to(const std::string& host, int port) {
  if (const std::shared_ptr<FaultInjector> injector = fault_injector()) {
    const u64 index = injector->next_connect_index();
    if (injector->decide(FaultDirection::kConnect, index) == FaultAction::kRefuse) {
      injector->record(FaultAction::kRefuse);
      throw NetError("connect to " + host + ":" + std::to_string(port) +
                     " refused (injected fault #" + std::to_string(index) + ")");
    }
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket");
  Socket sock(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    throw NetError("unresolvable host (IPv4 literal expected): " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    fail_errno("connect to " + numeric + ":" + std::to_string(port));
  }
  // Frames are small and latency-bound; never batch them behind Nagle.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

void Socket::send_all(std::span<const u8> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void Socket::recv_exact(std::span<u8> data) {
  std::size_t got = 0;
  while (got < data.size()) {
    const ssize_t n = ::recv(fd_, data.data() + got, data.size() - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("recv");
    }
    if (n == 0) {
      throw NetError(got == 0 ? "connection closed by peer"
                              : "connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) fail_errno("socket");

  const int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    close();
    errno = saved;
    fail_errno("bind to 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd_, SOMAXCONN) != 0) {
    const int saved = errno;
    close();
    errno = saved;
    fail_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int saved = errno;
    close();
    errno = saved;
    fail_errno("getsockname");
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));
}

Socket Listener::accept_connection() {
  const int listen_fd = fd_.load(std::memory_order_relaxed);
  if (listen_fd < 0) throw NetError("accept on closed listener");
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) fail_errno("accept");
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(fd);
}

void Listener::close() noexcept {
  // exchange() claims the fd exactly once even if close() races with the
  // destructor on another thread.
  const int fd = fd_.exchange(-1, std::memory_order_relaxed);
  if (fd >= 0) {
    // shutdown() first so a thread blocked in accept() wakes with an error
    // instead of holding the fd forever.
    (void)::shutdown(fd, SHUT_RDWR);
    (void)::close(fd);
  }
}

std::pair<std::string, int> parse_host_port(const std::string& address) {
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == address.size()) {
    throw NetError("malformed address (want host:port): " + address);
  }
  int port = 0;
  try {
    port = std::stoi(address.substr(colon + 1));
  } catch (const std::exception&) {
    throw NetError("malformed port in address: " + address);
  }
  if (port < 1 || port > 65535) throw NetError("port out of range in address: " + address);
  return {address.substr(0, colon), port};
}

}  // namespace hemul::net
