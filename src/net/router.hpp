#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"

namespace hemul::net {

/// When a shard RPC is safe to replay, how the router paces the replays:
/// capped exponential backoff with deterministic jitter (splitmix64 over
/// jitter_seed, the session id and the attempt number -- reproducible runs,
/// no synchronized retry herds).
struct RetryPolicy {
  unsigned max_retries = 2;      ///< replays after the first attempt
  double base_backoff_ms = 10.0; ///< first retry sleeps ~this long
  double max_backoff_ms = 500.0; ///< backoff growth cap
  u64 jitter_seed = 0x9E3779B97F4A7C15ull;
};

/// Fleet front door: speaks the same envelope protocol as a shard, but owns
/// no Service -- it places sessions on shards by hashing the (router-
/// assigned) global session id, forwards submits verbatim to the owning
/// shard, and aggregates per-shard stats into one kStatsReply.
///
/// Placement is deterministic: shard_of(id, n) depends only on the id and
/// the shard count, so a restarted router with the same shard list hashes
/// identically. Sessions survive shard death: the router records every
/// session's create payload (params || seed) and, when the owner dies,
/// replays it on the next live shard in the deterministic walk order --
/// DGHV keygen is seeded, so the re-homed session carries identical keys
/// and answers bit-exactly (FleetStats::sessions_rehomed counts these).
///
/// A probe loop (Options::probe_interval_ms) drives each shard through
/// kAlive -> kSuspect -> kDead on failed kPing probes and redials dead
/// shards (kReconnecting -> kAlive, with a bumped incarnation so stale
/// placements re-home rather than trust a restarted, session-less peer).
class Router {
 public:
  struct Options {
    int port = 0;  ///< 0 = ephemeral
    RetryPolicy retry;
    /// Probe loop period; 0 disables probing (shards still transition to
    /// dead on connection loss observed by regular traffic).
    double probe_interval_ms = 0.0;
    /// Deadline for the router's own cheap control RPCs to shards (ping,
    /// stats); 0 = none. Never applied to create or submit forwards --
    /// keygen and deep circuits are legitimately seconds-scale.
    double shard_deadline_ms = 0.0;
    /// Invoked (once) after a kShutdown request has been acknowledged.
    std::function<void()> on_shutdown;
  };

  /// Connects to every shard up front; throws NetError if any is
  /// unreachable (a fleet that never formed is a deployment error, unlike
  /// a shard dying later, which is handled).
  Router(std::vector<std::string> shard_addresses, Options options);
  explicit Router(std::vector<std::string> shard_addresses);
  ~Router();

  [[nodiscard]] int port() const noexcept { return server_.port(); }
  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  void stop();

  /// The placement hash: splitmix64 over the global session id, reduced
  /// modulo the shard count. Exposed so tests can assert determinism.
  [[nodiscard]] static std::size_t shard_of(u64 global_session,
                                            std::size_t shard_count) noexcept;

  /// The router's own view of the fleet (same data a kStats RPC returns).
  [[nodiscard]] FleetStats fleet_stats();

  /// One probe pass over every shard, exactly what the probe loop runs per
  /// period: ping live shards (escalating failures alive -> suspect ->
  /// dead) and redial dead ones. Exposed so tests can drive the state
  /// machine without real-time waits.
  void probe_once();

 private:
  struct Shard {
    std::string address;
    std::shared_ptr<ShardClient> client;
    ShardState state = ShardState::kAlive;
    u64 incarnation = 0;  ///< bumped per reconnect; placements pin the one
                          ///< they were created under
  };

  struct Placement {
    std::size_t shard = 0;
    core::SessionId remote = 0;  ///< the session id inside that shard
    u64 incarnation = 0;
    fhe::Bytes create_payload;   ///< params || seed, replayed on failover
  };

  /// A placement resolved to a live connection (what a forward needs).
  struct Resolved {
    std::size_t shard = 0;
    core::SessionId remote = 0;
    std::shared_ptr<ShardClient> client;
  };

  void handle(const fhe::Envelope& request, ServerConnection& connection);
  void handle_create(const fhe::Envelope& request, ServerConnection& connection);
  /// The async forward of one submit; never throws -- every failure mode
  /// becomes a Response status.
  core::Response forward_submit(u64 global, fhe::Bytes payload, u64 deadline_ms);
  /// Maps a global session to a live shard connection, re-homing it (create
  /// replay on the next live shard) when the recorded owner is dead or was
  /// restarted. Throws std::invalid_argument for unknown sessions and
  /// NetError when no live shard remains.
  Resolved resolve_session(u64 global);
  /// Walks shard indices starting at the placement hash; deterministic, so
  /// independent routers agree on the failover target.
  [[nodiscard]] std::vector<std::size_t> walk_order(u64 global) const;
  /// Marks a shard dead iff `expected` is still its current connection
  /// (a reconnected shard must not be re-killed by a stale observation).
  void mark_dead(std::size_t shard, const std::shared_ptr<ShardClient>& expected);
  [[nodiscard]] double backoff_ms(u64 key, unsigned attempt) const noexcept;
  void probe_loop();

  Options options_;
  std::function<void()> on_shutdown_;

  std::mutex mutex_;  ///< shards_ entries, placements_, counters
  std::vector<Shard> shards_;
  std::unordered_map<u64, Placement> placements_;
  u64 next_session_ = 1;
  u64 sessions_created_ = 0;
  u64 forwarded_ = 0;
  u64 failed_ = 0;            ///< submits refused because the owner is down
  u64 sessions_rehomed_ = 0;  ///< failover create replays that landed
  u64 retries_ = 0;           ///< safe replays (create placement, overload)
  u64 probes_sent_ = 0;

  /// Serializes re-homing: concurrent requests of one dead shard's sessions
  /// must produce ONE replay per session, not a thundering herd.
  std::mutex rehome_mutex_;

  std::mutex probe_mutex_;
  std::condition_variable probe_cv_;
  bool stopping_ = false;
  std::thread prober_;

  EnvelopeServer server_;  ///< last member: stops before the clients close
};

}  // namespace hemul::net
