#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"

namespace hemul::net {

/// Fleet front door: speaks the same envelope protocol as a shard, but owns
/// no Service -- it places sessions on shards by hashing the (router-
/// assigned) global session id, forwards submits verbatim to the owning
/// shard, and aggregates per-shard stats into one kStatsReply.
///
/// Placement is deterministic: shard_of(id, n) depends only on the id and
/// the shard count, so a restarted router with the same shard list hashes
/// identically. A dead shard fails only its own sessions' requests (clean
/// kUnavailable responses); other shards keep serving, and the stats reply
/// reports the dead shard with alive == false.
class Router {
 public:
  struct Options {
    int port = 0;  ///< 0 = ephemeral
    /// Invoked (once) after a kShutdown request has been acknowledged.
    std::function<void()> on_shutdown;
  };

  /// Connects to every shard up front; throws NetError if any is
  /// unreachable (a fleet that never formed is a deployment error, unlike
  /// a shard dying later, which is handled).
  Router(std::vector<std::string> shard_addresses, Options options);
  explicit Router(std::vector<std::string> shard_addresses);

  [[nodiscard]] int port() const noexcept { return server_.port(); }
  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  void stop() { server_.stop(); }

  /// The placement hash: splitmix64 over the global session id, reduced
  /// modulo the shard count. Exposed so tests can assert determinism.
  [[nodiscard]] static std::size_t shard_of(u64 global_session,
                                            std::size_t shard_count) noexcept;

  /// The router's own view of the fleet (same data a kStats RPC returns).
  [[nodiscard]] FleetStats fleet_stats();

 private:
  struct Placement {
    std::size_t shard = 0;
    core::SessionId remote = 0;  ///< the session id inside that shard
  };

  void handle(const fhe::Envelope& request, ServerConnection& connection);

  std::vector<std::string> addresses_;
  std::vector<std::unique_ptr<ShardClient>> shards_;
  std::function<void()> on_shutdown_;

  std::mutex mutex_;
  std::unordered_map<u64, Placement> placements_;
  u64 next_session_ = 1;
  u64 sessions_created_ = 0;
  u64 forwarded_ = 0;
  u64 failed_ = 0;  ///< submits refused because the owning shard is down

  EnvelopeServer server_;  ///< last member: stops before the clients close
};

}  // namespace hemul::net
