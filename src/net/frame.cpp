#include "net/frame.hpp"

#include <chrono>
#include <thread>

#include "net/fault.hpp"

namespace hemul::net {

namespace {

/// Envelope header: u32 magic | u8 version | u8 tag | u64 payload length.
constexpr std::size_t kHeaderBytes = 14;

/// Pulls one raw envelope frame (header + payload) off the socket without
/// decoding the payload.
fhe::Bytes read_frame_bytes(Socket& socket) {
  fhe::Bytes buffer(kHeaderBytes);
  socket.recv_exact(buffer);

  // Validate the header before trusting the length: a peer speaking the
  // wrong protocol fails here with a SerializeError, not a huge recv.
  fhe::ByteReader header(buffer);
  if (header.get_u32() != fhe::kWireMagic) {
    throw fhe::SerializeError("transport: bad magic (not an HMW1 stream)");
  }
  const u8 version = header.get_u8();
  if (version != fhe::kWireVersion) {
    throw fhe::SerializeError("transport: unsupported wire version " +
                              std::to_string(version));
  }
  const u8 tag = header.get_u8();
  if (tag != static_cast<u8>(fhe::WireTag::kEnvelope)) {
    throw fhe::SerializeError("transport: expected an envelope frame, got tag " +
                              std::to_string(tag));
  }
  const u64 payload = header.get_u64();
  if (payload > kMaxEnvelopeBytes) {
    throw fhe::SerializeError("transport: envelope length " + std::to_string(payload) +
                              " exceeds the frame bound");
  }

  buffer.resize(kHeaderBytes + payload);
  socket.recv_exact(std::span<u8>(buffer).subspan(kHeaderBytes));
  return buffer;
}

void fault_sleep(const FaultInjector& injector) {
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(injector.plan().delay_ms));
}

}  // namespace

fhe::Envelope read_envelope(Socket& socket) {
  const std::shared_ptr<FaultInjector> injector = fault_injector();
  for (;;) {
    fhe::Bytes buffer = read_frame_bytes(socket);
    if (injector) {
      const u64 index = socket.next_fault_index(/*outbound=*/false);
      const FaultAction action = injector->decide(FaultDirection::kInbound, index);
      if (action != FaultAction::kNone) injector->record(action);
      if (action == FaultAction::kDrop) continue;  // lost in transit: read on
      if (action == FaultAction::kDelay) fault_sleep(*injector);
      if (action == FaultAction::kCorrupt && buffer.size() > kHeaderBytes) {
        // Flip one payload byte; the frame header survives, so this models
        // in-flight corruption the decode layer must reject or absorb.
        buffer[kHeaderBytes +
               injector->corrupt_offset(index, buffer.size() - kHeaderBytes)] ^= 0x01;
      }
    }
    return fhe::decode_envelope(buffer);
  }
}

void write_envelope(Socket& socket, const fhe::Envelope& envelope) {
  fhe::Bytes frame = fhe::encode_envelope(envelope);
  if (const std::shared_ptr<FaultInjector> injector = fault_injector()) {
    const u64 index = socket.next_fault_index(/*outbound=*/true);
    const FaultAction action = injector->decide(FaultDirection::kOutbound, index);
    if (action != FaultAction::kNone) injector->record(action);
    switch (action) {
      case FaultAction::kDrop:
        return;  // swallowed: the peer never sees this frame
      case FaultAction::kDelay:
        fault_sleep(*injector);
        break;
      case FaultAction::kTruncate:
        // Half a frame, then a dead socket: the peer observes a mid-frame
        // close (NetError), the canonical crashed-peer signature.
        socket.send_all(std::span<const u8>(frame).first(frame.size() / 2));
        socket.shutdown_both();
        return;
      case FaultAction::kCorrupt:
        if (frame.size() > kHeaderBytes) {
          frame[kHeaderBytes +
                injector->corrupt_offset(index, frame.size() - kHeaderBytes)] ^= 0x01;
        }
        break;
      case FaultAction::kRefuse:
      case FaultAction::kNone:
        break;
    }
  }
  socket.send_all(frame);
}

std::string_view shard_state_name(ShardState state) noexcept {
  switch (state) {
    case ShardState::kAlive: return "alive";
    case ShardState::kSuspect: return "suspect";
    case ShardState::kDead: return "dead";
    case ShardState::kReconnecting: return "reconnecting";
  }
  return "?";
}

core::ServiceStats FleetStats::aggregate() const {
  core::ServiceStats total;
  for (const ShardStats& shard : shards) {
    const core::ServiceStats& s = shard.service;
    total.submitted += s.submitted;
    total.completed += s.completed;
    total.rejected_by_noise += s.rejected_by_noise;
    total.bad_requests += s.bad_requests;
    total.internal_errors += s.internal_errors;
    total.shed += s.shed;
    total.expired += s.expired;
    total.sessions_evicted += s.sessions_evicted;
    total.and_gates += s.and_gates;
    total.wavefronts += s.wavefronts;
    total.batches_submitted += s.batches_submitted;
    total.coalesced_requests += s.coalesced_requests;
    total.transforms_executed += s.transforms_executed;
    total.transforms_avoided += s.transforms_avoided;
    total.queue_depth += s.queue_depth;
    total.active_requests += s.active_requests;
    total.sessions += s.sessions;
    total.cache_hits += s.cache_hits;
    total.cache_misses += s.cache_misses;
  }
  return total;
}

namespace {

void write_service_stats(fhe::ByteWriter& w, const core::ServiceStats& s) {
  w.put_u64(s.submitted);
  w.put_u64(s.completed);
  w.put_u64(s.rejected_by_noise);
  w.put_u64(s.bad_requests);
  w.put_u64(s.internal_errors);
  w.put_u64(s.shed);
  w.put_u64(s.expired);
  w.put_u64(s.sessions_evicted);
  w.put_u64(s.and_gates);
  w.put_u64(s.wavefronts);
  w.put_u64(s.batches_submitted);
  w.put_u64(s.coalesced_requests);
  w.put_u64(s.transforms_executed);
  w.put_u64(static_cast<u64>(s.transforms_avoided));
  w.put_u64(s.queue_depth);
  w.put_u64(s.active_requests);
  w.put_u64(s.sessions);
  w.put_u64(s.cache_hits);
  w.put_u64(s.cache_misses);
  w.put_u32(static_cast<u32>(s.lanes.size()));
  for (const core::LaneStats& lane : s.lanes) {
    w.put_u32(lane.lane);
    w.put_u64(lane.jobs);
    w.put_u64(lane.tiles);
    w.put_u64(lane.hw_cycles);
    w.put_f64(lane.busy_ms);
  }
}

core::ServiceStats read_service_stats(fhe::ByteReader& r) {
  core::ServiceStats s;
  s.submitted = r.get_u64();
  s.completed = r.get_u64();
  s.rejected_by_noise = r.get_u64();
  s.bad_requests = r.get_u64();
  s.internal_errors = r.get_u64();
  s.shed = r.get_u64();
  s.expired = r.get_u64();
  s.sessions_evicted = r.get_u64();
  s.and_gates = r.get_u64();
  s.wavefronts = r.get_u64();
  s.batches_submitted = r.get_u64();
  s.coalesced_requests = r.get_u64();
  s.transforms_executed = r.get_u64();
  s.transforms_avoided = static_cast<i64>(r.get_u64());
  s.queue_depth = r.get_u64();
  s.active_requests = r.get_u64();
  s.sessions = r.get_u64();
  s.cache_hits = r.get_u64();
  s.cache_misses = r.get_u64();
  const u32 lane_count = r.get_u32();
  // Each lane costs at least its fixed 32 encoded bytes; bound before
  // reserving (hostile-count rule of the serialize layer).
  if (lane_count > r.remaining() / 32) {
    throw fhe::SerializeError("fleet stats: lane count exceeds the buffer");
  }
  s.lanes.reserve(lane_count);
  for (u32 i = 0; i < lane_count; ++i) {
    core::LaneStats lane;
    lane.lane = r.get_u32();
    lane.jobs = r.get_u64();
    lane.tiles = r.get_u64();
    lane.hw_cycles = r.get_u64();
    lane.busy_ms = r.get_f64();
    s.lanes.push_back(lane);
  }
  return s;
}

}  // namespace

fhe::Bytes encode_fleet_stats(const FleetStats& stats) {
  fhe::ByteWriter w;
  w.put_u64(stats.sessions_created);
  w.put_u64(stats.forwarded);
  w.put_u64(stats.failed);
  w.put_u64(stats.sessions_rehomed);
  w.put_u64(stats.retries);
  w.put_u64(stats.probes_sent);
  w.put_u32(static_cast<u32>(stats.shards.size()));
  for (const ShardStats& shard : stats.shards) {
    w.put_bytes(std::span<const u8>(reinterpret_cast<const u8*>(shard.address.data()),
                                    shard.address.size()));
    w.put_u8(shard.alive ? 1 : 0);
    w.put_u8(static_cast<u8>(shard.state));
    write_service_stats(w, shard.service);
  }
  return w.take();
}

FleetStats decode_fleet_stats(std::span<const u8> payload) {
  fhe::ByteReader r(payload);
  FleetStats stats;
  stats.sessions_created = r.get_u64();
  stats.forwarded = r.get_u64();
  stats.failed = r.get_u64();
  stats.sessions_rehomed = r.get_u64();
  stats.retries = r.get_u64();
  stats.probes_sent = r.get_u64();
  const u32 shard_count = r.get_u32();
  if (shard_count > r.remaining()) {
    throw fhe::SerializeError("fleet stats: shard count exceeds the buffer");
  }
  stats.shards.reserve(shard_count);
  for (u32 i = 0; i < shard_count; ++i) {
    ShardStats shard;
    const fhe::Bytes address = r.get_bytes();
    shard.address.assign(address.begin(), address.end());
    const u8 alive = r.get_u8();
    if (alive > 1) throw fhe::SerializeError("fleet stats: bad alive flag");
    shard.alive = alive == 1;
    const u8 state = r.get_u8();
    if (state > static_cast<u8>(ShardState::kReconnecting)) {
      throw fhe::SerializeError("fleet stats: bad shard state byte");
    }
    shard.state = static_cast<ShardState>(state);
    shard.service = read_service_stats(r);
    stats.shards.push_back(std::move(shard));
  }
  if (!r.at_end()) throw fhe::SerializeError("fleet stats: trailing bytes");
  return stats;
}

}  // namespace hemul::net
