#include "fhe/evaluator.hpp"

#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <utility>

#include "core/scheduler.hpp"
#include "util/check.hpp"

namespace hemul::fhe {

namespace {

using Clock = std::chrono::steady_clock;

std::string format_bits(double bits) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", bits);
  return buf;
}

}  // namespace

// --- EvalState -------------------------------------------------------------

EvalState::EvalState(const Graph& graph, std::span<const Wire> outputs)
    : graph_(&graph), output_wires_(outputs.begin(), outputs.end()) {
  const std::size_t node_count = graph.size();
  for (const Wire w : output_wires_) {
    HEMUL_CHECK_MSG(w.valid() && w.id < node_count, "Evaluator: output wire from another graph");
  }

  // Dead-node elimination: backward reachability from the outputs.
  live_.assign(node_count, 0);
  for (const Wire w : output_wires_) live_[w.id] = 1;
  for (std::size_t id = node_count; id-- > 0;) {
    const Wire w{static_cast<u32>(id)};
    if (!live_[id] || graph.op(w) == GateOp::kInput) continue;
    const auto [a, b] = graph.operands(w);
    live_[a.id] = 1;
    live_[b.id] = 1;
  }

  // Leveling + the pre-execution noise audit over the live wires.
  for (std::size_t id = 0; id < node_count; ++id) {
    if (!live_[id]) continue;
    const Wire w{static_cast<u32>(id)};
    ++live_count_;
    max_level_ = std::max(max_level_, graph.level(w));
    const double noise = graph.predicted_noise_bits(w);
    if (noise > max_noise_ || worst_wire_ == Wire::kInvalid) {
      max_noise_ = noise;
      worst_wire_ = static_cast<u32>(id);
    }
    if (graph.op(w) == GateOp::kXor) ++live_xor_;
  }

  // Wavefront w = all live AND gates at depth w. Every level 1..max_level
  // is populated: a live node at depth d always has a live AND ancestor
  // chain touching each depth below it.
  wavefronts_.assign(max_level_ + 1, {});
  for (std::size_t id = 0; id < node_count; ++id) {
    const Wire w{static_cast<u32>(id)};
    if (live_[id] && graph.op(w) == GateOp::kAnd) {
      wavefronts_[graph.level(w)].push_back(static_cast<u32>(id));
    }
  }

  values_.resize(node_count);
  sweep_linear(0);
}

bool EvalState::decryptable() const {
  return NoiseModel::decryptable(graph_->scheme().params(), max_noise_);
}

const std::vector<u32>& EvalState::wavefront(unsigned level) const {
  HEMUL_CHECK_MSG(level < wavefronts_.size(), "EvalState: level out of range");
  return wavefronts_[level];
}

backend::MulJob EvalState::gate_job(u32 id) const {
  const auto [a, b] = graph_->operands(Wire{id});
  return {values_[a.id].value, values_[b.id].value};
}

void EvalState::apply_product(u32 id, bigint::BigUInt product) {
  values_[id] = {std::move(product) % graph_->scheme().public_key().x0,
                 graph_->predicted_noise_bits(Wire{id})};
}

void EvalState::sweep_linear(unsigned level) {
  // Children are already materialized: XOR operands are earlier ids within
  // the same depth, AND operands were produced by this or an earlier
  // wavefront.
  const Dghv& scheme = graph_->scheme();
  for (u32 id = 0; id < graph_->size(); ++id) {
    const Wire w{id};
    if (!live_[id] || graph_->level(w) != level) continue;
    const GateOp op = graph_->op(w);
    if (op == GateOp::kAnd) continue;
    if (op == GateOp::kInput) {
      values_[id] = graph_->input_value(w);
    } else {
      const auto [a, b] = graph_->operands(w);
      values_[id] = scheme.add(values_[a.id], values_[b.id]);
    }
  }
}

std::vector<Ciphertext> EvalState::outputs() const {
  std::vector<Ciphertext> result;
  result.reserve(output_wires_.size());
  for (const Wire w : output_wires_) result.push_back(values_[w.id]);
  return result;
}

// --- Evaluator -------------------------------------------------------------

std::vector<Ciphertext> Evaluator::evaluate(const Graph& graph,
                                            std::span<const Wire> outputs,
                                            EvalReport* report,
                                            const EvalOptions& options) {
  const Dghv& scheme = graph.scheme();
  EvalState state(graph, outputs);

  const double budget = NoiseModel::budget_bits(scheme.params());
  const bool decryptable = state.decryptable();
  if (options.check_noise && !decryptable) {
    const Wire worst = state.worst_wire();
    throw NoiseBudgetError(
        "Evaluator: predicted noise " + format_bits(state.max_noise_bits()) + " bits at depth " +
            std::to_string(graph.level(worst)) + " exceeds the decryptability budget " +
            format_bits(budget) + " bits (eta - 2); refusing to execute",
        worst, graph.level(worst), state.max_noise_bits(), budget);
  }

  if (report != nullptr) {
    *report = EvalReport{};
    report->nodes = graph.size();
    report->live_nodes = state.live_nodes();
    report->dead_nodes = graph.size() - state.live_nodes();
    report->xor_gates = state.live_xor_gates();
    report->levels = state.max_level();
    report->max_noise_bits = state.max_noise_bits();
    report->decryptable = decryptable;
    report->wavefronts.reserve(state.max_level());
  }

  std::shared_ptr<backend::MultiplierBackend> engine = engine_;
  if (scheduler_ == nullptr && engine == nullptr) engine = scheme.engine();

  for (unsigned level = 1; level <= state.max_level(); ++level) {
    const std::vector<u32>& gates = state.wavefront(level);
    WavefrontStats wf;
    wf.level = level;
    wf.and_gates = gates.size();

    const auto t0 = Clock::now();
    std::vector<bigint::BigUInt> products;
    if (scheduler_ != nullptr) {
      // Per-wavefront lane/cache numbers are before/after deltas of the
      // scheduler-wide stats, and lane stats are booked only after each
      // future is satisfied (so the delta needs a wait_idle). Both are
      // observability-only: collect them just when a report was asked for,
      // so reportless evaluation never blocks on (or misattributes) work
      // other threads may be running on a shared scheduler. Per-wavefront
      // stats are accurate only when the scheduler is not shared
      // concurrently during the evaluation.
      const bool collect_stats = report != nullptr;
      core::SchedulerStats before;
      if (collect_stats) before = scheduler_->stats();
      // Submit per gate (no intermediate MulJob vector): each queued job
      // holds the only extra copy of its operand pair.
      std::vector<std::future<bigint::BigUInt>> futures;
      futures.reserve(gates.size());
      for (const u32 id : gates) {
        backend::MulJob job = state.gate_job(id);
        futures.push_back(scheduler_->submit_multiply(std::move(job.first), std::move(job.second)));
      }
      products.reserve(futures.size());
      for (auto& future : futures) products.push_back(future.get());
      if (collect_stats) {
        scheduler_->wait_idle();
        const core::SchedulerStats after = scheduler_->stats();
        wf.cache_hits = after.cache.hits - before.cache.hits;
        wf.cache_misses = after.cache.misses - before.cache.misses;
        wf.batch.jobs = gates.size();
        wf.batch.spectrum_cache_hits = wf.cache_hits;
        for (std::size_t lane = 0; lane < after.lanes.size(); ++lane) {
          const u64 jobs_before = lane < before.lanes.size() ? before.lanes[lane].jobs : 0;
          if (after.lanes[lane].jobs > jobs_before) ++wf.lanes_used;
          wf.batch.total_cycles +=
              after.lanes[lane].hw_cycles -
              (lane < before.lanes.size() ? before.lanes[lane].hw_cycles : 0);
        }
      }
    } else {
      std::vector<backend::MulJob> jobs;
      jobs.reserve(gates.size());
      for (const u32 id : gates) jobs.push_back(state.gate_job(id));
      products = engine->multiply_batch(jobs, &wf.batch);
      wf.cache_hits = wf.batch.spectrum_cache_hits;
      wf.cache_misses = wf.batch.forward_transforms;
      wf.lanes_used = gates.empty() ? 0 : 1;
    }
    wf.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

    for (std::size_t k = 0; k < gates.size(); ++k) {
      state.apply_product(gates[k], std::move(products[k]));
    }
    state.sweep_linear(level);

    if (report != nullptr) {
      report->and_gates += wf.and_gates;
      report->wavefronts.push_back(std::move(wf));
    }
  }

  return state.outputs();
}

}  // namespace hemul::fhe
