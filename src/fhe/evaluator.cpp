#include "fhe/evaluator.hpp"

#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <utility>

#include "core/scheduler.hpp"
#include "util/check.hpp"

namespace hemul::fhe {

namespace {

using Clock = std::chrono::steady_clock;

std::string format_bits(double bits) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", bits);
  return buf;
}

}  // namespace

std::vector<Ciphertext> Evaluator::evaluate(const Graph& graph,
                                            std::span<const Wire> outputs,
                                            EvalReport* report,
                                            const EvalOptions& options) {
  const Dghv& scheme = graph.scheme();
  const auto& nodes = graph.nodes_;
  for (const Wire w : outputs) {
    HEMUL_CHECK_MSG(w.valid() && w.id < nodes.size(),
                    "Evaluator: output wire from another graph");
  }

  // --- dead-node elimination: backward reachability from the outputs -----
  std::vector<char> live(nodes.size(), 0);
  for (const Wire w : outputs) live[w.id] = 1;
  for (std::size_t id = nodes.size(); id-- > 0;) {
    if (!live[id] || nodes[id].op == GateOp::kInput) continue;
    live[nodes[id].a] = 1;
    live[nodes[id].b] = 1;
  }

  // --- leveling + pre-execution noise audit --------------------------------
  std::size_t live_count = 0;
  unsigned max_level = 0;
  double max_noise = 0.0;
  u64 live_xor = 0;
  u32 worst_wire = Wire::kInvalid;
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    if (!live[id]) continue;
    ++live_count;
    max_level = std::max(max_level, nodes[id].level);
    if (nodes[id].noise_bits > max_noise || worst_wire == Wire::kInvalid) {
      max_noise = nodes[id].noise_bits;
      worst_wire = static_cast<u32>(id);
    }
    if (nodes[id].op == GateOp::kXor) ++live_xor;
  }

  const double budget = NoiseModel::budget_bits(scheme.params());
  const bool decryptable = NoiseModel::decryptable(scheme.params(), max_noise);
  if (options.check_noise && !decryptable) {
    throw NoiseBudgetError(
        "Evaluator: predicted noise " + format_bits(max_noise) + " bits at depth " +
            std::to_string(nodes[worst_wire].level) + " exceeds the decryptability budget " +
            format_bits(budget) + " bits (eta - 2); refusing to execute",
        Wire{worst_wire}, nodes[worst_wire].level, max_noise, budget);
  }

  // Wavefront w = all live AND gates at depth w. Every level 1..max_level
  // is populated: a live node at depth d always has a live AND ancestor
  // chain touching each depth below it.
  std::vector<std::vector<u32>> wavefronts(max_level + 1);
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    if (live[id] && nodes[id].op == GateOp::kAnd) {
      wavefronts[nodes[id].level].push_back(static_cast<u32>(id));
    }
  }

  if (report != nullptr) {
    *report = EvalReport{};
    report->nodes = nodes.size();
    report->live_nodes = live_count;
    report->dead_nodes = nodes.size() - live_count;
    report->xor_gates = live_xor;
    report->levels = max_level;
    report->max_noise_bits = max_noise;
    report->decryptable = decryptable;
    report->wavefronts.reserve(max_level);
  }

  std::shared_ptr<backend::MultiplierBackend> engine = engine_;
  if (scheduler_ == nullptr && engine == nullptr) engine = scheme.engine();
  const bigint::BigUInt& x0 = scheme.public_key().x0;

  std::vector<Ciphertext> values(nodes.size());
  // Evaluate a linear (non-AND) node; children are already materialized:
  // XOR operands are earlier ids within the same depth, AND operands were
  // produced by this or an earlier wavefront.
  const auto eval_linear_sweep = [&](unsigned level) {
    for (std::size_t id = 0; id < nodes.size(); ++id) {
      const Graph::Node& n = nodes[id];
      if (!live[id] || n.level != level || n.op == GateOp::kAnd) continue;
      if (n.op == GateOp::kInput) {
        values[id] = n.value;
      } else {
        values[id] = scheme.add(values[n.a], values[n.b]);
      }
    }
  };

  eval_linear_sweep(0);
  for (unsigned level = 1; level <= max_level; ++level) {
    const std::vector<u32>& gates = wavefronts[level];
    WavefrontStats wf;
    wf.level = level;
    wf.and_gates = gates.size();

    const auto t0 = Clock::now();
    std::vector<bigint::BigUInt> products;
    if (scheduler_ != nullptr) {
      // Per-wavefront lane/cache numbers are before/after deltas of the
      // scheduler-wide stats, and lane stats are booked only after each
      // future is satisfied (so the delta needs a wait_idle). Both are
      // observability-only: collect them just when a report was asked for,
      // so reportless evaluation never blocks on (or misattributes) work
      // other threads may be running on a shared scheduler. Per-wavefront
      // stats are accurate only when the scheduler is not shared
      // concurrently during the evaluation.
      const bool collect_stats = report != nullptr;
      core::SchedulerStats before;
      if (collect_stats) before = scheduler_->stats();
      // Submit per gate (no intermediate MulJob vector): each queued job
      // holds the only extra copy of its operand pair.
      std::vector<std::future<bigint::BigUInt>> futures;
      futures.reserve(gates.size());
      for (const u32 id : gates) {
        futures.push_back(
            scheduler_->submit_multiply(values[nodes[id].a].value, values[nodes[id].b].value));
      }
      products.reserve(futures.size());
      for (auto& future : futures) products.push_back(future.get());
      if (collect_stats) {
        scheduler_->wait_idle();
        const core::SchedulerStats after = scheduler_->stats();
        wf.cache_hits = after.cache.hits - before.cache.hits;
        wf.cache_misses = after.cache.misses - before.cache.misses;
        wf.batch.jobs = gates.size();
        wf.batch.spectrum_cache_hits = wf.cache_hits;
        for (std::size_t lane = 0; lane < after.lanes.size(); ++lane) {
          const u64 jobs_before = lane < before.lanes.size() ? before.lanes[lane].jobs : 0;
          if (after.lanes[lane].jobs > jobs_before) ++wf.lanes_used;
          wf.batch.total_cycles +=
              after.lanes[lane].hw_cycles -
              (lane < before.lanes.size() ? before.lanes[lane].hw_cycles : 0);
        }
      }
    } else {
      std::vector<backend::MulJob> jobs;
      jobs.reserve(gates.size());
      for (const u32 id : gates) {
        jobs.emplace_back(values[nodes[id].a].value, values[nodes[id].b].value);
      }
      products = engine->multiply_batch(jobs, &wf.batch);
      wf.cache_hits = wf.batch.spectrum_cache_hits;
      wf.cache_misses = wf.batch.forward_transforms;
      wf.lanes_used = gates.empty() ? 0 : 1;
    }
    wf.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

    for (std::size_t k = 0; k < gates.size(); ++k) {
      const u32 id = gates[k];
      values[id] = {std::move(products[k]) % x0, nodes[id].noise_bits};
    }
    eval_linear_sweep(level);

    if (report != nullptr) {
      report->and_gates += wf.and_gates;
      report->wavefronts.push_back(std::move(wf));
    }
  }

  std::vector<Ciphertext> result;
  result.reserve(outputs.size());
  for (const Wire w : outputs) result.push_back(values[w.id]);
  return result;
}

}  // namespace hemul::fhe
