#include "fhe/evaluator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <utility>

#include "backend/ssa_backend.hpp"
#include "core/scheduler.hpp"
#include "fp/fp64.hpp"
#include "ssa/resident.hpp"
#include "ssa/workspace.hpp"
#include "util/check.hpp"

namespace hemul::fhe {

namespace {

using Clock = std::chrono::steady_clock;

std::string format_bits(double bits) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", bits);
  return buf;
}

/// Registry key namespaces of concurrent resident evaluations never
/// collide: each EvalState draws a distinct uid.
std::atomic<u64> g_resident_uid{1};

}  // namespace

// --- EvalState -------------------------------------------------------------

EvalState::EvalState(const Graph& graph, std::span<const Wire> outputs)
    : graph_(&graph), output_wires_(outputs.begin(), outputs.end()) {
  const std::size_t node_count = graph.size();
  for (const Wire w : output_wires_) {
    HEMUL_CHECK_MSG(w.valid() && w.id < node_count, "Evaluator: output wire from another graph");
  }

  // Dead-node elimination: backward reachability from the outputs.
  live_.assign(node_count, 0);
  for (const Wire w : output_wires_) live_[w.id] = 1;
  for (std::size_t id = node_count; id-- > 0;) {
    const Wire w{static_cast<u32>(id)};
    if (!live_[id] || graph.op(w) == GateOp::kInput) continue;
    const auto [a, b] = graph.operands(w);
    live_[a.id] = 1;
    live_[b.id] = 1;
  }

  // Leveling + the pre-execution noise audit over the live wires.
  for (std::size_t id = 0; id < node_count; ++id) {
    if (!live_[id]) continue;
    const Wire w{static_cast<u32>(id)};
    ++live_count_;
    max_level_ = std::max(max_level_, graph.level(w));
    const double noise = graph.predicted_noise_bits(w);
    if (noise > max_noise_ || worst_wire_ == Wire::kInvalid) {
      max_noise_ = noise;
      worst_wire_ = static_cast<u32>(id);
    }
    if (graph.op(w) == GateOp::kXor) ++live_xor_;
  }

  // Wavefront w = all live AND gates at depth w. Every level 1..max_level
  // is populated: a live node at depth d always has a live AND ancestor
  // chain touching each depth below it.
  wavefronts_.assign(max_level_ + 1, {});
  for (std::size_t id = 0; id < node_count; ++id) {
    const Wire w{static_cast<u32>(id)};
    if (live_[id] && graph.op(w) == GateOp::kAnd) {
      wavefronts_[graph.level(w)].push_back(static_cast<u32>(id));
    }
  }

  values_.resize(node_count);
  sweep_linear(0);
}

bool EvalState::decryptable() const {
  return NoiseModel::decryptable(graph_->scheme().params(), max_noise_);
}

const std::vector<u32>& EvalState::wavefront(unsigned level) const {
  HEMUL_CHECK_MSG(level < wavefronts_.size(), "EvalState: level out of range");
  return wavefronts_[level];
}

backend::MulJob EvalState::gate_job(u32 id) const {
  const auto [a, b] = graph_->operands(Wire{id});
  return {values_[a.id].value, values_[b.id].value};
}

void EvalState::apply_product(u32 id, bigint::BigUInt product) {
  values_[id] = {std::move(product) % graph_->scheme().public_key().x0,
                 graph_->predicted_noise_bits(Wire{id})};
}

void EvalState::sweep_linear(unsigned level) {
  // Children are already materialized: XOR operands are earlier ids within
  // the same depth, AND operands were produced by this or an earlier
  // wavefront.
  const Dghv& scheme = graph_->scheme();
  for (u32 id = 0; id < graph_->size(); ++id) {
    const Wire w{id};
    if (!live_[id] || graph_->level(w) != level) continue;
    const GateOp op = graph_->op(w);
    if (op == GateOp::kAnd) continue;
    // Folded XORs were swept in the spectrum domain (and materialized
    // already if anything consumes their value).
    if (!folded_.empty() && folded_[id]) continue;
    if (op == GateOp::kInput) {
      values_[id] = graph_->input_value(w);
    } else {
      const auto [a, b] = graph_->operands(w);
      values_[id] = scheme.add(values_[a.id], values_[b.id]);
    }
  }
}

std::vector<Ciphertext> EvalState::outputs() const {
  std::vector<Ciphertext> result;
  result.reserve(output_wires_.size());
  for (const Wire w : output_wires_) result.push_back(values_[w.id]);
  return result;
}

// --- spectrum residency ----------------------------------------------------

u64 EvalState::local_key(u32 wire, unsigned kind) const noexcept {
  // kind 0: operand spectrum (forward of the reduced wire value, the only
  // kind that may multiply); kind 1: product/sum spectrum (raw, unreduced).
  return (static_cast<u64>(wire) << 1) | kind;
}

u64 EvalState::registry_key(u32 wire, unsigned kind) const noexcept {
  return (uid_ << 33) | local_key(wire, kind);
}

void EvalState::publish(u32 wire, unsigned kind, ssa::SpectrumHandle spectrum) {
  const bool fresh = resident_cache_.find_resident(local_key(wire, kind)) == nullptr;
  if (registry_ != nullptr) registry_->put_resident(registry_key(wire, kind), spectrum);
  resident_cache_.insert_resident(local_key(wire, kind), std::move(spectrum));
  if (fresh) {
    ++resident_now_;
    rstats_.resident_peak = std::max<u64>(rstats_.resident_peak, resident_now_);
  }
}

void EvalState::evict(u32 wire, unsigned kind) {
  if (resident_cache_.evict_resident(local_key(wire, kind))) {
    --resident_now_;
    ++rstats_.spectra_evicted;
    if (registry_ != nullptr) registry_->evict_resident(registry_key(wire, kind));
  }
}

EvalState::~EvalState() {
  // A completed evaluation has already evicted everything level by level;
  // an aborted one (noise veto, lane fault) must not leak registry entries.
  if (registry_ == nullptr || resident_now_ == 0) return;
  for (u32 id = 0; id < static_cast<u32>(graph_->size()); ++id) {
    evict(id, 0);
    evict(id, 1);
  }
}

void EvalState::enable_residency(const ssa::SsaParams& params,
                                 ssa::ConcurrentSpectrumCache* registry) {
  params_ = params;
  params_.validate();
  registry_ = registry;
  if (registry_ != nullptr) uid_ = g_resident_uid.fetch_add(1, std::memory_order_relaxed);
  residency_ = true;

  const u32 count = static_cast<u32>(graph_->size());
  folded_.assign(count, 0);
  needs_value_.assign(count, 0);

  // Static reduction-bound analysis. Every AND product's true convolution
  // coefficients stay below num_coeffs * (2^m - 1)^2 (< p by the for_bits
  // headroom); a fold's bound is the sum of its operands'. Folds whose
  // bound would reach p are demoted to eager here, up front, so the
  // runtime never needs a mid-level canonicalization flush -- and the
  // transform counts stay a deterministic function of the circuit.
  const u128 max_coeff = (u128{1} << params_.coeff_bits) - 1;
  const u128 and_bound = static_cast<u128>(params_.num_coeffs) * max_coeff * max_coeff;
  std::vector<u128> bound(count, 0);  // nonzero <=> the wire is in-domain
  for (u32 id = 0; id < count; ++id) {
    if (!live_[id]) continue;
    const Wire w{id};
    const GateOp op = graph_->op(w);
    if (op == GateOp::kAnd) {
      bound[id] = and_bound;
    } else if (op == GateOp::kXor) {
      const auto [a, b] = graph_->operands(w);
      if (bound[a.id] == 0 || bound[b.id] == 0) continue;
      if (bound[a.id] + bound[b.id] >= u128{fp::kModulus}) {
        ++rstats_.bound_flushes;
        continue;
      }
      bound[id] = bound[a.id] + bound[b.id];
      folded_[id] = 1;
    }
  }

  // Fold profitability relaxation. A fold pays one inverse iff the XOR's
  // value is consumed outside the domain; sweeping it eagerly instead pays
  // one inverse for every operand not already materialized for some other
  // consumer. Start from the maximal fold set and unfold while the trade
  // loses; unfolding only ever adds value consumers, so the iteration is
  // monotone, terminates, and is deterministic.
  std::vector<u32> value_consumers(count, 0);
  const auto recount = [&] {
    std::fill(value_consumers.begin(), value_consumers.end(), 0u);
    for (const Wire w : output_wires_) ++value_consumers[w.id];
    for (u32 id = 0; id < count; ++id) {
      if (!live_[id]) continue;
      const Wire w{id};
      const GateOp op = graph_->op(w);
      if (op == GateOp::kInput) continue;
      if (op == GateOp::kXor && folded_[id]) continue;  // consumes spectra
      const auto [a, b] = graph_->operands(w);
      ++value_consumers[a.id];
      ++value_consumers[b.id];
    }
  };
  bool changed = true;
  while (changed) {
    changed = false;
    recount();
    for (u32 id = 0; id < count; ++id) {
      if (!folded_[id]) continue;
      const auto [a, b] = graph_->operands(Wire{id});
      const bool a_in = graph_->op(a) == GateOp::kAnd || folded_[a.id];
      const bool b_in = graph_->op(b) == GateOp::kAnd || folded_[b.id];
      if (!a_in || !b_in) {  // an operand left the domain: forced unfold
        folded_[id] = 0;
        changed = true;
        continue;
      }
      if (value_consumers[id] > 0 && value_consumers[a.id] > 0 &&
          value_consumers[b.id] > 0) {
        folded_[id] = 0;  // every participant is materialized anyway
        changed = true;
      }
    }
  }
  recount();

  // Materialization needs + per-level eviction schedules (a spectrum dies
  // right after its last consuming wavefront, so single-use operands leave
  // the caches with the wavefront that consumed them).
  evict_operand_.assign(max_level_ + 1, {});
  evict_spectrum_.assign(max_level_ + 1, {});
  std::vector<unsigned> last_operand(count, 0);
  std::vector<unsigned> last_spectrum(count, 0);
  for (u32 id = 0; id < count; ++id) {
    if (!live_[id]) continue;
    const Wire w{id};
    needs_value_[id] = value_consumers[id] > 0 ? 1 : 0;
    const GateOp op = graph_->op(w);
    const unsigned level = graph_->level(w);
    if (op == GateOp::kAnd) {
      const auto [a, b] = graph_->operands(w);
      last_operand[a.id] = std::max(last_operand[a.id], level);
      last_operand[b.id] = std::max(last_operand[b.id], level);
      last_spectrum[id] = std::max(last_spectrum[id], level);
    } else if (op == GateOp::kXor && folded_[id]) {
      const auto [a, b] = graph_->operands(w);
      last_spectrum[a.id] = std::max(last_spectrum[a.id], level);
      last_spectrum[b.id] = std::max(last_spectrum[b.id], level);
      last_spectrum[id] = std::max(last_spectrum[id], level);
    }
  }
  for (u32 id = 0; id < count; ++id) {
    if (last_operand[id] > 0) evict_operand_[last_operand[id]].push_back(id);
    if (last_spectrum[id] > 0) evict_spectrum_[last_spectrum[id]].push_back(id);
  }
}

const bigint::BigUInt& EvalState::wire_value(u32 id) const { return values_[id].value; }

std::vector<u32> EvalState::spectrum_plan(unsigned level) const {
  std::vector<u32> plan;
  for (const u32 id : wavefront(level)) {
    const auto [a, b] = graph_->operands(Wire{id});
    for (const u32 operand : {a.id, b.id}) {
      if (resident_cache_.find_resident(local_key(operand, 0)) == nullptr) {
        plan.push_back(operand);
      }
    }
  }
  std::sort(plan.begin(), plan.end());
  plan.erase(std::unique(plan.begin(), plan.end()), plan.end());
  return plan;
}

void EvalState::install_operand_spectrum(u32 wire, ssa::SpectrumHandle spectrum) {
  ++rstats_.forward_transforms;
  publish(wire, 0, std::move(spectrum));
}

ssa::SpectrumHandle EvalState::operand_spectrum(u32 wire) const {
  const ssa::SpectrumHandle* handle = resident_cache_.find_resident(local_key(wire, 0));
  HEMUL_CHECK_MSG(handle != nullptr, "EvalState: missing operand spectrum");
  return *handle;
}

void EvalState::install_product(u32 id, ssa::SpectrumHandle spectrum) {
  ++rstats_.pointwise_products;
  publish(id, 1, std::move(spectrum));
}

void EvalState::fold_linear(unsigned level) {
  // Folds are O(N) vector additions -- noise next to a transform -- so the
  // coordinator runs them inline, in wire order (operands have lower ids,
  // so chained folds see their inputs already summed).
  const ssa::SpectrumDomain domain(params_, ssa::thread_workspace());
  for (u32 id = 0; id < static_cast<u32>(graph_->size()); ++id) {
    const Wire w{id};
    if (!live_[id] || !folded_[id] || graph_->level(w) != level) continue;
    const auto [a, b] = graph_->operands(w);
    auto sum = std::make_shared<ssa::ResidentSpectrum>();
    domain.accumulate(*sum, *wire_spectrum(a.id));
    domain.accumulate(*sum, *wire_spectrum(b.id));
    ++rstats_.domain_additions;
    publish(id, 1, std::move(sum));
  }
}

std::vector<u32> EvalState::materialize_plan(unsigned level) const {
  std::vector<u32> plan;
  for (u32 id = 0; id < static_cast<u32>(graph_->size()); ++id) {
    if (!live_[id] || !needs_value_[id]) continue;
    const Wire w{id};
    if (graph_->level(w) != level) continue;
    const GateOp op = graph_->op(w);
    if (op == GateOp::kAnd || (op == GateOp::kXor && folded_[id])) plan.push_back(id);
  }
  return plan;
}

ssa::SpectrumHandle EvalState::wire_spectrum(u32 id) const {
  const ssa::SpectrumHandle* handle = resident_cache_.find_resident(local_key(id, 1));
  HEMUL_CHECK_MSG(handle != nullptr, "EvalState: missing product spectrum");
  return *handle;
}

void EvalState::apply_materialized(u32 id, bigint::BigUInt raw) {
  ++rstats_.inverse_transforms;
  values_[id] = {std::move(raw) % graph_->scheme().public_key().x0,
                 graph_->predicted_noise_bits(Wire{id})};
}

void EvalState::evict_spent_spectra(unsigned level) {
  if (level >= evict_operand_.size()) return;
  for (const u32 id : evict_operand_[level]) evict(id, 0);
  for (const u32 id : evict_spectrum_[level]) evict(id, 1);
}

// --- Evaluator -------------------------------------------------------------

std::vector<Ciphertext> Evaluator::evaluate(const Graph& graph,
                                            std::span<const Wire> outputs,
                                            EvalReport* report,
                                            const EvalOptions& options) {
  const Dghv& scheme = graph.scheme();
  EvalState state(graph, outputs);

  const double budget = NoiseModel::budget_bits(scheme.params());
  const bool decryptable = state.decryptable();
  if (options.check_noise && !decryptable) {
    const Wire worst = state.worst_wire();
    throw NoiseBudgetError(
        "Evaluator: predicted noise " + format_bits(state.max_noise_bits()) + " bits at depth " +
            std::to_string(graph.level(worst)) + " exceeds the decryptability budget " +
            format_bits(budget) + " bits (eta - 2); refusing to execute",
        worst, graph.level(worst), state.max_noise_bits(), budget);
  }

  if (report != nullptr) {
    *report = EvalReport{};
    report->nodes = graph.size();
    report->live_nodes = state.live_nodes();
    report->dead_nodes = graph.size() - state.live_nodes();
    report->xor_gates = state.live_xor_gates();
    report->levels = state.max_level();
    report->max_noise_bits = state.max_noise_bits();
    report->decryptable = decryptable;
    report->wavefronts.reserve(state.max_level());
  }

  std::shared_ptr<backend::MultiplierBackend> engine = engine_;
  if (scheduler_ == nullptr && engine == nullptr) engine = scheme.engine();

  // Spectrum residency: when every execution lane speaks spectrum handles
  // (the software SSA engine), wires stay in the NTT domain across levels
  // -- one forward per distinct operand wire, one pointwise product per
  // AND, XOR folds as pointwise additions, one inverse only per wire whose
  // value is consumed outside the domain. Any other engine (hw model,
  // classical bigint, injected test backends) keeps the eager protocol.
  backend::SsaBackend* resident_engine =
      engine != nullptr ? dynamic_cast<backend::SsaBackend*>(engine.get()) : nullptr;
  const bool resident =
      scheduler_ != nullptr ? scheduler_->lanes_support_spectra() : resident_engine != nullptr;
  if (resident) {
    state.enable_residency(ssa::SsaParams::for_bits(scheme.public_key().x0.bit_length(),
                                                    ssa::kResidentHeadroomBits),
                           scheduler_ != nullptr ? &scheduler_->spectrum_cache() : nullptr);
  }
  if (report != nullptr) report->spectrum_resident = resident;

  for (unsigned level = 1; level <= state.max_level(); ++level) {
    const std::vector<u32>& gates = state.wavefront(level);
    WavefrontStats wf;
    wf.level = level;
    wf.and_gates = gates.size();

    const auto t0 = Clock::now();
    if (resident) {
      const ResidencyStats before_r = state.residency_stats();
      const bool collect_stats = report != nullptr && scheduler_ != nullptr;
      core::SchedulerStats before;
      if (collect_stats) before = scheduler_->stats();
      const ssa::SsaParams& params = state.spectrum_params();

      // Phase 1: forward transforms of operand wires new to the domain.
      const std::vector<u32> forwards = state.spectrum_plan(level);
      if (scheduler_ != nullptr) {
        std::vector<std::future<ssa::SpectrumHandle>> futures;
        futures.reserve(forwards.size());
        for (const u32 w : forwards) {
          futures.push_back(scheduler_->submit_spectrum_forward(state.wire_value(w), params));
        }
        for (std::size_t k = 0; k < forwards.size(); ++k) {
          state.install_operand_spectrum(forwards[k], futures[k].get());
        }
      } else {
        for (const u32 w : forwards) {
          state.install_operand_spectrum(
              w, resident_engine->forward_spectrum(state.wire_value(w), params));
        }
      }

      // Phase 2: every AND of the wavefront as one pointwise product.
      if (scheduler_ != nullptr) {
        std::vector<std::future<ssa::SpectrumHandle>> futures;
        futures.reserve(gates.size());
        for (const u32 id : gates) {
          const auto [a, b] = graph.operands(Wire{id});
          futures.push_back(scheduler_->submit_spectrum_multiply(
              state.operand_spectrum(a.id), state.operand_spectrum(b.id), params));
        }
        for (std::size_t k = 0; k < gates.size(); ++k) {
          state.install_product(gates[k], futures[k].get());
        }
      } else {
        for (const u32 id : gates) {
          const auto [a, b] = graph.operands(Wire{id});
          state.install_product(id, resident_engine->multiply_spectra(
                                        state.operand_spectrum(a.id),
                                        state.operand_spectrum(b.id), params));
        }
      }

      // Phase 3: XOR folds stay in the domain (coordinator-side O(N) adds).
      state.fold_linear(level);

      // Phase 4: one inverse per wire actually leaving the domain.
      const std::vector<u32> leaves = state.materialize_plan(level);
      if (scheduler_ != nullptr) {
        std::vector<std::future<bigint::BigUInt>> futures;
        futures.reserve(leaves.size());
        for (const u32 id : leaves) {
          futures.push_back(
              scheduler_->submit_spectrum_materialize(state.wire_spectrum(id), params));
        }
        for (std::size_t k = 0; k < leaves.size(); ++k) {
          state.apply_materialized(leaves[k], futures[k].get());
        }
      } else {
        for (const u32 id : leaves) {
          state.apply_materialized(
              id, resident_engine->materialize_spectrum(*state.wire_spectrum(id), params));
        }
      }

      state.sweep_linear(level);
      state.evict_spent_spectra(level);
      wf.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

      if (report != nullptr) {
        const ResidencyStats& after_r = state.residency_stats();
        wf.spectra_cached = after_r.forward_transforms - before_r.forward_transforms;
        wf.inverses_paid = after_r.inverse_transforms - before_r.inverse_transforms;
        wf.folds = after_r.domain_additions - before_r.domain_additions;
        // Residency's cache semantics: a "miss" enters a spectrum, a "hit"
        // re-consumes a resident one (each gate touches two operands).
        wf.cache_misses = wf.spectra_cached;
        wf.cache_hits = 2 * wf.and_gates - std::min<u64>(wf.spectra_cached, 2 * wf.and_gates);
        wf.transforms_avoided = static_cast<i64>(3 * wf.and_gates) -
                                static_cast<i64>(wf.spectra_cached + wf.inverses_paid);
        wf.lanes_used = gates.empty() && forwards.empty() && leaves.empty() ? 0 : 1;
        if (collect_stats) {
          scheduler_->wait_idle();
          const core::SchedulerStats after = scheduler_->stats();
          wf.lanes_used = 0;
          for (std::size_t lane = 0; lane < after.lanes.size(); ++lane) {
            const u64 jobs_before = lane < before.lanes.size() ? before.lanes[lane].jobs : 0;
            if (after.lanes[lane].jobs > jobs_before) ++wf.lanes_used;
          }
        }
        report->and_gates += wf.and_gates;
        report->wavefronts.push_back(std::move(wf));
      }
      continue;
    }
    std::vector<bigint::BigUInt> products;
    if (scheduler_ != nullptr) {
      // Per-wavefront lane/cache numbers are before/after deltas of the
      // scheduler-wide stats, and lane stats are booked only after each
      // future is satisfied (so the delta needs a wait_idle). Both are
      // observability-only: collect them just when a report was asked for,
      // so reportless evaluation never blocks on (or misattributes) work
      // other threads may be running on a shared scheduler. Per-wavefront
      // stats are accurate only when the scheduler is not shared
      // concurrently during the evaluation.
      const bool collect_stats = report != nullptr;
      core::SchedulerStats before;
      if (collect_stats) before = scheduler_->stats();
      // Submit per gate (no intermediate MulJob vector): each queued job
      // holds the only extra copy of its operand pair.
      std::vector<std::future<bigint::BigUInt>> futures;
      futures.reserve(gates.size());
      for (const u32 id : gates) {
        backend::MulJob job = state.gate_job(id);
        futures.push_back(scheduler_->submit_multiply(std::move(job.first), std::move(job.second)));
      }
      products.reserve(futures.size());
      for (auto& future : futures) products.push_back(future.get());
      if (collect_stats) {
        scheduler_->wait_idle();
        const core::SchedulerStats after = scheduler_->stats();
        wf.cache_hits = after.cache.hits - before.cache.hits;
        wf.cache_misses = after.cache.misses - before.cache.misses;
        wf.batch.jobs = gates.size();
        wf.batch.spectrum_cache_hits = wf.cache_hits;
        for (std::size_t lane = 0; lane < after.lanes.size(); ++lane) {
          const u64 jobs_before = lane < before.lanes.size() ? before.lanes[lane].jobs : 0;
          if (after.lanes[lane].jobs > jobs_before) ++wf.lanes_used;
          wf.batch.total_cycles +=
              after.lanes[lane].hw_cycles -
              (lane < before.lanes.size() ? before.lanes[lane].hw_cycles : 0);
        }
      }
    } else {
      std::vector<backend::MulJob> jobs;
      jobs.reserve(gates.size());
      for (const u32 id : gates) jobs.push_back(state.gate_job(id));
      products = engine->multiply_batch(jobs, &wf.batch);
      wf.cache_hits = wf.batch.spectrum_cache_hits;
      wf.cache_misses = wf.batch.forward_transforms;
      wf.lanes_used = gates.empty() ? 0 : 1;
    }
    wf.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

    for (std::size_t k = 0; k < gates.size(); ++k) {
      state.apply_product(gates[k], std::move(products[k]));
    }
    state.sweep_linear(level);

    if (report != nullptr) {
      report->and_gates += wf.and_gates;
      report->wavefronts.push_back(std::move(wf));
    }
  }

  if (report != nullptr && resident) report->residency = state.residency_stats();

  return state.outputs();
}

}  // namespace hemul::fhe
