#include "fhe/noise.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace hemul::fhe {

namespace {

/// Gate builders for the lowering templates that track an analytic wire
/// annotation instead of a ciphertext: AND-depth and modeled noise evolve
/// by the same rules Graph::record applies, so simulating a lowering
/// predicts exactly what recording it would annotate.
struct DepthSim {
  using WireType = unsigned;
  unsigned gate_xor(unsigned a, unsigned b) const { return std::max(a, b); }
  unsigned gate_and(unsigned a, unsigned b) const { return std::max(a, b) + 1; }
};

struct NoiseSim {
  using WireType = double;
  double gate_xor(double a, double b) const { return NoiseModel::after_add(a, b); }
  double gate_and(double a, double b) const { return NoiseModel::after_mult(a, b); }
};

/// Runs one word op through the lowering templates over any annotation
/// builder; returns the worst (max) output annotation. `fresh` is the
/// annotation of an input wire (0 depth, fresh noise).
template <class B>
typename B::WireType simulate_word_op(B sim, WordOp op, unsigned width,
                                      typename B::WireType fresh,
                                      LoweringOptions options) {
  HEMUL_CHECK_MSG(width >= 1, "word ops need at least one bit");
  using W = typename B::WireType;
  const std::vector<W> a(width, fresh);
  const std::vector<W> b(width, fresh);
  const W zero = fresh;  // constants are encrypted server-side: fresh too
  const W one = fresh;
  std::vector<W> outs;
  switch (op) {
    case WordOp::kAnd:
      outs = {sim.gate_and(fresh, fresh)};
      break;
    case WordOp::kAdd: {
      lowering::AddOut<B> r = lowering::lower_add(sim, std::span<const W>(a),
                                                  std::span<const W>(b), zero, options);
      outs = std::move(r.sum);
      outs.push_back(r.carry_out);
      break;
    }
    case WordOp::kEquals:
      outs = {lowering::lower_equals(sim, std::span<const W>(a), std::span<const W>(b),
                                     one, options)};
      break;
    case WordOp::kMultiply:
      outs = lowering::lower_multiply(sim, std::span<const W>(a), std::span<const W>(b),
                                      zero, options);
      break;
    case WordOp::kMux:
      outs = lowering::lower_mux(sim, fresh, std::span<const W>(a), std::span<const W>(b));
      break;
    case WordOp::kLessThan:
      outs = {lowering::lower_less_than(sim, std::span<const W>(a), std::span<const W>(b),
                                        zero, one, options)};
      break;
  }
  W worst = outs.front();
  for (const W& out : outs) worst = std::max(worst, out);
  return worst;
}

}  // namespace

double NoiseModel::after_add(double a, double b) noexcept { return std::max(a, b) + 1.0; }

double NoiseModel::after_mult(double a, double b) noexcept { return a + b + 1.0; }

unsigned NoiseModel::max_mult_depth(const DghvParams& params) noexcept {
  double noise = fresh(params);
  unsigned depth = 0;
  while (true) {
    const double next = after_mult(noise, noise);
    if (!decryptable(params, next)) break;
    noise = next;
    ++depth;
  }
  return depth;
}

unsigned NoiseModel::predicted_depth(WordOp op, unsigned width, LoweringOptions lowering) {
  return simulate_word_op(DepthSim{}, op, width, 0u, lowering);
}

double NoiseModel::predicted_noise_bits(WordOp op, unsigned width,
                                        const DghvParams& params,
                                        LoweringOptions lowering) {
  return simulate_word_op(NoiseSim{}, op, width, fresh(params), lowering);
}

}  // namespace hemul::fhe
