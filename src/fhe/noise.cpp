#include "fhe/noise.hpp"

#include <algorithm>
#include <cmath>

namespace hemul::fhe {

double NoiseModel::after_add(double a, double b) noexcept { return std::max(a, b) + 1.0; }

double NoiseModel::after_mult(double a, double b) noexcept { return a + b + 1.0; }

unsigned NoiseModel::max_mult_depth(const DghvParams& params) noexcept {
  double noise = fresh(params);
  unsigned depth = 0;
  while (true) {
    const double next = after_mult(noise, noise);
    if (!decryptable(params, next)) break;
    noise = next;
    ++depth;
  }
  return depth;
}

}  // namespace hemul::fhe
