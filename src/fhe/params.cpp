#include "fhe/params.hpp"

#include <cmath>
#include <stdexcept>

namespace hemul::fhe {

DghvParams DghvParams::toy() {
  DghvParams p;
  p.lambda = 8;
  p.rho = 8;
  p.eta = 128;
  p.gamma = 4096;
  p.tau = 24;
  return p;
}

DghvParams DghvParams::small_paper() {
  DghvParams p;
  p.lambda = 42;
  p.rho = 41;
  p.eta = 1558;
  p.gamma = 786432;
  p.tau = 572;
  return p;
}

DghvParams DghvParams::medium() {
  DghvParams p;
  p.lambda = 16;
  p.rho = 16;
  p.eta = 512;
  p.gamma = 65536;
  p.tau = 64;
  return p;
}

DghvParams DghvParams::deep() {
  DghvParams p;
  p.lambda = 8;
  p.rho = 8;
  p.eta = 8192;
  p.gamma = 32768;
  p.tau = 16;
  return p;
}

void DghvParams::validate() const {
  if (tau == 0) throw std::invalid_argument("DghvParams: tau must be >= 1");
  if (rho == 0 || eta == 0 || gamma == 0) {
    throw std::invalid_argument("DghvParams: rho, eta, gamma must be positive");
  }
  if (eta >= gamma) throw std::invalid_argument("DghvParams: need eta < gamma");
  if (rho + 32 >= eta) {
    throw std::invalid_argument("DghvParams: need rho << eta for a usable noise budget");
  }
}

double DghvParams::fresh_noise_bits() const noexcept {
  // m + 2r + 2 * sum_{i in S} 2r_i with |S| <= tau:
  // bounded by 2^(rho+2) * (tau + 1).
  return static_cast<double>(rho) + 2.0 + std::log2(static_cast<double>(tau) + 1.0);
}

}  // namespace hemul::fhe
