#pragma once

#include "fhe/lowering.hpp"
#include "fhe/params.hpp"

namespace hemul::fhe {

/// Analytic noise-growth tracking for DGHV ciphertexts (bits of the
/// residue modulo the secret key). Decryption stays correct while the
/// noise fits the secret key with margin; the homomorphic-depth tests
/// assert the model against actual decryptions.
struct NoiseModel {
  /// Noise of a fresh encryption.
  static double fresh(const DghvParams& params) noexcept {
    return params.fresh_noise_bits();
  }

  /// c1 + c2: residues add (one bit of growth).
  static double after_add(double a, double b) noexcept;

  /// c1 * c2: residues multiply (noises add in bits, plus one).
  static double after_mult(double a, double b) noexcept;

  /// The decryptability budget in bits: correct decryption needs the
  /// residue below p/2 with margin, i.e. noise < eta - 2.
  static double budget_bits(const DghvParams& params) noexcept {
    return static_cast<double>(params.eta) - 2.0;
  }

  /// Correct decryption needs noise < eta - 2 bits (residue below p/2).
  static bool decryptable(const DghvParams& params, double noise_bits) noexcept {
    return noise_bits < budget_bits(params);
  }

  /// Multiplicative depth supported for fresh inputs under this model.
  static unsigned max_mult_depth(const DghvParams& params) noexcept;

  /// AND-depth of a word op on `width`-bit operands under the given
  /// lowering, computed by running the very lowering templates the Graph
  /// records through -- the prediction and the recorded circuit cannot
  /// diverge. Deterministic (no ciphertexts involved).
  static unsigned predicted_depth(WordOp op, unsigned width, LoweringOptions lowering);

  /// Worst output noise (in bits) of a word op on fresh encryptions of
  /// `params`, through the same lowering templates. Compare against
  /// budget_bits() to see the veto margin before recording anything.
  static double predicted_noise_bits(WordOp op, unsigned width,
                                     const DghvParams& params, LoweringOptions lowering);
};

}  // namespace hemul::fhe
