#include "fhe/graph.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace hemul::fhe {

const Graph::Node& Graph::node(Wire w) const {
  HEMUL_CHECK_MSG(w.valid() && w.id < nodes_.size(), "Graph: wire from another graph");
  return nodes_[w.id];
}

Wire Graph::input(Ciphertext c) {
  Node n;
  n.op = GateOp::kInput;
  n.noise_bits = c.noise_bits;
  n.value = std::move(c);
  nodes_.push_back(std::move(n));
  return {static_cast<u32>(nodes_.size() - 1)};
}

std::vector<Wire> Graph::inputs(std::span<const Ciphertext> bits) {
  std::vector<Wire> wires;
  wires.reserve(bits.size());
  for (const Ciphertext& bit : bits) wires.push_back(input(bit));
  return wires;
}

Wire Graph::record(GateOp op, Wire a, Wire b) {
  const Node& na = node(a);
  const Node& nb = node(b);

  // AND and XOR are commutative: canonicalize the operand order so the
  // hash-cons key is orientation-independent.
  u32 lo = a.id;
  u32 hi = b.id;
  if (lo > hi) std::swap(lo, hi);
  // Node ids stay below 2^31 in practice (a graph that large would not
  // evaluate anyway); pack (op, lo, hi) into one 64-bit key.
  const u64 key = (static_cast<u64>(op) << 62) | (static_cast<u64>(lo) << 31) | hi;
  if (const auto it = cse_.find(key); it != cse_.end()) return {it->second};

  Node n;
  n.op = op;
  n.a = lo;
  n.b = hi;
  if (op == GateOp::kAnd) {
    n.level = std::max(na.level, nb.level) + 1;
    n.noise_bits = NoiseModel::after_mult(na.noise_bits, nb.noise_bits);
    ++and_gates_;
  } else {
    n.level = std::max(na.level, nb.level);
    n.noise_bits = NoiseModel::after_add(na.noise_bits, nb.noise_bits);
  }
  nodes_.push_back(std::move(n));
  const u32 id = static_cast<u32>(nodes_.size() - 1);
  cse_.emplace(key, id);
  return {id};
}

Wire Graph::gate_xor(Wire a, Wire b) { return record(GateOp::kXor, a, b); }

Wire Graph::gate_and(Wire a, Wire b) { return record(GateOp::kAnd, a, b); }

Wire Graph::gate_or(Wire a, Wire b) {
  return gate_xor(gate_xor(a, b), gate_and(a, b));
}

Wire Graph::gate_not(Wire a, Wire one) { return gate_xor(a, one); }

Wire Graph::gate_maj(Wire a, Wire b, Wire c) { return lowering::majority(*this, a, b, c); }

Graph::AddResult Graph::add(std::span<const Wire> a, std::span<const Wire> b, Wire zero) {
  return add(a, b, zero, lowering_);
}

Graph::AddResult Graph::add(std::span<const Wire> a, std::span<const Wire> b, Wire zero,
                            LoweringOptions options) {
  lowering::AddOut<Graph> out = lowering::lower_add(*this, a, b, zero, options);
  return {std::move(out.sum), out.carry_out};
}

Wire Graph::equals(std::span<const Wire> a, std::span<const Wire> b, Wire one) {
  return equals(a, b, one, lowering_);
}

Wire Graph::equals(std::span<const Wire> a, std::span<const Wire> b, Wire one,
                   LoweringOptions options) {
  return lowering::lower_equals(*this, a, b, one, options);
}

std::vector<Wire> Graph::multiply(std::span<const Wire> a, std::span<const Wire> b,
                                  Wire zero) {
  return multiply(a, b, zero, lowering_);
}

std::vector<Wire> Graph::multiply(std::span<const Wire> a, std::span<const Wire> b,
                                  Wire zero, LoweringOptions options) {
  return lowering::lower_multiply(*this, a, b, zero, options);
}

std::vector<Wire> Graph::mux(Wire select, std::span<const Wire> when_true,
                             std::span<const Wire> when_false) {
  return lowering::lower_mux(*this, select, when_true, when_false);
}

Wire Graph::less_than(std::span<const Wire> a, std::span<const Wire> b, Wire zero,
                      Wire one) {
  return less_than(a, b, zero, one, lowering_);
}

Wire Graph::less_than(std::span<const Wire> a, std::span<const Wire> b, Wire zero,
                      Wire one, LoweringOptions options) {
  return lowering::lower_less_than(*this, a, b, zero, one, options);
}

unsigned Graph::level(Wire w) const { return node(w).level; }

GateOp Graph::op(Wire w) const { return node(w).op; }

std::pair<Wire, Wire> Graph::operands(Wire w) const {
  const Node& n = node(w);
  return {Wire{n.a}, Wire{n.b}};
}

const Ciphertext& Graph::input_value(Wire w) const {
  const Node& n = node(w);
  HEMUL_CHECK_MSG(n.op == GateOp::kInput, "Graph: input_value on a gate wire");
  return n.value;
}

double Graph::predicted_noise_bits(Wire w) const { return node(w).noise_bits; }

bool Graph::predicted_decryptable(Wire w) const {
  return NoiseModel::decryptable(scheme_->params(), node(w).noise_bits);
}

}  // namespace hemul::fhe
