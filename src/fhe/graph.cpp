#include "fhe/graph.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace hemul::fhe {

const Graph::Node& Graph::node(Wire w) const {
  HEMUL_CHECK_MSG(w.valid() && w.id < nodes_.size(), "Graph: wire from another graph");
  return nodes_[w.id];
}

Wire Graph::input(Ciphertext c) {
  Node n;
  n.op = GateOp::kInput;
  n.noise_bits = c.noise_bits;
  n.value = std::move(c);
  nodes_.push_back(std::move(n));
  return {static_cast<u32>(nodes_.size() - 1)};
}

std::vector<Wire> Graph::inputs(std::span<const Ciphertext> bits) {
  std::vector<Wire> wires;
  wires.reserve(bits.size());
  for (const Ciphertext& bit : bits) wires.push_back(input(bit));
  return wires;
}

Wire Graph::record(GateOp op, Wire a, Wire b) {
  const Node& na = node(a);
  const Node& nb = node(b);

  // AND and XOR are commutative: canonicalize the operand order so the
  // hash-cons key is orientation-independent.
  u32 lo = a.id;
  u32 hi = b.id;
  if (lo > hi) std::swap(lo, hi);
  // Node ids stay below 2^31 in practice (a graph that large would not
  // evaluate anyway); pack (op, lo, hi) into one 64-bit key.
  const u64 key = (static_cast<u64>(op) << 62) | (static_cast<u64>(lo) << 31) | hi;
  if (const auto it = cse_.find(key); it != cse_.end()) return {it->second};

  Node n;
  n.op = op;
  n.a = lo;
  n.b = hi;
  if (op == GateOp::kAnd) {
    n.level = std::max(na.level, nb.level) + 1;
    n.noise_bits = NoiseModel::after_mult(na.noise_bits, nb.noise_bits);
    ++and_gates_;
  } else {
    n.level = std::max(na.level, nb.level);
    n.noise_bits = NoiseModel::after_add(na.noise_bits, nb.noise_bits);
  }
  nodes_.push_back(std::move(n));
  const u32 id = static_cast<u32>(nodes_.size() - 1);
  cse_.emplace(key, id);
  return {id};
}

Wire Graph::gate_xor(Wire a, Wire b) { return record(GateOp::kXor, a, b); }

Wire Graph::gate_and(Wire a, Wire b) { return record(GateOp::kAnd, a, b); }

Wire Graph::gate_or(Wire a, Wire b) {
  return gate_xor(gate_xor(a, b), gate_and(a, b));
}

Wire Graph::gate_not(Wire a, Wire one) { return gate_xor(a, one); }

Wire Graph::gate_maj(Wire a, Wire b, Wire c) {
  const Wire ab = gate_and(a, b);
  const Wire bc = gate_and(b, c);
  const Wire ca = gate_and(c, a);
  return gate_xor(gate_xor(ab, bc), ca);
}

Graph::AddResult Graph::add(std::span<const Wire> a, std::span<const Wire> b, Wire zero) {
  HEMUL_CHECK_MSG(a.size() == b.size(), "adder inputs must have equal width");
  AddResult result;
  result.sum.reserve(a.size());
  Wire carry = zero;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // sum_i = a ^ b ^ c; carry' = (a^b)c ^ ab (two AND nodes) -- the same
    // construction as the eager Circuits adder, so results are bit-exact.
    const Wire axb = gate_xor(a[i], b[i]);
    result.sum.push_back(gate_xor(axb, carry));
    carry = gate_xor(gate_and(axb, carry), gate_and(a[i], b[i]));
  }
  result.carry_out = carry;
  return result;
}

Wire Graph::equals(std::span<const Wire> a, std::span<const Wire> b, Wire one) {
  HEMUL_CHECK_MSG(a.size() == b.size(), "comparator inputs must have equal width");
  HEMUL_CHECK_MSG(!a.empty(), "comparator needs at least one bit");
  Wire acc = one;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // XNOR = a ^ b ^ 1, then AND-accumulate.
    const Wire same = gate_xor(gate_xor(a[i], b[i]), one);
    acc = gate_and(acc, same);
  }
  return acc;
}

std::vector<Wire> Graph::multiply(std::span<const Wire> a, std::span<const Wire> b,
                                  Wire zero) {
  HEMUL_CHECK_MSG(!a.empty() && !b.empty(), "multiplier needs nonempty inputs");
  const std::size_t out_width = a.size() + b.size();

  // The partial-product matrix: every and(a[i], b[j]) is depth 1, so the
  // whole matrix is one wavefront for the Evaluator regardless of how the
  // rows are accumulated below.
  std::vector<std::vector<Wire>> rows(b.size());
  for (std::size_t j = 0; j < b.size(); ++j) {
    rows[j].reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) rows[j].push_back(gate_and(a[i], b[j]));
  }

  std::vector<Wire> acc(out_width, zero);
  for (std::size_t j = 0; j < b.size(); ++j) {
    // Row j: (a AND b[j]) shifted by j, ripple-added into the accumulator.
    std::vector<Wire> row(out_width, zero);
    for (std::size_t i = 0; i < a.size(); ++i) row[i + j] = rows[j][i];
    AddResult added = add(acc, row, zero);
    acc = std::move(added.sum);  // carry_out is dead: out_width fits the product
  }
  return acc;
}

std::vector<Wire> Graph::mux(Wire select, std::span<const Wire> when_true,
                             std::span<const Wire> when_false) {
  HEMUL_CHECK_MSG(when_true.size() == when_false.size(),
                  "mux inputs must have equal width");
  std::vector<Wire> out;
  out.reserve(when_true.size());
  for (std::size_t i = 0; i < when_true.size(); ++i) {
    out.push_back(gate_xor(when_false[i],
                           gate_and(select, gate_xor(when_true[i], when_false[i]))));
  }
  return out;
}

Wire Graph::less_than(std::span<const Wire> a, std::span<const Wire> b, Wire zero,
                      Wire one) {
  HEMUL_CHECK_MSG(a.size() == b.size(), "comparator inputs must have equal width");
  HEMUL_CHECK_MSG(!a.empty(), "comparator needs at least one bit");
  // Ripple borrow of a - b, LSB first: borrow' = maj(not a_i, b_i, borrow).
  Wire borrow = zero;
  for (std::size_t i = 0; i < a.size(); ++i) {
    borrow = gate_maj(gate_not(a[i], one), b[i], borrow);
  }
  return borrow;  // borrow out of the MSB <=> a < b
}

unsigned Graph::level(Wire w) const { return node(w).level; }

GateOp Graph::op(Wire w) const { return node(w).op; }

std::pair<Wire, Wire> Graph::operands(Wire w) const {
  const Node& n = node(w);
  return {Wire{n.a}, Wire{n.b}};
}

const Ciphertext& Graph::input_value(Wire w) const {
  const Node& n = node(w);
  HEMUL_CHECK_MSG(n.op == GateOp::kInput, "Graph: input_value on a gate wire");
  return n.value;
}

double Graph::predicted_noise_bits(Wire w) const { return node(w).noise_bits; }

bool Graph::predicted_decryptable(Wire w) const {
  return NoiseModel::decryptable(scheme_->params(), node(w).noise_bits);
}

}  // namespace hemul::fhe
