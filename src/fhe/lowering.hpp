#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.hpp"
#include "util/uint128.hpp"

namespace hemul::fhe {

/// How the word-level circuits (add / multiply / less_than / equals) are
/// lowered to XOR/AND gates.
///
///   kRippleCarry -- the classic serial chains: O(width) AND-depth, the
///     fewest gates. Right when the noise budget is ample and the
///     evaluator runs few lanes.
///   kCarrySave -- Wallace 3:2-compressor trees plus one Sklansky
///     parallel-prefix carry resolve: O(log width) AND-depth at a modest
///     gate overhead. Deep circuits clear the decryptability veto that
///     rejects their ripple form, and every wavefront carries more
///     independent ANDs for the scheduler to batch.
enum class LoweringStrategy : u8 {
  kRippleCarry = 0,
  kCarrySave = 1,
};

/// The one public lowering knob, threaded as a Graph/Circuits-level
/// default and overridable per word-op call.
struct LoweringOptions {
  LoweringStrategy strategy = LoweringStrategy::kRippleCarry;

  friend bool operator==(const LoweringOptions&, const LoweringOptions&) = default;
};

/// Registry-style name of a strategy ("ripple", "carry-save").
[[nodiscard]] constexpr std::string_view lowering_strategy_name(
    LoweringStrategy strategy) noexcept {
  switch (strategy) {
    case LoweringStrategy::kRippleCarry: return "ripple";
    case LoweringStrategy::kCarrySave: return "carry-save";
  }
  return "?";
}

/// Inverse of lowering_strategy_name; throws std::invalid_argument on an
/// unknown name.
[[nodiscard]] inline LoweringStrategy lowering_strategy_from_name(std::string_view name) {
  for (const LoweringStrategy strategy :
       {LoweringStrategy::kRippleCarry, LoweringStrategy::kCarrySave}) {
    if (name == lowering_strategy_name(strategy)) return strategy;
  }
  throw std::invalid_argument("unknown lowering strategy: " + std::string(name) +
                              " (expected ripple or carry-save)");
}

/// Word ops the depth/noise predictors can be asked about.
enum class WordOp : u8 { kAnd, kAdd, kEquals, kMultiply, kMux, kLessThan };

namespace lowering {

/// The lowering templates are written once against a *gate builder* and
/// instantiated for every consumer, so the gate structure of a strategy
/// cannot diverge between them:
///   - fhe::Graph          (WireType = Wire)     -- lazy recording
///   - the eager adapter in circuits.cpp         -- ciphertext-at-a-time
///   - DepthSim / NoiseSim in noise.cpp          -- analytic prediction
///   - PlainBuilder in the tests                 -- plaintext reference
/// A builder provides:
///   using WireType = ...;
///   WireType gate_xor(const WireType&, const WireType&);
///   WireType gate_and(const WireType&, const WireType&);
template <class B>
using WireOf = typename B::WireType;

template <class B>
struct Compressed {
  WireOf<B> sum;
  WireOf<B> carry;
};

template <class B>
struct AddOut {
  std::vector<WireOf<B>> sum;
  WireOf<B> carry_out;
};

/// 3:2 compressor (full adder): sum = a^b^c, carry = (a^b)c ^ ab.
/// Two AND gates, one level of AND-depth on the carry.
template <class B>
Compressed<B> compress_3_2(B& g, const WireOf<B>& a, const WireOf<B>& b,
                           const WireOf<B>& c) {
  const WireOf<B> axb = g.gate_xor(a, b);
  return {g.gate_xor(axb, c), g.gate_xor(g.gate_and(axb, c), g.gate_and(a, b))};
}

/// 2:2 compressor (half adder): sum = a^b, carry = ab. One AND gate.
template <class B>
Compressed<B> compress_2_2(B& g, const WireOf<B>& a, const WireOf<B>& b) {
  return {g.gate_xor(a, b), g.gate_and(a, b)};
}

/// 2-of-3 majority, ab ^ bc ^ ca -- the borrow step of the ripple
/// comparator (three AND gates, shared via CSE where pairs recur).
template <class B>
WireOf<B> majority(B& g, const WireOf<B>& a, const WireOf<B>& b, const WireOf<B>& c) {
  const WireOf<B> ab = g.gate_and(a, b);
  const WireOf<B> bc = g.gate_and(b, c);
  const WireOf<B> ca = g.gate_and(c, a);
  return g.gate_xor(g.gate_xor(ab, bc), ca);
}

/// Ripple-carry addition: bit i of the sum lands at AND-depth i+1, two
/// AND gates per bit.
template <class B>
AddOut<B> ripple_add(B& g, std::span<const WireOf<B>> a, std::span<const WireOf<B>> b,
                     const WireOf<B>& zero) {
  AddOut<B> result;
  result.sum.reserve(a.size());
  WireOf<B> carry = zero;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // sum_i = a ^ b ^ c; carry' = (a^b)c ^ ab (two AND nodes).
    const WireOf<B> axb = g.gate_xor(a[i], b[i]);
    result.sum.push_back(g.gate_xor(axb, carry));
    carry = g.gate_xor(g.gate_and(axb, carry), g.gate_and(a[i], b[i]));
  }
  result.carry_out = carry;
  return result;
}

/// Sklansky parallel-prefix addition with a zero carry-in: per-bit
/// generate g_i = a_i b_i and propagate p_i = a_i ^ b_i, then ceil(log2 w)
/// combine rounds (G, P) o (G', P') = (G ^ P G', P P'), so every sum bit
/// resolves at AND-depth 1 + ceil(log2 w) instead of depth i+1.
///
/// G and P G' are never 1 together (a range that propagates everywhere
/// generates nowhere), so the boolean OR of the carry recurrence is an
/// XOR -- exactly the gate the scheme evaluates for free.
template <class B>
AddOut<B> prefix_add(B& g, std::span<const WireOf<B>> a, std::span<const WireOf<B>> b) {
  const std::size_t w = a.size();
  HEMUL_CHECK_MSG(w > 0, "prefix adder needs at least one bit");
  std::vector<WireOf<B>> gen, prop;
  gen.reserve(w);
  prop.reserve(w);
  for (std::size_t i = 0; i < w; ++i) {
    gen.push_back(g.gate_and(a[i], b[i]));
    prop.push_back(g.gate_xor(a[i], b[i]));
  }
  const std::vector<WireOf<B>> psum = prop;  // pre-prefix propagate = raw sum bits

  for (std::size_t k = 0; (std::size_t{1} << k) < w; ++k) {
    // Round k folds block m = [.., i - 2^k] into every i with bit k set;
    // sources have bit k clear, so in-place updates never alias.
    for (std::size_t i = 0; i < w; ++i) {
      if (((i >> k) & 1u) == 0) continue;
      const std::size_t m = ((i >> k) << k) - 1;
      gen[i] = g.gate_xor(gen[i], g.gate_and(prop[i], gen[m]));
      prop[i] = g.gate_and(prop[i], prop[m]);
    }
  }

  AddOut<B> result;
  result.sum.reserve(w);
  result.sum.push_back(psum[0]);  // carry-in is zero
  for (std::size_t i = 1; i < w; ++i) {
    result.sum.push_back(g.gate_xor(psum[i], gen[i - 1]));
  }
  result.carry_out = gen[w - 1];
  return result;
}

/// Wallace column reduction: compress the weighted-bit matrix with 3:2
/// (and leftover 2:2) compressors until every column is at most two bits
/// high, then resolve the two survivor rows with one prefix adder. Each
/// layer costs one AND level, so the whole reduction is O(log height).
/// `columns[c]` holds the bits of weight 2^c; entries past out_width - 1
/// would overflow the result and must not exist.
template <class B>
std::vector<WireOf<B>> wallace_reduce(B& g,
                                      std::vector<std::vector<WireOf<B>>> columns,
                                      const WireOf<B>& zero) {
  const std::size_t out_width = columns.size();
  HEMUL_CHECK_MSG(out_width > 0, "wallace reduction needs at least one column");

  const auto max_height = [&columns] {
    std::size_t h = 0;
    for (const auto& col : columns) h = h > col.size() ? h : col.size();
    return h;
  };
  unsigned layers = 0;
  while (max_height() > 2) {
    HEMUL_CHECK_MSG(++layers < 64, "wallace reduction failed to converge");
    std::vector<std::vector<WireOf<B>>> next(out_width);
    for (std::size_t c = 0; c < out_width; ++c) {
      const auto& col = columns[c];
      std::size_t i = 0;
      if (col.size() >= 3) {
        for (; col.size() - i >= 3; i += 3) {
          const Compressed<B> fa = compress_3_2(g, col[i], col[i + 1], col[i + 2]);
          next[c].push_back(fa.sum);
          if (c + 1 < out_width) next[c + 1].push_back(fa.carry);
        }
        if (col.size() - i == 2) {
          const Compressed<B> ha = compress_2_2(g, col[i], col[i + 1]);
          i += 2;
          next[c].push_back(ha.sum);
          if (c + 1 < out_width) next[c + 1].push_back(ha.carry);
        }
      }
      // Columns already <= 2 high (and a leftover single bit) pass through.
      for (; i < col.size(); ++i) next[c].push_back(col[i]);
    }
    columns = std::move(next);
  }

  std::vector<WireOf<B>> row0, row1;
  row0.reserve(out_width);
  row1.reserve(out_width);
  for (const auto& col : columns) {
    row0.push_back(col.empty() ? zero : col[0]);
    row1.push_back(col.size() > 1 ? col[1] : zero);
  }
  return prefix_add<B>(g, row0, row1).sum;  // carry_out dead: out_width fits
}

// --- strategy-dispatching word ops ----------------------------------------

template <class B>
AddOut<B> lower_add(B& g, std::span<const WireOf<B>> a, std::span<const WireOf<B>> b,
                    const WireOf<B>& zero, LoweringOptions options) {
  HEMUL_CHECK_MSG(a.size() == b.size(), "adder inputs must have equal width");
  if (options.strategy == LoweringStrategy::kCarrySave) return prefix_add<B>(g, a, b);
  return ripple_add<B>(g, a, b, zero);
}

template <class B>
WireOf<B> lower_equals(B& g, std::span<const WireOf<B>> a, std::span<const WireOf<B>> b,
                       const WireOf<B>& one, LoweringOptions options) {
  HEMUL_CHECK_MSG(a.size() == b.size(), "comparator inputs must have equal width");
  HEMUL_CHECK_MSG(!a.empty(), "comparator needs at least one bit");
  if (options.strategy == LoweringStrategy::kCarrySave) {
    // XNOR each pair, then AND-reduce as a balanced tree: ceil(log2 w)
    // levels instead of w.
    std::vector<WireOf<B>> terms;
    terms.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      terms.push_back(g.gate_xor(g.gate_xor(a[i], b[i]), one));
    }
    while (terms.size() > 1) {
      std::vector<WireOf<B>> next;
      next.reserve((terms.size() + 1) / 2);
      for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
        next.push_back(g.gate_and(terms[i], terms[i + 1]));
      }
      if (terms.size() % 2 == 1) next.push_back(terms.back());
      terms = std::move(next);
    }
    return terms[0];
  }
  WireOf<B> acc = one;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // XNOR = a ^ b ^ 1, then AND-accumulate.
    const WireOf<B> same = g.gate_xor(g.gate_xor(a[i], b[i]), one);
    acc = g.gate_and(acc, same);
  }
  return acc;
}

/// Accumulates the shifted partial-product rows of a multiplier
/// (rows[j][i] has weight 2^(i+j)) into the 2w-bit product. The rows are
/// produced by the caller so eager facades can batch or fan out the
/// partial-product AND gates their own way.
template <class B>
std::vector<WireOf<B>> accumulate_rows(B& g,
                                       const std::vector<std::vector<WireOf<B>>>& rows,
                                       const WireOf<B>& zero, std::size_t out_width,
                                       LoweringOptions options) {
  if (options.strategy == LoweringStrategy::kCarrySave) {
    std::vector<std::vector<WireOf<B>>> columns(out_width);
    for (std::size_t j = 0; j < rows.size(); ++j) {
      for (std::size_t i = 0; i < rows[j].size(); ++i) {
        HEMUL_CHECK_MSG(i + j < out_width, "partial product past the result width");
        columns[i + j].push_back(rows[j][i]);
      }
    }
    return wallace_reduce<B>(g, std::move(columns), zero);
  }
  std::vector<WireOf<B>> acc(out_width, zero);
  for (std::size_t j = 0; j < rows.size(); ++j) {
    // Row j: (a AND b[j]) shifted by j, ripple-added into the accumulator.
    std::vector<WireOf<B>> row(out_width, zero);
    for (std::size_t i = 0; i < rows[j].size(); ++i) row[i + j] = rows[j][i];
    AddOut<B> added = ripple_add<B>(g, acc, row, zero);
    acc = std::move(added.sum);  // carry_out is dead: out_width fits the product
  }
  return acc;
}

template <class B>
std::vector<WireOf<B>> lower_multiply(B& g, std::span<const WireOf<B>> a,
                                      std::span<const WireOf<B>> b, const WireOf<B>& zero,
                                      LoweringOptions options) {
  HEMUL_CHECK_MSG(!a.empty() && !b.empty(), "multiplier needs nonempty inputs");
  // The partial-product matrix: every and(a[i], b[j]) is depth 1 -- one
  // wavefront -- regardless of how the rows are accumulated.
  std::vector<std::vector<WireOf<B>>> rows(b.size());
  for (std::size_t j = 0; j < b.size(); ++j) {
    rows[j].reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) rows[j].push_back(g.gate_and(a[i], b[j]));
  }
  return accumulate_rows<B>(g, rows, zero, a.size() + b.size(), options);
}

template <class B>
std::vector<WireOf<B>> lower_mux(B& g, const WireOf<B>& select,
                                 std::span<const WireOf<B>> when_true,
                                 std::span<const WireOf<B>> when_false) {
  HEMUL_CHECK_MSG(when_true.size() == when_false.size(),
                  "mux inputs must have equal width");
  // out = when_false ^ sel(when_true ^ when_false): one AND per bit at one
  // shared depth -- already a single wavefront under either strategy.
  std::vector<WireOf<B>> out;
  out.reserve(when_true.size());
  for (std::size_t i = 0; i < when_true.size(); ++i) {
    out.push_back(g.gate_xor(
        when_false[i], g.gate_and(select, g.gate_xor(when_true[i], when_false[i]))));
  }
  return out;
}

template <class B>
WireOf<B> lower_less_than(B& g, std::span<const WireOf<B>> a,
                          std::span<const WireOf<B>> b, const WireOf<B>& zero,
                          const WireOf<B>& one, LoweringOptions options) {
  HEMUL_CHECK_MSG(a.size() == b.size(), "comparator inputs must have equal width");
  HEMUL_CHECK_MSG(!a.empty(), "comparator needs at least one bit");
  if (options.strategy == LoweringStrategy::kCarrySave) {
    // Borrow-save: per-bit borrow-generate g_i = (not a_i) b_i and
    // borrow-propagate p_i = xnor(a_i, b_i) obey the same prefix algebra
    // as the adder's carry, so one Sklansky pass resolves the MSB borrow
    // (a < b) at AND-depth 1 + ceil(log2 w).
    const std::size_t w = a.size();
    std::vector<WireOf<B>> gen, prop;
    gen.reserve(w);
    prop.reserve(w);
    for (std::size_t i = 0; i < w; ++i) {
      gen.push_back(g.gate_and(g.gate_xor(a[i], one), b[i]));
      prop.push_back(g.gate_xor(g.gate_xor(a[i], b[i]), one));
    }
    for (std::size_t k = 0; (std::size_t{1} << k) < w; ++k) {
      for (std::size_t i = 0; i < w; ++i) {
        if (((i >> k) & 1u) == 0) continue;
        const std::size_t m = ((i >> k) << k) - 1;
        gen[i] = g.gate_xor(gen[i], g.gate_and(prop[i], gen[m]));
        prop[i] = g.gate_and(prop[i], prop[m]);
      }
    }
    (void)zero;  // borrow-in is structurally zero
    return gen[w - 1];  // borrow out of the MSB <=> a < b
  }
  // Ripple borrow of a - b, LSB first: borrow' = maj(not a_i, b_i, borrow).
  WireOf<B> borrow = zero;
  for (std::size_t i = 0; i < a.size(); ++i) {
    borrow = majority<B>(g, g.gate_xor(a[i], one), b[i], borrow);
  }
  return borrow;
}

}  // namespace lowering
}  // namespace hemul::fhe
