#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "fhe/dghv.hpp"
#include "fhe/lowering.hpp"

namespace hemul::fhe {

/// Handle to one node of a Graph. Wires are cheap value types; they are
/// only meaningful against the graph that issued them.
struct Wire {
  static constexpr u32 kInvalid = 0xFFFFFFFFu;
  u32 id = kInvalid;

  [[nodiscard]] bool valid() const noexcept { return id != kInvalid; }
  friend bool operator==(Wire a, Wire b) noexcept { return a.id == b.id; }
};

/// Node kind of the circuit IR. OR/NOT/MAJ and the word-level circuits are
/// lowered to these two gate primitives at record time (XOR is a ciphertext
/// addition, AND is one ultralong multiplication on the accelerator).
enum class GateOp : unsigned char { kInput, kXor, kAnd };

/// A lazy homomorphic circuit: gate calls *record* nodes instead of
/// multiplying immediately, separating circuit description from circuit
/// execution (the microcoded-accelerator layering of Medha/FAB). The
/// recorded DAG is
///   - hash-consed: structurally identical gates (AND/XOR are commutative)
///     share one node, so e.g. the three products of a repeated gate_maj
///     are recorded once;
///   - noise-annotated: every wire carries the analytic NoiseModel estimate
///     of its residue, so decryptability is known *before* execution;
///   - leveled: every wire knows its multiplicative depth, which the
///     Evaluator uses to batch independent AND gates into wavefronts.
///
/// Word-level builders mirror fhe::Circuits' eager constructions gate for
/// gate, so evaluating a graph reproduces the eager results bit for bit.
class Graph {
 public:
  /// Gate-builder concept hook: the lowering templates record into a Graph
  /// directly (see fhe/lowering.hpp).
  using WireType = Wire;

  /// Circuits over ciphertexts of `scheme` (non-owning; the scheme must
  /// outlive the graph and every evaluation of it). `lowering` is the
  /// default strategy of the word-level builders, overridable per call.
  explicit Graph(const Dghv& scheme, LoweringOptions lowering = {})
      : scheme_(&scheme), lowering_(lowering) {}

  /// Replaces the default lowering of subsequent word-level builder calls.
  void set_lowering(LoweringOptions lowering) noexcept { lowering_ = lowering; }

  [[nodiscard]] LoweringOptions lowering() const noexcept { return lowering_; }

  // --- leaves --------------------------------------------------------------

  /// A circuit input holding an encrypted bit.
  Wire input(Ciphertext c);

  /// One input wire per bit of an encrypted integer (little-endian).
  std::vector<Wire> inputs(std::span<const Ciphertext> bits);

  // --- gates ---------------------------------------------------------------

  Wire gate_xor(Wire a, Wire b);
  Wire gate_and(Wire a, Wire b);
  /// OR via a ^ b ^ ab (one AND node).
  Wire gate_or(Wire a, Wire b);
  /// NOT via XOR with an encryption of 1.
  Wire gate_not(Wire a, Wire one);
  /// 2-of-3 majority: ab ^ bc ^ ca (three AND nodes, shared via CSE when
  /// the same pairs recur, e.g. across comparator stages).
  Wire gate_maj(Wire a, Wire b, Wire c);

  // --- word-level circuits -------------------------------------------------

  struct AddResult {
    std::vector<Wire> sum;  ///< same width as the inputs
    Wire carry_out;         ///< the final carry
  };

  /// Addition. Ripple-carry spends 2 AND nodes per bit with bit i at depth
  /// i+1; carry-save resolves every bit through one Sklansky prefix pass
  /// at depth 1 + ceil(log2 w). The one-argument forms use the graph's
  /// default LoweringOptions; pass explicit options to override per call.
  [[nodiscard]] AddResult add(std::span<const Wire> a, std::span<const Wire> b, Wire zero);
  [[nodiscard]] AddResult add(std::span<const Wire> a, std::span<const Wire> b, Wire zero,
                              LoweringOptions options);

  /// Equality comparator: XNOR of all bit pairs, AND-accumulated serially
  /// (ripple) or as a balanced tree (carry-save).
  [[nodiscard]] Wire equals(std::span<const Wire> a, std::span<const Wire> b, Wire one);
  [[nodiscard]] Wire equals(std::span<const Wire> a, std::span<const Wire> b, Wire one,
                            LoweringOptions options);

  /// Schoolbook product (2w-bit result). All w^2 partial-product AND gates
  /// land at depth 1 -- one wavefront -- however the rows are accumulated:
  /// ripple-carry row adders (depth ~2w; dead carry chains removed by the
  /// Evaluator's dead-node pass) or a Wallace 3:2-compressor tree plus one
  /// prefix resolve (depth ~log w).
  [[nodiscard]] std::vector<Wire> multiply(std::span<const Wire> a,
                                           std::span<const Wire> b, Wire zero);
  [[nodiscard]] std::vector<Wire> multiply(std::span<const Wire> a,
                                           std::span<const Wire> b, Wire zero,
                                           LoweringOptions options);

  /// Bitwise select: out = when_false ^ sel * (when_true ^ when_false)
  /// (one AND per bit, all at the same depth -- a single wavefront under
  /// either strategy).
  [[nodiscard]] std::vector<Wire> mux(Wire select, std::span<const Wire> when_true,
                                      std::span<const Wire> when_false);

  /// Unsigned a < b: ripple borrow chain borrow' = maj(not a_i, b_i,
  /// borrow) (3 AND nodes per bit, depth w) or a borrow-save prefix pass
  /// (depth 1 + ceil(log2 w)).
  [[nodiscard]] Wire less_than(std::span<const Wire> a, std::span<const Wire> b,
                               Wire zero, Wire one);
  [[nodiscard]] Wire less_than(std::span<const Wire> a, std::span<const Wire> b,
                               Wire zero, Wire one, LoweringOptions options);

  // --- introspection -------------------------------------------------------

  /// Nodes recorded (inputs + gates, after CSE).
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  /// AND nodes recorded (accelerator multiplications if all were live).
  [[nodiscard]] u64 and_gates() const noexcept { return and_gates_; }

  /// Multiplicative depth of a wire (inputs are 0; an AND is one deeper
  /// than its deepest operand; XOR does not deepen).
  [[nodiscard]] unsigned level(Wire w) const;

  /// Analytic NoiseModel estimate of the wire's residue, in bits.
  [[nodiscard]] double predicted_noise_bits(Wire w) const;

  /// Whether the model predicts the wire still decrypts correctly.
  [[nodiscard]] bool predicted_decryptable(Wire w) const;

  /// Node kind of a wire (serialization / tooling introspection).
  [[nodiscard]] GateOp op(Wire w) const;

  /// Operand wires of a gate node (invalid wires for inputs).
  [[nodiscard]] std::pair<Wire, Wire> operands(Wire w) const;

  /// The ciphertext held by an input wire (op(w) must be kInput).
  [[nodiscard]] const Ciphertext& input_value(Wire w) const;

  [[nodiscard]] const Dghv& scheme() const noexcept { return *scheme_; }

 private:
  friend class Evaluator;

  struct Node {
    GateOp op = GateOp::kInput;
    u32 a = Wire::kInvalid;   ///< operand node ids (unused for inputs)
    u32 b = Wire::kInvalid;
    unsigned level = 0;       ///< multiplicative depth
    double noise_bits = 0.0;  ///< analytic residue estimate
    Ciphertext value;         ///< inputs only
  };

  [[nodiscard]] const Node& node(Wire w) const;
  Wire record(GateOp op, Wire a, Wire b);

  const Dghv* scheme_;
  LoweringOptions lowering_;
  std::vector<Node> nodes_;
  std::unordered_map<u64, u32> cse_;  ///< (op, a, b) -> node id
  u64 and_gates_ = 0;
};

}  // namespace hemul::fhe
