#include "fhe/dghv.hpp"

#include "bigint/div.hpp"
#include "bigint/mul.hpp"
#include "ssa/multiply.hpp"
#include "util/check.hpp"

namespace hemul::fhe {

using bigint::BigUInt;

namespace {

/// Default multiplication backend: SSA for accelerator-scale operands,
/// the classical dispatcher below its advantage point.
BigUInt default_mul(const BigUInt& a, const BigUInt& b) {
  const std::size_t bits = std::max(a.bit_length(), b.bit_length());
  return bits >= 100'000 ? ssa::mul_ssa(a, b) : bigint::mul_auto(a, b);
}

}  // namespace

Dghv::Dghv(const DghvParams& params, u64 seed) : rng_(seed), mul_(default_mul) {
  params.validate();
  pk_.params = params;

  // Secret key: odd eta-bit integer.
  p_ = BigUInt::random_bits(rng_, params.eta);
  if (!p_.is_odd()) p_ += BigUInt{1};

  // Exact public modulus x0 = q0 * p with q0 odd and gamma-bit x0.
  const std::size_t q_bits = params.gamma - params.eta;
  BigUInt q0 = BigUInt::random_bits(rng_, q_bits);
  if (!q0.is_odd()) q0 += BigUInt{1};
  pk_.x0 = q0 * p_;

  // Public encryptions of zero: x_i = (q_i * p + 2 r_i) mod x0.
  pk_.x.reserve(params.tau);
  for (unsigned i = 0; i < params.tau; ++i) {
    const BigUInt qi = BigUInt::random_below(rng_, q0);
    BigUInt ri = BigUInt::random_bits(rng_, params.rho);
    BigUInt xi = qi * p_ + (ri << 1);
    pk_.x.push_back(xi % pk_.x0);
  }
}

Ciphertext Dghv::encrypt(bool message) {
  BigUInt c{message ? 1u : 0u};
  BigUInt r = BigUInt::random_bits(rng_, pk_.params.rho);
  c += r << 1;
  for (const BigUInt& xi : pk_.x) {
    if (rng_.flip()) c += xi << 1;
  }
  return {c % pk_.x0, NoiseModel::fresh(pk_.params)};
}

bool Dghv::decrypt(const Ciphertext& c) const {
  // One-sided noise keeps the residue in [0, p); plain reduction suffices.
  return (c.value % p_).is_odd();
}

Ciphertext Dghv::add(const Ciphertext& a, const Ciphertext& b) const {
  return {(a.value + b.value) % pk_.x0, NoiseModel::after_add(a.noise_bits, b.noise_bits)};
}

Ciphertext Dghv::multiply(const Ciphertext& a, const Ciphertext& b) const {
  return {mul_(a.value, b.value) % pk_.x0,
          NoiseModel::after_mult(a.noise_bits, b.noise_bits)};
}

std::size_t Dghv::measured_noise_bits(const Ciphertext& c) const {
  return (c.value % p_).bit_length();
}

}  // namespace hemul::fhe
