#include "fhe/dghv.hpp"

#include "backend/registry.hpp"
#include "bigint/div.hpp"
#include "bigint/mul.hpp"
#include "util/check.hpp"

namespace hemul::fhe {

using bigint::BigUInt;

Dghv::Dghv(const DghvParams& params, u64 seed) : Dghv(params, seed, backend::auto_backend()) {}

Dghv::Dghv(const DghvParams& params, u64 seed,
           std::shared_ptr<backend::MultiplierBackend> engine)
    : rng_(seed), engine_(std::move(engine)) {
  HEMUL_CHECK_MSG(engine_ != nullptr, "Dghv requires a multiplication engine");
  params.validate();
  pk_.params = params;

  // Secret key: odd eta-bit integer.
  p_ = BigUInt::random_bits(rng_, params.eta);
  if (!p_.is_odd()) p_ += BigUInt{1};

  // Exact public modulus x0 = q0 * p with q0 odd and gamma-bit x0.
  const std::size_t q_bits = params.gamma - params.eta;
  BigUInt q0 = BigUInt::random_bits(rng_, q_bits);
  if (!q0.is_odd()) q0 += BigUInt{1};
  pk_.x0 = q0 * p_;

  // Public encryptions of zero: x_i = (q_i * p + 2 r_i) mod x0.
  pk_.x.reserve(params.tau);
  for (unsigned i = 0; i < params.tau; ++i) {
    const BigUInt qi = BigUInt::random_below(rng_, q0);
    BigUInt ri = BigUInt::random_bits(rng_, params.rho);
    BigUInt xi = qi * p_ + (ri << 1);
    pk_.x.push_back(xi % pk_.x0);
  }
}

Dghv::Dghv(PublicKey public_key, bigint::BigUInt secret_key, u64 seed,
           std::shared_ptr<backend::MultiplierBackend> engine)
    : p_(std::move(secret_key)), pk_(std::move(public_key)), rng_(seed),
      engine_(engine != nullptr ? std::move(engine) : backend::auto_backend()) {
  pk_.params.validate();
  HEMUL_CHECK_MSG(!pk_.x0.is_zero(), "Dghv: public modulus x0 is zero");
  HEMUL_CHECK_MSG(p_.is_odd(), "Dghv: secret key must be odd");
  HEMUL_CHECK_MSG((pk_.x0 % p_).is_zero(), "Dghv: x0 is not a multiple of the secret key");
}

Ciphertext Dghv::encrypt(bool message) {
  BigUInt c{message ? 1u : 0u};
  BigUInt r = BigUInt::random_bits(rng_, pk_.params.rho);
  c += r << 1;
  for (const BigUInt& xi : pk_.x) {
    if (rng_.flip()) c += xi << 1;
  }
  return {c % pk_.x0, NoiseModel::fresh(pk_.params)};
}

bool Dghv::decrypt(const Ciphertext& c) const {
  // One-sided noise keeps the residue in [0, p); plain reduction suffices.
  return (c.value % p_).is_odd();
}

Ciphertext Dghv::add(const Ciphertext& a, const Ciphertext& b) const {
  return {(a.value + b.value) % pk_.x0, NoiseModel::after_add(a.noise_bits, b.noise_bits)};
}

Ciphertext Dghv::multiply(const Ciphertext& a, const Ciphertext& b) const {
  return {engine_->multiply(a.value, b.value) % pk_.x0,
          NoiseModel::after_mult(a.noise_bits, b.noise_bits)};
}

std::vector<Ciphertext> Dghv::multiply_batch(
    std::span<const std::pair<Ciphertext, Ciphertext>> jobs) const {
  std::vector<backend::MulJob> raw;
  raw.reserve(jobs.size());
  for (const auto& [a, b] : jobs) raw.emplace_back(a.value, b.value);

  const std::vector<BigUInt> products = engine_->multiply_batch(raw);
  std::vector<Ciphertext> out;
  out.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out.push_back({products[i] % pk_.x0,
                   NoiseModel::after_mult(jobs[i].first.noise_bits, jobs[i].second.noise_bits)});
  }
  return out;
}

void Dghv::set_backend(std::shared_ptr<backend::MultiplierBackend> engine) {
  HEMUL_CHECK_MSG(engine != nullptr, "Dghv requires a multiplication engine");
  engine_ = std::move(engine);
}

void Dghv::set_multiplier(MulFn mul) {
  engine_ = std::make_shared<backend::FunctionBackend>(std::move(mul));
}

std::size_t Dghv::measured_noise_bits(const Ciphertext& c) const {
  return (c.value % p_).bit_length();
}

}  // namespace hemul::fhe
