#include "fhe/circuits.hpp"

#include <future>

#include "core/scheduler.hpp"
#include "util/check.hpp"

namespace hemul::fhe {

namespace {

/// Gate-builder adapter over the eager facade: the lowering templates in
/// fhe/lowering.hpp drive Circuits' own gate calls, so the eager word ops
/// share one gate structure with Graph recording (bit-exact by
/// construction) while keeping ciphertext-at-a-time execution and the
/// facade's gate accounting.
struct EagerBuilder {
  using WireType = Ciphertext;
  const Circuits* circuits;
  Ciphertext gate_xor(const Ciphertext& a, const Ciphertext& b) const {
    return circuits->gate_xor(a, b);
  }
  Ciphertext gate_and(const Ciphertext& a, const Ciphertext& b) const {
    return circuits->gate_and(a, b);
  }
};

}  // namespace

Evaluator Circuits::make_evaluator() const {
  if (scheduler_ != nullptr) return Evaluator(*scheduler_);
  if (engine_ != nullptr) return Evaluator(engine_);
  return Evaluator();
}

std::vector<Ciphertext> Circuits::run(const Graph& graph,
                                      std::span<const Wire> outputs) const {
  Evaluator evaluator = make_evaluator();
  EvalOptions options;
  options.check_noise = false;  // eager semantics: compute, fail at decryption
  // No report: a report makes the scheduler path drain and snapshot the
  // whole scheduler per wavefront, which would block on (and misattribute)
  // unrelated work when the scheduler is shared. The facade's one-shot
  // graphs execute every recorded AND (inputs are distinct nodes, so CSE
  // cannot merge gates, and each gate feeds a requested output), so the
  // recorded count is the executed count.
  std::vector<Ciphertext> results = evaluator.evaluate(graph, outputs, nullptr, options);
  and_gates_.fetch_add(graph.and_gates(), std::memory_order_relaxed);
  return results;
}

Ciphertext Circuits::gate_xor(const Ciphertext& a, const Ciphertext& b) const {
  return scheme_->add(a, b);
}

Ciphertext Circuits::gate_and(const Ciphertext& a, const Ciphertext& b) const {
  // Hot path of the ripple-carry loops: one dependent gate gains nothing
  // from graph recording, so skip the one-node graph and its operand
  // copies and hit the engine directly (the batched entry points below are
  // the ones that go through the IR).
  and_gates_.fetch_add(1, std::memory_order_relaxed);
  if (engine_ != nullptr) {
    return {engine_->multiply(a.value, b.value) % scheme_->public_key().x0,
            NoiseModel::after_mult(a.noise_bits, b.noise_bits)};
  }
  return scheme_->multiply(a, b);
}

std::vector<Ciphertext> Circuits::gate_and_batch(
    std::span<const std::pair<Ciphertext, Ciphertext>> jobs) const {
  // Every pair becomes its own pair of input nodes, so the whole batch is
  // one depth-1 wavefront: the scheduler fans it across the PE lanes, the
  // engine path issues it as one spectrum-caching multiply_batch.
  Graph graph(*scheme_);
  std::vector<Wire> wires;
  wires.reserve(jobs.size());
  for (const auto& [a, b] : jobs) {
    wires.push_back(graph.gate_and(graph.input(a), graph.input(b)));
  }
  return run(graph, wires);
}

Ciphertext Circuits::gate_or(const Ciphertext& a, const Ciphertext& b) const {
  // Only one AND inside: same hot-path reasoning as gate_and above.
  return gate_xor(gate_xor(a, b), gate_and(a, b));
}

Ciphertext Circuits::gate_not(const Ciphertext& a, const Ciphertext& one) const {
  return gate_xor(a, one);
}

Ciphertext Circuits::gate_maj(const Ciphertext& a, const Ciphertext& b,
                              const Ciphertext& c) const {
  // One graph, one wavefront: ab, bc, ca are mutually independent and go
  // out as a single batch of three.
  Graph graph(*scheme_);
  const Wire outputs[] = {graph.gate_maj(graph.input(a), graph.input(b), graph.input(c))};
  return run(graph, outputs)[0];
}

Circuits::AdderResult Circuits::add(const EncryptedInt& a, const EncryptedInt& b,
                                    const Ciphertext& zero) const {
  return add(a, b, zero, lowering_);
}

Circuits::AdderResult Circuits::add(const EncryptedInt& a, const EncryptedInt& b,
                                    const Ciphertext& zero,
                                    LoweringOptions options) const {
  EagerBuilder builder{this};
  lowering::AddOut<EagerBuilder> out = lowering::lower_add(
      builder, std::span<const Ciphertext>(a), std::span<const Ciphertext>(b), zero,
      options);
  return {std::move(out.sum), std::move(out.carry_out)};
}

Ciphertext Circuits::equals(const EncryptedInt& a, const EncryptedInt& b,
                            const Ciphertext& one) const {
  return equals(a, b, one, lowering_);
}

Ciphertext Circuits::equals(const EncryptedInt& a, const EncryptedInt& b,
                            const Ciphertext& one, LoweringOptions options) const {
  EagerBuilder builder{this};
  return lowering::lower_equals(builder, std::span<const Ciphertext>(a),
                                std::span<const Ciphertext>(b), one, options);
}

EncryptedInt Circuits::mux(const Ciphertext& select, const EncryptedInt& when_true,
                           const EncryptedInt& when_false) const {
  EagerBuilder builder{this};
  return lowering::lower_mux(builder, select, std::span<const Ciphertext>(when_true),
                             std::span<const Ciphertext>(when_false));
}

Ciphertext Circuits::less_than(const EncryptedInt& a, const EncryptedInt& b,
                               const Ciphertext& zero, const Ciphertext& one) const {
  return less_than(a, b, zero, one, lowering_);
}

Ciphertext Circuits::less_than(const EncryptedInt& a, const EncryptedInt& b,
                               const Ciphertext& zero, const Ciphertext& one,
                               LoweringOptions options) const {
  EagerBuilder builder{this};
  return lowering::lower_less_than(builder, std::span<const Ciphertext>(a),
                                   std::span<const Ciphertext>(b), zero, one, options);
}

EncryptedInt Circuits::multiply(const EncryptedInt& a, const EncryptedInt& b,
                                const Ciphertext& zero) const {
  return multiply(a, b, zero, lowering_);
}

EncryptedInt Circuits::multiply(const EncryptedInt& a, const EncryptedInt& b,
                                const Ciphertext& zero, LoweringOptions options) const {
  HEMUL_CHECK_MSG(!a.empty() && !b.empty(), "multiplier needs nonempty inputs");
  const std::size_t out_width = a.size() + b.size();

  // All a.size()*b.size() partial-product AND gates are mutually
  // independent; only the row accumulation below is ordered. With a
  // scheduler installed, every gate fans out across the PE lanes at once
  // (the shared spectrum cache still transforms each repeated a[i]/b[j]
  // once); otherwise each row goes out as one serial batch and the
  // engine's batch cache amortizes b[j]'s forward transform.
  std::vector<std::vector<Ciphertext>> rows(b.size());
  if (scheduler_ != nullptr) {
    // Submit directly (no intermediate MulJob vector): each queued job
    // holds one copy of its operand pair, so peak queue memory is one
    // ciphertext pair per in-flight gate. That is O(w^2) ciphertexts for
    // the full fan-out -- acceptable at circuit word widths; fall back to
    // the serial per-row path for very wide words on large parameters.
    std::vector<std::future<bigint::BigUInt>> futures;
    futures.reserve(a.size() * b.size());
    for (std::size_t j = 0; j < b.size(); ++j) {
      for (std::size_t i = 0; i < a.size(); ++i) {
        futures.push_back(scheduler_->submit_multiply(a[i].value, b[j].value));
      }
    }
    and_gates_.fetch_add(futures.size(), std::memory_order_relaxed);
    std::size_t k = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      rows[j].reserve(a.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        rows[j].push_back({futures[k++].get() % scheme_->public_key().x0,
                           NoiseModel::after_mult(a[i].noise_bits, b[j].noise_bits)});
      }
    }
  } else {
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::vector<std::pair<Ciphertext, Ciphertext>> jobs;
      jobs.reserve(a.size());
      for (std::size_t i = 0; i < a.size(); ++i) jobs.emplace_back(a[i], b[j]);
      rows[j] = gate_and_batch(jobs);
    }
  }

  EagerBuilder builder{this};
  return lowering::accumulate_rows(builder, rows, zero, out_width, options);
}

EncryptedInt encrypt_int(Dghv& scheme, u64 value, unsigned width) {
  EncryptedInt out;
  out.reserve(width);
  for (unsigned i = 0; i < width; ++i) {
    out.push_back(scheme.encrypt((value >> i) & 1u));
  }
  return out;
}

u64 decrypt_int(const Dghv& scheme, const EncryptedInt& value) {
  u64 out = 0;
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (scheme.decrypt(value[i])) out |= 1ULL << i;
  }
  return out;
}

}  // namespace hemul::fhe
