#include "fhe/circuits.hpp"

#include <future>

#include "core/scheduler.hpp"
#include "util/check.hpp"

namespace hemul::fhe {

Ciphertext Circuits::from_product(bigint::BigUInt product, const Ciphertext& a,
                                  const Ciphertext& b) const {
  return {std::move(product) % scheme_->public_key().x0,
          NoiseModel::after_mult(a.noise_bits, b.noise_bits)};
}

Ciphertext Circuits::gate_xor(const Ciphertext& a, const Ciphertext& b) const {
  return scheme_->add(a, b);
}

Ciphertext Circuits::gate_and(const Ciphertext& a, const Ciphertext& b) const {
  ++and_gates_;
  if (engine_ != nullptr) {
    return {engine_->multiply(a.value, b.value) % scheme_->public_key().x0,
            NoiseModel::after_mult(a.noise_bits, b.noise_bits)};
  }
  return scheme_->multiply(a, b);
}

std::vector<Ciphertext> Circuits::gate_and_batch(
    std::span<const std::pair<Ciphertext, Ciphertext>> jobs) const {
  and_gates_ += jobs.size();
  if (scheduler_ == nullptr && engine_ == nullptr) return scheme_->multiply_batch(jobs);

  std::vector<backend::MulJob> raw;
  raw.reserve(jobs.size());
  for (const auto& [a, b] : jobs) raw.emplace_back(a.value, b.value);

  std::vector<Ciphertext> out;
  out.reserve(jobs.size());
  if (scheduler_ != nullptr) {
    std::vector<std::future<bigint::BigUInt>> futures = scheduler_->submit_batch(raw);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      out.push_back(from_product(futures[i].get(), jobs[i].first, jobs[i].second));
    }
    return out;
  }

  std::vector<bigint::BigUInt> products = engine_->multiply_batch(raw);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out.push_back(from_product(std::move(products[i]), jobs[i].first, jobs[i].second));
  }
  return out;
}

Ciphertext Circuits::gate_or(const Ciphertext& a, const Ciphertext& b) const {
  return gate_xor(gate_xor(a, b), gate_and(a, b));
}

Ciphertext Circuits::gate_not(const Ciphertext& a, const Ciphertext& one) const {
  return gate_xor(a, one);
}

Ciphertext Circuits::gate_maj(const Ciphertext& a, const Ciphertext& b,
                              const Ciphertext& c) const {
  const Ciphertext ab = gate_and(a, b);
  const Ciphertext bc = gate_and(b, c);
  const Ciphertext ca = gate_and(c, a);
  return gate_xor(gate_xor(ab, bc), ca);
}

Circuits::AdderResult Circuits::add(const EncryptedInt& a, const EncryptedInt& b,
                                    const Ciphertext& zero) const {
  HEMUL_CHECK_MSG(a.size() == b.size(), "adder inputs must have equal width");
  AdderResult result;
  result.sum.reserve(a.size());
  Ciphertext carry = zero;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // sum_i = a ^ b ^ c; carry' = (a^b)c ^ ab (two multiplications).
    const Ciphertext axb = gate_xor(a[i], b[i]);
    result.sum.push_back(gate_xor(axb, carry));
    carry = gate_xor(gate_and(axb, carry), gate_and(a[i], b[i]));
  }
  result.carry_out = carry;
  return result;
}

Ciphertext Circuits::equals(const EncryptedInt& a, const EncryptedInt& b,
                            const Ciphertext& one) const {
  HEMUL_CHECK_MSG(a.size() == b.size(), "comparator inputs must have equal width");
  HEMUL_CHECK_MSG(!a.empty(), "comparator needs at least one bit");
  Ciphertext acc = one;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // XNOR = a ^ b ^ 1, then AND-accumulate.
    const Ciphertext same = gate_xor(gate_xor(a[i], b[i]), one);
    acc = gate_and(acc, same);
  }
  return acc;
}

EncryptedInt Circuits::multiply(const EncryptedInt& a, const EncryptedInt& b,
                                const Ciphertext& zero) const {
  HEMUL_CHECK_MSG(!a.empty() && !b.empty(), "multiplier needs nonempty inputs");
  const std::size_t out_width = a.size() + b.size();

  // All a.size()*b.size() partial-product AND gates are mutually
  // independent; only the ripple additions below are ordered. With a
  // scheduler installed, every row fans out across the PE lanes at once
  // (the shared spectrum cache still transforms each repeated a[i]/b[j]
  // once); otherwise each row goes out as one serial batch and the
  // engine's batch cache amortizes b[j]'s forward transform.
  std::vector<std::vector<Ciphertext>> rows(b.size());
  if (scheduler_ != nullptr) {
    // Submit directly (no intermediate MulJob vector): each queued job
    // holds one copy of its operand pair, so peak queue memory is one
    // ciphertext pair per in-flight gate. That is O(w^2) ciphertexts for
    // the full fan-out -- acceptable at circuit word widths; fall back to
    // the serial per-row path for very wide words on large parameters.
    std::vector<std::future<bigint::BigUInt>> futures;
    futures.reserve(a.size() * b.size());
    for (std::size_t j = 0; j < b.size(); ++j) {
      for (std::size_t i = 0; i < a.size(); ++i) {
        futures.push_back(scheduler_->submit_multiply(a[i].value, b[j].value));
      }
    }
    and_gates_ += futures.size();
    std::size_t k = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      rows[j].reserve(a.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        rows[j].push_back(from_product(futures[k++].get(), a[i], b[j]));
      }
    }
  } else {
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::vector<std::pair<Ciphertext, Ciphertext>> jobs;
      jobs.reserve(a.size());
      for (std::size_t i = 0; i < a.size(); ++i) jobs.emplace_back(a[i], b[j]);
      rows[j] = gate_and_batch(jobs);
    }
  }

  EncryptedInt acc(out_width, zero);
  for (std::size_t j = 0; j < b.size(); ++j) {
    // Row j: (a AND b[j]) shifted by j, ripple-added into the accumulator.
    EncryptedInt row(out_width, zero);
    for (std::size_t i = 0; i < a.size(); ++i) row[i + j] = rows[j][i];
    const AdderResult added = add(acc, row, zero);
    acc = added.sum;  // no overflow: out_width accommodates the product
  }
  return acc;
}

EncryptedInt encrypt_int(Dghv& scheme, u64 value, unsigned width) {
  EncryptedInt out;
  out.reserve(width);
  for (unsigned i = 0; i < width; ++i) {
    out.push_back(scheme.encrypt((value >> i) & 1u));
  }
  return out;
}

u64 decrypt_int(const Dghv& scheme, const EncryptedInt& value) {
  u64 out = 0;
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (scheme.decrypt(value[i])) out |= 1ULL << i;
  }
  return out;
}

}  // namespace hemul::fhe
