#pragma once

#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "backend/backend.hpp"
#include "bigint/biguint.hpp"
#include "fhe/noise.hpp"
#include "fhe/params.hpp"
#include "util/rng.hpp"

namespace hemul::fhe {

/// A DGHV ciphertext: the integer value plus the tracked noise estimate.
struct Ciphertext {
  bigint::BigUInt value;
  double noise_bits = 0.0;
};

/// DGHV public key: the exact modulus x0 = q0*p and the tau noisy
/// encryptions of zero used by the subset-sum encryption.
struct PublicKey {
  DghvParams params;
  bigint::BigUInt x0;
  std::vector<bigint::BigUInt> x;
};

/// The DGHV somewhat-homomorphic scheme over the integers (CMNT variant:
/// the public modulus x0 is an exact multiple of the secret key, so
/// reductions modulo x0 add no noise).
///
/// Homomorphic multiplication is one gamma-bit x gamma-bit integer product
/// -- precisely the operation the paper's accelerator implements. The
/// multiplication backend is pluggable so the examples can route it
/// through the simulated accelerator.
///
/// Noise convention: key and encryption noises are one-sided (r in
/// [0, 2^rho)), which keeps every residue non-negative and lets decryption
/// use a plain (uncentered) modular reduction. This is a documented,
/// security-irrelevant simplification of the symmetric-noise spec.
class Dghv {
 public:
  using MulFn =
      std::function<bigint::BigUInt(const bigint::BigUInt&, const bigint::BigUInt&)>;

  /// Generates a key pair with the given deterministic seed. The default
  /// multiplication engine is the registry's auto policy (classical below
  /// the SSA advantage point, NTT above).
  Dghv(const DghvParams& params, u64 seed);

  /// Generates a key pair and runs all homomorphic multiplications on the
  /// given engine (any registered backend: "ssa", "hw", ...).
  Dghv(const DghvParams& params, u64 seed,
       std::shared_ptr<backend::MultiplierBackend> engine);

  /// Rebuilds a key context from existing key material -- the remote-tenant
  /// path: a fleet client receives serialized keys from the shard that ran
  /// keygen and encrypts/decrypts locally against them. `seed` drives only
  /// this context's encryption randomness. The engine defaults to the
  /// registry's auto policy.
  Dghv(PublicKey public_key, bigint::BigUInt secret_key, u64 seed,
       std::shared_ptr<backend::MultiplierBackend> engine = nullptr);

  /// Encrypts one bit: c = (m + 2r + 2 * sum_{i in S} x_i) mod x0.
  [[nodiscard]] Ciphertext encrypt(bool message);

  /// Decrypts: m = (c mod p) mod 2.
  [[nodiscard]] bool decrypt(const Ciphertext& c) const;

  /// Homomorphic XOR: c1 + c2 (mod x0).
  [[nodiscard]] Ciphertext add(const Ciphertext& a, const Ciphertext& b) const;

  /// Homomorphic AND: c1 * c2 (mod x0) -- the accelerator workload.
  [[nodiscard]] Ciphertext multiply(const Ciphertext& a, const Ciphertext& b) const;

  /// Batched homomorphic AND through the backend's spectrum-caching batch
  /// executor: N products against one repeated ciphertext cost N+1 forward
  /// transforms instead of 3N on NTT engines.
  [[nodiscard]] std::vector<Ciphertext> multiply_batch(
      std::span<const std::pair<Ciphertext, Ciphertext>> jobs) const;

  /// Replaces the multiplication engine -- the one engine-mutation API.
  /// Bare multiplication functions plug in through
  /// backend::FunctionBackend:
  ///   scheme.set_backend(std::make_shared<backend::FunctionBackend>(fn));
  void set_backend(std::shared_ptr<backend::MultiplierBackend> engine);

  /// Backward-compatible function hook (wrapped in a FunctionBackend).
  [[deprecated("wrap the function in backend::FunctionBackend and call set_backend")]]
  void set_multiplier(MulFn mul);

  [[nodiscard]] const std::shared_ptr<backend::MultiplierBackend>& engine() const noexcept {
    return engine_;
  }

  [[nodiscard]] const PublicKey& public_key() const noexcept { return pk_; }
  [[nodiscard]] const DghvParams& params() const noexcept { return pk_.params; }

  /// Secret key access for the test suite (noise measurements).
  [[nodiscard]] const bigint::BigUInt& secret_key() const noexcept { return p_; }

  /// Bits of actual noise in a ciphertext (via the secret key).
  [[nodiscard]] std::size_t measured_noise_bits(const Ciphertext& c) const;

 private:
  bigint::BigUInt p_;  ///< secret key: odd eta-bit integer
  PublicKey pk_;
  util::Rng rng_;
  std::shared_ptr<backend::MultiplierBackend> engine_;
};

}  // namespace hemul::fhe
