#pragma once

#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "fhe/graph.hpp"

namespace hemul::core {
class Scheduler;
}

namespace hemul::fhe {

/// Execution statistics of one wavefront (all independent AND gates at one
/// multiplicative depth, issued as a single batch). On the scheduler path
/// these are before/after deltas of the scheduler-wide counters, so they
/// are accurate only when the scheduler is not shared concurrently during
/// the evaluation (pass no report to skip collecting them entirely).
struct WavefrontStats {
  unsigned level = 0;  ///< multiplicative depth of the wavefront
  u64 and_gates = 0;   ///< gates batched at this depth
  /// Engine-path transform accounting (multiply_batch): spectrum-cache
  /// hits, forward/inverse transforms, modeled cycles for "hw".
  backend::BatchStats batch;
  /// Cache accounting unified across execution paths: the scheduler path
  /// reads the shared ConcurrentSpectrumCache delta, the engine path
  /// mirrors batch.spectrum_cache_hits / batch.forward_transforms.
  u64 cache_hits = 0;
  u64 cache_misses = 0;
  unsigned lanes_used = 0;  ///< PE lanes that executed >= 1 gate (scheduler path)
  double wall_ms = 0.0;     ///< wall-clock of the wavefront
};

/// End-to-end report of one Evaluator::evaluate call.
struct EvalReport {
  std::size_t nodes = 0;       ///< nodes recorded in the graph
  std::size_t live_nodes = 0;  ///< reachable from the requested outputs
  std::size_t dead_nodes = 0;  ///< eliminated before execution
  u64 and_gates = 0;           ///< multiplications actually executed
  u64 xor_gates = 0;           ///< ciphertext additions executed
  unsigned levels = 0;         ///< multiplicative depth (= wavefront count)
  double max_noise_bits = 0.0;  ///< worst predicted residue over live wires
  bool decryptable = false;     ///< model verdict for every live wire
  std::vector<WavefrontStats> wavefronts;

  [[nodiscard]] std::size_t wavefront_count() const noexcept { return wavefronts.size(); }
};

/// Thrown by the pre-execution check when the analytic NoiseModel predicts
/// that some live wire no longer decrypts -- *before* any multiplication
/// is spent on a computation whose result would be garbage.
class NoiseBudgetError : public std::runtime_error {
 public:
  NoiseBudgetError(const std::string& message, Wire wire, unsigned level,
                   double noise_bits, double budget_bits)
      : std::runtime_error(message),
        wire(wire),
        level(level),
        noise_bits(noise_bits),
        budget_bits(budget_bits) {}

  Wire wire;          ///< first offending wire (deepest predicted noise)
  unsigned level;     ///< its multiplicative depth
  double noise_bits;  ///< predicted residue bits
  double budget_bits; ///< decryptability bound (eta - 2)
};

struct EvalOptions {
  /// Run the NoiseModel decryptability check over every live wire before
  /// executing anything; throw NoiseBudgetError on the first violation.
  /// Disable to reproduce eager semantics (compute first, fail at
  /// decryption) -- e.g. for parity benchmarks past the noise budget.
  bool check_noise = true;
};

/// The stepping core of wavefront evaluation, shared by every executor of
/// a recorded Graph: dead-node elimination from the requested outputs,
/// per-depth wavefront grouping, the pre-execution noise audit, XOR/input
/// sweeps and AND-product completion (reduction modulo x0 + noise
/// annotation). fhe::Evaluator drives one instance to completion in a
/// single call; core::Service interleaves many instances one level per
/// coalesced round. Keeping the rules here is what guarantees served
/// results stay bit-exact against in-process evaluation.
///
/// Protocol per level L = 1..max_level(): obtain the gates of
/// wavefront(L), multiply each gate_job() on any engine, hand every raw
/// product back through apply_product(), then sweep_linear(L). Level 0
/// (inputs and depth-0 XORs) is swept in the constructor.
class EvalState {
 public:
  /// Validates the output wires, eliminates dead nodes, levels the live
  /// AND gates into wavefronts and sweeps level 0. No multiplication
  /// happens here.
  EvalState(const Graph& graph, std::span<const Wire> outputs);

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

  // --- audit results (available before any execution) ---------------------
  [[nodiscard]] unsigned max_level() const noexcept { return max_level_; }
  [[nodiscard]] std::size_t live_nodes() const noexcept { return live_count_; }
  [[nodiscard]] u64 live_xor_gates() const noexcept { return live_xor_; }
  [[nodiscard]] double max_noise_bits() const noexcept { return max_noise_; }
  /// The live wire with the worst predicted residue.
  [[nodiscard]] Wire worst_wire() const noexcept { return Wire{worst_wire_}; }
  /// NoiseModel verdict over every live wire.
  [[nodiscard]] bool decryptable() const;

  // --- stepping ------------------------------------------------------------
  /// Live AND gates at one multiplicative depth (node ids into graph()).
  [[nodiscard]] const std::vector<u32>& wavefront(unsigned level) const;
  /// The operand pair of a wavefront gate, materialized for an engine.
  [[nodiscard]] backend::MulJob gate_job(u32 id) const;
  /// Completes gate `id` with its raw product: reduces modulo the
  /// scheme's x0 and annotates the analytic noise estimate.
  void apply_product(u32 id, bigint::BigUInt product);
  /// Evaluates the live inputs/XOR additions at one depth (call after the
  /// level's AND products are applied; the constructor sweeps level 0).
  void sweep_linear(unsigned level);

  /// One ciphertext per requested output wire, in order. Valid once every
  /// level has been stepped.
  [[nodiscard]] std::vector<Ciphertext> outputs() const;

 private:
  const Graph* graph_;
  std::vector<Wire> output_wires_;
  std::vector<char> live_;
  std::vector<std::vector<u32>> wavefronts_;
  std::vector<Ciphertext> values_;
  std::size_t live_count_ = 0;
  u64 live_xor_ = 0;
  unsigned max_level_ = 0;
  double max_noise_ = 0.0;
  u32 worst_wire_ = Wire::kInvalid;
};

/// Wavefront executor for a recorded Graph: dead nodes (not reachable from
/// the requested outputs) are eliminated, live AND gates are grouped by
/// multiplicative depth, and each depth is issued as ONE batch -- to the
/// multi-PE core::Scheduler when one is installed (every gate of the
/// wavefront in flight across all lanes at once) or to the engine's
/// spectrum-caching multiply_batch otherwise. XOR nodes are plain
/// ciphertext additions evaluated between wavefronts.
///
/// Results are bit-exact against eager fhe::Circuits evaluation: the same
/// products are taken modulo the same x0, only their grouping differs.
class Evaluator {
 public:
  /// Executes AND wavefronts on the graph's scheme engine.
  Evaluator() = default;

  /// Executes AND wavefronts on an explicit engine (any registered
  /// backend), overriding the scheme's.
  explicit Evaluator(std::shared_ptr<backend::MultiplierBackend> engine)
      : engine_(std::move(engine)) {}

  /// Executes each wavefront concurrently on a multi-PE scheduler
  /// (non-owning; the scheduler must outlive the evaluator).
  explicit Evaluator(core::Scheduler& scheduler) : scheduler_(&scheduler) {}

  /// Evaluates `outputs` (and everything they depend on), returning one
  /// ciphertext per requested wire, in order. Fills `report` when given.
  std::vector<Ciphertext> evaluate(const Graph& graph, std::span<const Wire> outputs,
                                   EvalReport* report = nullptr,
                                   const EvalOptions& options = {});

 private:
  std::shared_ptr<backend::MultiplierBackend> engine_;
  core::Scheduler* scheduler_ = nullptr;
};

}  // namespace hemul::fhe
