#pragma once

#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "fhe/graph.hpp"
#include "ssa/spectrum_cache.hpp"

namespace hemul::core {
class Scheduler;
}

namespace hemul::fhe {

/// Transform accounting of one spectrum-resident evaluation. All counters
/// are incremented on the coordinator thread when results are installed, so
/// they are deterministic regardless of scheduler worker count.
struct ResidencyStats {
  u64 forward_transforms = 0;  ///< operand spectra entered (one per distinct wire)
  u64 inverse_transforms = 0;  ///< wires materialized out of the domain
  u64 pointwise_products = 0;  ///< AND gates executed as pointwise products
  u64 domain_additions = 0;    ///< XOR folds executed as pointwise additions
  u64 spectra_evicted = 0;     ///< resident entries dropped after last use
  u64 resident_peak = 0;       ///< high-water mark of simultaneously resident spectra
  u64 bound_flushes = 0;       ///< XOR folds demoted to eager by the reduction bound

  /// Transforms actually executed; the eager path pays ~3 per AND gate.
  [[nodiscard]] u64 transforms_executed() const noexcept {
    return forward_transforms + inverse_transforms;
  }
};

/// Execution statistics of one wavefront (all independent AND gates at one
/// multiplicative depth, issued as a single batch). On the scheduler path
/// these are before/after deltas of the scheduler-wide counters, so they
/// are accurate only when the scheduler is not shared concurrently during
/// the evaluation (pass no report to skip collecting them entirely).
struct WavefrontStats {
  unsigned level = 0;  ///< multiplicative depth of the wavefront
  u64 and_gates = 0;   ///< gates batched at this depth
  /// Engine-path transform accounting (multiply_batch): spectrum-cache
  /// hits, forward/inverse transforms, modeled cycles for "hw".
  backend::BatchStats batch;
  /// Cache accounting unified across execution paths: the scheduler path
  /// reads the shared ConcurrentSpectrumCache delta, the engine path
  /// mirrors batch.spectrum_cache_hits / batch.forward_transforms.
  u64 cache_hits = 0;
  u64 cache_misses = 0;
  unsigned lanes_used = 0;  ///< PE lanes that executed >= 1 gate (scheduler path)
  double wall_ms = 0.0;     ///< wall-clock of the wavefront
  // Spectrum-residency accounting (filled when the evaluation ran
  // resident; deterministic deltas of the coordinator-side counters).
  u64 spectra_cached = 0;      ///< forward transforms entered at this level
  u64 inverses_paid = 0;       ///< wires materialized out of the domain
  u64 folds = 0;               ///< XOR gates swept as pointwise additions
  i64 transforms_avoided = 0;  ///< 3 * and_gates - transforms executed
};

/// End-to-end report of one Evaluator::evaluate call.
struct EvalReport {
  std::size_t nodes = 0;       ///< nodes recorded in the graph
  std::size_t live_nodes = 0;  ///< reachable from the requested outputs
  std::size_t dead_nodes = 0;  ///< eliminated before execution
  u64 and_gates = 0;           ///< multiplications actually executed
  u64 xor_gates = 0;           ///< ciphertext additions executed
  unsigned levels = 0;         ///< multiplicative depth (= wavefront count)
  double max_noise_bits = 0.0;  ///< worst predicted residue over live wires
  bool decryptable = false;     ///< model verdict for every live wire
  bool spectrum_resident = false;  ///< wires stayed in the NTT domain
  ResidencyStats residency;        ///< totals (meaningful when resident)
  std::vector<WavefrontStats> wavefronts;

  [[nodiscard]] std::size_t wavefront_count() const noexcept { return wavefronts.size(); }
};

/// Thrown by the pre-execution check when the analytic NoiseModel predicts
/// that some live wire no longer decrypts -- *before* any multiplication
/// is spent on a computation whose result would be garbage.
class NoiseBudgetError : public std::runtime_error {
 public:
  NoiseBudgetError(const std::string& message, Wire wire, unsigned level,
                   double noise_bits, double budget_bits)
      : std::runtime_error(message),
        wire(wire),
        level(level),
        noise_bits(noise_bits),
        budget_bits(budget_bits) {}

  Wire wire;          ///< first offending wire (deepest predicted noise)
  unsigned level;     ///< its multiplicative depth
  double noise_bits;  ///< predicted residue bits
  double budget_bits; ///< decryptability bound (eta - 2)
};

struct EvalOptions {
  /// Run the NoiseModel decryptability check over every live wire before
  /// executing anything; throw NoiseBudgetError on the first violation.
  /// Disable to reproduce eager semantics (compute first, fail at
  /// decryption) -- e.g. for parity benchmarks past the noise budget.
  bool check_noise = true;
};

/// The stepping core of wavefront evaluation, shared by every executor of
/// a recorded Graph: dead-node elimination from the requested outputs,
/// per-depth wavefront grouping, the pre-execution noise audit, XOR/input
/// sweeps and AND-product completion (reduction modulo x0 + noise
/// annotation). fhe::Evaluator drives one instance to completion in a
/// single call; core::Service interleaves many instances one level per
/// coalesced round. Keeping the rules here is what guarantees served
/// results stay bit-exact against in-process evaluation.
///
/// Protocol per level L = 1..max_level(): obtain the gates of
/// wavefront(L), multiply each gate_job() on any engine, hand every raw
/// product back through apply_product(), then sweep_linear(L). Level 0
/// (inputs and depth-0 XORs) is swept in the constructor.
class EvalState {
 public:
  /// Validates the output wires, eliminates dead nodes, levels the live
  /// AND gates into wavefronts and sweeps level 0. No multiplication
  /// happens here.
  EvalState(const Graph& graph, std::span<const Wire> outputs);

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

  // --- audit results (available before any execution) ---------------------
  [[nodiscard]] unsigned max_level() const noexcept { return max_level_; }
  [[nodiscard]] std::size_t live_nodes() const noexcept { return live_count_; }
  [[nodiscard]] u64 live_xor_gates() const noexcept { return live_xor_; }
  [[nodiscard]] double max_noise_bits() const noexcept { return max_noise_; }
  /// The live wire with the worst predicted residue.
  [[nodiscard]] Wire worst_wire() const noexcept { return Wire{worst_wire_}; }
  /// NoiseModel verdict over every live wire.
  [[nodiscard]] bool decryptable() const;

  // --- stepping ------------------------------------------------------------
  /// Live AND gates at one multiplicative depth (node ids into graph()).
  [[nodiscard]] const std::vector<u32>& wavefront(unsigned level) const;
  /// The operand pair of a wavefront gate, materialized for an engine.
  [[nodiscard]] backend::MulJob gate_job(u32 id) const;
  /// Completes gate `id` with its raw product: reduces modulo the
  /// scheme's x0 and annotates the analytic noise estimate.
  void apply_product(u32 id, bigint::BigUInt product);
  /// Evaluates the live inputs/XOR additions at one depth (call after the
  /// level's AND products are applied; the constructor sweeps level 0).
  void sweep_linear(unsigned level);

  /// One ciphertext per requested output wire, in order. Valid once every
  /// level has been stepped.
  [[nodiscard]] std::vector<Ciphertext> outputs() const;

  // --- spectrum-resident stepping ------------------------------------------
  // Opt-in alternative protocol per level L (engines that speak spectrum
  // handles only -- SsaBackend / "ssa" scheduler lanes):
  //   1. forward every wire of spectrum_plan(L), install_operand_spectrum();
  //   2. pointwise-multiply each wavefront gate's operand spectra,
  //      install_product();
  //   3. fold_linear(L): XOR gates over in-domain products become pointwise
  //      spectrum additions (lazy coefficients, bound-tracked);
  //   4. materialize every wire of materialize_plan(L) (one inverse each),
  //      apply_materialized();
  //   5. sweep_linear(L) for the remaining eager XORs;
  //   6. evict_spent_spectra(L).
  // Results are bit-exact against the eager protocol: spectrum sums stand
  // for sums of the same raw products, reduced by the same x0 at
  // materialization ((a mod x0) + (b mod x0) == a + b (mod x0)).

  /// Plans residency: decides per wire whether it stays in the spectrum
  /// domain (static reduction-bound analysis included; over-bound XOR folds
  /// are demoted to eager and counted as bound_flushes). `registry`, when
  /// given, mirrors resident entries into the shared concurrent cache under
  /// a per-evaluation uid so cross-request residency stays observable and
  /// bounded.
  void enable_residency(const ssa::SsaParams& params,
                        ssa::ConcurrentSpectrumCache* registry = nullptr);
  [[nodiscard]] bool residency_enabled() const noexcept { return residency_; }
  [[nodiscard]] const ssa::SsaParams& spectrum_params() const noexcept { return params_; }

  /// The materialized value of a wire (for forward transforms).
  [[nodiscard]] const bigint::BigUInt& wire_value(u32 id) const;

  /// Distinct operand wires of wavefront(level) gates that still need a
  /// forward transform (ascending wire id; deterministic).
  [[nodiscard]] std::vector<u32> spectrum_plan(unsigned level) const;
  void install_operand_spectrum(u32 wire, ssa::SpectrumHandle spectrum);
  [[nodiscard]] ssa::SpectrumHandle operand_spectrum(u32 wire) const;

  /// Installs the pointwise product spectrum of wavefront gate `id`.
  void install_product(u32 id, ssa::SpectrumHandle spectrum);

  /// Sweeps the level's foldable XOR gates as pointwise spectrum additions
  /// (coordinator-side; a fold is one O(N) vector addition).
  void fold_linear(unsigned level);

  /// Wires of this level whose values are consumed outside the spectrum
  /// domain (outputs, AND operands, eager-XOR operands) -- one inverse
  /// transform each (ascending wire id; deterministic).
  [[nodiscard]] std::vector<u32> materialize_plan(unsigned level) const;

  /// The product/sum spectrum standing for wire `id`.
  [[nodiscard]] ssa::SpectrumHandle wire_spectrum(u32 id) const;

  /// Completes a materialization with the raw integer the spectrum stood
  /// for: reduces modulo x0 and annotates the analytic noise estimate.
  void apply_materialized(u32 id, bigint::BigUInt raw);

  /// Drops every resident spectrum whose last consumer was this level
  /// (single-use operands leave after the wavefront that consumed them).
  void evict_spent_spectra(unsigned level);

  [[nodiscard]] const ResidencyStats& residency_stats() const noexcept { return rstats_; }

  ~EvalState();

 private:
  [[nodiscard]] u64 local_key(u32 wire, unsigned kind) const noexcept;
  [[nodiscard]] u64 registry_key(u32 wire, unsigned kind) const noexcept;
  void publish(u32 wire, unsigned kind, ssa::SpectrumHandle spectrum);
  void evict(u32 wire, unsigned kind);

  const Graph* graph_;
  std::vector<Wire> output_wires_;
  std::vector<char> live_;
  std::vector<std::vector<u32>> wavefronts_;
  std::vector<Ciphertext> values_;
  std::size_t live_count_ = 0;
  u64 live_xor_ = 0;
  unsigned max_level_ = 0;
  double max_noise_ = 0.0;
  u32 worst_wire_ = Wire::kInvalid;

  // Spectrum residency (set up by enable_residency).
  bool residency_ = false;
  ssa::SsaParams params_;
  ssa::ConcurrentSpectrumCache* registry_ = nullptr;
  u64 uid_ = 0;  ///< registry key namespace of this evaluation
  ssa::SpectrumCache resident_cache_;  ///< wire-keyed spectra of this evaluation
  std::vector<char> folded_;       ///< XOR swept in the spectrum domain
  std::vector<char> needs_value_;  ///< wire consumed outside the domain
  std::vector<std::vector<u32>> evict_operand_;   ///< kind-0 eviction per level
  std::vector<std::vector<u32>> evict_spectrum_;  ///< kind-1 eviction per level
  std::size_t resident_now_ = 0;  ///< current local resident entries
  ResidencyStats rstats_;
};

/// Wavefront executor for a recorded Graph: dead nodes (not reachable from
/// the requested outputs) are eliminated, live AND gates are grouped by
/// multiplicative depth, and each depth is issued as ONE batch -- to the
/// multi-PE core::Scheduler when one is installed (every gate of the
/// wavefront in flight across all lanes at once) or to the engine's
/// spectrum-caching multiply_batch otherwise. XOR nodes are plain
/// ciphertext additions evaluated between wavefronts.
///
/// Results are bit-exact against eager fhe::Circuits evaluation: the same
/// products are taken modulo the same x0, only their grouping differs.
class Evaluator {
 public:
  /// Executes AND wavefronts on the graph's scheme engine.
  Evaluator() = default;

  /// Executes AND wavefronts on an explicit engine (any registered
  /// backend), overriding the scheme's.
  explicit Evaluator(std::shared_ptr<backend::MultiplierBackend> engine)
      : engine_(std::move(engine)) {}

  /// Executes each wavefront concurrently on a multi-PE scheduler
  /// (non-owning; the scheduler must outlive the evaluator).
  explicit Evaluator(core::Scheduler& scheduler) : scheduler_(&scheduler) {}

  /// Evaluates `outputs` (and everything they depend on), returning one
  /// ciphertext per requested wire, in order. Fills `report` when given.
  std::vector<Ciphertext> evaluate(const Graph& graph, std::span<const Wire> outputs,
                                   EvalReport* report = nullptr,
                                   const EvalOptions& options = {});

 private:
  std::shared_ptr<backend::MultiplierBackend> engine_;
  core::Scheduler* scheduler_ = nullptr;
};

}  // namespace hemul::fhe
