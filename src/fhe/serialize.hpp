#pragma once

#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "fhe/dghv.hpp"
#include "fhe/graph.hpp"

namespace hemul::fhe {

/// Thrown by every decode path on malformed input: truncated buffers, bad
/// magic/version/tag bytes, length-prefix mismatches, non-canonical limb
/// vectors, out-of-range wire references. Decoding never exhibits UB on
/// hostile bytes -- every read is bounds-checked first (the serving layer
/// feeds these functions data that crossed a trust boundary).
class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The wire encoding of one serialized object.
using Bytes = std::vector<u8>;

/// Object tag of a wire frame. Every top-level object travels as
///
///   u32 magic "HMW1" | u8 version | u8 tag | u64 payload bytes | payload
///
/// (all integers little-endian), so a stream can be validated, skipped and
/// demultiplexed without understanding every payload. New payload layouts
/// bump kWireVersion; decoders reject versions they do not speak.
enum class WireTag : u8 {
  kBigUInt = 1,
  kParams = 2,
  kPublicKey = 3,
  kSecretKey = 4,
  kCiphertext = 5,
  kGraph = 6,
  /// core::Request envelope: circuit spec (kind, width, lowering strategy
  /// byte) plus the nested graph/input payloads. Encoded by
  /// core::encode_request -- the tag lives here so the frame namespace
  /// stays collision-free.
  kRequest = 7,
  /// core::Response frame: status byte, retry-after hint, diagnostic,
  /// output ciphertext stream and the execution counters. Encoded by
  /// core::encode_response.
  kResponse = 8,
  /// Transport envelope of the shard/router protocol: message type,
  /// session id, request id, nested payload (see docs/wire-protocol.md).
  kEnvelope = 9,
};

inline constexpr u32 kWireMagic = 0x31574D48u;  ///< "HMW1", little-endian
inline constexpr u8 kWireVersion = 1;

/// Append-only encoder for the primitive wire types. Higher-level encoders
/// compose these; frames are finished with finish_frame() which backpatches
/// the length prefix.
class ByteWriter {
 public:
  void put_u8(u8 value) { out_.push_back(value); }
  void put_u32(u32 value);
  void put_u64(u64 value);
  /// Doubles travel as the IEEE-754 bit pattern of the value.
  void put_f64(double value);
  /// Raw limb vector: u64 count + count little-endian limbs.
  void put_biguint(const bigint::BigUInt& x);
  /// Length-prefixed opaque byte string: u64 count + the bytes verbatim
  /// (nested payloads, e.g. the graph/input streams of a Request).
  void put_bytes(std::span<const u8> data);

  /// Opens a frame: writes the magic/version/tag header and a length
  /// placeholder. Frames may not nest.
  void begin_frame(WireTag tag);
  /// Closes the open frame, backpatching the payload length.
  void finish_frame();

  [[nodiscard]] const Bytes& bytes() const noexcept { return out_; }
  [[nodiscard]] Bytes take() noexcept { return std::move(out_); }

 private:
  Bytes out_;
  std::size_t frame_length_at_ = 0;  ///< offset of the open frame's length field
  bool in_frame_ = false;
};

/// Bounds-checked decoder: every read verifies the remaining byte count
/// first and throws SerializeError on underrun. Does not own the buffer.
class ByteReader {
 public:
  explicit ByteReader(std::span<const u8> data) : data_(data) {}

  [[nodiscard]] u8 get_u8();
  [[nodiscard]] u32 get_u32();
  [[nodiscard]] u64 get_u64();
  [[nodiscard]] double get_f64();
  /// Rejects non-canonical encodings (trailing zero limb), so
  /// decode(encode(x)) == x is a bijection.
  [[nodiscard]] bigint::BigUInt get_biguint();
  /// Inverse of ByteWriter::put_bytes (bounds-checked before copying).
  [[nodiscard]] Bytes get_bytes();

  /// Reads and validates a frame header of the expected tag; returns the
  /// payload length after checking it fits the remaining bytes.
  u64 expect_frame(WireTag tag);

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }

 private:
  void need(std::size_t bytes) const;

  std::span<const u8> data_;
  std::size_t pos_ = 0;
};

/// Scheme-independent description of a recorded circuit: the node list in
/// recording order (inputs as placeholders -- the ciphertexts travel
/// separately) plus the requested output wires. This is what a Request
/// carries over the wire; build() re-records it against any scheme.
struct GraphTopology {
  struct Node {
    GateOp op = GateOp::kInput;
    u32 a = Wire::kInvalid;  ///< operand node indices (gates only)
    u32 b = Wire::kInvalid;
  };

  std::vector<Node> nodes;
  std::vector<u32> outputs;  ///< node indices of the requested outputs

  /// Input placeholders in the node list (= ciphertexts a request must carry).
  [[nodiscard]] std::size_t input_count() const noexcept;

  /// Operand/output indices in range, gates referencing earlier nodes only.
  /// Throws SerializeError on violation (also called by read_graph).
  void validate() const;

  /// Re-records the circuit into `graph`, feeding `inputs` to the input
  /// placeholders in order. Returns the output wires. The rebuilt graph is
  /// gate-for-gate identical modulo CSE, so evaluating it reproduces the
  /// original results bit for bit.
  std::vector<Wire> build(Graph& graph, std::span<const Ciphertext> inputs) const;

  /// Captures the topology of a recorded graph (all nodes, in id order).
  static GraphTopology capture(const Graph& graph, std::span<const Wire> outputs);
};

// --- framed encode/decode of the wire objects ------------------------------
//
// Each encode_* returns one self-contained frame; the matching decode_*
// accepts a ByteReader positioned at the frame header (so frames can be
// concatenated into streams) and a convenience overload accepts a whole
// buffer holding exactly one frame.

Bytes encode_biguint(const bigint::BigUInt& x);
bigint::BigUInt decode_biguint(ByteReader& reader);
bigint::BigUInt decode_biguint(std::span<const u8> buffer);

Bytes encode_params(const DghvParams& params);
DghvParams decode_params(ByteReader& reader);
DghvParams decode_params(std::span<const u8> buffer);

Bytes encode_public_key(const PublicKey& key);
PublicKey decode_public_key(ByteReader& reader);
PublicKey decode_public_key(std::span<const u8> buffer);

/// The DGHV secret key is the single integer p, framed with its own tag so
/// key material is never confused with an operand on the wire.
Bytes encode_secret_key(const bigint::BigUInt& p);
bigint::BigUInt decode_secret_key(ByteReader& reader);
bigint::BigUInt decode_secret_key(std::span<const u8> buffer);

Bytes encode_ciphertext(const Ciphertext& c);
Ciphertext decode_ciphertext(ByteReader& reader);
Ciphertext decode_ciphertext(std::span<const u8> buffer);

/// A stream of ciphertext frames back to back (request inputs / response
/// outputs travel this way; the count is implied by the buffer length).
Bytes encode_ciphertexts(std::span<const Ciphertext> cs);
std::vector<Ciphertext> decode_ciphertexts(std::span<const u8> buffer);

Bytes encode_graph(const GraphTopology& topology);
GraphTopology decode_graph(ByteReader& reader);
GraphTopology decode_graph(std::span<const u8> buffer);

// --- transport envelope ----------------------------------------------------
//
// The shard/router fleet protocol (src/net/) exchanges ordinary HMW1 frames
// wrapped in one extra kEnvelope frame that adds routing state the payload
// frames deliberately do not carry: which conversation the bytes belong to
// (session id) and which outstanding call they answer (request id). The
// payload of an envelope is itself a byte-exact HMW1 frame stream, so the
// transport never re-encodes application objects. See docs/wire-protocol.md
// for the normative layout and a worked hex dump.

/// Discriminates the envelope payload. Unknown values are a SerializeError,
/// not an extension point -- new message types are appended here and peers
/// that do not speak them reject the envelope outright.
enum class MessageType : u8 {
  /// client -> shard: params frame + u64 keygen seed. Creates a tenant.
  kCreateSession = 1,
  /// shard -> client: public-key frame + secret-key frame. The new session
  /// id travels in the envelope header.
  kSessionCreated = 2,
  /// client -> shard: one kRequest frame to evaluate under the session.
  kSubmit = 3,
  /// shard -> client: one kResponse frame answering a kSubmit.
  kResponse = 4,
  /// client -> shard/router: empty payload; asks for service statistics.
  kStats = 5,
  /// shard/router -> client: FleetStats payload (see net/frame.hpp).
  kStatsReply = 6,
  /// client -> shard: empty payload; asks the shard to stop accepting.
  kShutdown = 7,
  /// shard -> client: empty payload; acknowledges kShutdown.
  kShutdownAck = 8,
  /// shard/router -> client: error payload (u8 WireErrorCode + message
  /// bytes) answering the request id that failed.
  kError = 9,
  /// any peer -> any peer: liveness probe, empty payload (the router's
  /// health loop sends these). Answered with kPong.
  kPing = 10,
  /// Reply to kPing: empty payload, echoed request id.
  kPong = 11,
};

/// Machine-readable reason inside a kError envelope.
enum class WireErrorCode : u8 {
  kBadRequestBytes = 1,  ///< payload failed to decode (SerializeError)
  kUnknownSession = 2,   ///< session id not present on this shard
  kShuttingDown = 3,     ///< shard is draining; try another shard
  kUnsupported = 4,      ///< message type valid but not handled by this peer
  kInternal = 5,         ///< unexpected server-side failure
};

/// One transport envelope: message type, session id, request id and the
/// nested payload bytes (an HMW1 frame stream, possibly empty).
///
/// The deadline travels in an optional *extension tail* after the payload
/// (u8 extension tag 1 + u64 milliseconds), emitted only when nonzero -- an
/// envelope without a deadline is byte-identical to the original layout, so
/// peers predating the extension still parse deadline-free traffic.
struct Envelope {
  MessageType type = MessageType::kError;
  u64 session = 0;     ///< 0 when the message is not session-scoped
  u64 request_id = 0;  ///< echoes the request this answers; 0 for one-way
  Bytes payload;
  /// Remaining time budget of the request in milliseconds (relative, so it
  /// survives clock skew between hosts). 0 = no deadline. A server drops
  /// work still queued past its budget with ResponseStatus::kExpired.
  u64 deadline_ms = 0;
};

Bytes encode_envelope(const Envelope& envelope);
Envelope decode_envelope(ByteReader& reader);
Envelope decode_envelope(std::span<const u8> buffer);

/// Payload builder/parser for MessageType::kError envelopes.
Bytes encode_error_payload(WireErrorCode code, const std::string& message);
std::pair<WireErrorCode, std::string> decode_error_payload(std::span<const u8> payload);

}  // namespace hemul::fhe
