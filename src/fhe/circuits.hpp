#pragma once

#include <atomic>
#include <vector>

#include "fhe/dghv.hpp"
#include "fhe/evaluator.hpp"
#include "fhe/graph.hpp"

namespace hemul::core {
class Scheduler;
}

namespace hemul::fhe {

/// An encrypted little-endian integer: bit i of the plaintext in word[i].
using EncryptedInt = std::vector<Ciphertext>;

/// Homomorphic boolean/arithmetic circuits over DGHV ciphertexts -- the
/// kinds of server-side computations the paper's introduction motivates
/// (multiparty computation, medical/financial computing, electronic
/// voting). Every AND gate is one ultralong multiplication on the
/// accelerator; the circuit classes below track exactly how many.
///
/// This class is the *eager* facade of the circuit layer: calls with
/// independent gates (gate_or, gate_maj, gate_and_batch) record a one-shot
/// fhe::Graph and evaluate it immediately through the wavefront Evaluator,
/// issuing those gates as one batch while results stay call-by-call; a
/// lone gate_and skips the IR and hits the engine directly. To record a
/// whole circuit and execute it level-by-level across the PE lanes, build
/// an fhe::Graph directly and run an fhe::Evaluator (or
/// core::Accelerator::evaluate) on it.
class Circuits {
 public:
  /// Evaluates gates on the scheme's own multiplication engine. `lowering`
  /// is the default strategy of the word-level ops, overridable per call.
  explicit Circuits(const Dghv& scheme, LoweringOptions lowering = {})
      : scheme_(&scheme), lowering_(lowering) {}

  /// Evaluates AND gates on an explicit engine instead (any registered
  /// backend), overriding the scheme's. XOR gates stay additions.
  Circuits(const Dghv& scheme, std::shared_ptr<backend::MultiplierBackend> engine,
           LoweringOptions lowering = {})
      : scheme_(&scheme), lowering_(lowering), engine_(std::move(engine)) {}

  /// Evaluates independent AND gates concurrently on a multi-PE scheduler:
  /// gate_and_batch submits every pair, and multiply() fans *all* its
  /// partial-product gates out at once. Serially-dependent gates (the
  /// carry chains) execute wavefront by wavefront. Non-owning; the
  /// scheduler must outlive the circuits.
  Circuits(const Dghv& scheme, core::Scheduler& scheduler, LoweringOptions lowering = {})
      : scheme_(&scheme), lowering_(lowering), scheduler_(&scheduler) {}

  /// Installs (or, with nullptr, removes) a scheduler for batched gates.
  void set_scheduler(core::Scheduler* scheduler) noexcept { scheduler_ = scheduler; }

  /// Replaces the multiplication engine -- the one engine-mutation API
  /// (mirrors Dghv::set_backend; wrap a bare function in
  /// backend::FunctionBackend). Pass nullptr to fall back to the scheme's
  /// own engine.
  void set_backend(std::shared_ptr<backend::MultiplierBackend> engine) noexcept {
    engine_ = std::move(engine);
  }

  /// Replaces the default lowering of subsequent word-level ops.
  void set_lowering(LoweringOptions lowering) noexcept { lowering_ = lowering; }

  [[nodiscard]] LoweringOptions lowering() const noexcept { return lowering_; }

  // --- gates -------------------------------------------------------------

  [[nodiscard]] Ciphertext gate_xor(const Ciphertext& a, const Ciphertext& b) const;
  [[nodiscard]] Ciphertext gate_and(const Ciphertext& a, const Ciphertext& b) const;
  /// OR via a ^ b ^ ab (one multiplication).
  [[nodiscard]] Ciphertext gate_or(const Ciphertext& a, const Ciphertext& b) const;
  /// NOT via XOR with an encryption of 1.
  [[nodiscard]] Ciphertext gate_not(const Ciphertext& a, const Ciphertext& one) const;
  /// 2-of-3 majority: ab ^ bc ^ ca (three multiplications, one wavefront).
  [[nodiscard]] Ciphertext gate_maj(const Ciphertext& a, const Ciphertext& b,
                                    const Ciphertext& c) const;

  // --- word-level circuits -------------------------------------------------

  struct AdderResult {
    EncryptedInt sum;      ///< same width as the inputs
    Ciphertext carry_out;  ///< the final carry
  };

  /// Addition of two equal-width encrypted integers: a ripple-carry chain
  /// (2 multiplications per bit) or, under carry-save lowering, one
  /// parallel-prefix resolve. The short forms use the facade's default
  /// LoweringOptions; pass explicit options to override per call.
  [[nodiscard]] AdderResult add(const EncryptedInt& a, const EncryptedInt& b,
                                const Ciphertext& zero) const;
  [[nodiscard]] AdderResult add(const EncryptedInt& a, const EncryptedInt& b,
                                const Ciphertext& zero, LoweringOptions options) const;

  /// Equality comparator: AND over XNOR of all bit pairs, serially or as
  /// a balanced tree (width multiplications either way).
  [[nodiscard]] Ciphertext equals(const EncryptedInt& a, const EncryptedInt& b,
                                  const Ciphertext& one) const;
  [[nodiscard]] Ciphertext equals(const EncryptedInt& a, const EncryptedInt& b,
                                  const Ciphertext& one, LoweringOptions options) const;

  /// Schoolbook product of two encrypted w-bit integers (2w-bit result).
  /// Each partial-product row ANDs every bit of `a` against the same b[j],
  /// so rows are issued as one batch: spectrum-caching engines compute
  /// b[j]'s forward transform once per row instead of once per gate. The
  /// rows then accumulate through ripple adders or a Wallace tree.
  [[nodiscard]] EncryptedInt multiply(const EncryptedInt& a, const EncryptedInt& b,
                                      const Ciphertext& zero) const;
  [[nodiscard]] EncryptedInt multiply(const EncryptedInt& a, const EncryptedInt& b,
                                      const Ciphertext& zero, LoweringOptions options) const;

  /// Bitwise select: out = when_false ^ sel * (when_true ^ when_false).
  [[nodiscard]] EncryptedInt mux(const Ciphertext& select, const EncryptedInt& when_true,
                                 const EncryptedInt& when_false) const;

  /// Unsigned a < b via the borrow chain (ripple) or a borrow-save prefix
  /// pass (carry-save).
  [[nodiscard]] Ciphertext less_than(const EncryptedInt& a, const EncryptedInt& b,
                                     const Ciphertext& zero, const Ciphertext& one) const;
  [[nodiscard]] Ciphertext less_than(const EncryptedInt& a, const EncryptedInt& b,
                                     const Ciphertext& zero, const Ciphertext& one,
                                     LoweringOptions options) const;

  /// Batched AND: all pairs through the active engine's multiply_batch (or
  /// fanned out across the scheduler's PE lanes) as one wavefront.
  [[nodiscard]] std::vector<Ciphertext> gate_and_batch(
      std::span<const std::pair<Ciphertext, Ciphertext>> jobs) const;

  /// Multiplications (accelerator invocations) issued so far. Thread-safe:
  /// two threads sharing one Circuits instance never lose counts.
  [[nodiscard]] u64 and_gates_used() const noexcept {
    return and_gates_.load(std::memory_order_relaxed);
  }

 private:
  /// The evaluator matching this facade's execution configuration.
  [[nodiscard]] Evaluator make_evaluator() const;

  /// Evaluates a recorded one-call graph eagerly (no pre-execution noise
  /// veto: the facade reproduces compute-then-fail-at-decryption
  /// semantics) and books its executed AND gates into the counter.
  std::vector<Ciphertext> run(const Graph& graph, std::span<const Wire> outputs) const;

  const Dghv* scheme_;
  LoweringOptions lowering_;
  std::shared_ptr<backend::MultiplierBackend> engine_;  ///< optional override
  core::Scheduler* scheduler_ = nullptr;  ///< optional concurrent fan-out
  mutable std::atomic<u64> and_gates_{0};
};

/// Encrypts an integer bit by bit (width bits, little-endian).
EncryptedInt encrypt_int(Dghv& scheme, u64 value, unsigned width);

/// Decrypts an encrypted integer.
u64 decrypt_int(const Dghv& scheme, const EncryptedInt& value);

}  // namespace hemul::fhe
