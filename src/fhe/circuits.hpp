#pragma once

#include <vector>

#include "fhe/dghv.hpp"

namespace hemul::core {
class Scheduler;
}

namespace hemul::fhe {

/// An encrypted little-endian integer: bit i of the plaintext in word[i].
using EncryptedInt = std::vector<Ciphertext>;

/// Homomorphic boolean/arithmetic circuits over DGHV ciphertexts -- the
/// kinds of server-side computations the paper's introduction motivates
/// (multiparty computation, medical/financial computing, electronic
/// voting). Every AND gate is one ultralong multiplication on the
/// accelerator; the circuit classes below track exactly how many.
class Circuits {
 public:
  /// Evaluates gates on the scheme's own multiplication engine.
  explicit Circuits(const Dghv& scheme) : scheme_(&scheme) {}

  /// Evaluates AND gates on an explicit engine instead (any registered
  /// backend), overriding the scheme's. XOR gates stay additions.
  Circuits(const Dghv& scheme, std::shared_ptr<backend::MultiplierBackend> engine)
      : scheme_(&scheme), engine_(std::move(engine)) {}

  /// Evaluates independent AND gates concurrently on a multi-PE scheduler:
  /// gate_and_batch submits every pair, and multiply() fans *all* its
  /// partial-product rows out at once instead of issuing one serial batch
  /// per row. Serially-dependent gates (the ripple-carry chain) stay on the
  /// scheme's engine. Non-owning; the scheduler must outlive the circuits.
  Circuits(const Dghv& scheme, core::Scheduler& scheduler)
      : scheme_(&scheme), scheduler_(&scheduler) {}

  /// Installs (or, with nullptr, removes) a scheduler for batched gates.
  void set_scheduler(core::Scheduler* scheduler) noexcept { scheduler_ = scheduler; }

  // --- gates -------------------------------------------------------------

  [[nodiscard]] Ciphertext gate_xor(const Ciphertext& a, const Ciphertext& b) const;
  [[nodiscard]] Ciphertext gate_and(const Ciphertext& a, const Ciphertext& b) const;
  /// OR via a ^ b ^ ab (one multiplication).
  [[nodiscard]] Ciphertext gate_or(const Ciphertext& a, const Ciphertext& b) const;
  /// NOT via XOR with an encryption of 1.
  [[nodiscard]] Ciphertext gate_not(const Ciphertext& a, const Ciphertext& one) const;
  /// 2-of-3 majority: ab ^ bc ^ ca (three multiplications).
  [[nodiscard]] Ciphertext gate_maj(const Ciphertext& a, const Ciphertext& b,
                                    const Ciphertext& c) const;

  // --- word-level circuits -------------------------------------------------

  struct AdderResult {
    EncryptedInt sum;      ///< same width as the inputs
    Ciphertext carry_out;  ///< the final carry
  };

  /// Ripple-carry addition of two equal-width encrypted integers.
  /// Uses 2 multiplications per bit position (carry = maj(a, b, c) with
  /// shared subterms).
  [[nodiscard]] AdderResult add(const EncryptedInt& a, const EncryptedInt& b,
                                const Ciphertext& zero) const;

  /// Equality comparator: AND over XNOR of all bit pairs
  /// (width multiplications).
  [[nodiscard]] Ciphertext equals(const EncryptedInt& a, const EncryptedInt& b,
                                  const Ciphertext& one) const;

  /// Schoolbook product of two encrypted w-bit integers (2w-bit result).
  /// Each partial-product row ANDs every bit of `a` against the same b[j],
  /// so rows are issued as one batch: spectrum-caching engines compute
  /// b[j]'s forward transform once per row instead of once per gate.
  [[nodiscard]] EncryptedInt multiply(const EncryptedInt& a, const EncryptedInt& b,
                                      const Ciphertext& zero) const;

  /// Batched AND: all pairs through the active engine's multiply_batch.
  [[nodiscard]] std::vector<Ciphertext> gate_and_batch(
      std::span<const std::pair<Ciphertext, Ciphertext>> jobs) const;

  /// Multiplications (accelerator invocations) issued so far.
  [[nodiscard]] u64 and_gates_used() const noexcept { return and_gates_; }

 private:
  /// Ciphertext from a raw product: reduce mod x0, track the noise growth.
  [[nodiscard]] Ciphertext from_product(bigint::BigUInt product, const Ciphertext& a,
                                        const Ciphertext& b) const;

  const Dghv* scheme_;
  std::shared_ptr<backend::MultiplierBackend> engine_;  ///< optional override
  core::Scheduler* scheduler_ = nullptr;  ///< optional concurrent fan-out
  mutable u64 and_gates_ = 0;
};

/// Encrypts an integer bit by bit (width bits, little-endian).
EncryptedInt encrypt_int(Dghv& scheme, u64 value, unsigned width);

/// Decrypts an encrypted integer.
u64 decrypt_int(const Dghv& scheme, const EncryptedInt& value);

}  // namespace hemul::fhe
