#pragma once

#include <cstddef>

#include "util/uint128.hpp"

namespace hemul::fhe {

/// Parameters of the DGHV somewhat-homomorphic scheme over the integers
/// (van Dijk-Gentry-Halevi-Vaikuntanathan, EUROCRYPT'10, in the
/// Coron-Mandal-Naccache-Tibouchi CRYPTO'11 variant with an exact public
/// modulus x0 = q0*p).
///
///   rho   - noise bits per public-key element
///   eta   - secret key bits
///   gamma - ciphertext bits (the operand size of the accelerator!)
///   tau   - number of public-key elements
struct DghvParams {
  unsigned lambda = 0;     ///< nominal security level (documentation only)
  std::size_t rho = 0;
  std::size_t eta = 0;
  std::size_t gamma = 0;
  unsigned tau = 0;

  /// Tiny parameters for fast tests (seconds-scale, zero security).
  static DghvParams toy();

  /// The paper's workload: the "small" DGHV setting with gamma = 786,432,
  /// so each homomorphic multiplication is exactly the 786,432-bit product
  /// the accelerator targets (eta/rho/tau follow the CMNT small setting
  /// approximately; security is irrelevant to the reproduction).
  static DghvParams small_paper();

  /// Mid-size setting for integration tests (sub-second homomorphic mult).
  static DghvParams medium();

  /// Small-gamma / large-eta setting with a deep noise budget, for
  /// evaluating multi-level circuits (e.g. the word-level multiplier of
  /// fhe::Circuits) without bootstrapping.
  static DghvParams deep();

  /// Consistency checks (eta < gamma, rho < eta, tau >= 1 ...).
  /// Throws std::invalid_argument on violation.
  void validate() const;

  /// Noise bits of a freshly encrypted bit: the subset sum of up to tau
  /// elements of rho-bit noise plus the encryption noise.
  [[nodiscard]] double fresh_noise_bits() const noexcept;
};

}  // namespace hemul::fhe
