#include "fhe/serialize.hpp"

#include <bit>
#include <limits>

#include "util/check.hpp"

namespace hemul::fhe {

namespace {

[[noreturn]] void fail(const std::string& what) { throw SerializeError("serialize: " + what); }

}  // namespace

// --- ByteWriter ------------------------------------------------------------

void ByteWriter::put_u32(u32 value) {
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<u8>(value >> (8 * i)));
}

void ByteWriter::put_u64(u64 value) {
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<u8>(value >> (8 * i)));
}

void ByteWriter::put_f64(double value) { put_u64(std::bit_cast<u64>(value)); }

void ByteWriter::put_biguint(const bigint::BigUInt& x) {
  put_u64(x.limb_count());
  for (const u64 limb : x.limbs()) put_u64(limb);
}

void ByteWriter::put_bytes(std::span<const u8> data) {
  put_u64(data.size());
  out_.insert(out_.end(), data.begin(), data.end());
}

void ByteWriter::begin_frame(WireTag tag) {
  HEMUL_CHECK_MSG(!in_frame_, "ByteWriter: frames may not nest");
  put_u32(kWireMagic);
  put_u8(kWireVersion);
  put_u8(static_cast<u8>(tag));
  frame_length_at_ = out_.size();
  put_u64(0);  // length placeholder, backpatched by finish_frame
  in_frame_ = true;
}

void ByteWriter::finish_frame() {
  HEMUL_CHECK_MSG(in_frame_, "ByteWriter: no open frame");
  const u64 payload = out_.size() - frame_length_at_ - 8;
  for (int i = 0; i < 8; ++i) {
    out_[frame_length_at_ + static_cast<std::size_t>(i)] = static_cast<u8>(payload >> (8 * i));
  }
  in_frame_ = false;
}

// --- ByteReader ------------------------------------------------------------

void ByteReader::need(std::size_t bytes) const {
  if (remaining() < bytes) {
    fail("truncated buffer: need " + std::to_string(bytes) + " bytes, have " +
         std::to_string(remaining()));
  }
}

u8 ByteReader::get_u8() {
  need(1);
  return data_[pos_++];
}

u32 ByteReader::get_u32() {
  need(4);
  u32 value = 0;
  for (std::size_t i = 0; i < 4; ++i) value |= static_cast<u32>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return value;
}

u64 ByteReader::get_u64() {
  need(8);
  u64 value = 0;
  for (std::size_t i = 0; i < 8; ++i) value |= static_cast<u64>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return value;
}

double ByteReader::get_f64() { return std::bit_cast<double>(get_u64()); }

bigint::BigUInt ByteReader::get_biguint() {
  const u64 count = get_u64();
  // The count must be backed by actual bytes before any allocation: a
  // hostile 2^60 count would otherwise reserve exabytes.
  if (count > remaining() / 8) fail("limb count exceeds the buffer");
  std::vector<u64> limbs;
  limbs.reserve(count);
  for (u64 i = 0; i < count; ++i) limbs.push_back(get_u64());
  if (!limbs.empty() && limbs.back() == 0) fail("non-canonical limb vector (trailing zero)");
  return bigint::BigUInt::from_limbs(std::move(limbs));
}

Bytes ByteReader::get_bytes() {
  const u64 count = get_u64();
  // Bounds first (same hostile-count rule as get_biguint).
  if (count > remaining()) fail("byte string length exceeds the buffer");
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + count));
  pos_ += count;
  return out;
}

u64 ByteReader::expect_frame(WireTag tag) {
  if (get_u32() != kWireMagic) fail("bad magic (not a hemul wire frame)");
  const u8 version = get_u8();
  if (version != kWireVersion) {
    fail("unsupported wire version " + std::to_string(version));
  }
  const u8 got = get_u8();
  if (got != static_cast<u8>(tag)) {
    fail("unexpected frame tag " + std::to_string(got) + " (want " +
         std::to_string(static_cast<u8>(tag)) + ")");
  }
  const u64 payload = get_u64();
  if (payload > remaining()) fail("frame payload length exceeds the buffer");
  return payload;
}

namespace {

/// Decodes one frame's payload with `body`, verifying the consumed byte
/// count matches the length prefix exactly.
template <typename Fn>
auto decode_frame(ByteReader& reader, WireTag tag, Fn body) {
  const u64 payload = reader.expect_frame(tag);
  const std::size_t start = reader.position();
  auto value = body(reader);
  if (reader.position() - start != payload) fail("frame payload length mismatch");
  return value;
}

/// Decodes a buffer holding exactly one frame (no trailing bytes).
template <typename Fn>
auto decode_whole(std::span<const u8> buffer, WireTag tag, Fn body) {
  ByteReader reader(buffer);
  auto value = decode_frame(reader, tag, body);
  if (!reader.at_end()) fail("trailing bytes after frame");
  return value;
}

bigint::BigUInt read_biguint_payload(ByteReader& r) { return r.get_biguint(); }

DghvParams read_params_payload(ByteReader& r) {
  DghvParams params;
  params.lambda = r.get_u32();
  params.rho = r.get_u64();
  params.eta = r.get_u64();
  params.gamma = r.get_u64();
  params.tau = r.get_u32();
  try {
    params.validate();
  } catch (const std::invalid_argument& e) {
    fail(std::string("inconsistent DGHV parameters: ") + e.what());
  }
  return params;
}

void write_params_payload(ByteWriter& w, const DghvParams& params) {
  w.put_u32(params.lambda);
  w.put_u64(params.rho);
  w.put_u64(params.eta);
  w.put_u64(params.gamma);
  w.put_u32(params.tau);
}

Ciphertext read_ciphertext_payload(ByteReader& r) {
  Ciphertext c;
  c.value = r.get_biguint();
  c.noise_bits = r.get_f64();
  if (!(c.noise_bits >= 0.0) || c.noise_bits > 1e12) fail("ciphertext noise out of range");
  return c;
}

void write_ciphertext_payload(ByteWriter& w, const Ciphertext& c) {
  w.put_biguint(c.value);
  w.put_f64(c.noise_bits);
}

}  // namespace

// --- BigUInt ---------------------------------------------------------------

Bytes encode_biguint(const bigint::BigUInt& x) {
  ByteWriter w;
  w.begin_frame(WireTag::kBigUInt);
  w.put_biguint(x);
  w.finish_frame();
  return w.take();
}

bigint::BigUInt decode_biguint(ByteReader& reader) {
  return decode_frame(reader, WireTag::kBigUInt, read_biguint_payload);
}

bigint::BigUInt decode_biguint(std::span<const u8> buffer) {
  return decode_whole(buffer, WireTag::kBigUInt, read_biguint_payload);
}

// --- DghvParams ------------------------------------------------------------

Bytes encode_params(const DghvParams& params) {
  ByteWriter w;
  w.begin_frame(WireTag::kParams);
  write_params_payload(w, params);
  w.finish_frame();
  return w.take();
}

DghvParams decode_params(ByteReader& reader) {
  return decode_frame(reader, WireTag::kParams, read_params_payload);
}

DghvParams decode_params(std::span<const u8> buffer) {
  return decode_whole(buffer, WireTag::kParams, read_params_payload);
}

// --- PublicKey -------------------------------------------------------------

Bytes encode_public_key(const PublicKey& key) {
  ByteWriter w;
  w.begin_frame(WireTag::kPublicKey);
  write_params_payload(w, key.params);
  w.put_biguint(key.x0);
  w.put_u32(static_cast<u32>(key.x.size()));
  for (const bigint::BigUInt& xi : key.x) w.put_biguint(xi);
  w.finish_frame();
  return w.take();
}

namespace {

PublicKey read_public_key_payload(ByteReader& r) {
  PublicKey key;
  key.params = read_params_payload(r);
  key.x0 = r.get_biguint();
  if (key.x0.is_zero()) fail("public modulus x0 is zero");
  const u32 count = r.get_u32();
  if (count != key.params.tau) fail("public-key element count disagrees with tau");
  // Every element costs at least its 8-byte limb count: bound the
  // allocation by the bytes actually present (a hostile tau would
  // otherwise reserve gigabytes before the first element read fails).
  if (count > r.remaining() / 8) fail("public-key element count exceeds the buffer");
  key.x.reserve(count);
  for (u32 i = 0; i < count; ++i) key.x.push_back(r.get_biguint());
  return key;
}

}  // namespace

PublicKey decode_public_key(ByteReader& reader) {
  return decode_frame(reader, WireTag::kPublicKey, read_public_key_payload);
}

PublicKey decode_public_key(std::span<const u8> buffer) {
  return decode_whole(buffer, WireTag::kPublicKey, read_public_key_payload);
}

// --- secret key ------------------------------------------------------------

Bytes encode_secret_key(const bigint::BigUInt& p) {
  ByteWriter w;
  w.begin_frame(WireTag::kSecretKey);
  w.put_biguint(p);
  w.finish_frame();
  return w.take();
}

bigint::BigUInt decode_secret_key(ByteReader& reader) {
  return decode_frame(reader, WireTag::kSecretKey, read_biguint_payload);
}

bigint::BigUInt decode_secret_key(std::span<const u8> buffer) {
  return decode_whole(buffer, WireTag::kSecretKey, read_biguint_payload);
}

// --- Ciphertext ------------------------------------------------------------

Bytes encode_ciphertext(const Ciphertext& c) {
  ByteWriter w;
  w.begin_frame(WireTag::kCiphertext);
  write_ciphertext_payload(w, c);
  w.finish_frame();
  return w.take();
}

Ciphertext decode_ciphertext(ByteReader& reader) {
  return decode_frame(reader, WireTag::kCiphertext, read_ciphertext_payload);
}

Ciphertext decode_ciphertext(std::span<const u8> buffer) {
  return decode_whole(buffer, WireTag::kCiphertext, read_ciphertext_payload);
}

Bytes encode_ciphertexts(std::span<const Ciphertext> cs) {
  ByteWriter w;
  for (const Ciphertext& c : cs) {
    w.begin_frame(WireTag::kCiphertext);
    write_ciphertext_payload(w, c);
    w.finish_frame();
  }
  return w.take();
}

std::vector<Ciphertext> decode_ciphertexts(std::span<const u8> buffer) {
  ByteReader reader(buffer);
  std::vector<Ciphertext> cs;
  while (!reader.at_end()) cs.push_back(decode_ciphertext(reader));
  return cs;
}

// --- GraphTopology ---------------------------------------------------------

std::size_t GraphTopology::input_count() const noexcept {
  std::size_t count = 0;
  for (const Node& n : nodes) count += n.op == GateOp::kInput ? 1 : 0;
  return count;
}

void GraphTopology::validate() const {
  if (nodes.size() > static_cast<std::size_t>(std::numeric_limits<u32>::max())) {
    fail("graph too large");
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    if (n.op == GateOp::kInput) continue;
    if (n.op != GateOp::kXor && n.op != GateOp::kAnd) fail("unknown gate op");
    if (n.a >= i || n.b >= i) fail("gate operand references a later node");
  }
  if (outputs.empty()) fail("graph has no outputs");
  for (const u32 out : outputs) {
    if (out >= nodes.size()) fail("output references a nonexistent node");
  }
}

std::vector<Wire> GraphTopology::build(Graph& graph,
                                       std::span<const Ciphertext> inputs) const {
  validate();
  if (inputs.size() != input_count()) {
    fail("input ciphertext count " + std::to_string(inputs.size()) +
         " does not match the topology's " + std::to_string(input_count()) + " placeholders");
  }
  // Re-record node by node. CSE may collapse duplicate gates of a
  // hand-built topology onto one wire; the id map keeps outputs correct
  // either way.
  std::vector<Wire> wire_of(nodes.size());
  std::size_t next_input = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    switch (n.op) {
      case GateOp::kInput:
        wire_of[i] = graph.input(inputs[next_input++]);
        break;
      case GateOp::kXor:
        wire_of[i] = graph.gate_xor(wire_of[n.a], wire_of[n.b]);
        break;
      case GateOp::kAnd:
        wire_of[i] = graph.gate_and(wire_of[n.a], wire_of[n.b]);
        break;
    }
  }
  std::vector<Wire> out;
  out.reserve(outputs.size());
  for (const u32 id : outputs) out.push_back(wire_of[id]);
  return out;
}

GraphTopology GraphTopology::capture(const Graph& graph, std::span<const Wire> outputs) {
  GraphTopology topology;
  topology.nodes.reserve(graph.size());
  for (u32 id = 0; id < graph.size(); ++id) {
    const Wire w{id};
    Node n;
    n.op = graph.op(w);
    if (n.op != GateOp::kInput) {
      const auto [a, b] = graph.operands(w);
      n.a = a.id;
      n.b = b.id;
    }
    topology.nodes.push_back(n);
  }
  topology.outputs.reserve(outputs.size());
  for (const Wire w : outputs) {
    HEMUL_CHECK_MSG(w.valid() && w.id < graph.size(), "capture: output wire from another graph");
    topology.outputs.push_back(w.id);
  }
  return topology;
}

Bytes encode_graph(const GraphTopology& topology) {
  topology.validate();
  ByteWriter w;
  w.begin_frame(WireTag::kGraph);
  w.put_u32(static_cast<u32>(topology.nodes.size()));
  for (const GraphTopology::Node& n : topology.nodes) {
    w.put_u8(static_cast<u8>(n.op));
    if (n.op != GateOp::kInput) {
      w.put_u32(n.a);
      w.put_u32(n.b);
    }
  }
  w.put_u32(static_cast<u32>(topology.outputs.size()));
  for (const u32 out : topology.outputs) w.put_u32(out);
  w.finish_frame();
  return w.take();
}

namespace {

GraphTopology read_graph_payload(ByteReader& r) {
  GraphTopology topology;
  const u32 node_count = r.get_u32();
  // Every node costs at least the op byte: bound the allocation by the
  // bytes actually present before reserving.
  if (node_count > r.remaining()) fail("node count exceeds the buffer");
  topology.nodes.reserve(node_count);
  for (u32 i = 0; i < node_count; ++i) {
    GraphTopology::Node n;
    n.op = static_cast<GateOp>(r.get_u8());
    if (n.op != GateOp::kInput) {
      n.a = r.get_u32();
      n.b = r.get_u32();
    }
    topology.nodes.push_back(n);
  }
  const u32 out_count = r.get_u32();
  if (out_count > r.remaining() / 4) fail("output count exceeds the buffer");
  topology.outputs.reserve(out_count);
  for (u32 i = 0; i < out_count; ++i) topology.outputs.push_back(r.get_u32());
  topology.validate();
  return topology;
}

}  // namespace

GraphTopology decode_graph(ByteReader& reader) {
  return decode_frame(reader, WireTag::kGraph, read_graph_payload);
}

GraphTopology decode_graph(std::span<const u8> buffer) {
  return decode_whole(buffer, WireTag::kGraph, read_graph_payload);
}

// --- Envelope --------------------------------------------------------------

namespace {

/// Extension tag of the envelope's optional trailing section. Encoders emit
/// the tail only when the field is set, so an extension-free envelope stays
/// byte-identical to the original layout (older peers keep parsing it).
constexpr u8 kEnvelopeExtDeadline = 1;

}  // namespace

Bytes encode_envelope(const Envelope& envelope) {
  ByteWriter w;
  w.begin_frame(WireTag::kEnvelope);
  w.put_u8(static_cast<u8>(envelope.type));
  w.put_u64(envelope.session);
  w.put_u64(envelope.request_id);
  w.put_bytes(envelope.payload);
  if (envelope.deadline_ms != 0) {
    w.put_u8(kEnvelopeExtDeadline);
    w.put_u64(envelope.deadline_ms);
  }
  w.finish_frame();
  return w.take();
}

namespace {

Envelope read_envelope_payload(ByteReader& r, u64 payload_bytes) {
  const std::size_t start = r.position();
  Envelope envelope;
  const u8 type = r.get_u8();
  if (type < static_cast<u8>(MessageType::kCreateSession) ||
      type > static_cast<u8>(MessageType::kPong)) {
    fail("unknown envelope message type " + std::to_string(type));
  }
  envelope.type = static_cast<MessageType>(type);
  envelope.session = r.get_u64();
  envelope.request_id = r.get_u64();
  envelope.payload = r.get_bytes();
  // Optional extension tail: u8 tag + field, repeated until the frame's
  // declared payload length is consumed. Unknown tags are rejected -- a
  // peer that emits an extension this decoder does not speak is a protocol
  // error, not silently-dropped data.
  while (r.position() - start < payload_bytes) {
    const u8 ext = r.get_u8();
    if (ext == kEnvelopeExtDeadline) {
      if (envelope.deadline_ms != 0) fail("duplicate envelope deadline extension");
      envelope.deadline_ms = r.get_u64();
      if (envelope.deadline_ms == 0) fail("envelope deadline extension must be nonzero");
    } else {
      fail("unknown envelope extension tag " + std::to_string(ext));
    }
  }
  return envelope;
}

}  // namespace

Envelope decode_envelope(ByteReader& reader) {
  // Hand-rolled rather than decode_frame(): the extension-tail parse needs
  // the frame's payload length to know whether a tail is present.
  const u64 payload = reader.expect_frame(WireTag::kEnvelope);
  const std::size_t start = reader.position();
  Envelope envelope = read_envelope_payload(reader, payload);
  if (reader.position() - start != payload) fail("frame payload length mismatch");
  return envelope;
}

Envelope decode_envelope(std::span<const u8> buffer) {
  ByteReader reader(buffer);
  Envelope envelope = decode_envelope(reader);
  if (!reader.at_end()) fail("trailing bytes after frame");
  return envelope;
}

Bytes encode_error_payload(WireErrorCode code, const std::string& message) {
  ByteWriter w;
  w.put_u8(static_cast<u8>(code));
  w.put_bytes(std::span<const u8>(reinterpret_cast<const u8*>(message.data()), message.size()));
  return w.take();
}

std::pair<WireErrorCode, std::string> decode_error_payload(std::span<const u8> payload) {
  ByteReader r(payload);
  const u8 code = r.get_u8();
  if (code < static_cast<u8>(WireErrorCode::kBadRequestBytes) ||
      code > static_cast<u8>(WireErrorCode::kInternal)) {
    fail("unknown wire error code " + std::to_string(code));
  }
  const Bytes message = r.get_bytes();
  if (!r.at_end()) fail("trailing bytes after error payload");
  return {static_cast<WireErrorCode>(code),
          std::string(message.begin(), message.end())};
}

}  // namespace hemul::fhe
