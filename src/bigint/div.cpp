#include "bigint/div.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace hemul::bigint {

DivSmallResult divmod_small(const BigUInt& dividend, u64 divisor) {
  if (divisor == 0) throw std::domain_error("division by zero");
  std::vector<u64> q(dividend.limb_count());
  u64 rem = 0;
  const auto limbs = dividend.limbs();
  for (std::size_t i = limbs.size(); i-- > 0;) {
    const u128 cur = (static_cast<u128>(rem) << 64) | limbs[i];
    q[i] = static_cast<u64>(cur / divisor);
    rem = static_cast<u64>(cur % divisor);
  }
  return {BigUInt::from_limbs(std::move(q)), rem};
}

DivModResult divmod_knuth(const BigUInt& dividend, const BigUInt& divisor) {
  if (divisor.is_zero()) throw std::domain_error("division by zero");
  if (dividend < divisor) return {BigUInt{}, dividend};
  if (divisor.limb_count() == 1) {
    auto [q, r] = divmod_small(dividend, divisor.limb(0));
    return {std::move(q), BigUInt{r}};
  }

  // D1: normalize so the divisor's top limb has its high bit set.
  const std::size_t shift =
      static_cast<std::size_t>(__builtin_clzll(divisor.limbs().back()));
  const BigUInt un = dividend << shift;
  const BigUInt vn = divisor << shift;
  const std::size_t n = vn.limb_count();
  const std::size_t m = un.limb_count() - n;

  std::vector<u64> u(un.limbs().begin(), un.limbs().end());
  u.push_back(0);  // u has m+n+1 digits
  const std::vector<u64> v(vn.limbs().begin(), vn.limbs().end());
  std::vector<u64> q(m + 1, 0);

  const u64 v_top = v[n - 1];
  const u64 v_next = v[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate qhat from the top two dividend digits and v_top.
    const u128 top2 = (static_cast<u128>(u[j + n]) << 64) | u[j + n - 1];
    u128 qhat = top2 / v_top;
    u128 rhat = top2 % v_top;
    while (qhat >> 64 != 0 ||
           static_cast<u128>(static_cast<u64>(qhat)) * v_next >
               ((rhat << 64) | u[j + n - 2])) {
      --qhat;
      rhat += v_top;
      if (rhat >> 64 != 0) break;
    }

    // D4: multiply and subtract u[j..j+n] -= qhat * v.
    const u64 qh = static_cast<u64>(qhat);
    u64 mul_carry = 0;
    u64 borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const u128 prod = mul_wide(qh, v[i]) + mul_carry;
      mul_carry = static_cast<u64>(prod >> 64);
      const u64 plo = static_cast<u64>(prod);
      const u64 d1 = u[j + i] - plo;
      const u64 b1 = u[j + i] < plo ? 1u : 0u;
      const u64 d2 = d1 - borrow;
      const u64 b2 = d1 < borrow ? 1u : 0u;
      u[j + i] = d2;
      borrow = b1 | b2;
    }
    const u64 top_sub = mul_carry + borrow;
    const bool went_negative = u[j + n] < top_sub;
    u[j + n] -= top_sub;

    q[j] = qh;
    if (went_negative) {
      // D6: qhat was one too large; add one divisor row back.
      --q[j];
      u64 carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const u64 s1 = u[j + i] + v[i];
        const u64 c1 = s1 < u[j + i] ? 1u : 0u;
        const u64 s2 = s1 + carry;
        const u64 c2 = s2 < s1 ? 1u : 0u;
        u[j + i] = s2;
        carry = c1 | c2;
      }
      u[j + n] += carry;  // cancels the earlier wraparound
    }
  }

  u.resize(n);
  BigUInt rem = BigUInt::from_limbs(std::move(u));
  rem >>= shift;
  return {BigUInt::from_limbs(std::move(q)), std::move(rem)};
}

DivModResult divmod(const BigUInt& a, const BigUInt& b) { return divmod_knuth(a, b); }

BigUInt operator/(const BigUInt& a, const BigUInt& b) { return divmod_knuth(a, b).quotient; }

BigUInt operator%(const BigUInt& a, const BigUInt& b) { return divmod_knuth(a, b).remainder; }

CenteredResidue mod_centered(const BigUInt& a, const BigUInt& m) {
  BigUInt r = a % m;
  // r in [0, m); recentre to (-m/2, m/2].
  BigUInt twice_r = r;
  twice_r <<= 1;
  if (twice_r > m) return {m - r, true};
  return {std::move(r), false};
}

}  // namespace hemul::bigint
