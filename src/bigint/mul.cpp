#include "bigint/mul.hpp"

#include <algorithm>
#include <atomic>

#include "util/check.hpp"

namespace hemul::bigint {

namespace {

/// Signed big integer used only inside Toom-3 interpolation, where
/// intermediate combinations can be negative even though the final
/// coefficients are not.
struct Signed {
  bool negative = false;  // sign of a zero value is always positive
  BigUInt mag;

  static Signed from(const BigUInt& x) { return Signed{false, x}; }

  void canonicalize() {
    if (mag.is_zero()) negative = false;
  }
};

Signed add(const Signed& a, const Signed& b) {
  Signed r;
  if (a.negative == b.negative) {
    r.negative = a.negative;
    r.mag = a.mag + b.mag;
  } else if (a.mag >= b.mag) {
    r.negative = a.negative;
    r.mag = a.mag - b.mag;
  } else {
    r.negative = b.negative;
    r.mag = b.mag - a.mag;
  }
  r.canonicalize();
  return r;
}

Signed sub(const Signed& a, const Signed& b) {
  Signed nb = b;
  nb.negative = !nb.negative;
  return add(a, nb);
}

Signed mul(const Signed& a, const Signed& b) {
  Signed r;
  r.negative = a.negative != b.negative;
  r.mag = mul_toom3(a.mag, b.mag);
  r.canonicalize();
  return r;
}

/// Exact division of a signed value by a small constant; checks remainder 0.
Signed div_exact_small(const Signed& a, u64 divisor) {
  std::vector<u64> limbs(a.mag.limbs().begin(), a.mag.limbs().end());
  u64 rem = 0;
  for (std::size_t i = limbs.size(); i-- > 0;) {
    const u128 cur = (static_cast<u128>(rem) << 64) | limbs[i];
    limbs[i] = static_cast<u64>(cur / divisor);
    rem = static_cast<u64>(cur % divisor);
  }
  HEMUL_CHECK_MSG(rem == 0, "Toom-3 interpolation division must be exact");
  Signed r;
  r.negative = a.negative;
  r.mag = BigUInt::from_limbs(std::move(limbs));
  r.canonicalize();
  return r;
}

/// Extracts limbs [offset, offset+count) as an independent value.
BigUInt slice(const BigUInt& x, std::size_t offset, std::size_t count) {
  const auto src = x.limbs();
  if (offset >= src.size()) return BigUInt{};
  const std::size_t end = std::min(src.size(), offset + count);
  return BigUInt::from_limbs({src.begin() + static_cast<std::ptrdiff_t>(offset),
                              src.begin() + static_cast<std::ptrdiff_t>(end)});
}

/// result += x << (64 * limb_offset), without temporary shifting.
void add_shifted(std::vector<u64>& acc, const BigUInt& x, std::size_t limb_offset) {
  const auto src = x.limbs();
  if (src.empty()) return;
  if (acc.size() < limb_offset + src.size() + 1) acc.resize(limb_offset + src.size() + 1, 0);
  u64 carry = 0;
  std::size_t i = 0;
  for (; i < src.size(); ++i) {
    u64& dst = acc[limb_offset + i];
    const u64 s1 = dst + src[i];
    const u64 c1 = s1 < dst ? 1u : 0u;
    const u64 s2 = s1 + carry;
    const u64 c2 = s2 < s1 ? 1u : 0u;
    dst = s2;
    carry = c1 | c2;
  }
  while (carry != 0) {
    u64& dst = acc[limb_offset + i];
    dst += carry;
    carry = dst == 0 ? 1u : 0u;
    ++i;
  }
}

}  // namespace

BigUInt mul_schoolbook(const BigUInt& a, const BigUInt& b) {
  if (a.is_zero() || b.is_zero()) return BigUInt{};
  const auto la = a.limbs();
  const auto lb = b.limbs();
  std::vector<u64> out(la.size() + lb.size(), 0);
  for (std::size_t i = 0; i < la.size(); ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < lb.size(); ++j) {
      const u128 cur = mul_wide(la[i], lb[j]) + out[i + j] + carry;
      out[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out[i + lb.size()] += carry;
  }
  return BigUInt::from_limbs(std::move(out));
}

BigUInt mul_karatsuba(const BigUInt& a, const BigUInt& b) {
  const std::size_t n = std::max(a.limb_count(), b.limb_count());
  if (n <= kKaratsubaThresholdLimbs) return mul_schoolbook(a, b);

  const std::size_t half = (n + 1) / 2;
  const BigUInt a0 = slice(a, 0, half);
  const BigUInt a1 = slice(a, half, n);
  const BigUInt b0 = slice(b, 0, half);
  const BigUInt b1 = slice(b, half, n);

  const BigUInt z0 = mul_karatsuba(a0, b0);
  const BigUInt z2 = mul_karatsuba(a1, b1);
  // (a0+a1)(b0+b1) - z0 - z2 = a0*b1 + a1*b0, always non-negative.
  BigUInt z1 = mul_karatsuba(a0 + a1, b0 + b1);
  z1 -= z0;
  z1 -= z2;

  std::vector<u64> acc;
  add_shifted(acc, z0, 0);
  add_shifted(acc, z1, half);
  add_shifted(acc, z2, 2 * half);
  return BigUInt::from_limbs(std::move(acc));
}

BigUInt mul_toom3(const BigUInt& a, const BigUInt& b) {
  const std::size_t n = std::max(a.limb_count(), b.limb_count());
  if (n <= kToom3ThresholdLimbs) return mul_karatsuba(a, b);

  const std::size_t k = (n + 2) / 3;
  const Signed a0 = Signed::from(slice(a, 0, k));
  const Signed a1 = Signed::from(slice(a, k, k));
  const Signed a2 = Signed::from(slice(a, 2 * k, n));
  const Signed b0 = Signed::from(slice(b, 0, k));
  const Signed b1 = Signed::from(slice(b, k, k));
  const Signed b2 = Signed::from(slice(b, 2 * k, n));

  // Evaluation at x = 0, 1, -1, 2, inf.
  const Signed pa1 = add(add(a0, a1), a2);
  const Signed pam1 = add(sub(a0, a1), a2);
  const Signed pa2 = add(add(a0, add(a1, a1)), [&] {
    Signed four_a2 = add(a2, a2);
    return add(four_a2, four_a2);
  }());
  const Signed pb1 = add(add(b0, b1), b2);
  const Signed pbm1 = add(sub(b0, b1), b2);
  const Signed pb2 = add(add(b0, add(b1, b1)), [&] {
    Signed four_b2 = add(b2, b2);
    return add(four_b2, four_b2);
  }());

  const Signed v0 = mul(a0, b0);
  const Signed v1 = mul(pa1, pb1);
  const Signed vm1 = mul(pam1, pbm1);
  const Signed v2 = mul(pa2, pb2);
  const Signed vinf = mul(a2, b2);

  // Interpolation: with c(x) = c0 + c1 x + c2 x^2 + c3 x^3 + c4 x^4,
  //   c0 = v0, c4 = vinf,
  //   c2 = (v1 + vm1)/2 - c0 - c4,
  //   c1 + c3 = (v1 - vm1)/2,
  //   c1 + 4 c3 = (v2 - c0 - 4 c2 - 16 c4)/2.
  const Signed c0 = v0;
  const Signed c4 = vinf;
  const Signed half_sum = div_exact_small(add(v1, vm1), 2);
  const Signed c2 = sub(sub(half_sum, c0), c4);
  const Signed half_diff = div_exact_small(sub(v1, vm1), 2);  // c1 + c3
  Signed t = sub(v2, c0);
  const Signed four_c2 = add(add(c2, c2), add(c2, c2));
  t = sub(t, four_c2);
  Signed sixteen_c4 = add(c4, c4);
  sixteen_c4 = add(sixteen_c4, sixteen_c4);
  sixteen_c4 = add(sixteen_c4, sixteen_c4);
  sixteen_c4 = add(sixteen_c4, sixteen_c4);
  t = div_exact_small(sub(t, sixteen_c4), 2);  // c1 + 4 c3
  const Signed c3 = div_exact_small(sub(t, half_diff), 3);
  const Signed c1 = sub(half_diff, c3);

  // The product of non-negative operands has non-negative coefficients.
  HEMUL_CHECK(!c1.negative && !c2.negative && !c3.negative);

  std::vector<u64> acc;
  add_shifted(acc, c0.mag, 0);
  add_shifted(acc, c1.mag, k);
  add_shifted(acc, c2.mag, 2 * k);
  add_shifted(acc, c3.mag, 3 * k);
  add_shifted(acc, c4.mag, 4 * k);
  return BigUInt::from_limbs(std::move(acc));
}

namespace {
std::atomic<MulDispatchFn> g_mul_dispatch{nullptr};
}  // namespace

BigUInt mul_auto_classical(const BigUInt& a, const BigUInt& b) {
  const std::size_t n = std::max(a.limb_count(), b.limb_count());
  if (n <= kKaratsubaThresholdLimbs) return mul_schoolbook(a, b);
  if (n <= kToom3ThresholdLimbs) return mul_karatsuba(a, b);
  return mul_toom3(a, b);
}

BigUInt mul_auto(const BigUInt& a, const BigUInt& b) {
  if (const MulDispatchFn hook = g_mul_dispatch.load(std::memory_order_acquire)) {
    return hook(a, b);
  }
  return mul_auto_classical(a, b);
}

void set_mul_dispatch(MulDispatchFn hook) noexcept {
  g_mul_dispatch.store(hook, std::memory_order_release);
}

MulDispatchFn mul_dispatch() noexcept {
  return g_mul_dispatch.load(std::memory_order_acquire);
}

BigUInt operator*(const BigUInt& a, const BigUInt& b) { return mul_auto(a, b); }

}  // namespace hemul::bigint
