#pragma once

#include "bigint/biguint.hpp"

namespace hemul::bigint {

/// Classical multiplication algorithms.
///
/// These are the baselines the paper's Section III argues against for
/// million-bit operands: schoolbook is O(n^2), Karatsuba O(n^1.585) and
/// Toom-3 O(n^1.465); the SSA/NTT multiplier (src/ssa) is
/// O(n log n log log n) and overtakes them around 10^5 bits (bench E4
/// reproduces the crossover).

/// O(n^2) limb-by-limb product. Always correct; the golden reference.
BigUInt mul_schoolbook(const BigUInt& a, const BigUInt& b);

/// Karatsuba 2-way splitting; falls back to schoolbook below a threshold.
BigUInt mul_karatsuba(const BigUInt& a, const BigUInt& b);

/// Toom-Cook 3-way splitting (evaluation points 0, 1, -1, 2, inf with exact
/// interpolation divisions by 2 and 3); falls back to Karatsuba below a
/// threshold.
BigUInt mul_toom3(const BigUInt& a, const BigUInt& b);

/// The classical size-adaptive dispatcher (schoolbook / Karatsuba / Toom-3
/// by limb count). Never consults the installed dispatch hook, so backend
/// implementations can call it without re-entering themselves.
BigUInt mul_auto_classical(const BigUInt& a, const BigUInt& b);

/// Size-adaptive dispatcher used by BigUInt::operator*. Routes through the
/// dispatch hook when one is installed (see set_mul_dispatch), otherwise
/// through mul_auto_classical.
BigUInt mul_auto(const BigUInt& a, const BigUInt& b);

/// Inversion-of-control seam for the backend layer (src/backend): the
/// registry installs its auto policy here so every BigUInt product --
/// including operator* inside fhe/core -- dispatches through the registered
/// backends (classical below the SSA advantage point, NTT above). bigint
/// itself stays independent of the layers above it. Passing nullptr
/// restores the classical dispatcher. Thread-safe.
using MulDispatchFn = BigUInt (*)(const BigUInt&, const BigUInt&);
void set_mul_dispatch(MulDispatchFn hook) noexcept;

/// The currently installed hook (nullptr when dispatch is classical).
[[nodiscard]] MulDispatchFn mul_dispatch() noexcept;

/// Limb-count thresholds of the dispatcher (exposed for the benchmarks).
inline constexpr std::size_t kKaratsubaThresholdLimbs = 24;
inline constexpr std::size_t kToom3ThresholdLimbs = 160;

}  // namespace hemul::bigint
