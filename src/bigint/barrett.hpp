#pragma once

#include <functional>

#include "bigint/biguint.hpp"

namespace hemul::bigint {

/// Barrett modular reduction (HAC 14.42): after a one-time precomputation
/// of mu = floor(b^2k / m), every reduction of an x < m^2 costs two big
/// multiplications and no division.
///
/// This is how the paper's accelerator serves complete HE primitives
/// (Section III: other operations "can either be reduced to a combination
/// of multiplications"; the related design [32] pairs its FFT multiplier
/// with exactly such a Barrett module). The multiplication backend is
/// pluggable, so modular exponentiation can run its inner products on the
/// simulated accelerator.
class BarrettReducer {
 public:
  using MulFn = std::function<BigUInt(const BigUInt&, const BigUInt&)>;

  /// Precomputes mu for the given odd-or-even modulus m >= 2.
  /// Throws std::invalid_argument for m < 2.
  explicit BarrettReducer(BigUInt modulus);

  /// x mod m for any x < m^2 (checked). Two multiplications, no division.
  [[nodiscard]] BigUInt reduce(const BigUInt& x) const;

  /// (a * b) mod m for a, b < m.
  [[nodiscard]] BigUInt mod_mul(const BigUInt& a, const BigUInt& b) const;

  /// a^e mod m by square-and-multiply (left-to-right).
  [[nodiscard]] BigUInt mod_pow(const BigUInt& a, const BigUInt& e) const;

  /// Replaces the multiplication backend (default: mul_auto).
  void set_multiplier(MulFn mul) { mul_ = std::move(mul); }

  [[nodiscard]] const BigUInt& modulus() const noexcept { return m_; }
  [[nodiscard]] const BigUInt& mu() const noexcept { return mu_; }

  /// Count of backend multiplications issued (for the cost accounting:
  /// each is an accelerator invocation).
  [[nodiscard]] u64 multiplications_used() const noexcept { return mults_; }

 private:
  BigUInt m_;
  BigUInt mu_;       ///< floor(2^(128k) / m), k = limb count of m
  std::size_t k_;    ///< limbs in m
  MulFn mul_;
  mutable u64 mults_ = 0;
};

}  // namespace hemul::bigint
