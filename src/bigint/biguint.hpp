#pragma once

#include <compare>
#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"
#include "util/uint128.hpp"

namespace hemul::bigint {

/// Arbitrary-precision unsigned integer with 64-bit little-endian limbs.
///
/// This is the substrate on which the paper's workload lives: DGHV-style
/// homomorphic encryption manipulates integers of hundreds of thousands of
/// bits, and the accelerator's job is to multiply them. BigUInt supplies
/// the classical (schoolbook / Karatsuba / Toom-3) multipliers used as
/// correctness baselines and for the crossover study (bench E4); the
/// NTT-based SSA multiplier lives in src/ssa on top of this type.
///
/// Invariant: the limb vector never has a trailing (most-significant) zero
/// limb; zero is represented by an empty vector.
class BigUInt {
 public:
  /// Zero.
  BigUInt() noexcept = default;

  /// Value of a single machine word.
  explicit BigUInt(u64 value);

  /// Adopts a little-endian limb vector (trailing zeros are trimmed).
  static BigUInt from_limbs(std::vector<u64> limbs);

  /// Parses a hexadecimal string (no prefix, case-insensitive).
  /// Throws std::invalid_argument on empty or non-hex input.
  static BigUInt from_hex(std::string_view hex);

  /// Parses a decimal string. Throws std::invalid_argument on bad input.
  static BigUInt from_dec(std::string_view dec);

  /// Uniform value with exactly `bits` significant bits (top bit set).
  static BigUInt random_bits(util::Rng& rng, std::size_t bits);

  /// Uniform value in [0, bound). Requires bound > 0.
  static BigUInt random_below(util::Rng& rng, const BigUInt& bound);

  /// 2^k.
  static BigUInt pow2(std::size_t k);

  [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }
  [[nodiscard]] bool is_odd() const noexcept { return !limbs_.empty() && (limbs_[0] & 1u); }

  /// Number of significant bits (0 for zero).
  [[nodiscard]] std::size_t bit_length() const noexcept;

  /// Value of bit i (false beyond bit_length()).
  [[nodiscard]] bool bit(std::size_t i) const noexcept;

  [[nodiscard]] std::size_t limb_count() const noexcept { return limbs_.size(); }
  [[nodiscard]] std::span<const u64> limbs() const noexcept { return limbs_; }

  /// Limb i, 0 beyond the representation (convenient for algorithms).
  [[nodiscard]] u64 limb(std::size_t i) const noexcept {
    return i < limbs_.size() ? limbs_[i] : 0;
  }

  /// Converts to u64; throws std::overflow_error if more than 64 bits.
  [[nodiscard]] u64 to_u64() const;

  friend bool operator==(const BigUInt&, const BigUInt&) noexcept = default;
  friend std::strong_ordering operator<=>(const BigUInt& a, const BigUInt& b) noexcept;

  BigUInt& operator+=(const BigUInt& rhs);
  /// Subtraction requires *this >= rhs; throws std::underflow_error otherwise.
  BigUInt& operator-=(const BigUInt& rhs);
  BigUInt& operator<<=(std::size_t bits);
  BigUInt& operator>>=(std::size_t bits);

  friend BigUInt operator+(BigUInt a, const BigUInt& b) { return a += b; }
  friend BigUInt operator-(BigUInt a, const BigUInt& b) { return a -= b; }
  friend BigUInt operator<<(BigUInt a, std::size_t bits) { return a <<= bits; }
  friend BigUInt operator>>(BigUInt a, std::size_t bits) { return a >>= bits; }

  /// Multiplication through the size-adaptive dispatcher (see mul.hpp).
  friend BigUInt operator*(const BigUInt& a, const BigUInt& b);

  /// Knuth Algorithm D division (see div.hpp). Divisor must be nonzero.
  friend BigUInt operator/(const BigUInt& a, const BigUInt& b);
  friend BigUInt operator%(const BigUInt& a, const BigUInt& b);

  /// Lower-case hexadecimal, no leading zeros ("0" for zero).
  [[nodiscard]] std::string to_hex() const;

  /// Decimal representation.
  [[nodiscard]] std::string to_dec() const;

 private:
  void trim() noexcept;

  std::vector<u64> limbs_;

  friend class MutableAccess;
};

/// Internal accessor used by the sibling algorithm translation units
/// (mul/div/io) so the public type needs no setters.
class MutableAccess {
 public:
  static std::vector<u64>& limbs(BigUInt& x) noexcept { return x.limbs_; }
  static void trim(BigUInt& x) noexcept { x.trim(); }
};

/// Streams the hex representation (useful in test diagnostics).
std::ostream& operator<<(std::ostream& os, const BigUInt& x);

struct DivModResult {
  BigUInt quotient;
  BigUInt remainder;
};

/// Quotient and remainder in one pass. Divisor must be nonzero.
DivModResult divmod(const BigUInt& a, const BigUInt& b);

}  // namespace hemul::bigint
