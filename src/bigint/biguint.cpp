#include "bigint/biguint.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace hemul::bigint {

BigUInt::BigUInt(u64 value) {
  if (value != 0) limbs_.push_back(value);
}

BigUInt BigUInt::from_limbs(std::vector<u64> limbs) {
  BigUInt x;
  x.limbs_ = std::move(limbs);
  x.trim();
  return x;
}

BigUInt BigUInt::pow2(std::size_t k) {
  BigUInt x;
  x.limbs_.assign(k / 64 + 1, 0);
  x.limbs_.back() = 1ULL << (k % 64);
  return x;
}

BigUInt BigUInt::random_bits(util::Rng& rng, std::size_t bits) {
  if (bits == 0) return BigUInt{};
  BigUInt x;
  x.limbs_ = rng.vec((bits + 63) / 64);
  const std::size_t top_bits = bits % 64 == 0 ? 64 : bits % 64;
  u64& top = x.limbs_.back();
  if (top_bits < 64) top &= (1ULL << top_bits) - 1;
  top |= 1ULL << (top_bits - 1);
  return x;
}

BigUInt BigUInt::random_below(util::Rng& rng, const BigUInt& bound) {
  HEMUL_CHECK_MSG(!bound.is_zero(), "random_below: bound must be positive");
  const std::size_t bits = bound.bit_length();
  // Rejection sampling over [0, 2^bits) keeps the distribution uniform.
  for (;;) {
    BigUInt x;
    x.limbs_ = rng.vec((bits + 63) / 64);
    if (bits % 64 != 0) x.limbs_.back() &= (1ULL << (bits % 64)) - 1;
    x.trim();
    if (x < bound) return x;
  }
}

std::size_t BigUInt::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  const u64 top = limbs_.back();
  return (limbs_.size() - 1) * 64 + (64 - static_cast<std::size_t>(__builtin_clzll(top)));
}

bool BigUInt::bit(std::size_t i) const noexcept {
  const std::size_t word = i / 64;
  if (word >= limbs_.size()) return false;
  return (limbs_[word] >> (i % 64)) & 1u;
}

u64 BigUInt::to_u64() const {
  if (limbs_.size() > 1) throw std::overflow_error("BigUInt::to_u64: value exceeds 64 bits");
  return limbs_.empty() ? 0 : limbs_[0];
}

std::strong_ordering operator<=>(const BigUInt& a, const BigUInt& b) noexcept {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() <=> b.limbs_.size();
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] <=> b.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigUInt& BigUInt::operator+=(const BigUInt& rhs) {
  const std::size_t n = std::max(limbs_.size(), rhs.limbs_.size());
  limbs_.resize(n, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u64 r = i < rhs.limbs_.size() ? rhs.limbs_[i] : 0;
    const u64 s1 = limbs_[i] + r;
    const u64 c1 = s1 < limbs_[i] ? 1u : 0u;
    const u64 s2 = s1 + carry;
    const u64 c2 = s2 < s1 ? 1u : 0u;
    limbs_[i] = s2;
    carry = c1 | c2;
  }
  if (carry != 0) limbs_.push_back(carry);
  return *this;
}

BigUInt& BigUInt::operator-=(const BigUInt& rhs) {
  if (*this < rhs) throw std::underflow_error("BigUInt subtraction would be negative");
  u64 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const u64 r = i < rhs.limbs_.size() ? rhs.limbs_[i] : 0;
    const u64 d1 = limbs_[i] - r;
    const u64 b1 = limbs_[i] < r ? 1u : 0u;
    const u64 d2 = d1 - borrow;
    const u64 b2 = d1 < borrow ? 1u : 0u;
    limbs_[i] = d2;
    borrow = b1 | b2;
  }
  HEMUL_CHECK(borrow == 0);
  trim();
  return *this;
}

BigUInt& BigUInt::operator<<=(std::size_t bits) {
  if (is_zero() || bits == 0) return *this;
  const std::size_t words = bits / 64;
  const std::size_t rem = bits % 64;
  const std::size_t old = limbs_.size();
  limbs_.resize(old + words + (rem != 0 ? 1 : 0), 0);
  for (std::size_t i = old; i-- > 0;) {
    const u64 v = limbs_[i];
    limbs_[i] = 0;
    if (rem == 0) {
      limbs_[i + words] = v;
    } else {
      limbs_[i + words + 1] |= v >> (64 - rem);
      limbs_[i + words] |= v << rem;
    }
  }
  trim();
  return *this;
}

BigUInt& BigUInt::operator>>=(std::size_t bits) {
  if (is_zero() || bits == 0) return *this;
  const std::size_t words = bits / 64;
  const std::size_t rem = bits % 64;
  if (words >= limbs_.size()) {
    limbs_.clear();
    return *this;
  }
  const std::size_t n = limbs_.size() - words;
  for (std::size_t i = 0; i < n; ++i) {
    u64 v = limbs_[i + words] >> rem;
    if (rem != 0 && i + words + 1 < limbs_.size()) v |= limbs_[i + words + 1] << (64 - rem);
    limbs_[i] = v;
  }
  limbs_.resize(n);
  trim();
  return *this;
}

void BigUInt::trim() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

}  // namespace hemul::bigint
