#pragma once

#include "bigint/biguint.hpp"

namespace hemul::bigint {

/// Knuth Algorithm D multi-word division (TAOCP Vol. 2, 4.3.1).
/// Exposed separately from operator/ so tests can target the add-back
/// corner case directly. Divisor must be nonzero.
DivModResult divmod_knuth(const BigUInt& dividend, const BigUInt& divisor);

/// Division by a single 64-bit word (fast path). Divisor must be nonzero.
struct DivSmallResult {
  BigUInt quotient;
  u64 remainder;
};
DivSmallResult divmod_small(const BigUInt& dividend, u64 divisor);

/// Centered residue used by DGHV decryption: returns the representative of
/// `a mod m` in (-m/2, m/2] as (magnitude, is_negative). m must be nonzero.
struct CenteredResidue {
  BigUInt magnitude;
  bool negative = false;
};
CenteredResidue mod_centered(const BigUInt& a, const BigUInt& m);

}  // namespace hemul::bigint
