#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "bigint/biguint.hpp"
#include "bigint/div.hpp"
#include "bigint/mul.hpp"
#include "util/check.hpp"

namespace hemul::bigint {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// 10^19 is the largest power of ten below 2^64; decimal conversion works in
// 19-digit chunks so the expensive big-number operations stay O(n) per chunk.
constexpr u64 kDecChunk = 10'000'000'000'000'000'000ULL;
constexpr int kDecChunkDigits = 19;

}  // namespace

BigUInt BigUInt::from_hex(std::string_view hex) {
  if (hex.empty()) throw std::invalid_argument("from_hex: empty string");
  std::vector<u64> limbs((hex.size() + 15) / 16, 0);
  for (std::size_t i = 0; i < hex.size(); ++i) {
    const int digit = hex_digit(hex[hex.size() - 1 - i]);
    if (digit < 0) throw std::invalid_argument("from_hex: invalid character");
    limbs[i / 16] |= static_cast<u64>(digit) << (4 * (i % 16));
  }
  return from_limbs(std::move(limbs));
}

BigUInt BigUInt::from_dec(std::string_view dec) {
  if (dec.empty()) throw std::invalid_argument("from_dec: empty string");
  BigUInt result;
  std::size_t pos = 0;
  // First chunk takes the leading remainder so all later chunks are full.
  std::size_t take = (dec.size() - 1) % kDecChunkDigits + 1;
  while (pos < dec.size()) {
    u64 chunk = 0;
    u64 scale = 1;
    for (std::size_t i = 0; i < take; ++i) {
      const char c = dec[pos + i];
      if (c < '0' || c > '9') throw std::invalid_argument("from_dec: invalid character");
      chunk = chunk * 10 + static_cast<u64>(c - '0');
      scale *= 10;
    }
    result = mul_schoolbook(result, BigUInt{take == kDecChunkDigits ? kDecChunk : scale});
    result += BigUInt{chunk};
    pos += take;
    take = kDecChunkDigits;
  }
  return result;
}

std::string BigUInt::to_hex() const {
  if (is_zero()) return "0";
  std::string out;
  out.reserve(limbs_.size() * 16);
  static constexpr char kDigits[] = "0123456789abcdef";
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = 15; nib >= 0; --nib) {
      out.push_back(kDigits[(limbs_[i] >> (4 * nib)) & 0xF]);
    }
  }
  const std::size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

std::string BigUInt::to_dec() const {
  if (is_zero()) return "0";
  std::string out;
  BigUInt cur = *this;
  while (!cur.is_zero()) {
    auto [q, r] = divmod_small(cur, kDecChunk);
    std::string chunk = std::to_string(r);
    if (!q.is_zero()) chunk.insert(0, kDecChunkDigits - chunk.size(), '0');
    out.insert(0, chunk);
    cur = std::move(q);
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const BigUInt& x) {
  return os << "0x" << x.to_hex() << " (" << x.bit_length() << " bits)";
}

}  // namespace hemul::bigint
