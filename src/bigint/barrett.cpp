#include "bigint/barrett.hpp"

#include <stdexcept>

#include "bigint/div.hpp"
#include "bigint/mul.hpp"
#include "util/check.hpp"

namespace hemul::bigint {

BarrettReducer::BarrettReducer(BigUInt modulus)
    : m_(std::move(modulus)), mul_(mul_auto) {
  if (m_ < BigUInt{2}) throw std::invalid_argument("BarrettReducer: modulus must be >= 2");
  k_ = m_.limb_count();
  // mu = floor(b^(2k) / m), b = 2^64 -- the only division ever performed.
  mu_ = BigUInt::pow2(128 * k_) / m_;
}

BigUInt BarrettReducer::reduce(const BigUInt& x) const {
  HEMUL_CHECK_MSG(x < mul_schoolbook(m_, m_), "Barrett input must be below m^2");

  // q1 = floor(x / b^(k-1)); q3 = floor(q1 * mu / b^(k+1)).
  BigUInt q = x >> (64 * (k_ - 1));
  ++mults_;
  q = mul_(q, mu_);
  q >>= 64 * (k_ + 1);

  // r = (x - q*m) mod b^(k+1); the estimate is off by at most 2m.
  ++mults_;
  const BigUInt qm = mul_(q, m_);
  const std::size_t mod_bits = 64 * (k_ + 1);
  // Truncate both operands to k+1 limbs before subtracting (mod b^(k+1)).
  const auto low_limbs = [this](const BigUInt& v) {
    const auto limbs = v.limbs();
    const std::size_t n = std::min(limbs.size(), k_ + 1);
    return BigUInt::from_limbs({limbs.begin(), limbs.begin() + static_cast<std::ptrdiff_t>(n)});
  };
  BigUInt r1 = low_limbs(x);
  const BigUInt r2 = low_limbs(qm);
  if (r1 < r2) r1 += BigUInt::pow2(mod_bits);
  r1 -= r2;

  // At most two final corrections (HAC 14.42 step 4).
  while (r1 >= m_) r1 -= m_;
  return r1;
}

BigUInt BarrettReducer::mod_mul(const BigUInt& a, const BigUInt& b) const {
  HEMUL_CHECK_MSG(a < m_ && b < m_, "mod_mul operands must be reduced");
  ++mults_;
  return reduce(mul_(a, b));
}

BigUInt BarrettReducer::mod_pow(const BigUInt& a, const BigUInt& e) const {
  BigUInt base = a % m_;
  BigUInt acc{1};
  if (e.is_zero()) return m_ == BigUInt{1} ? BigUInt{} : acc;
  for (std::size_t i = e.bit_length(); i-- > 0;) {
    acc = mod_mul(acc, acc);
    if (e.bit(i)) acc = mod_mul(acc, base);
  }
  return acc;
}

}  // namespace hemul::bigint
