#pragma once

#include "hw/memory/banked_buffer.hpp"

namespace hemul::hw {

/// Double-buffered PE memory (paper Section IV, Fig. 1): "while a buffer is
/// feeding current input values, the other one is filled with new values
/// coming partly from the same node and partly from one of its neighbors.
/// At the end of a computation stage, the roles of the buffers are swapped."
///
/// This is what lets the hypercube exchange overlap the next compute stage.
class DoubleBuffer {
 public:
  explicit DoubleBuffer(BankingScheme scheme = BankingScheme::kTwoDimensional)
      : buffers_{BankedBuffer(scheme), BankedBuffer(scheme)} {}

  /// The buffer the FFT unit currently reads from.
  [[nodiscard]] BankedBuffer& compute() noexcept { return buffers_[active_]; }
  [[nodiscard]] const BankedBuffer& compute() const noexcept { return buffers_[active_]; }

  /// The buffer being filled (local write-back + neighbor traffic).
  [[nodiscard]] BankedBuffer& fill() noexcept { return buffers_[active_ ^ 1]; }
  [[nodiscard]] const BankedBuffer& fill() const noexcept { return buffers_[active_ ^ 1]; }

  /// Swaps roles at a stage boundary.
  void swap() noexcept {
    active_ ^= 1;
    ++swaps_;
  }

  [[nodiscard]] u64 swaps() const noexcept { return swaps_; }
  [[nodiscard]] u64 m20k_blocks() const noexcept {
    return buffers_[0].m20k_blocks() + buffers_[1].m20k_blocks();
  }

 private:
  BankedBuffer buffers_[2];
  unsigned active_ = 0;
  u64 swaps_ = 0;
};

}  // namespace hemul::hw
