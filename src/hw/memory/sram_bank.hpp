#pragma once

#include <vector>

#include "util/uint128.hpp"

namespace hemul::hw {

/// One dual-port SRAM bank of the banked buffer (paper Fig. 5): 256 words
/// of 64 bits, realized on the FPGA as two Altera M20K hard blocks.
///
/// The model enforces the physical port limit: at most two accesses per
/// clock cycle (one per port). Accesses beyond that raise the buffer's
/// conflict counter (and, in strict mode, throw).
class SramBank {
 public:
  static constexpr unsigned kDepth = 256;
  static constexpr unsigned kWordBits = 64;
  static constexpr unsigned kPorts = 2;
  static constexpr unsigned kM20kBlocks = 2;  ///< per the paper

  SramBank() : data_(kDepth, 0) {}

  [[nodiscard]] u64 read(unsigned offset);
  void write(unsigned offset, u64 value);

  /// Debug/bulk accessors without port accounting (not part of the cycle
  /// model; used for buffer fills and assertions).
  [[nodiscard]] u64 peek(unsigned offset) const;
  void poke(unsigned offset, u64 value);

  /// Advances to the next clock cycle (resets port usage).
  void tick() noexcept { ports_used_ = 0; }

  /// Accesses issued in the current cycle.
  [[nodiscard]] unsigned ports_used() const noexcept { return ports_used_; }

  /// True if the last access exceeded the dual-port limit.
  [[nodiscard]] bool overcommitted() const noexcept { return ports_used_ > kPorts; }

  [[nodiscard]] u64 total_accesses() const noexcept { return total_accesses_; }

 private:
  std::vector<u64> data_;
  unsigned ports_used_ = 0;
  u64 total_accesses_ = 0;
};

}  // namespace hemul::hw
