#include "hw/memory/banked_buffer.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hemul::hw {

BankedBuffer::BankedBuffer(BankingScheme scheme) : scheme_(scheme), banks_(kBanks) {}

BankAddress BankedBuffer::map(unsigned address) const {
  HEMUL_CHECK_MSG(address < kCapacityWords, "BankedBuffer: address out of range");
  if (scheme_ == BankingScheme::kLinear) {
    // bank = addr mod 16, offset = addr / 16.
    const unsigned bank = address % kBanks;
    return {bank / kCols, bank % kCols, address / kBanks};
  }
  // Two-dimensional scheme. Decompose the address inside its 64-word FFT
  // window: address = 64*v + 8*h + l.
  //   row = h mod 4   -> a stride-8 read {8h + l0 : h} spans each row twice
  //                      (absorbed by the two ports) in ONE column,
  //   col = l mod 4   -> a consecutive write {8h0 + l : l} spans each
  //                      column twice in ONE row.
  const unsigned v = address / 64;
  const unsigned h = (address / 8) % 8;
  const unsigned l = address % 8;
  const unsigned row = h % 4;
  const unsigned col = l % 4;
  const unsigned offset = v * 4 + (h / 4) * 2 + (l / 4);
  return {row, col, offset};
}

u64 BankedBuffer::charge_batch(std::span<const unsigned> addresses) {
  // Count accesses per bank this cycle; each dual-port bank serves at most
  // two, so the batch costs ceil(max_load / 2) cycles.
  std::array<unsigned, kBanks> load{};
  for (const unsigned addr : addresses) {
    const BankAddress loc = map(addr);
    ++load[loc.row * kCols + loc.col];
  }
  const unsigned max_load = *std::max_element(load.begin(), load.end());
  const u64 batch_cycles = (max_load + SramBank::kPorts - 1) / SramBank::kPorts;
  cycles_ += batch_cycles;
  conflict_cycles_ += batch_cycles - 1;
  for (auto& bank : banks_) bank.tick();
  return batch_cycles;
}

std::array<fp::Fp, BankedBuffer::kWordsPerCycle> BankedBuffer::read8(
    std::span<const unsigned> addresses) {
  HEMUL_CHECK_MSG(addresses.size() == kWordsPerCycle, "read8: needs 8 addresses");
  charge_batch(addresses);
  std::array<fp::Fp, kWordsPerCycle> out{};
  for (unsigned i = 0; i < kWordsPerCycle; ++i) {
    const BankAddress loc = map(addresses[i]);
    out[i] = fp::Fp::from_canonical(banks_[loc.row * kCols + loc.col].read(loc.offset));
  }
  return out;
}

void BankedBuffer::write8(std::span<const unsigned> addresses,
                          std::span<const fp::Fp> values) {
  HEMUL_CHECK_MSG(addresses.size() == kWordsPerCycle && values.size() == kWordsPerCycle,
                  "write8: needs 8 address/value pairs");
  charge_batch(addresses);
  for (unsigned i = 0; i < kWordsPerCycle; ++i) {
    const BankAddress loc = map(addresses[i]);
    banks_[loc.row * kCols + loc.col].write(loc.offset, values[i].value());
  }
}

void BankedBuffer::load(std::span<const fp::Fp> data) {
  HEMUL_CHECK_MSG(data.size() <= kCapacityWords, "load: data exceeds capacity");
  for (unsigned i = 0; i < data.size(); ++i) poke(i, data[i]);
  cycles_ += (data.size() + kWordsPerCycle - 1) / kWordsPerCycle;
}

fp::FpVec BankedBuffer::dump(std::size_t count) const {
  HEMUL_CHECK_MSG(count <= kCapacityWords, "dump: count exceeds capacity");
  fp::FpVec out(count);
  for (std::size_t i = 0; i < count; ++i) out[i] = peek(static_cast<unsigned>(i));
  return out;
}

fp::Fp BankedBuffer::peek(unsigned address) const {
  const BankAddress loc = map(address);
  return fp::Fp::from_canonical(banks_[loc.row * kCols + loc.col].peek(loc.offset));
}

void BankedBuffer::poke(unsigned address, fp::Fp value) {
  const BankAddress loc = map(address);
  banks_[loc.row * kCols + loc.col].poke(loc.offset, value.value());
}

}  // namespace hemul::hw
