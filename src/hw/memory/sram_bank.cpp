#include "hw/memory/sram_bank.hpp"

#include "util/check.hpp"

namespace hemul::hw {

u64 SramBank::read(unsigned offset) {
  HEMUL_CHECK_MSG(offset < kDepth, "SramBank: read offset out of range");
  ++ports_used_;
  ++total_accesses_;
  return data_[offset];
}

void SramBank::write(unsigned offset, u64 value) {
  HEMUL_CHECK_MSG(offset < kDepth, "SramBank: write offset out of range");
  ++ports_used_;
  ++total_accesses_;
  data_[offset] = value;
}

u64 SramBank::peek(unsigned offset) const {
  HEMUL_CHECK_MSG(offset < kDepth, "SramBank: peek offset out of range");
  return data_[offset];
}

void SramBank::poke(unsigned offset, u64 value) {
  HEMUL_CHECK_MSG(offset < kDepth, "SramBank: poke offset out of range");
  data_[offset] = value;
}

}  // namespace hemul::hw
