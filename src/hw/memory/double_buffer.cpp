#include "hw/memory/double_buffer.hpp"

// DoubleBuffer is header-only; this translation unit anchors the library
// target and keeps one definition of the class's vtable-free layout checks.

namespace hemul::hw {

static_assert(BankedBuffer::kCapacityWords == 4096,
              "paper Fig. 5: one buffer holds a 4096-point vector");

}  // namespace hemul::hw
