#pragma once

#include <array>
#include <span>
#include <vector>

#include "fp/fp64.hpp"
#include "hw/memory/sram_bank.hpp"

namespace hemul::hw {

/// Address mapping policy of the buffer.
enum class BankingScheme {
  /// Naive linear interleave (bank = word mod 8): parallel on consecutive
  /// accesses but collides on the FFT unit's stride-8 column reads --
  /// the problem the paper's Section IV.c calls out.
  kLinear,
  /// The paper's two-dimensional scheme (Fig. 5): a 4x4 array of dual-port
  /// banks; stride-8 reads land column-wise, consecutive writes row-wise,
  /// both conflict-free at 8 words per cycle.
  kTwoDimensional,
};

/// Physical location of a word.
struct BankAddress {
  unsigned row = 0;     ///< bank row in the 4x4 array
  unsigned col = 0;     ///< bank column
  unsigned offset = 0;  ///< word offset inside the bank
};

/// A PE-local memory buffer of 4096 field elements backed by 16 dual-port
/// SRAM banks (256Kb, 32 M20K blocks).
///
/// Access is cycle-based: read8/write8 issue eight parallel word accesses
/// that model one clock cycle. Extra cycles forced by bank conflicts are
/// tallied (zero for the 2-D scheme on FFT traffic; the invariant the test
/// suite enforces).
class BankedBuffer {
 public:
  static constexpr unsigned kRows = 4;
  static constexpr unsigned kCols = 4;
  static constexpr unsigned kBanks = kRows * kCols;
  static constexpr unsigned kCapacityWords = kBanks * SramBank::kDepth;  // 4096
  static constexpr unsigned kWordsPerCycle = 8;

  explicit BankedBuffer(BankingScheme scheme = BankingScheme::kTwoDimensional);

  /// Maps a logical word address [0, 4096) to its bank location.
  [[nodiscard]] BankAddress map(unsigned address) const;

  /// One read cycle: fetches the eight given addresses in parallel.
  std::array<fp::Fp, kWordsPerCycle> read8(std::span<const unsigned> addresses);

  /// One write cycle: stores eight words in parallel.
  void write8(std::span<const unsigned> addresses,
              std::span<const fp::Fp> values);

  /// Whole-buffer helpers (initial fill / final drain; cycle cost =
  /// capacity / 8, tallied separately from compute traffic).
  void load(std::span<const fp::Fp> data);
  [[nodiscard]] fp::FpVec dump(std::size_t count) const;

  /// Direct word access without cycle accounting (used for assertions).
  [[nodiscard]] fp::Fp peek(unsigned address) const;
  void poke(unsigned address, fp::Fp value);

  [[nodiscard]] BankingScheme scheme() const noexcept { return scheme_; }
  [[nodiscard]] u64 access_cycles() const noexcept { return cycles_; }
  /// Extra cycles lost to bank-port conflicts (0 for the 2-D scheme on
  /// FFT access patterns).
  [[nodiscard]] u64 conflict_cycles() const noexcept { return conflict_cycles_; }
  [[nodiscard]] u64 m20k_blocks() const noexcept { return kBanks * SramBank::kM20kBlocks; }

 private:
  /// Issues one batch of accesses, returning the cycles it costs
  /// (1 when conflict-free, more when a bank is overcommitted).
  u64 charge_batch(std::span<const unsigned> addresses);

  BankingScheme scheme_;
  std::vector<SramBank> banks_;
  u64 cycles_ = 0;
  u64 conflict_cycles_ = 0;
};

}  // namespace hemul::hw
