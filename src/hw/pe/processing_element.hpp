#pragma once

#include <array>
#include <memory>
#include <span>

#include "fp/fp64.hpp"
#include "hw/dsp/mod_mult.hpp"
#include "hw/fft64/baseline_fft64.hpp"
#include "hw/fft64/optimized_fft64.hpp"
#include "hw/fft64/radix_unit.hpp"
#include "hw/memory/double_buffer.hpp"
#include "hw/pe/data_route.hpp"

namespace hemul::hw {

/// Which radix-64 engine a PE instantiates.
enum class FftUnitKind {
  kOptimized,  ///< the paper's unit (Section IV.b, Fig. 4)
  kBaseline,   ///< the [28] unit (Fig. 3), for the comparison studies
};

/// One Processing Element of the distributed accelerator (paper Fig. 1):
/// radix-64/16 FFT unit + double-buffered banked memory + a group of eight
/// DSP modular multipliers for the inter-stage twiddles + data route.
class ProcessingElement {
 public:
  static constexpr unsigned kTwiddleMultipliers = 8;

  struct Config {
    BankingScheme banking = BankingScheme::kTwoDimensional;
    FftUnitKind unit = FftUnitKind::kOptimized;
  };

  ProcessingElement(unsigned id, const Config& config);

  [[nodiscard]] unsigned id() const noexcept { return id_; }
  [[nodiscard]] DoubleBuffer& memory() noexcept { return memory_; }
  [[nodiscard]] const DoubleBuffer& memory() const noexcept { return memory_; }

  /// Runs one radix-r FFT over the r-word window at `base` of the compute
  /// buffer, then multiplies output i by twiddles[i] on the PE's modular
  /// multipliers (pass an empty span to skip the twiddle stage).
  /// Returns the r outputs and advances the PE cycle counters.
  fp::FpVec run_fft(unsigned base, unsigned radix, std::span<const fp::Fp> twiddles);

  /// Writes FFT results back into the fill buffer at the stride-8 pattern
  /// of the given window (the drain-side traffic of the unit).
  void write_back(unsigned base, std::span<const fp::Fp> values);

  /// Streams `data` into the fill buffer starting at word `offset`
  /// (consecutive row-wise traffic: buffer reload or neighbor data).
  void fill(unsigned offset, std::span<const fp::Fp> data);

  /// Swaps compute/fill buffers at a stage boundary.
  void swap_buffers() noexcept { memory_.swap(); }

  /// Cycles spent in FFT compute (initiation intervals; reads stream at
  /// 8 words/cycle in lockstep with the unit).
  [[nodiscard]] u64 compute_cycles() const noexcept { return compute_cycles_; }
  [[nodiscard]] u64 twiddle_products() const noexcept;
  [[nodiscard]] u64 ffts_executed() const noexcept { return ffts_; }
  [[nodiscard]] FftUnitKind unit_kind() const noexcept { return config_.unit; }

 private:
  unsigned id_;
  Config config_;
  DoubleBuffer memory_;
  OptimizedFft64 optimized_;
  BaselineFft64 baseline_;
  RadixUnit radix16_;
  RadixUnit radix32_;
  RadixUnit radix8_;
  std::array<ModMult64, kTwiddleMultipliers> twiddle_mults_;
  u64 compute_cycles_ = 0;
  u64 ffts_ = 0;
};

}  // namespace hemul::hw
