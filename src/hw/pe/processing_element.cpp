#include "hw/pe/processing_element.hpp"

#include <vector>

#include "util/check.hpp"

namespace hemul::hw {

ProcessingElement::ProcessingElement(unsigned id, const Config& config)
    : id_(id),
      config_(config),
      memory_(config.banking),
      radix16_(16),
      radix32_(32),
      radix8_(8) {}

fp::FpVec ProcessingElement::run_fft(unsigned base, unsigned radix,
                                     std::span<const fp::Fp> twiddles) {
  HEMUL_CHECK_MSG(!twiddles.empty() ? twiddles.size() == radix : true,
                  "twiddle vector must match the radix");

  // Stream the inputs from the compute buffer through the data route.
  fp::FpVec inputs(radix);
  BankedBuffer& buf = memory_.compute();
  const auto trace = DataRoute::read_trace(base, radix);
  if (radix == 64) {
    for (unsigned j = 0; j < 8; ++j) {
      const auto words = buf.read8(trace[j]);
      // Column read: words[i] is sample a[8i + j].
      for (unsigned i = 0; i < 8; ++i) inputs[8 * i + j] = words[i];
    }
  } else {
    for (unsigned c = 0; c < trace.size(); ++c) {
      const auto words = buf.read8(trace[c]);
      for (unsigned i = 0; i < 8; ++i) inputs[8 * c + i] = words[i];
    }
  }

  fp::FpVec outputs;
  u64 interval = 0;
  switch (radix) {
    case 64:
      if (config_.unit == FftUnitKind::kOptimized) {
        outputs = optimized_.transform(inputs);
        interval = OptimizedFft64::cycles_per_transform();
      } else {
        outputs = baseline_.transform(inputs);
        interval = BaselineFft64::cycles_per_transform();
      }
      break;
    case 32:
      outputs = radix32_.transform(inputs);
      interval = radix32_.cycles_per_transform();
      break;
    case 16:
      outputs = radix16_.transform(inputs);
      interval = radix16_.cycles_per_transform();
      break;
    case 8:
      outputs = radix8_.transform(inputs);
      interval = radix8_.cycles_per_transform();
      break;
    default:
      HEMUL_CHECK_MSG(false, "unsupported hardware radix");
  }

  // Inter-stage twiddles on the PE's eight modular multipliers, pipelined
  // with the drain (8 outputs/cycle onto 8 multipliers: no extra cycles).
  if (!twiddles.empty()) {
    for (unsigned i = 0; i < radix; ++i) {
      outputs[i] = twiddle_mults_[i % kTwiddleMultipliers].multiply(outputs[i], twiddles[i]);
    }
  }

  compute_cycles_ += interval;
  ++ffts_;
  return outputs;
}

void ProcessingElement::write_back(unsigned base, std::span<const fp::Fp> values) {
  BankedBuffer& buf = memory_.fill();
  const unsigned radix = static_cast<unsigned>(values.size());
  if (radix == 64) {
    for (unsigned t = 0; t < 8; ++t) {
      const auto addrs = DataRoute::fft64_write_addresses(base, t);
      std::array<fp::Fp, 8> row{};
      for (unsigned k2 = 0; k2 < 8; ++k2) row[k2] = values[8 * k2 + t];
      buf.write8(addrs, row);
    }
  } else {
    for (unsigned c = 0; c < radix / 8; ++c) {
      const auto addrs = DataRoute::small_radix_addresses(base, radix, c);
      std::array<fp::Fp, 8> row{};
      for (unsigned i = 0; i < 8; ++i) row[i] = values[8 * c + i];
      buf.write8(addrs, row);
    }
  }
}

void ProcessingElement::fill(unsigned offset, std::span<const fp::Fp> data) {
  HEMUL_CHECK_MSG(offset % 8 == 0, "fill offset must be 8-aligned");
  BankedBuffer& buf = memory_.fill();
  std::array<unsigned, 8> addrs{};
  std::array<fp::Fp, 8> row{};
  for (std::size_t i = 0; i < data.size(); i += 8) {
    for (unsigned k = 0; k < 8; ++k) {
      addrs[k] = offset + static_cast<unsigned>(i) + k;
      row[k] = i + k < data.size() ? data[i + k] : fp::kZero;
    }
    buf.write8(addrs, row);
  }
}

u64 ProcessingElement::twiddle_products() const noexcept {
  u64 total = 0;
  for (const auto& m : twiddle_mults_) total += m.products_computed();
  return total;
}

}  // namespace hemul::hw
