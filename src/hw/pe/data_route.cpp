#include "hw/pe/data_route.hpp"

#include "util/check.hpp"

namespace hemul::hw {

std::array<unsigned, DataRoute::kWordsPerCycle> DataRoute::fft64_read_addresses(
    unsigned base, unsigned cycle) {
  HEMUL_CHECK_MSG(base % 64 == 0, "fft64 window must be 64-aligned");
  HEMUL_CHECK_MSG(cycle < 8, "fft64 has 8 read cycles");
  std::array<unsigned, kWordsPerCycle> out{};
  for (unsigned i = 0; i < kWordsPerCycle; ++i) out[i] = base + 8 * i + cycle;
  return out;
}

std::array<unsigned, DataRoute::kWordsPerCycle> DataRoute::fft64_write_addresses(
    unsigned base, unsigned cycle) {
  // Same stride-8 shape: component 8*k2 + t lands at base + 8*k2 + t.
  return fft64_read_addresses(base, cycle);
}

std::array<unsigned, DataRoute::kWordsPerCycle> DataRoute::small_radix_addresses(
    unsigned base, unsigned radix, unsigned cycle) {
  HEMUL_CHECK_MSG(radix == 8 || radix == 16 || radix == 32,
                  "small radix must be 8, 16 or 32");
  HEMUL_CHECK_MSG(base % radix == 0, "window must be radix-aligned");
  HEMUL_CHECK_MSG(cycle < radix / 8, "cycle out of range");
  std::array<unsigned, kWordsPerCycle> out{};
  for (unsigned i = 0; i < kWordsPerCycle; ++i) out[i] = base + 8 * cycle + i;
  return out;
}

std::array<unsigned, DataRoute::kWordsPerCycle> DataRoute::fill_addresses(unsigned cycle) {
  std::array<unsigned, kWordsPerCycle> out{};
  for (unsigned i = 0; i < kWordsPerCycle; ++i) out[i] = 8 * cycle + i;
  return out;
}

std::vector<std::array<unsigned, DataRoute::kWordsPerCycle>> DataRoute::read_trace(
    unsigned base, unsigned radix) {
  std::vector<std::array<unsigned, kWordsPerCycle>> trace;
  if (radix == 64) {
    for (unsigned j = 0; j < 8; ++j) trace.push_back(fft64_read_addresses(base, j));
  } else {
    const unsigned cycles = radix <= 8 ? 1 : radix / 8;
    for (unsigned c = 0; c < cycles; ++c)
      trace.push_back(small_radix_addresses(base, radix, c));
  }
  return trace;
}

}  // namespace hemul::hw
