#pragma once

#include <array>
#include <vector>

#include "util/uint128.hpp"

namespace hemul::hw {

/// The Data Route component (paper Section IV.e): "it is just a memory
/// address generator" -- the FFT-64 unit already emits its eight outputs
/// per cycle spaced out for conflict-free writing.
///
/// All addresses are logical offsets into a PE's 4096-word buffer.
class DataRoute {
 public:
  static constexpr unsigned kWordsPerCycle = 8;

  /// Read addresses for accumulation cycle j (0..7) of a radix-64 FFT whose
  /// 64-word window starts at `base`: the strided column {base + 8i + j}.
  static std::array<unsigned, kWordsPerCycle> fft64_read_addresses(unsigned base,
                                                                   unsigned cycle);

  /// Write addresses for drain cycle t of a radix-64 FFT: the unit emits
  /// components {8*k2 + t}, i.e. the same stride-8 column shape.
  static std::array<unsigned, kWordsPerCycle> fft64_write_addresses(unsigned base,
                                                                    unsigned cycle);

  /// Read addresses for cycle c (0..r/8-1) of a radix-r FFT (r in
  /// {8,16,32}), reading consecutive 8-word rows.
  static std::array<unsigned, kWordsPerCycle> small_radix_addresses(unsigned base,
                                                                    unsigned radix,
                                                                    unsigned cycle);

  /// Consecutive fill addresses (buffer reload / neighbor traffic), cycle c.
  static std::array<unsigned, kWordsPerCycle> fill_addresses(unsigned cycle);

  /// The complete read trace of a radix-r FFT at `base` (r/8 cycles of 8).
  static std::vector<std::array<unsigned, kWordsPerCycle>> read_trace(unsigned base,
                                                                      unsigned radix);
};

}  // namespace hemul::hw
