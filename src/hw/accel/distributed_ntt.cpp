#include "hw/accel/distributed_ntt.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <stdexcept>

#include "fp/roots.hpp"
#include "util/check.hpp"

namespace hemul::hw {

using fp::Fp;
using fp::FpVec;

DistributedNtt::DistributedNtt(DistributedNttConfig config)
    : config_(std::move(config)),
      cube_(config_.num_pes),
      schedule_(static_cast<unsigned>(config_.plan.stage_count()), cube_.dimensions()),
      ledger_(cube_) {
  const auto& plan = config_.plan;
  for (const u32 r : plan.radices) {
    if (r != 8 && r != 16 && r != 32 && r != 64) {
      throw std::invalid_argument("DistributedNtt: hardware radices are 8/16/32/64");
    }
  }
  for (std::size_t s = 0; s < plan.stage_count(); ++s) {
    if (plan.sub_ffts_in_stage(s) % config_.num_pes != 0) {
      throw std::invalid_argument("DistributedNtt: stage groups must divide evenly over PEs");
    }
  }

  // Digit strides: digit s has stride prod_{u>s} r_u.
  stride_.assign(plan.stage_count(), 1);
  for (std::size_t s = plan.stage_count(); s-- > 0;) {
    if (s + 1 < plan.stage_count()) stride_[s] = stride_[s + 1] * plan.radices[s + 1];
  }

  const Fp root = plan.size >= 64 ? fp::aligned_root(plan.size) : fp::primitive_root(plan.size);
  fwd_table_ = fp::power_table(root, plan.size);
  n_inv_ = fp::inv_of_u64(plan.size);

  const ProcessingElement::Config pe_config{.banking = config_.banking, .unit = config_.unit};
  pes_.reserve(config_.num_pes);
  for (unsigned p = 0; p < config_.num_pes; ++p) pes_.emplace_back(p, pe_config);
}

std::vector<std::vector<DistributedNtt::KeyBit>> DistributedNtt::key_schedule() const {
  const auto l = static_cast<unsigned>(config_.plan.stage_count());
  const unsigned d = cube_.dimensions();

  std::vector<KeyBit> key(d);
  for (unsigned b = 0; b < d; ++b) {
    const unsigned var = 1 + b;
    key[b] = {var, static_cast<unsigned>(std::countr_zero(config_.plan.radices[var])) - 1};
  }

  std::vector<std::vector<KeyBit>> schedule;
  schedule.reserve(l);
  for (unsigned s = 0; s < l; ++s) {
    schedule.push_back(key);
    // Exchange after stage s: re-home the bit that would block stage s+1.
    if (s + 1 < l) {
      for (auto& bit : key) {
        if (bit.stage_var == s + 1) {
          bit = {s, static_cast<unsigned>(std::countr_zero(config_.plan.radices[s])) - 1};
        }
      }
    }
  }
  return schedule;
}

std::string DistributedNtt::describe_distribution() const {
  const auto l = static_cast<unsigned>(config_.plan.stage_count());
  const unsigned d = cube_.dimensions();
  const auto schedule = key_schedule();

  // Paper notation: stage 0 transforms n_l, producing k_l; stage l-1
  // transforms n_1, producing k_1 (for the 64*64*16 plan: n3, n2, n1).
  const auto digit_name = [l](unsigned stage_var, bool computed) {
    return std::string(computed ? "k" : "n") + std::to_string(l - stage_var);
  };
  const auto key_name = [&](const KeyBit& bit, unsigned current_stage) {
    const bool computed = bit.stage_var < current_stage;
    return digit_name(bit.stage_var, computed) + "[" + std::to_string(bit.bit) + "]";
  };

  std::string out;
  for (unsigned s = 0; s < l; ++s) {
    out += "C" + std::to_string(s) + ": radix-" + std::to_string(config_.plan.radices[s]) +
           " FFTs over " + digit_name(s, false);
    if (d > 0) {
      out += "  (owner bits:";
      for (const auto& bit : schedule[s]) out += " " + key_name(bit, s);
      out += ")";
    }
    out += "\n";
    if (s < d) {
      // The exchange between stage s and s+1 moves exactly one key bit.
      for (unsigned b = 0; b < d; ++b) {
        if (!(schedule[s][b] == schedule[s + 1][b])) {
          out += "X" + std::to_string(s) + ": exchange along hypercube dim " +
                 std::to_string(b) + ", owner bit " + key_name(schedule[s][b], s) +
                 " -> " + key_name(schedule[s + 1][b], s + 1) + "\n";
        }
      }
    }
  }
  return out;
}

unsigned DistributedNtt::owner(const std::vector<u32>& digits,
                               const std::vector<KeyBit>& key) const {
  unsigned node = 0;
  for (unsigned b = 0; b < key.size(); ++b) {
    node |= ((digits[key[b].stage_var] >> key[b].bit) & 1u) << b;
  }
  return node;
}

FpVec DistributedNtt::forward(const FpVec& data, NttRunReport* report) {
  return run(data, /*inverse=*/false, report);
}

FpVec DistributedNtt::inverse(const FpVec& data, NttRunReport* report) {
  // IDFT(x)[k] = (1/N) * DFT(x)[(N-k) mod N]: the hardware reuses the
  // forward datapath; 1/N is folded into the final twiddle ROM and the
  // data route reverses the output addresses.
  FpVec fwd = run(data, /*inverse=*/true, report);
  const u64 n = config_.plan.size;
  FpVec out(n);
  out[0] = fwd[0];
  for (u64 k = 1; k < n; ++k) out[k] = fwd[n - k];
  return out;
}

FpVec DistributedNtt::run(const FpVec& data, bool inverse, NttRunReport* report) {
  const auto& plan = config_.plan;
  const u64 n = plan.size;
  HEMUL_CHECK_MSG(data.size() == n, "DistributedNtt: input size must match the plan");
  const auto l = static_cast<unsigned>(plan.stage_count());
  const unsigned d = cube_.dimensions();

  // Ownership keys per stage (initial bits on untransformed digits,
  // re-homed one per exchange; legality l > d guarantees feasibility).
  const std::vector<std::vector<KeyBit>> key_by_stage = key_schedule();

  // Digit tuple of every element (digit s replaced by its output digit k_s
  // as stages complete); values evolve in the flat input indexing.
  std::vector<std::vector<u32>> digits(n, std::vector<u32>(l));
  for (u64 i = 0; i < n; ++i) {
    for (unsigned s = 0; s < l; ++s) {
      digits[i][s] = static_cast<u32>((i / stride_[s]) % plan.radices[s]);
    }
  }

  FpVec work = data;
  NttRunReport local_report;
  std::vector<u64> stage_compute(l, 0);
  std::vector<u64> stage_exchange(d, 0);

  // Per-PE counter baselines so deltas per stage can be extracted.
  std::vector<u64> pe_cycles_base(config_.num_pes, 0);
  std::vector<u64> pe_conflicts_base(config_.num_pes, 0);
  u64 twiddle_products_before = 0;
  for (auto& pe : pes_) twiddle_products_before += pe.twiddle_products();
  const u64 ledger_words_before = ledger_.total_words();

  for (unsigned s = 0; s < l; ++s) {
    const u32 radix = plan.radices[s];
    const u64 groups = n / radix;
    const u64 s_stride = stride_[s];

    // Enumerate group base indices (digit s == 0).
    std::vector<u64> group_base;
    group_base.reserve(groups);
    for (u64 i = 0; i < n; ++i) {
      if (digits[i][s] == 0) group_base.push_back(i);
    }
    HEMUL_CHECK(group_base.size() == groups);

    // Partition groups over PEs by ownership.
    const std::vector<KeyBit>& key = key_by_stage[s];
    std::vector<std::vector<u64>> pe_groups(config_.num_pes);
    for (const u64 base : group_base) {
      const unsigned node = owner(digits[base], key);
      // Locality invariant: the whole group shares one owner (the key never
      // references the digit being transformed).
      for (u32 v = 1; v < radix; ++v) {
        HEMUL_CHECK_MSG(owner(digits[base + v * s_stride], key) == node,
                        "FFT group split across PEs: schedule bug");
      }
      pe_groups[node].push_back(base);
    }

    for (auto& pe : pes_) {
      pe_cycles_base[pe.id()] = pe.compute_cycles();
      pe_conflicts_base[pe.id()] =
          pe.memory().compute().conflict_cycles() + pe.memory().fill().conflict_cycles();
    }

    const u64 groups_per_chunk = BankedBuffer::kCapacityWords / radix;
    FpVec next = work;

    for (auto& pe : pes_) {
      const auto& owned = pe_groups[pe.id()];
      for (std::size_t chunk = 0; chunk < owned.size(); chunk += groups_per_chunk) {
        const std::size_t chunk_end = std::min(owned.size(), chunk + groups_per_chunk);

        // Load the chunk into the fill buffer (consecutive row traffic),
        // then swap: it becomes the compute buffer.
        FpVec staged;
        staged.reserve((chunk_end - chunk) * radix);
        for (std::size_t g = chunk; g < chunk_end; ++g) {
          for (u32 v = 0; v < radix; ++v) staged.push_back(work[owned[g] + v * s_stride]);
        }
        pe.fill(0, staged);
        pe.swap_buffers();

        for (std::size_t g = chunk; g < chunk_end; ++g) {
          const u64 base = owned[g];
          const auto window = static_cast<unsigned>((g - chunk) * radix);

          // Inter-stage twiddle factors for this group's outputs.
          FpVec twiddles;
          if (s + 1 < l) {
            twiddles.resize(radix);
            u64 level = 1;  // L_{s+1} = prod_{u=0..s+1} r_u
            for (unsigned u = 0; u <= s + 1; ++u) level *= plan.radices[u];
            u64 t_prefix = 0;  // sum_{u<s} k_u * W_u
            u64 weight = 1;
            for (unsigned u = 0; u < s; ++u) {
              t_prefix += digits[base][u] * weight;
              weight *= plan.radices[u];
            }
            const u64 w_s = weight;  // W_s = prod_{u<s} r_u
            const u64 d_next = digits[base][s + 1];
            for (u32 k = 0; k < radix; ++k) {
              const u64 t = t_prefix + k * w_s;
              const u64 exponent = (n / level) * ((d_next * t) % level);
              Fp tw = fwd_table_[exponent % n];
              if (inverse && s + 2 == l) tw *= n_inv_;  // fold 1/N into last ROM
              twiddles[k] = tw;
            }
          } else if (l == 1 && inverse) {
            twiddles.assign(radix, n_inv_);
          }

          const FpVec outputs = pe.run_fft(window, radix, twiddles);
          pe.write_back(window, outputs);
          for (u32 k = 0; k < radix; ++k) next[base + k * s_stride] = outputs[k];
        }

        // Spot-check the memory path: the fill buffer must hold the last
        // group's outputs at its window.
        const auto check_base = static_cast<unsigned>((chunk_end - 1 - chunk) * radix);
        HEMUL_CHECK(pe.memory().fill().peek(check_base) ==
                    next[owned[chunk_end - 1]]);
      }
    }

    work = std::move(next);

    u64 max_cycles = 0;
    for (auto& pe : pes_) {
      const u64 conflicts = pe.memory().compute().conflict_cycles() +
                            pe.memory().fill().conflict_cycles() -
                            pe_conflicts_base[pe.id()];
      max_cycles = std::max(max_cycles,
                            pe.compute_cycles() - pe_cycles_base[pe.id()] + conflicts);
      local_report.memory_conflict_cycles += conflicts;
    }
    stage_compute[s] = max_cycles;

    StageReport stage_report;
    stage_report.compute_cycles = max_cycles;

    // Exchange after stage s (for the first d stages): the key bit that
    // would block stage s+1 has been re-homed onto the just-computed digit
    // k_s; ship every element whose owner changed.
    if (s < d) {
      const std::vector<KeyBit>& new_key = key_by_stage[s + 1];
      unsigned moved_bit = d;  // sentinel
      for (unsigned b = 0; b < d; ++b) {
        if (!(key[b] == new_key[b])) moved_bit = b;
      }
      HEMUL_CHECK_MSG(moved_bit < d, "exchange schedule: no key bit re-homed");

      std::map<std::pair<unsigned, unsigned>, u64> traffic;
      for (u64 i = 0; i < n; ++i) {
        const unsigned before = owner(digits[i], key);
        const unsigned after = owner(digits[i], new_key);
        if (before != after) ++traffic[{before, after}];
      }
      u64 max_sent = 0;
      u64 total = 0;
      for (const auto& [pair, words] : traffic) {
        ledger_.record(s, moved_bit, pair.first, pair.second, words);
        max_sent = std::max(max_sent, words);
        total += words;
      }
      stage_exchange[s] = exchange_cycles(max_sent, config_.link_words_per_cycle);
      stage_report.exchange_cycles = stage_exchange[s];
      stage_report.exchange_words = total;
      stage_report.exchange_dim = moved_bit;

      // Stage boundary: every PE swaps its double buffer.
      for (auto& pe : pes_) pe.swap_buffers();
    }

    // Replace digit s by its output digit (identical flat position).
    for (u64 i = 0; i < n; ++i) {
      digits[i][s] = static_cast<u32>((i / s_stride) % radix);
    }
    local_report.stages.push_back(stage_report);
  }

  // Final reordering to natural output indexing: out[sum k_s W_s].
  FpVec out(n);
  for (u64 i = 0; i < n; ++i) {
    u64 flat_out = 0;
    u64 weight = 1;
    for (unsigned s = 0; s < l; ++s) {
      flat_out += digits[i][s] * weight;
      weight *= plan.radices[s];
    }
    out[flat_out] = work[i];
  }

  u64 twiddle_products_after = 0;
  for (auto& pe : pes_) twiddle_products_after += pe.twiddle_products();
  local_report.twiddle_products = twiddle_products_after - twiddle_products_before;

  local_report.total_cycles =
      schedule_.total_cycles(stage_compute, stage_exchange, config_.overlap_comm);
  local_report.total_cycles_no_overlap =
      schedule_.total_cycles(stage_compute, stage_exchange, false);
  local_report.exchange_total_words = ledger_.total_words() - ledger_words_before;
  local_report.exchanges_single_partner = ledger_.single_partner_per_stage();
  local_report.schedule = schedule_.describe();

  if (report != nullptr) *report = std::move(local_report);
  return out;
}

}  // namespace hemul::hw
