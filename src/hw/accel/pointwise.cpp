#include "hw/accel/pointwise.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace hemul::hw {

PointwiseUnit::PointwiseUnit(unsigned multipliers) : mults_(multipliers) {
  if (multipliers == 0) throw std::invalid_argument("PointwiseUnit: needs >= 1 multiplier");
}

fp::FpVec PointwiseUnit::multiply(const fp::FpVec& a, const fp::FpVec& b, Report* report) {
  HEMUL_CHECK_MSG(a.size() == b.size(), "PointwiseUnit: size mismatch");
  fp::FpVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = mults_[i % mults_.size()].multiply(a[i], b[i]);
  }
  if (report != nullptr) {
    report->products += a.size();
    // Each multiplier is fully pipelined (one product per cycle), so the
    // pool finishes in ceil(N / multipliers) cycles.
    report->cycles += (a.size() + mults_.size() - 1) / mults_.size();
  }
  return out;
}

}  // namespace hemul::hw
