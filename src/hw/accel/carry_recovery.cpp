#include "hw/accel/carry_recovery.hpp"

#include <stdexcept>

#include "ssa/pack.hpp"

namespace hemul::hw {

CarryRecoveryUnit::CarryRecoveryUnit(unsigned lanes) : lanes_(lanes) {
  if (lanes == 0) throw std::invalid_argument("CarryRecoveryUnit: needs >= 1 lane");
}

bigint::BigUInt CarryRecoveryUnit::recover(const fp::FpVec& coeffs, std::size_t coeff_bits,
                                           Report* report) {
  if (report != nullptr) {
    report->coefficients += coeffs.size();
    report->cycles += (coeffs.size() + lanes_ - 1) / lanes_;
  }
  return ssa::carry_recover(coeffs, coeff_bits);
}

}  // namespace hemul::hw
