#pragma once

#include "bigint/biguint.hpp"
#include "fp/fp64.hpp"

namespace hemul::hw {

/// The final carry-recovery adder (paper Section V): evaluates the inverse
/// NTT coefficient vector at x = 2^m, i.e. the "shifted sum of the
/// components", with an ad-hoc pipelined adder structure. The paper quotes
/// ~20 us for the 64K-coefficient recovery; at 200 MHz that corresponds to
/// 16 coefficients retired per cycle, the default lane count here.
class CarryRecoveryUnit {
 public:
  struct Report {
    u64 cycles = 0;
    u64 coefficients = 0;
  };

  explicit CarryRecoveryUnit(unsigned lanes = 16);

  /// Shifted-sum evaluation: result = sum_i coeffs[i] * 2^(coeff_bits * i).
  /// Functionally identical to ssa::carry_recover (asserted in tests).
  bigint::BigUInt recover(const fp::FpVec& coeffs, std::size_t coeff_bits,
                          Report* report = nullptr);

  [[nodiscard]] unsigned lanes() const noexcept { return lanes_; }

 private:
  unsigned lanes_;
};

}  // namespace hemul::hw
