#pragma once

#include <vector>

#include "fp/fp64.hpp"
#include "hw/dsp/mod_mult.hpp"

namespace hemul::hw {

/// The SSA dot-product phase (paper Section V): the component-wise product
/// C = A .* B of the two 64K-point spectra, executed on a pool of DSP
/// modular multipliers.
///
/// The paper's configuration reuses the PEs' twiddle multipliers: 4 PEs x 8
/// = 32 units, giving T_DOTPROD = T_C * 65536/32 ~ 10.2 us.
class PointwiseUnit {
 public:
  struct Report {
    u64 cycles = 0;
    u64 products = 0;
  };

  /// multipliers: number of ModMult64 instances working in parallel.
  explicit PointwiseUnit(unsigned multipliers);

  /// Component-wise product; sizes must match.
  fp::FpVec multiply(const fp::FpVec& a, const fp::FpVec& b, Report* report = nullptr);

  [[nodiscard]] unsigned multipliers() const noexcept {
    return static_cast<unsigned>(mults_.size());
  }
  [[nodiscard]] u64 dsp_blocks() const noexcept {
    return static_cast<u64>(mults_.size()) * ModMult64::kDspBlocks;
  }

 private:
  std::vector<ModMult64> mults_;
};

}  // namespace hemul::hw
