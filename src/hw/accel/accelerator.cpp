#include "hw/accel/accelerator.hpp"

#include "ssa/pack.hpp"
#include "ssa/spectrum_cache.hpp"
#include "util/check.hpp"

namespace hemul::hw {

using bigint::BigUInt;
using fp::FpVec;

AcceleratorConfig AcceleratorConfig::paper() {
  AcceleratorConfig config;
  config.ntt = DistributedNttConfig{};  // 4 PEs, plan 64*64*16, optimized unit
  config.clock_ns = 5.0;
  config.pointwise_multipliers = 32;
  config.carry_lanes = 16;
  config.ssa = ssa::SsaParams::paper();
  return config;
}

HwAccelerator::HwAccelerator(AcceleratorConfig config)
    : config_(std::move(config)),
      ntt_(config_.ntt),
      pointwise_(config_.pointwise_multipliers),
      carry_(config_.carry_lanes) {
  HEMUL_CHECK_MSG(config_.ssa.transform_size == config_.ntt.plan.size,
                  "SSA parameters must match the NTT plan size");
  config_.ssa.validate();
}

BigUInt HwAccelerator::multiply(const BigUInt& a, const BigUInt& b, MultiplyReport* report) {
  MultiplyReport local;
  local.clock_ns = config_.clock_ns;

  ssa::pack_into(a, config_.ssa, workspace_.pack_a);
  ssa::pack_into(b, config_.ssa, workspace_.pack_b);

  const FpVec fa = ntt_.forward(workspace_.pack_a, &local.forward_a);
  const FpVec fb = ntt_.forward(workspace_.pack_b, &local.forward_b);
  const FpVec fc = pointwise_.multiply(fa, fb, &local.pointwise);
  const FpVec pc = ntt_.inverse(fc, &local.inverse_c);
  BigUInt product = carry_.recover(pc, config_.ssa.coeff_bits, &local.carry);

  local.fft_cycles = local.forward_a.total_cycles + local.forward_b.total_cycles +
                     local.inverse_c.total_cycles;
  local.total_cycles = local.fft_cycles + local.pointwise.cycles + local.carry.cycles;

  if (report != nullptr) *report = std::move(local);
  return product;
}

std::vector<BigUInt> HwAccelerator::multiply_batch(
    std::span<const std::pair<BigUInt, BigUInt>> operands, BatchReport* report) {
  std::vector<BigUInt> products;
  products.reserve(operands.size());

  BatchReport local;
  local.clock_ns = config_.clock_ns;
  local.operations = operands.size();

  for (std::size_t i = 0; i < operands.size(); ++i) {
    MultiplyReport op_report;
    products.push_back(multiply(operands[i].first, operands[i].second, &op_report));
    if (i == 0) {
      local.first_latency_cycles = op_report.total_cycles;
      // Steady state: the FFT engine (3 transforms) plus the dot product
      // (which shares the PE multipliers) bound the initiation interval;
      // carry recovery overlaps on its own adder.
      local.interval_cycles = op_report.fft_cycles + op_report.pointwise.cycles;
    }
  }
  if (!operands.empty()) {
    local.total_cycles =
        local.first_latency_cycles + (operands.size() - 1) * local.interval_cycles;
  }
  if (report != nullptr) *report = local;
  return products;
}

std::vector<BigUInt> HwAccelerator::multiply_batch_cached(
    std::span<const std::pair<BigUInt, BigUInt>> operands, BatchReport* report) {
  std::vector<BigUInt> products;
  products.reserve(operands.size());

  BatchReport local;
  local.clock_ns = config_.clock_ns;
  local.operations = operands.size();

  u64 fft_engine_cycles = 0;  // transforms + dot products (shared multipliers)
  u64 last_carry_cycles = 0;  // only the tail's carry recovery is exposed

  ssa::BatchSpectrumProvider spectra(operands, [&](const BigUInt& operand, FpVec& dst) {
    NttRunReport fwd;
    ssa::pack_into(operand, config_.ssa, workspace_.pack_a);
    dst = ntt_.forward(workspace_.pack_a, &fwd);
    fft_engine_cycles += fwd.total_cycles;
  });

  for (std::size_t i = 0; i < operands.size(); ++i) {
    FpVec scratch_a;
    FpVec scratch_b;
    const FpVec& fa = spectra.get(operands[i].first, scratch_a);
    const FpVec& fb = spectra.get(operands[i].second, scratch_b);

    PointwiseUnit::Report pw;
    const FpVec fc = pointwise_.multiply(fa, fb, &pw);
    NttRunReport inv;
    const FpVec pc = ntt_.inverse(fc, &inv);
    CarryRecoveryUnit::Report carry;
    products.push_back(carry_.recover(pc, config_.ssa.coeff_bits, &carry));

    fft_engine_cycles += pw.cycles + inv.total_cycles;
    last_carry_cycles = carry.cycles;
    if (i == 0) local.first_latency_cycles = fft_engine_cycles + carry.cycles;
  }

  // Double-buffered streaming: every transform and dot product serializes
  // on the PE array, while each job's carry recovery overlaps the next
  // job's transforms on its dedicated adder -- only the tail's is exposed.
  local.forward_transforms = spectra.forward_transforms();
  local.spectrum_cache_hits = spectra.cache_hits();
  local.total_cycles = fft_engine_cycles + last_carry_cycles;
  if (operands.size() > 1) {
    local.interval_cycles =
        (local.total_cycles - local.first_latency_cycles) / (operands.size() - 1);
  }
  if (report != nullptr) *report = local;
  return products;
}

BigUInt HwAccelerator::square(const BigUInt& a, MultiplyReport* report) {
  MultiplyReport local;
  local.clock_ns = config_.clock_ns;

  ssa::pack_into(a, config_.ssa, workspace_.pack_a);
  const FpVec fa = ntt_.forward(workspace_.pack_a, &local.forward_a);
  const FpVec fc = pointwise_.multiply(fa, fa, &local.pointwise);
  const FpVec pc = ntt_.inverse(fc, &local.inverse_c);
  BigUInt product = carry_.recover(pc, config_.ssa.coeff_bits, &local.carry);

  local.fft_cycles = local.forward_a.total_cycles + local.inverse_c.total_cycles;
  local.total_cycles = local.fft_cycles + local.pointwise.cycles + local.carry.cycles;

  if (report != nullptr) *report = std::move(local);
  return product;
}

FpVec HwAccelerator::ntt_forward(const FpVec& data, NttRunReport* report) {
  return ntt_.forward(data, report);
}

FpVec HwAccelerator::ntt_inverse(const FpVec& data, NttRunReport* report) {
  return ntt_.inverse(data, report);
}

}  // namespace hemul::hw
