#pragma once

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "bigint/biguint.hpp"
#include "hw/accel/carry_recovery.hpp"
#include "hw/accel/distributed_ntt.hpp"
#include "hw/accel/pointwise.hpp"
#include "ssa/params.hpp"
#include "ssa/workspace.hpp"

namespace hemul::hw {

/// Full configuration of the simulated accelerator.
struct AcceleratorConfig {
  DistributedNttConfig ntt;                    ///< PEs, plan, banking, unit kind
  double clock_ns = 5.0;                       ///< T_C (paper: 200 MHz)
  unsigned pointwise_multipliers = 32;         ///< paper: 4 PEs x 8 = 32
  unsigned carry_lanes = 16;                   ///< 16 coeffs/cycle => ~20 us
  ssa::SsaParams ssa = ssa::SsaParams::paper();

  /// The paper's prototype configuration.
  static AcceleratorConfig paper();
};

/// Timing/activity report of one full SSA multiplication on the accelerator.
struct MultiplyReport {
  NttRunReport forward_a;
  NttRunReport forward_b;
  NttRunReport inverse_c;
  PointwiseUnit::Report pointwise;
  CarryRecoveryUnit::Report carry;

  u64 fft_cycles = 0;        ///< the three transforms
  u64 total_cycles = 0;      ///< transforms + dot product + carry recovery

  double clock_ns = 5.0;
  [[nodiscard]] double fft_time_us() const noexcept {
    return static_cast<double>(forward_a.total_cycles) * clock_ns / 1000.0;
  }
  [[nodiscard]] double pointwise_time_us() const noexcept {
    return static_cast<double>(pointwise.cycles) * clock_ns / 1000.0;
  }
  [[nodiscard]] double carry_time_us() const noexcept {
    return static_cast<double>(carry.cycles) * clock_ns / 1000.0;
  }
  [[nodiscard]] double total_time_us() const noexcept {
    return static_cast<double>(total_cycles) * clock_ns / 1000.0;
  }
};

/// The complete simulated accelerator (paper Sections IV-V): P hypercube-
/// connected PEs executing the 64K-point SSA pipeline.
class HwAccelerator {
 public:
  explicit HwAccelerator(AcceleratorConfig config);

  /// Full SSA multiplication: pack -> NTT(a), NTT(b) -> pointwise ->
  /// inverse NTT -> carry recovery. Bit-exact against software multipliers.
  /// Operands must fit config().ssa.max_operand_bits().
  bigint::BigUInt multiply(const bigint::BigUInt& a, const bigint::BigUInt& b,
                           MultiplyReport* report = nullptr);

  /// Squaring fast path: the two forward spectra coincide, so only two
  /// transforms run (2 x T_FFT + T_DOTPROD + T_CARRY ~ 92.16 us at the
  /// paper's operating point instead of 122.88 us). In the report,
  /// forward_b is left empty.
  bigint::BigUInt square(const bigint::BigUInt& a, MultiplyReport* report = nullptr);

  /// Timing summary of a streamed batch of multiplications (extension:
  /// the paper reports single-shot latency; a server workload pipelines
  /// products through the phase engines at the initiation interval).
  struct BatchReport {
    u64 operations = 0;
    u64 first_latency_cycles = 0;     ///< latency of the first product
    u64 interval_cycles = 0;          ///< steady-state initiation interval
    u64 total_cycles = 0;             ///< first latency + (n-1) intervals
    u64 forward_transforms = 0;       ///< forward NTTs run (cached batch)
    u64 spectrum_cache_hits = 0;      ///< forward NTTs skipped (cached batch)
    double clock_ns = 5.0;
    [[nodiscard]] double total_time_us() const noexcept {
      return static_cast<double>(total_cycles) * clock_ns / 1000.0;
    }
    [[nodiscard]] double throughput_per_second() const noexcept {
      return interval_cycles == 0
                 ? 0.0
                 : 1e9 / (static_cast<double>(interval_cycles) * clock_ns);
    }
  };

  /// Multiplies a batch of operand pairs, modeling pipelined streaming:
  /// the FFT engine runs back to back while dot-product and carry recovery
  /// overlap. Products are bit-exact as in multiply().
  std::vector<bigint::BigUInt> multiply_batch(
      std::span<const std::pair<bigint::BigUInt, bigint::BigUInt>> operands,
      BatchReport* report = nullptr);

  /// Batched multiplication with forward-spectrum caching: operands whose
  /// spectrum was already computed earlier in the batch skip their forward
  /// transform, so N products against one repeated ciphertext cost N+1
  /// transforms instead of 3N. Jobs are double-buffered through the phase
  /// engines: the banked operand buffers ping-pong so the FFT unit streams
  /// back to back, and only the final carry recovery is exposed in the
  /// total. Products are bit-exact as in multiply().
  std::vector<bigint::BigUInt> multiply_batch_cached(
      std::span<const std::pair<bigint::BigUInt, bigint::BigUInt>> operands,
      BatchReport* report = nullptr);

  /// Direct access to the distributed transform.
  fp::FpVec ntt_forward(const fp::FpVec& data, NttRunReport* report = nullptr);
  fp::FpVec ntt_inverse(const fp::FpVec& data, NttRunReport* report = nullptr);

  [[nodiscard]] const AcceleratorConfig& config() const noexcept { return config_; }
  [[nodiscard]] DistributedNtt& ntt() noexcept { return ntt_; }

 private:
  AcceleratorConfig config_;
  DistributedNtt ntt_;
  PointwiseUnit pointwise_;
  CarryRecoveryUnit carry_;
  /// Reusable pack buffers (the model's input staging RAM): the software
  /// model shares the ssa fast path's arena discipline, so steady-state
  /// operand packing allocates nothing. One accelerator instance is used
  /// by one lane/thread at a time, like the other stateful units here.
  ssa::Workspace workspace_;
};

}  // namespace hemul::hw
