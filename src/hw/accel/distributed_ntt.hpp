#pragma once

#include <memory>
#include <vector>

#include "fp/fp64.hpp"
#include "hw/noc/exchange.hpp"
#include "hw/noc/hypercube.hpp"
#include "hw/noc/schedule.hpp"
#include "hw/pe/processing_element.hpp"
#include "ntt/plan.hpp"

namespace hemul::hw {

/// Configuration of the distributed NTT engine.
struct DistributedNttConfig {
  unsigned num_pes = 4;                 ///< P = 2^d processing elements
  ntt::NttPlan plan = ntt::NttPlan::paper_64k();
  BankingScheme banking = BankingScheme::kTwoDimensional;
  FftUnitKind unit = FftUnitKind::kOptimized;
  u64 link_words_per_cycle = 8;         ///< hypercube link bandwidth
  bool overlap_comm = true;             ///< double-buffered comm/compute overlap
};

/// Per-stage cycle breakdown of one distributed transform.
struct StageReport {
  u64 compute_cycles = 0;   ///< per-PE FFT initiation intervals
  u64 exchange_cycles = 0;  ///< per-PE neighbor transfer (0 if no exchange)
  u64 exchange_words = 0;   ///< total words moved in the exchange
  unsigned exchange_dim = 0;
};

/// Full report of one distributed transform run.
struct NttRunReport {
  std::vector<StageReport> stages;
  u64 total_cycles = 0;             ///< overlap-aware schedule total
  u64 total_cycles_no_overlap = 0;  ///< same schedule without double buffering
  u64 twiddle_products = 0;         ///< generic (DSP) multiplications
  u64 memory_conflict_cycles = 0;   ///< bank conflicts across all PE buffers
  u64 exchange_total_words = 0;
  bool exchanges_single_partner = true;
  std::string schedule;             ///< e.g. "C0 X0 C1 X1 C2"
};

/// The distributed 64K-point NTT (paper Section IV + Fig. 2): P hypercube-
/// connected PEs execute the Cooley-Tukey stages on local data, exchanging
/// along one hypercube dimension after each of the first d compute stages.
///
/// The run is bit-exact (outputs equal the software MixedRadixNtt) and
/// cycle-counted per the units' published throughput contracts.
class DistributedNtt {
 public:
  /// Validates the configuration: P a power of two, plan stages l > d,
  /// all radices implementable by the hardware units (8/16/32/64), and
  /// per-PE slices fitting the double buffers in whole windows.
  /// Throws std::invalid_argument on violation.
  explicit DistributedNtt(DistributedNttConfig config);

  /// Distributed forward transform of data.size() == plan.size elements.
  fp::FpVec forward(const fp::FpVec& data, NttRunReport* report = nullptr);

  /// Distributed inverse transform (1/N folded into the final twiddle
  /// stage -- no extra passes).
  fp::FpVec inverse(const fp::FpVec& data, NttRunReport* report = nullptr);

  [[nodiscard]] const DistributedNttConfig& config() const noexcept { return config_; }
  [[nodiscard]] const Hypercube& topology() const noexcept { return cube_; }
  [[nodiscard]] const StageSchedule& schedule() const noexcept { return schedule_; }

  /// The PEs (exposed for resource accounting and tests).
  [[nodiscard]] std::vector<ProcessingElement>& pes() noexcept { return pes_; }

  /// The exchange ledger accumulated over all runs.
  [[nodiscard]] const ExchangeLedger& ledger() const noexcept { return ledger_; }

  /// One key (ownership) bit: bit `bit` of the current digit value at
  /// position `stage_var` of the element's digit tuple.
  struct KeyBit {
    unsigned stage_var = 0;
    unsigned bit = 0;

    friend bool operator==(const KeyBit&, const KeyBit&) noexcept = default;
  };

  /// The ownership key in force during each compute stage: d bits drawn
  /// from not-yet-transformed digits, re-homed one bit per exchange onto
  /// the digit just computed. key_schedule()[s] is the key of stage s.
  [[nodiscard]] std::vector<std::vector<KeyBit>> key_schedule() const;

  /// Renders the paper's Fig. 2 ("Data distribution"): the interleaved
  /// sequence of computing and communication stages, with the index digit
  /// involved in each (n3/n2/n1 in the paper's notation for the 64*64*16
  /// plan) and the ownership bits before/after every exchange.
  [[nodiscard]] std::string describe_distribution() const;

 private:
  fp::FpVec run(const fp::FpVec& data, bool inverse, NttRunReport* report);

  [[nodiscard]] unsigned owner(const std::vector<u32>& digits,
                               const std::vector<KeyBit>& key) const;

  DistributedNttConfig config_;
  Hypercube cube_;
  StageSchedule schedule_;
  std::vector<ProcessingElement> pes_;
  ExchangeLedger ledger_;

  // Precomputed per-direction twiddle tables (powers of the aligned root).
  std::vector<fp::Fp> fwd_table_;
  std::vector<fp::Fp> inv_table_;
  fp::Fp n_inv_;

  // Digit strides: digit s of index n is (n / stride_[s]) % radices[s].
  std::vector<u64> stride_;
};

}  // namespace hemul::hw
