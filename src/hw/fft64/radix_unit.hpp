#pragma once

#include <span>

#include "fp/fp64.hpp"
#include "hw/arith/adder_tree.hpp"
#include "hw/arith/reduction.hpp"
#include "hw/arith/shifter_bank.hpp"

namespace hemul::hw {

/// Generic shift-twiddle radix unit for the smaller sub-transforms.
///
/// The paper notes the FFT-64 unit "can be adapted, with minor
/// modifications, to compute also Radix-8, Radix-16, and Radix-32 FFTs".
/// For radix r | 64 the root is 8^(64/r) = 2^(192/r), so every butterfly
/// twiddle remains a rotation. With 8-words/cycle memory ports the unit
/// sustains one r-point FFT every r/8 cycles (paper: "an FFT-16 will take
/// two clock cycles").
class RadixUnit {
 public:
  /// radix must be one of 8, 16, 32, 64.
  explicit RadixUnit(unsigned radix);

  /// r-point NTT with root 2^(192/r); bit-exact vs. the reference DFT.
  fp::FpVec transform(std::span<const fp::Fp> inputs);

  [[nodiscard]] unsigned radix() const noexcept { return radix_; }

  /// Initiation interval in cycles: max(1, radix/8).
  [[nodiscard]] u64 cycles_per_transform() const noexcept {
    return radix_ <= 8 ? 1 : radix_ / 8;
  }

  [[nodiscard]] u64 transforms_performed() const noexcept { return transforms_; }

 private:
  unsigned radix_;
  unsigned log2_root_;  ///< 192 / radix
  ShifterBank shifter_;
  AdderTree tree_;
  ModularReductor reductor_;
  u64 transforms_ = 0;
};

}  // namespace hemul::hw
