#include "hw/fft64/pipelined_fft64.hpp"

#include "util/check.hpp"

namespace hemul::hw {

u64 PipelinedFft64::push_job(fp::FpVec inputs) {
  HEMUL_CHECK_MSG(inputs.size() == OptimizedFft64::kRadix, "job must have 64 samples");
  Job job;
  job.id = next_id_++;
  job.inputs = std::move(inputs);
  queue_.push_back(std::move(job));
  return next_id_ - 1;
}

void PipelinedFft64::tick() {
  ++cycle_;

  // Drain stage: one row of 8 components per cycle through the 8 shared
  // reductors.
  if (draining_.has_value()) {
    Job& job = *draining_;
    DrainedRow row;
    row.job_id = job.id;
    row.drain_cycle = job.progress;
    for (unsigned k2 = 0; k2 < 8; ++k2) {
      row.words[k2] = job.outputs[8 * k2 + job.progress];
    }
    if (job.progress == 0) first_out_.emplace_back(job.id, cycle_);
    drained_.push_back(row);
    ++job.progress;
    if (job.progress == 8) {
      ++completed_;
      draining_.reset();
    }
  }

  // Accumulate stage: 8 cycles of column reads + stage-1 + accumulator
  // updates. On completion, hand over to the drain stage (which has just
  // freed up in the same cycle when running back to back).
  if (accumulating_.has_value()) {
    Job& job = *accumulating_;
    ++job.progress;
    if (job.progress == 8) {
      HEMUL_CHECK_MSG(!draining_.has_value(),
                      "structural hazard: reductors still busy at hand-off");
      job.outputs = unit_.transform(job.inputs);
      job.progress = 0;
      draining_ = std::move(job);
      accumulating_.reset();
    }
  }

  // Issue the next job once the accumulate stage is free.
  if (!accumulating_.has_value() && !queue_.empty()) {
    accumulating_ = std::move(queue_.front());
    queue_.pop_front();
    accumulating_->progress = 0;
  }

  const unsigned in_flight = (accumulating_.has_value() ? 1u : 0u) +
                             (draining_.has_value() ? 1u : 0u);
  max_in_flight_ = std::max(max_in_flight_, in_flight);
}

std::vector<PipelinedFft64::DrainedRow> PipelinedFft64::take_drained() {
  std::vector<DrainedRow> out;
  out.swap(drained_);
  return out;
}

bool PipelinedFft64::idle() const noexcept {
  return queue_.empty() && !accumulating_.has_value() && !draining_.has_value();
}

std::optional<u64> PipelinedFft64::first_output_cycle(u64 job_id) const {
  for (const auto& [job, cycle] : first_out_) {
    if (job == job_id) return cycle;
  }
  return std::nullopt;
}

}  // namespace hemul::hw
