#include "hw/fft64/optimized_fft64.hpp"

#include <vector>

#include "util/check.hpp"

namespace hemul::hw {

OptimizedFft64::OptimizedFft64()
    : shifter_(kInputWordsPerCycle),
      tree_(AdderTree::Config{.inputs = kInputWordsPerCycle, .merge_carry_save = true}) {}

fp::FpVec OptimizedFft64::transform(std::span<const fp::Fp> inputs) {
  HEMUL_CHECK_MSG(inputs.size() == kRadix, "OptimizedFft64: expects 64 samples");

  // acc[k2][k1]: 8 blocks of 8 accumulators (block index = k2).
  std::array<std::array<Rot192, 8>, kAccumulatorBlocks> acc{};

  std::vector<Rot192> lane_in(kInputWordsPerCycle);
  std::vector<u64> lane_shift(kInputWordsPerCycle);

  for (unsigned j = 0; j < 8; ++j) {  // 8 accumulation cycles
    // Strided column read: samples a[8i + j], i = 0..7, after the Eq. 4
    // bit-width pre-reduction.
    std::array<Rot192, 8> column{};
    for (unsigned i = 0; i < 8; ++i) {
      column[i] = Rot192::from_fp(pre_normalize(inputs[8 * i + j].value()));
    }

    // Stage 1: four physical trees (k1 = 0..3); the even/odd difference
    // output provides k1+4.
    std::array<Rot192, 8> s1{};
    for (unsigned k1 = 0; k1 < kStage1Components; ++k1) {
      for (unsigned i = 0; i < 8; ++i) {
        lane_in[i] = column[i];
        // w8^(i*k1) = 2^(24*(i*k1 mod 8)).
        lane_shift[i] = 24ULL * ((static_cast<u64>(i) * k1) % 8);
      }
      const auto shifted = shifter_.apply(lane_in, lane_shift);
      const SumAndDiff sd = tree_.reduce_sum_diff(shifted);
      // Apply w64^(j*k1) = 2^(3*j*k1) to the sum, and additionally
      // w16^j = 2^(12*j) to the difference (component k1+4).
      const u64 base = 3ULL * ((static_cast<u64>(j) * k1) % 64);
      s1[k1] = sd.sum.rotl(base);
      s1[k1 + 4] = sd.diff.rotl(base + 12ULL * j);
    }

    // Accumulators: block k2 adds s1[k1] * w8^(j*k2); the twiddle mux picks
    // one of four shifts, with a subtract signal for the opposite half.
    for (unsigned k2 = 0; k2 < kAccumulatorBlocks; ++k2) {
      const unsigned e = (j * k2) % 8;
      const bool subtract = e >= 4;
      const unsigned shift = kTwiddleShifts[e % 4];
      for (unsigned k1 = 0; k1 < 8; ++k1) {
        Rot192 term = s1[k1].rotl(shift);
        if (subtract) {
          term = term.negate();
          ++stats_.subtract_activations;
        }
        acc[k2][k1] = acc[k2][k1].add(term);
      }
    }
  }

  // Drain: 8 cycles; at cycle t, block k2's mux selects accumulator t and
  // its reductor emits F[8*k2 + t] -- eight stride-8 components per cycle.
  fp::FpVec out(kRadix);
  for (unsigned t = 0; t < 8; ++t) {
    for (unsigned k2 = 0; k2 < kAccumulatorBlocks; ++k2) {
      out[8 * k2 + t] = reductor_.reduce(acc[k2][t]);
    }
  }

  ++stats_.transforms;
  stats_.rotations = shifter_.rotations_performed();
  stats_.reductions = reductor_.reductions_performed();
  return out;
}

}  // namespace hemul::hw
