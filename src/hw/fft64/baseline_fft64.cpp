#include "hw/fft64/baseline_fft64.hpp"

#include <vector>

#include "util/check.hpp"

namespace hemul::hw {

BaselineFft64::BaselineFft64()
    : shifter_(kInputWordsPerCycle),
      tree_(AdderTree::Config{.inputs = kInputWordsPerCycle, .merge_carry_save = false}) {}

fp::FpVec BaselineFft64::transform(std::span<const fp::Fp> inputs) {
  HEMUL_CHECK_MSG(inputs.size() == kRadix, "BaselineFft64: expects 64 samples");

  // One carry-save accumulator per chain; vectors stay unmerged until the
  // final AddMod (the [28] design point the paper improves on).
  std::array<CsaValue, kChains> acc{};

  std::vector<Rot192> lane_in(kInputWordsPerCycle);
  std::vector<u64> lane_shift(kInputWordsPerCycle);

  for (unsigned cycle = 0; cycle < 8; ++cycle) {
    // Input samples are read 8-by-8 (a[8*cycle .. 8*cycle+7]) and broadcast
    // to all 64 chains.
    for (unsigned k = 0; k < kChains; ++k) {
      for (unsigned lane = 0; lane < kInputWordsPerCycle; ++lane) {
        const unsigned i = 8 * cycle + lane;
        lane_in[lane] = Rot192::from_fp(inputs[i]);
        // Twiddle 8^(i*k) = 2^(3*(i*k mod 64)) (Eq. 3).
        lane_shift[lane] = 3ULL * ((static_cast<u64>(i) * k) % 64);
      }
      const auto shifted = shifter_.apply(lane_in, lane_shift);
      const CsaValue partial = tree_.reduce(shifted);
      // 4:2 accumulation of the unmerged partial sum.
      acc[k] = csa_accumulate(acc[k], partial.sum);
      acc[k] = csa_accumulate(acc[k], partial.carry);
    }
  }

  // 64 modular reductors fire in parallel.
  fp::FpVec out(kRadix);
  for (unsigned k = 0; k < kChains; ++k) out[k] = reductor_.reduce(acc[k]);

  ++stats_.transforms;
  stats_.rotations = shifter_.rotations_performed();
  stats_.reductions = reductor_.reductions_performed();
  return out;
}

}  // namespace hemul::hw
