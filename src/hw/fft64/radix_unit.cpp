#include "hw/fft64/radix_unit.hpp"

#include <stdexcept>
#include <vector>

#include "util/check.hpp"

namespace hemul::hw {

RadixUnit::RadixUnit(unsigned radix)
    : radix_(radix),
      log2_root_(192 / radix),
      shifter_(radix),
      tree_(AdderTree::Config{.inputs = radix, .merge_carry_save = true}) {
  if (radix != 8 && radix != 16 && radix != 32 && radix != 64) {
    throw std::invalid_argument("RadixUnit: radix must be 8, 16, 32 or 64");
  }
}

fp::FpVec RadixUnit::transform(std::span<const fp::Fp> inputs) {
  HEMUL_CHECK_MSG(inputs.size() == radix_, "RadixUnit: sample count mismatch");

  std::vector<Rot192> samples(radix_);
  for (unsigned i = 0; i < radix_; ++i) {
    samples[i] = Rot192::from_fp(pre_normalize(inputs[i].value()));
  }

  std::vector<u64> shifts(radix_);
  fp::FpVec out(radix_);
  for (unsigned k = 0; k < radix_; ++k) {
    for (unsigned i = 0; i < radix_; ++i) {
      shifts[i] = static_cast<u64>(log2_root_) * ((static_cast<u64>(i) * k) % radix_);
    }
    const auto shifted = shifter_.apply(samples, shifts);
    out[k] = reductor_.reduce(tree_.reduce(shifted));
  }
  ++transforms_;
  return out;
}

}  // namespace hemul::hw
