#pragma once

#include <array>
#include <span>

#include "fp/fp64.hpp"
#include "hw/arith/adder_tree.hpp"
#include "hw/arith/reduction.hpp"
#include "hw/arith/shifter_bank.hpp"

namespace hemul::hw {

/// The baseline radix-64 unit of Wang & Huang, ISCAS'13 [28] (paper Fig. 3),
/// reimplemented as the comparison point for the optimized unit.
///
/// Structure: 64 independent computing chains (one per frequency component),
/// each with an 8-lane shifter bank and an 8-input carry-save adder tree;
/// carry-save vectors stay unmerged until AddMod; 64 modular reductors run
/// in parallel after the 8 accumulation cycles; results are written through
/// a 64-word memory port.
class BaselineFft64 {
 public:
  static constexpr unsigned kRadix = 64;
  static constexpr unsigned kChains = 64;
  static constexpr unsigned kReductors = 64;
  static constexpr unsigned kInputWordsPerCycle = 8;
  static constexpr unsigned kOutputWordsPerCycle = 64;  ///< 64-wide write port

  struct Stats {
    u64 transforms = 0;
    u64 rotations = 0;
    u64 reductions = 0;
  };

  BaselineFft64();

  /// Computes the 64-point NTT with root 8 (Eq. 3). Bit-exact against the
  /// reference DFT; asserted in the test suite.
  fp::FpVec transform(std::span<const fp::Fp> inputs);

  /// Steady-state initiation interval in clock cycles (one FFT per 8).
  [[nodiscard]] static constexpr u64 cycles_per_transform() noexcept { return 8; }

  /// Latency of one isolated transform: 8 accumulate cycles + merged
  /// reduce/write cycle + pipeline depth.
  [[nodiscard]] static constexpr u64 latency_cycles() noexcept { return 8 + 1 + kPipelineDepth; }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  static constexpr u64 kPipelineDepth = 3;  // shifter, tree, normalize

  ShifterBank shifter_;
  AdderTree tree_;
  ModularReductor reductor_;
  Stats stats_;
};

}  // namespace hemul::hw
