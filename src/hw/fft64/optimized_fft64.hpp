#pragma once

#include <array>
#include <span>

#include "fp/fp64.hpp"
#include "hw/arith/adder_tree.hpp"
#include "hw/arith/reduction.hpp"
#include "hw/arith/shifter_bank.hpp"

namespace hemul::hw {

/// The paper's optimized FFT-64 unit (Section IV.b, Fig. 4).
///
/// The 64-point transform is itself decomposed 8x8 by Eq. 5:
///
///   F[8*k2 + k1] = sum_j ( sum_i a[8i+j] w8^(i*k1) * w64^(j*k1) ) * w8^(j*k2)
///
/// Structural optimizations over the baseline (all modeled here):
///  1. Stage 1 computes only four of the eight k1 components; the adder
///     tree's even-minus-odd output yields k1+4 for free (w8^(4i) = (-1)^i).
///  2. The outer twiddles w8^(j*k2) reduce to four shifts {0,24,48,72 bits}
///     plus a subtract flag (w8^4 = 2^96 = -1).
///  3. Only 8 modular reductors, time-multiplexed over the 8 accumulator
///     blocks; each drain cycle emits the 8 components {8*k2 + t}
///     (stride 8, "appropriately spaced out for memory writing"), so the
///     write port is 8 words wide instead of 64.
///  4. Carry-save vectors merge immediately after the adder tree.
///  5. Inputs pass an Eq. 4 pre-normalization before Stage 1.
class OptimizedFft64 {
 public:
  static constexpr unsigned kRadix = 64;
  static constexpr unsigned kStage1Components = 4;  ///< physical k1 trees
  static constexpr unsigned kReductors = 8;
  static constexpr unsigned kAccumulatorBlocks = 8;
  static constexpr unsigned kInputWordsPerCycle = 8;
  static constexpr unsigned kOutputWordsPerCycle = 8;
  /// The four twiddle shifts of the accumulator mux (bits).
  static constexpr std::array<unsigned, 4> kTwiddleShifts{0, 24, 48, 72};

  struct Stats {
    u64 transforms = 0;
    u64 rotations = 0;
    u64 reductions = 0;
    u64 subtract_activations = 0;  ///< accumulator subtract-signal uses
  };

  OptimizedFft64();

  /// 64-point NTT with root 8; bit-exact against the reference DFT and the
  /// baseline unit.
  fp::FpVec transform(std::span<const fp::Fp> inputs);

  /// Initiation interval: one FFT per 8 cycles (drain of transform n
  /// overlaps accumulation of transform n+1).
  [[nodiscard]] static constexpr u64 cycles_per_transform() noexcept { return 8; }

  /// Isolated latency: 8 accumulate + 8 drain + pipeline depth (the extra
  /// stage pays for the carry-save merge, Section IV.b).
  [[nodiscard]] static constexpr u64 latency_cycles() noexcept { return 8 + 8 + kPipelineDepth; }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  static constexpr u64 kPipelineDepth = 4;  // shifter, tree, merge, normalize

  ShifterBank shifter_;
  AdderTree tree_;
  ModularReductor reductor_;
  Stats stats_;
};

}  // namespace hemul::hw
