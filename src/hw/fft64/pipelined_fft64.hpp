#pragma once

#include <array>
#include <deque>
#include <optional>

#include "fp/fp64.hpp"
#include "hw/fft64/optimized_fft64.hpp"

namespace hemul::hw {

/// Cycle-stepped streaming model of the optimized FFT-64 unit.
///
/// OptimizedFft64 computes whole transforms and *declares* its throughput;
/// this wrapper actually steps the clock, modeling the paper's pipelining
/// claim in Section IV.b: "the maximum average throughput, even in a fully
/// pipelined solution, is eight components per clock cycle", i.e. the
/// drain of transform n (8 cycles through the 8 shared reductors) overlaps
/// the accumulation of transform n+1, sustaining one FFT per 8 cycles with
/// no structural hazard.
///
/// Usage: push jobs, tick() the clock, collect drained output rows.
class PipelinedFft64 {
 public:
  /// One 8-word output row as it leaves the reductors.
  struct DrainedRow {
    u64 job_id = 0;
    unsigned drain_cycle = 0;  ///< 0..7 within the job's drain
    std::array<fp::Fp, 8> words{};  ///< components {8*k2 + drain_cycle}
  };

  /// Queues a 64-point transform job; returns its id.
  u64 push_job(fp::FpVec inputs);

  /// Advances one clock cycle.
  void tick();

  /// Takes the rows drained so far (8 words each, stride-8 components).
  std::vector<DrainedRow> take_drained();

  /// True when no job is accumulating, draining or queued.
  [[nodiscard]] bool idle() const noexcept;

  [[nodiscard]] u64 current_cycle() const noexcept { return cycle_; }
  [[nodiscard]] u64 jobs_completed() const noexcept { return completed_; }

  /// Cycle at which the first row of a given job drained (for latency
  /// checks); empty if the job has not drained yet.
  [[nodiscard]] std::optional<u64> first_output_cycle(u64 job_id) const;

  /// Maximum number of jobs simultaneously in flight so far (accumulate +
  /// drain stages; 2 in steady state).
  [[nodiscard]] unsigned max_in_flight() const noexcept { return max_in_flight_; }

 private:
  struct Job {
    u64 id = 0;
    fp::FpVec inputs;
    fp::FpVec outputs;      ///< filled when accumulation completes
    unsigned progress = 0;  ///< cycles spent in the current stage
  };

  OptimizedFft64 unit_;
  std::deque<Job> queue_;          ///< waiting for the accumulate stage
  std::optional<Job> accumulating_;
  std::optional<Job> draining_;
  std::vector<DrainedRow> drained_;
  std::vector<std::pair<u64, u64>> first_out_;  ///< (job, cycle)
  u64 cycle_ = 0;
  u64 next_id_ = 0;
  u64 completed_ = 0;
  unsigned max_in_flight_ = 0;
};

}  // namespace hemul::hw
