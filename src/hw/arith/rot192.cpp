#include "hw/arith/rot192.hpp"

namespace hemul::hw {

Rot192 Rot192::add(const Rot192& other) const noexcept {
  std::array<u64, 3> s{};
  u64 carry = 0;
  for (int i = 0; i < 3; ++i) {
    const u64 a = w_[i];
    const u64 b = other.w_[i];
    const u64 t = a + b;
    const u64 c1 = t < a ? 1u : 0u;
    s[i] = t + carry;
    const u64 c2 = s[i] < t ? 1u : 0u;
    carry = c1 | c2;
  }
  if (carry != 0) {
    // End-around carry: 2^192 = 1 (mod 2^192 - 1). A second wraparound is
    // impossible: the sum of two values below 2^192 minus 2^192 is at most
    // 2^192 - 2, so adding 1 cannot carry out again.
    for (int i = 0; i < 3 && carry != 0; ++i) {
      s[i] += carry;
      carry = s[i] == 0 ? 1u : 0u;
    }
  }
  return Rot192(s);
}

Rot192 Rot192::rotl(u64 k) const noexcept {
  k %= 192;
  if (k == 0) return *this;
  const unsigned word_shift = static_cast<unsigned>(k / 64);
  const unsigned bit_shift = static_cast<unsigned>(k % 64);
  std::array<u64, 3> rotated{};
  for (unsigned i = 0; i < 3; ++i) rotated[(i + word_shift) % 3] = w_[i];
  if (bit_shift == 0) return Rot192(rotated);
  std::array<u64, 3> out{};
  for (unsigned i = 0; i < 3; ++i) {
    const u64 lo = rotated[i] << bit_shift;
    const u64 hi = rotated[(i + 2) % 3] >> (64 - bit_shift);
    out[i] = lo | hi;
  }
  return Rot192(out);
}

fp::Fp Rot192::to_fp() const noexcept {
  // Shift-only projection: each word contributes via a mul_pow2 (which the
  // hardware realizes as wiring into the Eq. 4 normalizer).
  return fp::Fp{w_[0]} + fp::Fp{w_[1]}.mul_pow2(64) + fp::Fp{w_[2]}.mul_pow2(128);
}

unsigned Rot192::significant_bits() const noexcept {
  for (int i = 2; i >= 0; --i) {
    if (w_[i] != 0) {
      return static_cast<unsigned>(i) * 64 +
             (64 - static_cast<unsigned>(__builtin_clzll(w_[i])));
    }
  }
  return 0;
}

}  // namespace hemul::hw
