#pragma once

#include <array>

#include "fp/fp64.hpp"

namespace hemul::hw {

/// 192-bit datapath word of the FFT unit, with arithmetic modulo 2^192 - 1.
///
/// This is the paper's central hardware trick (Section IV.b): because
/// 8^64 = 2^192 = 1 (mod p), the prime p divides 2^192 - 1, so arithmetic
/// modulo 2^192 - 1 projects homomorphically onto GF(p). In that ring,
///   * multiplication by any power of two is a *cyclic rotation* of the
///     192-bit word (pure wiring in hardware),
///   * addition uses an end-around carry,
///   * negation is bitwise NOT (x + ~x = 2^192 - 1 = 0),
/// and "no intermediate value can exceed 192 bits".
class Rot192 {
 public:
  constexpr Rot192() noexcept = default;

  /// Zero-extends a field element into the datapath word.
  static Rot192 from_fp(fp::Fp x) noexcept {
    return Rot192({x.value(), 0, 0});
  }

  explicit constexpr Rot192(std::array<u64, 3> words) noexcept : w_(words) {}

  [[nodiscard]] constexpr const std::array<u64, 3>& words() const noexcept { return w_; }

  /// Addition with end-around carry (mod 2^192 - 1).
  [[nodiscard]] Rot192 add(const Rot192& other) const noexcept;

  /// Cyclic left rotation by k bits = multiplication by 2^k (mod 2^192 - 1).
  [[nodiscard]] Rot192 rotl(u64 k) const noexcept;

  /// Bitwise complement = additive inverse (mod 2^192 - 1).
  [[nodiscard]] Rot192 negate() const noexcept {
    return Rot192({~w_[0], ~w_[1], ~w_[2]});
  }

  /// Bitwise operations (used by the carry-save compressors).
  [[nodiscard]] Rot192 bit_and(const Rot192& o) const noexcept {
    return Rot192({w_[0] & o.w_[0], w_[1] & o.w_[1], w_[2] & o.w_[2]});
  }
  [[nodiscard]] Rot192 bit_or(const Rot192& o) const noexcept {
    return Rot192({w_[0] | o.w_[0], w_[1] | o.w_[1], w_[2] | o.w_[2]});
  }
  [[nodiscard]] Rot192 bit_xor(const Rot192& o) const noexcept {
    return Rot192({w_[0] ^ o.w_[0], w_[1] ^ o.w_[1], w_[2] ^ o.w_[2]});
  }

  /// Projection to GF(p): w0 + w1*2^64 + w2*2^128 (mod p), computed with
  /// shift-only field operations (mirrors the hardware Normalize chain).
  [[nodiscard]] fp::Fp to_fp() const noexcept;

  /// Number of significant bits (0 for zero) -- used by the width-invariant
  /// checks ("no intermediate exceeds 192 bits" holds by construction; the
  /// tests additionally track how much of the word is actually exercised).
  [[nodiscard]] unsigned significant_bits() const noexcept;

  /// Structural equality of representations. Note the ring has one
  /// redundant encoding (all-ones = zero); use to_fp() for value equality.
  friend bool operator==(const Rot192&, const Rot192&) noexcept = default;

 private:
  std::array<u64, 3> w_{0, 0, 0};
};

}  // namespace hemul::hw
