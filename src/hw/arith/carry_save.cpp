#include "hw/arith/carry_save.hpp"

#include <algorithm>
#include <vector>

namespace hemul::hw {

CsaValue csa_compress(const Rot192& a, const Rot192& b, const Rot192& c) noexcept {
  const Rot192 sum = a.bit_xor(b).bit_xor(c);
  const Rot192 majority = a.bit_and(b).bit_or(a.bit_and(c)).bit_or(b.bit_and(c));
  return {sum, majority.rotl(1)};
}

CsaValue csa_accumulate(const CsaValue& acc, const Rot192& term) noexcept {
  return csa_compress(acc.sum, acc.carry, term);
}

CsaValue csa_tree(std::span<const Rot192> terms, CsaTreeStats* stats) noexcept {
  if (terms.empty()) return CsaValue{};
  if (terms.size() == 1) return CsaValue::from(terms[0]);

  std::vector<Rot192> layer(terms.begin(), terms.end());
  unsigned depth = 0;
  unsigned compressors = 0;
  while (layer.size() > 2) {
    std::vector<Rot192> next;
    next.reserve(layer.size() * 2 / 3 + 2);
    std::size_t i = 0;
    for (; i + 3 <= layer.size(); i += 3) {
      const CsaValue c = csa_compress(layer[i], layer[i + 1], layer[i + 2]);
      next.push_back(c.sum);
      next.push_back(c.carry);
      ++compressors;
    }
    for (; i < layer.size(); ++i) next.push_back(layer[i]);
    layer = std::move(next);
    ++depth;
  }
  if (stats != nullptr) {
    stats->compressors += compressors;
    stats->depth = std::max(stats->depth, depth);
  }
  if (layer.size() == 1) return CsaValue::from(layer[0]);
  return {layer[0], layer[1]};
}

}  // namespace hemul::hw
