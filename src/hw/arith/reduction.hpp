#pragma once

#include "fp/normalize.hpp"
#include "hw/arith/carry_save.hpp"

namespace hemul::hw {

/// The modular reduction back-end of the FFT unit: the paper's Normalize
/// block (Eq. 4 coarse reduction) followed by AddMod (one conditional +/-p).
///
/// The optimized unit instantiates only eight of these, time-multiplexed
/// across the accumulator blocks (one component per block per cycle); the
/// baseline unit of [28] instantiates 64.
class ModularReductor {
 public:
  /// Reduces a resolved 192-bit accumulator value to a canonical field
  /// element. The 192->128 fold uses the cyclic projection (shift-only),
  /// then Eq. 4 + AddMod complete the reduction.
  fp::Fp reduce(const Rot192& value);

  /// Reduces a value still in carry-save form (resolves first, modeling the
  /// final carry-propagate adder in front of the normalizer).
  fp::Fp reduce(const CsaValue& value);

  [[nodiscard]] u64 reductions_performed() const noexcept { return count_; }

 private:
  u64 count_ = 0;
};

/// Pre-reduction of raw operand words before they enter Stage 1 (the
/// paper: "before Stage 1, we reduce the bit-width of each value by
/// applying Equation 4. This further decreases the area").
/// Takes an arbitrary 64-bit word and returns a canonical field element via
/// the same Eq. 4 normalizer hardware.
fp::Fp pre_normalize(u64 raw);

}  // namespace hemul::hw
