#pragma once

#include <span>

#include "hw/arith/carry_save.hpp"

namespace hemul::hw {

/// Output of the dual-output adder tree of the optimized FFT-64 unit.
struct SumAndDiff {
  Rot192 sum;   ///< t0 + t1 + ... + t7
  Rot192 diff;  ///< t0 - t1 + t2 - ... - t7 (even minus odd)
};

/// The FFT unit's adder tree: compresses 8 shifted samples into one value.
///
/// Two structural options mirror the paper's Section IV.b choices:
///  * merged output (the paper's optimization: "we merged carry-save
///    vectors immediately after the adder tree, reducing area usage",
///    at the cost of one extra pipeline stage for the carry propagation);
///  * dual sum/difference output (the symmetry optimization: components
///    k and k+4 share the tree, "such modification adds little complexity
///    to the adder tree").
class AdderTree {
 public:
  struct Config {
    unsigned inputs = 8;
    bool merge_carry_save = true;  ///< resolve sum+carry right after the tree
  };

  explicit AdderTree(Config config) : config_(config) {}

  /// Sum of all inputs in carry-save form (resolved when configured).
  CsaValue reduce(std::span<const Rot192> terms);

  /// Simultaneous sum and even-minus-odd difference (odd terms enter the
  /// second tree complemented; exact in the mod 2^192-1 ring).
  SumAndDiff reduce_sum_diff(std::span<const Rot192> terms);

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] const CsaTreeStats& stats() const noexcept { return stats_; }
  [[nodiscard]] u64 reductions_performed() const noexcept { return reductions_; }

 private:
  Config config_;
  CsaTreeStats stats_;
  u64 reductions_ = 0;
};

}  // namespace hemul::hw
