#pragma once

#include <span>
#include <vector>

#include "hw/arith/rot192.hpp"

namespace hemul::hw {

/// Bank of barrel rotators that applies per-lane power-of-two twiddles
/// (paper Fig. 3/4: "a shifter bank, where the eight samples are multiplied
/// by their respective twiddle factor").
///
/// Lane i multiplies its input by 2^(shift[i]) as a 192-bit rotation.
/// The object accumulates operation counts for the activity statistics.
class ShifterBank {
 public:
  explicit ShifterBank(unsigned lanes) : lanes_(lanes) {}

  /// Applies the given per-lane rotations. inputs.size() and shifts.size()
  /// must equal the lane count.
  std::vector<Rot192> apply(std::span<const Rot192> inputs, std::span<const u64> shifts);

  [[nodiscard]] unsigned lanes() const noexcept { return lanes_; }
  [[nodiscard]] u64 rotations_performed() const noexcept { return rotations_; }

 private:
  unsigned lanes_;
  u64 rotations_ = 0;
};

}  // namespace hemul::hw
