#include "hw/arith/adder_tree.hpp"

#include <vector>

#include "util/check.hpp"

namespace hemul::hw {

CsaValue AdderTree::reduce(std::span<const Rot192> terms) {
  HEMUL_CHECK_MSG(terms.size() == config_.inputs, "AdderTree: input arity mismatch");
  ++reductions_;
  CsaValue csa = csa_tree(terms, &stats_);
  if (config_.merge_carry_save) {
    // The paper's merge: one carry-propagate adder right after the tree
    // halves the downstream register width (one 192-bit word instead of a
    // sum/carry pair).
    csa = CsaValue::from(csa.resolve());
  }
  return csa;
}

SumAndDiff AdderTree::reduce_sum_diff(std::span<const Rot192> terms) {
  HEMUL_CHECK_MSG(terms.size() == config_.inputs, "AdderTree: input arity mismatch");
  ++reductions_;
  std::vector<Rot192> negated(terms.begin(), terms.end());
  for (std::size_t i = 1; i < negated.size(); i += 2) negated[i] = negated[i].negate();
  const CsaValue sum = csa_tree(terms, &stats_);
  const CsaValue diff = csa_tree(negated, &stats_);
  return {sum.resolve(), diff.resolve()};
}

}  // namespace hemul::hw
