#include "hw/arith/shifter_bank.hpp"

#include "util/check.hpp"

namespace hemul::hw {

std::vector<Rot192> ShifterBank::apply(std::span<const Rot192> inputs,
                                       std::span<const u64> shifts) {
  HEMUL_CHECK_MSG(inputs.size() == lanes_ && shifts.size() == lanes_,
                  "ShifterBank: lane count mismatch");
  std::vector<Rot192> out(lanes_);
  for (unsigned i = 0; i < lanes_; ++i) {
    out[i] = inputs[i].rotl(shifts[i]);
  }
  rotations_ += lanes_;
  return out;
}

}  // namespace hemul::hw
