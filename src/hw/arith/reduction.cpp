#include "hw/arith/reduction.hpp"

namespace hemul::hw {

fp::Fp ModularReductor::reduce(const Rot192& value) {
  ++count_;
  // 192 -> ~65-bit fold: shift-only projection of the three words
  // (2^64 and 2^128 are rotations in the cyclic ring; in silicon this is
  // the wiring into the Eq. 4 compressor).
  const fp::Fp folded = value.to_fp();
  // Eq. 4 + AddMod on the folded value. The value is already canonical
  // after to_fp(); running it through normalize keeps the model structure
  // faithful (Normalize then AddMod), and is the identity here.
  return fp::normalize_full(static_cast<u128>(folded.value()));
}

fp::Fp ModularReductor::reduce(const CsaValue& value) { return reduce(value.resolve()); }

fp::Fp pre_normalize(u64 raw) {
  return fp::normalize_full(static_cast<u128>(raw));
}

}  // namespace hemul::hw
