#pragma once

#include <span>

#include "hw/arith/rot192.hpp"

namespace hemul::hw {

/// Carry-save representation of a datapath value: value = sum + carry
/// (mod 2^192 - 1). The paper's FFT unit keeps accumulators in this
/// redundant form "to avoid the latency of long carry chains" and merges
/// the two vectors only at the final AddMod (baseline) or right after the
/// adder tree (the optimized unit's merge, Section IV.b).
struct CsaValue {
  Rot192 sum;
  Rot192 carry;

  static CsaValue from(const Rot192& x) noexcept { return {x, Rot192{}}; }

  /// Collapses the redundant form with a full end-around-carry addition.
  [[nodiscard]] Rot192 resolve() const noexcept { return sum.add(carry); }

  [[nodiscard]] fp::Fp to_fp() const noexcept { return resolve().to_fp(); }
};

/// One layer of 3:2 compression: a + b + c == sum + carry (mod 2^192 - 1).
/// The carry word rotates left by one position (end-around), which is the
/// mod-(2^192 - 1) image of the usual carry left-shift.
CsaValue csa_compress(const Rot192& a, const Rot192& b, const Rot192& c) noexcept;

/// Adds one term into an accumulator kept in carry-save form (one 3:2
/// compressor stage, constant depth -- this is what makes the accumulator
/// timing-independent of the accumulated value width).
CsaValue csa_accumulate(const CsaValue& acc, const Rot192& term) noexcept;

/// Statistics of a tree reduction (for the resource model).
struct CsaTreeStats {
  unsigned compressors = 0;  ///< number of 3:2 stages used
  unsigned depth = 0;        ///< logic depth in compressor stages
};

/// Reduces any number of terms to carry-save form with a Wallace-style
/// 3:2 compressor tree. Returns zero for an empty input.
CsaValue csa_tree(std::span<const Rot192> terms, CsaTreeStats* stats = nullptr) noexcept;

}  // namespace hemul::hw
