#include "hw/resources/report.hpp"

#include "util/format.hpp"
#include "util/table.hpp"

namespace hemul::hw {

ResourceComparison ResourceComparison::paper() {
  ResourceComparison c;
  c.proposed = accelerator_cost(AccelParams::paper());
  c.baseline = baseline28_cost();
  c.device = Device::stratix_v_5sgsmd8();
  return c;
}

double ResourceComparison::alm_saving() const noexcept {
  if (baseline.alms == 0) return 0.0;
  return 1.0 - static_cast<double>(proposed.alms) / static_cast<double>(baseline.alms);
}

std::string ResourceComparison::render_table() const {
  using util::format_percent;
  using util::with_commas;

  const auto up = device.utilization(proposed);
  const auto ub = device.utilization(baseline);

  util::Table t({"Resource", "Proposed here", "[28]"});
  t.add_row({"ALMs", with_commas(proposed.alms) + " (" + format_percent(up.alms) + ")",
             with_commas(baseline.alms) + " (" + format_percent(ub.alms) + ")"});
  t.add_row({"Registers",
             with_commas(proposed.registers) + " (" + format_percent(up.registers) + ")",
             with_commas(baseline.registers) + " (" + format_percent(ub.registers) + ")"});
  t.add_row({"DSP blocks",
             with_commas(proposed.dsp_blocks) + " (" + format_percent(up.dsp_blocks) + ")",
             with_commas(baseline.dsp_blocks) + " (" + format_percent(ub.dsp_blocks) + ")"});
  t.add_row({"M20K SRAM",
             util::format_bits(proposed.m20k_bits()) + " (" + format_percent(up.m20k) + ")",
             "--"});
  return t.render();
}

}  // namespace hemul::hw
