#pragma once

#include <string>

#include "hw/resources/resource_vec.hpp"

namespace hemul::hw {

/// Capacity table of a target FPGA device.
struct Device {
  std::string name;
  u64 alms = 0;
  u64 registers = 0;
  u64 dsp_blocks = 0;
  u64 m20k_blocks = 0;

  /// The paper's target: Stratix V 5SGSMD8N3F45I4.
  ///
  /// ALMs and DSP counts follow the public device table (262,400 ALMs with
  /// four registers each; 1,963 DSP blocks) -- they reproduce the paper's
  /// 40%/13% utilization figures exactly. The M20K capacity is calibrated
  /// to 2,048 blocks (40 Mbit) so that the paper's own "8 Mbit = 20%" row
  /// holds; public datasheets give 2,567 blocks (~51 Mbit), under which the
  /// same 8 Mbit would print as 16% (see EXPERIMENTS.md).
  static Device stratix_v_5sgsmd8();

  /// The paper's *initial* prototype platform: a multi-board rig of
  /// low-end Cyclone V devices (one PE per board; the design "was
  /// initially prototyped on a multi-board platform based on low-end
  /// devices (Altera Cyclone V)" and won the 2015 Altera Innovate Europe
  /// SoC award). Capacities approximate a 5CSEMA5-class part; block RAM
  /// (M10K on Cyclone V) is expressed in 20-Kbit-equivalent units so the
  /// ResourceVec stays comparable.
  static Device cyclone_v_5csema5();

  /// Utilization fractions (0..1) of a design on this device.
  struct Utilization {
    double alms = 0;
    double registers = 0;
    double dsp_blocks = 0;
    double m20k = 0;
  };
  [[nodiscard]] Utilization utilization(const ResourceVec& used) const;

  /// True if the design fits the device.
  [[nodiscard]] bool fits(const ResourceVec& used) const noexcept;
};

}  // namespace hemul::hw
