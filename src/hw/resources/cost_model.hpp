#pragma once

#include "hw/resources/resource_vec.hpp"

namespace hemul::hw {

/// Parametric bottom-up area model of the accelerator.
///
/// Leaf costs are calibration constants fitted so the two architecture
/// configurations reproduce both columns of the paper's Table I (the
/// proposed design and the Wang-Huang [28] baseline on the same device);
/// the ablation benchmark then varies one structural feature at a time to
/// decompose the ~60% saving the paper claims. The constants live in
/// cost_model.cpp with the fit documented per component.

/// Structural description of a radix-64 FFT unit.
struct Fft64UnitParams {
  unsigned stage1_trees = 4;        ///< physical first-stage components
  bool dual_output_trees = true;    ///< sum + even-odd difference output
  bool merged_carry_save = true;    ///< CPA right after the adder tree
  bool full_barrel_shifters = false;///< any-of-64 shifts vs. fixed shift set
  unsigned accumulators = 64;
  unsigned reductors = 8;           ///< Normalize+AddMod instances

  /// The paper's optimized unit (Section IV.b).
  static Fft64UnitParams optimized();
  /// The [28] baseline unit (Fig. 3): 64 chains, 64 reductors, unmerged CSA.
  static Fft64UnitParams baseline();
};

/// Structural description of one processing element.
struct PeParams {
  Fft64UnitParams fft;
  unsigned memory_port_words = 8;   ///< words per cycle each buffer sustains
  unsigned twiddle_multipliers = 8; ///< ModMult64 instances
  bool hypercube_link = true;       ///< neighbor FIFO + serializer
};

/// Full-accelerator structural description.
struct AccelParams {
  unsigned num_pes = 4;
  PeParams pe;

  /// The paper's 4-PE prototype.
  static AccelParams paper();
};

/// Area of one radix-64 FFT unit.
ResourceVec fft64_cost(const Fft64UnitParams& p);

/// Area of one double-buffered banked memory (2 x 16 dual-port banks) with
/// the given port width, including addressing and data route logic.
ResourceVec memory_cost(unsigned port_words);

/// Area of `count` DSP modular multipliers (8 DSP blocks each).
ResourceVec modmult_cost(unsigned count);

/// Per-PE M20K overhead beyond the data buffers: twiddle ROM, exchange
/// FIFOs, staging.
ResourceVec pe_storage_overhead();

/// Area of one processing element.
ResourceVec pe_cost(const PeParams& p);

/// Area of the full P-PE accelerator (PEs + shared control, host interface
/// and the carry-recovery adder).
ResourceVec accelerator_cost(const AccelParams& p);

/// Total of the [28] baseline design as published (their monolithic FFT
/// multiplier with 90 DSP modular multipliers and 64-wide memory ports),
/// reconstructed through the same leaf costs.
ResourceVec baseline28_cost();

}  // namespace hemul::hw
