#pragma once

#include <string>

#include "hw/resources/cost_model.hpp"
#include "hw/resources/device.hpp"

namespace hemul::hw {

/// The data behind the paper's Table I: modeled resources of the proposed
/// accelerator and of the [28] baseline, with device utilization.
struct ResourceComparison {
  ResourceVec proposed;
  ResourceVec baseline;
  Device device;

  /// Builds the comparison for the paper configuration (4 PEs).
  static ResourceComparison paper();

  /// Fractional saving of the proposed design vs. the baseline for ALMs
  /// (the paper's "around 60% saving in hardware costs").
  [[nodiscard]] double alm_saving() const noexcept;

  /// Renders Table I (absolute counts and % of the target device; the
  /// baseline M20K entry prints as unreported, matching the paper).
  [[nodiscard]] std::string render_table() const;
};

}  // namespace hemul::hw
