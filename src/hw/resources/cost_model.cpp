#include "hw/resources/cost_model.hpp"

namespace hemul::hw {

namespace {

// ---------------------------------------------------------------------------
// Leaf calibration constants (ALMs / registers per instance).
//
// Fitted so that accelerator_cost(AccelParams::paper()) reproduces the
// proposed column of Table I (104,000 ALMs / 116,000 regs / 256 DSP /
// ~8 Mbit) and baseline28_cost() the [28] column (231,000 / 336,377 / 720).
// Relative magnitudes follow the architecture: a full 64-way barrel
// rotator is ~2x the ALMs and ~4x the pipeline registers of the optimized
// unit's fixed-shift network; unmerged carry-save accumulators double the
// register and adder footprint; each reductor is a two-stage Eq.4 + AddMod
// datapath.
// ---------------------------------------------------------------------------

// Shifter banks (8 lanes of 192-bit rotators).
constexpr u64 kShifterFixedAlm = 400;
constexpr u64 kShifterFixedRegs = 600;
constexpr u64 kShifterFullAlm = 760;
constexpr u64 kShifterFullRegs = 2600;

// 8-input carry-save adder tree.
constexpr u64 kTreeAlm = 1500;
constexpr u64 kTreeDualOutputExtraAlm = 300;  // even/odd difference output
constexpr u64 kTreeMergedRegs = 400;          // merged: one 192-bit vector
constexpr u64 kTreeUnmergedRegs = 1000;       // carry-save pair pipeline

// 192-bit accumulator (+ twiddle mux) per component.
constexpr u64 kAccumulatorAlm = 150;        // merged single-vector adder
constexpr u64 kAccumulatorCsaAlm = 300;     // unmerged: two adder rows
constexpr u64 kAccumulatorRegsPerVector = 192;

// Normalize (Eq. 4) + AddMod reductor.
constexpr u64 kReductorAlm = 300;
constexpr u64 kReductorRegs = 200;

// 64x64 DSP modular multiplier: recomposition adders + Eq. 4 tail.
constexpr u64 kModMultAlm = 220;
constexpr u64 kModMultRegs = 400;
constexpr u64 kModMultDsp = 8;

// Banked memory addressing + data route, per buffer, per port word.
constexpr u64 kMemoryAlmPerPortWord = 75;
constexpr u64 kMemoryRegsPerPortWord = 180;
constexpr u64 kBufferM20k = 32;  // 16 banks x 2 M20K

// Hypercube link: FIFO control + serializer.
constexpr u64 kLinkAlm = 740;
constexpr u64 kLinkRegs = 3032;

// Per-PE storage beyond the two data buffers.
constexpr u64 kTwiddleRomM20k = 20;
constexpr u64 kExchangeFifoM20k = 14;
constexpr u64 kStagingM20k = 4;

// Shared top-level: control, host interface, carry-recovery adder.
constexpr u64 kSharedAlm = 6000;
constexpr u64 kSharedRegs = 8000;

// [28] baseline top-level control (monolithic design).
constexpr u64 kBaselineSharedAlm = 18560;
constexpr u64 kBaselineSharedRegs = 9561;
constexpr unsigned kBaselineModMults = 90;  // 90 x 8 DSP = the published 720

}  // namespace

Fft64UnitParams Fft64UnitParams::optimized() { return Fft64UnitParams{}; }

Fft64UnitParams Fft64UnitParams::baseline() {
  Fft64UnitParams p;
  p.stage1_trees = 64;  // one chain per frequency component
  p.dual_output_trees = false;
  p.merged_carry_save = false;
  p.full_barrel_shifters = true;  // twiddle 8^(ik): any of 64 shift amounts
  p.accumulators = 64;
  p.reductors = 64;
  return p;
}

AccelParams AccelParams::paper() { return AccelParams{}; }

ResourceVec fft64_cost(const Fft64UnitParams& p) {
  ResourceVec v;
  const u64 shifter_alm = p.full_barrel_shifters ? kShifterFullAlm : kShifterFixedAlm;
  const u64 shifter_regs = p.full_barrel_shifters ? kShifterFullRegs : kShifterFixedRegs;
  const u64 tree_alm = kTreeAlm + (p.dual_output_trees ? kTreeDualOutputExtraAlm : 0);
  const u64 tree_regs = p.merged_carry_save ? kTreeMergedRegs : kTreeUnmergedRegs;

  v.alms += p.stage1_trees * (shifter_alm + tree_alm);
  v.registers += p.stage1_trees * (shifter_regs + tree_regs);

  const u64 acc_alm = p.merged_carry_save ? kAccumulatorAlm : kAccumulatorCsaAlm;
  const u64 acc_vectors = p.merged_carry_save ? 1 : 2;
  v.alms += p.accumulators * acc_alm;
  v.registers += p.accumulators * kAccumulatorRegsPerVector * acc_vectors;

  v.alms += p.reductors * kReductorAlm;
  v.registers += p.reductors * kReductorRegs;
  return v;
}

ResourceVec memory_cost(unsigned port_words) {
  ResourceVec v;
  v.alms = 2ULL * kMemoryAlmPerPortWord * port_words;      // double buffer
  v.registers = 2ULL * kMemoryRegsPerPortWord * port_words;
  v.m20k_blocks = 2ULL * kBufferM20k;
  return v;
}

ResourceVec modmult_cost(unsigned count) {
  ResourceVec v;
  v.alms = static_cast<u64>(count) * kModMultAlm;
  v.registers = static_cast<u64>(count) * kModMultRegs;
  v.dsp_blocks = static_cast<u64>(count) * kModMultDsp;
  return v;
}

ResourceVec pe_storage_overhead() {
  ResourceVec v;
  v.m20k_blocks = kTwiddleRomM20k + kExchangeFifoM20k + kStagingM20k;
  return v;
}

ResourceVec pe_cost(const PeParams& p) {
  ResourceVec v = fft64_cost(p.fft);
  v += memory_cost(p.memory_port_words);
  v += modmult_cost(p.twiddle_multipliers);
  v += pe_storage_overhead();
  if (p.hypercube_link) {
    v.alms += kLinkAlm;
    v.registers += kLinkRegs;
  }
  return v;
}

ResourceVec accelerator_cost(const AccelParams& p) {
  ResourceVec v = pe_cost(p.pe) * p.num_pes;
  v.alms += kSharedAlm;
  v.registers += kSharedRegs;
  return v;
}

ResourceVec baseline28_cost() {
  // [28]: a single monolithic FFT engine -- the baseline unit with 64-wide
  // memory ports and 90 DSP modular multipliers, no hypercube links.
  ResourceVec v = fft64_cost(Fft64UnitParams::baseline());
  v += memory_cost(64);
  v += modmult_cost(kBaselineModMults);
  v.alms += kBaselineSharedAlm;
  v.registers += kBaselineSharedRegs;
  // M20K usage is not reported in [28]; drop the modeled blocks so reports
  // can show the published blank.
  v.m20k_blocks = 0;
  return v;
}

}  // namespace hemul::hw
