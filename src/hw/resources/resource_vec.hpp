#pragma once

#include <string>

#include "util/uint128.hpp"

namespace hemul::hw {

/// FPGA resource bundle in the units Table I reports: Stratix V ALMs,
/// flip-flop registers, variable-precision DSP blocks, and M20K memory
/// blocks.
struct ResourceVec {
  u64 alms = 0;
  u64 registers = 0;
  u64 dsp_blocks = 0;
  u64 m20k_blocks = 0;

  static constexpr u64 kM20kBitsPerBlock = 20480;  ///< 20 Kbit hard block

  [[nodiscard]] u64 m20k_bits() const noexcept { return m20k_blocks * kM20kBitsPerBlock; }

  ResourceVec& operator+=(const ResourceVec& o) noexcept {
    alms += o.alms;
    registers += o.registers;
    dsp_blocks += o.dsp_blocks;
    m20k_blocks += o.m20k_blocks;
    return *this;
  }
  friend ResourceVec operator+(ResourceVec a, const ResourceVec& b) noexcept { return a += b; }

  /// Replicates a component n times.
  friend ResourceVec operator*(ResourceVec v, u64 n) noexcept {
    v.alms *= n;
    v.registers *= n;
    v.dsp_blocks *= n;
    v.m20k_blocks *= n;
    return v;
  }

  friend bool operator==(const ResourceVec&, const ResourceVec&) noexcept = default;

  /// "alms=... regs=... dsp=... m20k=..." debug string.
  [[nodiscard]] std::string describe() const;
};

}  // namespace hemul::hw
