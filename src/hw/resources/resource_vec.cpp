#include "hw/resources/resource_vec.hpp"

namespace hemul::hw {

std::string ResourceVec::describe() const {
  return "alms=" + std::to_string(alms) + " regs=" + std::to_string(registers) +
         " dsp=" + std::to_string(dsp_blocks) + " m20k=" + std::to_string(m20k_blocks);
}

}  // namespace hemul::hw
