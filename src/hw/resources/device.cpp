#include "hw/resources/device.hpp"

namespace hemul::hw {

Device Device::stratix_v_5sgsmd8() {
  Device d;
  d.name = "Stratix V 5SGSMD8N3F45I4";
  d.alms = 262'400;
  d.registers = 1'049'600;  // 4 per ALM
  d.dsp_blocks = 1'963;
  d.m20k_blocks = 2'048;  // calibrated: 40 Mbit so "8 Mbit = 20%" (paper Table I)
  return d;
}

Device Device::cyclone_v_5csema5() {
  Device d;
  d.name = "Cyclone V 5CSEMA5 (multi-board prototype, one PE per board)";
  d.alms = 32'070;
  d.registers = 128'280;  // 4 per ALM
  d.dsp_blocks = 87;
  d.m20k_blocks = 198;  // 397 M10K blocks = ~3.97 Mbit = 198 x 20Kbit units
  return d;
}

Device::Utilization Device::utilization(const ResourceVec& used) const {
  Utilization u;
  u.alms = static_cast<double>(used.alms) / static_cast<double>(alms);
  u.registers = static_cast<double>(used.registers) / static_cast<double>(registers);
  u.dsp_blocks = static_cast<double>(used.dsp_blocks) / static_cast<double>(dsp_blocks);
  u.m20k = static_cast<double>(used.m20k_blocks) / static_cast<double>(m20k_blocks);
  return u;
}

bool Device::fits(const ResourceVec& used) const noexcept {
  return used.alms <= alms && used.registers <= registers &&
         used.dsp_blocks <= dsp_blocks && used.m20k_blocks <= m20k_blocks;
}

}  // namespace hemul::hw
