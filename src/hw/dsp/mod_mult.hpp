#pragma once

#include "fp/fp64.hpp"
#include "hw/dsp/dsp_block.hpp"

namespace hemul::hw {

/// The accelerator's 64x64 modular multiplier (paper Section IV.d):
/// schoolbook recomposition of four 32x32 DSP products, partial-product
/// summation, and Eq. 4 reduction.
///
/// Eight DSP blocks per instance; fully pipelined, one product per cycle.
/// Each PE instantiates eight of these for the inter-stage twiddle factors;
/// the same 32 multipliers (4 PEs x 8) perform the component-wise product
/// of the SSA dot-product phase.
class ModMult64 {
 public:
  static constexpr unsigned kMultipliers = 4;  ///< 32x32 partial products
  static constexpr unsigned kDspBlocks = kMultipliers * Dsp32x32::kDspBlocks;  // 8
  static constexpr unsigned kLatencyCycles = Dsp32x32::kLatencyCycles + 2;  ///< + sum + Eq.4
  static constexpr unsigned kThroughputPerCycle = 1;

  /// Modular product; bit-exact vs. fp::Fp multiplication (tested).
  fp::Fp multiply(fp::Fp a, fp::Fp b);

  [[nodiscard]] u64 products_computed() const noexcept { return products_; }

 private:
  Dsp32x32 dsp_[kMultipliers];
  u64 products_ = 0;
};

}  // namespace hemul::hw
