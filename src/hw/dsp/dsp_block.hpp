#pragma once

#include "util/uint128.hpp"

namespace hemul::hw {

/// A 32x32 -> 64 bit pipelined multiplier built from DSP hard blocks.
///
/// Paper Section IV.d: "To compute 64x64 multiplications we can split our
/// operands in 32-bit components and use a basic 32x32-bit DSP multiplier,
/// which requires only two DSP blocks."
class Dsp32x32 {
 public:
  static constexpr unsigned kDspBlocks = 2;
  static constexpr unsigned kLatencyCycles = 2;  ///< typical Stratix V DSP pipeline

  [[nodiscard]] u64 multiply(u32 a, u32 b) noexcept {
    ++ops_;
    return static_cast<u64>(a) * b;
  }

  [[nodiscard]] u64 operations() const noexcept { return ops_; }

 private:
  u64 ops_ = 0;
};

}  // namespace hemul::hw
