#include "hw/dsp/dsp_block.hpp"

namespace hemul::hw {

static_assert(Dsp32x32::kDspBlocks == 2, "paper: one 32x32 multiplier = two DSP blocks");

}  // namespace hemul::hw
