#include "hw/dsp/mod_mult.hpp"

#include "fp/normalize.hpp"

namespace hemul::hw {

fp::Fp ModMult64::multiply(fp::Fp a, fp::Fp b) {
  ++products_;
  const u64 av = a.value();
  const u64 bv = b.value();
  const auto a0 = static_cast<u32>(av);
  const auto a1 = static_cast<u32>(av >> 32);
  const auto b0 = static_cast<u32>(bv);
  const auto b1 = static_cast<u32>(bv >> 32);

  // Schoolbook: p = a0*b0 + (a0*b1 + a1*b0)*2^32 + a1*b1*2^64.
  const u64 p00 = dsp_[0].multiply(a0, b0);
  const u64 p01 = dsp_[1].multiply(a0, b1);
  const u64 p10 = dsp_[2].multiply(a1, b0);
  const u64 p11 = dsp_[3].multiply(a1, b1);

  const u128 full = static_cast<u128>(p00) + ((static_cast<u128>(p01) + p10) << 32) +
                    (static_cast<u128>(p11) << 64);

  // Eq. 4 normalize + AddMod. The Eq. 4 output needs one correction only
  // for 128-bit inputs; 'full' is a true 128-bit product so this matches
  // the hardware reduction path exactly.
  return fp::normalize_full(full);
}

}  // namespace hemul::hw
