#include "hw/noc/hypercube.hpp"

#include <bit>
#include <stdexcept>

#include "util/check.hpp"

namespace hemul::hw {

Hypercube::Hypercube(unsigned nodes) : nodes_(nodes) {
  if (nodes == 0 || (nodes & (nodes - 1)) != 0) {
    throw std::invalid_argument("Hypercube: node count must be a power of two");
  }
  dims_ = static_cast<unsigned>(std::countr_zero(nodes));
}

unsigned Hypercube::neighbor(unsigned node, unsigned dim) const {
  HEMUL_CHECK_MSG(node < nodes_, "Hypercube: node out of range");
  HEMUL_CHECK_MSG(dim < dims_, "Hypercube: dimension out of range");
  return node ^ (1u << dim);
}

std::vector<unsigned> Hypercube::neighbors(unsigned node) const {
  std::vector<unsigned> out;
  out.reserve(dims_);
  for (unsigned dim = 0; dim < dims_; ++dim) out.push_back(neighbor(node, dim));
  return out;
}

bool Hypercube::connected(unsigned a, unsigned b) const {
  HEMUL_CHECK(a < nodes_ && b < nodes_);
  return std::popcount(a ^ b) == 1;
}

}  // namespace hemul::hw
