#pragma once

#include <vector>

#include "util/uint128.hpp"

namespace hemul::hw {

/// Hypercube interconnect topology (paper Section IV): P = 2^d processing
/// elements; "the number of communication stages for FFT computation is the
/// hypercube dimension d. In each stage, a node communicates only with one
/// of its d neighbors, one for each stage."
class Hypercube {
 public:
  /// nodes must be a power of two >= 1. Throws std::invalid_argument.
  explicit Hypercube(unsigned nodes);

  [[nodiscard]] unsigned nodes() const noexcept { return nodes_; }
  [[nodiscard]] unsigned dimensions() const noexcept { return dims_; }

  /// The neighbor across dimension dim (node with that address bit flipped).
  [[nodiscard]] unsigned neighbor(unsigned node, unsigned dim) const;

  /// All d neighbors of a node.
  [[nodiscard]] std::vector<unsigned> neighbors(unsigned node) const;

  /// True iff a and b are directly connected (Hamming distance 1).
  [[nodiscard]] bool connected(unsigned a, unsigned b) const;

  /// Number of bidirectional links: P * d / 2.
  [[nodiscard]] unsigned links() const noexcept {
    return nodes_ * dims_ / 2;
  }

 private:
  unsigned nodes_;
  unsigned dims_;
};

}  // namespace hemul::hw
